// Deterministic random-number generation for reproducible simulation.
//
// Every stochastic component in the library draws from an sa::sim::Rng that
// is seeded explicitly; there is no ambient global randomness. Independent
// sub-streams can be derived with Rng::fork(tag) so that adding a new
// consumer of randomness does not perturb the draws seen by existing ones
// (a standard trick for reproducible parallel simulation).
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>
#include <string_view>

namespace sa::sim {

/// Counter-free 64-bit mixing function (Stafford variant 13 / splitmix64
/// finaliser). Used for seeding and stream derivation.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 256-bit-state generator.
/// Satisfies std::uniform_random_bit_generator so it can be plugged into
/// <random> distributions, though the convenience members below are
/// preferred inside the library (stable across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by iterating splitmix64 over `seed`.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x = mix64(x);
      w = x | 1ULL;  // never all-zero
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Full generator state for checkpointing: the four xoshiro words plus
  /// the Marsaglia normal() spare — omitting the spare would shift every
  /// draw after an odd number of normal() calls.
  struct State {
    std::uint64_t s[4]{};
    double spare = 0.0;
    bool has_spare = false;
  };
  [[nodiscard]] State state() const noexcept {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.spare = spare_;
    st.has_spare = has_spare_;
    return st;
  }
  void set_state(const State& st) noexcept {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    spare_ = st.spare;
    has_spare_ = st.has_spare;
  }

  /// Derives an independent generator; `tag` distinguishes sibling streams.
  [[nodiscard]] Rng fork(std::uint64_t tag) noexcept {
    return Rng{mix64(s_[0] ^ mix64(tag ^ 0xc0113c7153a7eULL))};
  }
  /// Convenience: fork keyed by a short string (e.g. component name).
  [[nodiscard]] Rng fork(std::string_view tag) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : tag) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    return fork(h);
  }

  // -- Convenience distributions (stable across platforms) -----------------

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }
  /// Uniform integer in [0, n). Requires n > 0. Lemire-style rejection-free
  /// bounded draw (bias negligible for simulation purposes at 64 bits).
  std::uint64_t below(std::uint64_t n) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }
  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }
  /// Exponential variate with given mean (> 0).
  double exponential(double mean) noexcept {
    return -mean * std::log1p(-uniform());
  }
  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }
  /// Normal with mean/stddev.
  double normal(double mean, double sd) noexcept { return mean + sd * normal(); }
  /// Pareto (heavy-tailed) variate with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept {
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
  }
  /// Poisson variate (Knuth's method; fine for the small means used here).
  int poisson(double mean) noexcept {
    const double limit = std::exp(-mean);
    double prod = uniform();
    int n = 0;
    while (prod > limit) {
      ++n;
      prod *= uniform();
    }
    return n;
  }
  /// Zipf-distributed integer in [0, n) with exponent s (simple inversion
  /// over precomputable tail; O(n) worst case, used only at setup time).
  std::uint64_t zipf(std::uint64_t n, double s) noexcept {
    double total = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) total += 1.0 / std::pow(double(k), s);
    double target = uniform() * total, acc = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(double(k), s);
      if (acc >= target) return k - 1;
    }
    return n - 1;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace sa::sim
