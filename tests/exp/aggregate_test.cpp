#include "exp/aggregate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace {

using sa::exp::Aggregate;
using sa::exp::Metrics;

TEST(AggregateTest, SummaryMatchesHandComputedValues) {
  // Samples 2, 4, 6: mean 4, sample stddev 2, min 2, max 6.
  Aggregate agg;
  agg.add("m", 2.0);
  agg.add("m", 4.0);
  agg.add("m", 6.0);

  const auto s = agg.summary("m");
  EXPECT_EQ(s.n, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_NEAR(s.stddev, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  // CI half-width = t(df=2) * stddev / sqrt(n) = 4.303 * 2 / sqrt(3).
  EXPECT_NEAR(s.ci95, 4.303 * 2.0 / std::sqrt(3.0), 1e-9);
}

TEST(AggregateTest, SingleSampleHasZeroSpread) {
  Aggregate agg;
  agg.add("m", 7.5);
  const auto s = agg.summary("m");
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);  // no df for a CI
}

TEST(AggregateTest, RejectsNaN) {
  Aggregate agg;
  EXPECT_THROW(agg.add("m", std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  // The bulk overload rejects too, naming the metric.
  const Metrics metrics{{"ok", 1.0},
                        {"bad", std::numeric_limits<double>::quiet_NaN()}};
  EXPECT_THROW(agg.add(metrics), std::invalid_argument);
}

TEST(AggregateTest, InfinityIsAcceptedNaNIsNot) {
  // Inf can legitimately appear (e.g. a rate with a zero denominator) and
  // is representable in summaries; only NaN indicates a broken task.
  Aggregate agg;
  EXPECT_NO_THROW(agg.add("m", std::numeric_limits<double>::infinity()));
}

TEST(AggregateTest, NamesKeepFirstSeenOrder) {
  Aggregate agg;
  agg.add("zeta", 1.0);
  agg.add("alpha", 2.0);
  agg.add("zeta", 3.0);
  agg.add("mid", 4.0);
  ASSERT_EQ(agg.names().size(), 3u);
  EXPECT_EQ(agg.names()[0], "zeta");
  EXPECT_EQ(agg.names()[1], "alpha");
  EXPECT_EQ(agg.names()[2], "mid");
}

TEST(AggregateTest, UnknownMetricThrows) {
  Aggregate agg;
  agg.add("m", 1.0);
  EXPECT_TRUE(agg.has("m"));
  EXPECT_FALSE(agg.has("nope"));
  EXPECT_THROW(static_cast<void>(agg.stats("nope")), std::out_of_range);
  EXPECT_THROW(static_cast<void>(agg.summary("nope")), std::out_of_range);
}

TEST(AggregateTest, TCriticalValues) {
  // Spot-check the exact table and the asymptote.
  EXPECT_DOUBLE_EQ(Aggregate::t_critical_95(0), 0.0);
  EXPECT_NEAR(Aggregate::t_critical_95(1), 12.706, 1e-9);
  EXPECT_NEAR(Aggregate::t_critical_95(2), 4.303, 1e-9);
  EXPECT_NEAR(Aggregate::t_critical_95(4), 2.776, 1e-9);
  EXPECT_NEAR(Aggregate::t_critical_95(30), 2.042, 1e-9);
  EXPECT_NEAR(Aggregate::t_critical_95(31), 1.960, 1e-9);
  EXPECT_NEAR(Aggregate::t_critical_95(10000), 1.960, 1e-9);
  // Monotone decreasing over the table.
  for (std::size_t df = 2; df <= 31; ++df) {
    EXPECT_LT(Aggregate::t_critical_95(df), Aggregate::t_critical_95(df - 1))
        << "df=" << df;
  }
}

TEST(AggregateTest, CiWidthShrinksWithMoreSamples) {
  // Same spread, more samples => tighter interval.
  Aggregate small, large;
  for (int i = 0; i < 4; ++i) small.add("m", i % 2 ? 1.0 : -1.0);
  for (int i = 0; i < 64; ++i) large.add("m", i % 2 ? 1.0 : -1.0);
  EXPECT_GT(small.summary("m").ci95, large.summary("m").ci95);
}

}  // namespace
