// Reusable metamorphic-testing helpers shared by the property, gen and
// integration suites.
//
// A metamorphic test does not know the "right" answer; it knows a relation
// that must hold between two runs of the system. The two relations this
// header packages are the ones the repo's determinism contract is built
// on:
//
//   * run-twice-and-byte-compare — two executions that are supposed to be
//     equivalent (serial vs parallel pools, with vs without telemetry,
//     repeated identical runs) must serialise to identical bytes;
//   * run-under-transform-and-assert-relation — a controlled change to the
//     input (e.g. scaling fault pressure) must move an output metric in a
//     known direction (monotone()).
//
// Everything returns ::testing::AssertionResult so call sites read as
// EXPECT_TRUE(test::support::byte_identical(a, b)) with a useful message
// on failure (first differing byte plus surrounding context).
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "exp/harness.hpp"
#include "exp/runner.hpp"
#include "gen/scenario.hpp"
#include "gen/spec.hpp"
#include "shard/world.hpp"

namespace sa::test::support {

/// A worker-pool size that genuinely interleaves even on small CI
/// machines (promoted from the integration determinism suite).
inline unsigned parallel_jobs() {
  return std::max(4u, std::thread::hardware_concurrency());
}

/// Grid result serialised without wall-clock fields, so byte comparison
/// sees only simulated behaviour.
inline std::string timing_free_json(const exp::GridResult& result) {
  return exp::to_json(result, /*include_timing=*/false).dump();
}

/// Byte-exact comparison with a first-difference diagnostic. `what` names
/// the two artefacts in the failure message.
inline ::testing::AssertionResult byte_identical(
    std::string_view a, std::string_view b,
    std::string_view what = "serialisations") {
  if (a == b) return ::testing::AssertionSuccess();
  std::size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  const auto snippet = [i](std::string_view s) {
    const std::size_t from = i < 40 ? 0 : i - 40;
    return std::string(s.substr(from, std::min<std::size_t>(80, s.size() - from)));
  };
  return ::testing::AssertionFailure()
         << what << " differ (sizes " << a.size() << " vs " << b.size()
         << ", first difference at byte " << i << "):\n  a: ..."
         << snippet(a) << "...\n  b: ..." << snippet(b) << "...";
}

/// Run-twice-and-byte-compare over a string producer: calls `run` twice
/// and requires identical bytes (e.g. a Scenario summary serialiser).
template <typename Producer>
::testing::AssertionResult reproduces(Producer&& run,
                                      std::string_view what = "repeated runs") {
  const std::string first = run();
  const std::string second = run();
  return byte_identical(first, second, what);
}

/// The thread-count-invariance relation: a grid executed by a 1-worker
/// pool and by a many-worker pool must produce byte-identical timing-free
/// JSON. `jobs == 0` picks parallel_jobs().
inline ::testing::AssertionResult thread_count_invariant(
    const exp::Grid& grid, unsigned jobs = 0) {
  if (jobs == 0) jobs = parallel_jobs();
  const auto serial = exp::Runner(1).run("metamorphic", grid);
  const auto parallel = exp::Runner(jobs).run("metamorphic", grid);
  if (serial.errors() != 0 || parallel.errors() != 0) {
    return ::testing::AssertionFailure()
           << "grid '" << grid.name << "' raised task errors (serial "
           << serial.errors() << ", parallel " << parallel.errors() << ")";
  }
  return byte_identical(timing_free_json(serial), timing_free_json(parallel),
                        "serial vs " + std::to_string(jobs) +
                            "-worker grid results");
}

/// Bit-exact serialisation of a scenario's summary metrics (hexfloat, so
/// equality means the doubles are identical, not merely close).
inline std::string scenario_fingerprint(gen::Scenario& city) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& [name, value] : city.summary()) {
    os << name << '=' << value << '\n';
  }
  return os.str();
}

/// The shard-count-invariance relation (sa::shard's determinism contract):
/// one generated world, run single-engine and as a ShardedWorld at every
/// count in `counts`, must produce a bit-identical summary fingerprint —
/// and the shards together must execute exactly the events the monolithic
/// engine did. `prepare` (optional) runs after construction and before the
/// run on every world, e.g. to schedule a control-journal replay on
/// `city.engine()`. Callers' suites must link sa_shard and sa_gen.
inline ::testing::AssertionResult shard_count_invariant(
    const std::string& spec_text, std::uint64_t seed,
    const std::vector<std::size_t>& counts = {1, 2, 4, 8},
    const std::function<void(gen::Scenario&)>& prepare = {},
    bool self_aware = true) {
  gen::ScenarioSpec spec;
  try {
    spec = gen::ScenarioSpec::parse(spec_text);
  } catch (const std::exception& e) {
    return ::testing::AssertionFailure()
           << "spec parse failed: " << e.what() << "\n  spec: " << spec_text;
  }

  std::string ref;
  std::uint64_t ref_events = 0;
  {
    gen::Scenario::Options opts;
    opts.self_aware = self_aware;
    gen::Scenario city(spec, seed, opts);
    if (prepare) prepare(city);
    city.run();
    ref = scenario_fingerprint(city);
    ref_events = city.engine().executed();
  }

  for (const std::size_t n : counts) {
    shard::ShardedWorld::Options opts;
    opts.shards = n;
    opts.self_aware = self_aware;
    try {
      shard::ShardedWorld world(spec, seed, opts);
      if (prepare) prepare(world.world());
      world.run();
      const std::string got = scenario_fingerprint(world.world());
      if (auto result = byte_identical(
              ref, got,
              "single-engine vs " + std::to_string(n) + "-shard summaries");
          !result) {
        return result;
      }
      std::uint64_t total = 0;
      for (const std::uint64_t e : world.shard_events()) total += e;
      if (total != ref_events) {
        return ::testing::AssertionFailure()
               << n << "-shard run executed " << total
               << " events in total; the monolithic run executed "
               << ref_events;
      }
    } catch (const std::exception& e) {
      return ::testing::AssertionFailure()
             << "shards=" << n << " threw: " << e.what()
             << "\n  spec: " << spec_text;
    }
  }
  return ::testing::AssertionSuccess();
}

/// Directions for monotone(). "Strictly" forbids ties.
enum class Relation {
  kNonDecreasing,
  kNonIncreasing,
  kStrictlyIncreasing,
  kStrictlyDecreasing,
};

/// Run-under-transform relation: `values[k]` was measured under the k-th
/// step of a transform (e.g. fault pressure 0, 2, 8) and must move in
/// `rel`'s direction. `what` names the metric in the failure message.
inline ::testing::AssertionResult monotone(const std::vector<double>& values,
                                           Relation rel,
                                           std::string_view what = "metric") {
  for (std::size_t k = 1; k < values.size(); ++k) {
    const double prev = values[k - 1], cur = values[k];
    const bool ok = rel == Relation::kNonDecreasing     ? cur >= prev
                    : rel == Relation::kNonIncreasing   ? cur <= prev
                    : rel == Relation::kStrictlyIncreasing ? cur > prev
                                                           : cur < prev;
    if (!ok) {
      std::ostringstream os;
      os << what << " not monotone at step " << k << ": ";
      for (std::size_t j = 0; j < values.size(); ++j) {
        os << (j ? ", " : "") << values[j];
      }
      return ::testing::AssertionFailure() << os.str();
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace sa::test::support
