// Harness checkpoint store round-trips (ctest -L ckpt).
//
// The CheckpointStore is what lets a SIGKILLed bench resume: grid shapes,
// completed cells with exact f64 metric bits, the control journal and the
// interrupted flag all survive a save/load cycle, resume refuses shape
// drift, and a corrupt primary image falls back to .prev.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/journal.hpp"
#include "exp/ckpt_store.hpp"
#include "exp/grid.hpp"
#include "exp/runner.hpp"

namespace sa::exp {
namespace {

TaskResult make_cell(std::size_t variant, std::uint64_t seed) {
  TaskResult r;
  r.variant = variant;
  r.seed = seed;
  r.metrics = {{"goal", 0.1 + 0.2},  // not exactly representable
               {"latency_p99", 17.25},
               {"nan_metric", std::nan("")}};
  r.note = "note-" + std::to_string(variant) + "-" + std::to_string(seed);
  r.wall_s = 1.5;  // persisted but excluded from determinism checks
  return r;
}

Grid small_grid() {
  Grid g;
  g.name = "e1.demo";
  g.variants = {"baseline", "self-aware"};
  g.seeds = {7, 8};
  return g;
}

TEST(CkptStore, SaveLoadRoundTripsExactBits) {
  const std::string path = ::testing::TempDir() + "/store_roundtrip.sackpt";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());

  CheckpointStore store("e1");
  const Grid g = small_grid();
  const std::size_t gi = store.add_grid(g.name, g.variants, g.seeds);
  EXPECT_EQ(gi, 0u);
  store.record(gi, make_cell(0, 7));
  store.record(gi, make_cell(1, 8));
  std::vector<ckpt::JournalEntry> journal(1);
  journal[0].t = 4.5;
  journal[0].cmd.kind = ckpt::ControlCommand::Kind::kInject;
  store.set_journal(journal);
  ASSERT_TRUE(store.save(path).ok());

  CheckpointStore back;
  std::string used;
  ASSERT_TRUE(back.load(path, &used).ok());
  EXPECT_EQ(used, path);
  EXPECT_EQ(back.experiment(), "e1");
  EXPECT_FALSE(back.interrupted());
  EXPECT_EQ(back.grids(), 1u);
  EXPECT_EQ(back.completed(), 2u);
  EXPECT_EQ(back.match(0, g), "");

  const TaskResult* cell = back.find(0, 0, 7);
  ASSERT_NE(cell, nullptr);
  ASSERT_EQ(cell->metrics.size(), 3u);
  EXPECT_EQ(cell->metrics[0].first, "goal");
  EXPECT_EQ(cell->metrics[0].second, 0.1 + 0.2);  // exact bits
  EXPECT_TRUE(std::isnan(cell->metrics[2].second));
  EXPECT_EQ(cell->note, "note-0-7");
  EXPECT_EQ(cell->wall_s, 1.5);
  EXPECT_EQ(back.find(0, 1, 7), nullptr);  // never recorded
  EXPECT_EQ(back.find(3, 0, 7), nullptr);  // no such grid

  const auto j = back.journal();
  ASSERT_EQ(j.size(), 1u);
  EXPECT_EQ(j[0].t, 4.5);
}

TEST(CkptStore, RecordReplacesSameCell) {
  CheckpointStore store("e1");
  const Grid g = small_grid();
  store.add_grid(g.name, g.variants, g.seeds);
  store.record(0, make_cell(0, 7));
  TaskResult again = make_cell(0, 7);
  again.note = "replacement";
  store.record(0, again);
  EXPECT_EQ(store.completed(), 1u);
  ASSERT_NE(store.find(0, 0, 7), nullptr);
  EXPECT_EQ(store.find(0, 0, 7)->note, "replacement");
}

TEST(CkptStore, MatchRefusesShapeDrift) {
  CheckpointStore store("e1");
  const Grid g = small_grid();
  store.add_grid(g.name, g.variants, g.seeds);

  EXPECT_EQ(store.match(0, g), "");
  // A grid the store never reached matches vacuously (interrupted early).
  EXPECT_EQ(store.match(5, g), "");

  Grid renamed = g;
  renamed.name = "e1.other";
  EXPECT_NE(store.match(0, renamed), "");

  Grid fewer_variants = g;
  fewer_variants.variants = {"baseline"};
  EXPECT_NE(store.match(0, fewer_variants), "");

  Grid other_seeds = g;
  other_seeds.seeds = {7, 9};
  EXPECT_NE(store.match(0, other_seeds), "");
}

TEST(CkptStore, GridResultsAreFullShapedWithInterruptedHoles) {
  CheckpointStore store("e1");
  const Grid g = small_grid();
  store.add_grid(g.name, g.variants, g.seeds);
  store.record(0, make_cell(1, 8));
  store.set_interrupted(true);
  EXPECT_TRUE(store.interrupted());

  const auto results = store.grid_results();
  ASSERT_EQ(results.size(), 1u);
  const GridResult& r = results[0];
  EXPECT_EQ(r.name, g.name);
  ASSERT_EQ(r.tasks.size(), 4u);  // 2 variants x 2 seeds, variant-major
  std::size_t holes = 0;
  for (const TaskResult& cell : r.tasks) {
    if (cell.variant == 1 && cell.seed == 8) {
      EXPECT_EQ(cell.error, "");
      EXPECT_EQ(cell.note, "note-1-8");
    } else {
      EXPECT_EQ(cell.error, "interrupted before completion");
      ++holes;
    }
  }
  EXPECT_EQ(holes, 3u);
}

TEST(CkptStore, InterruptedFlagAndFallbackSurvivePersistence) {
  const std::string path = ::testing::TempDir() + "/store_fallback.sackpt";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());

  CheckpointStore store("e4");
  const Grid g = small_grid();
  store.add_grid(g.name, g.variants, g.seeds);
  store.record(0, make_cell(0, 7));
  ASSERT_TRUE(store.save(path).ok());  // generation 1

  store.record(0, make_cell(0, 8));
  store.set_interrupted(true);
  ASSERT_TRUE(store.save(path).ok());  // generation 2 (g1 rotated to .prev)

  // Tear the primary mid-file: load must fall back to generation 1.
  {
    std::string data;
    ASSERT_TRUE(ckpt::slurp_file(path, data).ok());
    data.resize(data.size() / 2);
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
  }
  CheckpointStore back;
  std::string used, fallback_error;
  ASSERT_TRUE(back.load(path, &used, &fallback_error).ok());
  EXPECT_EQ(used, path + ".prev");
  EXPECT_FALSE(fallback_error.empty());
  EXPECT_EQ(back.completed(), 1u);
  EXPECT_FALSE(back.interrupted());  // generation 1 predates the interrupt

  // Missing entirely: a typed kIo, which the harness maps to fresh-start.
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  CheckpointStore none;
  EXPECT_EQ(none.load(path).code, ckpt::Errc::kIo);
}

}  // namespace
}  // namespace sa::exp
