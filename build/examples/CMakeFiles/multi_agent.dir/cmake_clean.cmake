file(REMOVE_RECURSE
  "CMakeFiles/multi_agent.dir/multi_agent.cpp.o"
  "CMakeFiles/multi_agent.dir/multi_agent.cpp.o.d"
  "multi_agent"
  "multi_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
