// Multi-armed bandit policies.
//
// Bandits are the workhorse decision learners in the framework: a
// self-aware process that must pick among K discrete configurations and
// learn their value online (camera strategies, route choices, autoscaling
// step sizes...). The discounted variants remain competitive under the
// non-stationary environments the paper emphasises.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace sa::learn {

/// Interface: K-armed bandit policy with incremental reward updates.
class Bandit {
 public:
  virtual ~Bandit() = default;
  /// Chooses an arm in [0, arms()).
  virtual std::size_t select(sim::Rng& rng) = 0;
  /// Reports the reward obtained from `arm`.
  virtual void update(std::size_t arm, double reward) = 0;
  [[nodiscard]] virtual std::size_t arms() const = 0;
  /// Current value estimate of `arm` (for explanation / inspection).
  [[nodiscard]] virtual double value(std::size_t arm) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Forgets everything (used when a drift detector fires).
  virtual void reset() = 0;
};

/// ε-greedy with optional exponential ε decay.
class EpsilonGreedy final : public Bandit {
 public:
  EpsilonGreedy(std::size_t arms, double epsilon = 0.1, double decay = 1.0)
      : eps0_(epsilon), decay_(decay), q_(arms, 0.0), n_(arms, 0) {}

  std::size_t select(sim::Rng& rng) override {
    const double eps = eps0_ * std::pow(decay_, static_cast<double>(t_));
    ++t_;
    if (rng.chance(eps)) return rng.below(q_.size());
    return best();
  }
  void update(std::size_t arm, double reward) override {
    ++n_[arm];
    q_[arm] += (reward - q_[arm]) / static_cast<double>(n_[arm]);
  }
  [[nodiscard]] std::size_t arms() const override { return q_.size(); }
  [[nodiscard]] double value(std::size_t arm) const override { return q_[arm]; }
  [[nodiscard]] std::string name() const override { return "eps-greedy"; }
  void reset() override {
    std::fill(q_.begin(), q_.end(), 0.0);
    std::fill(n_.begin(), n_.end(), std::size_t{0});
    t_ = 0;
  }

 private:
  [[nodiscard]] std::size_t best() const {
    std::size_t b = 0;
    for (std::size_t a = 1; a < q_.size(); ++a) {
      if (q_[a] > q_[b] || (q_[a] == q_[b] && n_[a] < n_[b])) b = a;
    }
    return b;
  }
  double eps0_, decay_;
  std::vector<double> q_;
  std::vector<std::size_t> n_;
  std::size_t t_ = 0;
};

/// UCB1 (Auer et al.): optimism in the face of uncertainty.
class Ucb1 final : public Bandit {
 public:
  explicit Ucb1(std::size_t arms, double c = 1.4142135623730951)
      : c_(c), q_(arms, 0.0), n_(arms, 0) {}

  std::size_t select(sim::Rng&) override {
    ++t_;
    for (std::size_t a = 0; a < q_.size(); ++a) {
      if (n_[a] == 0) return a;  // play each arm once first
    }
    std::size_t best = 0;
    double best_u = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < q_.size(); ++a) {
      const double u =
          q_[a] + c_ * std::sqrt(std::log(static_cast<double>(t_)) /
                                 static_cast<double>(n_[a]));
      if (u > best_u) {
        best_u = u;
        best = a;
      }
    }
    return best;
  }
  void update(std::size_t arm, double reward) override {
    ++n_[arm];
    q_[arm] += (reward - q_[arm]) / static_cast<double>(n_[arm]);
  }
  [[nodiscard]] std::size_t arms() const override { return q_.size(); }
  [[nodiscard]] double value(std::size_t arm) const override { return q_[arm]; }
  [[nodiscard]] std::string name() const override { return "ucb1"; }
  void reset() override {
    std::fill(q_.begin(), q_.end(), 0.0);
    std::fill(n_.begin(), n_.end(), std::size_t{0});
    t_ = 0;
  }

 private:
  double c_;
  std::vector<double> q_;
  std::vector<std::size_t> n_;
  std::size_t t_ = 0;
};

/// Discounted UCB (Garivier & Moulines): value and count estimates decay
/// geometrically, keeping the policy responsive to reward drift.
class DiscountedUcb final : public Bandit {
 public:
  DiscountedUcb(std::size_t arms, double gamma = 0.98, double c = 1.4142)
      : gamma_(gamma), c_(c), w_(arms, 0.0), s_(arms, 0.0) {}

  std::size_t select(sim::Rng&) override {
    for (std::size_t a = 0; a < w_.size(); ++a) {
      if (w_[a] <= 0.0) return a;
    }
    double total_w = 0.0;
    for (double w : w_) total_w += w;
    std::size_t best = 0;
    double best_u = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < w_.size(); ++a) {
      const double u = s_[a] / w_[a] + c_ * std::sqrt(std::log(total_w) / w_[a]);
      if (u > best_u) {
        best_u = u;
        best = a;
      }
    }
    return best;
  }
  void update(std::size_t arm, double reward) override {
    for (std::size_t a = 0; a < w_.size(); ++a) {
      w_[a] *= gamma_;
      s_[a] *= gamma_;
    }
    w_[arm] += 1.0;
    s_[arm] += reward;
  }
  [[nodiscard]] std::size_t arms() const override { return w_.size(); }
  [[nodiscard]] double value(std::size_t arm) const override {
    return w_[arm] > 0.0 ? s_[arm] / w_[arm] : 0.0;
  }
  [[nodiscard]] std::string name() const override { return "d-ucb"; }
  void reset() override {
    std::fill(w_.begin(), w_.end(), 0.0);
    std::fill(s_.begin(), s_.end(), 0.0);
  }

 private:
  double gamma_, c_;
  std::vector<double> w_;  ///< discounted pull counts
  std::vector<double> s_;  ///< discounted reward sums
};

/// Thompson sampling for Bernoulli-ish rewards in [0,1]: Beta posteriors
/// per arm, sampled each decision. Fractional rewards update the
/// pseudo-counts proportionally, which keeps the policy usable for any
/// bounded reward.
class ThompsonSampling final : public Bandit {
 public:
  explicit ThompsonSampling(std::size_t arms)
      : alpha_(arms, 1.0), beta_(arms, 1.0) {}

  std::size_t select(sim::Rng& rng) override {
    std::size_t best = 0;
    double best_sample = -1.0;
    for (std::size_t a = 0; a < alpha_.size(); ++a) {
      const double sample = beta_sample(rng, alpha_[a], beta_[a]);
      if (sample > best_sample) {
        best_sample = sample;
        best = a;
      }
    }
    return best;
  }
  void update(std::size_t arm, double reward) override {
    const double r = std::clamp(reward, 0.0, 1.0);
    alpha_[arm] += r;
    beta_[arm] += 1.0 - r;
  }
  [[nodiscard]] std::size_t arms() const override { return alpha_.size(); }
  [[nodiscard]] double value(std::size_t arm) const override {
    return alpha_[arm] / (alpha_[arm] + beta_[arm]);
  }
  [[nodiscard]] std::string name() const override { return "thompson"; }
  void reset() override {
    std::fill(alpha_.begin(), alpha_.end(), 1.0);
    std::fill(beta_.begin(), beta_.end(), 1.0);
  }

 private:
  /// Beta(a,b) via two gamma draws (Marsaglia-Tsang for shape >= 1, which
  /// always holds here since priors start at 1 and only grow).
  static double gamma_sample(sim::Rng& rng, double shape) {
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = rng.normal();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      const double u = rng.uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v;
      }
    }
  }
  static double beta_sample(sim::Rng& rng, double a, double b) {
    const double x = gamma_sample(rng, a);
    const double y = gamma_sample(rng, b);
    return x / (x + y);
  }
  std::vector<double> alpha_, beta_;
};

/// EXP3 (Auer et al.): exponential weights for *adversarial* rewards — no
/// stationarity assumption at all. Heavier exploration cost than the
/// stochastic policies, but its guarantee survives an adaptive opponent.
class Exp3 final : public Bandit {
 public:
  explicit Exp3(std::size_t arms, double gamma = 0.1)
      : gamma_(gamma), w_(arms, 1.0) {}

  std::size_t select(sim::Rng& rng) override {
    const auto probs = distribution();
    double target = rng.uniform(), acc = 0.0;
    for (std::size_t a = 0; a < probs.size(); ++a) {
      acc += probs[a];
      if (acc >= target) {
        last_prob_ = probs[a];
        return a;
      }
    }
    last_prob_ = probs.back();
    return probs.size() - 1;
  }
  void update(std::size_t arm, double reward) override {
    const double r = std::clamp(reward, 0.0, 1.0);
    const double estimated = r / std::max(last_prob_, 1e-9);
    w_[arm] *= std::exp(gamma_ * estimated /
                        static_cast<double>(w_.size()));
    // Keep the weights bounded (rescaling does not change the policy).
    const double max_w = *std::max_element(w_.begin(), w_.end());
    if (max_w > 1e100) {
      for (auto& w : w_) w /= max_w;
    }
  }
  [[nodiscard]] std::size_t arms() const override { return w_.size(); }
  [[nodiscard]] double value(std::size_t arm) const override {
    double total = 0.0;
    for (double w : w_) total += w;
    return w_[arm] / total;
  }
  [[nodiscard]] std::string name() const override { return "exp3"; }
  void reset() override { std::fill(w_.begin(), w_.end(), 1.0); }

 private:
  [[nodiscard]] std::vector<double> distribution() const {
    double total = 0.0;
    for (double w : w_) total += w;
    std::vector<double> p(w_.size());
    const auto k = static_cast<double>(w_.size());
    for (std::size_t a = 0; a < w_.size(); ++a) {
      p[a] = (1.0 - gamma_) * w_[a] / total + gamma_ / k;
    }
    return p;
  }
  double gamma_;
  std::vector<double> w_;
  double last_prob_ = 1.0;
};

/// Boltzmann / softmax exploration over value estimates.
class SoftmaxBandit final : public Bandit {
 public:
  SoftmaxBandit(std::size_t arms, double temperature = 0.2, double alpha = 0.1)
      : temp_(temperature), alpha_(alpha), q_(arms, 0.0) {}

  std::size_t select(sim::Rng& rng) override {
    double max_q = *std::max_element(q_.begin(), q_.end());
    std::vector<double> p(q_.size());
    double z = 0.0;
    for (std::size_t a = 0; a < q_.size(); ++a) {
      p[a] = std::exp((q_[a] - max_q) / temp_);
      z += p[a];
    }
    double target = rng.uniform() * z, acc = 0.0;
    for (std::size_t a = 0; a < p.size(); ++a) {
      acc += p[a];
      if (acc >= target) return a;
    }
    return p.size() - 1;
  }
  void update(std::size_t arm, double reward) override {
    q_[arm] += alpha_ * (reward - q_[arm]);
  }
  [[nodiscard]] std::size_t arms() const override { return q_.size(); }
  [[nodiscard]] double value(std::size_t arm) const override { return q_[arm]; }
  [[nodiscard]] std::string name() const override { return "softmax"; }
  void reset() override { std::fill(q_.begin(), q_.end(), 0.0); }

 private:
  double temp_, alpha_;
  std::vector<double> q_;
};

}  // namespace sa::learn
