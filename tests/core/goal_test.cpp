#include "core/goal.hpp"

#include <gtest/gtest.h>

namespace sa::core {
namespace {

TEST(UtilityFns, RisingClampsAndInterpolates) {
  const auto u = utility::rising(10.0, 20.0);
  EXPECT_DOUBLE_EQ(u(5.0), 0.0);
  EXPECT_DOUBLE_EQ(u(10.0), 0.0);
  EXPECT_DOUBLE_EQ(u(15.0), 0.5);
  EXPECT_DOUBLE_EQ(u(20.0), 1.0);
  EXPECT_DOUBLE_EQ(u(100.0), 1.0);
}

TEST(UtilityFns, FallingClampsAndInterpolates) {
  const auto u = utility::falling(10.0, 20.0);
  EXPECT_DOUBLE_EQ(u(5.0), 1.0);
  EXPECT_DOUBLE_EQ(u(15.0), 0.5);
  EXPECT_DOUBLE_EQ(u(25.0), 0.0);
}

TEST(UtilityFns, TargetPeaksAtTarget) {
  const auto u = utility::target(50.0, 10.0);
  EXPECT_DOUBLE_EQ(u(50.0), 1.0);
  EXPECT_DOUBLE_EQ(u(55.0), 0.5);
  EXPECT_DOUBLE_EQ(u(45.0), 0.5);
  EXPECT_DOUBLE_EQ(u(65.0), 0.0);
}

TEST(UtilityFns, StepFunctions) {
  EXPECT_DOUBLE_EQ(utility::step_at_least(5.0)(5.0), 1.0);
  EXPECT_DOUBLE_EQ(utility::step_at_least(5.0)(4.9), 0.0);
  EXPECT_DOUBLE_EQ(utility::step_at_most(5.0)(5.0), 1.0);
  EXPECT_DOUBLE_EQ(utility::step_at_most(5.0)(5.1), 0.0);
}

TEST(UtilityFns, DegenerateRangesActAsSteps) {
  EXPECT_DOUBLE_EQ(utility::rising(5.0, 5.0)(6.0), 1.0);
  EXPECT_DOUBLE_EQ(utility::rising(5.0, 5.0)(4.0), 0.0);
  EXPECT_DOUBLE_EQ(utility::falling(5.0, 5.0)(4.0), 1.0);
  EXPECT_DOUBLE_EQ(utility::target(5.0, 0.0)(5.0), 1.0);
  EXPECT_DOUBLE_EQ(utility::target(5.0, 0.0)(5.1), 0.0);
}

TEST(GoalModel, EmptyModelHasZeroUtility) {
  GoalModel g;
  EXPECT_DOUBLE_EQ(g.utility({}), 0.0);
  EXPECT_EQ(g.objectives(), 0u);
}

TEST(GoalModel, SingleObjectivePassesThrough) {
  GoalModel g;
  g.add_objective({"x", utility::rising(0.0, 10.0), 1.0});
  EXPECT_DOUBLE_EQ(g.utility({{"x", 5.0}}), 0.5);
}

TEST(GoalModel, WeightsBlendObjectives) {
  GoalModel g;
  g.add_objective({"a", utility::rising(0.0, 1.0), 3.0});
  g.add_objective({"b", utility::rising(0.0, 1.0), 1.0});
  // a=1 (u=1, w=3), b=0 (u=0, w=1) -> 3/4.
  EXPECT_DOUBLE_EQ(g.utility({{"a", 1.0}, {"b", 0.0}}), 0.75);
}

TEST(GoalModel, MissingMetricScoresZero) {
  GoalModel g;
  g.add_objective({"a", utility::rising(0.0, 1.0), 1.0});
  g.add_objective({"b", utility::rising(0.0, 1.0), 1.0});
  EXPECT_DOUBLE_EQ(g.utility({{"a", 1.0}}), 0.5);
}

TEST(GoalModel, SetWeightChangesTradeoffAtRuntime) {
  GoalModel g;
  g.add_objective({"perf", utility::rising(0.0, 1.0), 1.0});
  g.add_objective({"power", utility::falling(0.0, 1.0), 1.0});
  const MetricMap m{{"perf", 1.0}, {"power", 1.0}};  // perf great, power bad
  EXPECT_DOUBLE_EQ(g.utility(m), 0.5);
  ASSERT_TRUE(g.set_weight("power", 3.0));  // stakeholder now cares re power
  EXPECT_DOUBLE_EQ(g.utility(m), 0.25);
  EXPECT_DOUBLE_EQ(g.weight("power").value(), 3.0);
}

TEST(GoalModel, SetWeightOnUnknownMetricFails) {
  GoalModel g;
  g.add_objective({"x", utility::rising(0.0, 1.0), 1.0});
  EXPECT_FALSE(g.set_weight("y", 2.0));
  EXPECT_FALSE(g.weight("y").has_value());
}

TEST(GoalModel, HardConstraintZeroesUtility) {
  GoalModel g;
  g.add_objective({"x", utility::rising(0.0, 1.0), 1.0});
  g.add_constraint({"cap",
                    [](const MetricMap& m) { return m.at("x") <= 0.5; },
                    /*hard=*/true});
  EXPECT_DOUBLE_EQ(g.utility({{"x", 0.4}}), 0.4);
  EXPECT_DOUBLE_EQ(g.utility({{"x", 0.9}}), 0.0);
  EXPECT_FALSE(g.feasible({{"x", 0.9}}));
  EXPECT_TRUE(g.feasible({{"x", 0.4}}));
}

TEST(GoalModel, SoftConstraintAppliesPenalty) {
  GoalModel g;
  g.add_objective({"x", utility::rising(0.0, 1.0), 1.0});
  g.add_constraint({"soft",
                    [](const MetricMap& m) { return m.at("x") <= 0.5; },
                    /*hard=*/false,
                    /*penalty=*/0.3});
  EXPECT_NEAR(g.utility({{"x", 0.9}}), 0.6, 1e-12);
  // Soft violations do not make the state infeasible.
  EXPECT_TRUE(g.feasible({{"x", 0.9}}));
}

TEST(GoalModel, UtilityIsClampedToUnitInterval) {
  GoalModel g;
  g.add_objective({"x", utility::rising(0.0, 1.0), 1.0});
  g.add_constraint({"s1", [](const MetricMap&) { return false; }, false, 0.9});
  g.add_constraint({"s2", [](const MetricMap&) { return false; }, false, 0.9});
  EXPECT_DOUBLE_EQ(g.utility({{"x", 0.5}}), 0.0);
}

TEST(GoalModel, ViolationsListsNames) {
  GoalModel g;
  g.add_constraint({"a", [](const MetricMap&) { return false; }, true});
  g.add_constraint({"b", [](const MetricMap&) { return true; }, true});
  g.add_constraint({"c", [](const MetricMap&) { return false; }, false});
  EXPECT_EQ(g.violations({}), (std::vector<std::string>{"a", "c"}));
}

TEST(GoalModel, BreakdownReportsPerObjective) {
  GoalModel g;
  g.add_objective({"a", utility::rising(0.0, 1.0), 1.0});
  g.add_objective({"b", utility::falling(0.0, 1.0), 2.0});
  const auto bd = g.breakdown({{"a", 0.25}, {"b", 0.25}});
  ASSERT_EQ(bd.size(), 2u);
  EXPECT_EQ(bd[0].first, "a");
  EXPECT_DOUBLE_EQ(bd[0].second, 0.25);
  EXPECT_DOUBLE_EQ(bd[1].second, 0.75);
}

TEST(GoalModel, DominatesRequiresStrictImprovement) {
  GoalModel g;
  g.add_objective({"a", utility::rising(0.0, 1.0), 1.0});
  g.add_objective({"b", utility::rising(0.0, 1.0), 1.0});
  const MetricMap x{{"a", 0.8}, {"b", 0.8}};
  const MetricMap y{{"a", 0.5}, {"b", 0.8}};
  EXPECT_TRUE(g.dominates(x, y));
  EXPECT_FALSE(g.dominates(y, x));
  EXPECT_FALSE(g.dominates(x, x));  // equal: no strict improvement
}

TEST(GoalModel, DominatesFailsOnTradeOff) {
  GoalModel g;
  g.add_objective({"a", utility::rising(0.0, 1.0), 1.0});
  g.add_objective({"b", utility::rising(0.0, 1.0), 1.0});
  const MetricMap x{{"a", 0.9}, {"b", 0.1}};
  const MetricMap y{{"a", 0.1}, {"b", 0.9}};
  EXPECT_FALSE(g.dominates(x, y));
  EXPECT_FALSE(g.dominates(y, x));
}

TEST(GoalModel, RawUtilityIgnoresConstraints) {
  GoalModel g;
  g.add_objective({"x", utility::rising(0.0, 1.0), 1.0});
  g.add_constraint({"never", [](const MetricMap&) { return false; }, true});
  EXPECT_DOUBLE_EQ(g.raw_utility({{"x", 0.7}}), 0.7);
  EXPECT_DOUBLE_EQ(g.utility({{"x", 0.7}}), 0.0);
}

}  // namespace
}  // namespace sa::core
