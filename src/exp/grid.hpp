// Declarative seed × variant experiment grids.
//
// An experiment describes its runs as a Grid — a list of named variants,
// a list of seeds, and a task function evaluating one (variant, seed)
// cell to a set of named metrics. The Runner fans the cells out across
// hardware threads; because every cell owns its own substrate instances
// and a deterministic RNG stream derived from (experiment, variant, seed)
// via splitmix64, the results are bitwise-identical regardless of thread
// count or scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace sa::sim {
class Engine;
class TelemetryBus;
class Tracer;
class MetricsRegistry;
}  // namespace sa::sim

namespace sa::core {
class SelfAwareAgent;
class DegradationPolicy;
}  // namespace sa::core

namespace sa::fault {
class Injector;
}  // namespace sa::fault

namespace sa::exp {

/// What a task hands the harness when it is the *served cell* (--serve):
/// non-owning pointers to the live objects the sa::serve control plane
/// exposes. Everything is optional except the engine; all of it must stay
/// alive until the task returns (the serve bridge publishes snapshots at
/// engine-step boundaries for the duration of the run).
struct ServeHooks {
  sim::Engine* engine = nullptr;
  std::vector<core::SelfAwareAgent*> agents;
  std::vector<core::DegradationPolicy*> ladders;
  fault::Injector* injector = nullptr;
  /// When set, POST /control cmd=checkpoint saves a world snapshot at the
  /// next step boundary: the callable (built by the task, typically over a
  /// ckpt::WorldCheckpoint targeting TaskContext::checkpoint_path) runs on
  /// the sim thread with the current sim time and returns success.
  std::function<bool(double t)> checkpoint;
  /// Per-shard stats source for sharded cells (--shards > 1): returns the
  /// per-shard executed-event counts (shard::ShardedWorld::shard_events();
  /// last entry = coordinator) and the cumulative barrier-lag seconds. The
  /// bridge calls it on the sim thread at publish boundaries — where the
  /// shard engines are barrier-paused — and surfaces the copy as
  /// sa_shard_events_total{shard=…} / sa_shard_lag_seconds and the /status
  /// `shards` block.
  std::function<std::pair<std::vector<std::uint64_t>, double>()> shard_stats;
};

/// Named metric values produced by one task, in a fixed (reported) order.
using Metrics = std::vector<std::pair<std::string, double>>;

/// What one grid cell returns: metrics plus an optional free-text payload
/// (e.g. a sample explanation) surfaced in the console/JSON reports.
struct TaskOutput {
  Metrics metrics;
  std::string note;

  TaskOutput() = default;
  TaskOutput(Metrics m, std::string n = {})  // NOLINT(google-explicit-constructor)
      : metrics(std::move(m)), note(std::move(n)) {}
};

/// FNV-1a string hash (stable across platforms; used for stream keys).
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return h;
}

/// The deterministic RNG stream key of a grid cell: splitmix64 chained
/// over (experiment, variant, seed). Independent of thread count and of
/// every other cell, so adding variants/seeds never perturbs existing ones.
constexpr std::uint64_t stream_of(std::string_view experiment,
                                  std::string_view variant,
                                  std::uint64_t seed) noexcept {
  return sim::mix64(sim::mix64(sim::mix64(fnv1a(experiment)) ^ fnv1a(variant)) ^
                    seed);
}

/// Everything a task may depend on. Tasks must derive all randomness from
/// `seed` (substrate seeding, as the original serial binaries did) and/or
/// `rng()` — never from global state, time, or other cells.
struct TaskContext {
  std::string_view experiment;   ///< owning experiment name
  std::string_view variant_name; ///< grid.variants[variant]
  std::size_t variant = 0;       ///< index into grid.variants
  std::uint64_t seed = 0;        ///< the cell's seed
  std::uint64_t stream = 0;      ///< stream_of(experiment, variant, seed)

  /// Engine shards this cell should run its world across (--shards N;
  /// sa::shard). 1 = the single-engine path. Tasks that build scenario
  /// worlds honour it via shard::ShardedWorld — trajectories are
  /// byte-identical for every value — and report the per-shard event
  /// counts back through Harness::note_shard_events. Tasks without a
  /// scenario world ignore it.
  unsigned shards = 1;

  /// Observability hooks — non-null only for the harness's *traced cell*
  /// (one designated cell when --trace/--metrics was given; see
  /// exp/harness.hpp). Tasks that support tracing wire these into their
  /// substrate/agent configs. They must never influence the trajectory:
  /// telemetry and tracing never touch an Rng, so a task's metrics must
  /// be identical whether or not these are set.
  sim::TelemetryBus* telemetry = nullptr;
  sim::Tracer* tracer = nullptr;
  sim::MetricsRegistry* metrics = nullptr;

  /// Set only for the harness's *served cell* when --serve was given (the
  /// same designated cell as tracing). Tasks that support live serving
  /// call it once, after wiring and before running the engine:
  ///   exp::ServeHooks hooks;
  ///   hooks.engine = &engine;          // plus agents/ladders/injector
  ///   if (ctx.serve_bind) ctx.serve_bind(hooks);
  /// The callee schedules snapshot-publish events on the engine; like the
  /// tracer it draws no randomness, so binding never perturbs metrics.
  std::function<void(const ServeHooks&)> serve_bind;

  /// Control-journal spec (sa::ckpt::parse_journal_spec syntax) to replay
  /// into this cell, or empty. Set for every cell from --control-journal
  /// (plus, on --resume, the journal recorded live before the
  /// interruption); tasks that support it schedule the entries on their
  /// engine at the recorded sim times (ckpt::schedule_replay).
  std::string_view control_journal;

  /// Destination for this cell's on-demand world snapshot (the /control
  /// cmd=checkpoint path) — non-empty only for the harness's designated
  /// cell when --checkpoint was given.
  std::string_view checkpoint_path;

  /// A fresh generator on this cell's private stream.
  [[nodiscard]] sim::Rng rng() const noexcept { return sim::Rng{stream}; }
};

struct Grid {
  std::string name;                   ///< short id, e.g. "e1" or "e5.cloud"
  std::vector<std::string> variants;  ///< row/configuration names
  std::vector<std::uint64_t> seeds;   ///< replications per variant
  std::function<TaskOutput(const TaskContext&)> task;
};

}  // namespace sa::exp
