
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agent.cpp" "src/core/CMakeFiles/sa_core.dir/agent.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/agent.cpp.o.d"
  "/root/repo/src/core/attention.cpp" "src/core/CMakeFiles/sa_core.dir/attention.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/attention.cpp.o.d"
  "/root/repo/src/core/collective.cpp" "src/core/CMakeFiles/sa_core.dir/collective.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/collective.cpp.o.d"
  "/root/repo/src/core/explain.cpp" "src/core/CMakeFiles/sa_core.dir/explain.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/explain.cpp.o.d"
  "/root/repo/src/core/goal.cpp" "src/core/CMakeFiles/sa_core.dir/goal.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/goal.cpp.o.d"
  "/root/repo/src/core/goal_awareness.cpp" "src/core/CMakeFiles/sa_core.dir/goal_awareness.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/goal_awareness.cpp.o.d"
  "/root/repo/src/core/interaction.cpp" "src/core/CMakeFiles/sa_core.dir/interaction.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/interaction.cpp.o.d"
  "/root/repo/src/core/knowledge.cpp" "src/core/CMakeFiles/sa_core.dir/knowledge.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/knowledge.cpp.o.d"
  "/root/repo/src/core/meta.cpp" "src/core/CMakeFiles/sa_core.dir/meta.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/meta.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/core/CMakeFiles/sa_core.dir/pareto.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/pareto.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/sa_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/sa_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/sharing.cpp" "src/core/CMakeFiles/sa_core.dir/sharing.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/sharing.cpp.o.d"
  "/root/repo/src/core/stimulus.cpp" "src/core/CMakeFiles/sa_core.dir/stimulus.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/stimulus.cpp.o.d"
  "/root/repo/src/core/time_awareness.cpp" "src/core/CMakeFiles/sa_core.dir/time_awareness.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/time_awareness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
