// Self-explanation.
//
// Because a self-aware system acts from explicit self-models, it can report
// *why* it acted (Schubert [25]; Cox [28]; paper Sections III and VI:
// "self-explanation, a form of reporting in which the reasons behind action
// (or inaction) are made clear"). The Explainer captures, per decision, the
// chosen action, the alternatives with their scores, the knowledge items
// consulted (with value and confidence at decision time) and the goal
// state; render() produces the human-readable account. Experiment E8
// measures the overhead and coverage of this machinery.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "sim/trace.hpp"

namespace sa::core {

/// A knowledge item as it stood when the decision was taken.
struct EvidenceSnapshot {
  std::string key;
  double value = 0.0;
  double confidence = 0.0;
};

/// The full account of one decision.
struct Explanation {
  double t = 0.0;
  std::string agent;
  Decision decision;
  std::vector<EvidenceSnapshot> evidence;
  double goal_utility = 0.0;
  bool has_goal = false;
  /// Trace id of the decide span (0 when the agent ran untraced). With a
  /// tracer attached, every explanation is reproducible from the exported
  /// trace file: render() cites these ids.
  sim::TraceId trace_id = 0;
  /// Trace ids of the evidence consulted (observation + stimulus chains).
  std::vector<sim::TraceId> cited;
  /// Set by core::DegradationPolicy when this entry records a level
  /// transition rather than an action choice: the mode stepped from/to
  /// ("meta", "goal", "stimulus", "reactive"). render() then produces the
  /// transition form ("Degraded meta→goal at t=…: …, trace #N").
  std::string from_mode, to_mode;

  /// Renders a human-readable explanation paragraph.
  [[nodiscard]] std::string render() const;
};

/// Collects explanations and tracks coverage (decisions explained /
/// decisions made). Disabled instances cost one branch per decision.
class Explainer {
 public:
  explicit Explainer(bool enabled = true) : enabled_(enabled) {}

  /// Counts a decision; stores the explanation when enabled.
  void record(Explanation e);
  /// Counts a decision that produced no explanation (coverage accounting).
  void note_unexplained() { ++decisions_; }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool e) noexcept { enabled_ = e; }
  [[nodiscard]] std::size_t size() const noexcept { return log_.size(); }
  [[nodiscard]] std::size_t decisions() const noexcept { return decisions_; }
  /// Fraction of decisions for which an explanation exists.
  [[nodiscard]] double coverage() const noexcept {
    return decisions_ == 0
               ? 0.0
               : static_cast<double>(log_.size()) /
                     static_cast<double>(decisions_);
  }
  /// The i-th retained explanation, oldest first.
  [[nodiscard]] const Explanation& at(std::size_t i) const {
    return log_[(head_ + i) % log_.size()];
  }
  /// Deep copy of the newest min(last_n, size()) explanations in
  /// chronological order. This is the ring's one read path that hands out
  /// owned values rather than references into the ring — the discipline
  /// every cross-thread consumer must follow: the serve layer's /status
  /// publisher calls it on the sim thread at a step boundary and publishes
  /// the copy for server threads, so no reader ever aliases a slot that
  /// record() may overwrite.
  [[nodiscard]] std::vector<Explanation> snapshot(std::size_t last_n) const;
  /// Retained explanations in chronological order (snapshot of the whole
  /// ring).
  [[nodiscard]] std::vector<Explanation> all() const {
    return snapshot(log_.size());
  }
  [[nodiscard]] std::optional<Explanation> last() const {
    if (log_.empty()) return std::nullopt;
    return at(log_.size() - 1);
  }
  /// Rendered explanation of the most recent decision ("" if none).
  [[nodiscard]] std::string why_last() const {
    const auto newest = snapshot(1);
    return newest.empty() ? std::string{} : newest.back().render();
  }
  /// Aggregate view over the retained log: how often was `action` chosen,
  /// at what mean goal utility, and what did the most recent choice of it
  /// look like? Answers the operator question "why do you keep doing X?".
  struct ActionSummary {
    std::size_t count = 0;       ///< times `action` appears in the log
    double mean_goal_utility = 0.0;  ///< over entries with goal state
    std::string last_rationale;  ///< rationale of the most recent one
  };
  [[nodiscard]] ActionSummary summarise(const std::string& action) const;

  /// Keeps memory bounded on long runs: the log is a ring holding the
  /// most recent `capacity` explanations. Shrinking drops the oldest.
  void set_capacity(std::size_t cap);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void clear() {
    log_.clear();
    head_ = 0;
    decisions_ = 0;
  }

 private:
  bool enabled_;
  std::size_t capacity_ = 4096;
  /// Ring buffer: log_ grows to capacity_, then head_ marks the oldest
  /// slot and record() overwrites in place — no per-decision reshuffle.
  std::vector<Explanation> log_;
  std::size_t head_ = 0;
  std::size_t decisions_ = 0;
};

}  // namespace sa::core
