#include "core/levels.hpp"

#include <gtest/gtest.h>

namespace sa::core {
namespace {

TEST(LevelSet, DefaultIsEmpty) {
  LevelSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.has(Level::Stimulus));
  EXPECT_EQ(s.to_string(), "none");
}

TEST(LevelSet, SetAndUnset) {
  LevelSet s;
  s.set(Level::Time);
  EXPECT_TRUE(s.has(Level::Time));
  EXPECT_EQ(s.count(), 1u);
  s.unset(Level::Time);
  EXPECT_FALSE(s.has(Level::Time));
  EXPECT_TRUE(s.empty());
}

TEST(LevelSet, InitializerList) {
  const LevelSet s{Level::Stimulus, Level::Goal};
  EXPECT_TRUE(s.has(Level::Stimulus));
  EXPECT_TRUE(s.has(Level::Goal));
  EXPECT_FALSE(s.has(Level::Meta));
  EXPECT_EQ(s.count(), 2u);
}

TEST(LevelSet, FullHasAllFive) {
  const auto s = LevelSet::full();
  EXPECT_EQ(s.count(), 5u);
  for (Level l : {Level::Stimulus, Level::Interaction, Level::Time,
                  Level::Goal, Level::Meta}) {
    EXPECT_TRUE(s.has(l));
  }
}

TEST(LevelSet, MinimalIsStimulusOnly) {
  const auto s = LevelSet::minimal();
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.has(Level::Stimulus));
}

TEST(LevelSet, EqualityIsStructural) {
  EXPECT_EQ((LevelSet{Level::Goal, Level::Time}),
            (LevelSet{Level::Time, Level::Goal}));
  EXPECT_NE(LevelSet::full(), LevelSet::minimal());
}

TEST(LevelSet, ToStringListsLevelsInOrder) {
  EXPECT_EQ((LevelSet{Level::Meta, Level::Stimulus}).to_string(),
            "stimulus+meta");
  EXPECT_EQ(LevelSet::full().to_string(),
            "stimulus+interaction+time+goal+meta");
}

TEST(LevelSet, SetIsIdempotent) {
  LevelSet s;
  s.set(Level::Goal).set(Level::Goal);
  EXPECT_EQ(s.count(), 1u);
}

TEST(LevelNames, AreStable) {
  EXPECT_STREQ(level_name(Level::Stimulus), "stimulus");
  EXPECT_STREQ(level_name(Level::Interaction), "interaction");
  EXPECT_STREQ(level_name(Level::Time), "time");
  EXPECT_STREQ(level_name(Level::Goal), "goal");
  EXPECT_STREQ(level_name(Level::Meta), "meta");
}

}  // namespace
}  // namespace sa::core
