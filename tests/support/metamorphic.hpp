// Reusable metamorphic-testing helpers shared by the property, gen and
// integration suites.
//
// A metamorphic test does not know the "right" answer; it knows a relation
// that must hold between two runs of the system. The two relations this
// header packages are the ones the repo's determinism contract is built
// on:
//
//   * run-twice-and-byte-compare — two executions that are supposed to be
//     equivalent (serial vs parallel pools, with vs without telemetry,
//     repeated identical runs) must serialise to identical bytes;
//   * run-under-transform-and-assert-relation — a controlled change to the
//     input (e.g. scaling fault pressure) must move an output metric in a
//     known direction (monotone()).
//
// Everything returns ::testing::AssertionResult so call sites read as
// EXPECT_TRUE(test::support::byte_identical(a, b)) with a useful message
// on failure (first differing byte plus surrounding context).
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "exp/harness.hpp"
#include "exp/runner.hpp"

namespace sa::test::support {

/// A worker-pool size that genuinely interleaves even on small CI
/// machines (promoted from the integration determinism suite).
inline unsigned parallel_jobs() {
  return std::max(4u, std::thread::hardware_concurrency());
}

/// Grid result serialised without wall-clock fields, so byte comparison
/// sees only simulated behaviour.
inline std::string timing_free_json(const exp::GridResult& result) {
  return exp::to_json(result, /*include_timing=*/false).dump();
}

/// Byte-exact comparison with a first-difference diagnostic. `what` names
/// the two artefacts in the failure message.
inline ::testing::AssertionResult byte_identical(
    std::string_view a, std::string_view b,
    std::string_view what = "serialisations") {
  if (a == b) return ::testing::AssertionSuccess();
  std::size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  const auto snippet = [i](std::string_view s) {
    const std::size_t from = i < 40 ? 0 : i - 40;
    return std::string(s.substr(from, std::min<std::size_t>(80, s.size() - from)));
  };
  return ::testing::AssertionFailure()
         << what << " differ (sizes " << a.size() << " vs " << b.size()
         << ", first difference at byte " << i << "):\n  a: ..."
         << snippet(a) << "...\n  b: ..." << snippet(b) << "...";
}

/// Run-twice-and-byte-compare over a string producer: calls `run` twice
/// and requires identical bytes (e.g. a Scenario summary serialiser).
template <typename Producer>
::testing::AssertionResult reproduces(Producer&& run,
                                      std::string_view what = "repeated runs") {
  const std::string first = run();
  const std::string second = run();
  return byte_identical(first, second, what);
}

/// The thread-count-invariance relation: a grid executed by a 1-worker
/// pool and by a many-worker pool must produce byte-identical timing-free
/// JSON. `jobs == 0` picks parallel_jobs().
inline ::testing::AssertionResult thread_count_invariant(
    const exp::Grid& grid, unsigned jobs = 0) {
  if (jobs == 0) jobs = parallel_jobs();
  const auto serial = exp::Runner(1).run("metamorphic", grid);
  const auto parallel = exp::Runner(jobs).run("metamorphic", grid);
  if (serial.errors() != 0 || parallel.errors() != 0) {
    return ::testing::AssertionFailure()
           << "grid '" << grid.name << "' raised task errors (serial "
           << serial.errors() << ", parallel " << parallel.errors() << ")";
  }
  return byte_identical(timing_free_json(serial), timing_free_json(parallel),
                        "serial vs " + std::to_string(jobs) +
                            "-worker grid results");
}

/// Directions for monotone(). "Strictly" forbids ties.
enum class Relation {
  kNonDecreasing,
  kNonIncreasing,
  kStrictlyIncreasing,
  kStrictlyDecreasing,
};

/// Run-under-transform relation: `values[k]` was measured under the k-th
/// step of a transform (e.g. fault pressure 0, 2, 8) and must move in
/// `rel`'s direction. `what` names the metric in the failure message.
inline ::testing::AssertionResult monotone(const std::vector<double>& values,
                                           Relation rel,
                                           std::string_view what = "metric") {
  for (std::size_t k = 1; k < values.size(); ++k) {
    const double prev = values[k - 1], cur = values[k];
    const bool ok = rel == Relation::kNonDecreasing     ? cur >= prev
                    : rel == Relation::kNonIncreasing   ? cur <= prev
                    : rel == Relation::kStrictlyIncreasing ? cur > prev
                                                           : cur < prev;
    if (!ok) {
      std::ostringstream os;
      os << what << " not monotone at step " << k << ": ";
      for (std::size_t j = 0; j < values.size(); ++j) {
        os << (j ? ", " : "") << values[j];
      }
      return ::testing::AssertionFailure() << os.str();
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace sa::test::support
