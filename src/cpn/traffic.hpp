// Traffic generation, including denial-of-service floods.
//
// Legitimate traffic runs over a fixed set of flows (source-destination
// pairs) at a Poisson rate. During the attack window, attacker nodes flood
// a victim with attack packets that congest whatever links they cross —
// the Gelenbe & Loukas [39] scenario experiment E4 reproduces: a static
// router keeps pushing legitimate packets through the congested region,
// while the self-aware router observes the inflated delays and routes
// around it.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cpn/network.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace sa::cpn {

struct TrafficParams {
  std::size_t flows = 8;          ///< number of legitimate flows
  double legit_rate = 2.0;        ///< legit packets per tick (network-wide)
  double attack_start = -1.0;     ///< tick; <0 disables the attack
  double attack_end = -1.0;
  double attack_rate = 30.0;      ///< flood packets per tick
  std::size_t attackers = 3;      ///< distinct flood sources
  std::uint64_t seed = 43;
};

class TrafficGenerator {
 public:
  TrafficGenerator(const Topology& topo, TrafficParams p);

  /// Injects this tick's packets into `net` (call once per tick, before
  /// net.step()).
  void tick(PacketNetwork& net);

  /// Drives tick(net) through `engine` every `period` (order 0). Call
  /// before net.bind() on the same engine so injections run before the
  /// transit step at each tick, as in the synchronous loop. `net` must
  /// outlive the engine events.
  void bind(sim::Engine& engine, PacketNetwork& net, double period = 1.0);

  [[nodiscard]] bool attacking(double t) const {
    return p_.attack_start >= 0.0 && t >= p_.attack_start &&
           t < p_.attack_end;
  }
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>&
  flows() const noexcept {
    return flows_;
  }
  [[nodiscard]] std::size_t victim() const noexcept { return victim_; }

 private:
  TrafficParams p_;
  sim::Rng rng_;
  std::vector<std::pair<std::size_t, std::size_t>> flows_;
  std::vector<std::size_t> attacker_nodes_;
  std::size_t victim_ = 0;
};

}  // namespace sa::cpn
