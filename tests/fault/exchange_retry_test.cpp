// Knowledge-exchange under the ExchangeDrop fault: blocked rounds retry
// with exponential backoff instead of aborting, and only an exhausted
// retry budget counts as a timeout (reported to interaction awareness).
#include <gtest/gtest.h>

#include <vector>

#include "core/agent.hpp"
#include "core/runtime.hpp"
#include "fault/adapters.hpp"
#include "fault/fault.hpp"
#include "sim/engine.hpp"

namespace sa::core {
namespace {

struct ExchangeRig {
  sim::Engine engine;
  AgentRuntime rt{engine};
  SelfAwareAgent a{"alice"};
  SelfAwareAgent b{"bob"};

  explicit ExchangeRig(double period = 1.0) {
    a.knowledge().put_number("temp", 21.0, 0.0, 1.0, Scope::Public, "t");
    b.knowledge().put_number("temp", 23.0, 0.0, 1.0, Scope::Public, "t");
    rt.schedule_exchange({&a, &b}, period);
  }
};

TEST(ExchangeRetry, OpenGateExchangesWithoutDropsOrRetries) {
  ExchangeRig rig;
  rig.engine.run_until(3.5);
  EXPECT_GT(rig.rt.items_exchanged(), 0u);
  EXPECT_EQ(rig.rt.exchange_drops(), 0u);
  EXPECT_EQ(rig.rt.exchange_retries(), 0u);
  EXPECT_EQ(rig.rt.exchange_timeouts(), 0u);
  EXPECT_TRUE(rig.a.knowledge().contains("shared.bob.temp"));
  EXPECT_TRUE(rig.b.knowledge().contains("shared.alice.temp"));
}

TEST(ExchangeRetry, BlockedRoundsRetryThenTimeOut) {
  ExchangeRig rig;
  rig.rt.set_exchange_blocked(true);
  // One round at t=1: attempt 0 plus 3 retries (default budget), each
  // finding the gate blocked, then one timeout. Backoff = period/8 * 2^k,
  // so the whole ladder resolves well before the next round at t=2.
  rig.engine.run_until(1.9);
  EXPECT_EQ(rig.rt.exchange_drops(), 4u);
  EXPECT_EQ(rig.rt.exchange_retries(), 3u);
  EXPECT_EQ(rig.rt.exchange_timeouts(), 1u);
  EXPECT_EQ(rig.rt.items_exchanged(), 0u);
  EXPECT_FALSE(rig.a.knowledge().contains("shared.bob.temp"));
}

TEST(ExchangeRetry, TransientBlockResolvesWithinTheRetryBudget) {
  ExchangeRig rig;
  rig.rt.set_exchange_blocked(true);
  // Unblock between the first attempt (t=1) and its first retry
  // (t=1.125): the round must complete late instead of timing out.
  rig.engine.at(1.1, [&] { rig.rt.set_exchange_blocked(false); });
  rig.engine.run_until(1.9);
  EXPECT_EQ(rig.rt.exchange_drops(), 1u);
  EXPECT_EQ(rig.rt.exchange_retries(), 1u);
  EXPECT_EQ(rig.rt.exchange_timeouts(), 0u);
  EXPECT_GT(rig.rt.items_exchanged(), 0u);
  EXPECT_TRUE(rig.a.knowledge().contains("shared.bob.temp"));
}

TEST(ExchangeRetry, TimeoutIsReportedToInteractionAwareness) {
  ExchangeRig rig;
  rig.rt.set_exchange_blocked(true);
  rig.engine.run_until(1.9);
  ASSERT_EQ(rig.rt.exchange_timeouts(), 1u);
  // Each agent saw one failed interaction with its peer — the failed
  // exchange round is evidence, not silence.
  ASSERT_NE(rig.a.interaction(), nullptr);
  EXPECT_EQ(rig.a.interaction()->interactions("bob"), 1u);
  EXPECT_EQ(rig.b.interaction()->interactions("alice"), 1u);
  EXPECT_LT(rig.a.interaction()->reliability("bob"), 1.0);
}

TEST(ExchangeRetry, CustomRetryBudgetAndBackoffAreHonoured) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent a("a"), b("b");
  a.knowledge().put_number("k", 1.0, 0.0, 1.0, Scope::Public, "t");
  rt.set_exchange_retry(1, 0.25);
  rt.schedule_exchange({&a, &b}, 1.0);
  rt.set_exchange_blocked(true);
  engine.run_until(1.9);
  // attempt at 1.0, single retry at 1.25, then timeout.
  EXPECT_EQ(rt.exchange_drops(), 2u);
  EXPECT_EQ(rt.exchange_retries(), 1u);
  EXPECT_EQ(rt.exchange_timeouts(), 1u);
}

TEST(ExchangeRetry, RetryLadderOutlivingItsRoundIsSafe) {
  // Regression: a retry event must own its copy of the agents vector.
  // With a large budget the ladder from the round at t=1 stretches past
  // the rounds at t=2..5 (retries at 1.3, 1.9, 3.1, 5.5); each of those
  // firings destroys the engine's copy of the periodic closure, so a
  // retry that still referenced the round's vector would read freed
  // memory (caught under ASan).
  ExchangeRig rig;
  rig.rt.set_exchange_retry(4, 0.3);
  // Re-register with the larger budget; the rig's original stream keeps
  // its defaults and just adds unblocked rounds.
  rig.rt.schedule_exchange({&rig.a, &rig.b}, 1.0);
  rig.rt.set_exchange_blocked(true);
  rig.engine.at(6.0, [&] { rig.rt.set_exchange_blocked(false); });
  rig.engine.run_until(8.5);
  EXPECT_GT(rig.rt.exchange_retries(), 0u);
  EXPECT_GT(rig.rt.exchange_timeouts(), 0u);
  EXPECT_GT(rig.rt.items_exchanged(), 0u);  // resumed once unblocked
  EXPECT_TRUE(rig.a.knowledge().contains("shared.bob.temp"));
}

TEST(ExchangeRetry, InjectorDrivesTheGateThroughTheFaultWindow) {
  // End-to-end: an ExchangeDrop fault window blocks rounds mid-run; when
  // it lifts, exchange resumes — degradation of the collective layer is
  // graceful, not fatal.
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent a("a"), b("b");
  a.knowledge().put_number("k", 1.0, 0.0, 1.0, Scope::Public, "t");
  b.knowledge().put_number("k", 2.0, 0.0, 1.0, Scope::Public, "t");
  rt.schedule_exchange({&a, &b}, 1.0);

  fault::Injector inj;
  fault::bind_exchange(inj, rt);
  // Fault window [0.5, 6.5): the rounds inside it defer and time out;
  // rounds after the window exchange normally.
  engine.at(0.5, [&] { inj.surface(0).begin(0, 1.0); });
  engine.at(6.5, [&] { inj.surface(0).end(0, 1.0); });
  engine.run_until(10.5);
  EXPECT_GT(rt.exchange_drops(), 0u);
  EXPECT_GT(rt.exchange_timeouts(), 0u);
  EXPECT_GT(rt.items_exchanged(), 0u);  // resumed after the window
}

}  // namespace
}  // namespace sa::core
