// SimBridge semantics: snapshot publishing at step boundaries, the control
// mailbox (commands land between engine events only), pause/resume across
// the seam, SSE delivery, and shutdown observability.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/journal.hpp"
#include "core/agent.hpp"
#include "fault/adapters.hpp"
#include "fault/fault.hpp"
#include "multicore/platform.hpp"
#include "serve/bridge.hpp"
#include "serve/server.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/telemetry.hpp"
#include "test_client.hpp"

namespace {

using namespace sa;
using namespace sa::serve;
namespace client = sa::serve::testing;

Server::Options quick_opts() {
  Server::Options opts;
  opts.workers = 2;
  opts.read_timeout_ms = 500;
  return opts;
}

/// Polls GET /status until `needle` appears (or ~2.5 s elapse).
std::string await_status(unsigned short port, const std::string& needle) {
  std::string body;
  for (int i = 0; i < 250; ++i) {
    body = client::body_of(client::http_get(port, "/status"));
    if (body.find(needle) != std::string::npos) return body;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return body;
}

TEST(SimBridge, PublishesStatusAndMetricsSnapshots) {
  sim::Engine engine;
  sim::MetricsRegistry metrics;
  const auto c = metrics.counter("bridge.test");
  sim::TelemetryBus bus;
  const auto subj = bus.intern_subject("unit.test");
  core::SelfAwareAgent agent("probe", {});

  SimBridge bridge;
  bridge.set_metrics(&metrics);
  bridge.set_telemetry(&bus);
  bridge.add_agent(&agent);

  engine.every(0.05, [&] {
    metrics.add(c);
    bus.record(engine.now(), sim::TelemetryBus::kObservation, subj, 1.0);
    return true;
  });
  bridge.attach(engine);

  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  engine.run_until(1.0);

  const std::string status =
      client::body_of(client::http_get(server.port(), "/status"));
  EXPECT_NE(status.find("\"t\":1"), std::string::npos) << status;
  EXPECT_NE(status.find("\"id\":\"probe\""), std::string::npos);
  EXPECT_NE(status.find("\"engine\":{\"executed\":"), std::string::npos);
  EXPECT_NE(status.find("\"paused\":false"), std::string::npos);

  const std::string page =
      client::body_of(client::http_get(server.port(), "/metrics"));
  EXPECT_NE(page.find("sa_bridge_test 20"), std::string::npos) << page;
  EXPECT_NE(page.find("sa_sim_time_seconds 1"), std::string::npos);
  EXPECT_NE(page.find("sa_bus_events_total{category=\"observation\"} 20"),
            std::string::npos);
  EXPECT_NE(page.find("sa_serve_requests_total"), std::string::npos);

  EXPECT_EQ(client::body_of(client::http_get(server.port(), "/healthz")),
            "ok\n");
  server.stop();
}

TEST(SimBridge, ShardSourceSurfacesInMetricsAndStatus) {
  sim::Engine engine;
  SimBridge bridge;
  // Stands in for shard::ShardedWorld::shard_events() — the bridge calls
  // the source on the sim thread at every publish boundary.
  bridge.set_shard_source([] {
    ShardSnapshot snap;
    snap.events = {40, 2};  // one shard + the coordinator
    snap.lag_seconds = 0.125;
    return snap;
  });
  bridge.attach(engine);

  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  engine.run_until(1.0);

  const std::string page =
      client::body_of(client::http_get(server.port(), "/metrics"));
  EXPECT_NE(page.find("sa_shard_events_total{shard=\"0\"} 40"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("sa_shard_events_total{shard=\"coordinator\"} 2"),
            std::string::npos);
  EXPECT_NE(page.find("sa_shard_lag_seconds 0.125"), std::string::npos);

  const std::string status =
      client::body_of(client::http_get(server.port(), "/status"));
  EXPECT_NE(status.find("\"shards\":{\"events\":[40,2],\"lag_seconds\":0.125"),
            std::string::npos)
      << status;
  server.stop();
}

TEST(SimBridge, WithoutShardSourceNoShardSeries) {
  sim::Engine engine;
  SimBridge bridge;
  bridge.attach(engine);
  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();
  engine.run_until(0.5);
  EXPECT_EQ(client::body_of(client::http_get(server.port(), "/metrics"))
                .find("sa_shard"),
            std::string::npos);
  EXPECT_EQ(client::body_of(client::http_get(server.port(), "/status"))
                .find("\"shards\""),
            std::string::npos);
  server.stop();
}

TEST(SimBridge, StatusBeforeFirstPublishSaysSo) {
  SimBridge bridge;
  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();
  const std::string body =
      client::body_of(client::http_get(server.port(), "/status"));
  EXPECT_NE(body.find("\"published\":false"), std::string::npos);
  server.stop();
}

TEST(SimBridge, InjectCommandLandsAtTheNextStepBoundaryOnly) {
  sim::Engine engine;
  multicore::Platform platform(multicore::PlatformConfig::big_little(2, 2),
                               7);
  fault::Injector inj;
  fault::bind_platform(inj, platform);

  SimBridge bridge;
  bridge.set_injector(&inj);
  bridge.attach(engine);

  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  const std::string resp = client::http_post(
      server.port(), "/control", "cmd=inject&kind=core-fail&unit=1&dur=5");
  EXPECT_EQ(client::status_of(resp), 202);

  // Queued, not applied: the mailbox drains only on the sim thread at the
  // next publish event.
  EXPECT_EQ(inj.injected(), 0u);
  engine.run_until(0.2);
  EXPECT_EQ(inj.injected(), 1u);

  const std::string status = await_status(server.port(), "\"faults\"");
  EXPECT_NE(status.find("\"commands_applied\":1"), std::string::npos)
      << status;
  EXPECT_NE(status.find("\"kind\":\"core-fail\""), std::string::npos);
  server.stop();
}

TEST(SimBridge, InvalidControlCommandsAreRejected) {
  sim::Engine engine;
  SimBridge bridge;
  bridge.attach(engine);
  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  // No injector wired -> 503; bad kind -> 400; unknown cmd -> 400.
  EXPECT_EQ(client::status_of(client::http_post(server.port(), "/control",
                                                "cmd=inject&kind=core-fail")),
            503);
  EXPECT_EQ(client::status_of(client::http_post(server.port(), "/control",
                                                "cmd=warp-speed")),
            400);
  EXPECT_EQ(client::status_of(client::http_post(server.port(), "/control",
                                                "cmd=histogram&category=x")),
            503);  // no bus wired
  server.stop();
}

TEST(SimBridge, HistogramOptInReachesTheBus) {
  sim::Engine engine;
  sim::TelemetryBus bus;
  const auto cat = bus.intern_category("latency");
  SimBridge bridge;
  bridge.set_telemetry(&bus);
  bridge.attach(engine);
  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  EXPECT_EQ(client::status_of(client::http_post(
                server.port(), "/control",
                "cmd=histogram&category=latency&lo=0&hi=10&bins=5")),
            202);
  EXPECT_EQ(bus.histogram(cat), nullptr);  // not yet: mailboxed
  engine.run_until(0.2);
  ASSERT_NE(bus.histogram(cat), nullptr);

  EXPECT_EQ(client::status_of(client::http_post(
                server.port(), "/control",
                "cmd=histogram&category=latency&lo=10&hi=0&bins=5")),
            400);  // lo >= hi
  server.stop();
}

TEST(SimBridge, ControlFormValuesArePercentDecoded) {
  sim::Engine engine;
  sim::TelemetryBus bus;
  SimBridge bridge;
  bridge.set_telemetry(&bus);
  bridge.attach(engine);
  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  // "a%26b+c" decodes to "a&b c" — reserved characters survive encoding.
  EXPECT_EQ(client::status_of(client::http_post(
                server.port(), "/control",
                "cmd=histogram&category=a%26b+c&lo=0&hi=1&bins=4")),
            202);
  engine.run_until(0.2);
  ASSERT_NE(bus.histogram(bus.intern_category("a&b c")), nullptr);

  // A malformed escape never reaches the bus as a mangled name.
  EXPECT_EQ(client::status_of(client::http_post(
                server.port(), "/control",
                "cmd=histogram&category=%zz&lo=0&hi=1&bins=4")),
            400);
  server.stop();
}

TEST(SimBridge, PauseBlocksTheSimThreadAndResumeReleasesIt) {
  sim::Engine engine;
  SimBridge bridge;
  bridge.attach(engine);

  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  EXPECT_EQ(client::status_of(
                client::http_post(server.port(), "/control", "cmd=pause")),
            202);
  EXPECT_TRUE(bridge.paused());

  // The next step-boundary drain publishes the paused status, then blocks
  // the sim thread until resume. Emulate the sim thread directly — the
  // attached publish event calls exactly this.
  std::atomic<bool> released{false};
  std::thread sim([&] {
    bridge.drain_mailbox(&engine);
    released = true;
  });
  const std::string paused = await_status(server.port(), "\"paused\":true");
  EXPECT_NE(paused.find("\"paused\":true"), std::string::npos) << paused;
  EXPECT_FALSE(released.load());

  EXPECT_EQ(client::status_of(
                client::http_post(server.port(), "/control", "cmd=resume")),
            202);
  sim.join();
  EXPECT_TRUE(released.load());
  EXPECT_FALSE(bridge.paused());
  server.stop();
}

TEST(SimBridge, ShutdownReleasesAPausedRunAndStopsThePublishEvent) {
  sim::Engine engine;
  SimBridge bridge;
  bridge.attach(engine);

  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  EXPECT_EQ(client::status_of(
                client::http_post(server.port(), "/control", "cmd=pause")),
            202);
  std::atomic<bool> released{false};
  std::thread sim([&] {
    bridge.drain_mailbox(&engine);
    released = true;
  });
  await_status(server.port(), "\"paused\":true");
  EXPECT_FALSE(released.load());

  // Shutdown must release a sim thread blocked in the pause wait.
  EXPECT_EQ(client::status_of(
                client::http_post(server.port(), "/control", "cmd=shutdown")),
            200);
  sim.join();
  EXPECT_TRUE(released.load());
  EXPECT_TRUE(bridge.shutdown_requested());

  // The attached periodic event observes the flag and unschedules itself:
  // the engine drains its events and the run completes immediately.
  engine.run_until(5.0);
  EXPECT_EQ(engine.now(), 5.0);
  server.stop();
}

TEST(SimBridge, ControlTokenGatesTheControlEndpoint) {
  sim::Engine engine;
  SimBridge::Options opts;
  opts.control_token = "s3cret";
  SimBridge bridge(opts);
  bridge.attach(engine);
  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  // Missing or wrong token -> 401 and the command never reaches the
  // mailbox; read endpoints stay open (the token gates control only).
  EXPECT_EQ(client::status_of(
                client::http_post(server.port(), "/control", "cmd=pause")),
            401);
  EXPECT_EQ(client::status_of(client::http_post(
                server.port(), "/control", "cmd=pause&token=wrong")),
            401);
  EXPECT_FALSE(bridge.paused());
  EXPECT_EQ(client::status_of(client::http_get(server.port(), "/status")),
            200);

  // The right token lands, via form field...
  EXPECT_EQ(client::status_of(client::http_post(
                server.port(), "/control", "cmd=pause&token=s3cret")),
            202);
  EXPECT_TRUE(bridge.paused());

  // ...and via Authorization: Bearer.
  const std::string body = "cmd=resume";
  EXPECT_EQ(client::status_of(client::raw_request(
                server.port(),
                "POST /control HTTP/1.1\r\nHost: t\r\n"
                "Authorization: Bearer s3cret\r\n"
                "Content-Type: application/x-www-form-urlencoded\r\n"
                "Content-Length: " +
                    std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n" + body)),
            202);
  EXPECT_FALSE(bridge.paused());
  server.stop();
}

TEST(SimBridge, EmptyTokenOptionLeavesControlOpen) {
  sim::Engine engine;
  SimBridge bridge;  // default options: no token required
  bridge.attach(engine);
  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();
  EXPECT_EQ(client::status_of(
                client::http_post(server.port(), "/control", "cmd=pause")),
            202);
  EXPECT_EQ(client::status_of(
                client::http_post(server.port(), "/control", "cmd=resume")),
            202);
  server.stop();
}

TEST(SimBridge, StatusCarriesTheServeSection) {
  sim::Engine engine;
  SimBridge bridge;
  bridge.attach(engine);
  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();
  engine.run_until(0.2);
  const std::string status = await_status(server.port(), "\"serve\"");
  EXPECT_NE(status.find("\"serve\":{"), std::string::npos) << status;
  EXPECT_NE(status.find("\"active_connections\":"), std::string::npos);
  EXPECT_NE(status.find("\"slow_requests\":["), std::string::npos);
  server.stop();
}

TEST(SimBridge, EventsStreamDeliversBusRecordsAsSse) {
  sim::Engine engine;
  sim::TelemetryBus bus;
  const auto subj = bus.intern_subject("sse.probe");
  SimBridge bridge;
  bridge.set_telemetry(&bus);
  engine.every(0.05, [&] {
    bus.record(engine.now(), sim::TelemetryBus::kDecision, subj, 0.5,
               "picked");
    return true;
  });
  bridge.attach(engine);

  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  // Subscribe first, then drive the sim so events flow to the queue.
  const int fd = client::connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string req = "GET /events HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, req.data(), req.size(), 0), 0);

  std::string got;
  std::thread sim;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool started = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!started && got.find("text/event-stream") != std::string::npos) {
      // Headers arrived -> the subscription exists; now run the sim.
      started = true;
      sim = std::thread([&] { engine.run_until(2.0); });
    }
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) got.append(buf, static_cast<std::size_t>(n));
    if (got.find("\"subject\":\"sse.probe\"") != std::string::npos) break;
  }
  if (sim.joinable()) sim.join();
  ::close(fd);

  EXPECT_NE(got.find("data: {\"t\":"), std::string::npos) << got;
  EXPECT_NE(got.find("\"category\":\"decision\""), std::string::npos);
  EXPECT_NE(got.find("\"subject\":\"sse.probe\""), std::string::npos);
  EXPECT_NE(got.find("\"detail\":\"picked\""), std::string::npos);
  server.stop();
}

TEST(SimBridge, CheckpointCommandRunsTheHookAtAStepBoundary) {
  sim::Engine engine;
  SimBridge bridge;
  std::vector<double> saves;
  bridge.set_checkpoint_hook([&saves](double t) {
    saves.push_back(t);
    return true;
  });
  bridge.attach(engine);
  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  // Disabled world -> 503 (exercised in its own test below); here the
  // hook is wired, so the command queues for the sim thread.
  EXPECT_EQ(client::status_of(client::http_post(server.port(), "/control",
                                                "cmd=checkpoint")),
            202);
  EXPECT_TRUE(saves.empty());  // queued, not applied
  engine.run_until(0.2);
  ASSERT_EQ(saves.size(), 1u);  // drained exactly once, on the sim thread

  // /status's checkpoint block reflects the save.
  const std::string status =
      await_status(server.port(), "\"checkpoint\":{\"count\":1");
  EXPECT_NE(status.find("\"checkpoint\":{\"count\":1"), std::string::npos)
      << status;
  EXPECT_NE(status.find("\"enabled\":true"), std::string::npos);
  server.stop();
}

TEST(SimBridge, CheckpointCommandWithoutHookIs503) {
  sim::Engine engine;
  SimBridge bridge;
  bridge.attach(engine);
  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  EXPECT_EQ(client::status_of(client::http_post(server.port(), "/control",
                                                "cmd=checkpoint")),
            503);
  const std::string status = await_status(server.port(), "\"checkpoint\"");
  EXPECT_NE(status.find("\"enabled\":false"), std::string::npos) << status;
  server.stop();
}

TEST(SimBridge, AppliedCommandsAreJournaledWithSimTime) {
  sim::Engine engine;
  multicore::Platform platform(multicore::PlatformConfig::big_little(2, 2),
                               7);
  fault::Injector inj;
  fault::bind_platform(inj, platform);
  sim::TelemetryBus bus;
  bus.intern_category("lat");

  ckpt::ControlJournal journal;
  SimBridge bridge;
  bridge.set_injector(&inj);
  bridge.set_telemetry(&bus);
  bridge.set_journal(&journal);
  bridge.set_checkpoint_hook([](double) { return true; });
  bridge.attach(engine);
  Server server(quick_opts());
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  ASSERT_EQ(client::status_of(client::http_post(
                server.port(), "/control",
                "cmd=inject&kind=core-fail&unit=1&mag=2&dur=5")),
            202);
  ASSERT_EQ(client::status_of(client::http_post(
                server.port(), "/control",
                "cmd=histogram&category=lat&lo=0&hi=1&bins=8")),
            202);
  // Checkpoint saves are NOT journaled: they read state, never mutate it,
  // so replaying one would be meaningless.
  ASSERT_EQ(client::status_of(client::http_post(server.port(), "/control",
                                                "cmd=checkpoint")),
            202);
  EXPECT_EQ(journal.size(), 0u);  // nothing drained yet
  engine.run_until(0.2);

  const auto entries = journal.snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].cmd.kind, ckpt::ControlCommand::Kind::kInject);
  EXPECT_EQ(entries[0].cmd.unit, 1u);
  EXPECT_EQ(entries[1].cmd.kind, ckpt::ControlCommand::Kind::kHistogram);
  EXPECT_EQ(entries[1].cmd.category, "lat");
  // Both drained at the same (first) publish boundary, in POST order.
  EXPECT_GE(entries[0].t, 0.0);
  EXPECT_EQ(entries[0].t, entries[1].t);
  // The recorded stream round-trips through the --control-journal spec.
  std::vector<ckpt::JournalEntry> back;
  ASSERT_TRUE(ckpt::parse_journal_spec(ckpt::journal_spec(entries), back)
                  .ok());
  EXPECT_EQ(back.size(), 2u);
  server.stop();
}

}  // namespace
