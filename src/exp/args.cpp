#include "exp/args.hpp"

#include <charconv>
#include <cstdint>

namespace sa::exp {
namespace {

/// Parses a non-negative integer; returns false on garbage or overflow.
bool parse_uint(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_nonneg(std::string_view text, double& out) {
  if (text.empty()) return false;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc{} && ptr == end && out >= 0.0;
}

StandardArgs::Flag path_flag(std::string name, std::string help,
                             std::string Options::* field) {
  return {std::move(name),
          "",
          "PATH",
          std::move(help),
          [field](std::string_view value, Options& out) -> std::string {
            if (value.empty()) return "expects an output path";
            out.*field = std::string(value);
            return {};
          }};
}

}  // namespace

StandardArgs::StandardArgs() {
  add({"--help",
       "-h",
       "",
       "this text",
       [](std::string_view, Options& out) -> std::string {
         out.help = true;
         return {};
       }});
  add({"--jobs",
       "-j",
       "N",
       "worker threads for the seed x variant grid\n"
       "(default: all hardware threads; results are\n"
       "bitwise-identical for every N)",
       [](std::string_view value, Options& out) -> std::string {
         std::uint64_t n = 0;
         if (!parse_uint(value, n) || n == 0 || n > 4096) {
           return "expects an integer in [1, 4096]";
         }
         out.jobs = static_cast<unsigned>(n);
         return {};
       }});
  add({"--seeds",
       "",
       "K",
       "run K seeds instead of the experiment default\n"
       "(first K of the canonical list, then derived)",
       [](std::string_view value, Options& out) -> std::string {
         std::uint64_t n = 0;
         if (!parse_uint(value, n) || n == 0 || n > 100000) {
           return "expects an integer in [1, 100000]";
         }
         out.seeds = static_cast<std::size_t>(n);
         return {};
       }});
  add({"--shards",
       "",
       "N",
       "partition each scenario world across N engine\n"
       "shards (sa::shard). --shards 1 is the legacy\n"
       "single-engine path; N > 1 runs the shards on a\n"
       "worker pool with a byte-identical trajectory,\n"
       "pins --jobs to 1 and rejects --checkpoint/--resume",
       [](std::string_view value, Options& out) -> std::string {
         std::uint64_t n = 0;
         if (!parse_uint(value, n) || n == 0 || n > 4096) {
           return "expects an integer in [1, 4096]";
         }
         out.shards = static_cast<unsigned>(n);
         return {};
       }});
  add(path_flag("--json",
                "also write a BENCH_<exp>.json document with\n"
                "per-seed raws, aggregates, wall-clock and git rev",
                &Options::json));
  add(path_flag("--trace",
                "write a Chrome trace-event JSON (open it at\n"
                "ui.perfetto.dev) of one designated cell: last\n"
                "variant, first seed. Sim-time timestamps, so the\n"
                "file is bitwise-identical for every --jobs N",
                &Options::trace));
  add(path_flag("--metrics",
                "write the traced cell's self-profiling metrics\n"
                "snapshots as JSONL (wall-clock timers: values\n"
                "vary run to run)",
                &Options::metrics));
  add({"--fault-plan",
       "",
       "SPEC",
       "overlay a fault plan on fault-aware experiments\n"
       "(\"kind:rate=R,dur=D,...;seed=N\"; see\n"
       "sa::fault::FaultPlan::parse)",
       [](std::string_view value, Options& out) -> std::string {
         if (value.empty()) {
           return "expects a plan spec (\"kind:key=value,...;...\")";
         }
         out.fault_plan = std::string(value);
         return {};
       }});
  add({"--scenario",
       "",
       "SPEC",
       "overlay a scenario spec on scenario-driven\n"
       "experiments (\"section:key=value,...;...\"; see\n"
       "sa::gen::ScenarioSpec::parse)",
       [](std::string_view value, Options& out) -> std::string {
         if (value.empty()) {
           return "expects a scenario spec (\"section:key=value,...\")";
         }
         out.scenario = std::string(value);
         return {};
       }});
  add({"--serve",
       "",
       "PORT",
       "expose the designated cell live over HTTP on\n"
       "127.0.0.1:PORT (0 = ephemeral, printed at start):\n"
       "/metrics (Prometheus), /status (JSON), /events\n"
       "(SSE telemetry), /control (pause/resume/inject).\n"
       "Needs a build with -DSA_SERVE=ON",
       [](std::string_view value, Options& out) -> std::string {
         std::uint64_t n = 0;
         if (!parse_uint(value, n) || n > 65535) {
           return "expects a port in [0, 65535]";
         }
         out.serve_port = static_cast<int>(n);
         return {};
       }});
  add({"--serve-bind",
       "",
       "ADDR",
       "bind the --serve endpoint to ADDR instead of\n"
       "127.0.0.1 (e.g. 0.0.0.0 so a load generator on\n"
       "another host can reach it; pair with --serve-token)",
       [](std::string_view value, Options& out) -> std::string {
         if (value.empty()) return "expects an IPv4 address";
         out.serve_bind = std::string(value);
         return {};
       }});
  add({"--serve-token",
       "",
       "TOKEN",
       "require TOKEN on POST /control (form field token=\n"
       "or Authorization: Bearer; constant-time compare,\n"
       "401 on mismatch)",
       [](std::string_view value, Options& out) -> std::string {
         if (value.empty()) return "expects a non-empty token";
         out.serve_token = std::string(value);
         return {};
       }});
  add({"--serve-linger",
       "",
       "SEC",
       "keep the --serve endpoint up SEC seconds after the\n"
       "run finishes (POST /control cmd=shutdown ends it\n"
       "early)",
       [](std::string_view value, Options& out) -> std::string {
         double s = 0.0;
         if (!parse_nonneg(value, s) || s > 86400.0) {
           return "expects seconds in [0, 86400]";
         }
         out.serve_linger = s;
         return {};
       }});
  add(path_flag("--checkpoint",
                "periodically checkpoint completed grid cells to\n"
                "PATH (CRC-framed, atomically written; previous\n"
                "file rotates to PATH.prev). SIGTERM/SIGINT save a\n"
                "final checkpoint before exiting; --resume PATH\n"
                "picks the run back up",
                &Options::checkpoint));
  add({"--checkpoint-every",
       "",
       "SEC",
       "wall-clock seconds between periodic checkpoint\n"
       "saves (default 30; a final save always happens at\n"
       "exit)",
       [](std::string_view value, Options& out) -> std::string {
         double s = 0.0;
         if (!parse_nonneg(value, s) || s <= 0.0 || s > 86400.0) {
           return "expects seconds in (0, 86400]";
         }
         out.checkpoint_every = s;
         return {};
       }});
  add(path_flag("--resume",
                "resume from a checkpoint written by --checkpoint:\n"
                "completed cells load instead of re-running (the\n"
                "final document byte-matches an uninterrupted run,\n"
                "wall-clock fields aside). Falls back to PATH.prev\n"
                "when PATH is corrupt; a grid-shape mismatch or an\n"
                "unreadable checkpoint exits 2",
                &Options::resume));
  add({"--control-journal",
       "",
       "SPEC",
       "replay a recorded control stream into cells that\n"
       "support it (\"T cmd=inject&kind=...; T\n"
       "cmd=histogram&...\"; sim-time-stamped, applied at\n"
       "the recorded instants). A resumed run appends the\n"
       "journal recorded live before the interruption",
       [](std::string_view value, Options& out) -> std::string {
         if (value.empty()) {
           return "expects a journal spec (\"T cmd=...&key=value; ...\")";
         }
         out.control_journal = std::string(value);
         return {};
       }});
}

std::string StandardArgs::parse(int argc, const char* const* argv,
                                Options& out) const {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    std::string_view value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }

    const Flag* match = nullptr;
    for (const Flag& f : flags_) {
      if (arg == f.name || (!f.alias.empty() && arg == f.alias)) {
        match = &f;
        break;
      }
    }
    if (match == nullptr) return "unknown argument: " + std::string(argv[i]);

    if (match->metavar.empty()) {
      if (has_value) {
        return std::string(arg) + " takes no value";
      }
    } else if (!has_value) {
      if (i + 1 >= argc) {
        return std::string(arg) + " expects " +
               (match->metavar == "PATH" ? "an output path"
                                         : "a value (" + match->metavar + ")");
      }
      value = argv[++i];
    }
    if (const std::string err = match->apply(value, out); !err.empty()) {
      return std::string(arg) + " " + err;
    }
  }
  if (out.shards > 1) {
    if (!out.checkpoint.empty() || !out.resume.empty()) {
      return "--shards > 1 cannot be combined with --checkpoint/--resume "
             "(sharded worlds are restored by replay, not snapshot)";
    }
    // The shard workers are the parallelism; grid workers on top would
    // oversubscribe and the results are --jobs-invariant anyway.
    out.jobs = 1;
  }
  return {};
}

std::string StandardArgs::usage(std::string_view program) const {
  std::string u;
  u += "usage: ";
  u += program;
  for (const Flag& f : flags_) {
    if (f.name == "--help") continue;
    u += " [";
    u += f.name;
    if (!f.metavar.empty()) {
      u += ' ';
      u += f.metavar;
    }
    u += ']';
  }
  u += '\n';
  for (const Flag& f : flags_) {
    // Left column: "  --flag M, -a M" padded to a fixed width.
    std::string left = "  " + f.name;
    if (!f.metavar.empty()) left += " " + f.metavar;
    if (!f.alias.empty()) {
      left += ", " + f.alias;
      if (!f.metavar.empty()) left += " " + f.metavar;
    }
    constexpr std::size_t kCol = 20;
    if (left.size() + 2 <= kCol) {
      left.append(kCol - left.size(), ' ');
    } else {
      left += "\n" + std::string(kCol, ' ');
    }
    u += left;
    // Body: first line after the column, continuations indented to it.
    std::string_view help = f.help;
    bool first = true;
    while (!help.empty()) {
      std::size_t nl = help.find('\n');
      const std::string_view line =
          nl == std::string_view::npos ? help : help.substr(0, nl);
      if (!first) u += std::string(kCol, ' ');
      first = false;
      u += line;
      u += '\n';
      if (nl == std::string_view::npos) break;
      help.remove_prefix(nl + 1);
    }
  }
  return u;
}

namespace {
const StandardArgs& standard_args() {
  static const StandardArgs table;
  return table;
}
}  // namespace

std::string parse_args(int argc, const char* const* argv, Options& out) {
  return standard_args().parse(argc, argv, out);
}

std::string usage(std::string_view program) {
  return standard_args().usage(program);
}

}  // namespace sa::exp
