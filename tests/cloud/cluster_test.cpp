#include "cloud/cluster.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace sa::cloud {
namespace {

Cluster::Params small_params() {
  Cluster::Params p;
  p.nodes = 10;
  p.seed = 3;
  return p;
}

std::vector<std::size_t> natural_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  return order;
}

TEST(DemandModel, BaseRateWithoutModifiers) {
  DemandModel::Params p;
  p.base = 50.0;
  p.diurnal_amp = 0.0;
  p.burst_prob = 0.0;
  DemandModel dm(p);
  sim::Rng rng(1);
  EXPECT_NEAR(dm.rate(0.0, 10.0, rng), 50.0, 1e-9);
  EXPECT_NEAR(dm.rate(500.0, 10.0, rng), 50.0, 1e-9);
}

TEST(DemandModel, DiurnalOscillates) {
  DemandModel::Params p;
  p.base = 100.0;
  p.diurnal_amp = 0.5;
  p.period_s = 100.0;
  p.burst_prob = 0.0;
  DemandModel dm(p);
  sim::Rng rng(2);
  EXPECT_NEAR(dm.rate(25.0, 10.0, rng), 150.0, 1e-6);  // sine peak
  EXPECT_NEAR(dm.rate(75.0, 10.0, rng), 50.0, 1e-6);   // sine trough
}

TEST(DemandModel, BurstsMultiplyDemand) {
  DemandModel::Params p;
  p.base = 10.0;
  p.diurnal_amp = 0.0;
  p.burst_prob = 1.0;  // always bursting
  p.burst_mult = 3.0;
  DemandModel dm(p);
  sim::Rng rng(3);
  EXPECT_NEAR(dm.rate(0.0, 10.0, rng), 30.0, 1e-9);
  EXPECT_TRUE(dm.bursting());
}

TEST(DemandModel, DriftGrowsBase) {
  DemandModel::Params p;
  p.base = 10.0;
  p.diurnal_amp = 0.0;
  p.burst_prob = 0.0;
  p.drift_per_s = 0.1;
  DemandModel dm(p);
  sim::Rng rng(4);
  EXPECT_NEAR(dm.rate(100.0, 10.0, rng), 20.0, 1e-9);
}

TEST(Cluster, NodesAreHeterogeneous) {
  Cluster c(small_params());
  double min_cap = 1e9, max_cap = 0.0, min_mttf = 1e18, max_mttf = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    min_cap = std::min(min_cap, c.node(i).capacity);
    max_cap = std::max(max_cap, c.node(i).capacity);
    min_mttf = std::min(min_mttf, c.node(i).mttf_s);
    max_mttf = std::max(max_mttf, c.node(i).mttf_s);
  }
  EXPECT_GT(max_cap, min_cap * 1.2);
  EXPECT_GT(max_mttf, min_mttf * 2.0);
}

TEST(Cluster, EnrolSelectsExactlyK) {
  Cluster c(small_params());
  c.enrol(natural_order(10), 4);
  std::size_t enrolled = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    enrolled += c.node(i).enrolled ? 1 : 0;
  }
  EXPECT_EQ(enrolled, 4u);
  EXPECT_TRUE(c.node(0).enrolled);
  EXPECT_FALSE(c.node(9).enrolled);
}

TEST(Cluster, ReEnrolReleasesPrevious) {
  Cluster c(small_params());
  c.enrol(natural_order(10), 8);
  c.enrol(natural_order(10), 2);
  std::size_t enrolled = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    enrolled += c.node(i).enrolled ? 1 : 0;
  }
  EXPECT_EQ(enrolled, 2u);
}

TEST(Cluster, ZeroEnrolmentServesNothing) {
  Cluster c(small_params());
  c.enrol(natural_order(10), 0);
  const auto e = c.run_epoch(20.0);
  EXPECT_DOUBLE_EQ(e.served, 0.0);
  EXPECT_DOUBLE_EQ(e.capacity, 0.0);
  EXPECT_LT(e.sla, 0.01);
}

TEST(Cluster, AmpleCapacityMeetsAllDemand) {
  auto p = small_params();
  p.mttf_mean_s = 1e9;  // effectively always up
  Cluster c(p);
  c.enrol(natural_order(10), 10);
  const auto e = c.run_epoch(5.0);  // tiny demand vs ~100 req/s capacity
  EXPECT_NEAR(e.sla, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(e.dropped, 0.0);
  EXPECT_DOUBLE_EQ(e.backlog, 0.0);
}

TEST(Cluster, OverloadBuildsBacklogThenDrops) {
  auto p = small_params();
  p.queue_bound = 50.0;
  Cluster c(p);
  c.enrol(natural_order(10), 1);
  CloudEpoch e{};
  for (int i = 0; i < 10; ++i) e = c.run_epoch(200.0);
  EXPECT_GT(e.dropped, 0.0);
  EXPECT_NEAR(e.backlog, 50.0, 1e-6);  // pinned at the bound
  EXPECT_LT(e.sla, 0.5);
}

TEST(Cluster, CostScalesWithEnrolment) {
  Cluster a(small_params()), b(small_params());
  a.enrol(natural_order(10), 2);
  b.enrol(natural_order(10), 8);
  EXPECT_LT(a.run_epoch(10.0).cost, b.run_epoch(10.0).cost);
}

TEST(Cluster, OutcomesCoverEnrolledNodes) {
  Cluster c(small_params());
  c.enrol(natural_order(10), 5);
  c.run_epoch(10.0);
  EXPECT_EQ(c.last_outcomes().size(), 5u);
  for (const auto& o : c.last_outcomes()) {
    EXPECT_LT(o.index, 5u);
    EXPECT_GE(o.delivered, 0.0);
  }
}

TEST(Cluster, UnreliableNodesEventuallyFail) {
  auto p = small_params();
  p.mttf_mean_s = 5.0;  // very flaky population
  p.mttr_mean_s = 100.0;
  Cluster c(p);
  c.enrol(natural_order(10), 10);
  std::size_t failures = 0;
  for (int i = 0; i < 30; ++i) {
    c.run_epoch(10.0);
    for (const auto& o : c.last_outcomes()) {
      failures += o.stayed_up ? 0 : 1;
    }
  }
  EXPECT_GT(failures, 10u);
}

TEST(Cluster, TimeAdvancesPerEpoch) {
  Cluster c(small_params());
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.run_epoch(1.0);
  EXPECT_DOUBLE_EQ(c.now(), 10.0);
  c.run_epoch(1.0);
  EXPECT_DOUBLE_EQ(c.now(), 20.0);
}

TEST(Cluster, DeterministicGivenSeed) {
  Cluster a(small_params()), b(small_params());
  a.enrol(natural_order(10), 5);
  b.enrol(natural_order(10), 5);
  for (int i = 0; i < 10; ++i) {
    const auto ea = a.run_epoch(30.0);
    const auto eb = b.run_epoch(30.0);
    EXPECT_DOUBLE_EQ(ea.served, eb.served);
    EXPECT_DOUBLE_EQ(ea.capacity, eb.capacity);
  }
}

TEST(Cluster, UtilisationClamped) {
  Cluster c(small_params());
  c.enrol(natural_order(10), 1);
  const auto e = c.run_epoch(1000.0);
  EXPECT_LE(e.utilisation, 1.0);
  EXPECT_GE(e.utilisation, 0.0);
}

}  // namespace
}  // namespace sa::cloud
