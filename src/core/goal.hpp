// Goal modelling: multi-objective utilities, constraints, run-time change.
//
// The paper's Introduction frames evaluation of system behaviour as
// "inherently multi-objective", with stakeholder concerns in trade-off or
// conflict, and argues the analysis must move to run time. The GoalModel is
// the framework's explicit representation of those concerns: a weighted set
// of objectives (each mapping a raw metric to a [0,1] utility) plus hard and
// soft constraints. Weights and constraints are mutable at run time —
// goal-awareness means noticing and responding when they change.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sa::core {

/// Named raw metrics (e.g. {"throughput": 120.4, "power": 9.3}).
using MetricMap = std::map<std::string, double>;

/// Maps a raw metric value to a utility in [0,1].
using UtilityFn = std::function<double(double)>;

/// Factory helpers for common utility shapes.
namespace utility {
/// Rises linearly from 0 at `lo` to 1 at `hi` (clamped). "More is better."
UtilityFn rising(double lo, double hi);
/// Falls linearly from 1 at `lo` to 0 at `hi` (clamped). "Less is better."
UtilityFn falling(double lo, double hi);
/// Peaks at `target`, decaying linearly to 0 at distance `tolerance`.
UtilityFn target(double target, double tolerance);
/// 1 if metric >= threshold else 0 (or inverted).
UtilityFn step_at_least(double threshold);
UtilityFn step_at_most(double threshold);
}  // namespace utility

/// One stakeholder concern.
struct Objective {
  std::string metric;  ///< key into the MetricMap
  UtilityFn fn;        ///< raw metric → [0,1]
  double weight = 1.0; ///< relative importance (normalised internally)
};

/// A boolean requirement over the metric map.
struct Constraint {
  std::string name;
  std::function<bool(const MetricMap&)> satisfied;
  bool hard = true;  ///< hard: violation zeroes utility; soft: penalty only
  double penalty = 0.25;  ///< utility subtracted per soft violation
};

/// The agent's explicit, run-time-mutable goal representation.
class GoalModel {
 public:
  /// Adds an objective; returns its index (usable with set_weight).
  std::size_t add_objective(Objective o);
  void add_constraint(Constraint c);

  /// Re-weights the objective over `metric` (run-time goal change).
  /// Returns false if no objective uses that metric.
  bool set_weight(const std::string& metric, double weight);
  [[nodiscard]] std::optional<double> weight(const std::string& metric) const;

  /// Scalarised utility in [0,1]: weighted mean of objective utilities,
  /// zeroed by any violated hard constraint, reduced by soft penalties.
  [[nodiscard]] double utility(const MetricMap& m) const;
  /// Utility ignoring constraints (for diagnosis).
  [[nodiscard]] double raw_utility(const MetricMap& m) const;
  /// Names of constraints violated by `m`.
  [[nodiscard]] std::vector<std::string> violations(const MetricMap& m) const;
  [[nodiscard]] bool feasible(const MetricMap& m) const;

  /// Per-objective utilities, for explanation ("power contributed 0.31").
  [[nodiscard]] std::vector<std::pair<std::string, double>> breakdown(
      const MetricMap& m) const;

  [[nodiscard]] std::size_t objectives() const noexcept {
    return objectives_.size();
  }
  [[nodiscard]] std::size_t constraints() const noexcept {
    return constraints_.size();
  }

  /// Pareto dominance on the raw objective-utility vectors: true iff `a` is
  /// at least as good on all objectives and strictly better on one.
  [[nodiscard]] bool dominates(const MetricMap& a, const MetricMap& b) const;

 private:
  std::vector<Objective> objectives_;
  std::vector<Constraint> constraints_;
};

}  // namespace sa::core
