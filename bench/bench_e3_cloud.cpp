// E3 — self-awareness under volunteer-cloud uncertainty
// (paper Section II; Elhabbash et al. [14][15]; Chen & Bahsoon [58]).
//
// Claim operationalised: when capacity is donated by unreliable volunteers
// and demand is diurnal and bursty, a self-aware autoscaler (demand
// forecasting + learned per-node reliability + model-predictive scaling)
// sustains a better SLA/cost operating point than static provisioning or
// threshold-reactive scaling — and the gap widens as nodes get flakier.
//
// Table: per node-flakiness level (MTTF multiplier), per variant:
//        SLA, SLA-violation rate, cost, utility.
#include <iostream>
#include <string>
#include <vector>

#include "cloud/autoscaler.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;
using namespace sa::cloud;

constexpr int kEpochs = 400;
const std::vector<std::uint64_t> kSeeds{21, 22, 23};

struct Outcome {
  sim::RunningStats sla, cost, utility, violations;
};

Outcome run(Autoscaler::Variant v, double mttf_mult, std::uint64_t seed) {
  Cluster::Params cp;
  cp.nodes = 30;
  cp.mttf_mean_s = 300.0 * mttf_mult;
  cp.seed = seed;
  Cluster cluster(cp);
  DemandModel::Params dp;
  dp.base = 80.0;
  dp.diurnal_amp = 0.4;
  dp.burst_prob = 0.03;
  dp.burst_mult = 2.0;
  DemandModel demand(dp);
  Autoscaler::Params ap;
  ap.variant = v;
  ap.seed = seed;
  ap.initial_nodes = 12;
  Autoscaler as(cluster, demand, ap);

  sim::RunningStats tail_sla, tail_cost;
  std::size_t viol = 0, judged = 0;
  for (int e = 0; e < kEpochs; ++e) {
    const auto ep = as.run_epoch();
    if (e >= kEpochs / 4) {  // skip the cold start
      tail_sla.add(ep.sla);
      tail_cost.add(ep.cost);
      ++judged;
      if (ep.sla < ap.sla_target) ++viol;
    }
  }
  Outcome o;
  o.sla.add(tail_sla.mean());
  o.cost.add(tail_cost.mean());
  o.utility.add(as.utility().mean());
  o.violations.add(static_cast<double>(viol) / static_cast<double>(judged));
  return o;
}

}  // namespace

int main() {
  std::cout << "E3: autoscaling a volunteer cloud, " << kEpochs
            << " epochs x 10 s, diurnal+bursty demand, " << kSeeds.size()
            << " seeds. MTTF multiplier scales node flakiness (lower = "
               "flakier).\n\n";

  sim::Table t("E3.1  SLA / cost by variant and node reliability",
               {"mttf_x", "variant", "sla", "viol_rate", "cost/epoch",
                "utility"});
  t.precision(0, 1);
  for (const double mttf_mult : {2.0, 1.0, 0.5}) {
    for (const auto v :
         {Autoscaler::Variant::Static, Autoscaler::Variant::Reactive,
          Autoscaler::Variant::SelfAware}) {
      Outcome agg;
      for (const auto seed : kSeeds) {
        const Outcome o = run(v, mttf_mult, seed);
        agg.sla.merge(o.sla);
        agg.cost.merge(o.cost);
        agg.utility.merge(o.utility);
        agg.violations.merge(o.violations);
      }
      t.add_row({mttf_mult, std::string(Autoscaler::variant_name(v)),
                 agg.sla.mean(), agg.violations.mean(), agg.cost.mean(),
                 agg.utility.mean()});
    }
  }
  t.print(std::cout);
  return 0;
}
