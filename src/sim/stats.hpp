// Statistics accumulators used by the simulation kernel and by awareness
// processes that summarise observations.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

namespace sa::sim {

/// Streaming mean/variance/min/max via Welford's algorithm.
/// O(1) space, numerically stable; suitable for long-running monitors.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }
  void reset() noexcept { *this = RunningStats{}; }
  /// Merges another accumulator (parallel Welford combination).
  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double d = o.mean_ - mean_;
    const auto na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
    mean_ += d * nb / (na + nb);
    m2_ += o.m2_ + d * d * na * nb / (na + nb);
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant signal (e.g. queue length,
/// number of busy servers). Call `set(t, value)` whenever the signal changes;
/// `mean(t_now)` integrates up to the query time.
class TimeWeighted {
 public:
  void set(double t, double value) noexcept {
    if (has_value_) integral_ += value_ * (t - last_t_);
    else start_t_ = t;
    value_ = value;
    last_t_ = t;
    has_value_ = true;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  [[nodiscard]] double current() const noexcept { return value_; }
  [[nodiscard]] double mean(double t_now) const noexcept {
    if (!has_value_) return 0.0;
    const double span = t_now - start_t_;
    if (span <= 0.0) return value_;
    return (integral_ + value_ * (t_now - last_t_)) / span;
  }
  [[nodiscard]] double min() const noexcept { return has_value_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return has_value_ ? max_ : 0.0; }

 private:
  bool has_value_ = false;
  double value_ = 0.0, last_t_ = 0.0, start_t_ = 0.0, integral_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Supports quantile queries (linear interpolation within bin).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x) noexcept {
    const auto b = bin_of(x);
    ++counts_[b];
    ++total_;
  }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t b) const noexcept {
    return counts_[b];
  }
  [[nodiscard]] double bin_lo(std::size_t b) const noexcept {
    return lo_ + width() * static_cast<double>(b);
  }
  /// q in [0,1]; returns an approximation of the q-quantile.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (total_ == 0) return 0.0;
    const double target = q * static_cast<double>(total_);
    double acc = 0.0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      const double next = acc + static_cast<double>(counts_[b]);
      if (next >= target) {
        const double frac =
            counts_[b] ? (target - acc) / static_cast<double>(counts_[b]) : 0.0;
        return bin_lo(b) + frac * width();
      }
      acc = next;
    }
    return hi_;
  }

 private:
  [[nodiscard]] double width() const noexcept {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }
  [[nodiscard]] std::size_t bin_of(double x) const noexcept {
    if (x <= lo_) return 0;
    if (x >= hi_) return counts_.size() - 1;
    return std::min(counts_.size() - 1,
                    static_cast<std::size_t>((x - lo_) / width()));
  }
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Sliding window over the last `capacity` samples with O(1) mean and
/// O(n) on-demand variance/quantiles. Used by window-based estimators.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {}

  void add(double x) {
    buf_.push_back(x);
    sum_ += x;
    if (buf_.size() > capacity_) {
      sum_ -= buf_.front();
      buf_.pop_front();
    }
  }
  void clear() noexcept {
    buf_.clear();
    sum_ = 0.0;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool full() const noexcept { return buf_.size() == capacity_; }
  [[nodiscard]] double mean() const noexcept {
    return buf_.empty() ? 0.0 : sum_ / static_cast<double>(buf_.size());
  }
  [[nodiscard]] double variance() const noexcept {
    if (buf_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double x : buf_) acc += (x - m) * (x - m);
    return acc / static_cast<double>(buf_.size() - 1);
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double back() const noexcept { return buf_.back(); }
  [[nodiscard]] double front() const noexcept { return buf_.front(); }
  [[nodiscard]] double at(std::size_t i) const noexcept { return buf_[i]; }
  /// q in [0,1] — exact order statistic of the window contents.
  [[nodiscard]] double quantile(double q) const {
    if (buf_.empty()) return 0.0;
    std::vector<double> v(buf_.begin(), buf_.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(v.size() - 1) + 0.5);
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                     v.end());
    return v[idx];
  }

 private:
  std::size_t capacity_;
  std::deque<double> buf_;
  double sum_ = 0.0;
};

}  // namespace sa::sim
