// FaultPlan round-trip fuzz (ctest -L gen): parse(to_string()) must
// reproduce ~1000 randomized plans exactly — every fault kind, bursty and
// permanent processes, activity windows, and full-range 64-bit seeds.
// Values are drawn on decimal grids within 6 significant digits so the
// canonical formatter reproduces them bit for bit (the same contract the
// ScenarioSpec fuzz relies on).
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>

#include "fault/fault.hpp"
#include "sim/rng.hpp"

namespace sa::fault {
namespace {

constexpr FaultKind kAllKinds[] = {
    FaultKind::SensorDropout, FaultKind::SensorBlur, FaultKind::NodeCrash,
    FaultKind::CoreFail,      FaultKind::FreqCap,    FaultKind::VmPreempt,
    FaultKind::LatencySpike,  FaultKind::LinkLoss,   FaultKind::Partition,
    FaultKind::LinkReorder,   FaultKind::ExchangeDrop,
};

FaultProcess random_process(sim::Rng& rng) {
  FaultProcess p;
  p.kind = kAllKinds[rng.below(std::size(kAllKinds))];
  // 0.001 .. 99.999 — never 0 (parse rejects rate <= 0).
  p.rate = static_cast<double>(1 + rng.below(99999)) / 1000.0;
  // parse clamps burst to >= 1; stay on integers so the clamp is a no-op.
  p.burstiness = static_cast<double>(1 + rng.below(6));
  // <= 0 means permanent — exercised as exactly -1.
  p.duration_mean = rng.chance(0.15)
                        ? -1.0
                        : static_cast<double>(1 + rng.below(99999)) / 100.0;
  p.magnitude = static_cast<double>(1 + rng.below(9999)) / 100.0;
  // start/end share one integer-cent grid so `end` is a clean decimal
  // rather than a float sum that could reparse an ulp off.
  const std::uint64_t start_c = rng.below(100000);
  p.start = static_cast<double>(start_c) / 100.0;
  if (rng.chance(0.7)) {
    p.end = static_cast<double>(start_c + 1 + rng.below(100000)) / 100.0;
  }  // else: default infinite end (omitted by to_string)
  return p;
}

TEST(FaultPlanFuzz, RoundTripsAThousandRandomPlans) {
  sim::Rng rng(0xFA17'F022ULL);
  for (int i = 0; i < 1000; ++i) {
    FaultPlan plan;
    if (rng.chance(0.6)) plan.seed = rng();  // full-range, often > 2^53
    const std::size_t n = rng.below(6);
    for (std::size_t k = 0; k < n; ++k) {
      plan.processes.push_back(random_process(rng));
    }
    const std::string text = plan.to_string();
    FaultPlan back;
    ASSERT_NO_THROW(back = FaultPlan::parse(text)) << "plan: " << text;
    EXPECT_EQ(back, plan) << "plan: " << text;
    // Canonical form is a fixed point of the round-trip.
    EXPECT_EQ(back.to_string(), text);
  }
}

TEST(FaultPlanFuzz, EveryKindSurvivesTheRoundTripByName) {
  for (const FaultKind kind : kAllKinds) {
    FaultPlan plan;
    FaultProcess p;
    p.kind = kind;
    p.rate = 0.25;
    plan.processes.push_back(p);
    EXPECT_EQ(FaultPlan::parse(plan.to_string()), plan)
        << "kind " << static_cast<int>(kind);
  }
}

}  // namespace
}  // namespace sa::fault
