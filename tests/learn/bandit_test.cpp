#include "learn/bandit.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "sim/rng.hpp"

namespace sa::learn {
namespace {

using Factory = std::function<std::unique_ptr<Bandit>(std::size_t arms)>;

struct NamedFactory {
  std::string label;
  Factory make;
};

class AnyBanditTest : public ::testing::TestWithParam<NamedFactory> {};

/// Property: on a stationary Bernoulli problem, every policy should pull
/// the best arm most often after a learning period.
TEST_P(AnyBanditTest, FindsBestArmOnStationaryProblem) {
  auto bandit = GetParam().make(4);
  sim::Rng rng(101);
  const double probs[] = {0.2, 0.5, 0.9, 0.4};
  std::size_t best_pulls = 0;
  const int horizon = 3000;
  for (int i = 0; i < horizon; ++i) {
    const std::size_t arm = bandit->select(rng);
    bandit->update(arm, rng.chance(probs[arm]) ? 1.0 : 0.0);
    if (i >= horizon / 2 && arm == 2) ++best_pulls;
  }
  EXPECT_GT(best_pulls, static_cast<std::size_t>(horizon / 2 * 0.6))
      << GetParam().label;
}

TEST_P(AnyBanditTest, SelectAlwaysInRange) {
  auto bandit = GetParam().make(3);
  sim::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::size_t arm = bandit->select(rng);
    ASSERT_LT(arm, 3u);
    bandit->update(arm, 0.5);
  }
}

TEST_P(AnyBanditTest, ResetRestoresTheInitialValues) {
  // Different policies have different priors (0 for value-estimate
  // policies, 0.5 for Beta posteriors, uniform weights for EXP3); the
  // invariant is that reset() returns to the fresh state exactly.
  auto fresh = GetParam().make(2);
  auto bandit = GetParam().make(2);
  sim::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const auto arm = bandit->select(rng);
    bandit->update(arm, arm == 0 ? 1.0 : 0.0);
  }
  bandit->reset();
  EXPECT_DOUBLE_EQ(bandit->value(0), fresh->value(0));
  EXPECT_DOUBLE_EQ(bandit->value(1), fresh->value(1));
}

TEST_P(AnyBanditTest, ValueApproximatesMeanReward) {
  auto bandit = GetParam().make(2);
  sim::Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    const auto arm = bandit->select(rng);
    bandit->update(arm, rng.chance(arm == 0 ? 0.3 : 0.8) ? 1.0 : 0.0);
  }
  if (GetParam().label == "exp3") {
    // EXP3's value() is a play probability, not a reward estimate, so
    // "approximates the mean reward" translates to: the probabilities
    // form a distribution that concentrates on the better arm.
    const double v0 = bandit->value(0), v1 = bandit->value(1);
    EXPECT_NEAR(v0 + v1, 1.0, 1e-9);
    EXPECT_GE(v0, 0.0);
    EXPECT_GE(v1, 0.0);
    // On this wide gap (0.8 vs 0.3) the weights all but collapse onto
    // the best arm over 4000 rounds (measured ~1.0 across seeds; 0.9
    // leaves a wide margin).
    EXPECT_GT(v1, 0.9);
    return;
  }
  // The frequently-pulled best arm's estimate should be near truth.
  EXPECT_NEAR(bandit->value(1), 0.8, 0.15) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, AnyBanditTest,
    ::testing::Values(
        NamedFactory{"eps_greedy",
                     [](std::size_t n) {
                       return std::make_unique<EpsilonGreedy>(n, 0.1);
                     }},
        NamedFactory{"ucb1",
                     [](std::size_t n) { return std::make_unique<Ucb1>(n); }},
        NamedFactory{"ducb",
                     [](std::size_t n) {
                       return std::make_unique<DiscountedUcb>(n, 0.995);
                     }},
        NamedFactory{"softmax",
                     [](std::size_t n) {
                       return std::make_unique<SoftmaxBandit>(n, 0.1, 0.2);
                     }},
        NamedFactory{"thompson",
                     [](std::size_t n) {
                       return std::make_unique<ThompsonSampling>(n);
                     }},
        NamedFactory{"exp3",
                     [](std::size_t n) {
                       return std::make_unique<Exp3>(n, 0.15);
                     }}),
    [](const auto& info) { return info.param.label; });

TEST(DiscountedUcb, AdaptsAfterRewardSwap) {
  DiscountedUcb bandit(2, 0.97);
  sim::Rng rng(21);
  // Phase 1: arm 0 is best.
  for (int i = 0; i < 1500; ++i) {
    const auto arm = bandit.select(rng);
    bandit.update(arm, rng.chance(arm == 0 ? 0.9 : 0.1) ? 1.0 : 0.0);
  }
  // Phase 2: rewards swap; the discounted policy should follow.
  std::size_t arm1_pulls = 0;
  const int phase2 = 1500;
  for (int i = 0; i < phase2; ++i) {
    const auto arm = bandit.select(rng);
    bandit.update(arm, rng.chance(arm == 1 ? 0.9 : 0.1) ? 1.0 : 0.0);
    if (i >= phase2 / 2 && arm == 1) ++arm1_pulls;
  }
  EXPECT_GT(arm1_pulls, static_cast<std::size_t>(phase2 / 2 * 0.6));
}

TEST(Ucb1, PlaysEveryArmOnceFirst) {
  Ucb1 bandit(5);
  sim::Rng rng(3);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 5; ++i) {
    const auto arm = bandit.select(rng);
    EXPECT_FALSE(seen[arm]);  // no repeats during initial sweep
    seen[arm] = true;
    bandit.update(arm, 0.0);
  }
}

TEST(EpsilonGreedy, ZeroEpsilonIsPureGreedy) {
  EpsilonGreedy bandit(3, 0.0);
  sim::Rng rng(5);
  bandit.update(1, 1.0);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(bandit.select(rng), 1u);
}

TEST(EpsilonGreedy, DecaySuppressesExplorationOverTime) {
  EpsilonGreedy bandit(2, 1.0, 0.5);  // halves every step
  sim::Rng rng(6);
  bandit.update(0, 1.0);
  // After many steps epsilon ~ 0 and selection should be pinned greedy.
  for (int i = 0; i < 60; ++i) bandit.select(rng);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(bandit.select(rng), 0u);
}

TEST(SoftmaxBandit, HighTemperatureExploresBroadly) {
  SoftmaxBandit bandit(2, 100.0, 0.1);
  sim::Rng rng(8);
  bandit.update(0, 1.0);  // big value gap, but temperature flattens it
  std::size_t ones = 0;
  for (int i = 0; i < 2000; ++i) ones += bandit.select(rng);
  EXPECT_GT(ones, 800u);
  EXPECT_LT(ones, 1200u);
}

TEST(ThompsonSampling, PosteriorMeanStartsAtHalf) {
  ThompsonSampling ts(3);
  EXPECT_DOUBLE_EQ(ts.value(0), 0.5);  // Beta(1,1) prior
  ts.update(0, 1.0);
  EXPECT_GT(ts.value(0), 0.5);
  ts.update(1, 0.0);
  EXPECT_LT(ts.value(1), 0.5);
}

TEST(ThompsonSampling, FractionalRewardsSupported) {
  ThompsonSampling ts(1);
  for (int i = 0; i < 200; ++i) ts.update(0, 0.7);
  EXPECT_NEAR(ts.value(0), 0.7, 0.01);
}

TEST(Exp3, RandomisationResistsAnAdaptiveAdversary) {
  // The adversary pays whichever arm the policy is currently *least*
  // likely to play. A greedy learner earns ~0 against this; EXP3's
  // exploration floor guarantees at least gamma/K of the payoff, and its
  // weight oscillation in practice earns far more.
  auto play = [](Bandit& bandit, sim::Rng& rng) {
    double earned = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      const std::size_t weak = bandit.value(0) <= bandit.value(1) ? 0 : 1;
      const auto arm = bandit.select(rng);
      const double pay = arm == weak ? 1.0 : 0.0;
      bandit.update(arm, pay);
      earned += pay;
    }
    return earned / n;
  };
  Exp3 exp3(2, 0.2);
  EpsilonGreedy greedy(2, 0.0);
  sim::Rng r1(77), r2(77);
  const double exp3_earned = play(exp3, r1);
  const double greedy_earned = play(greedy, r2);
  EXPECT_GT(exp3_earned, 0.1);  // above the gamma/K floor
  EXPECT_GT(exp3_earned, greedy_earned);
}

TEST(Exp3, ValuesFormADistribution) {
  Exp3 exp3(4);
  sim::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto arm = exp3.select(rng);
    exp3.update(arm, rng.uniform());
  }
  double total = 0.0;
  for (std::size_t a = 0; a < 4; ++a) total += exp3.value(a);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Bandit, ArmsAccessor) {
  EXPECT_EQ(EpsilonGreedy(4).arms(), 4u);
  EXPECT_EQ(Ucb1(2).arms(), 2u);
  EXPECT_EQ(DiscountedUcb(6).arms(), 6u);
  EXPECT_EQ(SoftmaxBandit(3).arms(), 3u);
  EXPECT_EQ(ThompsonSampling(5).arms(), 5u);
  EXPECT_EQ(Exp3(7).arms(), 7u);
}

}  // namespace
}  // namespace sa::learn
