#include "core/pareto.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace sa::core {
namespace {

GoalModel two_objectives() {
  GoalModel g;
  g.add_objective({"perf", utility::rising(0.0, 10.0), 1.0});
  g.add_objective({"power", utility::falling(0.0, 10.0), 1.0});
  return g;
}

std::vector<ParetoPoint> sample_points() {
  // (perf, power): a is strong-but-hungry, c is weak-but-frugal, b is a
  // balanced efficient point, d is strictly worse than b, e equals a.
  return {{"a", {{"perf", 9.0}, {"power", 8.0}}},
          {"b", {{"perf", 6.0}, {"power", 4.0}}},
          {"c", {{"perf", 2.0}, {"power", 1.0}}},
          {"d", {{"perf", 5.0}, {"power", 5.0}}},
          {"e", {{"perf", 9.0}, {"power", 8.0}}}};
}

TEST(Pareto, FrontContainsAllEfficientPoints) {
  const auto g = two_objectives();
  const auto front = pareto_front(g, sample_points());
  // a, b, c are efficient; d is dominated by b; e ties with a (kept).
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 2, 4}));
}

TEST(Pareto, IsDominatedAgreesWithFront) {
  const auto g = two_objectives();
  const auto points = sample_points();
  EXPECT_FALSE(is_dominated(g, points, 0));
  EXPECT_FALSE(is_dominated(g, points, 1));
  EXPECT_FALSE(is_dominated(g, points, 2));
  EXPECT_TRUE(is_dominated(g, points, 3));
}

TEST(Pareto, SinglePointIsItsOwnFront) {
  const auto g = two_objectives();
  const std::vector<ParetoPoint> one{{"only", {{"perf", 1.0}}}};
  EXPECT_EQ(pareto_front(g, one), std::vector<std::size_t>{0});
}

TEST(Pareto, TotallyOrderedChainLeavesOneSurvivor) {
  GoalModel g;
  g.add_objective({"x", utility::rising(0.0, 10.0), 1.0});
  std::vector<ParetoPoint> chain;
  for (int i = 0; i < 5; ++i) {
    chain.push_back({"p" + std::to_string(i),
                     {{"x", static_cast<double>(i)}}});
  }
  EXPECT_EQ(pareto_front(g, chain), std::vector<std::size_t>{4});
}

TEST(Pareto, UtilityArgmaxLiesOnTheFront) {
  const auto g = two_objectives();
  const auto points = sample_points();
  const auto best = utility_argmax(g, points);
  const auto front = pareto_front(g, points);
  EXPECT_NE(std::find(front.begin(), front.end(), best), front.end());
}

TEST(Pareto, GoalReweightingMovesAlongTheFrontNotOffIt) {
  // The E11 mechanism in miniature: changing stakeholder weights changes
  // the chosen point but the efficient set itself is weight-independent.
  auto g = two_objectives();
  const auto points = sample_points();
  const auto front_before = pareto_front(g, points);

  g.set_weight("perf", 10.0);  // performance-hungry stakeholder
  const auto perf_pick = utility_argmax(g, points);
  g.set_weight("perf", 1.0);
  g.set_weight("power", 10.0);  // battery-saving stakeholder
  const auto power_pick = utility_argmax(g, points);

  EXPECT_EQ(pareto_front(g, points), front_before);
  EXPECT_NE(perf_pick, power_pick);
  EXPECT_EQ(points[perf_pick].label, "a");   // or e; argmax takes first
  EXPECT_EQ(points[power_pick].label, "c");
}

}  // namespace
}  // namespace sa::core
