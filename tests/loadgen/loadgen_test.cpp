// sa::loadgen contracts: report merging is order-independent integer
// addition (so percentile summaries are byte-identical however many
// threads the samples were spread over), the one-shot fetch helper, and
// the three client populations driven against a live loopback server.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "loadgen/loadgen.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"

namespace {

using namespace sa;
using namespace sa::loadgen;

serve::LatencyHistogram::Snapshot samples(
    const std::vector<double>& values) {
  serve::LatencyHistogram h;
  for (const double v : values) h.record(v);
  return h.snapshot();
}

TEST(LoadgenReport, MergeIsOrderIndependentAndSummaryIsPure) {
  // The same samples spread over three per-thread reports...
  Report a, b, c;
  a.routes[0].requests = 2;
  a.routes[0].latency = samples({1e-3, 2e-3});
  a.connects = 2;
  b.routes[0].requests = 1;
  b.routes[0].errors = 1;
  b.routes[0].latency = samples({5e-4});
  b.connects = 2;
  b.bytes_received = 100;
  c.routes[2].requests = 3;
  c.routes[2].latency = samples({1e-2, 2e-2, 3e-2});
  c.connects = 3;
  c.connect_failures = 1;

  Report abc = a;
  abc.merge(b);
  abc.merge(c);
  Report cba = c;
  cba.merge(b);
  cba.merge(a);
  EXPECT_EQ(summary_json(abc), summary_json(cba));

  // ...equal one report that saw everything at once.
  Report whole;
  whole.routes[0].requests = 3;
  whole.routes[0].errors = 1;
  whole.routes[0].latency = samples({1e-3, 2e-3, 5e-4});
  whole.routes[2].requests = 3;
  whole.routes[2].latency = samples({1e-2, 2e-2, 3e-2});
  whole.connects = 7;
  whole.connect_failures = 1;
  whole.bytes_received = 100;
  EXPECT_EQ(summary_json(abc), summary_json(whole));
}

TEST(LoadgenReport, SummaryJsonKeysEveryRouteLabel) {
  const std::string json = summary_json(Report{});
  for (const std::string label :
       {"/metrics", "/status", "/events", "/control", "/healthz", "other"}) {
    EXPECT_NE(json.find("\"" + label + "\":{"), std::string::npos) << label;
  }
  EXPECT_NE(json.find("\"p50_s\":0"), std::string::npos);
  EXPECT_NE(json.find("\"connect_failures\":0"), std::string::npos);
}

serve::Server::Options quick_opts() {
  serve::Server::Options opts;
  opts.workers = 4;
  opts.read_timeout_ms = 500;
  return opts;
}

TEST(LoadgenFetch, ReturnsBodyAndStatus) {
  serve::Server server(quick_opts());
  server.route("GET", "/metrics", [](const serve::HttpRequest&) {
    serve::HttpResponse resp;
    resp.body = "sa_up 1\n";
    return resp;
  });
  ASSERT_TRUE(server.start()) << server.error();

  int status = -1;
  const std::string body =
      fetch("127.0.0.1", server.port(), "/metrics", 2000, &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "sa_up 1\n");

  const std::uint16_t port = server.port();
  server.stop();
  status = -1;
  const std::string none = fetch("127.0.0.1", port, "/metrics", 200, &status);
  EXPECT_EQ(status, 0);
  EXPECT_TRUE(none.empty());
}

TEST(LoadgenPool, ScrapersDriveTheReadEndpoints) {
  serve::Server server(quick_opts());
  for (const std::string path : {"/metrics", "/status", "/healthz"}) {
    server.route("GET", path, [](const serve::HttpRequest&) {
      serve::HttpResponse resp;
      resp.body = "ok\n";
      return resp;
    });
  }
  ASSERT_TRUE(server.start()) << server.error();

  Options opts;
  opts.port = server.port();
  opts.scrapers = 4;
  opts.keep_alive = false;
  opts.seed = 42;
  opts.timeout_ms = 2000;
  Pool pool(opts);
  EXPECT_EQ(pool.clients(), 4u);
  pool.start();
  EXPECT_TRUE(pool.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  pool.stop();
  EXPECT_FALSE(pool.running());
  server.stop();

  const Report report = pool.report();
  EXPECT_GT(report.connects, 0u);
  EXPECT_EQ(report.connect_failures, 0u);
  EXPECT_GT(report.bytes_received, 0u);
  std::uint64_t total = 0, errors = 0;
  for (const RouteReport& r : report.routes) {
    total += r.requests;
    errors += r.errors;
    EXPECT_EQ(r.latency.count, r.requests);  // successes only
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(errors, 0u);
  // The scrapers only touch the three read endpoints.
  EXPECT_EQ(report.routes[static_cast<std::size_t>(
                              serve::RouteClass::Control)].requests,
            0u);
  EXPECT_EQ(report.routes[static_cast<std::size_t>(
                              serve::RouteClass::Events)].requests,
            0u);
}

TEST(LoadgenPool, SseSubscribersMeasureTimeToFirstByte) {
  serve::Server server(quick_opts());
  server.route_stream(
      "/events", [](const serve::HttpRequest&, serve::StreamWriter& w) {
        w.write("data: hello\n\n");
        while (w.open()) {
          if (!w.write(": tick\n\n")) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      });
  ASSERT_TRUE(server.start()) << server.error();

  Options opts;
  opts.port = server.port();
  opts.scrapers = 0;
  opts.sse = 2;
  opts.timeout_ms = 2000;
  Pool pool(opts);
  pool.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  pool.stop();
  server.stop();

  const Report report = pool.report();
  const RouteReport& events =
      report.routes[static_cast<std::size_t>(serve::RouteClass::Events)];
  EXPECT_GE(events.requests, 2u);
  EXPECT_GE(events.latency.count, 2u);  // one TTFB sample per stream
  EXPECT_EQ(events.errors, 0u);
  EXPECT_GT(report.bytes_received, 0u);
}

TEST(LoadgenPool, ControllersPostTheSharedToken) {
  serve::Server server(quick_opts());
  std::atomic<int> with_token{0};
  std::atomic<int> without{0};
  server.route("POST", "/control",
               [&](const serve::HttpRequest& req) {
                 if (req.body.find("token=tok") != std::string::npos) {
                   with_token.fetch_add(1);
                 } else {
                   without.fetch_add(1);
                 }
                 serve::HttpResponse resp;
                 resp.status = 202;
                 resp.body = "{}\n";
                 return resp;
               });
  ASSERT_TRUE(server.start()) << server.error();

  Options opts;
  opts.port = server.port();
  opts.scrapers = 0;
  opts.controllers = 1;
  opts.control_period_s = 0.03;
  opts.control_token = "tok";
  opts.timeout_ms = 2000;
  Pool pool(opts);
  pool.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  pool.stop();
  server.stop();

  EXPECT_GT(with_token.load(), 0);
  EXPECT_EQ(without.load(), 0);
  const Report report = pool.report();
  const RouteReport& control =
      report.routes[static_cast<std::size_t>(serve::RouteClass::Control)];
  // A POST in flight when stop() lands is counted by the server but not
  // the client, so client-side <= server-side; both saw traffic.
  EXPECT_GT(control.requests, 0u);
  EXPECT_LE(control.requests, static_cast<std::uint64_t>(with_token.load()));
  EXPECT_EQ(control.errors, 0u);
}

}  // namespace
