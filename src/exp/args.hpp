// Shared command-line options for the experiment binaries.
//
// Every bench_e* binary accepts the same flag set so that the whole suite
// can be driven uniformly (and in parallel) by scripts and CI:
//
//   --jobs N         worker threads for the seed×variant grid (default:
//                    all hardware threads; results are identical for any N)
//   --seeds K        override the experiment's default seed count
//   --shards N       engine shards per scenario world (sa::shard); 1 =
//                    the single-engine path, N > 1 byte-identical to it
//   --json PATH      write a machine-readable BENCH_<exp>.json document
//   --trace PATH     write a Chrome/Perfetto trace-event JSON of one
//                    designated cell (bitwise-stable across --jobs N)
//   --metrics PATH   write that cell's metrics snapshots as JSONL
//   --fault-plan S   overlay a fault::FaultPlan spec on experiments that
//                    support fault injection (others reject it)
//   --scenario S     overlay a gen::ScenarioSpec on scenario-driven
//                    experiments (others ignore it)
//   --serve PORT     expose the designated cell live over HTTP (sa::serve;
//                    builds with -DSA_SERVE=OFF reject the flag)
//   --serve-bind A   bind address for --serve (default 127.0.0.1)
//   --serve-token T  require T on POST /control (401 otherwise)
//   --serve-linger S keep the endpoint up S seconds after the run
//   --checkpoint P   periodically checkpoint completed cells to P; SIGTERM
//                    and SIGINT save a final checkpoint before exiting
//   --checkpoint-every S   seconds between periodic checkpoint saves
//   --resume P       load completed cells from a checkpoint instead of
//                    re-running them (byte-identical final document)
//   --control-journal S    replay a recorded control stream into cells
//
// The flag table itself lives in StandardArgs: one row per flag carrying
// the spelling, value validation and help text, so a new flag lands in all
// bench binaries (parser *and* usage text) by adding one row — not by
// editing an if/else chain and a separate usage string in lockstep.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace sa::exp {

struct Options {
  unsigned jobs = 0;      ///< worker threads; 0 = hardware_concurrency()
  std::size_t seeds = 0;  ///< seed-count override; 0 = experiment default
  /// Engine shards for scenario-driven experiments (sa::shard): 1 = the
  /// legacy single-engine path, bit-for-bit; N > 1 partitions each
  /// world's districts/grids/edge nodes across N worker-owned engines
  /// with a byte-identical trajectory. N > 1 pins --jobs to 1 (the shard
  /// workers are the parallelism) and rejects --checkpoint/--resume
  /// (sharded worlds are restored by replay, not snapshot).
  unsigned shards = 1;
  std::string json;       ///< BENCH json output path; empty = no JSON
  std::string trace;      ///< Chrome trace output path; empty = no trace
  std::string metrics;    ///< metrics JSONL output path; empty = none
  /// Fault-plan spec (fault::FaultPlan::parse syntax); empty = the
  /// experiment's built-in plan. Only fault-aware benches consume it.
  std::string fault_plan;
  /// Scenario spec (gen::ScenarioSpec::parse syntax); empty = the
  /// experiment's built-in scenario. Only scenario-aware benches consume
  /// it (bench_e15_city, examples/smart_city).
  std::string scenario;
  /// HTTP port for the sa::serve endpoint; -1 = not serving, 0 = pick an
  /// ephemeral port (printed at startup).
  int serve_port = -1;
  /// Bind address of the endpoint (default loopback; 0.0.0.0 lets a load
  /// generator on another host connect — pair with serve_token).
  std::string serve_bind = "127.0.0.1";
  /// Shared token required on POST /control when non-empty (constant-time
  /// compare, 401 on mismatch).
  std::string serve_token;
  /// Seconds to keep the endpoint up after the run finishes (so scrapers
  /// can read final state); POST /control cmd=shutdown ends it early.
  double serve_linger = 0.0;
  /// Checkpoint file path (sa::ckpt store of completed grid cells,
  /// CRC-framed, written atomically); empty = no checkpointing. The
  /// designated cell's world snapshot (cmd=checkpoint) goes to
  /// "<path>.world".
  std::string checkpoint;
  /// Wall-clock seconds between periodic checkpoint saves (a final save
  /// always happens at finish / on SIGTERM).
  double checkpoint_every = 30.0;
  /// Resume from this checkpoint: completed cells are loaded instead of
  /// re-run (falling back to "<path>.prev" when the primary is corrupt);
  /// a shape mismatch against the running grids exits 2.
  std::string resume;
  /// Control-journal spec ("T cmd=...&k=v; T ...") replayed into every
  /// cell that supports it (sa::ckpt::parse_journal_spec syntax). A
  /// resumed run automatically appends the journal recorded live before
  /// the interruption.
  std::string control_journal;
  bool help = false;      ///< --help was given
};

/// The shared flag table: spelling + validation + help per flag, and the
/// generic "--flag value" / "--flag=value" / alias walk over it.
class StandardArgs {
 public:
  struct Flag {
    std::string name;     ///< "--jobs"
    std::string alias;    ///< "-j" ("" = none)
    std::string metavar;  ///< "N" ("" = boolean flag, takes no value)
    std::string help;     ///< usage body (indented, newline-separated)
    /// Applies a (validated) value to the options; returns "" on success,
    /// else the error message. Boolean flags receive an empty value.
    std::function<std::string(std::string_view value, Options& out)> apply;
  };

  /// The standard table every bench binary shares.
  StandardArgs();

  /// Extends the table (for binaries with extra flags, e.g. examples).
  void add(Flag flag) { flags_.push_back(std::move(flag)); }
  [[nodiscard]] const std::vector<Flag>& flags() const noexcept {
    return flags_;
  }

  /// Parses argv into `out`. Returns an empty string on success, otherwise
  /// a one-line error message (the caller should print usage and exit).
  /// Accepts `--flag value` and `--flag=value` spellings plus aliases.
  [[nodiscard]] std::string parse(int argc, const char* const* argv,
                                  Options& out) const;

  /// Usage text generated from the table.
  [[nodiscard]] std::string usage(std::string_view program) const;

 private:
  std::vector<Flag> flags_;
};

/// Parses with the standard table (what every bench binary calls).
[[nodiscard]] std::string parse_args(int argc, const char* const* argv,
                                     Options& out);

/// Usage text of the standard table, for --help and parse errors.
[[nodiscard]] std::string usage(std::string_view program);

}  // namespace sa::exp
