// Example: several self-aware agents cooperating through shared knowledge.
//
// A tiny micro-grid: three houses each run their own self-aware battery
// controller (charge on cheap power, discharge on expensive power), and a
// district coordinator — running ten times slower — watches the houses'
// *public* knowledge to track the neighbourhood load. Nobody polls anyone:
// the AgentRuntime steps every agent at its own period on the simulation
// engine and exchanges public snapshots on a schedule.
//
// Run: ./build/examples/multi_agent
#include <cstdio>
#include <memory>
#include <vector>

#include "core/runtime.hpp"
#include "learn/bandit.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace sa;

  sim::Engine engine;
  core::AgentRuntime runtime(engine);
  sim::Rng world_rng(2031);

  // --- The world: a price signal and three noisy household loads ----------
  double price = 0.2;
  engine.every(1.0, [&] {
    // Price follows a daily-ish square wave with noise.
    const double phase = std::fmod(engine.now(), 240.0);
    price = (phase < 120.0 ? 0.1 : 0.4) + world_rng.uniform(-0.02, 0.02);
    return true;
  });

  struct House {
    std::string name;
    double load = 1.0;     // kW draw from the grid
    double battery = 5.0;  // kWh stored
    double flow = 0.0;     // + charging, - discharging
    std::unique_ptr<core::SelfAwareAgent> agent;
  };
  std::vector<House> houses(3);
  const char* names[] = {"maple", "oak", "pine"};

  for (std::size_t i = 0; i < houses.size(); ++i) {
    auto& h = houses[i];
    h.name = names[i];
    core::AgentConfig cfg;
    cfg.seed = 100 + i;
    h.agent = std::make_unique<core::SelfAwareAgent>(h.name, cfg);
    h.agent->add_sensor("price", [&price] { return price; });
    h.agent->add_sensor("battery", [&h] { return h.battery; });
    h.agent->add_sensor("load", [&h] { return h.load; });

    h.agent->add_action("charge", [&h] { h.flow = 1.0; });
    h.agent->add_action("hold", [&h] { h.flow = 0.0; });
    h.agent->add_action("discharge", [&h] { h.flow = -1.0; });

    // Goals: minimise grid cost, keep the battery healthy (2..8 kWh band).
    h.agent->goals().add_objective(
        {"cost", core::utility::falling(0.0, 1.0), 2.0});
    h.agent->goals().add_objective(
        {"battery", core::utility::target(5.0, 3.0), 1.0});
    h.agent->set_goal_metrics({"cost", "battery"});
    h.agent->set_policy(std::make_unique<core::BanditPolicy>(
        std::make_unique<learn::DiscountedUcb>(3, 0.995)));

    runtime.schedule(*h.agent, 1.0, [&h, &price] {
      return h.agent->current_utility();
    });
  }

  // Physics + per-house cost metric, once per second.
  engine.every(1.0, [&] {
    for (auto& h : houses) {
      h.load = 0.8 + 0.4 * world_rng.uniform();
      h.battery = std::clamp(h.battery + h.flow, 0.0, 10.0);
      const double grid_draw = std::max(0.0, h.load + h.flow);
      // "cost" is what goal awareness reads next step.
      h.agent->knowledge().put_number("cost", grid_draw * price,
                                      engine.now());
    }
    return true;
  });

  // --- The coordinator: slower loop, sees only shared public knowledge ----
  core::AgentConfig ccfg;
  ccfg.seed = 7;
  core::SelfAwareAgent coordinator("district", ccfg);
  runtime.schedule(coordinator, 10.0);
  std::vector<core::SelfAwareAgent*> everyone{&coordinator};
  for (auto& h : houses) everyone.push_back(h.agent.get());
  runtime.schedule_exchange(everyone, 5.0);

  engine.run_until(960.0);  // four price cycles

  // --- What happened -------------------------------------------------------
  std::printf("district coordinator's view (via shared public knowledge):\n");
  for (const auto& h : houses) {
    std::printf("  %-6s load=%.2f kW  battery=%.1f kWh  (conf %.2f)\n",
                h.name.c_str(),
                coordinator.knowledge().number("shared." + h.name + ".load"),
                coordinator.knowledge().number("shared." + h.name +
                                               ".battery"),
                coordinator.knowledge().confidence("shared." + h.name +
                                                   ".load"));
  }
  std::printf("\nitems exchanged: %zu, coordinator steps: %zu, "
              "house steps each: %zu\n",
              runtime.items_exchanged(), coordinator.steps(),
              houses[0].agent->steps());
  std::printf("\none house explains itself:\n  %s\n",
              houses[0].agent->explainer().why_last().c_str());
  return 0;
}
