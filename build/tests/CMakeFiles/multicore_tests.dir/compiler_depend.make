# Empty compiler generated dependencies file for multicore_tests.
# This may be replaced when dependencies are built.
