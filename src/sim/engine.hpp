// Discrete-event simulation engine.
//
// A minimal, deterministic DES kernel: events are (time, order, sequence)
// entries in a slot-indexed binary heap over a pooled slot arena. All
// substrates (svc, cloud, multicore, cpn) can schedule their dynamics
// through one Engine instance via their bind() adapters (see each
// substrate's simulator/controller), which is how core::AgentRuntime
// co-schedules agents, reward delivery, knowledge exchange and substrate
// ticks at independent periods.
//
// Data layout (the hot path is allocation-free in steady state):
//  * The heap orders plain (t, order, seq, slot) entries — 24-byte PODs
//    that sift by copy, never by moving a std::function.
//  * Callables live in a free-list slot arena. One-shot slots are recycled
//    the moment they fire; periodic slots persist across firings, so
//    every() re-arms by pushing a fresh heap entry onto its existing slot
//    instead of re-capturing a closure per firing.
//  * step() moves the callable out of its slot before running it, so an
//    action may freely schedule (growing/reallocating the arena) or even
//    clear() the engine while executing.
//
// Determinism contract:
//  * Ties in time break by `order` (lower first), then by scheduling
//    sequence (earlier at() call first). Periodic streams created by
//    every() re-arm on each firing with a fresh sequence number, so at a
//    coincidence of two equal-order streams the LONGER-period stream runs
//    first (its event was armed further in the past). When the intent is
//    "dynamics before control at the same instant", encode it with
//    `order` — the convention used throughout is: fault injection at
//    order -1 (sa::fault — faults landing at t are in force before
//    anything else at t runs), substrate dynamics at order 0,
//    agent/control steps at order 1, knowledge exchange at order 2 —
//    rather than relying on scheduling age.
//  * every(period) fires at base + n*period computed by multiplication,
//    not by accumulating now+period, so periodic events do not drift: the
//    100th firing of every(0.005) lands exactly on t=0.5 and coincides
//    with a control event scheduled there.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace sa::sim {

/// Simulated time in abstract seconds.
using Time = double;

namespace detail {
/// Process-wide count of executed events across all Engine instances.
/// Engines flush into it in batches (on destruction and clear()), so the
/// per-event hot loop never touches the atomic. exp::Harness samples it
/// around a run to report events/sec in bench meta blocks.
inline std::atomic<std::uint64_t>& global_event_counter() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}
}  // namespace detail

class Engine {
 public:
  using Action = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() { flush_executed(); }

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }
  /// Number of events executed this run (reset by clear()).
  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }
  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  /// Process-wide executed-event count across all engines that have
  /// flushed (destroyed or clear()ed engines). Monotone; sample a delta
  /// around a run to derive events/sec.
  [[nodiscard]] static std::uint64_t global_executed() noexcept {
    return detail::global_event_counter().load(std::memory_order_relaxed);
  }

  /// Schedules `action` at absolute time `t` (must be >= now()). Events at
  /// equal time run in ascending `order`, then in scheduling order.
  void at(Time t, Action action, int order = 0) {
    const std::uint32_t slot = alloc_slot();
    Slot& s = slots_[slot];
    s.once = std::move(action);
    s.is_periodic = false;
    push_entry(Entry{t, order, slot, seq_++});
  }
  /// Schedules `action` after a delay (>= 0) from now.
  void in(Time delay, Action action, int order = 0) {
    at(now_ + delay, std::move(action), order);
  }
  /// Schedules `action` every `period` starting at now()+period, until it
  /// returns false or the run ends. The n-th firing is at now()+n*period
  /// (computed multiplicatively — no floating-point drift across firings).
  /// The callable occupies one pooled slot for the stream's whole
  /// lifetime; firings re-arm the slot instead of re-capturing it.
  void every(Time period, std::function<bool()> action, int order = 0) {
    const std::uint32_t slot = alloc_slot();
    Slot& s = slots_[slot];
    s.periodic = std::move(action);
    s.is_periodic = true;
    s.base = now_;
    s.period = period;
    s.n = 1;
    s.order = order;
    push_entry(Entry{s.base + static_cast<Time>(s.n) * s.period, order, slot,
                     seq_++});
  }

  /// Runs until the event queue empties or simulated time reaches `horizon`.
  /// Events scheduled exactly at the horizon still execute.
  void run_until(Time horizon) {
    while (!heap_.empty() && heap_.front().t <= horizon) {
      step();
    }
    now_ = std::max(now_, horizon);
  }
  /// Runs the entire queue to exhaustion (use with bounded workloads).
  void run() {
    while (!heap_.empty()) step();
  }
  /// Executes exactly one event if present; returns whether one ran.
  bool step() {
    if (heap_.empty()) return false;
    const Entry top = heap_.front();
    pop_front();
    now_ = top.t;
    ++executed_;
    Slot& s = slots_[top.slot];
    if (!s.is_periodic) {
      // Move the callable out and recycle the slot *before* running, so a
      // nested at()/every() may reuse it immediately.
      Action act = std::move(s.once);
      free_slot(top.slot);
      if (profile_) {
        const auto wall0 = std::chrono::steady_clock::now();
        act();
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - wall0;
        profile_(top.t, top.order, wall.count());
      } else {
        act();
      }
    } else {
      // Move the callable out for reentrancy: the action may schedule
      // (reallocating the arena) or clear() the engine while running.
      std::function<bool()> fn = std::move(s.periodic);
      const std::uint64_t epoch = clear_epoch_;
      bool again;
      if (profile_) {
        const auto wall0 = std::chrono::steady_clock::now();
        again = fn();
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - wall0;
        profile_(top.t, top.order, wall.count());
      } else {
        again = fn();
      }
      if (clear_epoch_ != epoch) return true;  // clear() ran inside fn.
      Slot& live = slots_[top.slot];  // Re-resolve: arena may have grown.
      if (again) {
        // Re-arm after the action ran, with a fresh sequence number — so
        // events the action itself scheduled sort ahead of the next
        // firing, exactly as the re-scheduling closure used to behave.
        live.periodic = std::move(fn);
        ++live.n;
        push_entry(Entry{live.base + static_cast<Time>(live.n) * live.period,
                         live.order, top.slot, seq_++});
      } else {
        free_slot(top.slot);
      }
    }
    return true;
  }

  /// Self-profiling hook: called after every executed event with its sim
  /// time, order, and measured wall-clock handler cost in seconds. Wall
  /// times belong in a MetricsRegistry, never in simulation logic or the
  /// trace file — they are not reproducible.
  using ProfileHook = std::function<void(Time t, int order, double wall_s)>;
  void set_profile_hook(ProfileHook hook) { profile_ = std::move(hook); }
  /// Discards all pending events and resets the per-run counters
  /// (executed(), scheduling sequence) for the next scenario. Simulated
  /// time is preserved. Safe to call from within an executing event: the
  /// in-flight periodic stream is dropped rather than re-armed.
  void clear() {
    flush_executed();
    heap_.clear();
    slots_.clear();
    free_head_ = kNoSlot;
    executed_ = 0;
    flushed_ = 0;
    seq_ = 0;
    ++clear_epoch_;
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Pooled callable storage. A slot is either one-shot (`once` armed,
  /// recycled on firing) or periodic (`periodic` + re-arm state, recycled
  /// when the action returns false). Free slots chain through `next_free`.
  struct Slot {
    Action once;
    std::function<bool()> periodic;
    Time base = 0.0;
    Time period = 0.0;
    std::uint64_t n = 0;
    int order = 0;
    bool is_periodic = false;
    std::uint32_t next_free = kNoSlot;
  };

  /// Heap entries are POD: sifting copies 24 bytes instead of moving
  /// std::function state.
  struct Entry {
    Time t;
    int order;
    std::uint32_t slot;
    std::uint64_t seq;
  };

  static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    if (a.order != b.order) return a.order < b.order;
    return a.seq < b.seq;
  }

  std::uint32_t alloc_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t idx = free_head_;
      free_head_ = slots_[idx].next_free;
      slots_[idx].next_free = kNoSlot;
      return idx;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void free_slot(std::uint32_t idx) {
    Slot& s = slots_[idx];
    s.once = nullptr;      // Release captured state now, not at reuse.
    s.periodic = nullptr;
    s.is_periodic = false;
    s.next_free = free_head_;
    free_head_ = idx;
  }

  void push_entry(const Entry& e) {
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void pop_front() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t l = 2 * i + 1;
      std::size_t smallest = i;
      if (l < n && before(heap_[l], heap_[smallest])) smallest = l;
      if (l + 1 < n && before(heap_[l + 1], heap_[smallest])) smallest = l + 1;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  void flush_executed() noexcept {
    detail::global_event_counter().fetch_add(executed_ - flushed_,
                                             std::memory_order_relaxed);
    flushed_ = executed_;
  }

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t flushed_ = 0;
  std::uint64_t clear_epoch_ = 0;
  ProfileHook profile_;
};

}  // namespace sa::sim
