// Property tests on the discrete-event engine: ordering, completeness and
// time monotonicity under random schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace sa::sim {
namespace {

class EnginePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnginePropertyTest, RandomScheduleExecutesInNondecreasingTime) {
  Engine e;
  sim::Rng rng(GetParam());
  std::vector<double> fired;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    e.at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST_P(EnginePropertyTest, NestedSchedulingLosesNothing) {
  Engine e;
  sim::Rng rng(GetParam());
  int executed = 0, scheduled = 0;
  // Events spawn children with decaying probability; every spawn must run.
  std::function<void(int)> spawn = [&](int depth) {
    ++executed;
    if (depth < 4 && rng.chance(0.6)) {
      for (int k = 0; k < 2; ++k) {
        ++scheduled;
        e.in(rng.uniform(0.1, 2.0), [&spawn, depth] { spawn(depth + 1); });
      }
    }
  };
  for (int i = 0; i < 50; ++i) {
    ++scheduled;
    e.at(rng.uniform(0.0, 10.0), [&spawn] { spawn(0); });
  }
  e.run();
  EXPECT_EQ(executed, scheduled);
  EXPECT_EQ(e.executed(), static_cast<std::size_t>(scheduled));
}

TEST_P(EnginePropertyTest, PiecewiseRunUntilEqualsOneShot) {
  sim::Rng rng(GetParam());
  std::vector<std::pair<double, int>> schedule;
  for (int i = 0; i < 200; ++i) {
    schedule.emplace_back(rng.uniform(0.0, 50.0), i);
  }
  auto run = [&](const std::vector<double>& horizons) {
    Engine e;
    std::vector<int> order;
    for (const auto& [t, id] : schedule) {
      e.at(t, [&order, id = id] { order.push_back(id); });
    }
    for (const double h : horizons) e.run_until(h);
    return order;
  };
  const auto oneshot = run({50.0});
  const auto piecewise = run({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_EQ(oneshot, piecewise);
}

TEST_P(EnginePropertyTest, EveryIsDriftFree) {
  // The engine contract: every(period) fires at base + n*period computed
  // by multiplication, never by repeated addition — so the nth firing is
  // the bitwise-exact double `base + n*period` for arbitrary (base,
  // period) pairs, with no accumulated rounding drift.
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const double base = rng.uniform(0.0, 50.0);
    const double period = rng.uniform(1e-3, 3.0);
    Engine e;
    std::vector<double> fired;
    e.at(base, [&] {
      e.every(period, [&] {
        fired.push_back(e.now());
        return true;
      });
    });
    const int n = 200;
    e.run_until(base + static_cast<double>(n) * period);
    ASSERT_GE(fired.size(), static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < fired.size(); ++i) {
      const double expect = base + static_cast<double>(i + 1) * period;
      ASSERT_EQ(fired[i], expect)
          << "firing " << i << " drifted: base=" << base
          << " period=" << period;
    }
  }
}

TEST_P(EnginePropertyTest, EveryNeverSuffersRepeatedAdditionDrift) {
  // The classic failure mode every() is designed against: now += period
  // accumulates rounding error, so the 100th firing of every(0.005) would
  // miss t = 0.5. Assert the coincidence lands exactly.
  Engine e;
  sim::Rng rng(GetParam());
  const double period = 0.005;
  bool coincided = false;
  double at_100 = -1.0;
  e.every(period, [&] {
    if (e.now() == 0.5) coincided = true;
    return true;
  });
  e.at(0.5, [&] { at_100 = e.now(); });
  e.run_until(1.0);
  EXPECT_TRUE(coincided);
  EXPECT_EQ(at_100, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace sa::sim
