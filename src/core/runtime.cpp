#include "core/runtime.hpp"

#include <chrono>

#include "core/degrade.hpp"

namespace sa::core {

namespace {
/// Wall-clock duration of `fn` in milliseconds — only measured when a
/// metrics registry asked for it; never feeds back into simulation state.
template <typename Fn>
double timed_ms(Fn&& fn) {
  const auto wall0 = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double, std::milli> wall =
      std::chrono::steady_clock::now() - wall0;
  return wall.count();
}
}  // namespace

AgentRuntime::StreamInstruments AgentRuntime::instrument(
    const std::string& name, const char* span_name) {
  StreamInstruments si;
  if (metrics_ != nullptr) {
    si.count = metrics_->counter("profile." + name + ".count");
    si.ms = metrics_->timer("profile." + name + ".ms");
  }
  if (tracer_ != nullptr) {
    si.subject = tracer_->bus().intern_subject("runtime." + name);
    si.name = tracer_->intern_name(span_name);
  }
  return si;
}

void AgentRuntime::schedule(SelfAwareAgent& agent, double period,
                            std::function<double()> reward_after) {
  ++scheduled_;
  const StreamInstruments si = instrument(agent.id(), "oda");
  engine_.every_tagged(
      sim::event_tag("sa.rt.oda." + agent.id(), scheduled_), period,
      [this, &agent, reward_after = std::move(reward_after), si] {
        const double t = engine_.now();
        auto span = tracer_ != nullptr ? tracer_->span(t, si.subject, si.name)
                                       : sim::Tracer::Span{};
        auto body = [&] {
          agent.step(t);
          ++steps_;
          if (reward_after) agent.reward(reward_after());
        };
        if (metrics_ != nullptr) {
          const double ms = timed_ms(body);
          metrics_->add(si.count);
          metrics_->observe(si.ms, ms);
          // The agent reads its own loop latency next step, like any
          // other knowledge item.
          agent.knowledge().put_number("meta.profile.step_ms", ms, t, 1.0,
                                       Scope::Private, "profiler");
        } else {
          body();
        }
        return true;
      },
      kOrderControl);
}

void AgentRuntime::schedule_substrate(std::string name, double period,
                                      std::function<void()> tick) {
  ++scheduled_;
  const StreamInstruments si = instrument(name, "tick");
  const sim::EventTag tag = sim::event_tag("sa.rt.sub." + name, scheduled_);
  substrates_.push_back(std::move(name));
  engine_.every_tagged(
      tag, period,
      [this, tick = std::move(tick), si] {
        auto span = tracer_ != nullptr
                        ? tracer_->span(engine_.now(), si.subject, si.name)
                        : sim::Tracer::Span{};
        if (metrics_ != nullptr) {
          const double ms = timed_ms(tick);
          metrics_->add(si.count);
          metrics_->observe(si.ms, ms);
        } else {
          tick();
        }
        ++substrate_ticks_;
        return true;
      },
      kOrderDynamics);
}

namespace {
/// Exchange-retry checkpoint payload: the attempt number, 8 bytes LE.
std::string encode_attempt(std::size_t attempt) {
  std::string out(8, '\0');
  for (int i = 0; i < 8; ++i)
    out[static_cast<std::size_t>(i)] =
        static_cast<char>((static_cast<std::uint64_t>(attempt) >> (8 * i)) &
                          0xff);
  return out;
}

std::size_t decode_attempt(std::string_view payload) {
  if (payload.size() != 8) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint8_t>(payload[static_cast<std::size_t>(i)]);
  return static_cast<std::size_t>(v);
}
}  // namespace

void AgentRuntime::schedule_exchange(std::vector<SelfAwareAgent*> agents,
                                     double period,
                                     KnowledgeExchange exchange) {
  ++scheduled_;
  const std::size_t round = exchange_rounds_.size();
  ExchangeRound r;
  r.agents = std::move(agents);
  r.exchange = std::move(exchange);
  r.si = instrument("exchange", "exchange");
  r.period = period;
  // Retry parameters are captured per registration so later calls to
  // set_exchange_retry don't rewrite in-flight rounds.
  r.retries = exchange_retries_;
  r.backoff0 = exchange_backoff0_ > 0.0 ? exchange_backoff0_ : period / 8.0;
  exchange_rounds_.push_back(std::move(r));
  engine_.every_tagged(
      sim::event_tag("sa.rt.exchange", round), period,
      [this, round] {
        run_exchange(round, 0);
        return true;
      },
      kOrderExchange);
  // A pending retry in a checkpoint is reconstructed from (round, attempt)
  // alone — the round's parameters live right here in the runtime.
  engine_.register_rebinder(
      sim::event_tag("sa.rt.exchange.retry", round),
      [this, round](std::string_view payload) -> sim::Engine::Action {
        const std::size_t attempt = decode_attempt(payload);
        return [this, round, attempt] { run_exchange(round, attempt); };
      });
}

void AgentRuntime::schedule_exchange_retry(std::size_t round,
                                           std::size_t attempt) {
  const ExchangeRound& r = exchange_rounds_[round];
  const double delay =
      r.backoff0 * static_cast<double>(1ull << (attempt - 1));
  engine_.in_tagged(
      sim::event_tag("sa.rt.exchange.retry", round), delay,
      [this, round, attempt] { run_exchange(round, attempt); },
      kOrderExchange, encode_attempt(attempt));
}

void AgentRuntime::run_exchange(std::size_t round, std::size_t attempt) {
  const ExchangeRound& r = exchange_rounds_[round];
  if (exchange_blocked_) {
    // Dropped exchange: a fault surface, not an abort. Defer and retry
    // with exponential backoff; give up only after the budget is spent.
    ++exchange_drops_;
    if (attempt < r.retries) {
      ++exchange_retry_count_;
      schedule_exchange_retry(round, attempt + 1);
      return;
    }
    ++exchange_timeouts_;
    // The failed round is knowledge too: every pair learns its peer was
    // unreachable, feeding interaction awareness's reliability models.
    for (SelfAwareAgent* from : r.agents) {
      for (SelfAwareAgent* into : r.agents) {
        if (from == into) continue;
        into->record_interaction(from->id(), false);
      }
    }
    return;
  }
  auto span = tracer_ != nullptr
                  ? tracer_->span(engine_.now(), r.si.subject, r.si.name)
                  : sim::Tracer::Span{};
  auto body = [&] {
    for (SelfAwareAgent* from : r.agents) {
      for (SelfAwareAgent* into : r.agents) {
        if (from == into) continue;
        exchanged_ += r.exchange.import(from->knowledge(), from->id(),
                                        into->knowledge());
      }
    }
  };
  if (metrics_ != nullptr) {
    const double ms = timed_ms(body);
    metrics_->add(r.si.count);
    metrics_->observe(r.si.ms, ms);
  } else {
    body();
  }
}

void AgentRuntime::schedule_degradation(DegradationPolicy& policy,
                                        double period, sim::Engine* on) {
  ++scheduled_;
  sim::Engine& engine = on != nullptr ? *on : engine_;
  const StreamInstruments si =
      instrument("degrade." + policy.agent().id(), "degrade");
  engine.every_tagged(
      sim::event_tag("sa.rt.degrade." + policy.agent().id(), scheduled_),
      period,
      [this, &policy, si, &engine] {
        const double t = engine.now();
        auto span = tracer_ != nullptr ? tracer_->span(t, si.subject, si.name)
                                       : sim::Tracer::Span{};
        auto body = [&] { policy.update(t, span.id()); };
        if (metrics_ != nullptr) {
          const double ms = timed_ms(body);
          metrics_->add(si.count);
          metrics_->observe(si.ms, ms);
        } else {
          body();
        }
        return true;
      },
      kOrderControl);
}

}  // namespace sa::core
