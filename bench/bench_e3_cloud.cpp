// E3 — self-awareness under volunteer-cloud uncertainty
// (paper Section II; Elhabbash et al. [14][15]; Chen & Bahsoon [58]).
//
// Claim operationalised: when capacity is donated by unreliable volunteers
// and demand is diurnal and bursty, a self-aware autoscaler (demand
// forecasting + learned per-node reliability + model-predictive scaling)
// sustains a better SLA/cost operating point than static provisioning or
// threshold-reactive scaling — and the gap widens as nodes get flakier.
//
// Table: per node-flakiness level (MTTF multiplier), per variant:
//        SLA, SLA-violation rate, cost, utility.
#include <iostream>
#include <string>
#include <vector>

#include "cloud/autoscaler.hpp"
#include "exp/harness.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;
using namespace sa::cloud;

constexpr int kEpochs = 400;
const std::vector<std::uint64_t> kSeeds{21, 22, 23};

exp::TaskOutput run(Autoscaler::Variant v, double mttf_mult,
                    const exp::TaskContext& ctx) {
  const std::uint64_t seed = ctx.seed;
  Cluster::Params cp;
  cp.nodes = 30;
  cp.mttf_mean_s = 300.0 * mttf_mult;
  cp.seed = seed;
  Cluster cluster(cp);
  DemandModel::Params dp;
  dp.base = 80.0;
  dp.diurnal_amp = 0.4;
  dp.burst_prob = 0.03;
  dp.burst_mult = 2.0;
  DemandModel demand(dp);
  Autoscaler::Params ap;
  ap.variant = v;
  ap.seed = seed;
  ap.initial_nodes = 12;
  // Observability hooks from the harness's traced cell (--trace /
  // --metrics); sim-time derived, so the trajectory is unchanged.
  ap.telemetry = ctx.telemetry;
  ap.tracer = ctx.tracer;
  Autoscaler as(cluster, demand, ap);

  sim::RunningStats tail_sla, tail_cost;
  std::size_t viol = 0, judged = 0;
  for (int e = 0; e < kEpochs; ++e) {
    const auto ep = as.run_epoch();
    if (e >= kEpochs / 4) {  // skip the cold start
      tail_sla.add(ep.sla);
      tail_cost.add(ep.cost);
      ++judged;
      if (ep.sla < ap.sla_target) ++viol;
    }
  }
  return {{{"sla", tail_sla.mean()},
           {"viol_rate",
            static_cast<double>(viol) / static_cast<double>(judged)},
           {"cost_per_epoch", tail_cost.mean()},
           {"utility", as.utility().mean()}}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e3_cloud", argc, argv);
  std::cout << "E3: autoscaling a volunteer cloud, " << kEpochs
            << " epochs x 10 s, diurnal+bursty demand, "
            << h.seeds_for(kSeeds).size()
            << " seeds. MTTF multiplier scales node flakiness (lower = "
               "flakier).\n\n";

  struct Config {
    double mttf_mult;
    Autoscaler::Variant variant;
  };
  std::vector<Config> configs;
  exp::Grid g;
  g.name = "e3";
  g.seeds = kSeeds;
  for (const double mttf_mult : {2.0, 1.0, 0.5}) {
    for (const auto v :
         {Autoscaler::Variant::Static, Autoscaler::Variant::Reactive,
          Autoscaler::Variant::SelfAware}) {
      configs.push_back({mttf_mult, v});
      g.variants.push_back(std::string(Autoscaler::variant_name(v)) + "@x" +
                           std::to_string(mttf_mult).substr(0, 3));
    }
  }
  g.task = [&configs](const exp::TaskContext& ctx) {
    const auto& cfg = configs[ctx.variant];
    return run(cfg.variant, cfg.mttf_mult, ctx);
  };
  const auto res = h.run(std::move(g));

  sim::Table t("E3.1  SLA / cost by variant and node reliability",
               {"mttf_x", "variant", "sla", "viol_rate", "cost/epoch",
                "utility"});
  t.precision(0, 1);
  for (std::size_t v = 0; v < configs.size(); ++v) {
    t.add_row({configs[v].mttf_mult,
               std::string(Autoscaler::variant_name(configs[v].variant)),
               res.mean(v, "sla"), res.mean(v, "viol_rate"),
               res.mean(v, "cost_per_epoch"), res.mean(v, "utility")});
  }
  t.print(std::cout);
  return h.finish();
}
