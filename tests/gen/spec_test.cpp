// ScenarioSpec grammar and seeded-expansion properties (ctest -L gen).
//
// The grammar tests pin the FaultPlan-idiom contract (bare sections,
// canonical round-trip, full-range seeds, rejection of malformed input);
// the fuzz test round-trips ~1000 randomized specs through
// parse(to_string()); the expansion tests pin the determinism contract —
// same (spec, seed) expands byte-identically, pressure scales rates only,
// and toggling one section never reshuffles another section's draws.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "gen/spec.hpp"
#include "sim/rng.hpp"

namespace sa::gen {
namespace {

TEST(ScenarioSpecParse, EmptySpecIsAllDefaults) {
  const auto s = ScenarioSpec::parse("");
  EXPECT_EQ(s, ScenarioSpec{});
  EXPECT_FALSE(s.any_substrate());
  EXPECT_EQ(s.to_string(), "");
}

TEST(ScenarioSpecParse, BareSectionEnablesItWithDefaults) {
  const auto s = ScenarioSpec::parse("cameras");
  EXPECT_TRUE(s.cameras.enabled);
  EXPECT_FALSE(s.multicore.enabled);
  EXPECT_EQ(s.cameras.count, 12u);
  EXPECT_EQ(s.to_string(), "cameras");
  EXPECT_EQ(ScenarioSpec::parse(s.to_string()), s);
}

TEST(ScenarioSpecParse, CityRoundTrips) {
  const auto city = ScenarioSpec::city();
  EXPECT_TRUE(city.any_substrate());
  EXPECT_TRUE(city.multicore.enabled);
  EXPECT_TRUE(city.cameras.enabled);
  EXPECT_TRUE(city.cloud.enabled);
  EXPECT_TRUE(city.cpn.enabled);
  EXPECT_TRUE(city.faults.enabled);
  EXPECT_EQ(ScenarioSpec::parse(city.to_string()), city);
  EXPECT_EQ(ScenarioSpec::parse(ScenarioSpec::city_spec()), city);
}

TEST(ScenarioSpecParse, FullRange64BitSeedRoundTrips) {
  // Seeds above 2^53 must survive; a double-typed path would round them.
  const auto s = ScenarioSpec::parse("seed=18446744073709551615;cpn");
  EXPECT_EQ(s.seed, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(ScenarioSpec::parse(s.to_string()), s);
}

TEST(ScenarioSpecParse, SpacelessKeysParseEverySection) {
  const auto s = ScenarioSpec::parse(
      "seed=9;world:horizon=120,exchange=15,step=0.5;"
      "multicore:nodes=3,big=1,little=3,epoch=0.25,rate=30,work=0.5,"
      "deadline=0.6,jitter=0.1;"
      "cameras:count=8,objects=16,clusters=1,epoch=20,speed=0.02;"
      "cloud:nodes=16,epoch=5,demand=20,amp=0.5;"
      "cpn:rows=3,cols=5,shortcuts=2,flows=6,rate=1.5;"
      "faults:pressure=2,dur=30,start=10,end=110");
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.world.horizon, 120.0);
  EXPECT_EQ(s.multicore.little, 3u);
  EXPECT_EQ(s.cameras.epoch_steps, 20u);
  EXPECT_EQ(s.cloud.amp, 0.5);
  EXPECT_EQ(s.cpn.flows, 6u);
  EXPECT_EQ(s.faults.end, 110.0);
  EXPECT_EQ(ScenarioSpec::parse(s.to_string()), s);
}

TEST(ScenarioSpecParse, DistrictsAndGridsRoundTrip) {
  // The sa::shard scale-out axes: replicated camera districts and CPN
  // grids. Default 1 stays out of the canonical string, so every spec
  // written before the keys existed round-trips unchanged.
  const auto s = ScenarioSpec::parse(
      "cameras:count=6,districts=4;cpn:rows=3,cols=3,grids=5");
  EXPECT_EQ(s.cameras.districts, 4u);
  EXPECT_EQ(s.cpn.grids, 5u);
  EXPECT_EQ(ScenarioSpec::parse(s.to_string()), s);

  const auto d = ScenarioSpec::parse("cameras;cpn");
  EXPECT_EQ(d.cameras.districts, 1u);
  EXPECT_EQ(d.cpn.grids, 1u);
  EXPECT_EQ(d.to_string(), "cameras;cpn");
}

TEST(ScenarioSpecParse, RejectsZeroDistrictsOrGrids) {
  EXPECT_THROW((void)ScenarioSpec::parse("cameras:districts=0"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("cpn:grids=0"),
               std::invalid_argument);
}

TEST(ScenarioSpecExpandDistricts, DistrictZeroMatchesLegacyStream) {
  // expand_cameras(seed) and expand_cameras(seed, 0) are the same draw —
  // pre-districts worlds keep their exact topologies.
  const auto spec = ScenarioSpec::parse("cameras:count=6,objects=8,districts=3");
  const auto legacy = spec.expand_cameras(9);
  const auto d0 = spec.expand_cameras(9, 0);
  ASSERT_EQ(legacy.size(), d0.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].pos.x, d0[i].pos.x);
    EXPECT_EQ(legacy[i].pos.y, d0[i].pos.y);
  }
}

TEST(ScenarioSpecExpandDistricts, DistrictsDrawDistinctButStableTopologies) {
  const auto spec = ScenarioSpec::parse("cameras:count=6,objects=8,districts=3");
  const auto d1 = spec.expand_cameras(9, 1);
  const auto d2 = spec.expand_cameras(9, 2);
  ASSERT_EQ(d1.size(), d2.size());
  bool differ = false;
  for (std::size_t i = 0; i < d1.size(); ++i) {
    differ = differ || d1[i].pos.x != d2[i].pos.x;
  }
  EXPECT_TRUE(differ);  // replicas are independent worlds, not copies

  const auto again = spec.expand_cameras(9, 1);
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].pos.x, again[i].pos.x);  // and fully deterministic
  }
}

TEST(ScenarioSpecParse, RejectsMalformedSpecs) {
  EXPECT_THROW((void)ScenarioSpec::parse("submarine"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("cpn:knots=4"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("cloud:amp=zero"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("cloud:amp"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("cloud:amp=1.5"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("world:horizon=0"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("multicore:jitter=1"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("multicore:big=0,little=0"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("cpn:rows=1,cols=1"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("faults:start=10,end=5"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("seed=-1;cpn"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("cameras:count=1.5"),
               std::invalid_argument);
}

// -- Fuzz: parse(to_string()) over randomized specs ------------------------

/// A value on the 1/100 grid with <= 6 significant digits, so the default
/// ostream format (6 sig digits) reproduces it exactly and the reparse
/// lands on the same double.
double cents(sim::Rng& rng, std::uint64_t lo_cents, std::uint64_t hi_cents) {
  return static_cast<double>(lo_cents + rng.below(hi_cents - lo_cents + 1)) /
         100.0;
}

ScenarioSpec random_spec(sim::Rng& rng) {
  ScenarioSpec s;
  if (rng.chance(0.5)) s.seed = rng();  // full-range 64-bit, often > 2^53
  if (rng.chance(0.5)) {
    s.world.horizon = cents(rng, 1, 99999);
    s.world.exchange_s = rng.chance(0.2) ? 0.0 : cents(rng, 1, 9999);
    s.world.step_s = cents(rng, 10, 500);
  }
  if (rng.chance(0.7)) {
    auto& m = s.multicore;
    m.enabled = true;
    m.nodes = 1 + rng.below(6);
    m.big = rng.below(4);
    m.little = rng.below(4);
    if (m.big + m.little == 0) m.big = 1;
    m.epoch_s = cents(rng, 5, 400);
    m.rate = cents(rng, 100, 9999);
    m.work = cents(rng, 5, 300);
    m.deadline = cents(rng, 10, 300);
    m.jitter = static_cast<double>(rng.below(100)) / 100.0;  // [0, 0.99]
  }
  if (rng.chance(0.7)) {
    auto& c = s.cameras;
    c.enabled = true;
    c.count = 1 + rng.below(32);
    c.objects = 1 + rng.below(64);
    c.clusters = rng.below(6);
    c.epoch_steps = 1 + rng.below(60);
    c.speed = cents(rng, 1, 20);
  }
  if (rng.chance(0.7)) {
    auto& c = s.cloud;
    c.enabled = true;
    c.nodes = 1 + rng.below(48);
    c.epoch_s = cents(rng, 50, 3000);
    c.demand = static_cast<double>(rng.below(10000)) / 100.0;  // >= 0
    c.amp = static_cast<double>(rng.below(101)) / 100.0;       // [0, 1]
  }
  if (rng.chance(0.7)) {
    auto& c = s.cpn;
    c.enabled = true;
    c.rows = 1 + rng.below(6);
    c.cols = 1 + rng.below(6);
    if (c.rows * c.cols < 2) c.cols = 2;
    c.shortcuts = rng.below(8);
    c.flows = 1 + rng.below(12);
    c.rate = cents(rng, 10, 1000);
  }
  if (rng.chance(0.7)) {
    auto& f = s.faults;
    f.enabled = true;
    f.pressure = static_cast<double>(rng.below(1000)) / 100.0;  // >= 0
    f.dur = rng.chance(0.15) ? -cents(rng, 1, 500) : cents(rng, 100, 9999);
    // start/end on the same integer-cent grid so end is a clean decimal
    // (not a float sum, which could land an ulp off the reparse).
    const std::uint64_t start_c = rng.below(50000);
    f.start = static_cast<double>(start_c) / 100.0;
    if (rng.chance(0.7)) {
      f.end = static_cast<double>(start_c + 1 + rng.below(50000)) / 100.0;
    }
  }
  return s;
}

TEST(ScenarioSpecFuzz, RoundTripsAThousandRandomSpecs) {
  sim::Rng rng(0x5AEC'F022ULL);
  for (int i = 0; i < 1000; ++i) {
    const ScenarioSpec spec = random_spec(rng);
    const std::string text = spec.to_string();
    ScenarioSpec back;
    ASSERT_NO_THROW(back = ScenarioSpec::parse(text)) << "spec: " << text;
    EXPECT_EQ(back, spec) << "spec: " << text;
    // The canonical form is a fixed point.
    EXPECT_EQ(back.to_string(), text);
  }
}

// -- Expansion determinism --------------------------------------------------

TEST(ScenarioSpecExpand, SameSeedExpandsByteIdentically) {
  const auto spec = ScenarioSpec::city();
  const auto cams_a = spec.expand_cameras(9);
  const auto cams_b = spec.expand_cameras(9);
  ASSERT_EQ(cams_a.size(), spec.cameras.count);
  ASSERT_EQ(cams_b.size(), cams_a.size());
  for (std::size_t i = 0; i < cams_a.size(); ++i) {
    EXPECT_EQ(cams_a[i].pos.x, cams_b[i].pos.x);
    EXPECT_EQ(cams_a[i].pos.y, cams_b[i].pos.y);
    EXPECT_EQ(cams_a[i].radius, cams_b[i].radius);
    EXPECT_EQ(cams_a[i].capacity, cams_b[i].capacity);
  }
  const auto w_a = spec.expand_workloads(9);
  const auto w_b = spec.expand_workloads(9);
  ASSERT_EQ(w_a.size(), spec.multicore.nodes);
  for (std::size_t i = 0; i < w_a.size(); ++i) {
    EXPECT_EQ(w_a[i].rate, w_b[i].rate);
    EXPECT_EQ(w_a[i].work, w_b[i].work);
    EXPECT_EQ(w_a[i].deadline, w_b[i].deadline);
  }
  EXPECT_EQ(spec.expand_faults(9), spec.expand_faults(9));
}

TEST(ScenarioSpecExpand, DifferentSeedsExpandDifferentlyButValidly) {
  const auto spec = ScenarioSpec::city();
  EXPECT_NE(spec.expand_faults(1), spec.expand_faults(2));
  const auto a = spec.expand_cameras(1);
  const auto b = spec.expand_cameras(2);
  EXPECT_NE(a[0].pos.x, b[0].pos.x);
  for (const auto& c : b) {
    EXPECT_GT(c.pos.x, 0.0);
    EXPECT_LT(c.pos.x, 1.0);
    EXPECT_GT(c.pos.y, 0.0);
    EXPECT_LT(c.pos.y, 1.0);
    EXPECT_GT(c.radius, 0.0);
    EXPECT_GE(c.capacity, 1u);
  }
  for (const auto& p : spec.expand_faults(2).processes) {
    EXPECT_GT(p.rate, 0.0);
    EXPECT_GE(p.burstiness, 1.0);
  }
}

TEST(ScenarioSpecExpand, SpecSeedPinsExpansionAcrossRunSeeds) {
  auto spec = ScenarioSpec::city();
  spec.seed = 77;  // explicit spec seed: run seed must stop mattering
  EXPECT_EQ(spec.expand_faults(1), spec.expand_faults(2));
  EXPECT_EQ(spec.expand_cameras(1)[0].pos.x, spec.expand_cameras(2)[0].pos.x);
  EXPECT_EQ(spec.expand_workloads(1)[0].rate, spec.expand_workloads(2)[0].rate);
}

TEST(ScenarioSpecExpand, PressureScalesRatesAndNothingElse) {
  const auto base = ScenarioSpec::city();  // pressure 1
  auto hot = base;
  hot.faults.pressure = 3.0;
  const auto p1 = base.expand_faults(5);
  const auto p3 = hot.expand_faults(5);
  ASSERT_FALSE(p1.empty());
  ASSERT_EQ(p1.processes.size(), p3.processes.size());
  EXPECT_EQ(p1.seed, p3.seed);
  for (std::size_t i = 0; i < p1.processes.size(); ++i) {
    EXPECT_EQ(p1.processes[i].kind, p3.processes[i].kind);
    EXPECT_EQ(p1.processes[i].magnitude, p3.processes[i].magnitude);
    EXPECT_EQ(p1.processes[i].duration_mean, p3.processes[i].duration_mean);
    EXPECT_EQ(p1.processes[i].burstiness, p3.processes[i].burstiness);
    EXPECT_DOUBLE_EQ(p3.processes[i].rate, 3.0 * p1.processes[i].rate);
  }
}

TEST(ScenarioSpecExpand, PressureZeroYieldsTheEmptyPlan) {
  auto spec = ScenarioSpec::city();
  spec.faults.pressure = 0.0;
  EXPECT_TRUE(spec.expand_faults(5).empty());
}

TEST(ScenarioSpecExpand, DisabledFaultSectionYieldsTheEmptyPlan) {
  auto spec = ScenarioSpec::city();
  spec.faults.enabled = false;
  EXPECT_TRUE(spec.expand_faults(5).empty());
  EXPECT_EQ(spec.expand_faults(5).seed, 0u);
}

TEST(ScenarioSpecExpand, TogglingOneSectionNeverReshufflesAnother) {
  // Stream independence: enabling cameras must not change the parameters
  // drawn for the CPN fault processes (all draws are unconditional and
  // per-section).
  const auto without = ScenarioSpec::parse("cpn;faults");
  const auto with = ScenarioSpec::parse("cpn;cameras;faults");
  const auto cpn_kinds = [](const fault::FaultPlan& plan) {
    std::vector<fault::FaultProcess> out;
    for (const auto& p : plan.processes) {
      if (p.kind == fault::FaultKind::LinkLoss ||
          p.kind == fault::FaultKind::LinkReorder ||
          p.kind == fault::FaultKind::Partition) {
        out.push_back(p);
      }
    }
    return out;
  };
  const auto a = without.expand_faults(5);
  const auto b = with.expand_faults(5);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(cpn_kinds(a), cpn_kinds(b));
  EXPECT_GT(b.processes.size(), a.processes.size());  // camera kinds added
}

}  // namespace
}  // namespace sa::gen
