// Tests for the agent's decision-provenance tracing (AgentConfig::tracer):
// ODA span structure, causal flow chains, explanation citations, and the
// invariant that attaching a tracer never perturbs the trajectory.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "learn/bandit.hpp"

namespace sa::core {
namespace {

using sim::FlowPhase;
using sim::TelemetryBus;
using sim::Tracer;

struct Rig {
  TelemetryBus bus;
  Tracer tracer{bus};
  AgentConfig config() {
    AgentConfig cfg;
    cfg.tracer = &tracer;
    return cfg;
  }
};

std::unique_ptr<SelfAwareAgent> make_agent(const std::string& id,
                                           AgentConfig cfg) {
  auto agent = std::make_unique<SelfAwareAgent>(id, cfg);
  agent->add_sensor("load", [] { return 0.8; });
  agent->add_action("up", [] {});
  agent->add_action("down", [] {});
  agent->set_policy(std::make_unique<BanditPolicy>(
      std::make_unique<learn::Ucb1>(2)));
  return agent;
}

#ifndef SA_TELEMETRY_OFF
TEST(AgentTrace, StepEmitsNestedOdaSpans) {
  Rig rig;
  auto agent = make_agent("traced", rig.config());
  agent->step(1.0);
  agent->reward(0.5);
  // step > {observe, knowledge, decide, act} plus the outcome span.
  EXPECT_EQ(rig.tracer.spans(), 6u);
  EXPECT_EQ(rig.tracer.depth(), 0u);  // everything closed
  std::vector<std::string> begins;
  for (const auto& e : rig.tracer.events()) {
    if (e.kind == Tracer::Event::Kind::Begin) {
      begins.push_back(rig.tracer.name(e.name));
    }
  }
  EXPECT_EQ(begins, (std::vector<std::string>{"step", "observe", "knowledge",
                                              "decide", "act", "outcome"}));
}

TEST(AgentTrace, DecisionChainRunsDecideActOutcome) {
  Rig rig;
  auto agent = make_agent("traced", rig.config());
  const Decision d = agent->step(0.0);
  ASSERT_NE(d.trace_id, 0u);
  agent->reward(1.0);
  // The decision chain: Begin at decide, Step at act, End at outcome.
  std::vector<FlowPhase> phases;
  for (const auto& e : rig.tracer.events()) {
    if (e.kind == Tracer::Event::Kind::Flow && e.id == d.trace_id) {
      phases.push_back(e.phase);
    }
  }
  EXPECT_EQ(phases, (std::vector<FlowPhase>{FlowPhase::Begin, FlowPhase::Step,
                                            FlowPhase::End}));
}

TEST(AgentTrace, ObservationChainTerminatesAtTheDecision) {
  Rig rig;
  auto agent = make_agent("traced", rig.config());
  agent->step(0.0);
  // Exactly one chain opens at observe and must see Begin, Step (knowledge)
  // and End (decide).
  sim::TraceId obs_id = 0;
  for (const auto& e : rig.tracer.events()) {
    if (e.kind == Tracer::Event::Kind::Flow &&
        rig.tracer.name(e.name) == "observation") {
      if (obs_id == 0) obs_id = e.id;
      EXPECT_EQ(e.id, obs_id);
    }
  }
  ASSERT_NE(obs_id, 0u);
  int count = 0;
  for (const auto& e : rig.tracer.events()) {
    if (e.kind == Tracer::Event::Kind::Flow && e.id == obs_id) ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(AgentTrace, ExplanationCitesResolvableTraceIds) {
  Rig rig;
  auto agent = make_agent("traced", rig.config());
  agent->step(0.0);
  const auto last = agent->explainer().last();
  ASSERT_TRUE(last.has_value());
  EXPECT_NE(last->trace_id, 0u);
  ASSERT_FALSE(last->cited.empty());
  // Every cited id appears in the tracer's record.
  for (const sim::TraceId id : last->cited) {
    bool found = false;
    for (const auto& e : rig.tracer.events()) {
      if (e.id == id) found = true;
    }
    EXPECT_TRUE(found) << "cited id " << id << " not in trace";
  }
  const std::string text = last->render();
  EXPECT_NE(text.find("Trace: decision #"), std::string::npos);
  EXPECT_NE(text.find("from evidence #"), std::string::npos);
}

TEST(AgentTrace, StimulusEventsCarryTraceIds) {
  Rig rig;
  AgentConfig cfg = rig.config();
  auto agent = std::make_unique<SelfAwareAgent>("stim", cfg);
  // Mildly noisy baseline (a constant would leave the learned stddev at
  // zero), then a massive excursion registers as a stimulus event.
  int tick = 0;
  double v = 0.0;
  agent->add_sensor("sig", [&] {
    return v + 0.5 * static_cast<double>((tick * 37) % 10) / 10.0;
  });
  for (int i = 0; i < 30; ++i) {
    agent->step(i);
    ++tick;
  }
  v = 100.0;
  agent->step(30.0);
  bool stamped = false;
  for (const auto& sev : agent->stimulus()->events()) {
    if (sev.trace_id != 0) stamped = true;
  }
  EXPECT_TRUE(stamped);
}

TEST(AgentTrace, RewardWithoutPendingDecisionEmitsNothing) {
  Rig rig;
  AgentConfig cfg = rig.config();
  SelfAwareAgent agent("sensor-only", cfg);
  agent.add_sensor("x", [] { return 1.0; });
  agent.step(0.0);  // no policy, no decision
  const auto before = rig.tracer.events().size();
  agent.reward(1.0);
  EXPECT_EQ(rig.tracer.events().size(), before);
}
#endif  // SA_TELEMETRY_OFF

TEST(AgentTrace, TracerDoesNotPerturbTrajectory) {
  // Identical seeds, with and without a tracer: decisions must match
  // step-for-step (tracing never touches the agent's Rng).
  Rig rig;
  auto traced = make_agent("twin", rig.config());
  auto plain = make_agent("twin", AgentConfig{});
  for (int i = 0; i < 50; ++i) {
    const Decision a = traced->step(i);
    const Decision b = plain->step(i);
    EXPECT_EQ(a.action_index, b.action_index) << "diverged at step " << i;
    EXPECT_EQ(a.action, b.action);
    traced->reward(0.5);
    plain->reward(0.5);
  }
}

TEST(AgentTrace, DisabledTracerAssignsNoIds) {
  TelemetryBus bus;
  Tracer tracer(bus, /*enabled=*/false);
  AgentConfig cfg;
  cfg.tracer = &tracer;
  auto agent = make_agent("muted", cfg);
  const Decision d = agent->step(0.0);
  EXPECT_EQ(d.trace_id, 0u);
  agent->reward(0.5);
  EXPECT_TRUE(tracer.events().empty());
  const auto last = agent->explainer().last();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->trace_id, 0u);
  // Untraced explanations do not cite.
  EXPECT_EQ(last->render().find("Trace:"), std::string::npos);
}

}  // namespace
}  // namespace sa::core
