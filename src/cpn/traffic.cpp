#include "cpn/traffic.hpp"

namespace sa::cpn {

TrafficGenerator::TrafficGenerator(const Topology& topo, TrafficParams p)
    : p_(p), rng_(p.seed) {
  const std::size_t n = topo.nodes();
  // Fixed legitimate flows between distinct, well-separated endpoints.
  while (flows_.size() < p_.flows) {
    const auto s = static_cast<std::size_t>(rng_.below(n));
    const auto d = static_cast<std::size_t>(rng_.below(n));
    if (s == d || topo.distance(s, d) < 3.0) continue;
    flows_.emplace_back(s, d);
  }
  // Victim: a central-ish node (max closeness works; cheap proxy: the node
  // minimising its max distance to others).
  double best = 1e300;
  for (std::size_t v = 0; v < n; ++v) {
    double worst = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      worst = std::max(worst, topo.distance(v, u));
    }
    if (worst < best) {
      best = worst;
      victim_ = v;
    }
  }
  while (attacker_nodes_.size() < p_.attackers) {
    const auto a = static_cast<std::size_t>(rng_.below(n));
    if (a == victim_) continue;
    attacker_nodes_.push_back(a);
  }
}

void TrafficGenerator::bind(sim::Engine& engine, PacketNetwork& net,
                            double period) {
  engine.every_tagged(
      sim::event_tag("sa.cpn.traffic"), period,
      [this, &net] { tick(net); return true; }, /*order=*/0);
}

void TrafficGenerator::tick(PacketNetwork& net) {
  const int legit = rng_.poisson(p_.legit_rate);
  for (int i = 0; i < legit; ++i) {
    const auto& f = flows_[rng_.below(flows_.size())];
    net.inject(f.first, f.second, /*legit=*/true);
  }
  if (attacking(net.now())) {
    const int flood = rng_.poisson(p_.attack_rate);
    for (int i = 0; i < flood; ++i) {
      const std::size_t a =
          attacker_nodes_[rng_.below(attacker_nodes_.size())];
      net.inject(a, victim_, /*legit=*/false);
    }
  }
}

}  // namespace sa::cpn
