#include "exp/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace {

using sa::exp::Json;

TEST(JsonTest, ObjectKeepsInsertionOrder) {
  Json j = Json::object();
  j["zeta"] = 1;
  j["alpha"] = 2;
  j["mid"] = 3;
  EXPECT_EQ(j.dump(-1), R"({"zeta":1,"alpha":2,"mid":3})");
}

TEST(JsonTest, NullUpgradesToObjectOrArrayOnUse) {
  Json j;
  j["a"]["b"] = "deep";           // null -> object, twice
  j["list"].push_back(1);         // null -> array
  j["list"].push_back(2);
  EXPECT_EQ(j.dump(-1), R"({"a":{"b":"deep"},"list":[1,2]})");
}

TEST(JsonTest, ScalarsSerialise) {
  Json j = Json::object();
  j["b"] = true;
  j["i"] = std::int64_t{-42};
  j["d"] = 0.5;
  j["s"] = "text";
  j["n"] = Json();
  EXPECT_EQ(j.dump(-1), R"({"b":true,"i":-42,"d":0.5,"s":"text","n":null})");
}

TEST(JsonTest, StringsAreEscaped) {
  Json j = Json::object();
  j["k"] = "quote\" slash\\ newline\n tab\t bell\x07";
  EXPECT_EQ(j.dump(-1),
            "{\"k\":\"quote\\\" slash\\\\ newline\\n tab\\t bell\\u0007\"}");
}

TEST(JsonTest, IndentedDumpIsStable) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"].push_back("x");
  EXPECT_EQ(j.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}");
}

TEST(JsonTest, AtThrowsOnMissingKey) {
  Json j = Json::object();
  j["present"] = 1;
  EXPECT_TRUE(j.contains("present"));
  EXPECT_FALSE(j.contains("absent"));
  EXPECT_NO_THROW(static_cast<void>(j.at("present")));
  EXPECT_THROW(static_cast<void>(j.at("absent")), std::out_of_range);
}

TEST(JsonTest, FormatDoubleRoundTripsExactly) {
  // The formatter must emit the shortest decimal that strtod's back to
  // the identical bits — the foundation of byte-identical documents.
  const double cases[] = {0.0,   1.0,      -1.0,         0.1,
                          1e-9,  1e300,    1.0 / 3.0,    0.8469999999999995,
                          123.456, -0.030000000000000002};
  for (const double d : cases) {
    const std::string s = Json::format_double(d);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), d) << s;
  }
  // Integral doubles keep a decimal marker so the type survives reparsing.
  EXPECT_EQ(Json::format_double(4.0), "4.0");
  EXPECT_EQ(Json::format_double(0.5), "0.5");
}

TEST(JsonTest, NonFiniteDoublesSerialiseAsNull) {
  EXPECT_EQ(Json::format_double(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(Json::format_double(std::numeric_limits<double>::infinity()),
            "null");
  Json j = Json::object();
  j["bad"] = std::numeric_limits<double>::infinity();
  EXPECT_EQ(j.dump(-1), R"({"bad":null})");
}

TEST(JsonTest, SizeReportsElements) {
  Json arr = Json::array();
  EXPECT_EQ(arr.size(), 0u);
  arr.push_back(1);
  arr.push_back(2);
  EXPECT_EQ(arr.size(), 2u);
  Json obj = Json::object();
  obj["a"] = 1;
  EXPECT_EQ(obj.size(), 1u);
}

}  // namespace
