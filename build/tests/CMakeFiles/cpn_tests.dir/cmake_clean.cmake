file(REMOVE_RECURSE
  "CMakeFiles/cpn_tests.dir/cpn/defence_test.cpp.o"
  "CMakeFiles/cpn_tests.dir/cpn/defence_test.cpp.o.d"
  "CMakeFiles/cpn_tests.dir/cpn/failure_test.cpp.o"
  "CMakeFiles/cpn_tests.dir/cpn/failure_test.cpp.o.d"
  "CMakeFiles/cpn_tests.dir/cpn/network_test.cpp.o"
  "CMakeFiles/cpn_tests.dir/cpn/network_test.cpp.o.d"
  "CMakeFiles/cpn_tests.dir/cpn/supervisor_test.cpp.o"
  "CMakeFiles/cpn_tests.dir/cpn/supervisor_test.cpp.o.d"
  "CMakeFiles/cpn_tests.dir/cpn/traffic_test.cpp.o"
  "CMakeFiles/cpn_tests.dir/cpn/traffic_test.cpp.o.d"
  "cpn_tests"
  "cpn_tests.pdb"
  "cpn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
