#include "core/policy.hpp"

#include <algorithm>
#include <sstream>

namespace sa::core {

Decision FixedPolicy::decide(double t, const KnowledgeBase& kb,
                             const std::vector<std::string>& actions,
                             sim::Rng& rng) {
  (void)t;
  (void)kb;
  (void)rng;
  const std::size_t a = std::min(action_, actions.size() - 1);
  return Decision{a, actions[a], "fixed design-time choice", {}, {}};
}

RulePolicy& RulePolicy::add_rule(Rule r) {
  rules_.push_back(std::move(r));
  return *this;
}

Decision RulePolicy::decide(double t, const KnowledgeBase& kb,
                            const std::vector<std::string>& actions,
                            sim::Rng& rng) {
  (void)t;
  (void)rng;
  for (const auto& r : rules_) {
    if (r.when(kb)) {
      const std::size_t a = std::min(r.action, actions.size() - 1);
      return Decision{a, actions[a], "rule fired: " + r.label, {},
                      r.evidence};
    }
  }
  const std::size_t a = std::min(default_action_, actions.size() - 1);
  return Decision{a, actions[a], "no rule matched; default", {}, {}};
}

Decision BanditPolicy::decide(double t, const KnowledgeBase& kb,
                              const std::vector<std::string>& actions,
                              sim::Rng& rng) {
  (void)t;
  (void)kb;
  last_arm_ = bandit_->select(rng);
  pending_ = true;
  Decision d;
  d.action_index = last_arm_;
  d.action = actions[std::min(last_arm_, actions.size() - 1)];
  d.considered.reserve(actions.size());
  for (std::size_t a = 0; a < actions.size() && a < bandit_->arms(); ++a) {
    d.considered.push_back({actions[a], bandit_->value(a)});
  }
  std::ostringstream os;
  os << bandit_->name() << " value estimate " << bandit_->value(last_arm_);
  d.rationale = os.str();
  return d;
}

void BanditPolicy::feedback(double reward) {
  if (!pending_) return;
  bandit_->update(last_arm_, reward);
  pending_ = false;
}

ContextualBanditPolicy::ContextualBanditPolicy(
    std::size_t contexts, ContextFn context, BanditFactory make,
    std::vector<std::string> evidence)
    : context_(std::move(context)), evidence_(std::move(evidence)) {
  bandits_.reserve(contexts);
  for (std::size_t c = 0; c < contexts; ++c) bandits_.push_back(make());
}

Decision ContextualBanditPolicy::decide(
    double t, const KnowledgeBase& kb,
    const std::vector<std::string>& actions, sim::Rng& rng) {
  (void)t;
  last_ctx_ = std::min(context_(kb), bandits_.size() - 1);
  auto& bandit = *bandits_[last_ctx_];
  last_arm_ = bandit.select(rng);
  pending_ = true;

  Decision d;
  d.action_index = last_arm_;
  d.action = actions[std::min(last_arm_, actions.size() - 1)];
  d.evidence = evidence_;
  for (std::size_t a = 0; a < actions.size() && a < bandit.arms(); ++a) {
    d.considered.push_back({actions[a], bandit.value(a)});
  }
  std::ostringstream os;
  os << "in context " << last_ctx_ << ", " << bandit.name()
     << " value estimate " << bandit.value(last_arm_);
  d.rationale = os.str();
  return d;
}

void ContextualBanditPolicy::feedback(double reward) {
  if (!pending_) return;
  bandits_[last_ctx_]->update(last_arm_, reward);
  pending_ = false;
}

void ContextualBanditPolicy::reset() {
  for (auto& b : bandits_) b->reset();
}

Decision ModelBasedPolicy::decide(double t, const KnowledgeBase& kb,
                                  const std::vector<std::string>& actions,
                                  sim::Rng& rng) {
  (void)t;
  (void)rng;
  Decision d;
  d.evidence = evidence_;
  double best = -1.0;
  for (std::size_t a = 0; a < actions.size(); ++a) {
    const MetricMap predicted = model_(a, kb);
    const double u = goals_.utility(predicted);
    d.considered.push_back({actions[a], u});
    if (u > best) {
      best = u;
      d.action_index = a;
    }
  }
  d.action = actions[d.action_index];
  std::ostringstream os;
  os << "predicted utility " << best << " is the maximum over "
     << actions.size() << " simulated alternatives";
  d.rationale = os.str();
  return d;
}

}  // namespace sa::core
