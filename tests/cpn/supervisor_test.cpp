// Tests for the self-aware network supervisor (framework over cpn).
#include <gtest/gtest.h>

#include "cpn/supervisor.hpp"
#include "cpn/traffic.hpp"
#include "sim/engine.hpp"

namespace sa::cpn {
namespace {

TEST(Supervisor, PublishesNetworkHealthKnowledge) {
  const auto topo = Topology::grid(3, 4, 0, 1);
  PacketNetwork net(topo, {});
  Supervisor sup(net, {});
  TrafficParams tp;
  tp.seed = 1;
  TrafficGenerator gen(topo, tp);
  for (int e = 0; e < 5; ++e) {
    for (int t = 0; t < 200; ++t) {
      gen.tick(net);
      net.step();
    }
    sup.observe_epoch();
  }
  auto& kb = sup.agent().knowledge();
  EXPECT_TRUE(kb.contains("delivery"));
  EXPECT_TRUE(kb.contains("latency"));
  EXPECT_TRUE(kb.contains("goal.utility"));
  EXPECT_GT(kb.number("delivery"), 0.8);
}

TEST(Supervisor, QuietNetworkTriggersNoBoost) {
  const auto topo = Topology::grid(3, 4, 0, 2);
  PacketNetwork net(topo, {});
  Supervisor sup(net, {});
  TrafficParams tp;
  tp.seed = 2;
  TrafficGenerator gen(topo, tp);
  for (int e = 0; e < 40; ++e) {
    for (int t = 0; t < 200; ++t) {
      gen.tick(net);
      net.step();
    }
    sup.observe_epoch();
  }
  EXPECT_EQ(sup.boosts(), 0u);
  EXPECT_DOUBLE_EQ(net.epsilon(), PacketNetwork::Params{}.epsilon);
}

TEST(Supervisor, SustainedDegradationBoostsExploration) {
  const auto topo = Topology::grid(3, 4, 0, 3);
  PacketNetwork net(topo, {});
  Supervisor sup(net, {});
  TrafficParams tp;
  tp.seed = 3;
  tp.flows = 6;
  TrafficGenerator gen(topo, tp);
  // Healthy phase to anchor the drift detector.
  for (int e = 0; e < 30; ++e) {
    for (int t = 0; t < 200; ++t) {
      gen.tick(net);
      net.step();
    }
    sup.observe_epoch();
  }
  ASSERT_EQ(sup.boosts(), 0u);
  // Structural shift: the traffic matrix changes to a sustained overload
  // (the per-node routing loop can mask a few link failures, but it
  // cannot conjure capacity). Utility drifts down, the meta level fires,
  // exploration is boosted.
  TrafficParams heavy = tp;
  heavy.legit_rate = 14.0;
  heavy.seed = 33;
  TrafficGenerator surge(topo, heavy);
  for (int e = 0; e < 80 && sup.boosts() == 0; ++e) {
    for (int t = 0; t < 200; ++t) {
      surge.tick(net);
      net.step();
    }
    sup.observe_epoch();
  }
  EXPECT_GE(sup.boosts(), 1u);
}

TEST(Supervisor, BindReproducesManualLoop) {
  // Generator, network, and supervisor each bound to one engine reproduce
  // the manual gen.tick()/net.step()/observe_epoch() loop exactly: ticks at
  // order 0 (gen before net, registration order), supervision at order 1.
  auto run = [](bool engine_driven) {
    const auto topo = Topology::grid(3, 4, 0, 1);
    PacketNetwork net(topo, {});
    Supervisor sup(net, {});
    TrafficParams tp;
    tp.seed = 1;
    TrafficGenerator gen(topo, tp);
    if (engine_driven) {
      sim::Engine engine;
      gen.bind(engine, net);
      net.bind(engine);
      sup.bind(engine);  // default period = epoch_ticks = 200
      engine.run_until(5.0 * 200.0);
    } else {
      for (int e = 0; e < 5; ++e) {
        for (int t = 0; t < 200; ++t) {
          gen.tick(net);
          net.step();
        }
        sup.observe_epoch();
      }
    }
    return sup.agent().knowledge().number("delivery");
  };
  EXPECT_DOUBLE_EQ(run(true), run(false));
}

}  // namespace
}  // namespace sa::cpn
