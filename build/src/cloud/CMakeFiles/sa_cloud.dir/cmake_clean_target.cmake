file(REMOVE_RECURSE
  "libsa_cloud.a"
)
