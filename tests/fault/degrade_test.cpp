#include "core/degrade.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "core/agent.hpp"
#include "core/knowledge.hpp"
#include "core/levels.hpp"

namespace sa::core {
namespace {

using Mode = DegradationPolicy::Mode;

DegradationPolicy::Params fast_params() {
  DegradationPolicy::Params p;
  p.fault_active_breach = 1.0;
  p.breach_updates = 2;
  p.recover_updates = 2;
  return p;
}

void put_fault_active(SelfAwareAgent& agent, double value, double t) {
  agent.knowledge().put_number("fault.active", value, t, 1.0, Scope::Private,
                               "fault");
}

TEST(DegradationPolicy, StartsHealthyAtMeta) {
  SelfAwareAgent agent("a");
  DegradationPolicy policy(agent);
  EXPECT_EQ(policy.mode(), Mode::Meta);
  EXPECT_EQ(policy.rung(), 0u);
  EXPECT_EQ(agent.active_levels(), LevelSet::full());
  EXPECT_STREQ(DegradationPolicy::mode_name(Mode::Meta), "meta");
  EXPECT_STREQ(DegradationPolicy::mode_name(Mode::Reactive), "reactive");
}

TEST(DegradationPolicy, BreachMustPersistToStepDown) {
  SelfAwareAgent agent("a");
  DegradationPolicy policy(agent, fast_params());
  put_fault_active(agent, 3.0, 0.0);
  policy.update(1.0);  // first breached update: streak building
  EXPECT_EQ(policy.mode(), Mode::Meta);
  policy.update(2.0);  // second consecutive: step down one rung
  EXPECT_EQ(policy.mode(), Mode::Goal);
  EXPECT_EQ(policy.degradations(), 1u);
  // The rung's ceiling is applied to the agent: Meta gone, the rest stay.
  EXPECT_FALSE(agent.active_levels().has(Level::Meta));
  EXPECT_TRUE(agent.active_levels().has(Level::Goal));
  EXPECT_TRUE(agent.active_levels().has(Level::Stimulus));
}

TEST(DegradationPolicy, TransientBreachResetsTheStreak) {
  SelfAwareAgent agent("a");
  DegradationPolicy policy(agent, fast_params());
  put_fault_active(agent, 3.0, 0.0);
  policy.update(1.0);
  put_fault_active(agent, 0.0, 1.5);  // pressure clears before the second
  policy.update(2.0);
  put_fault_active(agent, 3.0, 2.5);
  policy.update(3.0);
  EXPECT_EQ(policy.mode(), Mode::Meta);  // never two in a row
  EXPECT_EQ(policy.degradations(), 0u);
}

TEST(DegradationPolicy, WalksTheFullLadderDownAndStopsAtReactive) {
  SelfAwareAgent agent("a");
  DegradationPolicy policy(agent, fast_params());
  put_fault_active(agent, 5.0, 0.0);
  for (int i = 0; i < 20; ++i) policy.update(static_cast<double>(i));
  EXPECT_EQ(policy.mode(), Mode::Reactive);
  EXPECT_EQ(policy.degradations(), 3u);  // meta→goal→stimulus→reactive
  EXPECT_TRUE(agent.active_levels().empty());
  // The constructed capability set is untouched — only activation shrank.
  EXPECT_EQ(agent.levels(), LevelSet::full());
}

TEST(DegradationPolicy, RecoversOneRungPerCleanStreak) {
  SelfAwareAgent agent("a");
  DegradationPolicy policy(agent, fast_params());
  put_fault_active(agent, 5.0, 0.0);
  for (int i = 0; i < 8; ++i) policy.update(static_cast<double>(i));
  ASSERT_EQ(policy.mode(), Mode::Reactive);
  put_fault_active(agent, 0.0, 8.0);
  policy.update(9.0);
  policy.update(10.0);
  EXPECT_EQ(policy.mode(), Mode::Stimulus);
  policy.update(11.0);
  policy.update(12.0);
  EXPECT_EQ(policy.mode(), Mode::Goal);
  policy.update(13.0);
  policy.update(14.0);
  EXPECT_EQ(policy.mode(), Mode::Meta);
  policy.update(15.0);
  policy.update(16.0);
  EXPECT_EQ(policy.mode(), Mode::Meta);  // ceiling: never past Meta
  EXPECT_EQ(policy.recoveries(), 3u);
  EXPECT_EQ(agent.active_levels(), LevelSet::full());
}

TEST(DegradationPolicy, DwellAccruesOnlyWhileDegraded) {
  SelfAwareAgent agent("a");
  DegradationPolicy policy(agent, fast_params());
  policy.update(0.0);
  policy.update(10.0);  // healthy: no dwell
  EXPECT_DOUBLE_EQ(policy.degraded_dwell(), 0.0);
  put_fault_active(agent, 5.0, 10.0);
  policy.update(11.0);
  policy.update(12.0);  // degrades at t=12
  ASSERT_EQ(policy.mode(), Mode::Goal);
  EXPECT_DOUBLE_EQ(policy.degraded_dwell(), 0.0);
  put_fault_active(agent, 0.0, 12.5);
  policy.update(13.0);  // 12 → 13 spent degraded
  policy.update(14.0);  // recovers at t=14 (after accruing 13 → 14)
  EXPECT_EQ(policy.mode(), Mode::Meta);
  EXPECT_DOUBLE_EQ(policy.degraded_dwell(), 2.0);
  policy.update(20.0);  // healthy again: dwell frozen
  EXPECT_DOUBLE_EQ(policy.degraded_dwell(), 2.0);
}

TEST(DegradationPolicy, StepLatencyBreachTriggersWhenOptedIn) {
  SelfAwareAgent agent("a");
  auto p = fast_params();
  p.step_ms_breach = 50.0;
  DegradationPolicy policy(agent, p);
  agent.knowledge().put_number("meta.profile.step_ms", 80.0, 0.0);
  policy.update(1.0);
  policy.update(2.0);
  EXPECT_EQ(policy.mode(), Mode::Goal);
  EXPECT_NE(policy.last_trigger().find("step_ms"), std::string::npos);
}

TEST(DegradationPolicy, StaleWatchedKnowledgeTriggers) {
  SelfAwareAgent agent("a");
  auto p = fast_params();
  p.watch_keys = {"sensor.a", "sensor.b"};
  p.stale_fraction_breach = 0.4;  // one of two stale breaches
  p.knowledge_ttl = 5.0;  // stamped as the KB default at attach
  DegradationPolicy policy(agent, p);
  EXPECT_DOUBLE_EQ(agent.knowledge().default_ttl(), 5.0);

  agent.knowledge().put_number("sensor.a", 1.0, 0.0);
  agent.knowledge().put_number("sensor.b", 1.0, 0.0);
  policy.update(1.0);  // both fresh
  EXPECT_EQ(policy.mode(), Mode::Meta);
  // Only sensor.b keeps updating; sensor.a ages past its TTL.
  agent.knowledge().put_number("sensor.b", 1.0, 10.0);
  policy.update(10.0);
  agent.knowledge().put_number("sensor.b", 1.0, 11.0);
  policy.update(11.0);
  EXPECT_EQ(policy.mode(), Mode::Goal);
  EXPECT_NE(policy.last_trigger().find("stale"), std::string::npos);
}

TEST(DegradationPolicy, TransitionsAreExplainedWithTraceIds) {
  SelfAwareAgent agent("a");
  DegradationPolicy policy(agent, fast_params());
  put_fault_active(agent, 3.0, 0.0);
  policy.update(1.0, /*trace=*/7);
  policy.update(2.0, /*trace=*/7);
  ASSERT_EQ(policy.mode(), Mode::Goal);

  const auto last = agent.explainer().last();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->from_mode, "meta");
  EXPECT_EQ(last->to_mode, "goal");
  EXPECT_EQ(last->decision.action, "degrade");
  EXPECT_EQ(last->trace_id, 7u);
  const std::string rendered = last->render();
  EXPECT_NE(rendered.find("Degraded meta→goal at t=2"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("fault pressure"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("trace #7"), std::string::npos) << rendered;

  // And the recovery renders in the recovered form.
  put_fault_active(agent, 0.0, 3.0);
  policy.update(4.0, /*trace=*/9);
  policy.update(5.0, /*trace=*/9);
  ASSERT_EQ(policy.mode(), Mode::Meta);
  const std::string back = agent.explainer().last()->render();
  EXPECT_NE(back.find("Recovered goal→meta"), std::string::npos) << back;
  EXPECT_NE(back.find("trace #9"), std::string::npos) << back;
}

TEST(DegradationPolicy, LadderClampsToTheConstructedLevelSet) {
  // An agent built without Meta or Goal: the upper rungs collapse onto the
  // capability set it actually has.
  AgentConfig cfg;
  cfg.levels = LevelSet{Level::Stimulus, Level::Interaction};
  SelfAwareAgent agent("minimal", cfg);
  DegradationPolicy policy(agent, fast_params());
  EXPECT_EQ(agent.active_levels(), cfg.levels);

  put_fault_active(agent, 5.0, 0.0);
  for (int i = 0; i < 8; ++i) policy.update(static_cast<double>(i));
  EXPECT_EQ(policy.mode(), Mode::Reactive);
  EXPECT_TRUE(agent.active_levels().empty());
  put_fault_active(agent, 0.0, 8.0);
  for (int i = 8; i < 20; ++i) policy.update(static_cast<double>(i));
  EXPECT_EQ(policy.mode(), Mode::Meta);
  // Fully recovered — but never beyond what was constructed.
  EXPECT_EQ(agent.active_levels(), cfg.levels);
}

TEST(SelfAwareAgent, SetActiveLevelsNeverGrowsCapabilities) {
  AgentConfig cfg;
  cfg.levels = LevelSet{Level::Stimulus, Level::Goal};
  SelfAwareAgent agent("a", cfg);
  agent.set_active_levels(LevelSet::full());
  EXPECT_EQ(agent.active_levels(), cfg.levels);
  agent.set_active_levels(LevelSet{});
  EXPECT_TRUE(agent.active_levels().empty());
}

TEST(SelfAwareAgent, ReactiveModeStillMirrorsSensorsIntoTheKb) {
  SelfAwareAgent agent("a");
  double reading = 42.0;
  agent.add_sensor("x", [&] { return reading; });
  agent.set_active_levels(LevelSet{});
  agent.step(1.0);
  // No stimulus process ran, but the raw reading is in the KB.
  EXPECT_DOUBLE_EQ(agent.knowledge().number("x", -1.0), 42.0);
}

TEST(SelfAwareAgent, NanSensorReadsAreSkippedAndCounted) {
  SelfAwareAgent agent("a");
  double reading = 1.0;
  agent.add_sensor("x", [&] { return reading; });
  agent.step(1.0);
  EXPECT_EQ(agent.sensor_gaps(), 0u);
  reading = std::numeric_limits<double>::quiet_NaN();
  agent.step(2.0);
  agent.step(3.0);
  EXPECT_EQ(agent.sensor_gaps(), 2u);
  // The key stops updating instead of turning into NaN: the stale-
  // knowledge detector sees an aging item, not a poisoned one.
  reading = 5.0;
  agent.step(4.0);
  const auto item = agent.knowledge().latest("x");
  ASSERT_TRUE(item.has_value());
  EXPECT_DOUBLE_EQ(item->time, 4.0);
}

}  // namespace
}  // namespace sa::core
