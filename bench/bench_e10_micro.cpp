// E10 — framework primitives are cheap enough for resource-constrained
// systems (paper Section III: cognitive radio, CPN, "small, resource
// constrained systems").
//
// Micro-benchmarks (google-benchmark) of every hot-path primitive: the
// knowledge base, the awareness processes, the decision policies, a full
// agent ODA step, a gossip round, and the substrate simulators' inner
// steps.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/agent.hpp"
#include "core/collective.hpp"
#include "cpn/network.hpp"
#include "learn/bandit.hpp"
#include "learn/forecast.hpp"
#include "multicore/platform.hpp"
#include "svc/network.hpp"

namespace {

using namespace sa;

void BM_KnowledgePut(benchmark::State& state) {
  core::KnowledgeBase kb;
  double t = 0.0;
  for (auto _ : state) {
    kb.put_number("signal.load", 1.0, t);
    t += 1.0;
  }
}
BENCHMARK(BM_KnowledgePut);

void BM_KnowledgeLatest(benchmark::State& state) {
  core::KnowledgeBase kb;
  for (int i = 0; i < 64; ++i) {
    kb.put_number("key" + std::to_string(i), i, 0.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kb.number("key32"));
  }
}
BENCHMARK(BM_KnowledgeLatest);

void BM_StimulusUpdate(benchmark::State& state) {
  core::StimulusAwareness sa_;
  core::KnowledgeBase kb;
  core::Observation obs{{"a", 1.0}, {"b", 2.0}, {"c", 3.0}, {"d", 4.0}};
  double t = 0.0;
  for (auto _ : state) {
    sa_.update(t, obs, kb);
    t += 1.0;
  }
}
BENCHMARK(BM_StimulusUpdate);

void BM_ForecasterObserve(benchmark::State& state) {
  learn::HoltForecaster f;
  double x = 0.0;
  for (auto _ : state) {
    f.observe(x);
    x += 0.1;
    benchmark::DoNotOptimize(f.forecast());
  }
}
BENCHMARK(BM_ForecasterObserve);

void BM_BanditSelectUpdate(benchmark::State& state) {
  learn::Ucb1 bandit(static_cast<std::size_t>(state.range(0)));
  sim::Rng rng(1);
  for (auto _ : state) {
    const auto arm = bandit.select(rng);
    bandit.update(arm, 0.5);
  }
}
BENCHMARK(BM_BanditSelectUpdate)->Arg(4)->Arg(16)->Arg(64);

void BM_AgentStep(benchmark::State& state) {
  core::AgentConfig cfg;
  core::SelfAwareAgent agent("bench", cfg);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t s = 0; s < n; ++s) {
    agent.add_sensor("s" + std::to_string(s), [s] {
      return static_cast<double>(s);
    });
  }
  agent.add_action("a", [] {});
  agent.add_action("b", [] {});
  agent.goals().add_objective({"s0", core::utility::rising(0.0, 10.0), 1.0});
  agent.set_goal_metrics({"s0"});
  agent.set_policy(std::make_unique<core::BanditPolicy>(
      std::make_unique<learn::Ucb1>(2)));
  double t = 0.0;
  for (auto _ : state) {
    agent.step(t);
    agent.reward(0.5);
    t += 1.0;
  }
  state.SetLabel(std::to_string(n) + " sensors, full stack");
}
BENCHMARK(BM_AgentStep)->Arg(4)->Arg(16);

void BM_GossipRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::GossipAggregator agg(n);
  std::vector<double> values(n, 1.0);
  agg.reset(values);
  sim::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.round(rng));
  }
}
BENCHMARK(BM_GossipRound)->Arg(64)->Arg(256);

void BM_PlatformTick(benchmark::State& state) {
  multicore::Platform platform(multicore::PlatformConfig::big_little(2, 4),
                               3);
  platform.set_workload(30.0, 0.2, 0.5);
  for (auto _ : state) {
    platform.step();
  }
}
BENCHMARK(BM_PlatformTick);

void BM_CpnTick(benchmark::State& state) {
  cpn::PacketNetwork net(cpn::Topology::grid(4, 6, 4, 4), {});
  sim::Rng rng(4);
  for (auto _ : state) {
    net.inject(rng.below(24), rng.below(24), true);
    net.step();
  }
}
BENCHMARK(BM_CpnTick);

void BM_SvcStep(benchmark::State& state) {
  svc::NetworkParams p;
  p.seed = 5;
  auto net = svc::Network::clustered_layout(p);
  for (auto _ : state) {
    net.step();
  }
}
BENCHMARK(BM_SvcStep);

void BM_ExplanationRecord(benchmark::State& state) {
  core::Explainer ex;
  core::Explanation e;
  e.agent = "bench";
  e.decision.action = "act";
  e.decision.considered = {{"act", 0.5}, {"other", 0.3}};
  e.evidence = {{"k", 1.0, 0.9}};
  for (auto _ : state) {
    ex.record(e);
  }
}
BENCHMARK(BM_ExplanationRecord);

}  // namespace

BENCHMARK_MAIN();
