file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_thermal.dir/bench_e12_thermal.cpp.o"
  "CMakeFiles/bench_e12_thermal.dir/bench_e12_thermal.cpp.o.d"
  "bench_e12_thermal"
  "bench_e12_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
