#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/telemetry.hpp"

namespace sa::fault {
namespace {

/// A surface over `units` counters: begin increments, end decrements, so
/// tests can observe exactly which units are held down and by how many
/// overlapping faults.
struct CountingSurface {
  std::vector<int> depth;
  std::vector<double> last_magnitude;

  explicit CountingSurface(std::size_t units)
      : depth(units, 0), last_magnitude(units, 0.0) {}

  Injector::Surface as_surface(FaultKind kind, std::string name) {
    Injector::Surface s;
    s.kind = kind;
    s.name = std::move(name);
    s.units = depth.size();
    s.begin = [this](std::size_t unit, double magnitude) {
      ++depth[unit];
      last_magnitude[unit] = magnitude;
    };
    s.end = [this](std::size_t unit, double) { --depth[unit]; };
    return s;
  }
};

std::vector<Injector::Record> run_plan(const FaultPlan& plan, double horizon,
                                       std::size_t units = 4) {
  sim::Engine engine;
  Injector inj;
  CountingSurface surface(units);
  inj.add_surface(surface.as_surface(FaultKind::LinkLoss, "test.link"));
  inj.bind(engine, plan);
  engine.run_until(horizon);
  return inj.records();
}

TEST(Injector, TwoRunsProduceIdenticalRecords) {
  const auto plan =
      FaultPlan::parse("link-loss:rate=0.2,dur=5,burst=2;seed=9");
  const auto a = run_plan(plan, 200.0);
  const auto b = run_plan(plan, 200.0);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].t, b[i].t);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].unit, b[i].unit);
    EXPECT_DOUBLE_EQ(a[i].magnitude, b[i].magnitude);
    EXPECT_DOUBLE_EQ(a[i].until, b[i].until);
    EXPECT_EQ(a[i].begin, b[i].begin);
  }
}

TEST(Injector, DifferentSeedsProduceDifferentSchedules) {
  auto plan = FaultPlan::parse("link-loss:rate=0.2,dur=5");
  plan.seed = 1;
  const auto a = run_plan(plan, 200.0);
  plan.seed = 2;
  const auto b = run_plan(plan, 200.0);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  // Same process statistics, but the onset times must differ.
  bool any_difference = a.size() != b.size();
  for (std::size_t i = 0; !any_difference && i < a.size(); ++i) {
    any_difference = a[i].t != b[i].t || a[i].unit != b[i].unit;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Injector, EmptyPlanIsANoOp) {
  sim::Engine engine;
  Injector inj;
  CountingSurface surface(4);
  inj.add_surface(surface.as_surface(FaultKind::LinkLoss, "test.link"));
  EXPECT_EQ(inj.bind(engine, FaultPlan{}), 0u);
  engine.run_until(1000.0);
  EXPECT_EQ(inj.injected(), 0u);
  EXPECT_EQ(inj.active(), 0u);
  EXPECT_EQ(inj.log_size(), 0u);
  EXPECT_TRUE(std::isinf(inj.last_onset()));
  for (const int d : surface.depth) EXPECT_EQ(d, 0);
}

TEST(Injector, UnmatchedProcessesAreCountedNotArmed) {
  sim::Engine engine;
  Injector inj;
  CountingSurface surface(2);
  inj.add_surface(surface.as_surface(FaultKind::LinkLoss, "test.link"));
  const auto plan =
      FaultPlan::parse("core-fail:rate=1;vm-preempt:rate=1;link-loss:rate=1");
  EXPECT_EQ(inj.bind(engine, plan), 1u);  // only link-loss matches
  EXPECT_EQ(inj.unmatched_processes(), 2u);
}

TEST(Injector, TransientFaultsRestoreAndBalanceCounters) {
  sim::Engine engine;
  Injector inj;
  CountingSurface surface(3);
  inj.add_surface(surface.as_surface(FaultKind::LinkLoss, "test.link"));
  const auto plan =
      FaultPlan::parse("link-loss:rate=0.5,dur=2,end=100;seed=3");
  inj.bind(engine, plan);
  engine.run_until(1000.0);  // long tail: every transient has expired
  ASSERT_GT(inj.injected(), 0u);
  EXPECT_EQ(inj.restored(), inj.injected());
  EXPECT_EQ(inj.active(), 0u);
  for (const int d : surface.depth) EXPECT_EQ(d, 0);
}

TEST(Injector, PermanentFaultsNeverRestore) {
  sim::Engine engine;
  Injector inj;
  CountingSurface surface(3);
  inj.add_surface(surface.as_surface(FaultKind::LinkLoss, "test.link"));
  const auto plan =
      FaultPlan::parse("link-loss:rate=0.5,dur=-1,end=50;seed=3");
  inj.bind(engine, plan);
  engine.run_until(1000.0);
  ASSERT_GT(inj.injected(), 0u);
  EXPECT_EQ(inj.restored(), 0u);
  EXPECT_EQ(inj.active(), inj.injected());
  int held = 0;
  for (const int d : surface.depth) held += d;
  EXPECT_EQ(static_cast<std::size_t>(held), inj.injected());
  for (const auto& rec : inj.records()) {
    if (rec.begin) EXPECT_TRUE(std::isinf(rec.until));
  }
}

TEST(Injector, ProcessWindowIsRespected) {
  const auto plan =
      FaultPlan::parse("link-loss:rate=2,dur=1,start=10,end=20;seed=5");
  const auto records = run_plan(plan, 100.0);
  ASSERT_FALSE(records.empty());
  for (const auto& rec : records) {
    if (!rec.begin) continue;
    EXPECT_GE(rec.t, 10.0);
    EXPECT_LE(rec.t, 20.0);
  }
}

TEST(Injector, LastOnsetTracksTheLatestBegin) {
  sim::Engine engine;
  Injector inj;
  CountingSurface surface(4);
  inj.add_surface(surface.as_surface(FaultKind::LinkLoss, "test.link"));
  inj.bind(engine, FaultPlan::parse("link-loss:rate=0.3,dur=2,end=60;seed=8"));
  engine.run_until(200.0);
  double latest = -std::numeric_limits<double>::infinity();
  for (const auto& rec : inj.records()) {
    if (rec.begin) latest = std::max(latest, rec.t);
  }
  EXPECT_DOUBLE_EQ(inj.last_onset(), latest);
}

TEST(Injector, LogIsABoundedRingKeepingTheNewest) {
  sim::Engine engine;
  Injector inj;
  inj.set_log_capacity(8);
  CountingSurface surface(4);
  inj.add_surface(surface.as_surface(FaultKind::LinkLoss, "test.link"));
  inj.bind(engine, FaultPlan::parse("link-loss:rate=5,dur=0.5;seed=4"));
  engine.run_until(200.0);
  ASSERT_GT(inj.injected() + inj.restored(), 8u);  // storm overflowed it
  EXPECT_EQ(inj.log_size(), 8u);
  const auto records = inj.records();
  ASSERT_EQ(records.size(), 8u);
  // Oldest first, and strictly the tail of the run.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].t, records[i].t);
  }
}

TEST(Injector, ListenersSeeEveryEventWithActiveCount) {
  sim::Engine engine;
  Injector inj;
  CountingSurface surface(4);
  inj.add_surface(surface.as_surface(FaultKind::LinkLoss, "test.link"));
  std::size_t begins = 0, ends = 0, max_active = 0;
  inj.subscribe([&](const Injector::Record& rec, std::size_t active) {
    (rec.begin ? begins : ends) += 1;
    max_active = std::max(max_active, active);
  });
  inj.bind(engine, FaultPlan::parse("link-loss:rate=0.5,dur=3,end=80;seed=2"));
  engine.run_until(300.0);
  EXPECT_EQ(begins, inj.injected());
  EXPECT_EQ(ends, inj.restored());
  EXPECT_GE(max_active, 1u);
}

TEST(Injector, TelemetryGetsOneFailurePerOnset) {
  sim::Engine engine;
  sim::TelemetryBus bus;
  Injector inj;
  CountingSurface surface(4);
  inj.add_surface(surface.as_surface(FaultKind::LinkLoss, "test.link"));
  inj.set_telemetry(&bus);
  inj.bind(engine, FaultPlan::parse("link-loss:rate=0.5,dur=3;seed=2"));
  engine.run_until(100.0);
  ASSERT_GT(inj.injected(), 0u);
  EXPECT_EQ(bus.count(sim::TelemetryBus::kFailure), inj.injected());
}

TEST(Injector, BurstinessClustersOnsets) {
  // With burst=4 the onsets arrive in clumps: the gap distribution is
  // strongly bimodal. Assert a crude signature — many inter-onset gaps far
  // below the mean inter-burst spacing.
  const auto plan =
      FaultPlan::parse("link-loss:rate=0.1,dur=1,burst=4;seed=6");
  const auto records = run_plan(plan, 4000.0, 8);
  std::vector<double> onsets;
  for (const auto& rec : records) {
    if (rec.begin) onsets.push_back(rec.t);
  }
  ASSERT_GT(onsets.size(), 20u);
  std::size_t tight = 0;
  for (std::size_t i = 1; i < onsets.size(); ++i) {
    if (onsets[i] - onsets[i - 1] < 2.0) ++tight;  // mean gap is 10 s
  }
  EXPECT_GT(tight, onsets.size() / 3);
}

TEST(Injector, SurfaceAccessorExposesRegistrationOrder) {
  Injector inj;
  CountingSurface surface(2);
  inj.add_surface(surface.as_surface(FaultKind::CoreFail, "a"));
  inj.add_surface(surface.as_surface(FaultKind::LinkLoss, "b"));
  ASSERT_EQ(inj.surfaces(), 2u);
  EXPECT_EQ(inj.surface(0).name, "a");
  EXPECT_EQ(inj.surface(1).kind, FaultKind::LinkLoss);
  inj.surface(0).begin(1, 2.5);
  EXPECT_EQ(surface.depth[1], 1);
  EXPECT_DOUBLE_EQ(surface.last_magnitude[1], 2.5);
}

}  // namespace
}  // namespace sa::fault
