// Concept-drift detection.
//
// The paper stresses "ongoing change" as a defining complexity (Section II).
// Drift detectors are how a self-aware process notices that its own model
// has gone stale — the trigger for model resets and for meta-level strategy
// switching.
#pragma once

#include <cmath>
#include <cstddef>
#include <deque>
#include <string>

namespace sa::learn {

/// Page-Hinkley test for mean increase/decrease in a stream.
/// Fires when the cumulative deviation from the running mean exceeds
/// `lambda` after allowing a tolerance `delta`.
class PageHinkley {
 public:
  explicit PageHinkley(double delta = 0.005, double lambda = 50.0)
      : delta_(delta), lambda_(lambda) {}

  /// Feeds a sample; returns true iff drift is detected (detector then
  /// resets itself so detections are edge-triggered).
  bool add(double x) {
    ++n_;
    mean_ += (x - mean_) / static_cast<double>(n_);
    // Two-sided: track both a rising and a falling cumulative sum.
    up_ = std::max(0.0, up_ + x - mean_ - delta_);
    down_ = std::max(0.0, down_ - (x - mean_) - delta_);
    if (up_ > lambda_ || down_ > lambda_) {
      reset();
      return true;
    }
    return false;
  }
  void reset() {
    n_ = 0;
    mean_ = up_ = down_ = 0.0;
  }
  [[nodiscard]] std::string name() const { return "page-hinkley"; }

 private:
  double delta_, lambda_;
  std::size_t n_ = 0;
  double mean_ = 0.0, up_ = 0.0, down_ = 0.0;
};

/// Lightweight adaptive-windowing detector ("ADWIN-lite"): keeps a bounded
/// window and fires when the means of the older and newer halves differ by
/// more than a Hoeffding-style bound at confidence `delta`.
class AdaptiveWindow {
 public:
  explicit AdaptiveWindow(std::size_t max_window = 256, double delta = 0.002)
      : max_window_(max_window), delta_(delta) {}

  /// Feeds a sample; returns true iff drift detected. On detection the
  /// older half is dropped (the window "adapts").
  bool add(double x) {
    buf_.push_back(x);
    if (buf_.size() > max_window_) buf_.pop_front();
    if (buf_.size() < 16) return false;

    const std::size_t half = buf_.size() / 2;
    double m0 = 0.0, m1 = 0.0;
    for (std::size_t i = 0; i < half; ++i) m0 += buf_[i];
    for (std::size_t i = half; i < buf_.size(); ++i) m1 += buf_[i];
    m0 /= static_cast<double>(half);
    m1 /= static_cast<double>(buf_.size() - half);

    const double n0 = static_cast<double>(half);
    const double n1 = static_cast<double>(buf_.size() - half);
    const double m_harm = 1.0 / (1.0 / n0 + 1.0 / n1);
    const double eps =
        std::sqrt((1.0 / (2.0 * m_harm)) * std::log(4.0 / delta_));
    if (std::fabs(m0 - m1) > eps) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(half));
      return true;
    }
    return false;
  }
  [[nodiscard]] std::size_t window_size() const { return buf_.size(); }
  void reset() { buf_.clear(); }
  [[nodiscard]] std::string name() const { return "adwin-lite"; }

 private:
  std::size_t max_window_;
  double delta_;
  std::deque<double> buf_;
};

}  // namespace sa::learn
