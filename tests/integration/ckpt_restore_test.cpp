// Whole-world checkpoint/restore byte-equality (ctest -L ckpt).
//
// The tentpole acceptance property: a run checkpointed at time T and
// restored produces the byte-identical remaining trajectory. Full worlds
// restore by *replay* — rebuild from the same (spec, seed), re-apply the
// control journal, run_until(T) — and the WorldCheckpoint::verify() byte
// attestation is what proves the rebuilt world IS the checkpointed one:
// every component section (knowledge bases, runtime counters, injector,
// ladders, engine timeline) must re-export to the exact bytes the image
// holds, else kStateDivergence names the drifted section. Continuing both
// runs to the horizon then bit-compares the summaries (hexfloat).
//
// Covered worlds mirror the bench tiers: an E1-style multicore world, an
// E4-style packet network, and the E15 smart-city composite — the latter
// twice, once with an active fault plan plus a replayed control journal
// (the served-run-becomes-reproducible-offline path).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/journal.hpp"
#include "ckpt/state.hpp"
#include "gen/scenario.hpp"
#include "gen/spec.hpp"

namespace sa::ckpt {
namespace {

constexpr const char* kE1Spec = "world:horizon=120;multicore:nodes=2;faults";
constexpr const char* kE4Spec =
    "world:horizon=120;cpn:rows=3,cols=3,shortcuts=2;faults";
constexpr const char* kE15Spec =
    "world:horizon=80;multicore:nodes=1;"
    "cameras:count=6,objects=8,clusters=1;cloud:nodes=8;"
    "cpn:rows=3,cols=3,shortcuts=2;faults";

/// Bit-exact summary serialization: equality means the two worlds ran the
/// same trajectory down to the last ULP.
std::string hex_summary(const gen::Scenario& world) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& [key, value] : world.summary()) {
    os << key << '=' << value << ';';
  }
  return os.str();
}

void apply_journal(gen::Scenario& world,
                   const std::vector<JournalEntry>& entries) {
  if (entries.empty()) return;
  schedule_replay(world.engine(), entries, /*order=*/1000, &world.injector(),
                  nullptr);
}

/// The acceptance drill: run A to T, checkpoint, run A to the horizon
/// (reference trajectory); rebuild B, replay to T, attest byte-equality
/// against the image, continue B, bit-compare the summaries.
void expect_restore_byte_equal(const std::string& spec_text,
                               std::uint64_t seed, double t_checkpoint,
                               const std::vector<JournalEntry>& journal = {}) {
  SCOPED_TRACE(spec_text);
  const auto spec = gen::ScenarioSpec::parse(spec_text);
  gen::Scenario::Options opts;
  opts.self_aware = true;

  gen::Scenario a(spec, seed, opts);
  apply_journal(a, journal);
  a.run_until(t_checkpoint);
  WorldCheckpoint wa;
  a.register_checkpoint(wa);
  WorldCheckpoint::Meta meta;
  meta.t = t_checkpoint;
  meta.seed = seed;
  meta.recipe = spec.to_string();
  meta.fault_plan = a.fault_plan().to_string();
  std::string image;
  ASSERT_TRUE(wa.save(meta, image).ok());
  a.run();
  const std::string reference = hex_summary(a);

  // Replay-restore: same (spec, seed, journal), run to T.
  gen::Scenario b(spec, seed, opts);
  apply_journal(b, journal);
  b.run_until(t_checkpoint);
  WorldCheckpoint wb;
  b.register_checkpoint(wb);
  Reader r;
  ASSERT_TRUE(Reader::parse(image, r).ok());
  WorldCheckpoint::Meta got;
  ASSERT_TRUE(WorldCheckpoint::read_meta(r, got).ok());
  EXPECT_EQ(got.t, t_checkpoint);
  EXPECT_EQ(got.seed, seed);
  EXPECT_EQ(got.recipe, meta.recipe);

  // The attestation: every component of B re-exports to the checkpoint's
  // exact bytes. This is what "restored at T" means here.
  const Status attest = wb.verify(r);
  ASSERT_TRUE(attest.ok()) << attest.to_string();

  // And the remaining trajectory is byte-identical.
  b.run();
  EXPECT_EQ(hex_summary(b), reference);
}

TEST(CkptRestore, E1MulticoreWorldRestoresByteIdentically) {
  expect_restore_byte_equal(kE1Spec, 41, 60.0);
}

TEST(CkptRestore, E4PacketNetworkRestoresByteIdentically) {
  expect_restore_byte_equal(kE4Spec, 42, 60.0);
}

TEST(CkptRestore, E15CityRestoresByteIdentically) {
  expect_restore_byte_equal(kE15Spec, 61, 40.0);
}

TEST(CkptRestore, E15CityWithJournalAndActiveFaultsRestores) {
  // A served run's perturbations: one operator injection before the
  // checkpoint, one after it — both must land in both worlds, and the
  // checkpoint must be taken while the fault plan has already fired.
  std::vector<JournalEntry> journal;
  ASSERT_TRUE(parse_journal_spec(
                  "25 cmd=inject&kind=link-loss&unit=0&mag=1.5&dur=10; "
                  "55 cmd=inject&kind=link-loss&unit=1&mag=2&dur=5",
                  journal)
                  .ok());
  expect_restore_byte_equal(kE15Spec, 62, 40.0, journal);
}

TEST(CkptRestore, StaleIdentityIsRefused) {
  const auto spec = gen::ScenarioSpec::parse(kE1Spec);
  gen::Scenario::Options opts;
  opts.self_aware = true;
  gen::Scenario a(spec, 7, opts);
  a.run_until(30.0);
  WorldCheckpoint wa;
  a.register_checkpoint(wa);
  WorldCheckpoint::Meta meta;
  meta.t = 30.0;
  meta.seed = 7;
  meta.recipe = spec.to_string();
  meta.fault_plan = a.fault_plan().to_string();
  std::string image;
  ASSERT_TRUE(wa.save(meta, image).ok());

  Reader r;
  ASSERT_TRUE(Reader::parse(image, r).ok());

  // A different seed (or recipe) is a shape mismatch before any component
  // sees a byte: a stale file can never silently resume a different run.
  WorldCheckpoint::Meta other = meta;
  other.seed = 8;
  EXPECT_EQ(wa.restore(r, &other).code, Errc::kShapeMismatch);
  other = meta;
  other.recipe = "world:horizon=999";
  EXPECT_EQ(wa.restore(r, &other).code, Errc::kShapeMismatch);

  // A torn/corrupted image is a typed parse error, not a bad restore.
  std::string corrupt = image;
  corrupt[corrupt.size() / 2] ^= 0x10;
  Reader bad;
  EXPECT_FALSE(Reader::parse(corrupt, bad).ok());
}

}  // namespace
}  // namespace sa::ckpt
