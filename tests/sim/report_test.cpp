#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace sa::sim {
namespace {

TEST(Table, StoresRows) {
  Table t("demo", {"a", "b"});
  t.add_row({std::string("x"), 1.5});
  t.add_row({std::string("y"), std::int64_t{7}});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(std::get<std::string>(t.row(0)[0]), "x");
  EXPECT_EQ(std::get<std::int64_t>(t.row(1)[1]), 7);
}

TEST(Table, RejectsWrongArity) {
  Table t("demo", {"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), std::invalid_argument);
  EXPECT_THROW(t.add_row({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Table, PrintContainsTitleHeadersAndValues) {
  Table t("My Experiment", {"name", "value"});
  t.add_row({std::string("alpha"), 2.0});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("My Experiment"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.000"), std::string::npos);  // default precision 3
}

TEST(Table, PrecisionIsPerColumn) {
  Table t("p", {"a", "b"});
  t.precision(0, 1).precision(1, 4);
  t.add_row({1.23456, 1.23456});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.2"), std::string::npos);
  EXPECT_NE(os.str().find("1.2346"), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows) {
  Table t("csv", {"x", "y"});
  t.add_row({std::int64_t{1}, 2.5});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2.500\n");
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t("csv", {"label"});
  t.add_row({std::string("hello, \"world\"")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "label\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, IntegerCellsPrintWithoutDecimals) {
  Table t("ints", {"n"});
  t.add_row({std::int64_t{42}});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "n\n42\n");
}

}  // namespace
}  // namespace sa::sim
