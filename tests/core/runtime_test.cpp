#include "core/runtime.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "learn/bandit.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace sa::core {
namespace {

AgentConfig quiet() {
  AgentConfig cfg;
  cfg.seed = 3;
  return cfg;
}

TEST(AgentRuntime, StepsAgentAtItsPeriod) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent agent("periodic", quiet());
  agent.add_sensor("x", [] { return 1.0; });
  rt.schedule(agent, 0.5);
  engine.run_until(10.0);
  EXPECT_EQ(agent.steps(), 20u);
  EXPECT_EQ(rt.steps_run(), 20u);
}

TEST(AgentRuntime, DifferentPeriodsCoexist) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent fast("fast", quiet()), slow("slow", quiet());
  rt.schedule(fast, 1.0);
  rt.schedule(slow, 5.0);
  engine.run_until(20.0);
  EXPECT_EQ(fast.steps(), 20u);
  EXPECT_EQ(slow.steps(), 4u);
  EXPECT_EQ(rt.scheduled(), 2u);
}

TEST(AgentRuntime, RewardDeliveredAfterEachStep) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent agent("rewarded", quiet());
  agent.add_action("a", [] {});
  agent.add_action("b", [] {});
  agent.set_policy(std::make_unique<BanditPolicy>(
      std::make_unique<learn::EpsilonGreedy>(2, 0.0)));
  rt.schedule(agent, 1.0, [] { return 1.0; });
  engine.run_until(50.0);
  auto* policy = dynamic_cast<BanditPolicy*>(agent.policy());
  ASSERT_NE(policy, nullptr);
  // All reward went somewhere: at least one arm has learned value 1.
  EXPECT_DOUBLE_EQ(
      std::max(policy->bandit().value(0), policy->bandit().value(1)), 1.0);
}

TEST(AgentRuntime, ExchangeSharesPublicKnowledgeBothWays) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent a("alpha", quiet()), b("beta", quiet());
  double va = 1.0, vb = 2.0;
  a.add_sensor("load", [&] { return va; });
  b.add_sensor("load", [&] { return vb; });
  rt.schedule(a, 1.0);
  rt.schedule(b, 1.0);
  rt.schedule_exchange({&a, &b}, 2.0);
  engine.run_until(10.0);
  EXPECT_GT(rt.items_exchanged(), 0u);
  // Each agent now holds the other's public view of its own load.
  EXPECT_DOUBLE_EQ(a.knowledge().number("shared.beta.load"), 2.0);
  EXPECT_DOUBLE_EQ(b.knowledge().number("shared.alpha.load"), 1.0);
}

TEST(AgentRuntime, ExchangedKnowledgeTracksUpdates) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent a("alpha", quiet()), b("beta", quiet());
  double va = 1.0;
  a.add_sensor("load", [&] { return va; });
  rt.schedule(a, 1.0);
  rt.schedule_exchange({&a, &b}, 1.0);
  engine.run_until(3.2);
  va = 42.0;  // the world changes...
  engine.run_until(6.0);
  // ...and the peer's shared copy follows (newer timestamps win).
  EXPECT_DOUBLE_EQ(b.knowledge().number("shared.alpha.load"), 42.0);
}

TEST(AgentRuntime, SubstrateTicksBeforeAgentStepsAtCoincidentTimes) {
  // Substrate dynamics run at kOrderDynamics (0), agents at kOrderControl
  // (1): whenever a tick and a step land on the same instant, the agent
  // observes the post-tick world.
  sim::Engine engine;
  AgentRuntime rt(engine);
  int world = 0;
  int seen_at_step = -1;
  SelfAwareAgent agent("observer", quiet());
  agent.add_sensor("world", [&] {
    seen_at_step = world;
    return static_cast<double>(world);
  });
  rt.schedule(agent, 1.0);           // registered FIRST...
  rt.schedule_substrate("counter", 0.5, [&] { ++world; });
  engine.run_until(1.0);
  // ...but at t = 1.0 the substrate (ticks at 0.5 and 1.0) still ran first.
  EXPECT_EQ(seen_at_step, 2);
  EXPECT_EQ(rt.substrate_ticks(), 2u);
}

TEST(AgentRuntime, TracksSubstratesByName) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  rt.schedule_substrate("svc.network", 1.0, [] {});
  rt.schedule_substrate("cloud.cluster", 10.0, [] {});
  ASSERT_EQ(rt.substrates().size(), 2u);
  EXPECT_EQ(rt.substrates()[0], "svc.network");
  EXPECT_EQ(rt.substrates()[1], "cloud.cluster");
  engine.run_until(20.0);
  EXPECT_EQ(rt.substrate_ticks(), 22u);  // 20 fast + 2 slow
}

TEST(AgentRuntime, ExchangeRunsAfterStepsAtCoincidentTimes) {
  // Exchange is kOrderExchange (2): at a coincident instant both agents step
  // first, so the exchanged snapshot reflects this round's observations.
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent a("alpha", quiet()), b("beta", quiet());
  double va = 0.0;
  a.add_sensor("load", [&] {
    va += 1.0;  // each step observes a fresh value
    return va;
  });
  rt.schedule_exchange({&a, &b}, 2.0);  // registered before the agents...
  rt.schedule(a, 2.0);
  rt.schedule(b, 2.0);
  engine.run_until(2.0);
  // ...yet b already holds the value a sampled at t = 2.0.
  EXPECT_DOUBLE_EQ(b.knowledge().number("shared.alpha.load"), 1.0);
}

TEST(AgentRuntime, ProfilesScheduledStreamsIntoMetrics) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  sim::MetricsRegistry metrics;
  rt.set_metrics(&metrics);
  SelfAwareAgent agent("prof", quiet());
  agent.add_sensor("x", [] { return 1.0; });
  rt.schedule(agent, 1.0);
  rt.schedule_substrate("world", 0.5, [] {});
  engine.run_until(10.0);

  const auto steps = metrics.find("profile.prof.count");
  const auto step_ms = metrics.find("profile.prof.ms");
  const auto ticks = metrics.find("profile.world.count");
  ASSERT_TRUE(steps.has_value());
  ASSERT_TRUE(step_ms.has_value());
  ASSERT_TRUE(ticks.has_value());
  EXPECT_DOUBLE_EQ(metrics.value(*steps), 10.0);
  EXPECT_DOUBLE_EQ(metrics.value(*ticks), 20.0);
  EXPECT_EQ(metrics.stats(*step_ms).count(), 10u);
  EXPECT_GE(metrics.stats(*step_ms).min(), 0.0);
}

TEST(AgentRuntime, SelfProfileVisibleToTheAgentAsKnowledge) {
  // The self-awareness hook: the agent can read its own ODA-loop latency
  // from its knowledge base, like any other sensed quantity.
  sim::Engine engine;
  AgentRuntime rt(engine);
  sim::MetricsRegistry metrics;
  rt.set_metrics(&metrics);
  SelfAwareAgent agent("introspect", quiet());
  agent.add_sensor("x", [] { return 1.0; });
  rt.schedule(agent, 1.0);
  engine.run_until(3.0);
  const auto item = agent.knowledge().latest("meta.profile.step_ms");
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->source, "profiler");
  EXPECT_GE(as_number(item->value), 0.0);
}

#ifndef SA_TELEMETRY_OFF
TEST(AgentRuntime, TracerRecordsRuntimeSpansPerStream) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  sim::TelemetryBus bus;
  sim::Tracer tracer(bus);
  rt.set_tracer(&tracer);
  SelfAwareAgent a("alpha", quiet()), b("beta", quiet());
  a.add_sensor("x", [] { return 1.0; });
  rt.schedule(a, 1.0);
  rt.schedule(b, 2.0);
  rt.schedule_substrate("world", 1.0, [] {});
  rt.schedule_exchange({&a, &b}, 5.0);
  engine.run_until(10.0);

  EXPECT_EQ(tracer.depth(), 0u);
  // Per-stream subjects exist and carry spans: 10 + 5 oda, 10 ticks,
  // 2 exchanges.
  EXPECT_EQ(tracer.spans(), 27u);
  std::size_t runtime_subjects = 0;
  for (sim::SubjectId s = 0; s < bus.subjects(); ++s) {
    if (bus.subject_name(s).rfind("runtime.", 0) == 0) ++runtime_subjects;
  }
  EXPECT_EQ(runtime_subjects, 4u);  // alpha, beta, world, exchange
}
#endif  // SA_TELEMETRY_OFF

TEST(AgentRuntime, UnprofiledSchedulingIsUnchanged) {
  // No registry, no tracer: the scheduled body runs exactly as before.
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent agent("plain", quiet());
  agent.add_sensor("x", [] { return 1.0; });
  rt.schedule(agent, 1.0);
  engine.run_until(5.0);
  EXPECT_EQ(agent.steps(), 5u);
  EXPECT_FALSE(agent.knowledge().latest("meta.profile.step_ms").has_value());
}

}  // namespace
}  // namespace sa::core
