#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sa::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.executed(), 0u);
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.at(3.0, [&] { order.push_back(3); });
  e.at(1.0, [&] { order.push_back(1); });
  e.at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.executed(), 3u);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.at(5.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine e;
  double seen = -1.0;
  e.at(4.5, [&] { seen = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(e.now(), 4.5);
}

TEST(Engine, InSchedulesRelativeToNow) {
  Engine e;
  double seen = -1.0;
  e.at(2.0, [&] { e.in(3.0, [&] { seen = e.now(); }); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Engine, RunUntilStopsAtHorizonButIncludesIt) {
  Engine e;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    e.at(t, [&fired, t] { fired.push_back(t); });
  }
  e.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  e.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(Engine, EveryRepeatsUntilFalse) {
  Engine e;
  int count = 0;
  e.every(1.0, [&] {
    ++count;
    return count < 5;
  });
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Engine, EveryRespectsHorizon) {
  Engine e;
  int count = 0;
  e.every(1.0, [&] {
    ++count;
    return true;
  });
  e.run_until(10.5);
  EXPECT_EQ(count, 10);
}

TEST(Engine, StepExecutesExactlyOne) {
  Engine e;
  int count = 0;
  e.at(1.0, [&] { ++count; });
  e.at(2.0, [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  std::vector<double> times;
  e.at(1.0, [&] {
    times.push_back(e.now());
    e.at(1.5, [&] { times.push_back(e.now()); });
  });
  e.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.5}));
}

TEST(Engine, OrderBreaksTiesBeforeInsertionSeq) {
  Engine e;
  std::vector<int> fired;
  // Insert in reverse-order priority: control (1) before dynamics (0).
  e.at(2.0, [&] { fired.push_back(1); }, /*order=*/1);
  e.at(2.0, [&] { fired.push_back(0); }, /*order=*/0);
  e.at(2.0, [&] { fired.push_back(2); }, /*order=*/2);
  e.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, CoincidentPeriodicStreamsRespectOrder) {
  // A dynamics stream (order 0) at period 0.5 and a control stream (order 1)
  // at period 1.0 coincide at t = 1, 2, 3...; dynamics must always run first
  // even though the control stream was registered first.
  Engine e;
  std::vector<char> fired;
  e.every(1.0, [&] {
    fired.push_back('c');
    return true;
  }, /*order=*/1);
  e.every(0.5, [&] {
    fired.push_back('d');
    return true;
  }, /*order=*/0);
  e.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<char>{'d', 'd', 'c', 'd', 'd', 'c'}));
}

TEST(Engine, EveryIsDriftFree) {
  // Firing times are computed as base + n * period (one rounding), not by
  // accumulating now + period, so 100 firings of every(0.005) land exactly
  // on 0.5 and coincide bit-exactly with an every(0.5) stream.
  Engine e;
  int fine = 0;
  double coarse_seen_fine = -1;
  e.every(0.005, [&] {
    ++fine;
    return true;
  }, /*order=*/0);
  e.every(0.5, [&] {
    coarse_seen_fine = fine;
    return true;
  }, /*order=*/1);
  e.run_until(0.5);
  EXPECT_EQ(fine, 100);
  // Order 0 ran before order 1 at the coincident instant t = 0.5.
  EXPECT_DOUBLE_EQ(coarse_seen_fine, 100.0);
  EXPECT_DOUBLE_EQ(e.now(), 0.5);
}

TEST(Engine, SameOrderPeriodicStreamsKeepRegistrationOrderEachRound) {
  // Two every(1.0) streams at the same order: each re-schedules immediately
  // after firing, so the first-registered stream fires first every round.
  Engine e;
  std::vector<char> fired;
  e.every(1.0, [&] {
    fired.push_back('a');
    return true;
  });
  e.every(1.0, [&] {
    fired.push_back('b');
    return true;
  });
  e.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<char>{'a', 'b', 'a', 'b', 'a', 'b'}));
}

TEST(Engine, ClearDropsPending) {
  Engine e;
  int count = 0;
  e.at(1.0, [&] { ++count; });
  e.clear();
  e.run();
  EXPECT_EQ(count, 0);
}

TEST(Engine, ClearResetsExecutedCount) {
  Engine e;
  e.at(1.0, [] {});
  e.at(2.0, [] {});
  e.run();
  EXPECT_EQ(e.executed(), 2u);
  e.clear();
  EXPECT_EQ(e.executed(), 0u);
  // A fresh run after clear() counts from zero again.
  e.at(e.now() + 1.0, [] {});
  e.run();
  EXPECT_EQ(e.executed(), 1u);
}

TEST(Engine, RunUntilBeforeStopsStrictlyBeforeTheInstant) {
  // The sa::shard barrier drains a shard engine up to — never into — the
  // coordinator's next (t, order) key.
  Engine e;
  std::vector<int> ran;
  e.at(1.0, [&] { ran.push_back(1); });
  e.at(2.0, [&] { ran.push_back(2); }, /*order=*/0);
  e.at(2.0, [&] { ran.push_back(3); }, /*order=*/1);
  e.at(3.0, [&] { ran.push_back(4); });

  e.run_until_before(2.0, 1);
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));  // (2.0, 1) itself is excluded

  // now() stays at the last executed event, so the run resumes exactly.
  EXPECT_EQ(e.now(), 2.0);
  e.run_until_before(3.0, 0);
  EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
  e.run_until(3.0);
  EXPECT_EQ(ran, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Engine, RunUntilBeforeOnEmptyQueueIsANoOp) {
  Engine e;
  e.run_until_before(5.0, 0);
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_EQ(e.executed(), 0u);
}

TEST(Engine, PeekNextReportsWithoutExecuting) {
  Engine e;
  double t = -1.0;
  int order = -1;
  EXPECT_FALSE(e.peek_next(t, order));

  e.at(2.0, [] {}, /*order=*/3);
  e.at(1.5, [] {}, /*order=*/1);
  ASSERT_TRUE(e.peek_next(t, order));
  EXPECT_EQ(t, 1.5);
  EXPECT_EQ(order, 1);
  EXPECT_EQ(e.executed(), 0u);  // peeking ran nothing

  e.run();
  EXPECT_FALSE(e.peek_next(t, order));
}

TEST(Engine, ClearInsideEventIsSafe) {
  // An event (even a periodic one, whose slot would otherwise be re-armed
  // after it returns) may clear() the engine out from under itself.
  Engine e;
  int after = 0;
  e.every(1.0, [&] {
    e.clear();
    e.at(e.now() + 1.0, [&] { ++after; });
    return true;
  });
  e.run();
  EXPECT_EQ(after, 1);
  EXPECT_EQ(e.executed(), 1u);  // only the post-clear schedule survived
}

}  // namespace
}  // namespace sa::sim
