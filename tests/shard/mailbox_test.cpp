// Contract tests for the inter-shard mailbox transport (sa::shard): the
// (t, order, origin, seq) merge must be a total order independent of how
// origins were packed onto shards.
#include "shard/mailbox.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace sa;
using shard::Outbox;
using shard::RemoteEvent;

TEST(Mailbox, DrainMovesAndResets) {
  Outbox box;
  EXPECT_TRUE(box.empty());
  box.post(1.0, 0, /*origin=*/3, /*district=*/3, 2.5);
  box.post(2.0, 0, 3, 3, 1.5);
  EXPECT_EQ(box.size(), 2u);
  const auto drained = box.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(drained[0].amount, 2.5);
  EXPECT_DOUBLE_EQ(drained[1].amount, 1.5);
}

TEST(Mailbox, SeqPreservesPerOriginProductionOrderAcrossDrains) {
  Outbox box;
  box.post(1.0, 0, 7, 7, 1.0);
  (void)box.drain();
  box.post(1.0, 0, 7, 7, 2.0);  // same (t, order, origin) as the first
  const auto second = box.drain();
  ASSERT_EQ(second.size(), 1u);
  // seq keeps counting across drains, so a re-sorted union of the two
  // batches would still keep production order.
  EXPECT_EQ(second[0].seq, 1u);
}

TEST(Mailbox, MergeSortsByTimeOrderOriginSeq) {
  std::vector<RemoteEvent> a = {
      {2.0, 0, /*origin=*/1, /*seq=*/0, 1, 1.0},
      {1.0, 1, 1, 1, 1, 2.0},
      {1.0, 0, 1, 2, 1, 3.0},
  };
  std::vector<RemoteEvent> b = {
      {1.0, 0, /*origin=*/0, /*seq=*/5, 0, 4.0},
      {1.0, 0, 1, 1, 1, 5.0},
  };
  const auto merged = shard::merge_remote({a, b});
  ASSERT_EQ(merged.size(), 5u);
  // (1,0,0,5) < (1,0,1,1) < (1,0,1,2) < (1,1,1,1) < (2,0,1,0)
  EXPECT_DOUBLE_EQ(merged[0].amount, 4.0);
  EXPECT_DOUBLE_EQ(merged[1].amount, 5.0);
  EXPECT_DOUBLE_EQ(merged[2].amount, 3.0);
  EXPECT_DOUBLE_EQ(merged[3].amount, 2.0);
  EXPECT_DOUBLE_EQ(merged[4].amount, 1.0);
}

TEST(Mailbox, MergeIsPackingInvariant) {
  // The same six events split across shards two different ways must merge
  // into the identical stream — the key is origin, never shard id.
  std::vector<RemoteEvent> all;
  for (std::uint64_t origin = 0; origin < 3; ++origin) {
    for (std::uint64_t seq = 0; seq < 2; ++seq) {
      all.push_back({1.0, 0, origin, seq, static_cast<std::size_t>(origin),
                     static_cast<double>(origin * 10 + seq)});
    }
  }
  const auto packed_a =
      shard::merge_remote({{all[0], all[1]}, {all[2], all[3], all[4], all[5]}});
  const auto packed_b =
      shard::merge_remote({{all[4], all[5]}, {all[2], all[3]}, {all[0], all[1]}});
  ASSERT_EQ(packed_a.size(), packed_b.size());
  for (std::size_t i = 0; i < packed_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(packed_a[i].amount, packed_b[i].amount) << "at " << i;
  }
}

TEST(Mailbox, MergeOfEmptyBoxesIsEmpty) {
  EXPECT_TRUE(shard::merge_remote({}).empty());
  EXPECT_TRUE(shard::merge_remote({{}, {}}).empty());
}

}  // namespace
