// Example: self-aware autoscaling on a volunteer cloud.
//
// Thirty volunteer machines with hidden, heterogeneous reliability donate
// capacity; demand follows a steep diurnal cycle with random bursts; newly
// enrolled nodes take an epoch to become useful. The self-aware autoscaler
// forecasts demand, learns which volunteers actually deliver, and scales by
// simulating each option against its self-model. The timeline shows it
// riding the demand wave.
//
// Run: ./build/examples/cloud_autoscaler
#include <cstdio>

#include "cloud/autoscaler.hpp"

int main() {
  using namespace sa::cloud;

  Cluster::Params cp;
  cp.nodes = 30;
  cp.boot_s = 10.0;
  cp.seed = 2028;
  Cluster cluster(cp);

  DemandModel::Params dp;
  dp.base = 80.0;
  dp.diurnal_amp = 0.5;
  dp.period_s = 400.0;
  dp.burst_prob = 0.04;
  dp.burst_mult = 2.0;
  DemandModel demand(dp);

  Autoscaler::Params ap;
  ap.variant = Autoscaler::Variant::SelfAware;
  ap.seasonal_epochs = 40;
  ap.seed = 2028;
  Autoscaler scaler(cluster, demand, ap);

  std::printf("epoch  demand  enrolled  up  capacity    sla   cost\n");
  for (int e = 1; e <= 160; ++e) {
    const auto ep = scaler.run_epoch();
    if (e % 8 == 0) {
      std::printf("%5d  %6.1f  %8zu  %2zu  %8.1f  %.3f  %5.0f\n", e,
                  ep.arrival_rate, ep.enrolled, ep.up_enrolled, ep.capacity,
                  ep.sla, ep.cost);
    }
  }

  std::printf("\nRun summary: mean SLA %.3f, mean cost %.1f/epoch, "
              "SLA-violation rate %.2f\n",
              scaler.sla().mean(), scaler.cost().mean(),
              scaler.sla_violation_rate());

  // What has it learned about the volunteers?
  auto* ia = scaler.agent().interaction();
  if (ia != nullptr) {
    std::printf("\nLearned volunteer reliability (nodes interacted with):\n");
    int shown = 0;
    for (const auto& peer : ia->peers()) {
      if (ia->interactions(peer) < 20 || shown >= 6) continue;
      std::printf("  %-6s reliability %.2f over %zu epochs\n", peer.c_str(),
                  ia->reliability(peer), ia->interactions(peer));
      ++shown;
    }
  }

  std::printf("\nWhy it last scaled:\n  %s\n",
              scaler.agent().explainer().why_last().c_str());
  return 0;
}
