#include "learn/drift.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace sa::learn {
namespace {

TEST(PageHinkley, SilentOnStationaryStream) {
  PageHinkley ph(0.1, 50.0);
  sim::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_FALSE(ph.add(rng.normal(5.0, 1.0))) << "false positive at " << i;
  }
}

TEST(PageHinkley, DetectsUpwardMeanShift) {
  PageHinkley ph(0.1, 50.0);
  sim::Rng rng(2);
  for (int i = 0; i < 500; ++i) ASSERT_FALSE(ph.add(rng.normal(0.0, 1.0)));
  bool detected = false;
  for (int i = 0; i < 500 && !detected; ++i) {
    detected = ph.add(rng.normal(4.0, 1.0));
  }
  EXPECT_TRUE(detected);
}

TEST(PageHinkley, DetectsDownwardMeanShift) {
  PageHinkley ph(0.1, 50.0);
  sim::Rng rng(3);
  for (int i = 0; i < 500; ++i) ASSERT_FALSE(ph.add(rng.normal(10.0, 1.0)));
  bool detected = false;
  for (int i = 0; i < 500 && !detected; ++i) {
    detected = ph.add(rng.normal(6.0, 1.0));
  }
  EXPECT_TRUE(detected);
}

TEST(PageHinkley, SelfResetsAfterDetection) {
  PageHinkley ph(0.1, 30.0);
  sim::Rng rng(4);
  for (int i = 0; i < 300; ++i) ph.add(rng.normal(0.0, 1.0));
  bool first = false;
  for (int i = 0; i < 500 && !first; ++i) first = ph.add(rng.normal(5.0, 1.0));
  ASSERT_TRUE(first);
  // Immediately after detection the statistic restarted: the very next
  // sample cannot re-trigger.
  EXPECT_FALSE(ph.add(5.0));
}

TEST(PageHinkley, LargerLambdaIsMoreConservative) {
  sim::Rng rng(5);
  PageHinkley sensitive(0.01, 5.0), conservative(0.01, 200.0);
  int sensitive_at = -1, conservative_at = -1;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.normal(0.0, 1.0);
    sensitive.add(x);
    conservative.add(x);
  }
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.normal(2.0, 1.0);
    if (sensitive_at < 0 && sensitive.add(x)) sensitive_at = i;
    if (conservative_at < 0 && conservative.add(x)) conservative_at = i;
  }
  ASSERT_GE(sensitive_at, 0);
  ASSERT_GE(conservative_at, 0);
  EXPECT_LT(sensitive_at, conservative_at);
}

TEST(AdaptiveWindow, SilentOnStationaryStream) {
  AdaptiveWindow aw(256, 1e-4);
  sim::Rng rng(6);
  int detections = 0;
  for (int i = 0; i < 5000; ++i) {
    detections += aw.add(rng.normal(3.0, 0.2)) ? 1 : 0;
  }
  EXPECT_LE(detections, 2);  // Hoeffding bound allows rare false alarms
}

TEST(AdaptiveWindow, DetectsMeanShiftAndDropsOldHalf) {
  AdaptiveWindow aw(128, 0.01);
  sim::Rng rng(7);
  for (int i = 0; i < 200; ++i) aw.add(rng.normal(0.0, 0.5));
  const std::size_t before = aw.window_size();
  bool detected = false;
  for (int i = 0; i < 200 && !detected; ++i) {
    detected = aw.add(rng.normal(3.0, 0.5));
  }
  EXPECT_TRUE(detected);
  EXPECT_LT(aw.window_size(), before);
}

TEST(AdaptiveWindow, NeedsMinimumSamples) {
  AdaptiveWindow aw;
  // Even a wild swing within the first 15 samples cannot fire.
  for (int i = 0; i < 15; ++i) {
    EXPECT_FALSE(aw.add(i < 8 ? 0.0 : 100.0));
  }
}

TEST(AdaptiveWindow, ResetEmptiesWindow) {
  AdaptiveWindow aw;
  for (int i = 0; i < 50; ++i) aw.add(1.0);
  aw.reset();
  EXPECT_EQ(aw.window_size(), 0u);
}

TEST(DriftDetectors, Names) {
  EXPECT_EQ(PageHinkley{}.name(), "page-hinkley");
  EXPECT_EQ(AdaptiveWindow{}.name(), "adwin-lite");
}

}  // namespace
}  // namespace sa::learn
