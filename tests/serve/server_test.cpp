// Loopback tests of the embedded HTTP listener: routing, HEAD handling,
// keep-alive + pipelining, parser-error responses and streaming routes.
// Every server binds port 0 (ephemeral) so suites can run in parallel.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "test_client.hpp"

namespace {

using namespace sa::serve;
namespace client = sa::serve::testing;

Server::Options quick_opts() {
  Server::Options opts;
  opts.workers = 2;
  opts.read_timeout_ms = 500;  // keep idle-connection tests fast
  return opts;
}

TEST(Server, ServesRegisteredRoute) {
  Server server(quick_opts());
  server.route("GET", "/ping", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "pong";
    return resp;
  });
  ASSERT_TRUE(server.start()) << server.error();
  ASSERT_GT(server.port(), 0);

  const std::string resp = client::http_get(server.port(), "/ping");
  EXPECT_EQ(client::status_of(resp), 200);
  EXPECT_EQ(client::body_of(resp), "pong");
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.connections(), 1u);
  EXPECT_GE(server.requests(), 1u);
}

TEST(Server, UnknownPathIs404AndWrongMethodIs405) {
  Server server(quick_opts());
  server.route("GET", "/only-get", [](const HttpRequest&) {
    return HttpResponse{};
  });
  ASSERT_TRUE(server.start()) << server.error();

  EXPECT_EQ(client::status_of(client::http_get(server.port(), "/nope")), 404);
  EXPECT_EQ(client::status_of(
                client::http_post(server.port(), "/only-get", "x=1")),
            405);
  server.stop();
}

TEST(Server, HeadGetsHeadersButNoBody) {
  Server server(quick_opts());
  server.route("GET", "/doc", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "0123456789";
    return resp;
  });
  ASSERT_TRUE(server.start()) << server.error();

  const std::string resp = client::raw_request(
      server.port(), "HEAD /doc HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(client::status_of(resp), 200);
  EXPECT_NE(resp.find("Content-Length: 10"), std::string::npos);
  EXPECT_EQ(client::body_of(resp), "");
  server.stop();
}

TEST(Server, ParserErrorsAnswerWithMatchingStatus) {
  Server server(quick_opts());
  ASSERT_TRUE(server.start()) << server.error();

  EXPECT_EQ(client::status_of(
                client::raw_request(server.port(), "GET / HTTP/2.0\r\n\r\n")),
            505);
  EXPECT_EQ(client::status_of(client::raw_request(
                server.port(), "not a request line\r\n\r\n")),
            400);
  server.stop();
  EXPECT_GE(server.parse_errors(), 2u);
}

TEST(Server, KeepAliveServesPipelinedRequests) {
  Server server(quick_opts());
  std::atomic<int> hits{0};
  server.route("GET", "/n", [&hits](const HttpRequest&) {
    HttpResponse resp;
    resp.body = std::to_string(hits.fetch_add(1) + 1);
    return resp;
  });
  ASSERT_TRUE(server.start()) << server.error();

  const int fd = client::connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string burst =
      "GET /n HTTP/1.1\r\n\r\n"
      "GET /n HTTP/1.1\r\n\r\n"
      "GET /n HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));
  std::string all;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    all.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(hits.load(), 3);
  // Three complete responses came back on one connection, in order.
  std::size_t count = 0;
  for (std::size_t at = all.find("HTTP/1.1 200");
       at != std::string::npos; at = all.find("HTTP/1.1 200", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(server.connections(), 1u);
  EXPECT_EQ(server.requests(), 3u);
}

TEST(Server, ConcurrentClientsAreAllServed) {
  Server server(quick_opts());
  server.route("GET", "/w", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "ok";
    return resp;
  });
  ASSERT_TRUE(server.start()) << server.error();

  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(8);
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&] {
      const std::string resp = client::http_get(server.port(), "/w");
      if (client::status_of(resp) == 200 && client::body_of(resp) == "ok") {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 8);
  server.stop();
}

TEST(Server, StreamRouteRunsHandlerAndClosesAfter) {
  Server server(quick_opts());
  server.route_stream("/stream", [](const HttpRequest&, StreamWriter& w) {
    w.write("data: one\n\n");
    w.write("data: two\n\n");
  });
  ASSERT_TRUE(server.start()) << server.error();

  const std::string resp = client::raw_request(
      server.port(), "GET /stream HTTP/1.1\r\n\r\n");
  EXPECT_EQ(client::status_of(resp), 200);
  EXPECT_NE(resp.find("Content-Type: text/event-stream"), std::string::npos);
  EXPECT_NE(resp.find("data: one\n\n"), std::string::npos);
  EXPECT_NE(resp.find("data: two\n\n"), std::string::npos);
  server.stop();
}

TEST(Server, StopUnblocksLiveStreamHandlers) {
  Server server(quick_opts());
  std::atomic<bool> handler_done{false};
  server.route_stream("/forever", [&](const HttpRequest&, StreamWriter& w) {
    // Emits until the server shuts down; must not wedge stop().
    while (w.open()) {
      if (!w.write(": tick\n\n")) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    handler_done = true;
  });
  ASSERT_TRUE(server.start()) << server.error();

  const int fd = client::connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string req = "GET /forever HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, req.data(), req.size(), 0), 0);
  char buf[256];
  ASSERT_GT(::recv(fd, buf, sizeof(buf), 0), 0);  // stream is live

  server.stop();  // must return promptly despite the open stream
  EXPECT_TRUE(handler_done.load());
  ::close(fd);
}

TEST(Server, StopUnblocksWorkerBlockedOnANonReadingClient) {
  Server::Options opts = quick_opts();
  opts.write_timeout_ms = 30'000;  // only stop()'s shutdown() can unblock
  Server server(opts);
  std::atomic<bool> handler_done{false};
  const std::string chunk(64 * 1024, 'x');
  server.route_stream("/firehose", [&](const HttpRequest&, StreamWriter& w) {
    while (w.write(chunk)) {
    }
    handler_done = true;
  });
  ASSERT_TRUE(server.start()) << server.error();

  const int fd = client::connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string req = "GET /firehose HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, req.data(), req.size(), 0), 0);
  // Never read: the worker fills both socket buffers and blocks in send().
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const auto t0 = std::chrono::steady_clock::now();
  server.stop();  // must shut the connection down rather than wait for send
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(handler_done.load());
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  ::close(fd);
}

TEST(Server, PipelinedRequestBehindStreamTakeoverIsRejected) {
  Server server(quick_opts());
  std::atomic<int> stream_hits{0};
  server.route_stream("/stream", [&](const HttpRequest&, StreamWriter& w) {
    stream_hits.fetch_add(1);
    w.write("data: one\n\n");
  });
  ASSERT_TRUE(server.start()) << server.error();

  // Both requests land in the parser together; the one behind the stream
  // takeover can never be served, so the batch is refused up front.
  const std::string resp = client::raw_request(
      server.port(),
      "GET /stream HTTP/1.1\r\n\r\nGET /stream HTTP/1.1\r\n\r\n");
  EXPECT_EQ(client::status_of(resp), 400);
  EXPECT_NE(resp.find("pipelined"), std::string::npos) << resp;
  EXPECT_EQ(stream_hits.load(), 0);
  server.stop();
  EXPECT_GE(server.parse_errors(), 1u);
}

TEST(Server, StatsObserveRequestsRejectsAndLifecycle) {
  Server::Options opts = quick_opts();
  opts.slow_request_threshold_s = 0.0;  // every request enters the ring
  Server server(opts);
  server.route("GET", "/metrics", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "# nothing\n";
    return resp;
  });
  ASSERT_TRUE(server.start()) << server.error();

  EXPECT_EQ(client::status_of(client::http_get(server.port(), "/metrics")),
            200);
  EXPECT_EQ(client::status_of(client::http_get(server.port(), "/nope")), 404);
  EXPECT_EQ(client::status_of(
                client::raw_request(server.port(), "GET / HTTP/2.0\r\n\r\n")),
            505);
  server.stop();

  const ServerStats::Snapshot s = server.stats().snapshot();
  EXPECT_EQ(s.routes[static_cast<std::size_t>(RouteClass::Metrics)].count,
            1u);
  EXPECT_EQ(s.routes[static_cast<std::size_t>(RouteClass::Other)].count, 1u);
  EXPECT_EQ(s.rejects[4], 1u);  // 505 slot of kRejectStatuses
  EXPECT_EQ(s.active, 0u);      // all connections closed by stop()
  EXPECT_EQ(s.queue_wait.count, 3u);  // every accept passed through a worker
  EXPECT_GT(s.request_bytes, 0u);
  EXPECT_GT(s.response_bytes, 0u);
  // Threshold 0 put both routed requests in the slow ring (rejects bypass
  // route accounting), newest last.
  ASSERT_EQ(s.slow.size(), 2u);
  EXPECT_EQ(s.slow[0].route, RouteClass::Metrics);
  EXPECT_EQ(s.slow[1].route, RouteClass::Other);
  EXPECT_EQ(s.slow[1].status, 404);
}

TEST(Server, StatsCountKeepAliveReuses) {
  Server server(quick_opts());
  server.route("GET", "/n", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.start()) << server.error();

  const int fd = client::connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string burst =
      "GET /n HTTP/1.1\r\n\r\n"
      "GET /n HTTP/1.1\r\n\r\n"
      "GET /n HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));
  char buf[2048];
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
  ::close(fd);
  server.stop();

  const ServerStats::Snapshot s = server.stats().snapshot();
  // Three requests on one connection: the second and third are reuses.
  EXPECT_EQ(s.keepalive_reuses, 2u);
  EXPECT_EQ(s.routes[static_cast<std::size_t>(RouteClass::Other)].count, 3u);
}

TEST(Server, StopIsIdempotent) {
  Server server(quick_opts());
  server.route("GET", "/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.start()) << server.error();
  server.stop();
  server.stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
}

TEST(Server, RejectsUnbindablePort) {
  Server a(quick_opts());
  ASSERT_TRUE(a.start()) << a.error();
  Server::Options taken = quick_opts();
  taken.port = a.port();
  Server b(taken);
  EXPECT_FALSE(b.start());
  EXPECT_FALSE(b.error().empty());
  a.stop();
}

}  // namespace
