file(REMOVE_RECURSE
  "CMakeFiles/sa_svc.dir/fleet.cpp.o"
  "CMakeFiles/sa_svc.dir/fleet.cpp.o.d"
  "CMakeFiles/sa_svc.dir/network.cpp.o"
  "CMakeFiles/sa_svc.dir/network.cpp.o.d"
  "libsa_svc.a"
  "libsa_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
