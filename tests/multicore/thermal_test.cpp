// Tests for the thermal model and hardware throttling.
#include <gtest/gtest.h>

#include "multicore/platform.hpp"

namespace sa::multicore {
namespace {

PlatformConfig thermal_config() {
  auto cfg = PlatformConfig::big_little(2, 4);
  cfg.thermal = true;
  return cfg;
}

TEST(Thermal, DisabledModelReportsAmbient) {
  Platform p(PlatformConfig::big_little(2, 4), 1);
  p.set_workload(30.0, 0.2, 0.0);
  p.run_for(5.0);
  EXPECT_DOUBLE_EQ(p.temperature(0), 40.0);
  EXPECT_FALSE(p.throttled(0));
  EXPECT_DOUBLE_EQ(p.harvest().throttle_frac, 0.0);
}

TEST(Thermal, IdleChipStaysNearAmbient) {
  Platform p(thermal_config(), 2);
  p.set_all_freq(0);
  p.set_workload(0.0, 1.0, 0.0);
  p.run_for(20.0);
  for (std::size_t c = 0; c < p.cores(); ++c) {
    EXPECT_LT(p.temperature(c), 55.0);
    EXPECT_FALSE(p.throttled(c));
  }
}

TEST(Thermal, SustainedMaxFrequencyHeatsUpAndThrottles) {
  Platform p(thermal_config(), 3);
  p.set_all_freq(3);
  p.set_mapping(Mapping::PackBig);
  p.set_workload(60.0, 0.3, 0.0);  // saturate the big cores
  p.run_for(30.0);
  const auto s = p.harvest();
  EXPECT_GT(s.max_temp_c, 85.0);
  EXPECT_GT(s.throttle_frac, 0.0);
}

TEST(Thermal, ThrottledCoreRunsAtMinimumSpeed) {
  Platform p(thermal_config(), 4);
  p.set_all_freq(3);
  p.set_mapping(Mapping::PackBig);
  p.set_workload(60.0, 0.3, 0.0);
  p.run_for(30.0);
  // At least one big core should be clamped right now; its throughput
  // contribution matches f_min, visible via sustained throughput drop.
  bool any_throttled = false;
  for (std::size_t c = 0; c < p.cores(); ++c) {
    any_throttled = any_throttled || p.throttled(c);
  }
  EXPECT_TRUE(any_throttled);
}

TEST(Thermal, ThrottlingRecoversAfterCooldown) {
  Platform p(thermal_config(), 5);
  p.set_all_freq(3);
  p.set_mapping(Mapping::PackBig);
  p.set_workload(60.0, 0.3, 0.0);
  p.run_for(30.0);
  p.harvest();
  // Remove the load and drop the frequency: cores must cool and unclamp.
  p.set_workload(0.0, 1.0, 0.0);
  p.set_all_freq(0);
  p.run_for(60.0);
  for (std::size_t c = 0; c < p.cores(); ++c) {
    EXPECT_FALSE(p.throttled(c));
    EXPECT_LT(p.temperature(c), 76.0);
  }
}

TEST(Thermal, ModerateFrequencySustainsWithoutThrottling) {
  // The sprint-vs-sustain trade-off: mid frequency under the same load
  // never crosses the envelope.
  Platform p(thermal_config(), 6);
  p.set_all_freq(1);
  p.set_workload(25.0, 0.15, 0.0);
  p.run_for(60.0);
  const auto s = p.harvest();
  EXPECT_DOUBLE_EQ(s.throttle_frac, 0.0);
  EXPECT_LT(s.max_temp_c, 85.0);
}

TEST(Thermal, SustainedThroughputBeatsNaiveSprint) {
  // Over a long horizon, max frequency (which throttle-oscillates) can be
  // matched or beaten by a cooler configuration on *sustained* work done —
  // the scenario E12 explores with a self-aware manager.
  auto run = [](std::size_t level) {
    Platform p(thermal_config(), 7);
    p.set_all_freq(level);
    p.set_workload(45.0, 0.25, 0.0);  // heavy, saturating load
    p.run_for(60.0);
    return p.harvest();
  };
  const auto sprint = run(3);
  const auto sustain = run(2);
  EXPECT_GT(sprint.throttle_frac, sustain.throttle_frac);
  // Sustained config completes at least ~95% of the sprinter's work
  // without ever hitting the thermal wall.
  EXPECT_GT(sustain.throughput, 0.95 * sprint.throughput);
}

}  // namespace
}  // namespace sa::multicore
