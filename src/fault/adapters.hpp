// Substrate bindings for the fault injector.
//
// Each bind_* registers the Injector surfaces one substrate exposes,
// translating abstract (unit, magnitude) faults into that substrate's
// fault-surface calls. Overlapping transient faults on the same unit are
// reference-counted: the unit is only restored when the *last* fault
// covering it ends, so bursty plans (burstiness > 1) behave correctly.
//
// The adapters only capture references — the substrate must outlive the
// injector's engine events, exactly like the bind() adapters the runtime
// uses for dynamics.
#pragma once

#include "core/agent.hpp"
#include "core/runtime.hpp"
#include "fault/fault.hpp"

namespace sa::cloud {
class Cluster;
}
namespace sa::cpn {
class PacketNetwork;
}
namespace sa::multicore {
class Platform;
}
namespace sa::svc {
class Network;
}

namespace sa::fault {

/// multicore: CoreFail (core crash-restart, queued work re-homed) and
/// FreqCap (chip-wide DVFS cap to level = magnitude).
void bind_platform(Injector& inj, multicore::Platform& platform);

/// svc: NodeCrash (camera crash-restart, tracks released), SensorDropout
/// (visibility 0) and SensorBlur (visibility x (1 - magnitude)).
void bind_cameras(Injector& inj, svc::Network& net);

/// cloud: VmPreempt (per-node provider reclaim) and LatencySpike
/// (cluster capacity divided by magnitude).
void bind_cluster(Injector& inj, cloud::Cluster& cluster);

/// cpn: LinkLoss (single link down), Partition (one node's incident links
/// all down — unit is a *node*) and LinkReorder (link latency x magnitude).
/// LinkLoss and Partition share per-link refcounts, so a partition ending
/// does not resurrect a link an overlapping link-loss still holds down.
void bind_packet_network(Injector& inj, cpn::PacketNetwork& net);

/// runtime: ExchangeDrop gates scheduled knowledge exchanges (they retry
/// with backoff and eventually time out; see AgentRuntime).
void bind_exchange(Injector& inj, core::AgentRuntime& rt);

/// Mirrors the injector's state into `agent`'s knowledge base on every
/// onset/restore: "fault.active" (faults currently in force) and
/// "fault.count" (onsets so far), source "fault" — the signals
/// core::DegradationPolicy triggers on. Deterministic: driven by injector
/// events only.
void feed_agent(Injector& inj, core::SelfAwareAgent& agent);

}  // namespace sa::fault
