// Trace-export determinism: the --trace file written by the harness must
// be bitwise-identical whatever the thread count (the traced cell is fixed
// by convention — last variant, first seed — and its timestamps are pure
// sim-time), and every explanation rendered by the traced cell must cite
// trace ids resolvable in that file. Runs a reduced E2-style camera-fleet
// grid, the substrate with the most agents per cell.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "svc/fleet.hpp"

namespace {

using namespace sa;

constexpr int kEpochs = 40;

exp::Grid fleet_grid(std::vector<std::string>* notes) {
  exp::Grid g;
  g.name = "svc.reduced";
  g.variants = {"homogeneous", "self-aware"};
  g.seeds = {31, 32};
  g.task = [notes](const exp::TaskContext& ctx) -> exp::TaskOutput {
    svc::NetworkParams np;
    np.objects = 12;
    np.seed = ctx.seed;
    auto net = svc::Network::clustered_layout(np);
    svc::CameraFleet::Params p;
    p.mode = ctx.variant == 0 ? svc::CameraFleet::Mode::Homogeneous
                              : svc::CameraFleet::Mode::Learning;
    p.seed = ctx.seed;
    p.telemetry = ctx.telemetry;
    p.tracer = ctx.tracer;
    svc::CameraFleet fleet(net, p);
    sim::RunningStats util;
    for (int e = 0; e < kEpochs; ++e) util.add(fleet.run_epoch().global_utility);
    if (ctx.tracer != nullptr && notes != nullptr) {
      // Collect the traced cell's rendered explanations for the citation
      // check (first learning camera is representative).
      for (const auto& e : fleet.agent(0).explainer().all()) {
        notes->push_back(e.render());
      }
    }
    return {{{"global_utility", util.mean()}}};
  };
  return g;
}

/// Runs the harness exactly as a bench binary would, with --jobs N and
/// --trace PATH, and returns the written file's bytes.
std::string run_with_jobs(const std::string& path, const char* jobs,
                          std::vector<std::string>* notes = nullptr) {
  const char* argv[] = {"trace_determinism", "--jobs", jobs,
                        "--trace", path.c_str()};
  exp::Harness h("trace_determinism", 5, argv);
  (void)h.run(fleet_grid(notes));
  std::ostringstream sink;  // swallow the footer
  EXPECT_EQ(h.finish(sink), 0);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

TEST(TraceDeterminism, TraceFileIsBitwiseIdenticalAcrossJobCounts) {
  const std::string p1 = testing::TempDir() + "trace_jobs1.json";
  const std::string p4 = testing::TempDir() + "trace_jobs4.json";
  const std::string serial = run_with_jobs(p1, "1");
  const std::string parallel = run_with_jobs(p4, "4");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  std::remove(p1.c_str());
  std::remove(p4.c_str());
}

#ifndef SA_TELEMETRY_OFF
TEST(TraceDeterminism, TraceFileIsValidChromeTraceJson) {
  const std::string path = testing::TempDir() + "trace_shape.json";
  const std::string doc = run_with_jobs(path, "2");
  EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(doc.find("sa-sim"), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');
  std::remove(path.c_str());
}

TEST(TraceDeterminism, TracedCellExplanationsCiteIdsResolvableInFile) {
  const std::string path = testing::TempDir() + "trace_cite.json";
  std::vector<std::string> notes;
  const std::string doc = run_with_jobs(path, "2", &notes);
  ASSERT_FALSE(notes.empty());
  std::size_t cited_checked = 0;
  for (const std::string& note : notes) {
    // "... Trace: decision #N from evidence #A, #B."
    const auto pos = note.find("Trace: decision #");
    ASSERT_NE(pos, std::string::npos) << note;
    std::size_t at = pos;
    while ((at = note.find('#', at)) != std::string::npos) {
      const std::string id = note.substr(at + 1,
                                         note.find_first_not_of(
                                             "0123456789", at + 1) -
                                             at - 1);
      ASSERT_FALSE(id.empty());
      // Decision/observation ids resolve to a span's args.trace_id;
      // stimulus chain ids resolve to flow events' "id". Close each probe
      // with the following delimiter so "1" cannot match "12".
      bool resolvable = false;
      for (const char* key : {"\"trace_id\":", "\"id\":"}) {
        for (const char* tail : {",", "}"}) {
          if (doc.find(key + id + tail) != std::string::npos) {
            resolvable = true;
          }
        }
      }
      EXPECT_TRUE(resolvable)
          << "id #" << id << " cited but not in trace file";
      ++cited_checked;
      ++at;
    }
  }
  EXPECT_GT(cited_checked, 0u);
  std::remove(path.c_str());
}
#endif  // SA_TELEMETRY_OFF

}  // namespace
