#include "gen/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ckpt/state.hpp"
#include "fault/adapters.hpp"

namespace sa::gen {

namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Per-replica seed salt: replica 0 keeps the legacy single-instance
/// stream untouched; replica r perturbs the section constant in bits the
/// section never uses, so growing D/G never reshuffles earlier replicas.
std::uint64_t replica_salt(std::size_t r) {
  return static_cast<std::uint64_t>(r) << 32;
}

}  // namespace

Scenario::Scenario(const ScenarioSpec& spec, std::uint64_t run_seed,
                   Options opts)
    : spec_(spec),
      seed_(spec.scenario_seed(run_seed)),
      opts_(opts),
      runtime_(engine_),
      couple_rng_(ScenarioSpec::section_stream(seed_, "couplings")) {
  if (!spec_.any_substrate()) {
    throw std::invalid_argument("scenario: no substrate section enabled");
  }
  runtime_.set_metrics(opts_.metrics);
  runtime_.set_tracer(opts_.tracer);
  injector_.set_telemetry(opts_.telemetry);

  // Registration order is part of the determinism contract: at coincident
  // instants the engine breaks order ties by registration sequence, so
  // build steps always run in this fixed order — cameras (world steps,
  // injections into the CPN happen inside these), then CPN (traffic
  // before transit), then the coupling windows, then the control loops.
  build_cameras();
  build_cpn();
  build_cloud();
  build_edge();
  wire_couplings();

  if (opts_.self_aware && spec_.world.exchange_s > 0.0) {
    std::vector<core::SelfAwareAgent*> peers;
    for (auto& m : managers_) peers.push_back(&m->agent());
    if (autoscaler_) peers.push_back(&autoscaler_->agent());
    if (peers.size() >= 2) {
      runtime_.schedule_exchange(peers, spec_.world.exchange_s);
    }
  }

  wire_faults();
}

Scenario::~Scenario() = default;

void Scenario::build_cameras() {
  if (!spec_.cameras.enabled) return;
  const std::size_t D = spec_.cameras.districts;
  pending_.assign(D, 0.0);
  for (std::size_t d = 0; d < D; ++d) {
    svc::NetworkParams np;
    np.objects = spec_.cameras.objects;
    np.speed = spec_.cameras.speed;
    np.seed = sim::mix64(seed_ ^ 0x5CA3'0001ULL ^ replica_salt(d));
    auto camnet = std::make_unique<svc::Network>(
        spec_.expand_cameras(seed_, d), np);
    camnet->set_telemetry(shard_telemetry());

    svc::CameraFleet::Params fp;
    fp.mode = opts_.self_aware ? svc::CameraFleet::Mode::Learning
                               : svc::CameraFleet::Mode::Homogeneous;
    fp.fixed = svc::Strategy::Broadcast;
    fp.epoch_steps = spec_.cameras.epoch_steps;
    fp.seed = sim::mix64(seed_ ^ 0x5CA3'0002ULL ^ replica_salt(d));
    fp.telemetry = shard_telemetry();
    fp.tracer = shard_tracer();
    auto fleet = std::make_unique<svc::CameraFleet>(*camnet, fp);
    sim::Engine* eng = &district_engine(d);
    svc::Network* net = camnet.get();
    fleet->bind(*eng, spec_.world.step_s,
                [this, d, eng, net](const svc::NetworkEpoch& ep) {
                  // cameras -> cpn: tracked objects this epoch become
                  // backend-bound report packets (injected at the next
                  // coupling window; see wire_couplings).
                  const double amount =
                      ep.coverage * static_cast<double>(net->objects());
                  if (opts_.placement != nullptr &&
                      opts_.placement->post_reports) {
                    // Off-coordinator district: route through the shard
                    // mailbox so the coordinator applies posts in global
                    // event order.
                    opts_.placement->post_reports(d, eng->now(), amount);
                  } else {
                    pending_[d] += amount;
                  }
                });
    camnets_.push_back(std::move(camnet));
    fleets_.push_back(std::move(fleet));
  }
}

void Scenario::build_cpn() {
  if (!spec_.cpn.enabled) return;
  const std::size_t G = spec_.cpn.grids;
  // Gateway/backend choices come from the coupling stream, not the
  // topology seed, so re-routing knobs never reshuffle the coupling
  // itself. Grid 0 reads the base fork exactly as a grids=1 section did;
  // later grids fork by index (fork never advances the parent).
  sim::Rng gwbase = couple_rng_.fork("gateways");
  for (std::size_t g = 0; g < G; ++g) {
    cpn::Topology topo = cpn::Topology::grid(
        spec_.cpn.rows, spec_.cpn.cols, spec_.cpn.shortcuts,
        sim::mix64(seed_ ^ 0xC9A0'0001ULL ^ replica_salt(g)));
    cpn::PacketNetwork::Params np;
    np.router = opts_.self_aware ? cpn::PacketNetwork::Router::QRouting
                                 : cpn::PacketNetwork::Router::Static;
    np.seed = sim::mix64(seed_ ^ 0xC9A0'0002ULL ^ replica_salt(g));
    cpn::TrafficParams tp;
    tp.flows = spec_.cpn.flows;
    tp.legit_rate = spec_.cpn.rate;
    tp.seed = sim::mix64(seed_ ^ 0xC9A0'0003ULL ^ replica_salt(g));

    auto cpnnet = std::make_unique<cpn::PacketNetwork>(topo, np);
    cpnnet->set_telemetry(shard_telemetry());
    auto traffic =
        std::make_unique<cpn::TrafficGenerator>(cpnnet->topology(), tp);
    // Injections before transit at every tick, as in the synchronous loop.
    sim::Engine& eng = grid_engine(g);
    traffic->bind(eng, *cpnnet, spec_.world.step_s);
    cpnnet->bind(eng, spec_.world.step_s);

    sim::Rng gw = g != 0 ? gwbase.fork(g) : gwbase;
    const std::size_t n = cpnnet->topology().nodes();
    std::vector<std::size_t> gates;
    const auto backend = static_cast<std::size_t>(gw.below(n));
    const std::size_t want = std::min<std::size_t>(3, n - 1);
    while (gates.size() < want) {
      const auto node = static_cast<std::size_t>(gw.below(n));
      if (node == backend) continue;
      if (std::find(gates.begin(), gates.end(), node) != gates.end()) {
        continue;
      }
      gates.push_back(node);
    }
    backend_nodes_.push_back(backend);
    gateways_.push_back(std::move(gates));
    cpnnets_.push_back(std::move(cpnnet));
    traffics_.push_back(std::move(traffic));
  }
}

void Scenario::build_cloud() {
  if (!spec_.cloud.enabled) return;
  cloud::Cluster::Params cp;
  cp.nodes = spec_.cloud.nodes;
  cp.epoch_s = spec_.cloud.epoch_s;
  cp.seed = sim::mix64(seed_ ^ 0xC10D'0001ULL);
  cluster_ = std::make_unique<cloud::Cluster>(cp);
  cluster_->set_telemetry(opts_.telemetry);

  cloud::DemandModel::Params dp;
  dp.base = spec_.cloud.demand;
  dp.diurnal_amp = spec_.cloud.amp;
  demand_ = std::make_unique<cloud::DemandModel>(dp);

  cloud::Autoscaler::Params ap;
  ap.variant = opts_.self_aware ? cloud::Autoscaler::Variant::SelfAware
                                : cloud::Autoscaler::Variant::Static;
  ap.initial_nodes = std::max<std::size_t>(1, spec_.cloud.nodes / 3);
  ap.seed = sim::mix64(seed_ ^ 0xC10D'0002ULL);
  ap.telemetry = opts_.telemetry;
  ap.tracer = opts_.tracer;
  autoscaler_ = std::make_unique<cloud::Autoscaler>(*cluster_, *demand_, ap);
  autoscaler_->bind(engine_, 0.0, [this](const cloud::CloudEpoch& ep) {
    cloud_sla_.add(ep.sla);
    cloud_cost_.add(ep.cost);
    // cloud -> edge: when the backend saturates, overflow analytics are
    // offloaded to the edge nodes — their arrival rates scale with the
    // backend's utilisation (piecewise linear, bounded, epoch-granular).
    // In a sharded run this executes on the coordinator while the shards
    // are barrier-paused strictly before (t, control), so the owning
    // shard's manager epoch at the same instant reads the new rates —
    // exactly the monolithic registration-order tie-break.
    const double offload = 0.7 + 0.4 * clamp01(ep.utilisation);
    for (std::size_t i = 0; i < platforms_.size(); ++i) {
      const EdgeWorkload& w = workloads_[i];
      platforms_[i]->set_workload(w.rate * offload, w.work, w.deadline);
    }
  });
}

void Scenario::build_edge() {
  if (!spec_.multicore.enabled) return;
  workloads_ = spec_.expand_workloads(seed_);
  for (std::size_t i = 0; i < spec_.multicore.nodes; ++i) {
    auto platform = std::make_unique<multicore::Platform>(
        multicore::PlatformConfig::big_little(spec_.multicore.big,
                                              spec_.multicore.little),
        sim::mix64(seed_ ^ 0xED6E'0001ULL ^ (i << 8)));
    const EdgeWorkload& w = workloads_[i];
    platform->set_workload(w.rate, w.work, w.deadline);

    multicore::Manager::Params mp;
    mp.variant = opts_.self_aware ? multicore::Manager::Variant::SelfAware
                                  : multicore::Manager::Variant::Static;
    mp.epoch_s = spec_.multicore.epoch_s;
    mp.seed = sim::mix64(seed_ ^ 0xED6E'0002ULL ^ (i << 8));
    mp.telemetry = shard_telemetry();
    mp.tracer = shard_tracer();
    auto manager = std::make_unique<multicore::Manager>(*platform, mp);
    manager->bind(edge_engine(i), spec_.multicore.epoch_s);

    platforms_.push_back(std::move(platform));
    managers_.push_back(std::move(manager));
  }
}

void Scenario::wire_couplings() {
  // One window event per coupling epoch, at dynamics order so control
  // loops firing at the same instant (order 1) see this window's effects.
  // Registered after the substrate binds, so at coincident ticks the
  // window reads post-step state. Always hosted by the scenario's own
  // engine: in a sharded run this is the coordinator event whose
  // lookahead gap the shards drain up to.
  const double window =
      spec_.cloud.enabled ? spec_.cloud.epoch_s : 10.0 * spec_.world.step_s;
  const bool inject = spec_.cameras.enabled && spec_.cpn.enabled;
  if (cpnnets_.empty() && !inject) return;
  engine_.every_tagged(
      sim::event_tag("sa.gen.couple"), window,
      [this, inject] {
        if (inject) {
          // cameras -> cpn: drain each district's pending report count
          // into packets, round-robin over its grid's gateways
          // (stream-chosen start point; district d feeds grid d mod G).
          const std::size_t G = cpnnets_.size();
          for (std::size_t d = 0; d < pending_.size(); ++d) {
            const std::vector<std::size_t>& gws = gateways_[d % G];
            if (gws.empty()) continue;
            auto n = static_cast<std::size_t>(pending_[d]);
            pending_[d] -= static_cast<double>(n);
            auto at =
                static_cast<std::size_t>(couple_rng_.below(gws.size()));
            for (std::size_t i = 0; i < n; ++i) {
              cpnnets_[d % G]->inject(gws[at], backend_nodes_[d % G],
                                      /*legit=*/true);
              at = (at + 1) % gws.size();
              ++reports_injected_;
            }
          }
        }
        if (!cpnnets_.empty()) {
          // Harvest every grid (ascending), then couple the *combined*
          // delivery rate downstream — the exact CpnStats::delivery_rate
          // expression over the summed counters, so one grid reproduces
          // the single-network trajectory bit-for-bit.
          std::size_t delivered = 0, done = 0;
          for (auto& net : cpnnets_) {
            const cpn::CpnStats stats = net->harvest();
            cpn_delivered_ += stats.delivered;
            cpn_dropped_ += stats.dropped;
            delivered += stats.delivered;
            done += stats.delivered + stats.dropped;
            if (stats.delivered > 0) cpn_latency_.add(stats.p95_latency);
          }
          const double rate =
              done != 0 ? static_cast<double>(delivered) /
                              static_cast<double>(done)
                        : 1.0;
          cpn_delivery_.add(rate);
          // cpn -> cloud: reports that never reach the backend are never
          // analysed — delivery scales the demand the cluster must serve.
          if (demand_) {
            demand_->set_base(spec_.cloud.demand * (0.3 + 0.7 * rate));
          }
        }
        return true;
      },
      core::AgentRuntime::kOrderDynamics);
}

void Scenario::wire_faults() {
  plan_ = spec_.expand_faults(seed_);
  for (auto& p : platforms_) fault::bind_platform(injector_, *p);
  for (auto& net : camnets_) fault::bind_cameras(injector_, *net);
  if (cluster_) fault::bind_cluster(injector_, *cluster_);
  for (auto& net : cpnnets_) fault::bind_packet_network(injector_, *net);
  if (spec_.world.exchange_s > 0.0) {
    fault::bind_exchange(injector_, runtime_);
  }
  if (opts_.self_aware) {
    // The degraded-modes ladder (E13 idiom): each edge manager watches
    // the injector's fault pressure and sheds awareness levels under it.
    // The ladder runs on the engine that owns its manager, so at a
    // coincident (t, control) instant the within-shard sequence order
    // (managers before ladders) matches the monolithic engine's.
    for (std::size_t i = 0; i < managers_.size(); ++i) {
      fault::feed_agent(injector_, managers_[i]->agent());
      core::DegradationPolicy::Params dp;
      dp.fault_active_breach = 2.0;
      degradations_.push_back(std::make_unique<core::DegradationPolicy>(
          managers_[i]->agent(), dp));
      runtime_.schedule_degradation(*degradations_.back(),
                                    spec_.multicore.epoch_s,
                                    &edge_engine(i));
    }
  }
  injector_.bind(engine_, plan_);
}

void Scenario::run() { run_until(spec_.world.horizon); }

void Scenario::run_until(double t) { engine_.run_until(t); }

std::vector<core::SelfAwareAgent*> Scenario::agents() {
  std::vector<core::SelfAwareAgent*> out;
  for (auto& m : managers_) out.push_back(&m->agent());
  if (opts_.self_aware) {
    for (auto& fleet : fleets_) {
      for (std::size_t c = 0; c < fleet->cameras(); ++c) {
        out.push_back(&fleet->agent(c));
      }
    }
  }
  if (autoscaler_) out.push_back(&autoscaler_->agent());
  return out;
}

void Scenario::register_checkpoint(ckpt::WorldCheckpoint& wc) {
  wc.add(
      "runtime",
      [this](ckpt::Buffer& b) {
        ckpt::save_runtime(runtime_, b);
        return ckpt::Status{};
      },
      [this](ckpt::Cursor& c) { return ckpt::restore_runtime(c, runtime_); });
  wc.add(
      "injector",
      [this](ckpt::Buffer& b) {
        ckpt::save_injector(injector_, b);
        return ckpt::Status{};
      },
      [this](ckpt::Cursor& c) {
        return ckpt::restore_injector(c, injector_);
      });
  // Section names are indexed by registration position, not agent id
  // alone: homogeneous substrates reuse ids (every multicore node's
  // manager is "multicore-mgr"), and section names must be unique.
  std::size_t li = 0;
  for (auto& d : degradations_) {
    core::DegradationPolicy* p = d.get();
    wc.add(
        "ladder." + std::to_string(li++) + "." + p->agent().id(),
        [p](ckpt::Buffer& b) {
          ckpt::save_ladder(*p, b);
          return ckpt::Status{};
        },
        [p](ckpt::Cursor& c) { return ckpt::restore_ladder(c, *p); });
  }
  std::size_t ki = 0;
  for (core::SelfAwareAgent* a : agents()) {
    wc.add(
        "kb." + std::to_string(ki++) + "." + a->id(),
        [a](ckpt::Buffer& b) {
          ckpt::save_knowledge(a->knowledge(), b);
          return ckpt::Status{};
        },
        [a](ckpt::Cursor& c) {
          return ckpt::load_knowledge(c, a->knowledge());
        });
  }
  // The engine goes last: on a direct restore its import_timeline() arms
  // the heap against everything registered above and exits restore mode.
  wc.add(
      "engine",
      [this](ckpt::Buffer& b) { return ckpt::save_engine(engine_, b); },
      [this](ckpt::Cursor& c) { return ckpt::restore_engine(c, engine_); });
}

std::vector<std::pair<std::string, double>> Scenario::summary() const {
  std::vector<std::pair<std::string, double>> out;
  // Headline: mean normalised health across the enabled substrates —
  // exactly the quantity degradation monotonicity is asserted against.
  double goal = 0.0;
  std::size_t parts = 0;
  if (!fleets_.empty()) {
    double c = 0.0;
    for (const auto& f : fleets_) c += f->coverage().mean();
    goal += clamp01(c / static_cast<double>(fleets_.size()));
    ++parts;
  }
  if (!cpnnets_.empty()) {
    goal += clamp01(cpn_delivery_.mean());
    ++parts;
  }
  if (autoscaler_) {
    goal += clamp01(cloud_sla_.mean());
    ++parts;
  }
  if (!managers_.empty()) {
    double u = 0.0;
    for (const auto& m : managers_) u += m->utility().mean();
    goal += clamp01(u / static_cast<double>(managers_.size()));
    ++parts;
  }
  out.emplace_back("goal", parts ? goal / static_cast<double>(parts) : 0.0);

  if (!managers_.empty()) {
    double u = 0.0, p = 0.0;
    for (const auto& m : managers_) {
      u += m->utility().mean();
      p += m->power().mean();
    }
    const auto n = static_cast<double>(managers_.size());
    out.emplace_back("edge_utility", u / n);
    out.emplace_back("edge_power_w", p / n);
  }
  if (!fleets_.empty()) {
    double c = 0.0, msgs = 0.0;
    for (const auto& f : fleets_) {
      c += f->coverage().mean();
      msgs += f->messages().mean();
    }
    const auto n = static_cast<double>(fleets_.size());
    out.emplace_back("coverage", c / n);
    out.emplace_back("camera_messages", msgs / n);
  }
  if (autoscaler_) {
    out.emplace_back("cloud_sla", cloud_sla_.mean());
    out.emplace_back("cloud_cost", cloud_cost_.mean());
  }
  if (!cpnnets_.empty()) {
    out.emplace_back("cpn_delivery", cpn_delivery_.mean());
    out.emplace_back("cpn_p95_ticks", cpn_latency_.mean());
    out.emplace_back("cpn_delivered", static_cast<double>(cpn_delivered_));
    out.emplace_back("reports_injected",
                     static_cast<double>(reports_injected_));
  }
  out.emplace_back("faults_injected",
                   static_cast<double>(injector_.injected()));
  out.emplace_back("faults_restored",
                   static_cast<double>(injector_.restored()));
  out.emplace_back("exchange_items",
                   static_cast<double>(runtime_.items_exchanged()));
  return out;
}

}  // namespace sa::gen
