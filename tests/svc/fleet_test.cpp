#include "svc/fleet.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"

namespace sa::svc {
namespace {

NetworkParams world_params(std::uint64_t seed = 4) {
  NetworkParams p;
  p.objects = 16;
  p.seed = seed;
  return p;
}

TEST(CameraFleet, HomogeneousAppliesFixedStrategyEverywhere) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet::Params p;
  p.mode = CameraFleet::Mode::Homogeneous;
  p.fixed = Strategy::Smooth;
  CameraFleet fleet(net, p);
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    EXPECT_EQ(net.strategy(c), Strategy::Smooth);
  }
  EXPECT_DOUBLE_EQ(fleet.diversity(), 0.0);
}

TEST(CameraFleet, HistogramSumsToCameraCount) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet fleet(net, {});
  for (int i = 0; i < 5; ++i) fleet.run_epoch();
  const auto hist = fleet.strategy_histogram();
  std::size_t total = 0;
  for (auto c : hist) total += c;
  EXPECT_EQ(total, net.cameras());
}

TEST(CameraFleet, DiversityIsZeroWhenUniform) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet::Params p;
  p.mode = CameraFleet::Mode::Homogeneous;
  p.fixed = Strategy::Broadcast;
  CameraFleet fleet(net, p);
  fleet.run_epoch();
  EXPECT_DOUBLE_EQ(fleet.diversity(), 0.0);
}

TEST(CameraFleet, DiversityIsOneWhenBalanced) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet::Params p;
  p.mode = CameraFleet::Mode::Homogeneous;
  CameraFleet fleet(net, p);
  // Hand-assign a perfectly balanced strategy split (12 cameras / 3).
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    net.set_strategy(c, static_cast<Strategy>(c % kStrategies));
  }
  EXPECT_NEAR(fleet.diversity(), 1.0, 1e-9);
}

TEST(CameraFleet, LearningRunsAndAccumulates) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet::Params p;
  p.epoch_steps = 20;
  CameraFleet fleet(net, p);
  for (int i = 0; i < 10; ++i) {
    const auto e = fleet.run_epoch();
    EXPECT_GE(e.coverage, 0.0);
    EXPECT_LE(e.coverage, 1.0);
  }
  EXPECT_EQ(fleet.coverage().count(), 10u);
}

TEST(CameraFleet, LearningAgentsExist) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet fleet(net, {});
  fleet.run_epoch();
  EXPECT_EQ(fleet.cameras(), net.cameras());
  EXPECT_EQ(fleet.agent(0).id(), "cam0");
  EXPECT_GT(fleet.agent(0).steps(), 0u);
}

TEST(CameraFleet, LearningDevelopsNonTrivialAssignment) {
  // After enough epochs the learners should have committed to concrete
  // strategies (not stuck at construction defaults with no exploration).
  auto net = Network::clustered_layout(world_params(9));
  CameraFleet::Params p;
  p.epoch_steps = 20;
  p.seed = 9;
  CameraFleet fleet(net, p);
  for (int i = 0; i < 60; ++i) fleet.run_epoch();
  const auto hist = fleet.strategy_histogram();
  // Exploration guarantees every strategy was tried; final histogram must
  // be a valid partition.
  std::size_t total = 0;
  for (auto c : hist) total += c;
  EXPECT_EQ(total, net.cameras());
}

TEST(CameraFleet, BindReproducesRunEpochLoop) {
  // The engine-driven fleet (every step an event, epoch work piggybacked on
  // the epoch_steps-th step) must match the synchronous run_epoch() loop.
  CameraFleet::Params p;
  p.epoch_steps = 10;
  p.seed = 6;

  auto legacy_net = Network::clustered_layout(world_params(6));
  CameraFleet legacy(legacy_net, p);
  sim::RunningStats legacy_u;
  for (int i = 0; i < 8; ++i) legacy_u.add(legacy.run_epoch().global_utility);

  auto bound_net = Network::clustered_layout(world_params(6));
  CameraFleet bound(bound_net, p);
  sim::Engine engine;
  sim::RunningStats bound_u;
  bound.bind(engine, 1.0, [&](const NetworkEpoch& e) {
    bound_u.add(e.global_utility);
  });
  engine.run_until(8.0 * 10.0);

  ASSERT_EQ(bound_u.count(), 8u);
  EXPECT_DOUBLE_EQ(bound_u.mean(), legacy_u.mean());
  EXPECT_DOUBLE_EQ(bound.coverage().mean(), legacy.coverage().mean());
}

#ifndef SA_TELEMETRY_OFF
TEST(CameraFleet, TelemetryFlowsFromNetworkAndAgents) {
  sim::TelemetryBus bus;
  auto net = Network::clustered_layout(world_params());
  CameraFleet::Params p;
  p.telemetry = &bus;
  CameraFleet fleet(net, p);
  for (int i = 0; i < 5; ++i) fleet.run_epoch();
  // Agents emit observation/decision; the auction layer emits handover
  // observations under the shared "svc.network" subject.
  EXPECT_GT(bus.count(sim::TelemetryBus::kObservation), 0u);
  EXPECT_GT(bus.count(sim::TelemetryBus::kDecision), 0u);
  EXPECT_EQ(bus.subject_name(bus.intern_subject("svc.network")),
            "svc.network");
}
#endif  // SA_TELEMETRY_OFF

TEST(CameraFleet, AgentsReceiveGoalUtility) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet fleet(net, {});
  for (int i = 0; i < 3; ++i) fleet.run_epoch();
  EXPECT_TRUE(fleet.agent(0).knowledge().contains("goal.utility"));
}

}  // namespace
}  // namespace sa::svc
