// Shared command-line options for the experiment binaries.
//
// Every bench_e* binary accepts the same three flags so that the whole
// suite can be driven uniformly (and in parallel) by scripts and CI:
//
//   --jobs N       worker threads for the seed×variant grid (default: all
//                  hardware threads; results are identical for any N)
//   --seeds K      override the experiment's default seed count
//   --json PATH    write a machine-readable BENCH_<exp>.json document
//   --trace PATH   write a Chrome/Perfetto trace-event JSON of one
//                  designated cell (bitwise-stable across --jobs N)
//   --metrics PATH write that cell's metrics snapshots as JSONL
//   --fault-plan S overlay a fault::FaultPlan spec on experiments that
//                  support fault injection (others reject it)
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace sa::exp {

struct Options {
  unsigned jobs = 0;      ///< worker threads; 0 = hardware_concurrency()
  std::size_t seeds = 0;  ///< seed-count override; 0 = experiment default
  std::string json;       ///< BENCH json output path; empty = no JSON
  std::string trace;      ///< Chrome trace output path; empty = no trace
  std::string metrics;    ///< metrics JSONL output path; empty = none
  /// Fault-plan spec (fault::FaultPlan::parse syntax); empty = the
  /// experiment's built-in plan. Only fault-aware benches consume it.
  std::string fault_plan;
  bool help = false;      ///< --help was given
};

/// Parses argv into `out`. Returns an empty string on success, otherwise
/// a one-line error message (the caller should print usage and exit).
/// Accepts `--flag value` and `--flag=value` spellings plus `-j N`.
[[nodiscard]] std::string parse_args(int argc, const char* const* argv,
                                     Options& out);

/// Usage text for --help and parse errors.
[[nodiscard]] std::string usage(std::string_view program);

}  // namespace sa::exp
