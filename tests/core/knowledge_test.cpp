#include "core/knowledge.hpp"

#include <gtest/gtest.h>

namespace sa::core {
namespace {

TEST(Value, AsNumberConvertsScalars) {
  EXPECT_DOUBLE_EQ(as_number(Value{true}), 1.0);
  EXPECT_DOUBLE_EQ(as_number(Value{false}), 0.0);
  EXPECT_DOUBLE_EQ(as_number(Value{std::int64_t{42}}), 42.0);
  EXPECT_DOUBLE_EQ(as_number(Value{3.5}), 3.5);
}

TEST(Value, AsNumberFallsBackForNonScalars) {
  EXPECT_DOUBLE_EQ(as_number(Value{std::string("abc")}, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(as_number(Value{std::vector<double>{1.0}}, 9.0), 9.0);
}

TEST(Value, ToStringRendersEachAlternative) {
  EXPECT_EQ(to_string(Value{true}), "true");
  EXPECT_EQ(to_string(Value{std::int64_t{7}}), "7");
  EXPECT_EQ(to_string(Value{std::string("hi")}), "hi");
  EXPECT_EQ(to_string(Value{std::vector<double>{1.0, 2.0}}), "[1,2]");
}

TEST(Value, HoldsChecksAlternative) {
  EXPECT_TRUE(holds<double>(Value{1.0}));
  EXPECT_FALSE(holds<bool>(Value{1.0}));
}

TEST(KnowledgeBase, LatestReturnsMostRecent) {
  KnowledgeBase kb;
  kb.put_number("load", 1.0, 0.0);
  kb.put_number("load", 2.0, 1.0);
  const auto item = kb.latest("load");
  ASSERT_TRUE(item.has_value());
  EXPECT_DOUBLE_EQ(as_number(item->value), 2.0);
  EXPECT_DOUBLE_EQ(item->time, 1.0);
}

TEST(KnowledgeBase, LatestOnUnknownKeyIsEmpty) {
  KnowledgeBase kb;
  EXPECT_FALSE(kb.latest("nothing").has_value());
  EXPECT_FALSE(kb.contains("nothing"));
}

TEST(KnowledgeBase, NumberFallsBack) {
  KnowledgeBase kb;
  EXPECT_DOUBLE_EQ(kb.number("missing", 7.5), 7.5);
  kb.put("label",
          KnowledgeItem{Value{std::string("x")}, 0.0, 1.0, Scope::Private,
                        ""});
  EXPECT_DOUBLE_EQ(kb.number("label", 3.0), 3.0);
}

TEST(KnowledgeBase, HistoryPreservesOrder) {
  KnowledgeBase kb;
  for (int i = 0; i < 5; ++i) {
    kb.put_number("x", static_cast<double>(i), static_cast<double>(i));
  }
  const auto& hist = kb.history("x");
  ASSERT_EQ(hist.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(as_number(hist[static_cast<std::size_t>(i)].value), i);
  }
}

TEST(KnowledgeBase, HistoryIsBounded) {
  KnowledgeBase kb(3);
  for (int i = 0; i < 10; ++i) {
    kb.put_number("x", static_cast<double>(i), 0.0);
  }
  const auto& hist = kb.history("x");
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_DOUBLE_EQ(as_number(hist.front().value), 7.0);  // oldest evicted
  EXPECT_DOUBLE_EQ(as_number(hist.back().value), 9.0);
}

TEST(KnowledgeBase, ConfidenceOfLatest) {
  KnowledgeBase kb;
  EXPECT_DOUBLE_EQ(kb.confidence("x"), 0.0);
  kb.put_number("x", 1.0, 0.0, 0.4);
  EXPECT_DOUBLE_EQ(kb.confidence("x"), 0.4);
  kb.put_number("x", 1.0, 1.0, 0.9);
  EXPECT_DOUBLE_EQ(kb.confidence("x"), 0.9);
}

TEST(KnowledgeBase, KeysAreSorted) {
  KnowledgeBase kb;
  kb.put_number("b", 1.0, 0.0);
  kb.put_number("a", 1.0, 0.0);
  kb.put_number("c", 1.0, 0.0);
  EXPECT_EQ(kb.keys(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(kb.size(), 3u);
}

TEST(KnowledgeBase, PrefixQuery) {
  KnowledgeBase kb;
  kb.put_number("peer.a.rel", 1.0, 0.0);
  kb.put_number("peer.b.rel", 1.0, 0.0);
  kb.put_number("forecast.x", 1.0, 0.0);
  kb.put_number("peer", 1.0, 0.0);
  const auto peers = kb.keys_with_prefix("peer.");
  EXPECT_EQ(peers,
            (std::vector<std::string>{"peer.a.rel", "peer.b.rel"}));
  EXPECT_TRUE(kb.keys_with_prefix("zzz").empty());
}

TEST(KnowledgeBase, PublicSnapshotFiltersByScope) {
  KnowledgeBase kb;
  kb.put_number("private.x", 1.0, 0.0, 1.0, Scope::Private);
  kb.put_number("public.y", 2.0, 0.0, 1.0, Scope::Public);
  const auto snap = kb.public_snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, "public.y");
}

TEST(KnowledgeBase, PublicSnapshotUsesLatestScope) {
  KnowledgeBase kb;
  // A key whose latest write is private disappears from the public self.
  kb.put_number("x", 1.0, 0.0, 1.0, Scope::Public);
  kb.put_number("x", 2.0, 1.0, 1.0, Scope::Private);
  EXPECT_TRUE(kb.public_snapshot().empty());
}

TEST(KnowledgeBase, ListenersFireOnPut) {
  KnowledgeBase kb;
  int calls = 0;
  std::string last_key;
  kb.subscribe([&](const std::string& key, const KnowledgeItem&) {
    ++calls;
    last_key = key;
  });
  kb.put_number("a", 1.0, 0.0);
  kb.put_number("b", 2.0, 0.0);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(last_key, "b");
}

TEST(KnowledgeBase, UnsubscribeStopsNotifications) {
  KnowledgeBase kb;
  int calls = 0;
  const auto handle =
      kb.subscribe([&](const std::string&, const KnowledgeItem&) { ++calls; });
  kb.put_number("a", 1.0, 0.0);
  kb.unsubscribe(handle);
  kb.put_number("a", 2.0, 0.0);
  EXPECT_EQ(calls, 1);
}

TEST(KnowledgeBase, SourceAndProvenancePreserved) {
  KnowledgeBase kb;
  kb.put_number("x", 1.0, 2.0, 0.8, Scope::Public, "stimulus");
  const auto item = kb.latest("x");
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->source, "stimulus");
  EXPECT_EQ(item->scope, Scope::Public);
}

TEST(KnowledgeBase, ItemsAreFreshWithinTheirTtl) {
  KnowledgeBase kb;
  KnowledgeItem item;
  item.value = Value{1.0};
  item.time = 10.0;
  item.ttl = 5.0;
  kb.put("reading", item);
  EXPECT_TRUE(kb.fresh("reading", 10.0));
  EXPECT_TRUE(kb.fresh("reading", 15.0));  // exactly at the TTL boundary
  EXPECT_FALSE(kb.fresh("reading", 15.01));
  // Staleness is a signal, not an eviction: the item is still readable.
  EXPECT_DOUBLE_EQ(kb.number("reading"), 1.0);
  EXPECT_FALSE(kb.fresh("unknown", 0.0));
}

TEST(KnowledgeBase, InfiniteTtlNeverGoesStale) {
  KnowledgeBase kb;
  kb.put_number("constant", 1.0, 0.0);
  EXPECT_TRUE(kb.fresh("constant", 1e12));
  EXPECT_TRUE(kb.stale_keys("", 1e12).empty());
}

TEST(KnowledgeBase, DefaultTtlIsStampedOntoNewItems) {
  KnowledgeBase kb;
  kb.put_number("before", 1.0, 0.0);
  kb.set_default_ttl(2.0);
  kb.put_number("after", 1.0, 0.0);
  // Items already stored keep the TTL they carried.
  EXPECT_TRUE(kb.fresh("before", 100.0));
  EXPECT_FALSE(kb.fresh("after", 100.0));
  ASSERT_TRUE(kb.latest("after").has_value());
  EXPECT_DOUBLE_EQ(kb.latest("after")->ttl, 2.0);
}

TEST(KnowledgeBase, ExplicitFiniteTtlWinsOverTheDefault) {
  KnowledgeBase kb;
  kb.set_default_ttl(2.0);
  KnowledgeItem item;
  item.value = Value{1.0};
  item.time = 0.0;
  item.ttl = 50.0;
  kb.put("long_lived", item);
  EXPECT_TRUE(kb.fresh("long_lived", 10.0));
  EXPECT_DOUBLE_EQ(kb.latest("long_lived")->ttl, 50.0);
}

TEST(KnowledgeBase, StaleKeysFiltersByPrefixAndSorts) {
  KnowledgeBase kb;
  kb.set_default_ttl(1.0);
  kb.put_number("sensor.b", 1.0, 0.0);
  kb.put_number("sensor.a", 1.0, 0.0);
  kb.put_number("sensor.c", 1.0, 9.5);  // still fresh at t=10
  kb.put_number("other.x", 1.0, 0.0);
  const auto stale = kb.stale_keys("sensor.", 10.0);
  ASSERT_EQ(stale.size(), 2u);
  EXPECT_EQ(stale[0], "sensor.a");
  EXPECT_EQ(stale[1], "sensor.b");
  EXPECT_EQ(kb.stale_keys("", 10.0).size(), 3u);  // other.x included
}

TEST(KnowledgeBase, ClearRemovesEverything) {
  KnowledgeBase kb;
  kb.put_number("x", 1.0, 0.0);
  kb.clear();
  EXPECT_EQ(kb.size(), 0u);
  EXPECT_FALSE(kb.contains("x"));
}

}  // namespace
}  // namespace sa::core
