file(REMOVE_RECURSE
  "CMakeFiles/cloud_tests.dir/cloud/autoscaler_test.cpp.o"
  "CMakeFiles/cloud_tests.dir/cloud/autoscaler_test.cpp.o.d"
  "CMakeFiles/cloud_tests.dir/cloud/boot_lag_test.cpp.o"
  "CMakeFiles/cloud_tests.dir/cloud/boot_lag_test.cpp.o.d"
  "CMakeFiles/cloud_tests.dir/cloud/cluster_test.cpp.o"
  "CMakeFiles/cloud_tests.dir/cloud/cluster_test.cpp.o.d"
  "cloud_tests"
  "cloud_tests.pdb"
  "cloud_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
