// E2 — "Learning to be different" in a smart camera network
// (paper Section II; Lewis et al. [13]).
//
// Claims operationalised:
//   (a) per-camera self-aware strategy learning matches or beats every
//       homogeneous (one-size-fits-all) strategy assignment on global
//       utility;
//   (b) the learned assignment is *heterogeneous* — cameras in different
//       local situations (dense cluster vs isolated ring) choose different
//       strategies, i.e. diversity emerges from self-awareness.
//
// Table 1: global outcomes per configuration.
// Table 2: learned strategy by camera group (cluster vs ring).
#include <iostream>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"
#include "svc/fleet.hpp"

namespace {

using namespace sa;
using namespace sa::svc;

constexpr int kEpochs = 400;
const std::vector<std::uint64_t> kSeeds{31, 32, 33};

NetworkParams world(std::uint64_t seed) {
  NetworkParams p;
  p.objects = 24;
  p.seed = seed;
  return p;
}

const char* strategy_label(std::size_t s) {
  switch (s) {
    case 0: return "broadcast";
    case 1: return "smooth";
    default: return "passive";
  }
}

exp::TaskOutput run(CameraFleet::Mode mode, Strategy fixed,
                    const exp::TaskContext& ctx) {
  const std::uint64_t seed = ctx.seed;
  auto net = Network::clustered_layout(world(seed));
  CameraFleet::Params p;
  p.mode = mode;
  p.fixed = fixed;
  p.seed = seed;
  // The harness's traced cell (--trace/--metrics) gets the observability
  // hooks; tracing derives everything from sim time, so metrics are
  // unchanged whether or not they are set.
  p.telemetry = ctx.telemetry;
  p.tracer = ctx.tracer;
  CameraFleet fleet(net, p);
  sim::MetricsRegistry* metrics = ctx.metrics;
  sim::MetricsRegistry::MetricId g_cov = 0, g_msg = 0, g_util = 0;
  if (metrics != nullptr) {
    g_cov = metrics->gauge("svc.coverage");
    g_msg = metrics->gauge("svc.messages");
    g_util = metrics->gauge("svc.global_utility");
  }
  // Event-driven run: every world step is an engine event; the fleet's
  // epoch work rides on the 25th step. Trajectory is identical to the old
  // synchronous run_epoch() loop.
  sim::Engine engine;
  // The served cell (--serve) additionally exposes this engine live: the
  // bridge schedules its publish events before anything else runs.
  if (ctx.serve_bind) {
    exp::ServeHooks hooks;
    hooks.engine = &engine;
    ctx.serve_bind(hooks);
  }
  sim::RunningStats tail_cov, tail_msg, tail_u;
  int e = 0;
  fleet.bind(engine, 1.0, [&](const NetworkEpoch& ne) {
    if (e >= kEpochs / 2) {  // judge converged behaviour
      tail_cov.add(ne.coverage);
      tail_msg.add(ne.messages);
      tail_u.add(ne.global_utility);
    }
    if (metrics != nullptr) {
      metrics->set(g_cov, ne.coverage);
      metrics->set(g_msg, ne.messages);
      metrics->set(g_util, ne.global_utility);
      metrics->snapshot(static_cast<double>(e));
    }
    ++e;
  });
  engine.run_until(kEpochs * static_cast<double>(p.epoch_steps));
  exp::Metrics m{{"coverage", tail_cov.mean()},
                 {"msgs_per_epoch", tail_msg.mean()},
                 {"global_utility", tail_u.mean()},
                 {"diversity", fleet.diversity()}};
  // Cameras 0-3 form the dense cluster; 4-11 the sparse ring.
  std::size_t cluster_hist[kStrategies] = {};
  std::size_t ring_hist[kStrategies] = {};
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    auto* hist = c < 4 ? cluster_hist : ring_hist;
    ++hist[static_cast<std::size_t>(net.strategy(c))];
  }
  for (std::size_t s = 0; s < kStrategies; ++s) {
    m.emplace_back(std::string("cluster.") + strategy_label(s),
                   static_cast<double>(cluster_hist[s]));
    m.emplace_back(std::string("ring.") + strategy_label(s),
                   static_cast<double>(ring_hist[s]));
  }
  return {std::move(m)};
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e2_svc_heterogeneity", argc, argv);
  std::cout << "E2: homogeneous strategies vs per-camera learning, "
            << kEpochs << " epochs x 25 steps, " << h.seeds_for(kSeeds).size()
            << " seeds. Cameras 0-3 cluster at the hotspot; 4-11 are an "
               "isolated ring.\n\n";

  struct Config {
    std::string name;
    CameraFleet::Mode mode;
    Strategy fixed;
  };
  const std::vector<Config> configs{
      {"homogeneous broadcast", CameraFleet::Mode::Homogeneous,
       Strategy::Broadcast},
      {"homogeneous smooth", CameraFleet::Mode::Homogeneous,
       Strategy::Smooth},
      {"homogeneous passive", CameraFleet::Mode::Homogeneous,
       Strategy::Passive},
      {"self-aware (learned)", CameraFleet::Mode::Learning,
       Strategy::Broadcast},
  };

  exp::Grid g;
  g.name = "e2";
  for (const auto& cfg : configs) g.variants.push_back(cfg.name);
  g.seeds = kSeeds;
  g.task = [&configs](const exp::TaskContext& ctx) {
    const auto& cfg = configs[ctx.variant];
    return run(cfg.mode, cfg.fixed, ctx);
  };
  const auto res = h.run(std::move(g));

  sim::Table t1("E2.1  global outcomes (tail half of run, mean over seeds)",
                {"configuration", "coverage", "msgs/epoch", "global_utility",
                 "diversity"});
  for (std::size_t v = 0; v < res.variants.size(); ++v) {
    t1.add_row({res.variants[v], res.mean(v, "coverage"),
                res.mean(v, "msgs_per_epoch"), res.mean(v, "global_utility"),
                res.mean(v, "diversity")});
  }
  t1.print(std::cout);

  // Strategy histograms of the learned configuration, summed over seeds.
  const std::size_t learned = res.variants.size() - 1;
  sim::Table t2(
      "E2.2  learned strategy counts by camera situation (all seeds)",
      {"group", "broadcast", "smooth", "passive"});
  for (const auto& [row, prefix] :
       {std::pair{"cluster (dense)", "cluster."},
        std::pair{"ring (isolated)", "ring."}}) {
    std::vector<sim::Cell> cells{std::string(row)};
    for (const char* s : {"broadcast", "smooth", "passive"}) {
      cells.push_back(static_cast<std::int64_t>(
          res.sum(learned, std::string(prefix) + s)));
    }
    t2.add_row(std::move(cells));
  }
  t2.print(std::cout);
  return h.finish();
}
