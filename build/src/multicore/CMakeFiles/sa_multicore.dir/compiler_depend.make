# Empty compiler generated dependencies file for sa_multicore.
# This may be replaced when dependencies are built.
