// JSONL sink for the sa::sim telemetry bus.
//
// Streams one compact JSON object per event to an ostream, using the same
// deterministic number formatting as the BENCH_<exp>.json emitters, so two
// runs with the same seeds produce byte-identical logs. Lives in sa::exp
// (not sa::sim) because it reuses the exp::Json writer — sim stays at the
// bottom of the layering.
#pragma once

#include <ostream>

#include "sim/telemetry.hpp"

namespace sa::exp {

class JsonlSink : public sim::TelemetrySink {
 public:
  /// Writes events to `os` as lines of the form
  ///   {"t":12.5,"category":"failure","subject":"cpn.network",
  ///    "value":3.0,"detail":"ttl"}
  /// ("detail" is omitted when empty). Category/subject names are resolved
  /// through `bus`, which must outlive the sink.
  JsonlSink(std::ostream& os, const sim::TelemetryBus& bus)
      : os_(os), bus_(bus) {}

  void on_event(const sim::TelemetryEvent& ev) override;

  /// Events written so far.
  [[nodiscard]] std::size_t written() const noexcept { return written_; }

 private:
  std::ostream& os_;
  const sim::TelemetryBus& bus_;
  std::size_t written_ = 0;
};

}  // namespace sa::exp
