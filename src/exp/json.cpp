#include "exp/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sa::exp {
namespace {

void dump_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

Json& Json::operator[](std::string_view key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) {
    throw std::logic_error("Json::operator[]: not an object");
  }
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(std::string(key), Json());
  return object_.back().second;
}

const Json& Json::at(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  throw std::out_of_range("Json::at: missing key " + std::string(key));
}

bool Json::contains(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

Json& Json::push_back(Json v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) {
    throw std::logic_error("Json::push_back: not an array");
  }
  array_.push_back(std::move(v));
  return array_.back();
}

std::size_t Json::size() const noexcept {
  switch (kind_) {
    case Kind::Array: return array_.size();
    case Kind::Object: return object_.size();
    default: return 0;
  }
}

std::string Json::format_double(double d) {
  if (!std::isfinite(d)) return "null";
  // Shortest representation that round-trips exactly: try increasing
  // precision until strtod gives the same bits back. Deterministic for a
  // given value, so identical runs serialise identically.
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  std::string s(buf);
  // Keep doubles visually distinct from ints ("1" -> "1.0").
  if (s.find_first_of(".eEnN") == std::string::npos) s += ".0";
  return s;
}

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ')
             : std::string();
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";

  switch (kind_) {
    case Kind::Null: os << "null"; break;
    case Kind::Bool: os << (bool_ ? "true" : "false"); break;
    case Kind::Int: os << int_; break;
    case Kind::Double: os << format_double(double_); break;
    case Kind::String: dump_escaped(os, string_); break;
    case Kind::Array: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[' << nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        os << pad;
        array_[i].dump_impl(os, indent, depth + 1);
        if (i + 1 < array_.size()) os << ',';
        os << nl;
      }
      os << close_pad << ']';
      break;
    }
    case Kind::Object: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{' << nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        os << pad;
        dump_escaped(os, object_[i].first);
        os << colon;
        object_[i].second.dump_impl(os, indent, depth + 1);
        if (i + 1 < object_.size()) os << ',';
        os << nl;
      }
      os << close_pad << '}';
      break;
    }
  }
}

void Json::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

}  // namespace sa::exp
