// Structured event tracing.
//
// Substrates and awareness processes emit timestamped, categorised trace
// records; tests and the self-explanation subsystem query them. Recording
// is O(1) per record and can be disabled wholesale (the null recorder) so
// that hot paths pay only a branch.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sa::sim {

/// One trace record.
struct TraceRecord {
  double t = 0.0;           ///< Simulated time of the event.
  std::string category;     ///< E.g. "decision", "observation", "failure".
  std::string subject;      ///< Component that emitted the record.
  std::string detail;       ///< Human-readable payload.
};

/// Append-only trace buffer with simple query helpers.
class Trace {
 public:
  /// When disabled, record() is a no-op (overhead measurement in E8).
  explicit Trace(bool enabled = true) : enabled_(enabled) {}

  void record(double t, std::string category, std::string subject,
              std::string detail) {
    if (!enabled_) return;
    records_.push_back(
        {t, std::move(category), std::move(subject), std::move(detail)});
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool e) noexcept { enabled_ = e; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const TraceRecord& at(std::size_t i) const {
    return records_.at(i);
  }
  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }

  /// All records with the given category, in emission order.
  [[nodiscard]] std::vector<const TraceRecord*> by_category(
      const std::string& category) const {
    std::vector<const TraceRecord*> out;
    for (const auto& r : records_) {
      if (r.category == category) out.push_back(&r);
    }
    return out;
  }
  /// All records emitted by the given subject, in emission order.
  [[nodiscard]] std::vector<const TraceRecord*> by_subject(
      const std::string& subject) const {
    std::vector<const TraceRecord*> out;
    for (const auto& r : records_) {
      if (r.subject == subject) out.push_back(&r);
    }
    return out;
  }
  void clear() { records_.clear(); }

 private:
  bool enabled_;
  std::vector<TraceRecord> records_;
};

}  // namespace sa::sim
