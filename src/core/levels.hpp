// Levels of computational self-awareness.
//
// Translation of Neisser's levels of human self-knowledge into capability
// classes for computing systems, following the paper (Section IV, concept 2)
// and Faniyi et al. [44]:
//
//   Stimulus     — awareness of (and reaction to) stimuli/events;
//   Interaction  — awareness of interactions with other entities and the
//                  environment (Neisser's interpersonal self);
//   Time         — awareness of history and of likely futures (Neisser's
//                  extended self);
//   Goal         — awareness of one's own goals, their state and trade-offs
//                  (Neisser's private/conceptual self);
//   Meta         — meta-self-awareness: awareness of one's own awareness
//                  processes and how well they work (Morin [42]).
//
// A system need not be "full-stack": the paper notes minimal configurations
// are sometimes appropriate; the LevelSet records what is enabled, and
// experiment E5 ablates across it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sa::core {

enum class Level : std::uint8_t {
  Stimulus = 0,
  Interaction = 1,
  Time = 2,
  Goal = 3,
  Meta = 4,
};

[[nodiscard]] constexpr const char* level_name(Level l) noexcept {
  switch (l) {
    case Level::Stimulus: return "stimulus";
    case Level::Interaction: return "interaction";
    case Level::Time: return "time";
    case Level::Goal: return "goal";
    case Level::Meta: return "meta";
  }
  return "?";
}

/// A set of enabled awareness levels (small bitmask).
class LevelSet {
 public:
  constexpr LevelSet() = default;
  constexpr LevelSet(std::initializer_list<Level> levels) {
    for (Level l : levels) set(l);
  }

  constexpr LevelSet& set(Level l) noexcept {
    bits_ |= bit(l);
    return *this;
  }
  constexpr LevelSet& unset(Level l) noexcept {
    bits_ &= static_cast<std::uint8_t>(~bit(l));
    return *this;
  }
  [[nodiscard]] constexpr bool has(Level l) const noexcept {
    return (bits_ & bit(l)) != 0;
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] constexpr std::size_t count() const noexcept {
    std::size_t n = 0;
    for (std::uint8_t b = bits_; b; b >>= 1) n += b & 1u;
    return n;
  }
  [[nodiscard]] constexpr bool operator==(const LevelSet&) const = default;

  /// All five levels.
  [[nodiscard]] static constexpr LevelSet full() noexcept {
    return LevelSet{Level::Stimulus, Level::Interaction, Level::Time,
                    Level::Goal, Level::Meta};
  }
  /// Stimulus only — the minimal, purely reactive configuration.
  [[nodiscard]] static constexpr LevelSet minimal() noexcept {
    return LevelSet{Level::Stimulus};
  }

  [[nodiscard]] std::string to_string() const {
    std::string out;
    for (Level l : {Level::Stimulus, Level::Interaction, Level::Time,
                    Level::Goal, Level::Meta}) {
      if (has(l)) {
        if (!out.empty()) out += '+';
        out += level_name(l);
      }
    }
    return out.empty() ? "none" : out;
  }

 private:
  static constexpr std::uint8_t bit(Level l) noexcept {
    return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(l));
  }
  std::uint8_t bits_ = 0;
};

}  // namespace sa::core
