#include "exp/ckpt_store.hpp"

#include <utility>

namespace sa::exp {
namespace {

void save_cell(const TaskResult& cell, ckpt::Buffer& out) {
  out.u64(static_cast<std::uint64_t>(cell.variant));
  out.u64(cell.seed);
  out.u64(static_cast<std::uint64_t>(cell.metrics.size()));
  for (const auto& [name, value] : cell.metrics) {
    out.str(name);
    out.f64(value);
  }
  out.str(cell.note);
  out.str(cell.error);
  out.f64(cell.wall_s);
}

[[nodiscard]] bool load_cell(ckpt::Cursor& in, TaskResult& out) {
  std::uint64_t variant = 0;
  std::uint64_t metric_count = 0;
  if (!in.u64(variant) || !in.u64(out.seed) || !in.u64(metric_count)) {
    return false;
  }
  out.variant = static_cast<std::size_t>(variant);
  out.metrics.clear();
  out.metrics.reserve(static_cast<std::size_t>(metric_count));
  for (std::uint64_t i = 0; i < metric_count; ++i) {
    std::string name;
    double value = 0.0;
    if (!in.str(name) || !in.f64(value)) return false;
    out.metrics.emplace_back(std::move(name), value);
  }
  return in.str(out.note) && in.str(out.error) && in.f64(out.wall_s);
}

}  // namespace

std::size_t CheckpointStore::add_grid(std::string name,
                                      std::vector<std::string> variants,
                                      std::vector<std::uint64_t> seeds) {
  const std::scoped_lock lk(mu_);
  grids_.push_back(
      Shape{std::move(name), std::move(variants), std::move(seeds), {}});
  return grids_.size() - 1;
}

void CheckpointStore::record(std::size_t grid, TaskResult cell) {
  const std::scoped_lock lk(mu_);
  if (grid >= grids_.size()) return;
  for (TaskResult& existing : grids_[grid].cells) {
    if (existing.variant == cell.variant && existing.seed == cell.seed) {
      existing = std::move(cell);
      return;
    }
  }
  grids_[grid].cells.push_back(std::move(cell));
}

void CheckpointStore::set_journal(std::vector<ckpt::JournalEntry> entries) {
  const std::scoped_lock lk(mu_);
  journal_ = std::move(entries);
}

void CheckpointStore::set_interrupted(bool on) {
  const std::scoped_lock lk(mu_);
  interrupted_ = on;
}

std::size_t CheckpointStore::grids() const {
  const std::scoped_lock lk(mu_);
  return grids_.size();
}

std::size_t CheckpointStore::completed() const {
  const std::scoped_lock lk(mu_);
  std::size_t n = 0;
  for (const Shape& g : grids_) n += g.cells.size();
  return n;
}

ckpt::Status CheckpointStore::save(const std::string& path) const {
  ckpt::Writer writer;
  {
    const std::scoped_lock lk(mu_);
    ckpt::Buffer harness;
    harness.str(experiment_);
    harness.boolean(interrupted_);
    harness.u64(static_cast<std::uint64_t>(grids_.size()));
    writer.section("harness", harness);

    ckpt::Buffer journal;
    ckpt::save_journal(journal_, journal);
    writer.section("journal", journal);

    for (std::size_t i = 0; i < grids_.size(); ++i) {
      const Shape& g = grids_[i];
      ckpt::Buffer b;
      b.str(g.name);
      b.u64(static_cast<std::uint64_t>(g.variants.size()));
      for (const std::string& v : g.variants) b.str(v);
      b.u64(static_cast<std::uint64_t>(g.seeds.size()));
      for (const std::uint64_t s : g.seeds) b.u64(s);
      b.u64(static_cast<std::uint64_t>(g.cells.size()));
      for (const TaskResult& cell : g.cells) save_cell(cell, b);
      writer.section("grid." + std::to_string(i), b);
    }
  }
  return ckpt::write_file_atomic(path, writer.finish());
}

ckpt::Status CheckpointStore::load(const std::string& path,
                                   std::string* used_path,
                                   std::string* fallback_error) {
  ckpt::Reader reader;
  if (ckpt::Status st =
          ckpt::read_with_fallback(path, reader, used_path, fallback_error);
      !st.ok()) {
    return st;
  }

  std::string experiment;
  bool interrupted = false;
  std::vector<Shape> grids;
  std::vector<ckpt::JournalEntry> journal;

  ckpt::Cursor harness;
  if (ckpt::Status st = reader.open("harness", harness); !st.ok()) return st;
  std::uint64_t grid_count = 0;
  if (!harness.str(experiment) || !harness.boolean(interrupted) ||
      !harness.u64(grid_count)) {
    return ckpt::Status::error(ckpt::Errc::kMalformed,
                               "harness section too short");
  }
  if (ckpt::Status st = harness.finish("harness section"); !st.ok()) return st;

  ckpt::Cursor jc;
  if (ckpt::Status st = reader.open("journal", jc); !st.ok()) return st;
  if (ckpt::Status st = ckpt::load_journal(jc, journal); !st.ok()) return st;

  grids.reserve(static_cast<std::size_t>(grid_count));
  for (std::uint64_t i = 0; i < grid_count; ++i) {
    const std::string section = "grid." + std::to_string(i);
    ckpt::Cursor c;
    if (ckpt::Status st = reader.open(section, c); !st.ok()) return st;
    Shape g;
    std::uint64_t variant_count = 0;
    std::uint64_t seed_count = 0;
    std::uint64_t cell_count = 0;
    if (!c.str(g.name) || !c.u64(variant_count)) {
      return ckpt::Status::error(ckpt::Errc::kMalformed,
                                 section + " too short");
    }
    g.variants.reserve(static_cast<std::size_t>(variant_count));
    for (std::uint64_t v = 0; v < variant_count; ++v) {
      std::string name;
      if (!c.str(name)) {
        return ckpt::Status::error(ckpt::Errc::kMalformed,
                                   section + ": truncated variant list");
      }
      g.variants.push_back(std::move(name));
    }
    if (!c.u64(seed_count)) {
      return ckpt::Status::error(ckpt::Errc::kMalformed,
                                 section + ": truncated seed list");
    }
    g.seeds.reserve(static_cast<std::size_t>(seed_count));
    for (std::uint64_t s = 0; s < seed_count; ++s) {
      std::uint64_t seed = 0;
      if (!c.u64(seed)) {
        return ckpt::Status::error(ckpt::Errc::kMalformed,
                                   section + ": truncated seed list");
      }
      g.seeds.push_back(seed);
    }
    if (!c.u64(cell_count)) {
      return ckpt::Status::error(ckpt::Errc::kMalformed,
                                 section + ": truncated cell list");
    }
    for (std::uint64_t n = 0; n < cell_count; ++n) {
      TaskResult cell;
      if (!load_cell(c, cell)) {
        return ckpt::Status::error(ckpt::Errc::kMalformed,
                                   section + ": truncated cell");
      }
      if (cell.variant >= g.variants.size()) {
        return ckpt::Status::error(
            ckpt::Errc::kMalformed,
            section + ": cell variant index out of range");
      }
      g.cells.push_back(std::move(cell));
    }
    if (ckpt::Status st = c.finish(section); !st.ok()) return st;
    grids.push_back(std::move(g));
  }

  const std::scoped_lock lk(mu_);
  experiment_ = std::move(experiment);
  interrupted_ = interrupted;
  grids_ = std::move(grids);
  journal_ = std::move(journal);
  return {};
}

std::string CheckpointStore::match(std::size_t grid, const Grid& g) const {
  const std::scoped_lock lk(mu_);
  if (grid >= grids_.size()) return {};  // run never reached this grid
  const Shape& stored = grids_[grid];
  if (stored.name != g.name) {
    return "grid " + std::to_string(grid) + " is '" + stored.name +
           "' in the checkpoint but '" + g.name + "' in this run";
  }
  if (stored.variants != g.variants) {
    return "grid '" + g.name + "' has a different variant list than the "
           "checkpoint";
  }
  if (stored.seeds != g.seeds) {
    return "grid '" + g.name + "' has a different seed list than the "
           "checkpoint (did --seeds or --fault-plan change?)";
  }
  return {};
}

const TaskResult* CheckpointStore::find(std::size_t grid, std::size_t variant,
                                        std::uint64_t seed) const {
  const std::scoped_lock lk(mu_);
  if (grid >= grids_.size()) return nullptr;
  for (const TaskResult& cell : grids_[grid].cells) {
    if (cell.variant == variant && cell.seed == seed) return &cell;
  }
  return nullptr;
}

std::vector<ckpt::JournalEntry> CheckpointStore::journal() const {
  const std::scoped_lock lk(mu_);
  return journal_;
}

std::vector<GridResult> CheckpointStore::grid_results() const {
  const std::scoped_lock lk(mu_);
  std::vector<GridResult> out;
  out.reserve(grids_.size());
  for (const Shape& g : grids_) {
    GridResult r;
    r.experiment = experiment_;
    r.name = g.name;
    r.variants = g.variants;
    r.seeds = g.seeds;
    r.tasks.resize(g.variants.size() * g.seeds.size());
    for (std::size_t v = 0; v < g.variants.size(); ++v) {
      for (std::size_t s = 0; s < g.seeds.size(); ++s) {
        TaskResult& slot = r.tasks[v * g.seeds.size() + s];
        slot.variant = v;
        slot.seed = g.seeds[s];
        slot.error = "interrupted before completion";
      }
    }
    for (const TaskResult& cell : g.cells) {
      for (std::size_t s = 0; s < g.seeds.size(); ++s) {
        if (g.seeds[s] == cell.seed && cell.variant < g.variants.size()) {
          r.tasks[cell.variant * g.seeds.size() + s] = cell;
          break;
        }
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace sa::exp
