# Empty compiler generated dependencies file for bench_e2_svc_heterogeneity.
# This may be replaced when dependencies are built.
