#include "fault/fault.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace sa::fault {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};
constexpr KindName kKindNames[kFaultKinds] = {
    {FaultKind::SensorDropout, "sensor-dropout"},
    {FaultKind::SensorBlur, "sensor-blur"},
    {FaultKind::NodeCrash, "node-crash"},
    {FaultKind::CoreFail, "core-fail"},
    {FaultKind::FreqCap, "freq-cap"},
    {FaultKind::VmPreempt, "vm-preempt"},
    {FaultKind::LatencySpike, "latency-spike"},
    {FaultKind::LinkLoss, "link-loss"},
    {FaultKind::Partition, "partition"},
    {FaultKind::LinkReorder, "link-reorder"},
    {FaultKind::ExchangeDrop, "exchange-drop"},
};

double parse_number(std::string_view text, std::string_view what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(text), &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan: bad number '" +
                                std::string(text) + "' for " +
                                std::string(what));
  }
}

/// Seeds are full-range 64-bit: routing them through a double would
/// silently round above 2^53 and break seed round-tripping.
std::uint64_t parse_seed(std::string_view text) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("fault plan: bad number '" +
                                std::string(text) + "' for seed");
  }
  return v;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (!s.empty()) {
    const std::size_t pos = s.find(sep);
    out.push_back(s.substr(0, pos));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

/// Trims the formatted double the way the canonical spec wants ("0.05",
/// not "0.050000"); plans are config strings, not data files.
std::string format(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

// Checkpoint payload codec for pending fault-restore events: the Record
// fields a rebinder cannot rederive from its chain/surface, packed
// little-endian (t, unit, magnitude, until = 32 bytes).
void pack64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(b, 8);
}

std::uint64_t unpack64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

std::uint64_t dbits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double bitsd(std::uint64_t b) {
  double v = 0.0;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

std::string encode_end_payload(double onset_t, std::size_t unit,
                               double magnitude, double until) {
  std::string out;
  out.reserve(32);
  pack64(out, dbits(onset_t));
  pack64(out, static_cast<std::uint64_t>(unit));
  pack64(out, dbits(magnitude));
  pack64(out, dbits(until));
  return out;
}

bool decode_end_payload(std::string_view payload, double& onset_t,
                        std::size_t& unit, double& magnitude, double& until) {
  if (payload.size() != 32) return false;
  onset_t = bitsd(unpack64(payload.data()));
  unit = static_cast<std::size_t>(unpack64(payload.data() + 8));
  magnitude = bitsd(unpack64(payload.data() + 16));
  until = bitsd(unpack64(payload.data() + 24));
  return true;
}

}  // namespace

const char* kind_name(FaultKind k) noexcept {
  for (const auto& kn : kKindNames) {
    if (kn.kind == k) return kn.name;
  }
  return "?";
}

FaultKind kind_from(std::string_view name) {
  for (const auto& kn : kKindNames) {
    if (name == kn.name) return kn.kind;
  }
  throw std::invalid_argument("fault plan: unknown fault kind '" +
                              std::string(name) + "'");
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  for (std::string_view item : split(spec, ';')) {
    if (item.empty()) continue;
    // "seed=N" stands alone; everything else is "kind:key=value,...".
    if (item.rfind("seed=", 0) == 0) {
      plan.seed = parse_seed(item.substr(5));
      continue;
    }
    const std::size_t colon = item.find(':');
    FaultProcess proc;
    proc.kind = kind_from(item.substr(0, colon));
    if (colon != std::string_view::npos) {
      for (std::string_view kv : split(item.substr(colon + 1), ',')) {
        if (kv.empty()) continue;
        const std::size_t eq = kv.find('=');
        if (eq == std::string_view::npos) {
          throw std::invalid_argument("fault plan: expected key=value, got '" +
                                      std::string(kv) + "'");
        }
        const std::string_view key = kv.substr(0, eq);
        const std::string_view val = kv.substr(eq + 1);
        if (key == "rate") {
          proc.rate = parse_number(val, key);
        } else if (key == "burst") {
          proc.burstiness = std::max(1.0, parse_number(val, key));
        } else if (key == "dur") {
          proc.duration_mean = parse_number(val, key);
        } else if (key == "mag") {
          proc.magnitude = parse_number(val, key);
        } else if (key == "start") {
          proc.start = parse_number(val, key);
        } else if (key == "end") {
          proc.end = parse_number(val, key);
        } else {
          throw std::invalid_argument("fault plan: unknown key '" +
                                      std::string(key) + "'");
        }
      }
    }
    if (proc.rate <= 0.0) {
      throw std::invalid_argument("fault plan: rate must be > 0");
    }
    plan.processes.push_back(proc);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  if (seed != 0) out += "seed=" + std::to_string(seed);
  for (const FaultProcess& p : processes) {
    if (!out.empty()) out += ';';
    out += kind_name(p.kind);
    out += ":rate=" + format(p.rate);
    if (p.burstiness != 1.0) out += ",burst=" + format(p.burstiness);
    if (p.duration_mean != 10.0) out += ",dur=" + format(p.duration_mean);
    if (p.magnitude != 1.0) out += ",mag=" + format(p.magnitude);
    if (p.start != 0.0) out += ",start=" + format(p.start);
    if (std::isfinite(p.end)) out += ",end=" + format(p.end);
  }
  return out;
}

/// Per-(process, surface) event-chain state. The Rng is forked from the
/// plan seed and the chain indices only, so two chains never share a
/// stream and adding a surface cannot reshuffle another chain's draws.
struct Injector::Stream {
  FaultProcess proc;
  std::size_t process = 0;  ///< index into the bound plan's processes
  std::size_t surface = 0;  ///< index into surfaces_
  std::size_t chain = 0;    ///< index into streams_ (checkpoint tag basis)
  sim::Rng rng;
  std::size_t burst_left = 0;  ///< faults remaining in the current burst

  /// Gap to the next onset: exponential inter-burst spacing at rate
  /// rate/burstiness, then round(burstiness) faults clustered within
  /// roughly one fault duration.
  double next_gap() {
    if (burst_left > 0) {
      --burst_left;
      const double cluster = proc.duration_mean > 0.0
                                 ? 0.5 * proc.duration_mean
                                 : 1.0 / (16.0 * proc.rate);
      return rng.exponential(cluster);
    }
    const auto burst =
        static_cast<std::size_t>(std::llround(proc.burstiness));
    burst_left = burst > 1 ? burst - 1 : 0;
    return rng.exponential(proc.burstiness / proc.rate);
  }
};

void Injector::add_surface(Surface s) { surfaces_.push_back(std::move(s)); }

void Injector::set_telemetry(sim::TelemetryBus* bus) {
  telemetry_ = bus;
  if (telemetry_) subject_ = telemetry_->intern_subject("fault.injector");
}

std::size_t Injector::bind(sim::Engine& engine, const FaultPlan& plan) {
  std::size_t chains = 0;
  for (std::size_t pi = 0; pi < plan.processes.size(); ++pi) {
    const FaultProcess& proc = plan.processes[pi];
    bool matched = false;
    for (std::size_t si = 0; si < surfaces_.size(); ++si) {
      if (surfaces_[si].kind != proc.kind) continue;
      matched = true;
      auto st = std::make_shared<Stream>();
      st->proc = proc;
      st->process = pi;
      st->surface = si;
      st->chain = streams_.size();
      // splitmix64-finalised stream id: plan seed x chain coordinates.
      st->rng = sim::Rng(sim::mix64(plan.seed ^ 0xFA01'7AB1EULL) ^
                         sim::mix64((pi << 20) | si));
      streams_.push_back(st);
      const double base = std::max(proc.start, engine.now());
      // In engine restore mode this registers the chain's callable without
      // arming it (the checkpointed timeline decides whether it pends);
      // the gap drawn for the unused timestamp is undone when
      // import_state() overwrites the chain's RNG.
      engine.at_tagged(sim::event_tag("sa.fault.arm", st->chain),
                       base + st->next_gap(),
                       [this, &engine, st] { fire(engine, st); },
                       kOrderFaults);
      if (engine.restoring()) {
        engine.register_rebinder(
            sim::event_tag("sa.fault.end", st->chain),
            [this, &engine, st](std::string_view payload) {
              return rebind_end(engine, st->surface, st->proc.kind, payload);
            });
      }
      ++chains;
    }
    if (!matched) ++unmatched_;
  }
  if (engine.restoring()) {
    // One-shot operator injections (inject_now) tag their restore events
    // per surface, independent of any plan chain.
    for (std::size_t si = 0; si < surfaces_.size(); ++si) {
      engine.register_rebinder(
          sim::event_tag("sa.fault.injend", si),
          [this, &engine, si](std::string_view payload) {
            return rebind_end(engine, si, surfaces_[si].kind, payload);
          });
    }
  }
  return chains;
}

/// Reconstructs a pending fault-restore action from its checkpoint
/// payload — behaviorally identical to the closure fire()/inject_now()
/// scheduled in the original process.
sim::Engine::Action Injector::rebind_end(sim::Engine& engine, std::size_t si,
                                         FaultKind kind,
                                         std::string_view payload) {
  Record rec;
  rec.kind = kind;
  rec.surface = surfaces_[si].name;
  rec.begin = true;
  if (!decode_end_payload(payload, rec.t, rec.unit, rec.magnitude,
                          rec.until)) {
    return [] {};  // attestation will flag the divergence
  }
  return [this, &engine, si, rec] {
    surfaces_[si].end(rec.unit, rec.magnitude);
    ++restored_;
    --active_;
    Record done = rec;
    done.t = engine.now();
    done.begin = false;
    push_log(done);
    notify(done);
  };
}

void Injector::arm(sim::Engine& engine, const std::shared_ptr<Stream>& st) {
  engine.in_tagged(sim::event_tag("sa.fault.arm", st->chain), st->next_gap(),
                   [this, &engine, st] { fire(engine, st); }, kOrderFaults);
}

void Injector::fire(sim::Engine& engine, const std::shared_ptr<Stream>& st) {
  const double t = engine.now();
  if (t > st->proc.end) return;  // process window closed: chain ends
  Surface& s = surfaces_[st->surface];

  Record rec;
  rec.t = t;
  rec.kind = st->proc.kind;
  rec.surface = s.name;
  rec.unit =
      s.units > 1 ? static_cast<std::size_t>(st->rng.below(s.units)) : 0;
  rec.magnitude = st->proc.magnitude;
  const bool transient = st->proc.duration_mean > 0.0 && s.end != nullptr;
  if (transient) {
    rec.until = t + st->rng.exponential(st->proc.duration_mean);
  }

  s.begin(rec.unit, rec.magnitude);
  ++injected_;
  ++active_;
  last_onset_ = t;
  push_log(rec);
  notify(rec);
  if (telemetry_ != nullptr && telemetry_->enabled()) {
    telemetry_->record(t, sim::TelemetryBus::kFailure, subject_,
                       rec.magnitude,
                       std::string(kind_name(rec.kind)) + " " + rec.surface +
                           "#" + std::to_string(rec.unit));
  }

  if (transient) {
    engine.at_tagged(
        sim::event_tag("sa.fault.end", st->chain), rec.until,
        [this, &engine, st, rec] {
          surfaces_[st->surface].end(rec.unit, rec.magnitude);
          ++restored_;
          --active_;
          Record done = rec;
          done.t = engine.now();
          done.begin = false;
          push_log(done);
          notify(done);
        },
        kOrderFaults,
        encode_end_payload(rec.t, rec.unit, rec.magnitude, rec.until));
  }
  arm(engine, st);
}

bool Injector::inject_now(sim::Engine& engine, FaultKind kind,
                          std::size_t unit, double magnitude,
                          double duration) {
  for (std::size_t si = 0; si < surfaces_.size(); ++si) {
    Surface& s = surfaces_[si];
    if (s.kind != kind) continue;
    const double t = engine.now();
    Record rec;
    rec.t = t;
    rec.kind = kind;
    rec.surface = s.name;
    rec.unit = s.units > 0 ? unit % s.units : 0;
    rec.magnitude = magnitude;
    const bool transient = duration > 0.0 && s.end != nullptr;
    if (transient) rec.until = t + duration;

    s.begin(rec.unit, rec.magnitude);
    ++injected_;
    ++active_;
    last_onset_ = t;
    push_log(rec);
    notify(rec);
    if (telemetry_ != nullptr && telemetry_->enabled()) {
      telemetry_->record(t, sim::TelemetryBus::kFailure, subject_,
                         rec.magnitude,
                         std::string(kind_name(rec.kind)) + " " + rec.surface +
                             "#" + std::to_string(rec.unit));
    }
    if (transient) {
      engine.at_tagged(
          sim::event_tag("sa.fault.injend", si), rec.until,
          [this, &engine, si, rec] {
            surfaces_[si].end(rec.unit, rec.magnitude);
            ++restored_;
            --active_;
            Record done = rec;
            done.t = engine.now();
            done.begin = false;
            push_log(done);
            notify(done);
          },
          kOrderFaults,
          encode_end_payload(rec.t, rec.unit, rec.magnitude, rec.until));
    }
    return true;
  }
  return false;
}

void Injector::push_log(const Record& rec) {
  if (log_capacity_ == 0) return;
  if (log_.size() < log_capacity_) {
    log_.push_back(rec);
  } else {
    log_[log_head_] = rec;
    log_head_ = (log_head_ + 1) % log_capacity_;
  }
}

void Injector::notify(const Record& rec) {
  for (const Listener& l : listeners_) l(rec, active_);
}

std::vector<Injector::Record> Injector::records() const {
  std::vector<Record> out;
  out.reserve(log_.size());
  for (std::size_t i = 0; i < log_.size(); ++i) {
    out.push_back(log_[(log_head_ + i) % log_.size()]);
  }
  return out;
}

Injector::State Injector::export_state() const {
  State st;
  st.injected = injected_;
  st.restored = restored_;
  st.active = active_;
  st.unmatched = unmatched_;
  st.last_onset = last_onset_;
  st.log = records();
  st.streams.reserve(streams_.size());
  for (const auto& s : streams_) {
    StreamState ss;
    ss.process = s->process;
    ss.surface = s->surface;
    ss.rng = s->rng.state();
    ss.burst_left = s->burst_left;
    st.streams.push_back(ss);
  }
  return st;
}

bool Injector::import_state(const State& st, std::string* err) {
  if (st.streams.size() != streams_.size()) {
    if (err != nullptr)
      *err = "injector chain count " + std::to_string(streams_.size()) +
             " != checkpoint " + std::to_string(st.streams.size()) +
             " (plan or surfaces drifted)";
    return false;
  }
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i]->process != st.streams[i].process ||
        streams_[i]->surface != st.streams[i].surface) {
      if (err != nullptr)
        *err = "injector chain " + std::to_string(i) +
               " coordinates drifted from checkpoint";
      return false;
    }
  }
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    streams_[i]->rng.set_state(st.streams[i].rng);
    streams_[i]->burst_left = st.streams[i].burst_left;
  }
  injected_ = static_cast<std::size_t>(st.injected);
  restored_ = static_cast<std::size_t>(st.restored);
  active_ = static_cast<std::size_t>(st.active);
  unmatched_ = static_cast<std::size_t>(st.unmatched);
  last_onset_ = st.last_onset;
  log_ = st.log;
  log_head_ = 0;
  if (log_.size() > log_capacity_) {
    log_.erase(log_.begin(),
               log_.end() - static_cast<std::ptrdiff_t>(log_capacity_));
  }
  return true;
}

void Injector::set_log_capacity(std::size_t cap) {
  if (cap != log_capacity_ && !log_.empty()) {
    std::vector<Record> kept;
    const std::size_t n = std::min(cap, log_.size());
    kept.reserve(n);
    for (std::size_t i = log_.size() - n; i < log_.size(); ++i) {
      kept.push_back(log_[(log_head_ + i) % log_.size()]);
    }
    log_ = std::move(kept);
    log_head_ = 0;
  }
  log_capacity_ = cap;
}

}  // namespace sa::fault
