#include "exp/args.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using sa::exp::Options;
using sa::exp::parse_args;
using sa::exp::usage;

std::string parse(std::vector<const char*> argv, Options& out) {
  argv.insert(argv.begin(), "prog");
  return parse_args(static_cast<int>(argv.size()), argv.data(), out);
}

TEST(ArgsTest, DefaultsWhenNoFlags) {
  Options o;
  EXPECT_EQ(parse({}, o), "");
  EXPECT_EQ(o.jobs, 0u);
  EXPECT_EQ(o.seeds, 0u);
  EXPECT_TRUE(o.json.empty());
  EXPECT_FALSE(o.help);
}

TEST(ArgsTest, ParsesAllSpellings) {
  Options o;
  EXPECT_EQ(parse({"--jobs", "8", "--seeds", "5", "--json", "out.json"}, o),
            "");
  EXPECT_EQ(o.jobs, 8u);
  EXPECT_EQ(o.seeds, 5u);
  EXPECT_EQ(o.json, "out.json");

  Options eq;
  EXPECT_EQ(parse({"--jobs=2", "--seeds=7", "--json=x.json"}, eq), "");
  EXPECT_EQ(eq.jobs, 2u);
  EXPECT_EQ(eq.seeds, 7u);
  EXPECT_EQ(eq.json, "x.json");

  Options shortj;
  EXPECT_EQ(parse({"-j", "3"}, shortj), "");
  EXPECT_EQ(shortj.jobs, 3u);
}

TEST(ArgsTest, HelpFlag) {
  Options o;
  EXPECT_EQ(parse({"--help"}, o), "");
  EXPECT_TRUE(o.help);
  Options h;
  EXPECT_EQ(parse({"-h"}, h), "");
  EXPECT_TRUE(h.help);
}

TEST(ArgsTest, RejectsUnknownFlag) {
  Options o;
  EXPECT_NE(parse({"--bogus"}, o), "");
}

TEST(ArgsTest, RejectsMissingOrBadValues) {
  Options o;
  EXPECT_NE(parse({"--jobs"}, o), "");        // missing value
  EXPECT_NE(parse({"--jobs", "zero"}, o), "");  // not a number
  EXPECT_NE(parse({"--jobs", "0"}, o), "");     // out of range
  EXPECT_NE(parse({"--jobs", "99999"}, o), "");
  EXPECT_NE(parse({"--jobs", "-4"}, o), "");    // negative
  EXPECT_NE(parse({"--seeds", "0"}, o), "");
  EXPECT_NE(parse({"--seeds"}, o), "");
  EXPECT_NE(parse({"--json"}, o), "");
  EXPECT_NE(parse({"--json="}, o), "");         // empty path
}

TEST(ArgsTest, BoundaryValuesAccepted) {
  Options o;
  EXPECT_EQ(parse({"--jobs", "1", "--seeds", "1"}, o), "");
  EXPECT_EQ(o.jobs, 1u);
  Options hi;
  EXPECT_EQ(parse({"--jobs", "4096", "--seeds", "100000"}, hi), "");
  EXPECT_EQ(hi.jobs, 4096u);
  EXPECT_EQ(hi.seeds, 100000u);
}

TEST(ArgsTest, ParsesShards) {
  Options o;
  EXPECT_EQ(parse({}, o), "");
  EXPECT_EQ(o.shards, 1u);  // default: the legacy single-engine path
  EXPECT_EQ(parse({"--shards", "4"}, o), "");
  EXPECT_EQ(o.shards, 4u);
  Options eq;
  EXPECT_EQ(parse({"--shards=2"}, eq), "");
  EXPECT_EQ(eq.shards, 2u);
}

TEST(ArgsTest, RejectsBadShards) {
  Options o;
  EXPECT_NE(parse({"--shards"}, o), "");
  EXPECT_NE(parse({"--shards", "0"}, o), "");
  EXPECT_NE(parse({"--shards", "junk"}, o), "");
  EXPECT_NE(parse({"--shards", "99999"}, o), "");
}

TEST(ArgsTest, ShardsPinJobsToOne) {
  // The shard workers are the parallelism; results are --jobs-invariant,
  // so pinning costs nothing and avoids oversubscription.
  Options o;
  EXPECT_EQ(parse({"--shards", "4", "--jobs", "8"}, o), "");
  EXPECT_EQ(o.shards, 4u);
  EXPECT_EQ(o.jobs, 1u);
  Options one;
  EXPECT_EQ(parse({"--shards", "1", "--jobs", "8"}, one), "");
  EXPECT_EQ(one.jobs, 8u);  // --shards 1 leaves the grid pool alone
}

TEST(ArgsTest, ShardsRejectCheckpointAndResume) {
  Options o;
  const std::string err = parse({"--shards", "2", "--checkpoint", "c.ck"}, o);
  EXPECT_NE(err, "");
  EXPECT_NE(err.find("--shards"), std::string::npos);
  Options r;
  EXPECT_NE(parse({"--shards", "2", "--resume", "c.ck"}, r), "");
  Options legacy;
  EXPECT_EQ(parse({"--shards", "1", "--checkpoint", "c.ck"}, legacy), "");
}

TEST(ArgsTest, LaterFlagWins) {
  Options o;
  EXPECT_EQ(parse({"--jobs", "2", "--jobs", "6"}, o), "");
  EXPECT_EQ(o.jobs, 6u);
}

TEST(ArgsTest, ParsesServeFlags) {
  Options o;
  EXPECT_EQ(parse({"--serve", "9464", "--serve-linger", "2.5",
                   "--serve-bind", "0.0.0.0", "--serve-token", "s3cret"},
                  o),
            "");
  EXPECT_EQ(o.serve_port, 9464);
  EXPECT_EQ(o.serve_linger, 2.5);
  EXPECT_EQ(o.serve_bind, "0.0.0.0");
  EXPECT_EQ(o.serve_token, "s3cret");

  Options eph;
  EXPECT_EQ(parse({"--serve=0"}, eph), "");
  EXPECT_EQ(eph.serve_port, 0);  // 0 = ephemeral port, distinct from...

  Options off;
  EXPECT_EQ(parse({}, off), "");
  EXPECT_EQ(off.serve_port, -1);  // ...the not-serving default
  EXPECT_EQ(off.serve_linger, 0.0);
  EXPECT_EQ(off.serve_bind, "127.0.0.1");
  EXPECT_TRUE(off.serve_token.empty());
}

TEST(ArgsTest, RejectsBadServeValues) {
  Options o;
  EXPECT_NE(parse({"--serve"}, o), "");           // missing value
  EXPECT_NE(parse({"--serve", "port"}, o), "");   // not a number
  EXPECT_NE(parse({"--serve", "65536"}, o), "");  // above the port range
  EXPECT_NE(parse({"--serve", "-1"}, o), "");
  EXPECT_NE(parse({"--serve-bind", ""}, o), "");   // empty address
  EXPECT_NE(parse({"--serve-token", ""}, o), "");  // empty token
  EXPECT_NE(parse({"--serve-linger", "-2"}, o), "");
  EXPECT_NE(parse({"--serve-linger", "90000"}, o), "");  // > one day
  EXPECT_NE(parse({"--serve-linger", "soon"}, o), "");
}

TEST(ArgsTest, UsageMentionsEveryFlag) {
  const std::string u = usage("bench_x");
  EXPECT_NE(u.find("bench_x"), std::string::npos);
  EXPECT_NE(u.find("--jobs"), std::string::npos);
  EXPECT_NE(u.find("--seeds"), std::string::npos);
  EXPECT_NE(u.find("--json"), std::string::npos);
  EXPECT_NE(u.find("--serve"), std::string::npos);
  EXPECT_NE(u.find("--serve-bind"), std::string::npos);
  EXPECT_NE(u.find("--serve-token"), std::string::npos);
  EXPECT_NE(u.find("--serve-linger"), std::string::npos);
  EXPECT_NE(u.find("--help"), std::string::npos);
}

}  // namespace
