#include "core/attention.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "sim/rng.hpp"

namespace sa::core {
namespace {

using Strategy = AttentionManager::Strategy;

class AttentionBudgetTest : public ::testing::TestWithParam<Strategy> {};

/// Property: every budgeted strategy returns at most `budget` distinct
/// registered signals per step.
TEST_P(AttentionBudgetTest, RespectsBudget) {
  AttentionManager am(GetParam(), 3);
  for (int i = 0; i < 8; ++i) am.register_signal("s" + std::to_string(i));
  sim::Rng rng(1);
  for (int step = 0; step < 50; ++step) {
    const auto chosen = am.select(rng);
    EXPECT_LE(chosen.size(), 3u);
    std::set<std::string> uniq(chosen.begin(), chosen.end());
    EXPECT_EQ(uniq.size(), chosen.size()) << "duplicate selections";
    for (const auto& name : chosen) {
      EXPECT_EQ(name.rfind("s", 0), 0u);
      am.feed(name, 1.0);
    }
  }
}

/// Property: no signal is starved forever. Round-robin and adaptive
/// guarantee this deterministically; random gives probabilistic coverage,
/// which the fixed seed and horizon make effectively certain: each signal
/// is drawn with p = budget/signals = 1/3 per step, so the chance any of
/// the 6 is missed in 140 steps is at most 6 * (2/3)^140 < 1e-23.
TEST_P(AttentionBudgetTest, EverySignalEventuallySampled) {
  AttentionManager am(GetParam(), 2);
  for (int i = 0; i < 6; ++i) am.register_signal("s" + std::to_string(i));
  sim::Rng rng(2);
  std::map<std::string, int> sampled;
  for (int step = 0; step < 140; ++step) {
    for (const auto& name : am.select(rng)) {
      ++sampled[name];
      am.feed(name, 0.0);
    }
  }
  EXPECT_EQ(sampled.size(), 6u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, AttentionBudgetTest,
                         ::testing::Values(Strategy::RoundRobin,
                                           Strategy::Random,
                                           Strategy::Adaptive),
                         [](const auto& info) {
                           switch (info.param) {
                             case Strategy::All: return "all";
                             case Strategy::RoundRobin: return "rr";
                             case Strategy::Random: return "random";
                             case Strategy::Adaptive: return "adaptive";
                           }
                           return "?";
                         });

TEST(AttentionManager, AllIgnoresBudget) {
  AttentionManager am(Strategy::All, 1);
  am.register_signal("a");
  am.register_signal("b");
  sim::Rng rng(3);
  EXPECT_EQ(am.select(rng).size(), 2u);
}

TEST(AttentionManager, EmptyRegistryYieldsNothing) {
  AttentionManager am(Strategy::Adaptive, 4);
  sim::Rng rng(4);
  EXPECT_TRUE(am.select(rng).empty());
}

TEST(AttentionManager, RoundRobinCyclesDeterministically) {
  AttentionManager am(Strategy::RoundRobin, 2);
  for (const char* s : {"a", "b", "c", "d"}) am.register_signal(s);
  sim::Rng rng(5);
  EXPECT_EQ(am.select(rng), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(am.select(rng), (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ(am.select(rng), (std::vector<std::string>{"a", "b"}));
}

TEST(AttentionManager, AdaptivePrefersVolatileSignals) {
  AttentionManager am(Strategy::Adaptive, 1);
  am.register_signal("steady");
  am.register_signal("volatile");
  sim::Rng rng(6);
  // Warm both volatility models equally via All-like feeding.
  double v = 0.0;
  for (int i = 0; i < 30; ++i) {
    am.feed("steady", 5.0);
    am.feed("volatile", v);
    v = v == 0.0 ? 10.0 : 0.0;
  }
  std::size_t volatile_picks = 0;
  const int steps = 40;
  for (int i = 0; i < steps; ++i) {
    const auto chosen = am.select(rng);
    ASSERT_EQ(chosen.size(), 1u);
    if (chosen[0] == "volatile") {
      ++volatile_picks;
      am.feed("volatile", v);
      v = v == 0.0 ? 10.0 : 0.0;
    } else {
      am.feed("steady", 5.0);
    }
  }
  // Staleness guarantees the steady signal is refreshed sometimes, but the
  // volatile one should dominate attention.
  EXPECT_GT(volatile_picks, static_cast<std::size_t>(steps / 2));
}

TEST(AttentionManager, ScoreReflectsVolatility) {
  AttentionManager am(Strategy::Adaptive, 1);
  am.register_signal("x");
  am.feed("x", 0.0);
  am.feed("x", 10.0);
  am.feed("x", 0.0);
  EXPECT_GT(am.score("x"), 1.0);
  EXPECT_DOUBLE_EQ(am.score("unknown"), 0.0);
}

TEST(AttentionManager, DuplicateRegistrationIgnored) {
  AttentionManager am(Strategy::All, 8);
  am.register_signal("x");
  am.register_signal("x");
  EXPECT_EQ(am.signals(), 1u);
}

TEST(AttentionManager, FeedUnknownSignalIsSafe) {
  AttentionManager am(Strategy::Adaptive, 1);
  am.feed("ghost", 1.0);
  SUCCEED();
}

}  // namespace
}  // namespace sa::core
