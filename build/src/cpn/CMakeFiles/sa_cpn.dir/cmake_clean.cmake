file(REMOVE_RECURSE
  "CMakeFiles/sa_cpn.dir/network.cpp.o"
  "CMakeFiles/sa_cpn.dir/network.cpp.o.d"
  "CMakeFiles/sa_cpn.dir/supervisor.cpp.o"
  "CMakeFiles/sa_cpn.dir/supervisor.cpp.o.d"
  "CMakeFiles/sa_cpn.dir/traffic.cpp.o"
  "CMakeFiles/sa_cpn.dir/traffic.cpp.o.d"
  "libsa_cpn.a"
  "libsa_cpn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_cpn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
