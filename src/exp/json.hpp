// Minimal JSON document builder for the BENCH_<exp>.json emitters.
//
// Deliberately tiny (build-and-dump only, no parsing): object keys keep
// insertion order and numbers are formatted deterministically, so two
// documents built from the same values serialise byte-identically — the
// property the parallel-determinism regression tests assert on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sa::exp {

class Json {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() noexcept : kind_(Kind::Null) {}
  Json(bool b) noexcept : kind_(Kind::Bool), bool_(b) {}
  Json(std::int64_t i) noexcept : kind_(Kind::Int), int_(i) {}
  Json(int i) noexcept : Json(static_cast<std::int64_t>(i)) {}
  Json(std::size_t u) noexcept : Json(static_cast<std::int64_t>(u)) {}
  Json(double d) noexcept : kind_(Kind::Double), double_(d) {}
  Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Json(std::string_view s) : Json(std::string(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  [[nodiscard]] static Json array() { return Json(Kind::Array); }
  [[nodiscard]] static Json object() { return Json(Kind::Object); }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }

  /// Object member access; inserts a null member if absent. A null value
  /// silently becomes an object first (convenient for building).
  Json& operator[](std::string_view key);
  /// Read-only lookup; throws std::out_of_range on a missing key.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const;

  /// Array append. A null value silently becomes an array first.
  Json& push_back(Json v);
  [[nodiscard]] std::size_t size() const noexcept;

  /// Serialises with 2-space indentation (indent < 0 → compact).
  void dump(std::ostream& os, int indent = 2) const;
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Deterministic double formatting used for all JSON numbers:
  /// shortest round-trip-exact decimal (NaN/Inf serialise as null).
  [[nodiscard]] static std::string format_double(double d);

 private:
  explicit Json(Kind k) : kind_(k) {}
  void dump_impl(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace sa::exp
