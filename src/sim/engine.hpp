// Discrete-event simulation engine.
//
// A minimal, deterministic DES kernel: events are (time, order, sequence)
// entries in a slot-indexed binary heap over a pooled slot arena. All
// substrates (svc, cloud, multicore, cpn) can schedule their dynamics
// through one Engine instance via their bind() adapters (see each
// substrate's simulator/controller), which is how core::AgentRuntime
// co-schedules agents, reward delivery, knowledge exchange and substrate
// ticks at independent periods.
//
// Data layout (the hot path is allocation-free in steady state):
//  * The heap orders plain (t, order, seq, slot) entries — 24-byte PODs
//    that sift by copy, never by moving a std::function.
//  * Callables live in a free-list slot arena. One-shot slots are recycled
//    the moment they fire; periodic slots persist across firings, so
//    every() re-arms by pushing a fresh heap entry onto its existing slot
//    instead of re-capturing a closure per firing.
//  * step() moves the callable out of its slot before running it, so an
//    action may freely schedule (growing/reallocating the arena) or even
//    clear() the engine while executing.
//
// Determinism contract:
//  * Ties in time break by `order` (lower first), then by scheduling
//    sequence (earlier at() call first). Periodic streams created by
//    every() re-arm on each firing with a fresh sequence number, so at a
//    coincidence of two equal-order streams the LONGER-period stream runs
//    first (its event was armed further in the past). When the intent is
//    "dynamics before control at the same instant", encode it with
//    `order` — the convention used throughout is: fault injection at
//    order -1 (sa::fault — faults landing at t are in force before
//    anything else at t runs), substrate dynamics at order 0,
//    agent/control steps at order 1, knowledge exchange at order 2 —
//    rather than relying on scheduling age.
//  * every(period) fires at base + n*period computed by multiplication,
//    not by accumulating now+period, so periodic events do not drift: the
//    100th firing of every(0.005) lands exactly on t=0.5 and coincides
//    with a control event scheduled there.
//
// Checkpoint seam (sa::ckpt): std::function callables cannot be
// serialized, so persistence works by *naming* them. Schedulers that want
// their events to survive a checkpoint use the _tagged entry points; a
// tag is a stable 64-bit identity (conventionally event_tag() of a stream
// name) that the restoring process can map back to an equivalent
// callable. export_timeline() then re-serializes every pending heap entry
// as {t, order, seq, tag} (+ re-arm state for periodic streams, + an
// opaque payload for one-shots); import_timeline() rebinds those tags to
// the callables the rebuilt world registered — either directly (the world
// re-ran its setup inside begin_restore() mode, which registers slots
// without arming them) or through a rebinder factory for one-shots that
// only exist mid-run (exchange retries, fault end events). Sequence
// numbers are preserved verbatim across the seam: tie-breaking depends on
// them, so a restored heap replays in exactly the original order.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sa::sim {

/// Simulated time in abstract seconds.
using Time = double;

namespace detail {
/// Process-wide count of executed events across all Engine instances.
/// Engines flush into it in batches (on destruction and clear()), so the
/// per-event hot loop never touches the atomic. exp::Harness samples it
/// around a run to report events/sec in bench meta blocks.
inline std::atomic<std::uint64_t>& global_event_counter() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}
}  // namespace detail

/// Stable identity of a checkpointable event stream (0 = untagged).
using EventTag = std::uint64_t;

/// FNV-1a over a stream name — the conventional way to derive an EventTag.
/// Constexpr so call sites can tag with string literals at no runtime cost.
constexpr EventTag event_tag(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name)
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  return h == 0 ? 1 : h;  // reserve 0 for "untagged"
}

/// Mixes an index into a base tag (for per-instance streams: "exchange #3").
constexpr EventTag event_tag(std::string_view name,
                             std::uint64_t index) noexcept {
  const std::uint64_t h = event_tag(name) ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return h == 0 ? 1 : h;
}

class Engine {
 public:
  using Action = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() { flush_executed(); }

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }
  /// Number of events executed this run (reset by clear()).
  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }
  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  /// Process-wide executed-event count across all engines that have
  /// flushed (destroyed or clear()ed engines). Monotone; sample a delta
  /// around a run to derive events/sec.
  [[nodiscard]] static std::uint64_t global_executed() noexcept {
    return detail::global_event_counter().load(std::memory_order_relaxed);
  }

  /// Schedules `action` at absolute time `t` (must be >= now()). Events at
  /// equal time run in ascending `order`, then in scheduling order.
  /// Untagged events cannot cross a checkpoint (export fails on them).
  void at(Time t, Action action, int order = 0) {
    if (restoring_) {
      note_restore_error("untagged at() during restore");
      return;
    }
    const std::uint32_t slot = alloc_slot();
    Slot& s = slots_[slot];
    s.once = std::move(action);
    s.is_periodic = false;
    push_entry(Entry{t, order, slot, seq_++});
  }
  /// Schedules `action` after a delay (>= 0) from now.
  void in(Time delay, Action action, int order = 0) {
    at(now_ + delay, std::move(action), order);
  }
  /// Schedules `action` every `period` starting at now()+period, until it
  /// returns false or the run ends. The n-th firing is at now()+n*period
  /// (computed multiplicatively — no floating-point drift across firings).
  /// The callable occupies one pooled slot for the stream's whole
  /// lifetime; firings re-arm the slot instead of re-capturing it.
  void every(Time period, std::function<bool()> action, int order = 0) {
    if (restoring_) {
      note_restore_error("untagged every() during restore");
      return;
    }
    const std::uint32_t slot = alloc_slot();
    Slot& s = slots_[slot];
    s.periodic = std::move(action);
    s.is_periodic = true;
    s.base = now_;
    s.period = period;
    s.n = 1;
    s.order = order;
    push_entry(Entry{s.base + static_cast<Time>(s.n) * s.period, order, slot,
                     seq_++});
  }

  // -- Checkpointable scheduling (sa::ckpt seam) ----------------------------

  /// at() with a stable identity. `payload` is opaque bytes carried through
  /// a checkpoint and handed to the tag's rebinder on import (e.g. a retry
  /// attempt counter); leave empty when the restoring world re-registers
  /// the same tag itself. In restore mode the callable is registered under
  /// `tag` but NOT armed — import_timeline() arms it iff the checkpoint
  /// holds a pending event with that tag.
  void at_tagged(EventTag tag, Time t, Action action, int order = 0,
                 std::string payload = {}) {
    const std::uint32_t slot = alloc_slot();
    Slot& s = slots_[slot];
    s.once = std::move(action);
    s.is_periodic = false;
    s.tag = tag;
    s.payload = std::move(payload);
    if (restoring_) {
      adopt_restore_slot(tag, slot);
      return;
    }
    push_entry(Entry{t, order, slot, seq_++});
  }
  /// in() with a stable identity (see at_tagged).
  void in_tagged(EventTag tag, Time delay, Action action, int order = 0,
                 std::string payload = {}) {
    at_tagged(tag, now_ + delay, std::move(action), order,
              std::move(payload));
  }
  /// every() with a stable identity. In restore mode the stream is
  /// registered but not armed; import_timeline() restores its exact re-arm
  /// state (base, n, order) so the next firing lands where the
  /// checkpointed one would have.
  void every_tagged(EventTag tag, Time period, std::function<bool()> action,
                    int order = 0) {
    const std::uint32_t slot = alloc_slot();
    Slot& s = slots_[slot];
    s.periodic = std::move(action);
    s.is_periodic = true;
    s.base = now_;
    s.period = period;
    s.n = 1;
    s.order = order;
    s.tag = tag;
    if (restoring_) {
      adopt_restore_slot(tag, slot);
      return;
    }
    push_entry(Entry{s.base + static_cast<Time>(s.n) * s.period, order, slot,
                     seq_++});
  }

  /// Runs until the event queue empties or simulated time reaches `horizon`.
  /// Events scheduled exactly at the horizon still execute.
  void run_until(Time horizon) {
    while (!heap_.empty() && heap_.front().t <= horizon) {
      step();
    }
    now_ = std::max(now_, horizon);
  }
  /// Runs the entire queue to exhaustion (use with bounded workloads).
  void run() {
    while (!heap_.empty()) step();
  }
  /// Runs every event strictly before the global instant (t, order) —
  /// lexicographic on the determinism contract's (time, order) key. The
  /// sa::shard barrier protocol uses this to drain a shard engine up to
  /// the coordinator's next event. now() is left at the last executed
  /// event (never advanced to `t`), so a later run_until/run_until_before
  /// resumes exactly where this call stopped.
  void run_until_before(Time t, int order) {
    while (!heap_.empty() &&
           (heap_.front().t < t ||
            (heap_.front().t == t && heap_.front().order < order))) {
      step();
    }
  }
  /// Peeks the next pending event's (t, order) without executing it.
  /// Returns false when the queue is empty.
  [[nodiscard]] bool peek_next(Time& t, int& order) const noexcept {
    if (heap_.empty()) return false;
    t = heap_.front().t;
    order = heap_.front().order;
    return true;
  }
  /// Executes exactly one event if present; returns whether one ran.
  bool step() {
    if (heap_.empty()) return false;
    const Entry top = heap_.front();
    pop_front();
    now_ = top.t;
    ++executed_;
    Slot& s = slots_[top.slot];
    if (!s.is_periodic) {
      // Move the callable out and recycle the slot *before* running, so a
      // nested at()/every() may reuse it immediately.
      Action act = std::move(s.once);
      free_slot(top.slot);
      if (profile_) {
        const auto wall0 = std::chrono::steady_clock::now();
        act();
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - wall0;
        profile_(top.t, top.order, wall.count());
      } else {
        act();
      }
    } else {
      // Move the callable out for reentrancy: the action may schedule
      // (reallocating the arena) or clear() the engine while running.
      std::function<bool()> fn = std::move(s.periodic);
      const std::uint64_t epoch = clear_epoch_;
      bool again;
      if (profile_) {
        const auto wall0 = std::chrono::steady_clock::now();
        again = fn();
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - wall0;
        profile_(top.t, top.order, wall.count());
      } else {
        again = fn();
      }
      if (clear_epoch_ != epoch) return true;  // clear() ran inside fn.
      Slot& live = slots_[top.slot];  // Re-resolve: arena may have grown.
      if (again) {
        // Re-arm after the action ran, with a fresh sequence number — so
        // events the action itself scheduled sort ahead of the next
        // firing, exactly as the re-scheduling closure used to behave.
        live.periodic = std::move(fn);
        ++live.n;
        push_entry(Entry{live.base + static_cast<Time>(live.n) * live.period,
                         live.order, top.slot, seq_++});
      } else {
        free_slot(top.slot);
      }
    }
    return true;
  }

  /// Self-profiling hook: called after every executed event with its sim
  /// time, order, and measured wall-clock handler cost in seconds. Wall
  /// times belong in a MetricsRegistry, never in simulation logic or the
  /// trace file — they are not reproducible.
  using ProfileHook = std::function<void(Time t, int order, double wall_s)>;
  void set_profile_hook(ProfileHook hook) { profile_ = std::move(hook); }
  /// Discards all pending events and resets the per-run counters
  /// (executed(), scheduling sequence) for the next scenario. Simulated
  /// time is preserved. Safe to call from within an executing event: the
  /// in-flight periodic stream is dropped rather than re-armed.
  void clear() {
    flush_executed();
    heap_.clear();
    slots_.clear();
    free_head_ = kNoSlot;
    executed_ = 0;
    flushed_ = 0;
    seq_ = 0;
    ++clear_epoch_;
  }

  // -- Checkpoint export/import (sa::ckpt seam) -----------------------------

  /// One pending event as it crosses a checkpoint: identity + timing, no
  /// callable. Periodic events carry their drift-free re-arm state so the
  /// restored stream keeps firing at base + n*period.
  struct TimelineEvent {
    Time t = 0.0;
    int order = 0;
    std::uint64_t seq = 0;
    EventTag tag = 0;
    bool is_periodic = false;
    Time base = 0.0;
    Time period = 0.0;
    std::uint64_t n = 0;
    std::string payload;  ///< one-shot rebinder input (opaque)
  };
  /// The engine's full serializable state. Events are sorted by
  /// (t, order, seq) — a canonical order, so two timelines of the same
  /// world state serialize to identical bytes (the attestation property).
  struct Timeline {
    Time now = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t executed = 0;
    std::vector<TimelineEvent> events;
  };

  /// Serializes every pending event. Fails (returns false, explains in
  /// `err`) if any pending event is untagged — such an event could not be
  /// rebound on restore, so the checkpoint would be silently lossy.
  [[nodiscard]] bool export_timeline(Timeline& out, std::string* err) const {
    out = Timeline{};
    out.now = now_;
    out.seq = seq_;
    out.executed = executed_;
    out.events.reserve(heap_.size());
    for (const Entry& e : heap_) {
      const Slot& s = slots_[e.slot];
      if (s.tag == 0) {
        if (err != nullptr)
          *err = "untagged pending event at t=" + std::to_string(e.t) +
                 " order=" + std::to_string(e.order);
        return false;
      }
      TimelineEvent ev;
      ev.t = e.t;
      ev.order = e.order;
      ev.seq = e.seq;
      ev.tag = s.tag;
      ev.is_periodic = s.is_periodic;
      if (s.is_periodic) {
        ev.base = s.base;
        ev.period = s.period;
        ev.n = s.n;
      } else {
        ev.payload = s.payload;
      }
      out.events.push_back(std::move(ev));
    }
    std::sort(out.events.begin(), out.events.end(),
              [](const TimelineEvent& a, const TimelineEvent& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.order != b.order) return a.order < b.order;
                return a.seq < b.seq;
              });
    return true;
  }

  /// Enters restore mode: _tagged scheduling registers callables without
  /// arming them, and untagged scheduling is an error. The world's setup
  /// code runs unchanged between begin_restore() and import_timeline().
  void begin_restore() {
    restoring_ = true;
    restore_error_.clear();
    restore_slots_.clear();
    rebinders_.clear();
  }
  [[nodiscard]] bool restoring() const noexcept { return restoring_; }

  /// Registers a factory that reconstructs a one-shot callable from its
  /// checkpointed payload. Used for events that only exist mid-run
  /// (exchange retries, fault end events) where no register-time slot can
  /// exist. Several pending events may share a rebinder tag — the payload
  /// distinguishes them. Only meaningful in restore mode.
  void register_rebinder(EventTag tag,
                         std::function<Action(std::string_view)> make) {
    if (restoring_) rebinders_[tag] = std::move(make);
  }

  /// Arms the checkpointed timeline against the callables registered since
  /// begin_restore() and leaves restore mode. Preserves t/order/seq of
  /// every event verbatim — tie-breaking, and hence the remaining
  /// trajectory, is byte-identical to the uninterrupted run. Registered
  /// streams with no pending event (they had ended before the checkpoint)
  /// are discarded. Fails on: a tag with no registered callable, a
  /// periodic/one-shot kind mismatch, or a periodic stream whose rebuilt
  /// period differs from the checkpointed one (config drift).
  [[nodiscard]] bool import_timeline(const Timeline& in, std::string* err) {
    auto fail = [&](std::string what) {
      if (err != nullptr) *err = std::move(what);
      end_restore();
      return false;
    };
    if (!restore_error_.empty()) return fail(restore_error_);
    if (!restoring_) return fail("import_timeline outside restore mode");
    std::vector<bool> used(slots_.size(), false);
    for (const TimelineEvent& ev : in.events) {
      const auto it = restore_slots_.find(ev.tag);
      std::uint32_t slot = kNoSlot;
      if (it != restore_slots_.end()) {
        slot = it->second;
        if (used[slot])
          return fail("tag " + std::to_string(ev.tag) +
                      " pending twice but registered once");
        used[slot] = true;
        Slot& s = slots_[slot];
        if (s.is_periodic != ev.is_periodic)
          return fail("tag " + std::to_string(ev.tag) +
                      " periodic/one-shot kind mismatch");
        if (ev.is_periodic) {
          if (s.period != ev.period)
            return fail("tag " + std::to_string(ev.tag) +
                        " period drifted from checkpoint");
          s.base = ev.base;
          s.n = ev.n;
          s.order = ev.order;
        } else {
          s.payload = ev.payload;
        }
      } else if (const auto rb = rebinders_.find(ev.tag);
                 rb != rebinders_.end()) {
        if (ev.is_periodic)
          return fail("tag " + std::to_string(ev.tag) +
                      " is periodic but only a one-shot rebinder exists");
        Action act = rb->second(ev.payload);
        slot = alloc_slot();
        if (slot >= used.size()) used.resize(slot + 1, false);
        used[slot] = true;
        Slot& s = slots_[slot];
        s.once = std::move(act);
        s.is_periodic = false;
        s.tag = ev.tag;
        s.payload = ev.payload;
      } else {
        return fail("no callable registered for tag " +
                    std::to_string(ev.tag));
      }
      push_entry(Entry{ev.t, ev.order, slot, ev.seq});
    }
    // Streams registered during rebuild but absent from the checkpoint had
    // already ended at checkpoint time — drop them.
    for (const auto& [tag, slot] : restore_slots_) {
      if (!used[slot]) free_slot(slot);
    }
    now_ = in.now;
    seq_ = in.seq;
    executed_ = static_cast<std::size_t>(in.executed);
    flushed_ = executed_;  // pre-checkpoint events were already accounted
    end_restore();
    if (err != nullptr) err->clear();
    return true;
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Pooled callable storage. A slot is either one-shot (`once` armed,
  /// recycled on firing) or periodic (`periodic` + re-arm state, recycled
  /// when the action returns false). Free slots chain through `next_free`.
  struct Slot {
    Action once;
    std::function<bool()> periodic;
    Time base = 0.0;
    Time period = 0.0;
    std::uint64_t n = 0;
    int order = 0;
    bool is_periodic = false;
    std::uint32_t next_free = kNoSlot;
    EventTag tag = 0;      ///< checkpoint identity (0 = not checkpointable)
    std::string payload;   ///< opaque rebinder input for one-shots
  };

  /// Heap entries are POD: sifting copies 24 bytes instead of moving
  /// std::function state.
  struct Entry {
    Time t;
    int order;
    std::uint32_t slot;
    std::uint64_t seq;
  };

  static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    if (a.order != b.order) return a.order < b.order;
    return a.seq < b.seq;
  }

  std::uint32_t alloc_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t idx = free_head_;
      free_head_ = slots_[idx].next_free;
      slots_[idx].next_free = kNoSlot;
      return idx;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void free_slot(std::uint32_t idx) {
    Slot& s = slots_[idx];
    s.once = nullptr;      // Release captured state now, not at reuse.
    s.periodic = nullptr;
    s.is_periodic = false;
    s.tag = 0;
    s.payload.clear();
    s.next_free = free_head_;
    free_head_ = idx;
  }

  void adopt_restore_slot(EventTag tag, std::uint32_t slot) {
    if (tag == 0) {
      note_restore_error("tag 0 registered during restore");
      free_slot(slot);
      return;
    }
    if (!restore_slots_.emplace(tag, slot).second) {
      note_restore_error("tag " + std::to_string(tag) +
                         " registered twice during restore");
      free_slot(slot);
    }
  }

  void note_restore_error(std::string what) {
    if (restore_error_.empty()) restore_error_ = std::move(what);
  }

  void end_restore() {
    restoring_ = false;
    restore_slots_.clear();
    rebinders_.clear();
    restore_error_.clear();
  }

  void push_entry(const Entry& e) {
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void pop_front() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t l = 2 * i + 1;
      std::size_t smallest = i;
      if (l < n && before(heap_[l], heap_[smallest])) smallest = l;
      if (l + 1 < n && before(heap_[l + 1], heap_[smallest])) smallest = l + 1;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  void flush_executed() noexcept {
    detail::global_event_counter().fetch_add(executed_ - flushed_,
                                             std::memory_order_relaxed);
    flushed_ = executed_;
  }

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t flushed_ = 0;
  std::uint64_t clear_epoch_ = 0;
  ProfileHook profile_;

  // Restore-mode bookkeeping (empty outside begin_restore()/import).
  bool restoring_ = false;
  std::string restore_error_;
  std::unordered_map<EventTag, std::uint32_t> restore_slots_;
  std::unordered_map<EventTag, std::function<Action(std::string_view)>>
      rebinders_;
};

}  // namespace sa::sim
