#include "core/sharing.hpp"

namespace sa::core {

std::size_t KnowledgeExchange::import(const KnowledgeBase& from,
                                      const std::string& peer_id,
                                      KnowledgeBase& into) const {
  std::size_t imported = 0;
  for (const auto& [key, item] : from.public_snapshot()) {
    const std::string local = shared_key(peer_id, key);
    if (const auto existing = into.latest(local)) {
      if (existing->time >= item.time) continue;  // ours is fresher
    }
    KnowledgeItem copy = item;
    copy.confidence *= p_.confidence_decay;
    copy.scope = Scope::Private;  // no transitive gossip
    copy.source = "shared:" + peer_id;
    into.put(local, std::move(copy));
    ++imported;
  }
  return imported;
}

}  // namespace sa::core
