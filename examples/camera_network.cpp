// Example: a self-organising smart-camera network.
//
// Twelve cameras (a dense cluster plus an isolated ring) track two dozen
// objects. Each camera is its own SelfAwareAgent learning which handover
// strategy suits *its* situation — nobody coordinates them, and no camera
// sees the global picture. Watch the strategy assignment differentiate and
// the message bill drop while coverage holds.
//
// Run: ./build/examples/camera_network
#include <cstdio>

#include "svc/fleet.hpp"

int main() {
  using namespace sa::svc;

  NetworkParams world;
  world.objects = 24;
  world.seed = 2027;
  auto net = Network::clustered_layout(world);

  CameraFleet::Params fleet_params;
  fleet_params.mode = CameraFleet::Mode::Learning;
  fleet_params.epoch_steps = 25;
  fleet_params.seed = 2027;
  CameraFleet fleet(net, fleet_params);

  std::printf("epoch  coverage  msgs  diversity   strategies (B/S/P)\n");
  for (int epoch = 1; epoch <= 300; ++epoch) {
    const auto e = fleet.run_epoch();
    if (epoch % 30 == 0) {
      const auto hist = fleet.strategy_histogram();
      std::printf("%5d     %.3f  %4.0f      %.3f   %zu/%zu/%zu\n", epoch,
                  e.coverage, e.messages, fleet.diversity(), hist[0],
                  hist[1], hist[2]);
    }
  }

  std::printf("\nFinal per-camera strategies:\n");
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    const auto& spec = net.spec(c);
    std::printf("  cam%-2zu at (%.2f, %.2f)  %-9s  [%s]\n", c, spec.pos.x,
                spec.pos.y, strategy_name(net.strategy(c)),
                c < 4 ? "cluster" : "ring");
  }

  std::printf("\nOne camera explains itself:\n  %s\n",
              fleet.agent(0).explainer().why_last().c_str());
  return 0;
}
