#!/usr/bin/env bash
# Crash-recovery acceptance (sa::ckpt): a checkpointed bench killed
# mid-flight — once with SIGKILL, once with SIGTERM — must resume from
# its checkpoint and finish with a BENCH json byte-identical to an
# uninterrupted reference run (wall-clock/timing fields excluded). Both
# legs run with an active fault plan (the E15 spec carries one) and a
# replayed control journal, per the acceptance checklist.
#
# Usage: crash_recovery.sh /path/to/bench_e15_city [workdir]
set -u

BENCH=${1:?usage: crash_recovery.sh /path/to/bench_e15_city [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"
JOURNAL='20 cmd=inject&kind=link-loss&unit=0&mag=1.5&dur=10; 45 cmd=inject&kind=link-loss&unit=1&mag=2&dur=5'

fail() { echo "crash_recovery: FAIL: $*" >&2; exit 1; }

# Timing-derived fields legitimately differ between runs, and a resumed
# process executes fewer engine events (completed cells never re-run), so
# events_total is process-local too.
filtered() {
  grep -vE '"wall_clock_s"|"wall_s"|"jobs"|"events_per_sec"|"events_total"|"peak_rss_mb"' "$1"
}

# NOTE: backgrounded invocations below spell out the command instead of
# calling this function — `fn &` backgrounds a subshell, and kill would
# signal the subshell rather than the bench.
run_bench() { # out_json extra-args...
  local out=$1; shift
  "$BENCH" --jobs 2 --json "$out" --control-journal "$JOURNAL" "$@"
}

echo "== reference (uninterrupted) =="
run_bench "$WORK/ref.json" > "$WORK/ref.log" 2>&1 \
  || fail "reference run failed: $(cat "$WORK/ref.log")"

echo "== leg 1: SIGKILL mid-flight, resume =="
rm -f "$WORK/ck.sackpt" "$WORK/ck.sackpt.prev"
"$BENCH" --jobs 2 --json "$WORK/int.json" --control-journal "$JOURNAL" \
  --checkpoint "$WORK/ck.sackpt" --checkpoint-every 0.2 \
  > "$WORK/int.log" 2>&1 &
PID=$!
for _ in $(seq 1 400); do
  [ -f "$WORK/ck.sackpt" ] && break
  sleep 0.05
done
[ -f "$WORK/ck.sackpt" ] || { kill -9 "$PID"; fail "no checkpoint appeared"; }
sleep 1.0  # let some cells complete so the resume actually skips work
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null
run_bench "$WORK/res.json" --checkpoint "$WORK/ck.sackpt" \
  --resume "$WORK/ck.sackpt" > "$WORK/res.log" 2>&1 \
  || fail "resume run failed: $(cat "$WORK/res.log")"
grep -q "resuming from" "$WORK/res.log" || fail "resume path never engaged"
grep -o "resuming from.*" "$WORK/res.log"
diff <(filtered "$WORK/ref.json") <(filtered "$WORK/res.json") \
  || fail "resumed json differs from the uninterrupted reference"

echo "== leg 2: SIGTERM writes partial json + final checkpoint, resume =="
rm -f "$WORK/ck2.sackpt" "$WORK/ck2.sackpt.prev" "$WORK/part.json"
"$BENCH" --jobs 2 --json "$WORK/part.json" --control-journal "$JOURNAL" \
  --checkpoint "$WORK/ck2.sackpt" --checkpoint-every 60 \
  > "$WORK/part.log" 2>&1 &
PID=$!
sleep 1.0
kill -TERM "$PID" 2>/dev/null || true
wait "$PID"
RC=$?
[ "$RC" -eq 143 ] || fail "SIGTERM exit was $RC, want 143 (128+15)"
[ -f "$WORK/part.json" ] || fail "no partial json written on SIGTERM"
grep -q '"interrupted": true' "$WORK/part.json" \
  || fail 'partial json lacks "interrupted": true'
[ -f "$WORK/ck2.sackpt" ] || fail "no final checkpoint written on SIGTERM"
run_bench "$WORK/res2.json" --checkpoint "$WORK/ck2.sackpt" \
  --resume "$WORK/ck2.sackpt" > "$WORK/res2.log" 2>&1 \
  || fail "post-SIGTERM resume failed: $(cat "$WORK/res2.log")"
grep -o "resuming from.*" "$WORK/res2.log"
diff <(filtered "$WORK/ref.json") <(filtered "$WORK/res2.json") \
  || fail "post-SIGTERM resume differs from the reference"

echo "crash_recovery: PASS"
