// Distributed smart-camera network simulator.
//
// Substrate for the paper's flagship EPiCS case study (refs [11][13][48]):
// cameras in a 2D world must keep moving objects tracked, handing objects
// over as they cross fields of view. Handover is market-based (Esterle et
// al.): the losing camera solicits bids; the solicitation *strategy* trades
// tracking continuity against communication cost:
//
//   Broadcast — auction to every camera: best continuity, highest cost,
//               and it teaches the vision graph (successful handovers are
//               remembered as links);
//   Smooth    — auction only over the *learned* vision graph (cameras that
//               previously won handovers from this one): cheap, but blind
//               until the graph is bootstrapped and stale if the scene
//               changes;
//   Passive   — no auction: zero cost, objects must be re-detected, so
//               tracking gaps appear.
//
// The right strategy depends on each camera's local situation (density of
// neighbours, object traffic), which is exactly the heterogeneity argument
// of Lewis et al. [13] ("learning to be different"): self-aware cameras
// that learn their own strategy end up heterogeneous and beat every
// homogeneous assignment. Experiment E2 reproduces that comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/telemetry.hpp"

namespace sa::svc {

struct Vec2 {
  double x = 0.0, y = 0.0;
};

[[nodiscard]] double distance(Vec2 a, Vec2 b) noexcept;

/// Handover solicitation strategy (the per-camera knob that is learned).
enum class Strategy : std::size_t { Broadcast = 0, Smooth = 1, Passive = 2 };
inline constexpr std::size_t kStrategies = 3;
[[nodiscard]] constexpr const char* strategy_name(Strategy s) noexcept {
  switch (s) {
    case Strategy::Broadcast: return "broadcast";
    case Strategy::Smooth: return "smooth";
    case Strategy::Passive: return "passive";
  }
  return "?";
}

struct CameraSpec {
  Vec2 pos;
  double radius = 0.22;      ///< field-of-view radius
  std::size_t capacity = 6;  ///< max simultaneous tracks
};

struct NetworkParams {
  std::size_t objects = 24;
  double speed = 0.015;          ///< object speed per step
  double vis_threshold = 0.15;   ///< minimum visibility to keep a track
  double comm_weight = 0.05;     ///< utility cost per message
  double handover_bonus = 0.3;   ///< reward for a successful auction
  double redetect_prob = 0.5;    ///< chance an unowned visible object is
                                 ///< claimed in a step
  double hotspot_bias = 0.7;     ///< fraction of waypoints inside hotspot
  Vec2 hotspot{0.5, 0.5};
  double hotspot_radius = 0.2;
  /// Environmental drift: the hotspot orbits its initial position at this
  /// angular speed (radians/step) on a circle of `hotspot_orbit` radius.
  /// 0 keeps the scene stationary.
  double hotspot_drift = 0.0;
  double hotspot_orbit = 0.25;
  std::uint64_t seed = 17;
};

/// Per-camera accumulators since the last harvest.
struct CameraEpoch {
  double tracking = 0.0;   ///< summed visibility of owned objects
  double messages = 0.0;   ///< auction messages sent
  double handovers = 0.0;  ///< successful handovers initiated
  double lost = 0.0;       ///< objects that went unowned on this camera
  std::size_t owned_now = 0;
  /// Local utility: what the camera's own agent optimises.
  [[nodiscard]] double utility(double comm_weight,
                               double handover_bonus) const {
    return tracking + handover_bonus * handovers - comm_weight * messages;
  }
};

/// Network-wide accumulators since the last harvest.
struct NetworkEpoch {
  double steps = 0.0;
  double coverage = 0.0;        ///< mean fraction of objects tracked
  double mean_visibility = 0.0; ///< mean visibility over tracked objects
  double messages = 0.0;        ///< total auction messages
  double global_utility = 0.0;  ///< Σ visibility − comm_weight·messages
};

class Network {
 public:
  Network(std::vector<CameraSpec> cameras, NetworkParams params);

  /// Canonical layout: a dense 2×2 cluster near the hotspot plus a sparse
  /// ring of isolated cameras — guarantees strategy preferences differ.
  static Network clustered_layout(NetworkParams params);

  void set_strategy(std::size_t cam, Strategy s) { strategy_[cam] = s; }
  [[nodiscard]] Strategy strategy(std::size_t cam) const {
    return strategy_[cam];
  }

  // -- Fault surfaces (driven by sa::fault, inert otherwise) ----------------
  /// Crashes `cam`: it sees nothing (visibility 0) and its tracks are
  /// released immediately — the node-crash half of crash-restart.
  void fail_camera(std::size_t cam);
  void restore_camera(std::size_t cam) { failed_[cam] = false; }
  [[nodiscard]] bool camera_failed(std::size_t cam) const {
    return failed_[cam];
  }
  /// Degrades `cam`'s sensor: visibility is multiplied by `factor` in
  /// [0, 1] (1 = sharp, 0 = total dropout). Tracks fade below the
  /// vis_threshold and are auctioned away like any genuine loss.
  void set_sensor_blur(std::size_t cam, double factor);
  [[nodiscard]] double sensor_blur(std::size_t cam) const {
    return blur_[cam];
  }

  /// One world step: motion, tracking, handovers, re-detection.
  void step();
  void run(std::size_t steps);
  /// Drives step() through `engine` every `period` (order 0 = dynamics).
  /// The engine-driven trajectory is identical to calling step() directly
  /// at the same cadence.
  void bind(sim::Engine& engine, double period = 1.0);
  /// Emits handover observations and lost-track failures to `bus` (event
  /// time = world step count). Non-owning; null disables emission.
  void set_telemetry(sim::TelemetryBus* bus);
  /// Current hotspot centre (moves when hotspot_drift > 0).
  [[nodiscard]] Vec2 current_hotspot() const;

  [[nodiscard]] std::size_t cameras() const noexcept {
    return specs_.size();
  }
  [[nodiscard]] std::size_t objects() const noexcept {
    return object_pos_.size();
  }
  [[nodiscard]] const CameraSpec& spec(std::size_t cam) const {
    return specs_[cam];
  }
  /// Cameras whose FoV discs overlap cam's (static geometry helper).
  [[nodiscard]] const std::vector<std::size_t>& neighbours(
      std::size_t cam) const {
    return neighbours_[cam];
  }
  /// Learned vision-graph partners of `cam` (the Smooth audience): cameras
  /// that have won auctions initiated by `cam`.
  [[nodiscard]] std::vector<std::size_t> learned_links(
      std::size_t cam) const;
  /// Visibility of object `obj` from camera `cam` in [0,1].
  [[nodiscard]] double visibility(std::size_t cam, std::size_t obj) const;
  /// Owner camera of `obj` or SIZE_MAX if unowned.
  [[nodiscard]] std::size_t owner(std::size_t obj) const {
    return owner_[obj];
  }

  /// Per-camera stats since last harvest_camera (resets them).
  CameraEpoch harvest_camera(std::size_t cam);
  /// Network stats since last harvest_network (resets them).
  NetworkEpoch harvest_network();
  [[nodiscard]] const NetworkParams& params() const noexcept { return p_; }

 private:
  /// One learned vision-graph edge. Each camera's edges are kept sorted by
  /// peer id in a flat vector (same ascending order the old per-node
  /// std::map iterated in, minus the node churn).
  struct Link {
    std::size_t peer;
    double strength;
  };

  void move_objects();
  void claim_unowned();
  void auction(std::size_t obj, std::size_t seller);
  /// Tracks owned per camera — maintained incrementally at every owner_
  /// mutation (integer-exact), so bid loops never rescan all objects.
  [[nodiscard]] std::size_t load(std::size_t cam) const {
    return owned_count_[cam];
  }
  void transfer_owner(std::size_t obj, std::size_t to);

  std::vector<CameraSpec> specs_;
  NetworkParams p_;
  sim::Rng rng_;
  std::vector<Strategy> strategy_;
  std::vector<bool> failed_;     ///< fault-injected crashed cameras
  std::vector<double> blur_;     ///< fault-injected sensor quality, [0,1]
  std::vector<std::vector<std::size_t>> neighbours_;
  std::vector<std::vector<Link>> links_;  ///< learned graph, sorted by peer

  std::vector<Vec2> object_pos_;
  std::vector<Vec2> object_waypoint_;
  std::vector<std::size_t> owner_;
  std::vector<std::size_t> owned_count_;   ///< objects owned per camera
  std::vector<std::size_t> audience_;      ///< auction scratch (reused)
  std::size_t steps_ = 0;

  std::vector<CameraEpoch> cam_epoch_;
  NetworkEpoch net_epoch_;

  sim::TelemetryBus* telemetry_ = nullptr;
  sim::SubjectId subject_ = 0;
};

}  // namespace sa::svc
