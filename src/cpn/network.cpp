#include "cpn/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sa::cpn {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Topology::Topology(std::size_t nodes, std::vector<LinkSpec> links)
    : n_(nodes), links_(std::move(links)), adj_(nodes), adj_link_(nodes) {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const auto& l = links_[i];
    adj_[l.a].push_back(l.b);
    adj_link_[l.a].push_back(i);
    adj_[l.b].push_back(l.a);
    adj_link_[l.b].push_back(i);
  }
  build_tables();
}

Topology Topology::grid(std::size_t rows, std::size_t cols,
                        std::size_t shortcuts, std::uint64_t seed) {
  std::vector<LinkSpec> links;
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) links.push_back({id(r, c), id(r, c + 1), 1.0, 8.0});
      if (r + 1 < rows) links.push_back({id(r, c), id(r + 1, c), 1.0, 8.0});
    }
  }
  sim::Rng rng(seed);
  const std::size_t n = rows * cols;
  std::size_t added = 0;
  while (added < shortcuts) {
    const auto a = static_cast<std::size_t>(rng.below(n));
    const auto b = static_cast<std::size_t>(rng.below(n));
    if (a == b) continue;
    bool dup = false;
    for (const auto& l : links) {
      if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    links.push_back({a, b, 2.0, 6.0});  // chords: longer but useful
    ++added;
  }
  return Topology(n, std::move(links));
}

std::size_t Topology::link_between(std::size_t a, std::size_t b) const {
  const auto& nbrs = adj_[a];
  for (std::size_t s = 0; s < nbrs.size(); ++s) {
    if (nbrs[s] == b) return adj_link_[a][s];
  }
  return kNone;
}

void Topology::build_tables() {
  // Floyd–Warshall over base latencies (n is small).
  dist_.assign(n_ * n_, kInf);
  next_.assign(n_ * n_, kNone);
  for (std::size_t i = 0; i < n_; ++i) dist_[i * n_ + i] = 0.0;
  for (const auto& l : links_) {
    if (l.base_latency < dist_[l.a * n_ + l.b]) {
      dist_[l.a * n_ + l.b] = dist_[l.b * n_ + l.a] = l.base_latency;
      next_[l.a * n_ + l.b] = l.b;
      next_[l.b * n_ + l.a] = l.a;
    }
  }
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t i = 0; i < n_; ++i) {
      const double dik = dist_[i * n_ + k];
      if (dik == kInf) continue;
      for (std::size_t j = 0; j < n_; ++j) {
        const double alt = dik + dist_[k * n_ + j];
        if (alt < dist_[i * n_ + j]) {
          dist_[i * n_ + j] = alt;
          next_[i * n_ + j] = next_[i * n_ + k];
        }
      }
    }
  }
}

PacketNetwork::PacketNetwork(Topology topo, Params p)
    : topo_(std::move(topo)),
      p_(p),
      rng_(p.seed),
      eps_(p.epsilon),
      eps_floor_(p.epsilon),
      in_flight_(topo_.links().size(), 0),
      dead_(topo_.links().size(), false),
      slowdown_(topo_.links().size(), 1.0),
      fwd_count_(topo_.nodes() * topo_.nodes(), 0.0),
      fwd_rate_(topo_.nodes() * topo_.nodes(), 0.0) {
  for (std::size_t v = 0; v < topo_.nodes(); ++v) {
    max_degree_ = std::max(max_degree_, topo_.neighbours(v).size());
  }
  // Initialise Q with the static shortest-path estimates so that the
  // learner starts out equivalent to Static and then adapts.
  q_.assign(topo_.nodes() * topo_.nodes() * max_degree_, 0.0);
  for (std::size_t v = 0; v < topo_.nodes(); ++v) {
    for (std::size_t d = 0; d < topo_.nodes(); ++d) {
      const auto& nbrs = topo_.neighbours(v);
      for (std::size_t s = 0; s < nbrs.size(); ++s) {
        const std::size_t l = topo_.link_at(v, s);
        q(v, d, s) = topo_.links()[l].base_latency + topo_.distance(nbrs[s], d);
      }
    }
  }
}

double& PacketNetwork::q(std::size_t node, std::size_t dst,
                         std::size_t nbr_index) {
  return q_[(node * topo_.nodes() + dst) * max_degree_ + nbr_index];
}

double PacketNetwork::link_latency(std::size_t l) const {
  const auto& spec = topo_.links()[l];
  const double load =
      static_cast<double>(in_flight_[l]) / spec.capacity;
  return spec.base_latency * (1.0 + load * load) * slowdown_[l];
}

std::size_t PacketNetwork::choose_next(std::size_t node, std::size_t dst,
                                       std::size_t prev) {
  const auto& nbrs = topo_.neighbours(node);
  if (nbrs.empty()) return kNone;
  if (p_.router == Router::Static) {
    return topo_.next_hop(node, dst);
  }
  if (rng_.chance(eps_)) {
    return nbrs[rng_.below(nbrs.size())];
  }
  std::size_t best = kNone;
  double best_q = kInf;
  for (std::size_t s = 0; s < nbrs.size(); ++s) {
    if (nbrs[s] == prev && nbrs.size() > 1) continue;  // no instant backtrack
    const double v = q(node, dst, s);
    if (v < best_q) {
      best_q = v;
      best = nbrs[s];
    }
  }
  return best;
}

bool PacketNetwork::send(Packet& pkt, std::size_t from, std::size_t to) {
  if (p_.dos_defence) {
    // Upstream shedding: if this node is already forwarding more traffic
    // towards pkt.dst than the cap, drop the excess probabilistically.
    const double rate = fwd_rate_[from * topo_.nodes() + pkt.dst];
    if (rate > p_.dest_rate_cap &&
        rng_.chance(1.0 - p_.dest_rate_cap / rate)) {
      ++defence_drops_;
      if (pkt.legit) ++dropped_;
      if (telemetry_) {
        telemetry_->record(now_, sim::TelemetryBus::kFailure, subject_,
                           static_cast<double>(pkt.hops), "shed");
      }
      return false;
    }
    fwd_count_[from * topo_.nodes() + pkt.dst] += 1.0;
  }
  const std::size_t l = topo_.link_between(from, to);
  const auto buffer_limit = static_cast<std::size_t>(
      p_.buffer_factor * topo_.links()[l].capacity);
  if (dead_[l] || in_flight_[l] >= buffer_limit) {
    // Finite buffers: the packet is lost, and the sender's Q estimate for
    // this link takes a heavy penalty so future traffic routes around it.
    if (p_.router == Router::QRouting) {
      const auto& nbrs = topo_.neighbours(from);
      for (std::size_t s = 0; s < nbrs.size(); ++s) {
        if (nbrs[s] == to) {
          double& qv = q(from, pkt.dst, s);
          qv += p_.alpha * (p_.drop_penalty - qv);
          break;
        }
      }
    }
    if (pkt.legit) ++dropped_;
    if (telemetry_) {
      telemetry_->record(now_, sim::TelemetryBus::kFailure, subject_,
                         static_cast<double>(pkt.hops),
                         dead_[l] ? "dead-link" : "buffer");
    }
    return false;
  }
  pkt.prev = pkt.at;
  pkt.at = from;
  pkt.to = to;
  pkt.link = l;
  pkt.remaining = link_latency(l);
  pkt.sent_at = now_;
  ++pkt.hops;
  ++in_flight_[l];
  flying_.push_back(pkt);
  return true;
}

void PacketNetwork::inject(std::size_t src, std::size_t dst, bool legit) {
  if (src == dst) return;
  if (legit) ++injected_;
  Packet pkt;
  pkt.dst = dst;
  pkt.at = src;
  pkt.prev = kNone;
  pkt.born = now_;
  pkt.legit = legit;
  const std::size_t nxt = choose_next(src, dst, kNone);
  if (nxt == kNone) {
    if (legit) ++dropped_;
    if (telemetry_) {
      telemetry_->record(now_, sim::TelemetryBus::kFailure, subject_, 0.0,
                         "no-route");
    }
    return;
  }
  send(pkt, src, nxt);  // a full buffer counts the drop itself
}

void PacketNetwork::arrive(Packet pkt) {
  const std::size_t here = pkt.to;
  const double observed = now_ - pkt.sent_at;

  if (p_.router == Router::QRouting) {
    // Q-routing backup: the sender learns the observed transit plus the
    // receiver's best remaining estimate.
    const auto& nbrs_prev = topo_.neighbours(pkt.at);
    std::size_t slot = kNone;
    for (std::size_t s = 0; s < nbrs_prev.size(); ++s) {
      if (nbrs_prev[s] == here) {
        slot = s;
        break;
      }
    }
    if (slot != kNone) {
      double best_next = 0.0;
      if (here != pkt.dst) {
        best_next = kInf;
        const auto& nbrs_here = topo_.neighbours(here);
        for (std::size_t s = 0; s < nbrs_here.size(); ++s) {
          best_next = std::min(best_next, q(here, pkt.dst, s));
        }
        if (best_next == kInf) best_next = 0.0;
      }
      double& qv = q(pkt.at, pkt.dst, slot);
      qv += p_.alpha * (observed + best_next - qv);
    }
  }

  if (here == pkt.dst) {
    if (pkt.legit) {
      ++delivered_;
      const double lat = now_ - pkt.born;
      latency_.add(lat);
      latency_hist_.add(lat);
      hops_.add(static_cast<double>(pkt.hops));
      if (telemetry_) {
        telemetry_->record(now_, sim::TelemetryBus::kObservation, subject_,
                           lat, "delivered");
      }
    }
    return;
  }
  if (pkt.hops >= p_.ttl_hops) {
    if (pkt.legit) ++dropped_;
    if (telemetry_) {
      telemetry_->record(now_, sim::TelemetryBus::kFailure, subject_,
                         static_cast<double>(pkt.hops), "ttl");
    }
    return;
  }
  const std::size_t nxt = choose_next(here, pkt.dst, pkt.at);
  if (nxt == kNone) {
    if (pkt.legit) ++dropped_;
    if (telemetry_) {
      telemetry_->record(now_, sim::TelemetryBus::kFailure, subject_,
                         static_cast<double>(pkt.hops), "no-route");
    }
    return;
  }
  Packet onward = pkt;
  onward.at = here;
  send(onward, here, nxt);  // a full buffer counts the drop itself
}

void PacketNetwork::step() {
  now_ += 1.0;
  eps_ = std::max(eps_floor_, eps_ * eps_decay_);
  if (p_.dos_defence) {
    for (std::size_t i = 0; i < fwd_rate_.size(); ++i) {
      fwd_rate_[i] = 0.98 * fwd_rate_[i] + 0.02 * fwd_count_[i];
      fwd_count_[i] = 0.0;
    }
  }

  // One SoA-style sweep over the in-flight array: decrement transit
  // clocks, compact survivors in place, land arrivals into the reused
  // member scratch (arrive() may push new sends onto flying_).
  arrivals_.clear();
  std::size_t w = 0;
  for (std::size_t i = 0; i < flying_.size(); ++i) {
    Packet& pkt = flying_[i];
    pkt.remaining -= 1.0;
    if (pkt.remaining <= 0.0) {
      --in_flight_[pkt.link];
      arrivals_.push_back(pkt);
    } else {
      flying_[w++] = pkt;
    }
  }
  flying_.resize(w);
  for (auto& pkt : arrivals_) arrive(pkt);
}

void PacketNetwork::run(std::size_t ticks) {
  for (std::size_t i = 0; i < ticks; ++i) step();
}

void PacketNetwork::bind(sim::Engine& engine, double period) {
  engine.every_tagged(
      sim::event_tag("sa.cpn.network"), period,
      [this] { step(); return true; }, /*order=*/0);
}

void PacketNetwork::set_telemetry(sim::TelemetryBus* bus) {
  telemetry_ = bus;
  if (telemetry_) subject_ = telemetry_->intern_subject("cpn.network");
}

double PacketNetwork::mean_load() const {
  if (in_flight_.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t l : in_flight_) acc += static_cast<double>(l);
  return acc / static_cast<double>(in_flight_.size());
}

std::size_t PacketNetwork::in_flight_total() const { return flying_.size(); }

void PacketNetwork::boost_exploration(double eps, double decay) {
  eps_ = std::max(eps_, eps);
  eps_decay_ = decay;
}

CpnStats PacketNetwork::harvest() {
  CpnStats s;
  s.injected = injected_;
  s.delivered = delivered_;
  s.dropped = dropped_;
  s.mean_latency = latency_.mean();
  s.p95_latency = latency_hist_.quantile(0.95);
  s.mean_hops = hops_.mean();
  injected_ = delivered_ = dropped_ = 0;
  latency_.reset();
  latency_hist_ = sim::Histogram{0.0, 400.0, 200};
  hops_.reset();
  return s;
}

}  // namespace sa::cpn
