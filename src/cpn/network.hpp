// Cognitive packet network simulator.
//
// Substrate for the paper's resource-constrained motivation (Section III,
// Sakellari [38]; Gelenbe & Loukas [39]): a packet network whose nodes run
// a self-awareness loop that "monitors the effect of using different
// routes" and adapts source-destination paths on an ongoing basis, keeping
// QoS under changing load and denial-of-service attacks.
//
// Substitution note (recorded in DESIGN.md): the original CPN uses random
// neural networks trained by reinforcement; we substitute Q-routing
// (Boyan & Littman), the canonical tabular RL routing algorithm. Both are
// per-node online RL over next-hop choices rewarded by observed delay —
// the same observe-decide-act loop with the same adaptation behaviour,
// which is what the experiments exercise.
//
// Dynamics are time-stepped: a packet in transit on a link takes a number
// of ticks equal to the link's base latency inflated by congestion
// (quadratic in load/capacity). Routers choose the next hop on each
// arrival; Q-routing updates its estimates from the observed per-link
// delays, so congestion (including attack floods) is routed around.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"

namespace sa::cpn {

/// An undirected link.
struct LinkSpec {
  std::size_t a = 0, b = 0;
  double base_latency = 1.0;  ///< ticks when uncongested
  double capacity = 8.0;      ///< packets in flight before congestion bites
};

/// Static graph with shortest-path tables.
class Topology {
 public:
  Topology(std::size_t nodes, std::vector<LinkSpec> links);

  /// rows×cols grid with `shortcuts` extra random chords.
  static Topology grid(std::size_t rows, std::size_t cols,
                       std::size_t shortcuts, std::uint64_t seed);

  [[nodiscard]] std::size_t nodes() const noexcept { return n_; }
  [[nodiscard]] const std::vector<LinkSpec>& links() const noexcept {
    return links_;
  }
  /// Neighbour node ids of `node`.
  [[nodiscard]] const std::vector<std::size_t>& neighbours(
      std::size_t node) const {
    return adj_[node];
  }
  /// Link index carrying (a,b); SIZE_MAX if absent. Resolved through the
  /// per-node adjacency (O(degree)), not a scan over all links.
  [[nodiscard]] std::size_t link_between(std::size_t a, std::size_t b) const;
  /// Link index to `neighbours(node)[slot]` — the zero-search variant for
  /// callers that already hold a neighbour slot.
  [[nodiscard]] std::size_t link_at(std::size_t node, std::size_t slot) const {
    return adj_link_[node][slot];
  }
  /// Base-latency shortest-path distance a→b.
  [[nodiscard]] double distance(std::size_t a, std::size_t b) const {
    return dist_[a * n_ + b];
  }
  /// Next hop on the static shortest path a→b (SIZE_MAX if unreachable).
  [[nodiscard]] std::size_t next_hop(std::size_t a, std::size_t b) const {
    return next_[a * n_ + b];
  }

 private:
  void build_tables();
  std::size_t n_;
  std::vector<LinkSpec> links_;
  std::vector<std::vector<std::size_t>> adj_;
  /// adj_link_[v][s] is the link index joining v to adj_[v][s].
  std::vector<std::vector<std::size_t>> adj_link_;
  std::vector<double> dist_;
  std::vector<std::size_t> next_;
};

/// Per-window delivery statistics (legitimate traffic only).
struct CpnStats {
  std::size_t injected = 0;
  std::size_t delivered = 0;
  std::size_t dropped = 0;      ///< TTL exceeded or no route
  double mean_latency = 0.0;    ///< ticks, delivered packets
  double p95_latency = 0.0;
  double mean_hops = 0.0;
  [[nodiscard]] double delivery_rate() const {
    const auto done = delivered + dropped;
    return done ? static_cast<double>(delivered) /
                      static_cast<double>(done)
                : 1.0;
  }
};

class PacketNetwork {
 public:
  enum class Router {
    Static,    ///< design-time shortest paths, never revisited
    QRouting,  ///< per-node RL on observed delays (the CPN loop)
  };

  struct Params {
    Router router = Router::QRouting;
    double alpha = 0.2;        ///< Q-routing learning rate
    double epsilon = 0.05;     ///< exploration probability
    std::size_t ttl_hops = 64; ///< drop packets after this many hops
    double buffer_factor = 4.0;  ///< max in-flight per link, x capacity
    double drop_penalty = 200.0; ///< Q backup value for a buffer drop
    /// Self-aware DoS defence (Gelenbe & Loukas [39]): every node tracks
    /// the rate of traffic it forwards towards each destination; traffic
    /// exceeding `dest_rate_cap` packets/tick is shed upstream, so a flood
    /// is strangled near its sources instead of converging on the victim.
    bool dos_defence = false;
    double dest_rate_cap = 1.0;
    std::uint64_t seed = 41;
  };

  PacketNetwork(Topology topo, Params p);

  /// Injects one packet at `src` for `dst`. `legit` packets feed the
  /// statistics; attack packets only create load.
  void inject(std::size_t src, std::size_t dst, bool legit);
  /// Advances one tick: transits progress, arrivals are re-routed/absorbed.
  void step();
  void run(std::size_t ticks);
  [[nodiscard]] double now() const noexcept { return now_; }
  /// Drives step() through `engine` every `period` (order 0 = dynamics).
  /// Bind the traffic generator *before* the network so each tick's
  /// injections precede the transit step, as in the synchronous loop.
  void bind(sim::Engine& engine, double period = 1.0);
  /// Emits one kObservation per legit delivery (value = latency) and one
  /// kFailure per drop (detail = "shed"/"dead-link"/"buffer"/"ttl"/
  /// "no-route"). Non-owning; null disables emission.
  void set_telemetry(sim::TelemetryBus* bus);

  /// Statistics since the last harvest (legit traffic only).
  CpnStats harvest();

  /// Packets currently in flight on link `l`.
  [[nodiscard]] std::size_t link_load(std::size_t l) const {
    return in_flight_[l];
  }
  /// Mean in-flight load across links (a coarse congestion sensor).
  [[nodiscard]] double mean_load() const;
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  /// Exploration boost hook: the meta level raises ε after drift so the
  /// router re-discovers routes, then decays it back per tick.
  void boost_exploration(double eps, double decay = 0.995);
  /// Packets shed by the DoS defence so far (any traffic class).
  [[nodiscard]] std::size_t defence_drops() const noexcept {
    return defence_drops_;
  }
  /// Takes link `l` down: everything sent onto it is lost (the Q-router
  /// learns this through its drop penalty; static routing keeps trying).
  void fail_link(std::size_t l) { dead_[l] = true; }
  void restore_link(std::size_t l) { dead_[l] = false; }
  [[nodiscard]] bool link_dead(std::size_t l) const { return dead_[l]; }
  /// Fault surface: multiplies link `l`'s latency. Packets already in
  /// flight keep their old transit times, so a spike reorders arrivals
  /// relative to later sends on other routes. 1.0 restores nominal.
  void set_link_slowdown(std::size_t l, double factor) {
    slowdown_[l] = std::max(1.0, factor);
  }
  [[nodiscard]] double link_slowdown(std::size_t l) const {
    return slowdown_[l];
  }
  [[nodiscard]] double epsilon() const noexcept { return eps_; }
  [[nodiscard]] std::size_t in_flight_total() const;

 private:
  struct Packet {
    std::size_t dst = 0;
    std::size_t at = 0;        ///< node the packet departed from
    std::size_t to = 0;        ///< node it is heading to
    std::size_t prev = 0;      ///< node before `at` (loop avoidance)
    std::size_t link = 0;
    double remaining = 0.0;    ///< ticks left on the link
    double sent_at = 0.0;      ///< when it entered the current link
    double born = 0.0;
    std::size_t hops = 0;
    bool legit = true;
  };

  [[nodiscard]] double& q(std::size_t node, std::size_t dst,
                          std::size_t nbr_index);
  [[nodiscard]] std::size_t choose_next(std::size_t node, std::size_t dst,
                                        std::size_t prev);
  /// Returns false (and drops the packet) when the link buffer is full;
  /// the Q-router also learns from the drop.
  bool send(Packet& pkt, std::size_t from, std::size_t to);
  void arrive(Packet pkt);
  [[nodiscard]] double link_latency(std::size_t l) const;

  Topology topo_;
  Params p_;
  sim::Rng rng_;
  double now_ = 0.0;
  double eps_;
  double eps_decay_ = 1.0;
  double eps_floor_;

  std::vector<Packet> flying_;
  std::vector<Packet> arrivals_;  ///< per-tick scratch, reused across steps
  std::vector<std::size_t> in_flight_;
  std::vector<bool> dead_;
  std::vector<double> slowdown_;  ///< fault-injected latency multipliers
  // Q[node][dst][neighbour-slot]: estimated remaining delivery time.
  std::vector<double> q_;
  std::size_t max_degree_ = 0;

  // DoS defence state: per (node, dst) forwarded-rate estimate.
  std::vector<double> fwd_count_;  ///< packets forwarded this tick
  std::vector<double> fwd_rate_;   ///< EWMA packets/tick
  std::size_t defence_drops_ = 0;

  sim::TelemetryBus* telemetry_ = nullptr;
  sim::SubjectId subject_ = 0;

  std::size_t injected_ = 0, delivered_ = 0, dropped_ = 0;
  sim::RunningStats latency_;
  sim::Histogram latency_hist_{0.0, 400.0, 200};
  sim::RunningStats hops_;
};

}  // namespace sa::cpn
