// Discrete-event simulation engine.
//
// A minimal, deterministic DES kernel: events are (time, order, sequence,
// action) tuples in a binary heap. All substrates (svc, cloud, multicore,
// cpn) can schedule their dynamics through one Engine instance via their
// bind() adapters (see each substrate's simulator/controller), which is how
// core::AgentRuntime co-schedules agents, reward delivery, knowledge
// exchange and substrate ticks at independent periods.
//
// Determinism contract:
//  * Ties in time break by `order` (lower first), then by scheduling
//    sequence (earlier at() call first). Periodic streams created by
//    every() re-schedule on each firing, so at a coincidence of two
//    equal-order streams the LONGER-period stream runs first (its event was
//    scheduled further in the past). When the intent is "dynamics before
//    control at the same instant", encode it with `order` — the convention
//    used throughout is: fault injection at order -1 (sa::fault — faults
//    landing at t are in force before anything else at t runs), substrate
//    dynamics at order 0, agent/control steps at order 1, knowledge
//    exchange at order 2 — rather than relying on scheduling age.
//  * every(period) fires at base + n*period computed by multiplication,
//    not by accumulating now+period, so periodic events do not drift: the
//    100th firing of every(0.005) lands exactly on t=0.5 and coincides
//    with a control event scheduled there.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace sa::sim {

/// Simulated time in abstract seconds.
using Time = double;

class Engine {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }
  /// Number of events executed so far.
  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }
  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Schedules `action` at absolute time `t` (must be >= now()). Events at
  /// equal time run in ascending `order`, then in scheduling order.
  void at(Time t, Action action, int order = 0) {
    heap_.push(Ev{t, order, seq_++, std::move(action)});
  }
  /// Schedules `action` after a delay (>= 0) from now.
  void in(Time delay, Action action, int order = 0) {
    at(now_ + delay, std::move(action), order);
  }
  /// Schedules `action` every `period` starting at now()+period, until it
  /// returns false or the run ends. The n-th firing is at now()+n*period
  /// (computed multiplicatively — no floating-point drift across firings).
  void every(Time period, std::function<bool()> action, int order = 0) {
    schedule_periodic(now_, period, 1, std::move(action), order);
  }

  /// Runs until the event queue empties or simulated time reaches `horizon`.
  /// Events scheduled exactly at the horizon still execute.
  void run_until(Time horizon) {
    while (!heap_.empty() && heap_.top().t <= horizon) {
      step();
    }
    now_ = std::max(now_, horizon);
  }
  /// Runs the entire queue to exhaustion (use with bounded workloads).
  void run() {
    while (!heap_.empty()) step();
  }
  /// Executes exactly one event if present; returns whether one ran.
  bool step() {
    if (heap_.empty()) return false;
    // std::priority_queue::top() is const&; moving requires const_cast, so we
    // copy the small struct out instead (Action is a shared-state function).
    Ev ev = heap_.top();
    heap_.pop();
    now_ = ev.t;
    ++executed_;
    if (profile_) {
      const auto wall0 = std::chrono::steady_clock::now();
      ev.action();
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - wall0;
      profile_(ev.t, ev.order, wall.count());
    } else {
      ev.action();
    }
    return true;
  }

  /// Self-profiling hook: called after every executed event with its sim
  /// time, order, and measured wall-clock handler cost in seconds. Wall
  /// times belong in a MetricsRegistry, never in simulation logic or the
  /// trace file — they are not reproducible.
  using ProfileHook = std::function<void(Time t, int order, double wall_s)>;
  void set_profile_hook(ProfileHook hook) { profile_ = std::move(hook); }
  /// Discards all pending events (end of scenario teardown).
  void clear() {
    heap_ = {};
  }

 private:
  void schedule_periodic(Time base, Time period, std::uint64_t n,
                         std::function<bool()> action, int order) {
    at(base + static_cast<Time>(n) * period,
       [this, base, period, n, order, action = std::move(action)]() mutable {
         if (action()) {
           schedule_periodic(base, period, n + 1, std::move(action), order);
         }
       },
       order);
  }

  struct Ev {
    Time t;
    int order;
    std::uint64_t seq;
    Action action;
    bool operator>(const Ev& o) const noexcept {
      if (t != o.t) return t > o.t;
      if (order != o.order) return order > o.order;
      return seq > o.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> heap_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t executed_ = 0;
  ProfileHook profile_;
};

}  // namespace sa::sim
