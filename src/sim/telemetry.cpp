#include "sim/telemetry.hpp"

#include <chrono>

namespace sa::sim {

namespace {

// Linear-scan intern table: category/subject populations are small (a few
// to a few hundred) and interning happens at wiring time, so a scan keeps
// the data structure trivially deterministic.
std::uint32_t intern(std::vector<std::string>& names, std::string_view name) {
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

}  // namespace

TelemetryBus::TelemetryBus(bool enabled) : enabled_(enabled) {
  // Must match the kDecision/kObservation/kFailure constants.
  category_names_ = {"decision", "observation", "failure"};
  per_category_.resize(category_names_.size());
}

CategoryId TelemetryBus::intern_category(std::string_view name) {
  const CategoryId id = intern(category_names_, name);
  if (per_category_.size() < category_names_.size()) {
    per_category_.resize(category_names_.size());
  }
  return id;
}

SubjectId TelemetryBus::intern_subject(std::string_view name) {
  return intern(subject_names_, name);
}

void TelemetryBus::enable_histogram(CategoryId category, double lo, double hi,
                                    std::size_t bins) {
  per_category_.at(category).hist =
      std::make_unique<Histogram>(lo, hi, bins);
}

void TelemetryBus::record_impl(double t, CategoryId category,
                               SubjectId subject, double value,
                               std::string_view detail) {
  PerCategory& pc = per_category_.at(category);
  ++pc.count;
  pc.values.add(value);
  if (pc.hist) pc.hist->add(value);
  ++total_;
  if (sinks_.empty()) return;
  const TelemetryEvent ev{t, category, subject, value, detail};
  for (TelemetrySink* sink : sinks_) sink->on_event(ev);
}

void RingBufferSink::on_event(const TelemetryEvent& ev) {
  ++seen_;
  Rec rec{ev.t, ev.category, ev.subject, ev.value, std::string(ev.detail)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
    return;
  }
  ring_[head_] = std::move(rec);
  head_ = (head_ + 1) % capacity_;
}

const RingBufferSink::Rec& RingBufferSink::at(std::size_t i) const {
  return ring_.at((head_ + i) % ring_.size());
}

std::vector<const RingBufferSink::Rec*> RingBufferSink::by_category(
    CategoryId c) const {
  std::vector<const Rec*> out;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Rec& r = at(i);
    if (r.category == c) out.push_back(&r);
  }
  return out;
}

std::vector<const RingBufferSink::Rec*> RingBufferSink::by_subject(
    SubjectId s) const {
  std::vector<const Rec*> out;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Rec& r = at(i);
    if (r.subject == s) out.push_back(&r);
  }
  return out;
}

void RingBufferSink::clear() {
  ring_.clear();
  head_ = 0;
}

std::vector<RingBufferSink::Rec> FanoutSink::Subscription::drain(
    long wait_ms) {
  std::unique_lock lk(mu_);
  if (queue_.empty() && wait_ms > 0) {
    cv_.wait_for(lk, std::chrono::milliseconds(wait_ms),
                 [this] { return !queue_.empty(); });
  }
  std::vector<RingBufferSink::Rec> out;
  out.swap(queue_);
  return out;
}

bool FanoutSink::Subscription::offer(const TelemetryEvent& ev) {
  std::unique_lock lk(mu_, std::try_to_lock);
  if (!lk.owns_lock() || queue_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  queue_.push_back(
      {ev.t, ev.category, ev.subject, ev.value, std::string(ev.detail)});
  delivered_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
  return true;
}

std::shared_ptr<FanoutSink::Subscription> FanoutSink::subscribe() {
  auto sub = std::make_shared<Subscription>(queue_capacity_);
  const std::scoped_lock lk(mu_);
  subs_.push_back(sub);
  return sub;
}

void FanoutSink::unsubscribe(const std::shared_ptr<Subscription>& sub) {
  const std::scoped_lock lk(mu_);
  std::erase(subs_, sub);
}

std::size_t FanoutSink::subscribers() const {
  const std::scoped_lock lk(mu_);
  return subs_.size();
}

void FanoutSink::on_event(const TelemetryEvent& ev) {
  const std::unique_lock lk(mu_, std::try_to_lock);
  if (!lk.owns_lock()) {
    dropped_contended_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (subs_.empty()) return;
  offered_.fetch_add(1, std::memory_order_relaxed);
  for (const auto& sub : subs_) {
    if (!sub->offer(ev)) {
      dropped_overflow_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace sa::sim
