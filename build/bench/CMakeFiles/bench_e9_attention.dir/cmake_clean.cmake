file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_attention.dir/bench_e9_attention.cpp.o"
  "CMakeFiles/bench_e9_attention.dir/bench_e9_attention.cpp.o.d"
  "bench_e9_attention"
  "bench_e9_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
