// Steady-state allocation contract of the serve plane's self-observability
// hot path: once a ServerStats exists, recording requests, queue waits,
// byte counts, lifecycle ticks and parse rejections must never touch the
// heap — including requests that enter the pre-sized slow-request ring.
// This is the `ctest -L perf` discipline of tests/perf/ applied to the
// stats added for the per-route latency histograms.
//
// This binary owns its own global operator-new counter (one counter per
// binary is the rule), so no other suites may be linked into it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "serve/stats.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace sa::serve;

std::uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

TEST(ServeStatsAlloc, HistogramRecordIsAllocFree) {
  LatencyHistogram h;
  h.record(1e-3);  // warm (nothing to warm, but keep the shape uniform)
  const auto before = allocs();
  for (int i = 0; i < 10000; ++i) {
    h.record(1e-6 * static_cast<double>(i + 1));
  }
  h.record(0.0);
  h.record(60.0);  // overflow bucket
  EXPECT_EQ(allocs(), before) << "LatencyHistogram::record allocated";
}

TEST(ServeStatsAlloc, RequestPathIsAllocFreeIncludingSlowRingWrites) {
  // Threshold 0 routes EVERY request through the slow-ring branch, the
  // most allocation-prone path (it is a vector write — pre-sized at
  // construction, never grown).
  ServerStats stats(4, /*slow_threshold_s=*/0.0, /*slow_ring=*/32);
  stats.set_sim_time(1.5);
  for (unsigned w = 0; w < 4; ++w) {
    stats.record_request(w, RouteClass::Metrics, 1e-3, 200, 64);  // warm
  }
  const auto before = allocs();
  for (int i = 0; i < 10000; ++i) {
    const auto worker = static_cast<unsigned>(i & 3);
    const auto route = static_cast<RouteClass>(i % 6);
    stats.record_request(worker, route, 1e-5 * static_cast<double>(i % 100),
                         200, 512);
    stats.record_queue_wait(worker, 2e-6);
    stats.add_request_bytes(worker, 128);
    stats.add_response_bytes(worker, 512);
  }
  EXPECT_EQ(allocs(), before) << "request recording allocated";
}

TEST(ServeStatsAlloc, LifecycleAndRejectTicksAreAllocFree) {
  ServerStats stats(2);
  stats.on_parse_reject(0, 400);  // warm
  const auto before = allocs();
  for (int i = 0; i < 10000; ++i) {
    stats.connection_opened();
    stats.on_keepalive_reuse(0);
    stats.on_write_timeout(1);
    stats.on_parse_reject(0, i % 2 == 0 ? 400 : 418);
    stats.set_sim_time(static_cast<double>(i));
    stats.connection_closed();
  }
  EXPECT_EQ(allocs(), before) << "lifecycle ticks allocated";
}

}  // namespace
