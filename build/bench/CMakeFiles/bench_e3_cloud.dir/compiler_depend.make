# Empty compiler generated dependencies file for bench_e3_cloud.
# This may be replaced when dependencies are built.
