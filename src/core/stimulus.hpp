// Stimulus awareness: the basic level.
//
// Tracks each observed signal with a recency-weighted mean/variance model,
// mirrors raw readings into the knowledge base, and flags *novel* stimuli —
// readings far from the learned baseline — as events. This is the level a
// purely reactive (non-self-aware) system also has; everything above it is
// what the paper adds.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "learn/estimators.hpp"
#include "sim/trace.hpp"

namespace sa::core {

/// An out-of-baseline reading detected this step.
struct StimulusEvent {
  std::string signal;
  double value = 0.0;
  double zscore = 0.0;
  double time = 0.0;
  /// Causal chain id assigned by a traced agent (0 when untraced); lets a
  /// decision cite the exact stimulus that informed it.
  sim::TraceId trace_id = 0;
};

class StimulusAwareness final : public AwarenessProcess {
 public:
  struct Params {
    double alpha = 0.1;        ///< EWMA reactivity for the baseline model
    double novelty_z = 3.0;    ///< |z| threshold for an event
    std::size_t min_samples = 8;  ///< suppress events during warm-up
  };

  StimulusAwareness() : StimulusAwareness(Params{}) {}
  explicit StimulusAwareness(Params p) : p_(p) {}

  [[nodiscard]] Level level() const override { return Level::Stimulus; }
  [[nodiscard]] std::string name() const override { return "stimulus"; }

  /// Mirrors each observed signal to the KB (key = signal name, Public) and
  /// writes "stimulus.<sig>.novel" = z-score when an event fires.
  void update(double t, const Observation& obs, KnowledgeBase& kb) override;

  /// Events fired on the most recent update().
  [[nodiscard]] const std::vector<StimulusEvent>& events() const noexcept {
    return events_;
  }
  /// Mutable view for the owning agent to stamp trace ids onto this
  /// step's events.
  [[nodiscard]] std::vector<StimulusEvent>& events() noexcept {
    return events_;
  }
  /// Learned baseline mean of a signal (0 if unseen).
  [[nodiscard]] double baseline(const std::string& signal) const;
  /// Fraction of known signals past warm-up.
  [[nodiscard]] double quality() const override;
  /// Forgets baselines (meta-triggered on drift).
  void reconfigure() override;

 private:
  Params p_;
  std::map<std::string, learn::EwmaVar> models_;
  std::vector<StimulusEvent> events_;
};

}  // namespace sa::core
