// Engine timeline export/import (the tentpole seam, ctest -L ckpt).
//
// A run checkpointed at time T and restored into a freshly wired engine
// must produce the byte-identical remaining trajectory: periodic streams
// re-arm at their exact (base, n) phase, mid-run one-shots are rebuilt by
// tag rebinders from their opaque payloads, and (t, order, seq) survive
// verbatim so same-instant tie-breaks replay identically. Every error
// path is typed: untagged events refuse to export, unknown tags refuse to
// import, and a drifted period or flipped kind is a shape mismatch — not
// a silently different world.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/state.hpp"
#include "sim/engine.hpp"

namespace sa::ckpt {
namespace {

constexpr sim::EventTag kTick = sim::event_tag("test.tick");
constexpr sim::EventTag kRetry = sim::event_tag("test.retry");
constexpr sim::EventTag kLate = sim::event_tag("test.late");

std::string stamp(const char* what, double t) {
  return std::string(what) + "@" + std::to_string(t);
}

/// Wires the test world: a periodic tick that (once, at t == 3) schedules
/// a payload-carrying one-shot, plus a static far-future one-shot. The
/// same function runs for the original build and, under begin_restore(),
/// for the rebuilt one.
void wire(sim::Engine& e, std::vector<std::string>& log) {
  e.every_tagged(kTick, 1.0, [&e, &log] {
    log.push_back(stamp("tick", e.now()));
    if (e.now() == 3.0) {
      std::string payload = "attempt-1";
      e.in_tagged(
          kRetry, 2.5, [&log, &e, payload] { log.push_back(stamp(("retry:" + payload).c_str(), e.now())); },
          0, payload);
    }
    return true;
  });
  e.at_tagged(kLate, 7.5, [&log, &e] { log.push_back(stamp("late", e.now())); });
}

/// The restore-side extra: how to rebuild the mid-run one-shot from its
/// checkpointed payload (wire() cannot — its scheduling site is inside a
/// tick that already fired before the checkpoint).
void register_rebinders(sim::Engine& e, std::vector<std::string>& log) {
  e.register_rebinder(kRetry, [&log, &e](std::string_view payload) {
    std::string p(payload);
    return [&log, &e, p] { log.push_back(stamp(("retry:" + p).c_str(), e.now())); };
  });
}

TEST(EngineCkpt, RestoredTimelineReplaysByteIdentically) {
  // Reference: run to T=4.2, snapshot, continue to 10.
  sim::Engine a;
  std::vector<std::string> log_a;
  wire(a, log_a);
  a.run_until(4.2);
  const std::size_t prefix = log_a.size();
  Buffer snap;
  ASSERT_TRUE(save_engine(a, snap).ok());
  a.run_until(10.0);
  const std::vector<std::string> expected(log_a.begin() + prefix, log_a.end());
  ASSERT_FALSE(expected.empty());

  // Restore: rebuild under begin_restore(), import, continue to 10.
  sim::Engine b;
  std::vector<std::string> log_b;
  b.begin_restore();
  wire(b, log_b);
  register_rebinders(b, log_b);
  Cursor c(snap.data());
  ASSERT_TRUE(restore_engine(c, b).ok());
  EXPECT_FALSE(b.restoring());
  EXPECT_EQ(b.now(), 4.2);

  // Attestation before running: the restored engine re-exports to the
  // same bytes the checkpoint holds.
  Buffer reexport;
  ASSERT_TRUE(save_engine(b, reexport).ok());
  EXPECT_EQ(reexport.data(), snap.data());

  b.run_until(10.0);
  EXPECT_EQ(log_b, expected);
}

TEST(EngineCkpt, UntaggedPendingEventRefusesExport) {
  sim::Engine e;
  e.at(1.0, [] {});
  Buffer out;
  const Status st = save_engine(e, out);
  EXPECT_EQ(st.code, Errc::kUntaggedEvent);
  EXPECT_NE(st.detail.find("untagged"), std::string::npos);
}

TEST(EngineCkpt, UnknownTagRefusesImport) {
  sim::Engine a;
  std::vector<std::string> log;
  wire(a, log);
  a.run_until(0.5);
  Buffer snap;
  ASSERT_TRUE(save_engine(a, snap).ok());

  sim::Engine b;
  b.begin_restore();  // nothing re-registered
  Cursor c(snap.data());
  const Status st = restore_engine(c, b);
  EXPECT_EQ(st.code, Errc::kUnboundTag);
}

TEST(EngineCkpt, DriftedPeriodIsShapeMismatch) {
  sim::Engine a;
  std::vector<std::string> log;
  wire(a, log);
  a.run_until(0.5);
  Buffer snap;
  ASSERT_TRUE(save_engine(a, snap).ok());

  sim::Engine b;
  std::vector<std::string> log_b;
  b.begin_restore();
  b.every_tagged(kTick, 2.0, [] { return true; });  // was 1.0
  b.at_tagged(kLate, 7.5, [] {});
  Cursor c(snap.data());
  const Status st = restore_engine(c, b);
  EXPECT_EQ(st.code, Errc::kShapeMismatch);
  EXPECT_NE(st.detail.find("period"), std::string::npos);
}

TEST(EngineCkpt, PeriodicOneShotKindFlipIsShapeMismatch) {
  sim::Engine a;
  std::vector<std::string> log;
  wire(a, log);
  a.run_until(0.5);
  Buffer snap;
  ASSERT_TRUE(save_engine(a, snap).ok());

  sim::Engine b;
  b.begin_restore();
  b.at_tagged(kTick, 1.0, [] {});  // periodic in the checkpoint
  b.at_tagged(kLate, 7.5, [] {});
  Cursor c(snap.data());
  const Status st = restore_engine(c, b);
  EXPECT_EQ(st.code, Errc::kShapeMismatch);
}

TEST(EngineCkpt, ImportOutsideRestoreModeFails) {
  sim::Engine a;
  std::vector<std::string> log;
  wire(a, log);
  Buffer snap;
  ASSERT_TRUE(save_engine(a, snap).ok());

  sim::Engine b;  // begin_restore() never called
  Cursor c(snap.data());
  EXPECT_FALSE(restore_engine(c, b).ok());
}

TEST(EngineCkpt, UntaggedSchedulingDuringRestoreFailsImport) {
  sim::Engine a;
  std::vector<std::string> log;
  wire(a, log);
  Buffer snap;
  ASSERT_TRUE(save_engine(a, snap).ok());

  sim::Engine b;
  std::vector<std::string> log_b;
  b.begin_restore();
  wire(b, log_b);
  register_rebinders(b, log_b);
  b.at(1.0, [] {});  // untagged during restore: latched, import must fail
  Cursor c(snap.data());
  EXPECT_FALSE(restore_engine(c, b).ok());
}

TEST(EngineCkpt, TimelineValueRoundTrip) {
  sim::Engine::Timeline tl;
  tl.now = 12.5;
  tl.seq = 99;
  tl.executed = 42;
  sim::Engine::TimelineEvent periodic;
  periodic.t = 13.0;
  periodic.order = -1;
  periodic.seq = 7;
  periodic.tag = sim::event_tag("p");
  periodic.is_periodic = true;
  periodic.base = 0.5;
  periodic.period = 2.5;
  periodic.n = 5;
  sim::Engine::TimelineEvent oneshot;
  oneshot.t = 14.0;
  oneshot.order = 1000;
  oneshot.seq = 8;
  oneshot.tag = sim::event_tag("o", 3);
  oneshot.is_periodic = false;
  oneshot.payload = std::string("opaque\0bytes", 12);
  tl.events = {periodic, oneshot};

  Buffer b;
  save_timeline(tl, b);
  Cursor c(b.data());
  sim::Engine::Timeline back;
  ASSERT_TRUE(load_timeline(c, back).ok());
  EXPECT_EQ(back.now, tl.now);
  EXPECT_EQ(back.seq, tl.seq);
  EXPECT_EQ(back.executed, tl.executed);
  ASSERT_EQ(back.events.size(), 2u);
  EXPECT_EQ(back.events[0].tag, periodic.tag);
  EXPECT_EQ(back.events[0].n, 5u);
  EXPECT_EQ(back.events[1].order, 1000);
  EXPECT_EQ(back.events[1].payload, oneshot.payload);

  // A zero tag in the stream is typed, not trusted.
  sim::Engine::Timeline zero = tl;
  zero.events[0].tag = 0;
  Buffer zb;
  save_timeline(zero, zb);
  Cursor zc(zb.data());
  sim::Engine::Timeline out;
  EXPECT_EQ(load_timeline(zc, out).code, Errc::kUntaggedEvent);
}

}  // namespace
}  // namespace sa::ckpt
