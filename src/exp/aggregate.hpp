// Per-variant metric aggregation for experiment grids.
//
// Collects the per-seed metric values of one variant and summarises each
// metric as mean / stddev / 95% confidence interval / min / max. NaN
// inputs are rejected loudly (a NaN metric always indicates a broken
// task, and silently propagating it would poison every summary).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "exp/grid.hpp"
#include "sim/stats.hpp"

namespace sa::exp {

struct MetricSummary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< half-width of the 95% CI (Student-t), 0 for n<2
  double min = 0.0;
  double max = 0.0;
};

class Aggregate {
 public:
  /// Adds one sample of one metric. Throws std::invalid_argument on NaN.
  void add(const std::string& metric, double value);
  /// Adds every metric of one task result.
  void add(const Metrics& metrics);

  /// Metric names in first-seen order.
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return order_;
  }
  [[nodiscard]] bool has(const std::string& metric) const;
  /// Raw accumulator; throws std::out_of_range on an unknown metric.
  [[nodiscard]] const sim::RunningStats& stats(const std::string& metric) const;
  [[nodiscard]] MetricSummary summary(const std::string& metric) const;

  /// Two-sided 95% Student-t critical value for `df` degrees of freedom
  /// (exact table for df <= 30, 1.960 asymptote beyond).
  [[nodiscard]] static double t_critical_95(std::size_t df) noexcept;

 private:
  std::vector<std::string> order_;
  std::map<std::string, sim::RunningStats> stats_;
};

}  // namespace sa::exp
