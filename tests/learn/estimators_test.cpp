#include "learn/estimators.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace sa::learn {
namespace {

TEST(Ewma, FirstSampleIsExactThanksToBiasCorrection) {
  Ewma e(0.1);
  e.add(5.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Ewma, EmptyValueIsZero) {
  Ewma e(0.3);
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
  EXPECT_EQ(e.count(), 0u);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.2);
  for (int i = 0; i < 100; ++i) e.add(3.0);
  EXPECT_NEAR(e.value(), 3.0, 1e-9);
}

TEST(Ewma, TracksStepChange) {
  Ewma e(0.2);
  for (int i = 0; i < 50; ++i) e.add(0.0);
  for (int i = 0; i < 50; ++i) e.add(10.0);
  EXPECT_GT(e.value(), 9.9);
}

TEST(Ewma, HigherAlphaReactsFaster) {
  Ewma slow(0.05), fast(0.5);
  for (int i = 0; i < 20; ++i) {
    slow.add(0.0);
    fast.add(0.0);
  }
  slow.add(10.0);
  fast.add(10.0);
  EXPECT_GT(fast.value(), slow.value());
}

TEST(Ewma, ResetClears) {
  Ewma e(0.1);
  e.add(5.0);
  e.reset();
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
  EXPECT_EQ(e.count(), 0u);
}

TEST(EwmaVar, ConstantStreamHasTinyVariance) {
  EwmaVar ev(0.1);
  for (int i = 0; i < 200; ++i) ev.add(4.0);
  EXPECT_NEAR(ev.mean(), 4.0, 1e-9);
  EXPECT_NEAR(ev.variance(), 0.0, 1e-9);
}

TEST(EwmaVar, NoisyStreamEstimatesSpread) {
  sim::Rng rng(1);
  EwmaVar ev(0.05);
  for (int i = 0; i < 5000; ++i) ev.add(rng.normal(10.0, 2.0));
  // A recency-weighted estimate never fully averages the noise away:
  // its sampling sd is ~sigma*sqrt(alpha/(2-alpha)); allow for that.
  EXPECT_NEAR(ev.mean(), 10.0, 1.0);
  EXPECT_NEAR(ev.stddev(), 2.0, 0.8);
}

TEST(WindowEstimator, NoDataMeansZeroConfidence) {
  WindowEstimator w(16);
  EXPECT_DOUBLE_EQ(w.confidence(), 0.0);
  EXPECT_DOUBLE_EQ(w.value(), 0.0);
}

TEST(WindowEstimator, ConfidenceGrowsAsWindowFills) {
  WindowEstimator w(10);
  w.add(5.0);
  const double c1 = w.confidence();
  for (int i = 0; i < 9; ++i) w.add(5.0);
  const double c2 = w.confidence();
  EXPECT_GT(c2, c1);
  EXPECT_NEAR(c2, 1.0, 1e-9);  // full window, zero dispersion
}

TEST(WindowEstimator, NoisierDataLowersConfidence) {
  WindowEstimator steady(16), noisy(16);
  sim::Rng rng(2);
  for (int i = 0; i < 16; ++i) {
    steady.add(10.0);
    noisy.add(rng.normal(10.0, 5.0));
  }
  EXPECT_GT(steady.confidence(), noisy.confidence());
}

TEST(WindowEstimator, ValueIsWindowMean) {
  WindowEstimator w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  w.add(4.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.value(), 3.0);
}

}  // namespace
}  // namespace sa::learn
