file(REMOVE_RECURSE
  "CMakeFiles/sa_cloud.dir/autoscaler.cpp.o"
  "CMakeFiles/sa_cloud.dir/autoscaler.cpp.o.d"
  "CMakeFiles/sa_cloud.dir/cluster.cpp.o"
  "CMakeFiles/sa_cloud.dir/cluster.cpp.o.d"
  "libsa_cloud.a"
  "libsa_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
