// E9 — attention under a monitoring budget (paper Section V;
// Preden et al. [55]).
//
// Claim operationalised: "resource-constrained systems must determine, for
// themselves, how to direct their limited resources, given the vast set of
// possible things they could attend to." An agent watches 16 signals but
// may sample only B per step. Four of the signals are dynamic (they drift
// and jump); twelve are near-constant housekeeping. We measure how stale
// the agent's knowledge is — the mean absolute error between each signal's
// true current value and the agent's latest knowledge of it — under
// uniform (round-robin), random, and self-aware (volatility-driven
// adaptive) attention, across budgets.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "exp/harness.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;

constexpr int kSteps = 2000;
constexpr std::size_t kSignals = 16;
constexpr std::size_t kDynamic = 4;
const std::vector<std::uint64_t> kSeeds{91, 92, 93};

struct World {
  std::vector<double> value;
  sim::Rng rng;
  explicit World(std::uint64_t seed) : value(kSignals, 0.0), rng(seed) {
    for (std::size_t s = 0; s < kSignals; ++s) {
      value[s] = rng.uniform(0.0, 10.0);
    }
  }
  void step(int t) {
    // Dynamic signals: sinusoid + occasional jumps. Static: tiny jitter.
    for (std::size_t s = 0; s < kSignals; ++s) {
      if (s < kDynamic) {
        value[s] = 10.0 +
                   5.0 * std::sin(0.05 * t + static_cast<double>(s)) +
                   (rng.chance(0.01) ? rng.uniform(-8.0, 8.0) : 0.0);
      } else {
        value[s] += rng.normal(0.0, 0.01);
      }
    }
  }
};

double run(core::AttentionManager::Strategy strategy, std::size_t budget,
           std::uint64_t seed) {
  World world(seed);
  core::AgentConfig cfg;
  cfg.seed = seed;
  cfg.levels = core::LevelSet::minimal();
  cfg.attention_strategy = strategy;
  cfg.attention_budget = budget;
  core::SelfAwareAgent agent("watcher", cfg);
  for (std::size_t s = 0; s < kSignals; ++s) {
    agent.add_sensor("sig" + std::to_string(s),
                     [&world, s] { return world.value[s]; });
  }

  sim::RunningStats staleness;
  for (int t = 0; t < kSteps; ++t) {
    world.step(t);
    agent.step(t);
    if (t < 100) continue;  // warm-up
    for (std::size_t s = 0; s < kSignals; ++s) {
      const double known =
          agent.knowledge().number("sig" + std::to_string(s), 0.0);
      staleness.add(std::fabs(known - world.value[s]));
    }
  }
  return staleness.mean();
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e9_attention", argc, argv);
  std::cout << "E9: directing a limited monitoring budget over " << kSignals
            << " signals (" << kDynamic
            << " dynamic, rest near-constant). Metric: mean |known - true| "
               "across all signals (lower is better); "
            << h.seeds_for(kSeeds).size() << " seeds.\n\n";

  using Strategy = core::AttentionManager::Strategy;
  const std::vector<std::size_t> budgets{2, 4, 8, 16};
  const std::vector<std::pair<std::string, Strategy>> strategies{
      {"rr", Strategy::RoundRobin},
      {"random", Strategy::Random},
      {"adaptive", Strategy::Adaptive}};

  exp::Grid g;
  g.name = "e9";
  g.seeds = kSeeds;
  for (const auto budget : budgets) {
    for (const auto& [label, strategy] : strategies) {
      g.variants.push_back(label + "@" + std::to_string(budget));
    }
  }
  g.task = [&](const exp::TaskContext& ctx) -> exp::TaskOutput {
    const std::size_t budget = budgets[ctx.variant / strategies.size()];
    const auto strategy = strategies[ctx.variant % strategies.size()].second;
    return {{{"staleness", run(strategy, budget, ctx.seed)}}};
  };
  const auto res = h.run(std::move(g));

  sim::Table t("E9.1  knowledge staleness by attention strategy and budget",
               {"budget", "round-robin", "random", "adaptive",
                "adaptive_gain"});
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    const std::size_t base = b * strategies.size();
    const double rr = res.mean(base + 0, "staleness");
    const double rnd = res.mean(base + 1, "staleness");
    const double ad = res.mean(base + 2, "staleness");
    const double gain = ad > 1e-12 ? rr / ad : 1.0;
    t.add_row({static_cast<std::int64_t>(budgets[b]), rr, rnd, ad, gain});
  }
  t.print(std::cout);
  std::cout << "adaptive_gain = round-robin error / adaptive error "
               "(>1 means self-aware attention wins).\n";
  return h.finish();
}
