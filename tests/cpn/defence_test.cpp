// Tests for the self-aware DoS defence (per-node per-destination rate
// shedding) and the finite link buffers added with it.
#include <gtest/gtest.h>

#include "cpn/network.hpp"
#include "cpn/traffic.hpp"

namespace sa::cpn {
namespace {

PacketNetwork::Params base_params(bool defence) {
  PacketNetwork::Params p;
  p.router = PacketNetwork::Router::Static;
  p.dos_defence = defence;
  p.seed = 7;
  return p;
}

TEST(DosDefence, ShedsNothingAtNormalRates) {
  const auto topo = Topology::grid(3, 4, 0, 1);
  PacketNetwork net(topo, base_params(true));
  for (int t = 0; t < 500; ++t) {
    if (t % 3 == 0) net.inject(0, 11, true);
    net.step();
  }
  EXPECT_EQ(net.defence_drops(), 0u);
  EXPECT_GT(net.harvest().delivery_rate(), 0.99);
}

TEST(DosDefence, ShedsFloodTraffic) {
  const auto topo = Topology::grid(3, 4, 0, 1);
  PacketNetwork net(topo, base_params(true));
  for (int t = 0; t < 500; ++t) {
    for (int i = 0; i < 10; ++i) net.inject(0, 11, false);  // flood
    net.step();
  }
  EXPECT_GT(net.defence_drops(), 1000u);
}

TEST(DosDefence, DisabledDefenceNeverSheds) {
  const auto topo = Topology::grid(3, 4, 0, 1);
  PacketNetwork net(topo, base_params(false));
  for (int t = 0; t < 200; ++t) {
    for (int i = 0; i < 10; ++i) net.inject(0, 11, false);
    net.step();
  }
  EXPECT_EQ(net.defence_drops(), 0u);
}

TEST(DosDefence, ProtectsOtherFlowsDuringFlood) {
  const auto topo = Topology::grid(4, 6, 0, 2);
  auto run = [&](bool defence) {
    PacketNetwork net(topo, base_params(defence));
    for (int t = 0; t < 2000; ++t) {
      // Protected flow and flood enter at the same node and compete for
      // link 2-3; distinct destinations, so the defence can tell them
      // apart where raw buffers cannot.
      for (int i = 0; i < 6; ++i) net.inject(2, 5, false);  // flood
      if (t % 5 == 0) net.inject(2, 4, true);
      net.step();
    }
    return net.harvest();
  };
  const auto without = run(false);
  const auto with = run(true);
  EXPECT_GT(with.delivery_rate(), without.delivery_rate());
}

TEST(FiniteBuffers, FullLinkDropsInsteadOfQueueingForever) {
  // One path network: 2 nodes, 1 link of capacity 8 -> buffer 32.
  Topology topo(2, {{0, 1, 1.0, 8.0}});
  PacketNetwork::Params p;
  p.router = PacketNetwork::Router::Static;
  p.seed = 3;
  PacketNetwork net(topo, p);
  for (int i = 0; i < 100; ++i) net.inject(0, 1, true);
  EXPECT_LE(net.in_flight_total(), 32u);
  net.run(2000);
  const auto s = net.harvest();
  EXPECT_EQ(s.delivered + s.dropped, 100u);
  EXPECT_GT(s.dropped, 0u);
}

TEST(FiniteBuffers, QRouterLearnsFromDrops) {
  // Two parallel 2-hop routes 0->1->3 and 0->2->3; saturate link 0-1 with
  // cross traffic so drops teach the router to prefer 0-2.
  Topology topo(4, {{0, 1, 1.0, 2.0},
                    {0, 2, 2.0, 8.0},
                    {1, 3, 1.0, 8.0},
                    {2, 3, 2.0, 8.0}});
  PacketNetwork::Params p;
  p.router = PacketNetwork::Router::QRouting;
  p.epsilon = 0.02;
  p.seed = 4;
  PacketNetwork net(topo, p);
  for (int t = 0; t < 3000; ++t) {
    net.inject(0, 3, true);
    net.inject(0, 1, false);  // keeps the cheap link full
    net.step();
  }
  const auto s = net.harvest();
  // With drop-penalty learning the delivery rate stays high despite the
  // preferred (shorter) route being saturated.
  EXPECT_GT(s.delivery_rate(), 0.8);
}

}  // namespace
}  // namespace sa::cpn
