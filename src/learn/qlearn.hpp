// Tabular Q-learning.
//
// Used where a decision has delayed consequences (CPN routing, autoscaling
// with cool-down). States and actions are dense indices; the substrate maps
// its domain onto them.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sim/rng.hpp"

namespace sa::learn {

/// Classic tabular Q-learning with ε-greedy behaviour policy.
class QLearner {
 public:
  struct Params {
    double alpha = 0.1;     ///< learning rate
    double gamma = 0.9;     ///< discount factor
    double epsilon = 0.1;   ///< exploration probability
    double eps_decay = 1.0; ///< multiplicative ε decay per decision
    double eps_min = 0.01;  ///< floor for decayed ε
    double q0 = 0.0;        ///< optimistic initialisation value
  };

  QLearner(std::size_t states, std::size_t actions)
      : QLearner(states, actions, Params{}) {}
  QLearner(std::size_t states, std::size_t actions, Params p)
      : p_(p), actions_(actions), q_(states * actions, p.q0) {}

  /// ε-greedy action selection in state `s`.
  std::size_t select(std::size_t s, sim::Rng& rng) {
    const double eps = std::max(p_.eps_min, eps_);
    eps_ *= p_.eps_decay;
    if (rng.chance(eps)) return rng.below(actions_);
    return greedy(s);
  }
  /// Greedy (exploitation-only) action in state `s`.
  [[nodiscard]] std::size_t greedy(std::size_t s) const {
    const double* row = &q_[s * actions_];
    return static_cast<std::size_t>(
        std::max_element(row, row + actions_) - row);
  }
  /// Standard one-step Q-learning backup for transition (s,a,r,s').
  void update(std::size_t s, std::size_t a, double r, std::size_t s_next) {
    const double* row = &q_[s_next * actions_];
    const double max_next = *std::max_element(row, row + actions_);
    double& q = q_[s * actions_ + a];
    q += p_.alpha * (r + p_.gamma * max_next - q);
  }
  /// Terminal-transition backup (no bootstrap).
  void update_terminal(std::size_t s, std::size_t a, double r) {
    double& q = q_[s * actions_ + a];
    q += p_.alpha * (r - q);
  }

  [[nodiscard]] double q(std::size_t s, std::size_t a) const {
    return q_[s * actions_ + a];
  }
  [[nodiscard]] std::size_t states() const {
    return q_.size() / actions_;
  }
  [[nodiscard]] std::size_t actions() const { return actions_; }
  void reset() {
    std::fill(q_.begin(), q_.end(), p_.q0);
    eps_ = p_.epsilon;
  }

 private:
  Params p_;
  std::size_t actions_;
  std::vector<double> q_;
  double eps_ = p_.epsilon;
};

}  // namespace sa::learn
