file(REMOVE_RECURSE
  "CMakeFiles/camera_network.dir/camera_network.cpp.o"
  "CMakeFiles/camera_network.dir/camera_network.cpp.o.d"
  "camera_network"
  "camera_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camera_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
