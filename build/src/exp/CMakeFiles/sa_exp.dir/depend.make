# Empty dependencies file for sa_exp.
# This may be replaced when dependencies are built.
