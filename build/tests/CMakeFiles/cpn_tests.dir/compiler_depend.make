# Empty compiler generated dependencies file for cpn_tests.
# This may be replaced when dependencies are built.
