// Collective self-awareness.
//
// The framework's third concept (paper, Section IV): "self-awareness can be
// a property of collective systems, even when there is no single component
// with a global awareness of the whole system" (Mitchell [45]). This module
// provides three ways for a population of agents to maintain a shared
// estimate of a global quantity (e.g. mean load, population size):
//
//   * CentralAggregator  — the classic baseline: every node reports to a
//     coordinator each round (single point of failure, hotspot);
//   * GossipAggregator   — push-sum gossip (Kempe et al.): fully
//     decentralised, pairwise exchanges, converges exponentially;
//   * HierarchyAggregator — k-ary aggregation tree (Guang et al. [63]):
//     partial decentralisation, deterministic convergence in tree depth.
//
// Experiment E7 compares messages, rounds-to-converge and failure
// sensitivity across the three.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace sa::core {

/// Interface: distributed estimation of the population mean of per-node
/// local values. run one `round()` at a time; `estimate(i)` is node i's
/// current belief about the global mean.
class CollectiveAggregator {
 public:
  virtual ~CollectiveAggregator() = default;
  /// (Re)initialises with one local value per node.
  virtual void reset(const std::vector<double>& values) = 0;
  /// Executes one communication round; returns messages sent.
  virtual std::size_t round(sim::Rng& rng) = 0;
  /// Node i's current estimate of the global mean.
  [[nodiscard]] virtual double estimate(std::size_t node) const = 0;
  [[nodiscard]] virtual std::size_t nodes() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Marks a node failed: it no longer sends or responds.
  virtual void fail_node(std::size_t node) = 0;

  /// Max |estimate(i) − truth| over live nodes.
  [[nodiscard]] double max_error(double truth) const;
  /// Mean |estimate(i) − truth| over live nodes.
  [[nodiscard]] double mean_error(double truth) const;
  [[nodiscard]] virtual bool alive(std::size_t node) const = 0;
};

/// Every live node sends its value to node 0, which averages and replies.
/// If node 0 has failed, the collective is blind (estimates freeze).
class CentralAggregator final : public CollectiveAggregator {
 public:
  explicit CentralAggregator(std::size_t n);
  void reset(const std::vector<double>& values) override;
  std::size_t round(sim::Rng& rng) override;
  [[nodiscard]] double estimate(std::size_t node) const override;
  [[nodiscard]] std::size_t nodes() const override { return value_.size(); }
  [[nodiscard]] std::string name() const override { return "central"; }
  void fail_node(std::size_t node) override;
  [[nodiscard]] bool alive(std::size_t node) const override {
    return alive_[node];
  }

 private:
  std::vector<double> value_;
  std::vector<double> estimate_;
  std::vector<bool> alive_;
};

/// Push-sum gossip: each node keeps (sum, weight); each round every live
/// node halves its pair and pushes half to one random live neighbour.
/// estimate = sum/weight → global mean, with no global component.
class GossipAggregator final : public CollectiveAggregator {
 public:
  explicit GossipAggregator(std::size_t n);
  void reset(const std::vector<double>& values) override;
  std::size_t round(sim::Rng& rng) override;
  [[nodiscard]] double estimate(std::size_t node) const override;
  [[nodiscard]] std::size_t nodes() const override { return sum_.size(); }
  [[nodiscard]] std::string name() const override { return "gossip"; }
  void fail_node(std::size_t node) override;
  [[nodiscard]] bool alive(std::size_t node) const override {
    return alive_[node];
  }

 private:
  std::vector<double> sum_;
  std::vector<double> weight_;
  std::vector<bool> alive_;
};

/// k-ary tree: leaves aggregate up to the root, the root broadcasts the
/// mean back down. Each full round costs 2·(n−1) messages and converges
/// exactly. A failed interior node partitions its subtree (its descendants
/// stop updating), exposing the structural fragility hierarchy trades for
/// determinism.
class HierarchyAggregator final : public CollectiveAggregator {
 public:
  HierarchyAggregator(std::size_t n, std::size_t arity = 2);
  void reset(const std::vector<double>& values) override;
  std::size_t round(sim::Rng& rng) override;
  [[nodiscard]] double estimate(std::size_t node) const override;
  [[nodiscard]] std::size_t nodes() const override { return value_.size(); }
  [[nodiscard]] std::string name() const override { return "hierarchy"; }
  void fail_node(std::size_t node) override;
  [[nodiscard]] bool alive(std::size_t node) const override {
    return alive_[node];
  }
  [[nodiscard]] std::size_t depth() const;

 private:
  [[nodiscard]] bool path_to_root_alive(std::size_t node) const;
  std::size_t arity_;
  std::vector<double> value_;
  std::vector<double> estimate_;
  std::vector<bool> alive_;
};

}  // namespace sa::core
