#include "core/time_awareness.hpp"

#include <algorithm>
#include <limits>

namespace sa::core {

void TimeAwareness::track_only(std::vector<std::string> signals) {
  only_ = std::move(signals);
}

std::size_t TimeAwareness::Ensemble::best() const {
  std::size_t b = 0;
  for (std::size_t i = 1; i < members.size(); ++i) {
    // Prefer scored members; among scored, lowest MAE wins.
    const bool i_scored = members[i].scored() > 0;
    const bool b_scored = members[b].scored() > 0;
    if (i_scored && (!b_scored || members[i].mae() < members[b].mae())) b = i;
  }
  return b;
}

TimeAwareness::Ensemble TimeAwareness::make_ensemble() const {
  Ensemble e;
  const std::size_t h = p_.score_horizon;
  e.members.emplace_back(std::make_unique<learn::NaiveForecaster>(), h);
  e.members.emplace_back(std::make_unique<learn::SesForecaster>(), h);
  e.members.emplace_back(std::make_unique<learn::HoltForecaster>(), h);
  if (p_.seasonal_period > 1) {
    e.members.emplace_back(
        std::make_unique<learn::HoltWintersForecaster>(p_.seasonal_period),
        h);
  }
  return e;
}

void TimeAwareness::update(double t, const Observation& obs,
                           KnowledgeBase& kb) {
  for (const auto& [sig, value] : obs) {
    if (!only_.empty() &&
        std::find(only_.begin(), only_.end(), sig) == only_.end()) {
      continue;
    }
    auto it = signals_.find(sig);
    if (it == signals_.end()) {
      it = signals_.emplace(sig, make_ensemble()).first;
    }
    auto& ens = it->second;
    for (auto& m : ens.members) m.observe(value);

    const std::size_t b = ens.best();
    const auto& winner = ens.members[b];
    const double conf =
        winner.scored() > 0 ? 1.0 / (1.0 + winner.mae() / p_.error_scale)
                            : 0.0;
    kb.put_number("forecast." + sig, winner.forecast(1), t, conf,
                  Scope::Private, name());
    kb.put_number("forecast." + sig + ".mae", winner.mae(), t, 1.0,
                  Scope::Private, name());
    kb.put_number("forecast." + sig + ".model", static_cast<double>(b), t, 1.0,
                  Scope::Private, name());
  }
}

double TimeAwareness::forecast(const std::string& signal,
                               std::size_t h) const {
  const auto it = signals_.find(signal);
  if (it == signals_.end()) return 0.0;
  return it->second.members[it->second.best()].forecast(h);
}

double TimeAwareness::error(const std::string& signal) const {
  const auto it = signals_.find(signal);
  if (it == signals_.end()) return std::numeric_limits<double>::max();
  const auto& winner = it->second.members[it->second.best()];
  return winner.scored() > 0 ? winner.mae()
                             : std::numeric_limits<double>::max();
}

std::string TimeAwareness::best_model(const std::string& signal) const {
  const auto it = signals_.find(signal);
  if (it == signals_.end()) return {};
  return it->second.members[it->second.best()].model().name();
}

double TimeAwareness::quality() const {
  // No tracked signals yet — neutral, not failing.
  if (signals_.empty()) return 1.0;
  double acc = 0.0;
  for (const auto& [sig, ens] : signals_) {
    (void)sig;
    const auto& winner = ens.members[ens.best()];
    acc += winner.scored() > 0
               ? 1.0 / (1.0 + winner.mae() / p_.error_scale)
               : 0.0;
  }
  return acc / static_cast<double>(signals_.size());
}

void TimeAwareness::reconfigure() { signals_.clear(); }

}  // namespace sa::core
