
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpn/network.cpp" "src/cpn/CMakeFiles/sa_cpn.dir/network.cpp.o" "gcc" "src/cpn/CMakeFiles/sa_cpn.dir/network.cpp.o.d"
  "/root/repo/src/cpn/supervisor.cpp" "src/cpn/CMakeFiles/sa_cpn.dir/supervisor.cpp.o" "gcc" "src/cpn/CMakeFiles/sa_cpn.dir/supervisor.cpp.o.d"
  "/root/repo/src/cpn/traffic.cpp" "src/cpn/CMakeFiles/sa_cpn.dir/traffic.cpp.o" "gcc" "src/cpn/CMakeFiles/sa_cpn.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
