#include "core/stimulus.hpp"

#include <cmath>

namespace sa::core {

void StimulusAwareness::update(double t, const Observation& obs,
                               KnowledgeBase& kb) {
  events_.clear();
  for (const auto& [sig, value] : obs) {
    auto [it, inserted] = models_.try_emplace(sig, p_.alpha);
    auto& model = it->second;
    const bool warm = !inserted && model.count() >= p_.min_samples;
    if (warm) {
      const double sd = model.stddev();
      const double z = sd > 1e-9 ? (value - model.mean()) / sd : 0.0;
      if (std::fabs(z) >= p_.novelty_z) {
        events_.push_back({sig, value, z, t});
        kb.put_number("stimulus." + sig + ".novel", z, t, 1.0, Scope::Private,
                      name());
      }
    }
    model.add(value);
    // Raw reading is part of the public self: it is externally observable.
    kb.put_number(sig, value, t, 1.0, Scope::Public, name());
    kb.put_number("stimulus." + sig + ".baseline", model.mean(), t,
                  warm ? 1.0 : 0.5, Scope::Private, name());
  }
}

double StimulusAwareness::baseline(const std::string& signal) const {
  const auto it = models_.find(signal);
  return it == models_.end() ? 0.0 : it->second.mean();
}

double StimulusAwareness::quality() const {
  // No signals observed yet — neutral, not failing.
  if (models_.empty()) return 1.0;
  std::size_t warm = 0;
  for (const auto& [sig, m] : models_) {
    (void)sig;
    if (m.count() >= p_.min_samples) ++warm;
  }
  return static_cast<double>(warm) / static_cast<double>(models_.size());
}

void StimulusAwareness::reconfigure() { models_.clear(); }

}  // namespace sa::core
