// Parallel experiment runner: fans a Grid's seed × variant cells out
// across a pool of worker threads.
//
// Scheduling is work-stealing over a shared atomic cursor: each worker
// repeatedly claims the next unclaimed cell and evaluates it into a
// pre-sized slot, so no locks are held while tasks run and the result
// order is always the deterministic variant-major grid order, whatever
// the execution interleaving was. A task that throws records its error
// in its own slot; the remaining cells still run to completion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/grid.hpp"

namespace sa::exp {

/// One evaluated grid cell.
struct TaskResult {
  std::size_t variant = 0;
  std::uint64_t seed = 0;
  Metrics metrics;
  std::string note;
  std::string error;    ///< non-empty iff the task threw
  double wall_s = 0.0;  ///< task wall-clock (excluded from determinism)
};

/// All cells of one grid, in variant-major order, plus aggregation helpers.
struct GridResult {
  std::string experiment;
  std::string name;
  std::vector<std::string> variants;
  std::vector<std::uint64_t> seeds;
  std::vector<TaskResult> tasks;  ///< variants.size() * seeds.size() cells
  double wall_s = 0.0;            ///< whole-grid wall-clock
  unsigned jobs = 1;              ///< worker threads actually used

  [[nodiscard]] const TaskResult& at(std::size_t variant,
                                     std::size_t seed_index) const;
  /// Number of cells whose task threw.
  [[nodiscard]] std::size_t errors() const noexcept;
  /// Aggregates every metric of one variant over its seeds (errored cells
  /// are skipped; they carry no metrics).
  [[nodiscard]] Aggregate aggregate(std::size_t variant) const;
  /// Accumulator of one (variant, metric) across seeds.
  [[nodiscard]] sim::RunningStats stats(std::size_t variant,
                                        const std::string& metric) const;
  [[nodiscard]] double mean(std::size_t variant,
                            const std::string& metric) const;
  [[nodiscard]] double sum(std::size_t variant,
                           const std::string& metric) const;
  /// First non-empty note of a variant ("" if none).
  [[nodiscard]] const std::string& note(std::size_t variant) const;
};

class Runner {
 public:
  /// `jobs` — worker threads; 0 means std::thread::hardware_concurrency().
  explicit Runner(unsigned jobs = 0);

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Evaluates every cell of `grid`. Thread-safe w.r.t. the grid: the task
  /// callable is invoked concurrently and must only touch per-cell state
  /// (plus read-only captures).
  [[nodiscard]] GridResult run(std::string_view experiment,
                               const Grid& grid) const;

 private:
  unsigned jobs_;
};

}  // namespace sa::exp
