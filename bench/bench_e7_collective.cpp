// E7 — collective self-awareness without a global component
// (paper Section IV, concept 3; Mitchell [45]; Amoretti & Cagnoni [62];
// Guang et al. [63]).
//
// Claim operationalised: a population can maintain collective
// self-knowledge (here: the global mean of a per-node quantity) without
// any node holding global state. We compare the centralised baseline with
// gossip (fully decentralised) and an aggregation hierarchy on:
//   (a) rounds and messages until every live node is within 1% of truth,
//       across population sizes;
//   (b) what survives the failure of the "most important" node.
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/collective.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;
using namespace sa::core;

const std::vector<std::uint64_t> kSeeds{71, 72, 73};

std::vector<double> make_values(std::size_t n, sim::Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(0.0, 100.0);
  return v;
}

double mean_of(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

struct Convergence {
  double rounds = 0.0;
  double messages = 0.0;
};

Convergence converge(CollectiveAggregator& agg,
                     const std::vector<double>& values, sim::Rng& rng) {
  agg.reset(values);
  const double truth = mean_of(values);
  const double tol = 0.01 * truth;
  Convergence c;
  while (agg.max_error(truth) > tol && c.rounds < 500) {
    c.messages += static_cast<double>(agg.round(rng));
    c.rounds += 1.0;
  }
  return c;
}

std::unique_ptr<CollectiveAggregator> make(const std::string& kind,
                                           std::size_t n) {
  if (kind == "central") return std::make_unique<CentralAggregator>(n);
  if (kind == "gossip") return std::make_unique<GossipAggregator>(n);
  return std::make_unique<HierarchyAggregator>(n, 2);
}

}  // namespace

int main() {
  std::cout << "E7: maintaining collective knowledge of a global mean — "
               "centralised vs gossip vs hierarchy.\nConvergence = every "
               "live node within 1% of the true mean; "
            << kSeeds.size() << " seeds.\n\n";

  sim::Table t1("E7.1  cost to converge vs population size",
                {"nodes", "scheme", "rounds", "messages"});
  for (const std::size_t n : {16, 64, 256}) {
    for (const std::string kind : {"central", "gossip", "hierarchy"}) {
      sim::RunningStats rounds, msgs;
      for (const auto seed : kSeeds) {
        sim::Rng rng(seed);
        const auto values = make_values(n, rng);
        auto agg = make(kind, n);
        const auto c = converge(*agg, values, rng);
        rounds.add(c.rounds);
        msgs.add(c.messages);
      }
      t1.add_row({static_cast<std::int64_t>(n), kind, rounds.mean(),
                  msgs.mean()});
    }
  }
  t1.print(std::cout);

  // (b) Failure of the structurally most important node: the coordinator
  // for central, the root for hierarchy, an arbitrary node for gossip.
  sim::Table t2(
      "E7.2  error after key-node failure + 30 more rounds (n=64)",
      {"scheme", "key_node", "mean_error_pct", "still_converging"});
  for (const std::string kind : {"central", "gossip", "hierarchy"}) {
    sim::RunningStats err;
    bool converging = true;
    for (const auto seed : kSeeds) {
      sim::Rng rng(seed);
      auto values = make_values(64, rng);
      auto agg = make(kind, 64);
      agg->reset(values);
      for (int r = 0; r < 3; ++r) agg->round(rng);
      agg->fail_node(0);
      // The world also moves on: survivors' values shift, so frozen
      // estimates become wrong, not just stale.
      for (std::size_t i = 1; i < values.size(); ++i) values[i] += 20.0;
      std::vector<double> live_values;
      for (std::size_t i = 1; i < values.size(); ++i) {
        live_values.push_back(values[i]);
      }
      const double truth = mean_of(live_values);
      // Re-seed the live nodes' local values (aggregators track the mean of
      // what reset() gave them; emulate the update by resetting and
      // re-failing — gossip/hierarchy handle this as a fresh epoch).
      agg->reset(values);
      agg->fail_node(0);
      double moved = 0.0;
      for (int r = 0; r < 30; ++r) moved += agg->round(rng);
      err.add(agg->mean_error(truth) / truth * 100.0);
      converging = converging && moved > 0.0;
    }
    t2.add_row({kind, std::string(kind == "gossip" ? "random" : "node 0"),
                err.mean(),
                std::string(converging ? "yes" : "no (dead)")});
  }
  t2.print(std::cout);
  return 0;
}
