// Property tests on the discrete-event engine: ordering, completeness and
// time monotonicity under random schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace sa::sim {
namespace {

class EnginePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnginePropertyTest, RandomScheduleExecutesInNondecreasingTime) {
  Engine e;
  sim::Rng rng(GetParam());
  std::vector<double> fired;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    e.at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST_P(EnginePropertyTest, NestedSchedulingLosesNothing) {
  Engine e;
  sim::Rng rng(GetParam());
  int executed = 0, scheduled = 0;
  // Events spawn children with decaying probability; every spawn must run.
  std::function<void(int)> spawn = [&](int depth) {
    ++executed;
    if (depth < 4 && rng.chance(0.6)) {
      for (int k = 0; k < 2; ++k) {
        ++scheduled;
        e.in(rng.uniform(0.1, 2.0), [&spawn, depth] { spawn(depth + 1); });
      }
    }
  };
  for (int i = 0; i < 50; ++i) {
    ++scheduled;
    e.at(rng.uniform(0.0, 10.0), [&spawn] { spawn(0); });
  }
  e.run();
  EXPECT_EQ(executed, scheduled);
  EXPECT_EQ(e.executed(), static_cast<std::size_t>(scheduled));
}

TEST_P(EnginePropertyTest, PiecewiseRunUntilEqualsOneShot) {
  sim::Rng rng(GetParam());
  std::vector<std::pair<double, int>> schedule;
  for (int i = 0; i < 200; ++i) {
    schedule.emplace_back(rng.uniform(0.0, 50.0), i);
  }
  auto run = [&](const std::vector<double>& horizons) {
    Engine e;
    std::vector<int> order;
    for (const auto& [t, id] : schedule) {
      e.at(t, [&order, id = id] { order.push_back(id); });
    }
    for (const double h : horizons) e.run_until(h);
    return order;
  };
  const auto oneshot = run({50.0});
  const auto piecewise = run({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_EQ(oneshot, piecewise);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace sa::sim
