
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/agent_test.cpp" "tests/CMakeFiles/core_tests.dir/core/agent_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/agent_test.cpp.o.d"
  "/root/repo/tests/core/agent_trace_test.cpp" "tests/CMakeFiles/core_tests.dir/core/agent_trace_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/agent_trace_test.cpp.o.d"
  "/root/repo/tests/core/attention_test.cpp" "tests/CMakeFiles/core_tests.dir/core/attention_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/attention_test.cpp.o.d"
  "/root/repo/tests/core/collective_test.cpp" "tests/CMakeFiles/core_tests.dir/core/collective_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/collective_test.cpp.o.d"
  "/root/repo/tests/core/contextual_policy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/contextual_policy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/contextual_policy_test.cpp.o.d"
  "/root/repo/tests/core/explain_test.cpp" "tests/CMakeFiles/core_tests.dir/core/explain_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/explain_test.cpp.o.d"
  "/root/repo/tests/core/goal_awareness_test.cpp" "tests/CMakeFiles/core_tests.dir/core/goal_awareness_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/goal_awareness_test.cpp.o.d"
  "/root/repo/tests/core/goal_test.cpp" "tests/CMakeFiles/core_tests.dir/core/goal_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/goal_test.cpp.o.d"
  "/root/repo/tests/core/interaction_test.cpp" "tests/CMakeFiles/core_tests.dir/core/interaction_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/interaction_test.cpp.o.d"
  "/root/repo/tests/core/knowledge_test.cpp" "tests/CMakeFiles/core_tests.dir/core/knowledge_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/knowledge_test.cpp.o.d"
  "/root/repo/tests/core/levels_test.cpp" "tests/CMakeFiles/core_tests.dir/core/levels_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/levels_test.cpp.o.d"
  "/root/repo/tests/core/meta_test.cpp" "tests/CMakeFiles/core_tests.dir/core/meta_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/meta_test.cpp.o.d"
  "/root/repo/tests/core/pareto_test.cpp" "tests/CMakeFiles/core_tests.dir/core/pareto_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pareto_test.cpp.o.d"
  "/root/repo/tests/core/policy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/policy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/policy_test.cpp.o.d"
  "/root/repo/tests/core/runtime_test.cpp" "tests/CMakeFiles/core_tests.dir/core/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/runtime_test.cpp.o.d"
  "/root/repo/tests/core/sharing_test.cpp" "tests/CMakeFiles/core_tests.dir/core/sharing_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/sharing_test.cpp.o.d"
  "/root/repo/tests/core/stimulus_test.cpp" "tests/CMakeFiles/core_tests.dir/core/stimulus_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/stimulus_test.cpp.o.d"
  "/root/repo/tests/core/time_awareness_test.cpp" "tests/CMakeFiles/core_tests.dir/core/time_awareness_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/time_awareness_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/sa_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/svc/CMakeFiles/sa_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sa_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/multicore/CMakeFiles/sa_multicore.dir/DependInfo.cmake"
  "/root/repo/build/src/cpn/CMakeFiles/sa_cpn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
