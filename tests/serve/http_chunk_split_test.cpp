// Chunk-split invariance for the HTTP request parser: recv() may hand the
// server any byte partition of the wire stream, and the parsed requests
// must be identical for every one of them. The whole-stream parse is the
// reference; every two-chunk split point, a byte-at-a-time feed, and a
// corpus of seeded random multi-chunk splits must reproduce it exactly.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "serve/http.hpp"
#include "sim/rng.hpp"

namespace {

using namespace sa::serve;

/// The pipelined wire stream under test: GET with a query, POST with a
/// body, HEAD, and an HTTP/1.0 GET — all back to back, so splits land in
/// request lines, headers, bodies and separators alike.
const std::string kStream =
    "GET /metrics?window=5s HTTP/1.1\r\nHost: city\r\nAccept: */*\r\n\r\n"
    "POST /control HTTP/1.1\r\nContent-Length: 15\r\n"
    "Content-Type: application/x-www-form-urlencoded\r\n\r\ncmd=pause&arg=1"
    "HEAD /status HTTP/1.1\r\nHost: city\r\n\r\n"
    "GET /events HTTP/1.0\r\n\r\n";

/// Canonical text form of everything the parser produced, so two feeds
/// compare as single strings.
std::string drain(HttpParser& p) {
  std::ostringstream os;
  HttpRequest req;
  while (p.next_request(req)) {
    os << req.method << ' ' << req.target << " path=" << req.path
       << " query=" << req.query << " v=1." << req.version_minor << '\n';
    for (const auto& [name, value] : req.headers) {
      os << "  " << name << ": " << value << '\n';
    }
    os << "  body[" << req.body.size() << "]=" << req.body << '\n';
  }
  os << "failed=" << p.failed() << " status=" << p.error_status()
     << " buffered=" << p.buffered() << '\n';
  return os.str();
}

std::string parse_in_chunks(const std::string& stream,
                            const std::vector<std::size_t>& cuts) {
  HttpParser p;
  std::size_t from = 0;
  for (const std::size_t cut : cuts) {
    EXPECT_TRUE(p.feed(stream.substr(from, cut - from)));
    from = cut;
  }
  EXPECT_TRUE(p.feed(stream.substr(from)));
  return drain(p);
}

std::string reference() { return parse_in_chunks(kStream, {}); }

TEST(HttpChunkSplit, WholeStreamParsesFourRequests) {
  HttpParser p;
  ASSERT_TRUE(p.feed(kStream));
  EXPECT_EQ(p.pending(), 4u);
  const std::string ref = reference();
  EXPECT_NE(ref.find("POST /control"), std::string::npos);
  EXPECT_NE(ref.find("body[15]=cmd=pause&arg=1"), std::string::npos);
  EXPECT_NE(ref.find("v=1.0"), std::string::npos);
}

TEST(HttpChunkSplit, EveryTwoChunkSplitMatchesTheWholeStreamParse) {
  const std::string ref = reference();
  for (std::size_t cut = 1; cut < kStream.size(); ++cut) {
    ASSERT_EQ(parse_in_chunks(kStream, {cut}), ref)
        << "split after byte " << cut;
  }
}

TEST(HttpChunkSplit, ByteAtATimeMatchesTheWholeStreamParse) {
  std::vector<std::size_t> cuts;
  for (std::size_t i = 1; i < kStream.size(); ++i) cuts.push_back(i);
  EXPECT_EQ(parse_in_chunks(kStream, cuts), reference());
}

TEST(HttpChunkSplit, SeededRandomSplitsMatchTheWholeStreamParse) {
  const std::string ref = reference();
  sa::sim::Rng rng(0x11775ULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::size_t> cuts;
    std::size_t at = 0;
    while (true) {
      at += 1 + rng.below(40);
      if (at >= kStream.size()) break;
      cuts.push_back(at);
    }
    ASSERT_EQ(parse_in_chunks(kStream, cuts), ref) << "trial " << trial;
  }
}

TEST(HttpChunkSplit, SplitsDoNotChangeErrorDiagnosis) {
  // Invariance must hold on the failure path too: a malformed stream
  // fails with the same status wherever the split lands.
  const std::string bad = "GET /x HTTP/2.0\r\nHost: y\r\n\r\n";
  HttpParser whole;
  whole.feed(bad);
  ASSERT_TRUE(whole.failed());
  for (std::size_t cut = 1; cut < bad.size(); ++cut) {
    HttpParser p;
    p.feed(bad.substr(0, cut));
    p.feed(bad.substr(cut));
    EXPECT_TRUE(p.failed()) << "split after byte " << cut;
    EXPECT_EQ(p.error_status(), whole.error_status())
        << "split after byte " << cut;
  }
}

}  // namespace
