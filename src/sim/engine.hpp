// Discrete-event simulation engine.
//
// A minimal, deterministic DES kernel: events are (time, sequence, action)
// triples in a binary heap; ties in time break by insertion order so runs
// are exactly reproducible. All substrates (svc, cloud, multicore, cpn)
// schedule their dynamics through one Engine instance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace sa::sim {

/// Simulated time in abstract seconds.
using Time = double;

class Engine {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }
  /// Number of events executed so far.
  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }
  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Schedules `action` at absolute time `t` (must be >= now()).
  void at(Time t, Action action) {
    heap_.push(Ev{t, seq_++, std::move(action)});
  }
  /// Schedules `action` after a delay (>= 0) from now.
  void in(Time delay, Action action) { at(now_ + delay, std::move(action)); }
  /// Schedules `action` every `period` starting at now()+period, until it
  /// returns false or the run ends.
  void every(Time period, std::function<bool()> action) {
    in(period, [this, period, action = std::move(action)]() mutable {
      if (action()) every(period, std::move(action));
    });
  }

  /// Runs until the event queue empties or simulated time reaches `horizon`.
  /// Events scheduled exactly at the horizon still execute.
  void run_until(Time horizon) {
    while (!heap_.empty() && heap_.top().t <= horizon) {
      step();
    }
    now_ = std::max(now_, horizon);
  }
  /// Runs the entire queue to exhaustion (use with bounded workloads).
  void run() {
    while (!heap_.empty()) step();
  }
  /// Executes exactly one event if present; returns whether one ran.
  bool step() {
    if (heap_.empty()) return false;
    // std::priority_queue::top() is const&; moving requires const_cast, so we
    // copy the small struct out instead (Action is a shared-state function).
    Ev ev = heap_.top();
    heap_.pop();
    now_ = ev.t;
    ++executed_;
    ev.action();
    return true;
  }
  /// Discards all pending events (end of scenario teardown).
  void clear() {
    heap_ = {};
  }

 private:
  struct Ev {
    Time t;
    std::uint64_t seq;
    Action action;
    bool operator>(const Ev& o) const noexcept {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> heap_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace sa::sim
