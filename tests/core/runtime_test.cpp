#include "core/runtime.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "learn/bandit.hpp"

namespace sa::core {
namespace {

AgentConfig quiet() {
  AgentConfig cfg;
  cfg.seed = 3;
  return cfg;
}

TEST(AgentRuntime, StepsAgentAtItsPeriod) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent agent("periodic", quiet());
  agent.add_sensor("x", [] { return 1.0; });
  rt.schedule(agent, 0.5);
  engine.run_until(10.0);
  EXPECT_EQ(agent.steps(), 20u);
  EXPECT_EQ(rt.steps_run(), 20u);
}

TEST(AgentRuntime, DifferentPeriodsCoexist) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent fast("fast", quiet()), slow("slow", quiet());
  rt.schedule(fast, 1.0);
  rt.schedule(slow, 5.0);
  engine.run_until(20.0);
  EXPECT_EQ(fast.steps(), 20u);
  EXPECT_EQ(slow.steps(), 4u);
  EXPECT_EQ(rt.scheduled(), 2u);
}

TEST(AgentRuntime, RewardDeliveredAfterEachStep) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent agent("rewarded", quiet());
  agent.add_action("a", [] {});
  agent.add_action("b", [] {});
  agent.set_policy(std::make_unique<BanditPolicy>(
      std::make_unique<learn::EpsilonGreedy>(2, 0.0)));
  rt.schedule(agent, 1.0, [] { return 1.0; });
  engine.run_until(50.0);
  auto* policy = dynamic_cast<BanditPolicy*>(agent.policy());
  ASSERT_NE(policy, nullptr);
  // All reward went somewhere: at least one arm has learned value 1.
  EXPECT_DOUBLE_EQ(
      std::max(policy->bandit().value(0), policy->bandit().value(1)), 1.0);
}

TEST(AgentRuntime, ExchangeSharesPublicKnowledgeBothWays) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent a("alpha", quiet()), b("beta", quiet());
  double va = 1.0, vb = 2.0;
  a.add_sensor("load", [&] { return va; });
  b.add_sensor("load", [&] { return vb; });
  rt.schedule(a, 1.0);
  rt.schedule(b, 1.0);
  rt.schedule_exchange({&a, &b}, 2.0);
  engine.run_until(10.0);
  EXPECT_GT(rt.items_exchanged(), 0u);
  // Each agent now holds the other's public view of its own load.
  EXPECT_DOUBLE_EQ(a.knowledge().number("shared.beta.load"), 2.0);
  EXPECT_DOUBLE_EQ(b.knowledge().number("shared.alpha.load"), 1.0);
}

TEST(AgentRuntime, ExchangedKnowledgeTracksUpdates) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent a("alpha", quiet()), b("beta", quiet());
  double va = 1.0;
  a.add_sensor("load", [&] { return va; });
  rt.schedule(a, 1.0);
  rt.schedule_exchange({&a, &b}, 1.0);
  engine.run_until(3.2);
  va = 42.0;  // the world changes...
  engine.run_until(6.0);
  // ...and the peer's shared copy follows (newer timestamps win).
  EXPECT_DOUBLE_EQ(b.knowledge().number("shared.alpha.load"), 42.0);
}

TEST(AgentRuntime, SubstrateTicksBeforeAgentStepsAtCoincidentTimes) {
  // Substrate dynamics run at kOrderDynamics (0), agents at kOrderControl
  // (1): whenever a tick and a step land on the same instant, the agent
  // observes the post-tick world.
  sim::Engine engine;
  AgentRuntime rt(engine);
  int world = 0;
  int seen_at_step = -1;
  SelfAwareAgent agent("observer", quiet());
  agent.add_sensor("world", [&] {
    seen_at_step = world;
    return static_cast<double>(world);
  });
  rt.schedule(agent, 1.0);           // registered FIRST...
  rt.schedule_substrate("counter", 0.5, [&] { ++world; });
  engine.run_until(1.0);
  // ...but at t = 1.0 the substrate (ticks at 0.5 and 1.0) still ran first.
  EXPECT_EQ(seen_at_step, 2);
  EXPECT_EQ(rt.substrate_ticks(), 2u);
}

TEST(AgentRuntime, TracksSubstratesByName) {
  sim::Engine engine;
  AgentRuntime rt(engine);
  rt.schedule_substrate("svc.network", 1.0, [] {});
  rt.schedule_substrate("cloud.cluster", 10.0, [] {});
  ASSERT_EQ(rt.substrates().size(), 2u);
  EXPECT_EQ(rt.substrates()[0], "svc.network");
  EXPECT_EQ(rt.substrates()[1], "cloud.cluster");
  engine.run_until(20.0);
  EXPECT_EQ(rt.substrate_ticks(), 22u);  // 20 fast + 2 slow
}

TEST(AgentRuntime, ExchangeRunsAfterStepsAtCoincidentTimes) {
  // Exchange is kOrderExchange (2): at a coincident instant both agents step
  // first, so the exchanged snapshot reflects this round's observations.
  sim::Engine engine;
  AgentRuntime rt(engine);
  SelfAwareAgent a("alpha", quiet()), b("beta", quiet());
  double va = 0.0;
  a.add_sensor("load", [&] {
    va += 1.0;  // each step observes a fresh value
    return va;
  });
  rt.schedule_exchange({&a, &b}, 2.0);  // registered before the agents...
  rt.schedule(a, 2.0);
  rt.schedule(b, 2.0);
  engine.run_until(2.0);
  // ...yet b already holds the value a sampled at t = 2.0.
  EXPECT_DOUBLE_EQ(b.knowledge().number("shared.alpha.load"), 1.0);
}

}  // namespace
}  // namespace sa::core
