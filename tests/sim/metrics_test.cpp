// Tests for the self-profiling metrics registry: registration semantics,
// hot-path updates, snapshots (allocation contracts live in
// telemetry_test.cpp, which owns the global operator-new counter).
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/metrics.hpp"

namespace sa::sim {
namespace {

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  const auto a = reg.counter("ops");
  const auto b = reg.counter("ops");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.name(a), "ops");
  EXPECT_EQ(reg.kind(a), MetricsRegistry::Kind::Counter);
}

TEST(MetricsRegistry, ReRegisteringWithDifferentKindThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.timer("x"), std::logic_error);
}

TEST(MetricsRegistry, FindLocatesRegisteredMetrics) {
  MetricsRegistry reg;
  const auto g = reg.gauge("level");
  const auto found = reg.find("level");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, g);
  EXPECT_FALSE(reg.find("missing").has_value());
}

TEST(MetricsRegistry, CounterAccumulatesAndGaugeOverwrites) {
  MetricsRegistry reg;
  const auto c = reg.counter("ops");
  const auto g = reg.gauge("level");
  reg.add(c);
  reg.add(c, 2.5);
  reg.set(g, 10.0);
  reg.set(g, 4.0);
  EXPECT_DOUBLE_EQ(reg.value(c), 3.5);
  EXPECT_DOUBLE_EQ(reg.value(g), 4.0);
}

TEST(MetricsRegistry, TimerFoldsObservationsIntoStats) {
  MetricsRegistry reg;
  const auto t = reg.timer("step.ms");
  reg.observe(t, 2.0);
  reg.observe(t, 4.0);
  reg.observe(t, 6.0);
  EXPECT_DOUBLE_EQ(reg.value(t), 3.0);  // observation count
  EXPECT_EQ(reg.stats(t).count(), 3u);
  EXPECT_DOUBLE_EQ(reg.stats(t).mean(), 4.0);
  EXPECT_DOUBLE_EQ(reg.stats(t).min(), 2.0);
  EXPECT_DOUBLE_EQ(reg.stats(t).max(), 6.0);
  EXPECT_EQ(reg.hist(t), nullptr);
}

TEST(MetricsRegistry, HistogramBucketsObservations) {
  MetricsRegistry reg;
  const auto h = reg.histogram("lat", 0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) reg.observe(h, i + 0.5);
  const auto* hist = reg.hist(h);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->total(), 10u);
  EXPECT_EQ(reg.stats(h).count(), 10u);
}

TEST(MetricsRegistry, SnapshotCapturesOneRowOfAllMetrics) {
  MetricsRegistry reg;
  const auto c = reg.counter("ops");
  const auto g = reg.gauge("level");
  const auto t = reg.timer("ms");
  reg.add(c, 5.0);
  reg.set(g, 2.0);
  reg.observe(t, 8.0);
  reg.observe(t, 12.0);
  reg.snapshot(1.0);
  reg.add(c);
  reg.snapshot(2.0);
  ASSERT_EQ(reg.snapshots().size(), 2u);
  const auto& s1 = reg.snapshots()[0];
  EXPECT_DOUBLE_EQ(s1.t, 1.0);
  ASSERT_EQ(s1.values.size(), 3u);
  EXPECT_DOUBLE_EQ(s1.values[c], 5.0);
  EXPECT_DOUBLE_EQ(s1.values[g], 2.0);
  EXPECT_DOUBLE_EQ(s1.values[t], 10.0);  // cumulative mean, not count
  EXPECT_DOUBLE_EQ(reg.snapshots()[1].values[c], 6.0);
  reg.clear_snapshots();
  EXPECT_TRUE(reg.snapshots().empty());
}

TEST(MetricsRegistry, TimerWithNoObservationsSnapshotsZero) {
  MetricsRegistry reg;
  const auto t = reg.timer("ms");
  reg.snapshot(0.0);
  ASSERT_EQ(reg.snapshots().size(), 1u);
  EXPECT_DOUBLE_EQ(reg.snapshots()[0].values[t], 0.0);
}

}  // namespace
}  // namespace sa::sim
