#include "core/pareto.hpp"

namespace sa::core {

bool is_dominated(const GoalModel& goals,
                  const std::vector<ParetoPoint>& points, std::size_t i) {
  for (std::size_t j = 0; j < points.size(); ++j) {
    if (j == i) continue;
    if (goals.dominates(points[j].metrics, points[i].metrics)) return true;
  }
  return false;
}

std::vector<std::size_t> pareto_front(
    const GoalModel& goals, const std::vector<ParetoPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!is_dominated(goals, points, i)) front.push_back(i);
  }
  return front;
}

std::size_t utility_argmax(const GoalModel& goals,
                           const std::vector<ParetoPoint>& points) {
  std::size_t best = 0;
  double best_u = -1.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double u = goals.utility(points[i].metrics);
    if (u > best_u) {
      best_u = u;
      best = i;
    }
  }
  return best;
}

}  // namespace sa::core
