#include "svc/fleet.hpp"

#include <cmath>

#include "learn/bandit.hpp"

namespace sa::svc {

CameraFleet::CameraFleet(Network& net, Params p)
    : net_(net), p_(p), last_(net.cameras()) {
  if (p_.telemetry != nullptr) net_.set_telemetry(p_.telemetry);
  if (p_.tracer != nullptr) {
    trace_subject_ = p_.tracer->bus().intern_subject("svc.fleet");
    n_epoch_ = p_.tracer->intern_name("epoch");
    k_coverage_ = p_.tracer->intern_name("coverage");
    k_messages_ = p_.tracer->intern_name("messages");
    k_utility_ = p_.tracer->intern_name("global_utility");
  }
  if (p_.mode == Mode::Homogeneous) {
    for (std::size_t c = 0; c < net_.cameras(); ++c) {
      net_.set_strategy(c, p_.fixed);
    }
    return;
  }
  agents_.reserve(net_.cameras());
  for (std::size_t c = 0; c < net_.cameras(); ++c) {
    core::AgentConfig cfg;
    cfg.levels = p_.levels;
    cfg.seed = p_.seed + c;
    cfg.telemetry = p_.telemetry;
    cfg.tracer = p_.tracer;
    auto agent = std::make_unique<core::SelfAwareAgent>(
        "cam" + std::to_string(c), cfg);

    agent->add_sensor("tracking", [this, c] { return last_[c].tracking; });
    agent->add_sensor("messages", [this, c] { return last_[c].messages; });
    agent->add_sensor("lost", [this, c] { return last_[c].lost; });
    agent->add_sensor("owned", [this, c] {
      return static_cast<double>(last_[c].owned_now);
    });

    for (std::size_t s = 0; s < kStrategies; ++s) {
      agent->add_action(strategy_name(static_cast<Strategy>(s)),
                        [this, c, s] {
                          net_.set_strategy(c, static_cast<Strategy>(s));
                        });
    }

    // Local goals: track well, lose little, talk little. Scales are per
    // epoch_steps of accumulation.
    const double steps = static_cast<double>(p_.epoch_steps);
    auto& goals = agent->goals();
    goals.add_objective(
        {"tracking", core::utility::rising(0.0, 3.0 * steps), 2.0});
    goals.add_objective(
        {"messages", core::utility::falling(0.0, 2.0 * steps), 1.0});
    goals.add_objective({"lost", core::utility::falling(0.0, 5.0), 1.0});
    agent->set_goal_metrics({"tracking", "messages", "lost"});

    agent->set_policy(std::make_unique<core::BanditPolicy>(
        std::make_unique<learn::DiscountedUcb>(kStrategies, 0.99)));
    agents_.push_back(std::move(agent));
  }
}

NetworkEpoch CameraFleet::run_epoch() {
  net_.run(p_.epoch_steps);
  return finish_epoch();
}

void CameraFleet::bind(sim::Engine& engine, double step_period,
                       std::function<void(const NetworkEpoch&)> on_epoch) {
  engine.every_tagged(
      sim::event_tag("sa.svc.fleet"), step_period,
      [this, on_epoch = std::move(on_epoch)] {
        net_.step();
        ++bound_steps_;
        if (bound_steps_ % p_.epoch_steps == 0) {
          const NetworkEpoch e = finish_epoch();
          if (on_epoch) on_epoch(e);
        }
        return true;
      },
      /*order=*/0);
}

NetworkEpoch CameraFleet::finish_epoch() {
  // Epoch span on the fleet's own track; camera agents emit their ODA
  // spans inside it (on their own tracks, at t = epoch index).
  auto span = (p_.tracer != nullptr && p_.tracer->enabled())
                  ? p_.tracer->span(static_cast<double>(epoch_),
                                    trace_subject_, n_epoch_)
                  : sim::Tracer::Span{};
  for (std::size_t c = 0; c < net_.cameras(); ++c) {
    last_[c] = net_.harvest_camera(c);
  }
  if (p_.mode == Mode::Learning) {
    for (std::size_t c = 0; c < net_.cameras(); ++c) {
      auto& agent = *agents_[c];
      agent.step(static_cast<double>(epoch_));
      // Reward: the camera's own market utility, normalised per step.
      const double u =
          last_[c].utility(net_.params().comm_weight,
                           net_.params().handover_bonus) /
          static_cast<double>(p_.epoch_steps);
      agent.reward(u);
    }
  }
  ++epoch_;
  const NetworkEpoch e = net_.harvest_network();
  coverage_.add(e.coverage);
  messages_.add(e.messages);
  global_utility_.add(e.global_utility);
  if (span) {
    span.arg(k_coverage_, e.coverage);
    span.arg(k_messages_, e.messages);
    span.arg(k_utility_, e.global_utility);
  }
  return e;
}

std::vector<std::size_t> CameraFleet::strategy_histogram() const {
  std::vector<std::size_t> hist(kStrategies, 0);
  for (std::size_t c = 0; c < net_.cameras(); ++c) {
    ++hist[static_cast<std::size_t>(net_.strategy(c))];
  }
  return hist;
}

double CameraFleet::diversity() const {
  const auto hist = strategy_histogram();
  const double n = static_cast<double>(net_.cameras());
  double h = 0.0;
  for (std::size_t count : hist) {
    if (count == 0) continue;
    const double pr = static_cast<double>(count) / n;
    h -= pr * std::log(pr);
  }
  return h / std::log(static_cast<double>(kStrategies));
}

}  // namespace sa::svc
