// Harness-level checkpoint store (sa::exp over sa::ckpt).
//
// A CheckpointStore is the durable record of a bench run in flight: the
// shape of every grid it has started (name, variants, seeds), every
// completed cell's TaskResult with exact f64 metric bits, the control
// journal recorded so far, and an `interrupted` flag. The harness saves
// it periodically (--checkpoint PATH, every --checkpoint-every seconds)
// and once more from the SIGTERM/SIGINT supervisor; --resume PATH loads
// it and completed cells return their stored output instead of re-running
// — so the resumed run's BENCH json byte-matches an uninterrupted run
// (wall-clock fields aside).
//
// Persistence rides the sa::ckpt container: CRC-framed sections
// ("harness", "journal", "grid.<i>"), atomic writes with .prev rotation,
// and typed errors on corruption, so a checkpoint torn by the very crash
// it is meant to survive falls back to the newest valid file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/journal.hpp"
#include "exp/grid.hpp"
#include "exp/runner.hpp"

namespace sa::exp {

class CheckpointStore {
 public:
  explicit CheckpointStore(std::string experiment = {})
      : experiment_(std::move(experiment)) {}

  // --- building (live-run side; record() is thread-safe) ---

  /// Registers a grid about to run; returns its index. Grids are matched
  /// positionally on resume (bench binaries run their grids in a fixed
  /// order), so call in the same order every run.
  std::size_t add_grid(std::string name, std::vector<std::string> variants,
                       std::vector<std::uint64_t> seeds);
  /// Stores one completed cell (replacing any previous record of the same
  /// (variant, seed) — resumed cells are re-recorded into the new store).
  void record(std::size_t grid, TaskResult cell);
  void set_journal(std::vector<ckpt::JournalEntry> entries);
  void set_interrupted(bool on);

  // --- persistence ---

  /// Snapshots under the lock and writes atomically (tmp + fsync, rotate
  /// to .prev, rename) — safe to call from the supervisor thread while
  /// workers are still record()ing.
  [[nodiscard]] ckpt::Status save(const std::string& path) const;
  /// Loads `path`, falling back to `path.prev` when the primary is
  /// missing or corrupt (see ckpt::read_with_fallback). Replaces all
  /// state, including the experiment name.
  [[nodiscard]] ckpt::Status load(const std::string& path,
                                  std::string* used_path = nullptr,
                                  std::string* fallback_error = nullptr);

  // --- resume side ---

  [[nodiscard]] const std::string& experiment() const noexcept {
    return experiment_;
  }
  [[nodiscard]] bool interrupted() const noexcept { return interrupted_; }
  [[nodiscard]] std::size_t grids() const;
  /// Total recorded cells across all grids.
  [[nodiscard]] std::size_t completed() const;
  /// Strict shape check of grid `grid` against the one about to run:
  /// "" when name, variants and seeds all match exactly (or the store has
  /// no grid at this index yet — a run interrupted before reaching it),
  /// otherwise a human-readable mismatch description. Anything but exact
  /// equality would silently splice results from a different
  /// configuration, so the harness refuses to resume on mismatch.
  [[nodiscard]] std::string match(std::size_t grid, const Grid& g) const;
  /// The stored cell, or nullptr. The pointer stays valid until the store
  /// is load()ed again (resume reads from a store that is no longer
  /// written to).
  [[nodiscard]] const TaskResult* find(std::size_t grid, std::size_t variant,
                                       std::uint64_t seed) const;
  [[nodiscard]] std::vector<ckpt::JournalEntry> journal() const;

  /// Full-shaped GridResults for the partial document an interrupted run
  /// writes: every registered grid at its declared variants × seeds size,
  /// with cells that never completed carrying the error
  /// "interrupted before completion" (so to_json/aggregate work unchanged
  /// and the completed cells keep their exact bits).
  [[nodiscard]] std::vector<GridResult> grid_results() const;

 private:
  struct Shape {
    std::string name;
    std::vector<std::string> variants;
    std::vector<std::uint64_t> seeds;
    std::vector<TaskResult> cells;  // completion order; (variant,seed) unique
  };

  mutable std::mutex mu_;
  std::string experiment_;
  bool interrupted_ = false;
  std::vector<Shape> grids_;
  std::vector<ckpt::JournalEntry> journal_;
};

}  // namespace sa::exp
