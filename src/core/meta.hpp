// Meta-self-awareness: awareness of one's own awareness.
//
// The highest level in the framework (Morin [42]; Cox's metacognitive loop
// [27]). This process does not look at the environment at all — its domain
// is the *other awareness processes* and the decision machinery:
//   * it tracks each process's self-assessed quality over time;
//   * it watches the goal-utility stream with a drift detector;
//   * when utility drifts or a process's quality collapses, it acts *on the
//    system itself*: reconfigure() on stale processes and user-registered
//    adaptation hooks (e.g. "reset the policy's bandit").
// That closing of the loop — using self-knowledge to modify how
// self-knowledge is produced and used — is what distinguishes
// meta-self-awareness from plain monitoring (Cox [27]: awareness is not
// merely possessing information but using it to modify goals/behaviour).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "learn/drift.hpp"
#include "learn/estimators.hpp"

namespace sa::core {

class MetaSelfAwareness final : public AwarenessProcess {
 public:
  struct Params {
    double quality_alpha = 0.1;      ///< smoothing of per-process quality
    double quality_floor = 0.25;     ///< below this a process is "failing"
    std::size_t grace_updates = 16;  ///< warm-up before judging anyone
    // Drift defaults are deliberately conservative: utility swings from a
    // recurring workload mix are the policy's job (e.g. contextual
    // learners); the meta level steps in only for sustained, structural
    // shifts. Agents facing fast one-way drift should tighten these
    // (see experiment E6).
    double ph_delta = 0.1;           ///< Page-Hinkley tolerance (utility)
    double ph_lambda = 25.0;         ///< Page-Hinkley threshold (utility)
  };

  /// A named run-time adaptation the meta level may trigger.
  using Adaptation = std::function<void()>;

  MetaSelfAwareness() : MetaSelfAwareness(Params{}) {}
  explicit MetaSelfAwareness(Params p)
      : p_(p), drift_(p.ph_delta, p.ph_lambda) {}

  /// Registers a process to watch. Non-owning; must outlive this object.
  void watch(AwarenessProcess& proc);
  /// Registers an adaptation run whenever utility drift is detected.
  void on_drift(std::string name, Adaptation a);
  /// Registers an adaptation run when `proc_name`'s quality drops below
  /// the floor.
  void on_quality_collapse(std::string proc_name, Adaptation a);

  [[nodiscard]] Level level() const override { return Level::Meta; }
  [[nodiscard]] std::string name() const override { return "meta"; }

  /// Reads "goal.utility" from the KB (the meta level's primary input),
  /// updates quality models, runs the drift detector, fires adaptations.
  /// Publishes "meta.<proc>.quality", "meta.drift.count",
  /// "meta.adaptations".
  void update(double t, const Observation& obs, KnowledgeBase& kb) override;

  [[nodiscard]] std::size_t drift_detections() const noexcept {
    return drifts_;
  }
  [[nodiscard]] std::size_t adaptations_fired() const noexcept {
    return fired_;
  }
  /// Smoothed quality of a watched process (0 if unknown).
  [[nodiscard]] double process_quality(const std::string& proc) const;

  [[nodiscard]] double quality() const override;

 private:
  Params p_;
  std::vector<AwarenessProcess*> watched_;
  std::map<std::string, learn::Ewma> qualities_;
  std::vector<std::pair<std::string, Adaptation>> drift_hooks_;
  std::multimap<std::string, Adaptation> collapse_hooks_;
  learn::PageHinkley drift_;
  std::size_t cooldown_left_ = 0;
  std::size_t updates_ = 0;
  std::size_t drifts_ = 0;
  std::size_t fired_ = 0;
};

}  // namespace sa::core
