#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace sa::sim {
namespace {

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsProduceDifferentStreams) {
  Rng a(1), b(2);
  std::size_t same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5u);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  // Forking derives the child from current state, so two parents that have
  // consumed identically produce identical children.
  Rng p1(7), p2(7);
  Rng c1 = p1.fork(3);
  Rng c2 = p2.fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, ForkWithDifferentTagsDiffer) {
  Rng p(7);
  Rng a = p.fork(1);
  Rng b = p.fork(2);  // note: p state unchanged by fork
  std::size_t same = 0;
  for (int i = 0; i < 200; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3u);
}

TEST(Rng, StringForkMatchesForSameTag) {
  Rng p1(9), p2(9);
  Rng a = p1.fork("camera");
  Rng b = p2.fork("camera");
  EXPECT_EQ(a(), b());
  Rng c = p1.fork("other");
  EXPECT_NE(a(), c());
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsNearHalf) {
  Rng r(4);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, BelowStaysInRangeAndHitsAllValues) {
  Rng r(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBothEnds) {
  Rng r(8);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo |= (v == -2);
    hi |= (v == 2);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, ChanceZeroAndOneAreDegenerate) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng r(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += r.exponential(2.5);
  EXPECT_NEAR(acc / n, 2.5, 0.05);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng r(12);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, PoissonMeanMatches) {
  Rng r(14);
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += r.poisson(3.5);
  EXPECT_NEAR(acc / n, 3.5, 0.1);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng r(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.poisson(0.0), 0);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng r(16);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ZipfStaysInRangeAndSkewsLow) {
  Rng r(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto v = r.zipf(10, 1.2);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  // Adjacent inputs should differ in many bits.
  const auto x = mix64(100) ^ mix64(101);
  int bits = 0;
  for (int i = 0; i < 64; ++i) bits += (x >> i) & 1u;
  EXPECT_GT(bits, 10);
}

}  // namespace
}  // namespace sa::sim
