// Telemetry/tracing overhead micro-benchmark (ISSUE PR3; supports the
// observability cost contract stated in docs/architecture.md).
//
// Measures ns/op of the observability hot paths in isolation (span
// open/close, flow point, metric add/observe, registry snapshot) and —
// the headline — a full agent ODA step with tracing off vs on, which
// bounds the end-to-end cost of decision-provenance tracing. The
// disabled-path kernels demonstrate the "one branch, zero allocations"
// contract; run with -DSA_TELEMETRY_OFF to see the compiled-out floor.
//
// Grid "seeds" are repeat indices (best-of over repeats damps scheduler
// noise); timing metrics are wall-clock derived and not bitwise
// deterministic. `--json BENCH_telemetry.json` publishes the numbers.
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "exp/harness.hpp"
#include "learn/bandit.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

namespace {

using namespace sa;

/// Keeps `v` observable so the optimiser cannot delete the benchmark body.
template <class T>
inline void keep(T&& v) {
  asm volatile("" : : "g"(v) : "memory");
}

/// Times `op()` over `iters` iterations after a 1/16 warm-up and returns
/// nanoseconds per op.
template <class F>
double time_ns(std::size_t iters, F&& op) {
  for (std::size_t i = 0; i < iters / 16 + 1; ++i) op();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) op();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(iters);
}

/// A small but complete agent (4 sensors, 2 actions, one objective), the
/// same shape as e10's agent_step@4 kernel so numbers are comparable.
std::unique_ptr<core::SelfAwareAgent> make_agent(core::AgentConfig cfg) {
  auto agent = std::make_unique<core::SelfAwareAgent>("bench", cfg);
  for (std::size_t s = 0; s < 4; ++s) {
    agent->add_sensor("s" + std::to_string(s),
                      [s] { return static_cast<double>(s); });
  }
  agent->add_action("a", [] {});
  agent->add_action("b", [] {});
  agent->goals().add_objective({"s0", core::utility::rising(0.0, 10.0), 1.0});
  agent->set_goal_metrics({"s0"});
  agent->set_policy(std::make_unique<core::BanditPolicy>(
      std::make_unique<learn::Ucb1>(2)));
  return agent;
}

struct Kernel {
  std::string name;
  std::size_t iters;
  double (*run)(std::size_t iters);
};

const std::vector<Kernel> kKernels = {
    {"span_open_close", 1 << 17,
     [](std::size_t n) {
       sim::TelemetryBus bus;
       sim::Tracer tracer(bus);
       const auto subject = bus.intern_subject("bench");
       const auto name = tracer.intern_name("op");
       double t = 0.0;
       return time_ns(n, [&] {
         { auto s = tracer.span(t, subject, name); }
         t += 1.0;
       });
     }},
    {"span_disabled", 1 << 18,
     [](std::size_t n) {
       sim::TelemetryBus bus;
       sim::Tracer tracer(bus, /*enabled=*/false);
       const auto subject = bus.intern_subject("bench");
       const auto name = tracer.intern_name("op");
       double t = 0.0;
       return time_ns(n, [&] {
         { auto s = tracer.span(t, subject, name); }
         t += 1.0;
       });
     }},
    {"flow_point", 1 << 17,
     [](std::size_t n) {
       sim::TelemetryBus bus;
       sim::Tracer tracer(bus);
       const auto subject = bus.intern_subject("bench");
       const auto name = tracer.intern_name("op");
       auto outer = tracer.span(0.0, subject, name);
       double t = 0.0;
       return time_ns(n, [&] {
         tracer.flow(t, sim::FlowPhase::Step, 1, subject, name);
         t += 1.0;
       });
     }},
    {"metrics_counter_add", 1 << 18,
     [](std::size_t n) {
       sim::MetricsRegistry reg;
       const auto c = reg.counter("bench.ops");
       return time_ns(n, [&] { reg.add(c); });
     }},
    {"metrics_timer_observe", 1 << 18,
     [](std::size_t n) {
       sim::MetricsRegistry reg;
       const auto m = reg.timer("bench.ms");
       double v = 0.0;
       return time_ns(n, [&] {
         reg.observe(m, v);
         v += 0.001;
       });
     }},
    {"metrics_hist_observe", 1 << 17,
     [](std::size_t n) {
       sim::MetricsRegistry reg;
       const auto m = reg.histogram("bench.lat", 0.0, 1.0, 32);
       double v = 0.0;
       return time_ns(n, [&] {
         reg.observe(m, v);
         v = v < 1.0 ? v + 0.001 : 0.0;
       });
     }},
    {"metrics_snapshot@16", 1 << 14,
     [](std::size_t n) {
       sim::MetricsRegistry reg;
       for (int i = 0; i < 16; ++i) {
         reg.gauge("g" + std::to_string(i));
       }
       double t = 0.0;
       const double ns = time_ns(n, [&] {
         reg.snapshot(t);
         t += 1.0;
         if (reg.snapshots().size() > 1024) reg.clear_snapshots();
       });
       return ns;
     }},
    {"agent_step_plain", 1 << 13,
     [](std::size_t n) {
       auto agent = make_agent({});
       double t = 0.0;
       return time_ns(n, [&] {
         agent->step(t);
         agent->reward(0.5);
         t += 1.0;
       });
     }},
    {"agent_step_traced", 1 << 13,
     [](std::size_t n) {
       sim::TelemetryBus bus;
       sim::Tracer tracer(bus);
       core::AgentConfig cfg;
       cfg.telemetry = &bus;
       cfg.tracer = &tracer;
       auto agent = make_agent(cfg);
       double t = 0.0;
       return time_ns(n, [&] {
         agent->step(t);
         agent->reward(0.5);
         t += 1.0;
         // Bound memory: a real run exports and clears per cell; here we
         // reset periodically so the kernel measures recording, not growth.
         if (tracer.events().size() > (1u << 16)) tracer.clear();
       });
     }},
    {"agent_step_tracer_off", 1 << 13,
     [](std::size_t n) {
       sim::TelemetryBus bus;
       sim::Tracer tracer(bus, /*enabled=*/false);
       core::AgentConfig cfg;
       cfg.tracer = &tracer;
       auto agent = make_agent(cfg);
       double t = 0.0;
       return time_ns(n, [&] {
         agent->step(t);
         agent->reward(0.5);
         t += 1.0;
       });
     }},
};

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("telemetry", argc, argv);
  std::cout << "Telemetry overhead: ns/op of tracing/metrics hot paths and "
               "the traced vs plain ODA step (best of 3 repeats).\n\n";

  exp::Grid g;
  g.name = "telemetry";
  for (const auto& k : kKernels) g.variants.push_back(k.name);
  g.seeds = {1, 2, 3};  // repeat indices, not simulation seeds
  g.task = [](const exp::TaskContext& ctx) -> exp::TaskOutput {
    const auto& k = kKernels[ctx.variant];
    return {{{"ns_per_op", k.run(k.iters)},
             {"iters", static_cast<double>(k.iters)}}};
  };
  const auto res = h.run(std::move(g));

  sim::Table t("T1  observability primitive cost", {"kernel", "ns/op"});
  t.precision(1, 1);
  std::size_t plain = 0, traced = 0, off = 0;
  for (std::size_t v = 0; v < res.variants.size(); ++v) {
    t.add_row({res.variants[v], res.stats(v, "ns_per_op").min()});
    if (res.variants[v] == "agent_step_plain") plain = v;
    if (res.variants[v] == "agent_step_traced") traced = v;
    if (res.variants[v] == "agent_step_tracer_off") off = v;
  }
  t.print(std::cout);

  const double base = res.stats(plain, "ns_per_op").min();
  const double on = res.stats(traced, "ns_per_op").min();
  const double dis = res.stats(off, "ns_per_op").min();
  std::cout << "T2  ODA step overhead: traced " << (on / base - 1.0) * 100.0
            << "%, disabled tracer " << (dis / base - 1.0) * 100.0
            << "% vs plain (values within a few percent of zero are "
               "measurement noise).\n";
  return h.finish();
}
