#include "exp/runner.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace sa::exp {

const TaskResult& GridResult::at(std::size_t variant,
                                 std::size_t seed_index) const {
  if (variant >= variants.size() || seed_index >= seeds.size()) {
    throw std::out_of_range("GridResult::at: cell out of range");
  }
  return tasks[variant * seeds.size() + seed_index];
}

std::size_t GridResult::errors() const noexcept {
  std::size_t n = 0;
  for (const auto& t : tasks) n += !t.error.empty();
  return n;
}

Aggregate GridResult::aggregate(std::size_t variant) const {
  Aggregate agg;
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    const auto& t = at(variant, s);
    if (t.error.empty()) agg.add(t.metrics);
  }
  return agg;
}

sim::RunningStats GridResult::stats(std::size_t variant,
                                    const std::string& metric) const {
  sim::RunningStats out;
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    const auto& t = at(variant, s);
    if (!t.error.empty()) continue;
    for (const auto& [name, value] : t.metrics) {
      if (name == metric) out.add(value);
    }
  }
  return out;
}

double GridResult::mean(std::size_t variant, const std::string& metric) const {
  return stats(variant, metric).mean();
}

double GridResult::sum(std::size_t variant, const std::string& metric) const {
  return stats(variant, metric).sum();
}

const std::string& GridResult::note(std::size_t variant) const {
  static const std::string kEmpty;
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    const auto& t = at(variant, s);
    if (!t.note.empty()) return t.note;
  }
  return kEmpty;
}

Runner::Runner(unsigned jobs)
    : jobs_(jobs != 0 ? jobs
                      : std::max(1u, std::thread::hardware_concurrency())) {}

GridResult Runner::run(std::string_view experiment, const Grid& grid) const {
  if (!grid.task) throw std::invalid_argument("Runner::run: grid has no task");
  GridResult out;
  out.experiment = std::string(experiment);
  out.name = grid.name;
  out.variants = grid.variants;
  out.seeds = grid.seeds;

  const std::size_t cells = grid.variants.size() * grid.seeds.size();
  out.tasks.resize(cells);
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, cells));
  out.jobs = std::max(1u, workers);

  const auto grid_start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> cursor{0};

  auto run_cell = [&](std::size_t i) {
    const std::size_t variant = i / grid.seeds.size();
    const std::size_t seed_index = i % grid.seeds.size();
    TaskResult& slot = out.tasks[i];
    slot.variant = variant;
    slot.seed = grid.seeds[seed_index];
    TaskContext ctx;
    ctx.experiment = experiment;
    ctx.variant_name = grid.variants[variant];
    ctx.variant = variant;
    ctx.seed = slot.seed;
    ctx.stream = stream_of(experiment, grid.variants[variant], slot.seed);
    const auto start = std::chrono::steady_clock::now();
    try {
      TaskOutput o = grid.task(ctx);
      slot.metrics = std::move(o.metrics);
      slot.note = std::move(o.note);
    } catch (const std::exception& e) {
      slot.error = e.what();
      if (slot.error.empty()) slot.error = "exception";
    } catch (...) {
      slot.error = "unknown exception";
    }
    slot.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  };

  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells) return;
      run_cell(i);
    }
  };

  if (workers <= 1) {
    // Run inline: --jobs 1 is the reference serial execution.
    for (std::size_t i = 0; i < cells; ++i) run_cell(i);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             grid_start)
                   .count();
  return out;
}

}  // namespace sa::exp
