#include "core/runtime.hpp"

namespace sa::core {

void AgentRuntime::schedule(SelfAwareAgent& agent, double period,
                            std::function<double()> reward_after) {
  ++scheduled_;
  engine_.every(
      period,
      [this, &agent, reward_after = std::move(reward_after)] {
        agent.step(engine_.now());
        ++steps_;
        if (reward_after) agent.reward(reward_after());
        return true;
      },
      kOrderControl);
}

void AgentRuntime::schedule_substrate(std::string name, double period,
                                      std::function<void()> tick) {
  ++scheduled_;
  substrates_.push_back(std::move(name));
  engine_.every(
      period,
      [this, tick = std::move(tick)] {
        tick();
        ++substrate_ticks_;
        return true;
      },
      kOrderDynamics);
}

void AgentRuntime::schedule_exchange(std::vector<SelfAwareAgent*> agents,
                                     double period,
                                     KnowledgeExchange exchange) {
  ++scheduled_;
  engine_.every(
      period,
      [this, agents = std::move(agents), exchange] {
        for (SelfAwareAgent* from : agents) {
          for (SelfAwareAgent* into : agents) {
            if (from == into) continue;
            exchanged_ += exchange.import(from->knowledge(), from->id(),
                                          into->knowledge());
          }
        }
        return true;
      },
      kOrderExchange);
}

}  // namespace sa::core
