#include "exp/telemetry_jsonl.hpp"

#include "exp/json.hpp"

namespace sa::exp {

void JsonlSink::on_event(const sim::TelemetryEvent& ev) {
  Json line = Json::object();
  line["t"] = ev.t;
  line["category"] = bus_.category_name(ev.category);
  line["subject"] = bus_.subject_name(ev.subject);
  line["value"] = ev.value;
  if (!ev.detail.empty()) line["detail"] = ev.detail;
  line.dump(os_, /*indent=*/-1);
  os_ << '\n';
  ++written_;
}

}  // namespace sa::exp
