# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/learn_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/multicore_tests[1]_include.cmake")
include("/root/repo/build/tests/cloud_tests[1]_include.cmake")
include("/root/repo/build/tests/svc_tests[1]_include.cmake")
include("/root/repo/build/tests/cpn_tests[1]_include.cmake")
include("/root/repo/build/tests/exp_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
