#include "core/interaction.hpp"

#include <gtest/gtest.h>

namespace sa::core {
namespace {

TEST(InteractionAwareness, UnknownPeerHasZeroReliability) {
  InteractionAwareness ia;
  EXPECT_DOUBLE_EQ(ia.reliability("ghost"), 0.0);
  EXPECT_EQ(ia.interactions("ghost"), 0u);
  EXPECT_TRUE(ia.peers().empty());
}

TEST(InteractionAwareness, ReliabilityTracksSuccessRate) {
  InteractionAwareness ia;
  for (int i = 0; i < 100; ++i) {
    ia.record_interaction("good", true);
    ia.record_interaction("bad", false);
    ia.record_interaction("mixed", i % 2 == 0);
  }
  EXPECT_NEAR(ia.reliability("good"), 1.0, 1e-9);
  EXPECT_NEAR(ia.reliability("bad"), 0.0, 1e-9);
  EXPECT_NEAR(ia.reliability("mixed"), 0.5, 0.1);
}

TEST(InteractionAwareness, RecentOutcomesDominate) {
  InteractionAwareness::Params p;
  p.alpha = 0.2;
  InteractionAwareness ia(p);
  for (int i = 0; i < 50; ++i) ia.record_interaction("n", true);
  for (int i = 0; i < 50; ++i) ia.record_interaction("n", false);
  EXPECT_LT(ia.reliability("n"), 0.05);  // the failures are recent
}

TEST(InteractionAwareness, PublishesPeerKnowledge) {
  InteractionAwareness ia;
  KnowledgeBase kb;
  for (int i = 0; i < 20; ++i) ia.record_interaction("n1", true, 2.0);
  ia.update(5.0, {}, kb);
  EXPECT_NEAR(kb.number("peer.n1.reliability"), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(kb.number("peer.n1.interactions"), 20.0);
  EXPECT_NEAR(kb.number("peer.n1.value"), 2.0, 1e-9);
}

TEST(InteractionAwareness, ConfidenceGrowsWithInteractions) {
  InteractionAwareness ia;
  KnowledgeBase kb;
  ia.record_interaction("n", true);
  ia.update(0.0, {}, kb);
  const double c1 = kb.confidence("peer.n.reliability");
  for (int i = 0; i < 50; ++i) ia.record_interaction("n", true);
  ia.update(1.0, {}, kb);
  const double c2 = kb.confidence("peer.n.reliability");
  EXPECT_GT(c2, c1);
  EXPECT_GT(c2, 0.95);
}

TEST(InteractionAwareness, MarkovModelPredictsPeerState) {
  InteractionAwareness::Params p;
  p.peer_states = 3;
  InteractionAwareness ia(p);
  KnowledgeBase kb;
  for (int i = 0; i < 60; ++i) {
    ia.record_peer_state("n", static_cast<std::size_t>(i % 3));
  }
  ia.record_interaction("n", true);
  ia.update(0.0, {}, kb);
  // Last state was 2 (i=59 -> 59%3=2... 59%3==2), successor is 0.
  EXPECT_DOUBLE_EQ(kb.number("peer.n.predicted_state"), 0.0);
}

TEST(InteractionAwareness, PeerStatesClampedToRange) {
  InteractionAwareness::Params p;
  p.peer_states = 2;
  InteractionAwareness ia(p);
  ia.record_peer_state("n", 99);  // out of range: clamps, must not crash
  ia.record_peer_state("n", 0);
  KnowledgeBase kb;
  ia.update(0.0, {}, kb);
  SUCCEED();
}

TEST(InteractionAwareness, PeersListsAllKnown) {
  InteractionAwareness ia;
  ia.record_interaction("b", true);
  ia.record_interaction("a", false);
  EXPECT_EQ(ia.peers(), (std::vector<std::string>{"a", "b"}));
}

TEST(InteractionAwareness, QualityReflectsEvidence) {
  InteractionAwareness ia;
  EXPECT_DOUBLE_EQ(ia.quality(), 1.0);  // no peers: neutral
  ia.record_interaction("n", true);
  const double q1 = ia.quality();
  for (int i = 0; i < 100; ++i) ia.record_interaction("n", true);
  EXPECT_GT(ia.quality(), q1);
}

TEST(InteractionAwareness, ReconfigureForgetsPeers) {
  InteractionAwareness ia;
  ia.record_interaction("n", true);
  ia.reconfigure();
  EXPECT_TRUE(ia.peers().empty());
  EXPECT_EQ(ia.interactions("n"), 0u);
}

TEST(InteractionAwareness, LevelAndName) {
  InteractionAwareness ia;
  EXPECT_EQ(ia.level(), Level::Interaction);
  EXPECT_EQ(ia.name(), "interaction");
}

}  // namespace
}  // namespace sa::core
