// SelfAwareAgent: the framework facade.
//
// Composes the reference architecture of Lewis et al. [41] into one object:
// sensors feed an attention-filtered observe phase; awareness processes
// (one per enabled level) derive knowledge; a policy decides; actuators
// express the decision; the explainer records why. The set of enabled
// levels is a constructor-time capability choice ("full-stack" vs minimal —
// paper Section IV), which experiment E5 ablates.
//
// Typical use:
//
//   AgentConfig cfg;                      // defaults to LevelSet::full()
//   SelfAwareAgent agent("mapper", cfg);
//   agent.add_sensor("load", [&]{ return platform.load(); });
//   agent.add_action("freq_up",   [&]{ platform.step_freq(+1); });
//   agent.add_action("freq_down", [&]{ platform.step_freq(-1); });
//   agent.goals().add_objective({"throughput", utility::rising(0, 100), 2.0});
//   agent.goals().add_objective({"power", utility::falling(1, 10), 1.0});
//   agent.set_goal_metrics({"throughput", "power"});
//   agent.set_policy(std::make_unique<BanditPolicy>(
//       std::make_unique<learn::Ucb1>(2)));
//   ...
//   auto d = agent.step(t);               // one ODA cycle
//   agent.reward(agent.current_utility());
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/attention.hpp"
#include "core/explain.hpp"
#include "core/goal.hpp"
#include "core/goal_awareness.hpp"
#include "core/interaction.hpp"
#include "core/knowledge.hpp"
#include "core/levels.hpp"
#include "core/meta.hpp"
#include "core/policy.hpp"
#include "core/stimulus.hpp"
#include "core/time_awareness.hpp"
#include "sim/rng.hpp"
#include "sim/telemetry.hpp"

namespace sa::core {

/// Construction-time configuration of an agent's self-awareness machinery.
struct AgentConfig {
  LevelSet levels = LevelSet::full();
  std::uint64_t seed = 1;

  /// Attention: maximum sensors sampled per step; SIZE_MAX = no budget.
  std::size_t attention_budget = static_cast<std::size_t>(-1);
  AttentionManager::Strategy attention_strategy =
      AttentionManager::Strategy::All;

  StimulusAwareness::Params stimulus{};
  InteractionAwareness::Params interaction{};
  TimeAwareness::Params time{};
  MetaSelfAwareness::Params meta{};

  bool explain = true;            ///< record explanations for decisions
  std::size_t history_limit = 128;///< KB history depth per key

  /// Optional telemetry bus: the agent emits one kObservation event per
  /// step (value = signals sampled, detail = their names) and one kDecision
  /// event per decision (value = action index, detail = action + rationale).
  /// Non-owning; must outlive the agent. Null disables emission.
  sim::TelemetryBus* telemetry = nullptr;

  /// Optional decision-provenance tracer: the agent emits spans for each
  /// ODA phase (step > observe/knowledge/decide/act, plus an outcome span
  /// when reward() settles a decision) and flow links chaining
  /// observation -> knowledge -> decision -> action -> outcome. Decisions,
  /// stimulus events and explanations carry the assigned TraceIds, so
  /// Explanation::render() cites trace records. Non-owning; must outlive
  /// the agent. Null disables tracing.
  sim::Tracer* tracer = nullptr;
};

/// One self-aware entity. Not thread-safe; one agent per logical entity.
class SelfAwareAgent {
 public:
  explicit SelfAwareAgent(std::string id, AgentConfig cfg = {});

  // -- Wiring ---------------------------------------------------------------
  /// Registers a named sensor; `read` is pulled during the observe phase.
  void add_sensor(const std::string& name, std::function<double()> read);
  /// Registers a named action with its actuator.
  void add_action(const std::string& name, std::function<void()> act);
  /// Installs the decision policy (replaces any previous one).
  void set_policy(std::unique_ptr<Policy> policy);
  /// Declares which KB keys carry the goal metrics (enables goal awareness
  /// evaluation over them; requires Level::Goal).
  void set_goal_metrics(std::vector<std::string> metrics);

  // -- The loop -------------------------------------------------------------
  /// Runs one Observe-Decide-Act cycle at time `t`. Returns the decision
  /// (action_index == SIZE_MAX and empty action if no policy/actions).
  Decision step(double t);
  /// Routes reward for the last decision to the (learning) policy.
  void reward(double r);
  /// Reports an interaction outcome to interaction awareness (no-op if the
  /// level is disabled).
  void record_interaction(const std::string& peer, bool success,
                          double value = 0.0);

  // -- Introspection --------------------------------------------------------
  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const LevelSet& levels() const noexcept {
    return cfg_.levels;
  }

  // -- Graceful degradation -------------------------------------------------
  /// Restricts which constructed levels actually run each step (clamped to
  /// the constructor-time set — capabilities never grow at run time). The
  /// processes keep their state while inactive and resume on
  /// reactivation; with no stimulus level active, raw readings are
  /// mirrored straight into the KB (the reactive baseline). Driven by
  /// core::DegradationPolicy; harmless to call directly.
  void set_active_levels(LevelSet levels);
  [[nodiscard]] const LevelSet& active_levels() const noexcept {
    return active_levels_;
  }
  /// Sensor reads that returned NaN (a dropped-out sensor, the fault
  /// surface) and were skipped: the key simply stops updating and its
  /// knowledge ages out — observe gaps trip the stale-knowledge detector.
  [[nodiscard]] std::size_t sensor_gaps() const noexcept {
    return sensor_gaps_;
  }
  [[nodiscard]] KnowledgeBase& knowledge() noexcept { return kb_; }
  [[nodiscard]] const KnowledgeBase& knowledge() const noexcept { return kb_; }
  [[nodiscard]] GoalModel& goals() noexcept { return goals_; }
  [[nodiscard]] Explainer& explainer() noexcept { return explainer_; }
  [[nodiscard]] AttentionManager& attention() noexcept { return attention_; }
  [[nodiscard]] sim::Rng& rng() noexcept { return rng_; }
  /// Utility at the last step (0 if goal awareness is disabled/unset).
  [[nodiscard]] double current_utility() const;
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] const std::vector<std::string>& actions() const noexcept {
    return action_names_;
  }

  /// Direct access to the level processes (null when disabled).
  [[nodiscard]] StimulusAwareness* stimulus() noexcept {
    return stimulus_.get();
  }
  [[nodiscard]] InteractionAwareness* interaction() noexcept {
    return interaction_.get();
  }
  [[nodiscard]] TimeAwareness* time_awareness() noexcept {
    return time_.get();
  }
  [[nodiscard]] GoalAwareness* goal_awareness() noexcept {
    return goal_aware_.get();
  }
  [[nodiscard]] MetaSelfAwareness* meta() noexcept { return meta_.get(); }
  [[nodiscard]] Policy* policy() noexcept { return policy_.get(); }

  /// Self-description: a human-readable report of what this agent *is* —
  /// its capability levels, sensors, actions, policy, goal structure and
  /// the current self-assessed quality of each awareness process. The
  /// static counterpart of Explainer's per-decision "why" (the paper's
  /// self-explanation covers both: what I am, and why I acted).
  [[nodiscard]] std::string describe() const;

 private:
  Observation observe();
  void run_processes(double t, const Observation& obs);
  void explain_decision(double t, const Decision& d,
                        std::vector<sim::TraceId> cited);
  /// Active tracer, or null when absent/disabled (checked once per step).
  [[nodiscard]] sim::Tracer* active_tracer() const noexcept {
    return (cfg_.tracer != nullptr && cfg_.tracer->enabled()) ? cfg_.tracer
                                                              : nullptr;
  }

  std::string id_;
  AgentConfig cfg_;
  LevelSet active_levels_;  ///< subset of cfg_.levels running right now
  sim::Rng rng_;
  KnowledgeBase kb_;
  GoalModel goals_;
  Explainer explainer_;
  AttentionManager attention_;

  std::vector<std::pair<std::string, std::function<double()>>> sensors_;
  std::vector<std::string> action_names_;
  std::vector<std::function<void()>> actuators_;
  std::unique_ptr<Policy> policy_;

  std::unique_ptr<StimulusAwareness> stimulus_;
  std::unique_ptr<InteractionAwareness> interaction_;
  std::unique_ptr<TimeAwareness> time_;
  std::unique_ptr<GoalAwareness> goal_aware_;
  std::unique_ptr<MetaSelfAwareness> meta_;

  sim::SubjectId subject_ = 0;  ///< interned id_ when cfg_.telemetry is set

  // Tracing state (meaningful only when cfg_.tracer is set). Names are
  // interned once at construction; ids are stamped per step.
  sim::SubjectId trace_subject_ = 0;  ///< id_ on the tracer's bus
  sim::NameId n_step_ = 0, n_observe_ = 0, n_knowledge_ = 0, n_decide_ = 0,
              n_act_ = 0, n_outcome_ = 0;
  sim::NameId n_flow_obs_ = 0, n_flow_stim_ = 0, n_flow_decision_ = 0;
  sim::NameId k_signals_ = 0, k_action_ = 0, k_reward_ = 0;
  double last_step_t_ = 0.0;          ///< sim time of the latest step()
  sim::TraceId pending_outcome_ = 0;  ///< decision chain awaiting reward()

  std::size_t steps_ = 0;
  std::size_t sensor_gaps_ = 0;  ///< NaN sensor reads skipped
};

}  // namespace sa::core
