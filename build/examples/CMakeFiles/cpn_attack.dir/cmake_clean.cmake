file(REMOVE_RECURSE
  "CMakeFiles/cpn_attack.dir/cpn_attack.cpp.o"
  "CMakeFiles/cpn_attack.dir/cpn_attack.cpp.o.d"
  "cpn_attack"
  "cpn_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpn_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
