// A self-aware supervisor for the packet network.
//
// The CPN papers describe nodes running a self-awareness loop over routes;
// this supervisor adds the network-level loop the framework provides: a
// SelfAwareAgent senses the network's aggregate health (delivery rate,
// latency, congestion), maintains goal awareness over it, and — via its
// meta level — reacts to sustained drift (a topology change, a new traffic
// matrix) by boosting the routers' exploration so fresh routes are
// discovered quickly, instead of waiting for ε-greedy trickle.
#pragma once

#include <cstdint>
#include <memory>

#include "core/agent.hpp"
#include "cpn/network.hpp"
#include "sim/engine.hpp"

namespace sa::cpn {

class Supervisor {
 public:
  struct Params {
    double epoch_ticks = 200.0;   ///< network ticks per control epoch
    double boost_eps = 0.3;       ///< exploration level injected on drift
    double boost_decay = 0.997;   ///< per-tick decay back to the floor
    double latency_scale = 40.0;  ///< ticks mapped to utility 0
    std::uint64_t seed = 47;
    core::MetaSelfAwareness::Params meta{
        /*quality_alpha=*/0.1, /*quality_floor=*/0.25,
        /*grace_updates=*/8, /*ph_delta=*/0.02, /*ph_lambda=*/1.5};
    /// Optional telemetry bus: wired into the agent (and the network via
    /// the constructor). Non-owning; must outlive the supervisor.
    sim::TelemetryBus* telemetry = nullptr;
    /// Optional tracer: the agent emits ODA spans + flow chains; the
    /// supervisor emits one span per supervision epoch under subject
    /// "cpn.supervisor". Non-owning; must outlive the supervisor.
    sim::Tracer* tracer = nullptr;
  };

  Supervisor(PacketNetwork& net, Params p);

  /// Runs one supervision epoch: advances the network `epoch_ticks`
  /// (injection is the caller's job — call net.step via your traffic
  /// driver first, or use observe_only()), harvests stats, and lets the
  /// agent update its self-models. Returns the epoch's delivery rate.
  double observe_epoch();

  /// Event-driven equivalent of calling observe_epoch() between runs:
  /// schedules one supervision epoch every `period` ticks (order 1 =
  /// control; <= 0 defaults to epoch_ticks). Pair with the traffic
  /// generator's and network's bind() for a fully event-driven scenario.
  void bind(sim::Engine& engine, double period = 0.0);

  [[nodiscard]] core::SelfAwareAgent& agent() noexcept { return *agent_; }
  /// Exploration boosts fired so far.
  [[nodiscard]] std::size_t boosts() const noexcept { return boosts_; }

 private:
  PacketNetwork& net_;
  Params p_;
  CpnStats last_;
  std::unique_ptr<core::SelfAwareAgent> agent_;
  std::size_t boosts_ = 0;
  sim::SubjectId trace_subject_ = 0;  ///< "cpn.supervisor" when tracing
  sim::NameId n_epoch_ = 0, k_delivery_ = 0, k_latency_ = 0;
};

}  // namespace sa::cpn
