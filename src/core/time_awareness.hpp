// Time awareness: history and anticipated futures.
//
// Neisser's extended self, translated: for each tracked signal the process
// maintains an ensemble of competing forecasters, continuously scores them
// against reality (mean absolute error), and publishes the current best
// model's one-step forecast. The ensemble-and-score structure is what makes
// this level legible to meta-self-awareness: the process *knows how wrong
// its own predictions have been*.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "learn/forecast.hpp"

namespace sa::core {

class TimeAwareness final : public AwarenessProcess {
 public:
  struct Params {
    std::size_t seasonal_period = 0;  ///< >0 adds a Holt-Winters member
    double error_scale = 1.0;         ///< MAE normaliser for quality()
    std::size_t score_horizon = 1;    ///< rank models by h-step error
  };

  TimeAwareness() : TimeAwareness(Params{}) {}
  explicit TimeAwareness(Params p) : p_(p) {}

  /// Restricts forecasting to these signals (default: every observed one).
  void track_only(std::vector<std::string> signals);

  [[nodiscard]] Level level() const override { return Level::Time; }
  [[nodiscard]] std::string name() const override { return "time"; }

  /// Feeds observations to each signal's ensemble; publishes
  /// "forecast.<sig>" (best model, h=1), "forecast.<sig>.mae" and
  /// "forecast.<sig>.model" (index of the winning member).
  void update(double t, const Observation& obs, KnowledgeBase& kb) override;

  /// h-step forecast of `signal` from the currently best member (0 if
  /// unknown signal).
  [[nodiscard]] double forecast(const std::string& signal,
                                std::size_t h = 1) const;
  /// MAE of the best member for `signal` (+inf-ish large if unknown).
  [[nodiscard]] double error(const std::string& signal) const;
  /// Name of the winning forecaster for `signal` ("" if unknown).
  [[nodiscard]] std::string best_model(const std::string& signal) const;

  /// 1/(1 + meanMAE/error_scale): near 1 when predictions are good.
  [[nodiscard]] double quality() const override;
  /// Rebuilds all ensembles from scratch.
  void reconfigure() override;

 private:
  struct Ensemble {
    std::vector<learn::ScoredForecaster> members;
    [[nodiscard]] std::size_t best() const;
  };
  [[nodiscard]] Ensemble make_ensemble() const;

  Params p_;
  std::map<std::string, Ensemble> signals_;
  std::vector<std::string> only_;
};

}  // namespace sa::core
