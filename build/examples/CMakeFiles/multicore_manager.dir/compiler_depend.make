# Empty compiler generated dependencies file for multicore_manager.
# This may be replaced when dependencies are built.
