// Embedded HTTP/1.1 listener: one acceptor thread + a small worker pool.
//
// The server owns only sockets and threads; everything it serves comes
// from handlers registered at wiring time. Handlers run on worker threads
// and must therefore only touch thread-safe state — in this codebase that
// means published snapshots (sim::SnapshotCell reads), FanoutSink
// subscriptions, and the control mailbox. The simulation thread is never
// entered and never waited on.
//
// Connections are keep-alive with pipelining (the parser hands out queued
// requests one by one); a worker serves one connection at a time, so the
// worker count bounds concurrent clients. Streaming routes (SSE) hold
// their worker for the lifetime of the stream and are served with
// Connection: close.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.hpp"
#include "serve/stats.hpp"

namespace sa::serve {

/// Write side of a streaming (SSE) response. write() returns false once
/// the client has gone away or the server is stopping — the handler should
/// then return.
class StreamWriter {
 public:
  StreamWriter(int fd, const std::atomic<bool>& running,
               ServerStats* stats = nullptr, unsigned worker = 0)
      : fd_(fd), running_(&running), stats_(stats), worker_(worker) {}

  /// Sends raw bytes (MSG_NOSIGNAL; a dead peer fails the write instead of
  /// raising SIGPIPE). Returns false on any failure or server shutdown.
  bool write(std::string_view bytes);
  [[nodiscard]] bool open() const noexcept {
    return !failed_ && running_->load(std::memory_order_relaxed);
  }

 private:
  int fd_;
  const std::atomic<bool>* running_;
  ServerStats* stats_;
  unsigned worker_;
  bool failed_ = false;
};

class Server {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";  ///< loopback by default
    std::uint16_t port = 0;                  ///< 0 = ephemeral, see port()
    unsigned workers = 4;
    /// Per-read socket timeout; keep-alive connections idle longer than
    /// this are closed (also bounds worker occupancy by dead clients).
    long read_timeout_ms = 5000;
    /// Per-send socket timeout; a client that stops reading (full TCP
    /// window) fails the connection instead of blocking a worker forever.
    long write_timeout_ms = 5000;
    /// listen(2) backlog. Connect storms larger than the worker pool park
    /// here instead of being refused; loadgen drives thousands of clients
    /// through a handful of workers this way.
    int listen_backlog = 128;
    /// Requests slower than this enter the bounded slow-request ring that
    /// /status surfaces (see ServerStats).
    double slow_request_threshold_s = 0.05;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  /// Streaming handler: runs until it returns; the connection closes after.
  using StreamHandler = std::function<void(const HttpRequest&, StreamWriter&)>;

  Server() : Server(Options{}) {}
  explicit Server(Options opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a handler for exact (method, path). Register before
  /// start(). GET routes answer HEAD automatically.
  void route(std::string method, std::string path, Handler handler);
  /// Registers a streaming GET route (e.g. /events).
  void route_stream(std::string path, StreamHandler handler);

  /// Binds, listens and spins up the acceptor + workers. Returns false
  /// (with error() set) if the socket could not be bound.
  [[nodiscard]] bool start();
  /// Stops accepting, closes the listener, wakes and joins all threads.
  /// Streaming handlers observe open() == false and return. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  /// The actually-bound port (resolves ephemeral port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  // -- Introspection (exposed by /metrics as sa_serve_* gauges) ------------
  [[nodiscard]] std::uint64_t connections() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t parse_errors() const noexcept {
    return parse_errors_.load(std::memory_order_relaxed);
  }

  /// The server's self-model: per-route latency histograms, queue-wait,
  /// lifecycle counters, slow-request ring. Always present; safe to read
  /// concurrently with serving.
  [[nodiscard]] ServerStats& stats() noexcept { return *stats_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return *stats_; }

 private:
  struct Route {
    std::string method, path;
    Handler handler;
  };
  struct StreamRoute {
    std::string path;
    StreamHandler handler;
  };

  void accept_loop();
  void worker_loop(unsigned worker);
  void serve_connection(int fd, unsigned worker);
  [[nodiscard]] HttpResponse dispatch(const HttpRequest& req,
                                      bool& was_head) const;

  Options opts_;
  std::vector<Route> routes_;
  std::vector<StreamRoute> stream_routes_;

  // Atomic: stop() (any thread) retires the fd while accept_loop() reads it.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::string error_;
  std::atomic<bool> running_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  /// Accepted fds awaiting a worker, stamped at accept so the dequeuing
  /// worker can record the accept→worker queue-wait.
  struct PendingConn {
    int fd;
    std::chrono::steady_clock::time_point accepted_at;
  };
  std::vector<PendingConn> pending_;

  // Connections currently inside serve_connection(). Workers erase their fd
  // under conn_mu_ *before* closing it, so stop() can safely ::shutdown()
  // every listed fd (unblocking send/recv) while holding the lock.
  std::mutex conn_mu_;
  std::vector<int> active_;

  std::atomic<std::uint64_t> connections_{0};
  mutable std::atomic<std::uint64_t> requests_{0};  ///< bumped in dispatch
  std::atomic<std::uint64_t> parse_errors_{0};
  std::unique_ptr<ServerStats> stats_;  ///< created in the constructor
};

}  // namespace sa::serve
