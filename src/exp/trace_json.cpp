#include "exp/trace_json.hpp"

#include <ostream>

namespace sa::exp {

namespace {

Json meta_event(int tid, const char* field, const std::string& value) {
  Json m = Json::object();
  m["ph"] = "M";
  m["pid"] = 1;
  m["tid"] = tid;
  m["name"] = field;
  m["args"]["name"] = value;
  return m;
}

}  // namespace

Json chrome_trace(const sim::Tracer& tracer) {
  const sim::TelemetryBus& bus = tracer.bus();
  Json doc = Json::object();
  doc["displayTimeUnit"] = "ms";
  Json& events = doc["traceEvents"] = Json::array();

  events.push_back(meta_event(0, "process_name", "sa-sim"));
  for (sim::SubjectId s = 0; s < bus.subjects(); ++s) {
    events.push_back(
        meta_event(static_cast<int>(s), "thread_name", bus.subject_name(s)));
  }

  using Kind = sim::Tracer::Event::Kind;
  for (const sim::Tracer::Event& e : tracer.events()) {
    Json j = Json::object();
    switch (e.kind) {
      case Kind::Begin: {
        j["name"] = tracer.name(e.name);
        j["cat"] = "span";
        j["ph"] = "B";
        j["ts"] = e.t * 1e6;
        j["pid"] = 1;
        j["tid"] = static_cast<int>(e.subject);
        Json& args = j["args"] = Json::object();
        args["trace_id"] = static_cast<std::int64_t>(e.id);
        for (const auto& [key, value] : e.args) {
          args[tracer.name(key)] = value;
        }
        break;
      }
      case Kind::End:
        j["ph"] = "E";
        j["ts"] = e.t * 1e6;
        j["pid"] = 1;
        j["tid"] = static_cast<int>(e.subject);
        break;
      case Kind::Flow:
        j["name"] = tracer.name(e.name);
        j["cat"] = "flow";
        j["ph"] = e.phase == sim::FlowPhase::Begin  ? "s"
                  : e.phase == sim::FlowPhase::Step ? "t"
                                                    : "f";
        j["id"] = static_cast<std::int64_t>(e.id);
        j["ts"] = e.t * 1e6;
        j["pid"] = 1;
        j["tid"] = static_cast<int>(e.subject);
        // Bind the terminating point to the enclosing slice, matching
        // how the chain's earlier points attach.
        if (e.phase == sim::FlowPhase::End) j["bp"] = "e";
        break;
    }
    events.push_back(std::move(j));
  }
  return doc;
}

void write_chrome_trace(std::ostream& os, const sim::Tracer& tracer) {
  chrome_trace(tracer).dump(os, /*indent=*/-1);
  os << "\n";
}

}  // namespace sa::exp
