file(REMOVE_RECURSE
  "CMakeFiles/sa_multicore.dir/manager.cpp.o"
  "CMakeFiles/sa_multicore.dir/manager.cpp.o.d"
  "CMakeFiles/sa_multicore.dir/platform.cpp.o"
  "CMakeFiles/sa_multicore.dir/platform.cpp.o.d"
  "CMakeFiles/sa_multicore.dir/workload.cpp.o"
  "CMakeFiles/sa_multicore.dir/workload.cpp.o.d"
  "libsa_multicore.a"
  "libsa_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
