// The awareness-process abstraction.
//
// The reference architecture (Lewis et al. [41]) models a self-aware system
// as a collection of processes, each realising one or more levels of
// self-awareness, reading observations and depositing derived knowledge
// into the knowledge base. Processes self-assess (quality()) so the meta
// level can reason about them, and expose reconfigure() as the hook through
// which meta-self-awareness acts back on the awareness machinery itself.
#pragma once

#include <map>
#include <string>

#include "core/knowledge.hpp"
#include "core/levels.hpp"

namespace sa::core {

/// The sensor samples gathered in one observe phase: signal name → value.
/// Signals not sampled this step (attention!) are simply absent.
using Observation = std::map<std::string, double>;

/// Base class for all awareness processes.
class AwarenessProcess {
 public:
  virtual ~AwarenessProcess() = default;

  /// Which self-awareness level this process realises.
  [[nodiscard]] virtual Level level() const = 0;
  /// Stable identifier, used in knowledge keys and explanations.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Consumes this step's observations; derives and stores knowledge.
  virtual void update(double t, const Observation& obs, KnowledgeBase& kb) = 0;

  /// Self-assessed quality in [0,1] — "how well is my model doing?".
  /// 1.0 means fully confident; the default suits stateless processes.
  [[nodiscard]] virtual double quality() const { return 1.0; }

  /// Invoked by the meta level when it judges this process stale
  /// (e.g. after concept drift). Default: no-op.
  virtual void reconfigure() {}
};

}  // namespace sa::core
