#include "shard/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace sa::shard {

std::vector<Unit> enumerate_units(const gen::ScenarioSpec& spec) {
  std::vector<Unit> units;
  if (spec.cameras.enabled) {
    // A district's step cost is dominated by the camera x object coverage
    // pass in svc::Network.
    const double w = static_cast<double>(spec.cameras.count) *
                     static_cast<double>(spec.cameras.objects);
    for (std::size_t d = 0; d < spec.cameras.districts; ++d) {
      units.push_back(Unit{UnitKind::CameraDistrict, d, w});
    }
  }
  if (spec.cpn.enabled) {
    // Grid cost: per-tick node/link transit plus flow bookkeeping.
    const double w =
        static_cast<double>(spec.cpn.rows * spec.cpn.cols + spec.cpn.flows);
    for (std::size_t g = 0; g < spec.cpn.grids; ++g) {
      units.push_back(Unit{UnitKind::CpnGrid, g, w});
    }
  }
  if (spec.multicore.enabled) {
    const double w =
        static_cast<double>(spec.multicore.big + spec.multicore.little);
    for (std::size_t n = 0; n < spec.multicore.nodes; ++n) {
      units.push_back(Unit{UnitKind::EdgeNode, n, w});
    }
  }
  return units;
}

Partition partition_world(const gen::ScenarioSpec& spec, std::size_t shards) {
  if (shards < 1) {
    throw std::invalid_argument("shard: shard count must be >= 1");
  }
  Partition part;
  part.shards = shards;
  part.district_shard.assign(spec.cameras.enabled ? spec.cameras.districts : 0,
                             0);
  part.grid_shard.assign(spec.cpn.enabled ? spec.cpn.grids : 0, 0);
  part.edge_shard.assign(spec.multicore.enabled ? spec.multicore.nodes : 0, 0);
  part.shard_weight.assign(shards, 0.0);
  part.shard_units.assign(shards, {});

  std::vector<Unit> units = enumerate_units(spec);
  // LPT: heaviest units first; equal weights keep the global enumeration
  // order (stable_sort), so the assignment is pinned by (spec, shards).
  std::stable_sort(units.begin(), units.end(),
                   [](const Unit& a, const Unit& b) {
                     return a.weight > b.weight;
                   });
  for (const Unit& u : units) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      if (part.shard_weight[s] < part.shard_weight[best]) best = s;
    }
    part.shard_weight[best] += u.weight;
    part.shard_units[best].push_back(u);
    switch (u.kind) {
      case UnitKind::CameraDistrict:
        part.district_shard[u.index] = best;
        break;
      case UnitKind::CpnGrid:
        part.grid_shard[u.index] = best;
        break;
      case UnitKind::EdgeNode:
        part.edge_shard[u.index] = best;
        break;
    }
  }
  return part;
}

}  // namespace sa::shard
