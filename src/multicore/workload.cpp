#include "multicore/workload.hpp"

#include <cmath>

namespace sa::multicore {

PhasedWorkload PhasedWorkload::standard() {
  // Demands sized against the canonical big_little(2, 4) chip: its capacity
  // is 4.3 giga-ops/s at the minimum frequency, 7.2 at mid, 13.0 at max.
  return PhasedWorkload{{
      {"steady", 20.0, 25.0, 0.15, 0.8},       // ~3.8 Gops/s: fits at mid
      {"burst", 20.0, 40.0, 0.2, 1.5},         // ~8 Gops/s: needs max freq
      {"interactive", 20.0, 20.0, 0.08, 0.15}, // light but latency-critical
  }};
}

double PhasedWorkload::cycle_length() const {
  double total = 0.0;
  for (const auto& p : phases_) total += p.duration_s;
  return total;
}

std::size_t PhasedWorkload::phase_index(double now) const {
  const double cycle = cycle_length();
  double t = std::fmod(now, cycle);
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (t < phases_[i].duration_s) return i;
    t -= phases_[i].duration_s;
  }
  return phases_.size() - 1;
}

const Phase& PhasedWorkload::current(double now) const {
  return phases_[phase_index(now)];
}

void PhasedWorkload::apply(Platform& platform) {
  const Phase& p = current(platform.now());
  platform.set_workload(p.rate, p.mean_work, p.deadline_s);
}

}  // namespace sa::multicore
