#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace sa::serve {

namespace {

bool send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Was the just-failed send() a SO_SNDTIMEO expiry (as opposed to a dead
/// peer)? errno is still live from send_all's failing call.
bool send_timed_out() noexcept {
  return errno == EAGAIN || errno == EWOULDBLOCK;
}

double seconds_since(std::chrono::steady_clock::time_point t0) noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

bool StreamWriter::write(std::string_view bytes) {
  if (!open()) return false;
  if (!send_all(fd_, bytes)) {
    failed_ = true;
    if (stats_ != nullptr && send_timed_out()) {
      stats_->on_write_timeout(worker_);
    }
  } else if (stats_ != nullptr) {
    stats_->add_response_bytes(worker_, bytes.size());
  }
  return open();
}

Server::Server(Options opts) : opts_(std::move(opts)) {
  if (opts_.workers == 0) opts_.workers = 1;
  stats_ = std::make_unique<ServerStats>(opts_.workers,
                                         opts_.slow_request_threshold_s);
}

Server::~Server() { stop(); }

void Server::route(std::string method, std::string path, Handler handler) {
  routes_.push_back({std::move(method), std::move(path), std::move(handler)});
}

void Server::route_stream(std::string path, StreamHandler handler) {
  stream_routes_.push_back({std::move(path), std::move(handler)});
}

bool Server::start() {
  if (running_.load()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad bind address: " + opts_.bind_address;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    error_ = "bind " + opts_.bind_address + ":" +
             std::to_string(opts_.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, opts_.listen_backlog) < 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(opts_.workers);
  for (unsigned i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  return true;
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Closing the listener unblocks accept(); shutdown() covers platforms
  // where close() alone does not.
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  {
    // running_ is already false; notifying under the queue lock means a
    // worker cannot evaluate its wait predicate (seeing running_) and then
    // block after this notification — the wakeup would be lost and the
    // join below would hang.
    const std::scoped_lock lk(queue_mu_);
    queue_cv_.notify_all();
  }
  {
    // Unblock workers stuck in send()/recv() on a live connection (e.g. an
    // SSE subscriber that stopped reading). Any fd still in active_ has not
    // been closed yet (workers erase before closing, under conn_mu_).
    const std::scoped_lock lk(conn_mu_);
    for (const int fd : active_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  std::vector<PendingConn> leftovers;
  {
    const std::scoped_lock lk(queue_mu_);
    leftovers.swap(pending_);
  }
  for (const PendingConn& conn : leftovers) {
    ::close(conn.fd);
    stats_->connection_closed();
  }
}

void Server::accept_loop() {
  while (running_.load()) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) break;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load()) break;
      continue;  // transient accept failure; keep listening
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    stats_->connection_opened();
    timeval tv{};
    tv.tv_sec = opts_.read_timeout_ms / 1000;
    tv.tv_usec = (opts_.read_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    timeval wtv{};
    wtv.tv_sec = opts_.write_timeout_ms / 1000;
    wtv.tv_usec = (opts_.write_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &wtv, sizeof wtv);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    {
      const std::scoped_lock lk(queue_mu_);
      pending_.push_back({fd, std::chrono::steady_clock::now()});
    }
    queue_cv_.notify_one();
  }
}

void Server::worker_loop(unsigned worker) {
  while (true) {
    PendingConn conn{-1, {}};
    {
      std::unique_lock lk(queue_mu_);
      queue_cv_.wait(lk,
                     [this] { return !pending_.empty() || !running_.load(); });
      if (!pending_.empty()) {
        conn = pending_.back();
        pending_.pop_back();
      } else if (!running_.load()) {
        return;
      }
    }
    if (conn.fd >= 0) {
      stats_->record_queue_wait(worker, seconds_since(conn.accepted_at));
      {
        const std::scoped_lock lk(conn_mu_);
        active_.push_back(conn.fd);
      }
      serve_connection(conn.fd, worker);
      {
        const std::scoped_lock lk(conn_mu_);
        active_.erase(std::find(active_.begin(), active_.end(), conn.fd));
      }
      ::close(conn.fd);
      stats_->connection_closed();
    }
  }
}

HttpResponse Server::dispatch(const HttpRequest& req, bool& was_head) const {
  was_head = req.method == "HEAD";
  const std::string method = was_head ? "GET" : req.method;
  bool path_seen = false;
  for (const Route& r : routes_) {
    if (r.path != req.path) continue;
    path_seen = true;
    if (r.method == method) {
      requests_.fetch_add(1, std::memory_order_relaxed);
      return r.handler(req);
    }
  }
  for (const StreamRoute& r : stream_routes_) {
    if (r.path == req.path) path_seen = true;
  }
  HttpResponse resp;
  if (path_seen) {
    resp.status = 405;
    resp.body = "method not allowed\n";
  } else {
    resp.status = 404;
    resp.body = "not found\n";
  }
  return resp;
}

void Server::serve_connection(int fd, unsigned worker) {
  HttpParser parser;
  char buf[4096];
  bool keep_alive = true;
  std::uint64_t served = 0;  ///< requests completed on this connection
  while (keep_alive && running_.load()) {
    // Serve everything already parsed (pipelining) before reading more.
    HttpRequest req;
    bool had_request = false;
    while (parser.next_request(req)) {
      had_request = true;
      const auto t0 = std::chrono::steady_clock::now();
      // Any request after the first rides the same connection, whether
      // pipelined or a later keep-alive round trip.
      if (served++ > 0) stats_->on_keepalive_reuse(worker);
      // Streaming routes take over the connection.
      if (req.method == "GET") {
        const StreamRoute* stream = nullptr;
        for (const StreamRoute& r : stream_routes_) {
          if (r.path == req.path) stream = &r;
        }
        if (stream != nullptr) {
          // The stream holds the connection until it closes and never
          // returns to this loop, so anything pipelined behind it could
          // only be dropped silently — reject the batch instead.
          if (parser.pending() > 0 || parser.buffered() > 0) {
            parse_errors_.fetch_add(1, std::memory_order_relaxed);
            stats_->on_parse_reject(worker, 400);
            HttpResponse resp;
            resp.status = 400;
            resp.body = "pipelined request behind a streaming route\n";
            resp.close = true;
            send_all(fd, resp.serialise());
            return;
          }
          requests_.fetch_add(1, std::memory_order_relaxed);
          StreamWriter writer(fd, running_, stats_.get(), worker);
          writer.write(
              "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
              "Cache-Control: no-cache\r\nConnection: close\r\n\r\n");
          // The stream's "latency" is time-to-header: the tail is open-ended
          // by design, so the header write is the serving cost we can own.
          stats_->record_request(worker, classify_route(req.path),
                                 seconds_since(t0), 200, 0);
          stream->handler(req, writer);
          return;
        }
      }
      bool was_head = false;
      HttpResponse resp = dispatch(req, was_head);
      const std::string* connection = req.header("Connection");
      const bool client_close =
          (connection != nullptr && *connection == "close") ||
          (req.version_minor == 0 &&
           (connection == nullptr || *connection != "keep-alive"));
      if (client_close) resp.close = true;
      const std::string wire = resp.serialise(was_head);
      const bool sent = send_all(fd, wire);
      if (!sent && send_timed_out()) stats_->on_write_timeout(worker);
      stats_->record_request(worker, classify_route(req.path),
                            seconds_since(t0), resp.status,
                            sent ? wire.size() : 0);
      if (!sent) return;
      if (resp.close) return;
    }
    if (parser.failed()) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      stats_->on_parse_reject(worker, parser.error_status());
      HttpResponse resp;
      resp.status = parser.error_status();
      resp.body = parser.error() + "\n";
      resp.close = true;
      send_all(fd, resp.serialise());
      return;
    }
    if (had_request) continue;  // drained the pipeline; try reading again

    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) return;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // timeout or error: drop the idle connection
    }
    stats_->add_request_bytes(worker, static_cast<std::uint64_t>(n));
    if (!parser.feed(std::string_view(buf, static_cast<std::size_t>(n)))) {
      // Error reported on the next loop iteration via parser.failed().
      continue;
    }
  }
}

}  // namespace sa::serve
