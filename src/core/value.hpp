// Typed knowledge values.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace sa::core {

/// The value payload of a knowledge item. Kept deliberately small: scalar
/// measurements dominate, strings label discrete states, vectors carry
/// small feature tuples.
using Value =
    std::variant<bool, std::int64_t, double, std::string, std::vector<double>>;

/// True if `v` holds a T.
template <typename T>
[[nodiscard]] bool holds(const Value& v) noexcept {
  return std::holds_alternative<T>(v);
}

/// Numeric view of a value: bool → 0/1, int → double, double → itself;
/// strings and vectors yield `fallback`.
[[nodiscard]] inline double as_number(const Value& v,
                                      double fallback = 0.0) noexcept {
  if (const auto* b = std::get_if<bool>(&v)) return *b ? 1.0 : 0.0;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) return *d;
  return fallback;
}

/// Short textual rendering, for traces and explanations.
[[nodiscard]] std::string to_string(const Value& v);

}  // namespace sa::core
