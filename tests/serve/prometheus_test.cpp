// Prometheus text-exposition conformance (format version 0.0.4): every
// line render_prometheus() emits must match the exposition grammar, and
// the registry-kind mapping (counter/gauge/summary/histogram) must follow
// the format's invariants — cumulative le buckets, +Inf bucket == count.
#include <gtest/gtest.h>

#include <cmath>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "serve/prometheus.hpp"
#include "serve/stats.hpp"
#include "sim/metrics.hpp"

namespace {

using namespace sa;
using namespace sa::serve;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

/// One exposition page built from a registry exercising every metric kind.
std::string sample_page() {
  sim::MetricsRegistry reg;
  const auto c = reg.counter("loop.count");
  const auto g = reg.gauge("svc.coverage");
  const auto t = reg.timer("loop.ms");
  const auto h = reg.histogram("decide.ms", 0.0, 10.0, 5);
  reg.add(c, 41.0);
  reg.set(g, 0.875);
  reg.observe(t, 1.5);
  reg.observe(t, 2.5);
  reg.observe(h, 1.0);   // bucket 0
  reg.observe(h, 9.5);   // bucket 4
  reg.observe(h, 42.0);  // outside [lo, hi) — must still count in +Inf
  reg.publish(12.5);

  BusSnapshot bus;
  bus.t = 12.5;
  bus.total = 7;
  bus.categories.push_back({"observation", 4});
  bus.categories.push_back({"decision", 3});

  ServeStats stats;
  stats.connections = 3;
  stats.requests = 9;

  const auto live = reg.live();
  return render_prometheus(live.get(), &bus, &stats);
}

// Exposition grammar per line: comments/metadata, samples, or blank.
// metric_name [a-zA-Z_:][a-zA-Z0-9_:]*, optional {labels}, a value, no
// timestamp (we never emit one).
const std::regex kHelpRe(R"(# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*)");
const std::regex kTypeRe(
    R"(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary|histogram|untyped))");
const std::regex kSampleRe(
    R"([a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9].*|[+-]Inf|NaN))");

void expect_exposition_grammar(const std::string& page) {
  ASSERT_FALSE(page.empty());
  EXPECT_EQ(page.back(), '\n');
  for (const std::string& line : lines_of(page)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, kHelpRe)) << line;
    } else if (line.rfind("# TYPE", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, kTypeRe)) << line;
    } else {
      ASSERT_NE(line.front(), '#') << "unknown comment form: " << line;
      EXPECT_TRUE(std::regex_match(line, kSampleRe)) << line;
    }
  }
}

TEST(PrometheusFormat, EveryLineMatchesTheExpositionGrammar) {
  expect_exposition_grammar(sample_page());
}

TEST(PrometheusFormat, TypeLinePrecedesItsSamples) {
  // The format requires metadata before any sample of that family.
  const auto lines = lines_of(sample_page());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty() || line.front() == '#') continue;
    const std::string family = line.substr(0, line.find_first_of("{ "));
    bool typed = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (lines[j].rfind("# TYPE ", 0) != 0) continue;
      const std::string typed_name =
          lines[j].substr(7, lines[j].find(' ', 7) - 7);
      // A sample belongs to a family if its name is the family name or an
      // allowed suffix of it (_sum/_count/_bucket/_min/_max/_stddev).
      if (family == typed_name ||
          family.rfind(typed_name + "_", 0) == 0) {
        typed = true;
        break;
      }
    }
    EXPECT_TRUE(typed) << "sample with no preceding TYPE: " << line;
  }
}

TEST(PrometheusFormat, MapsRegistryKinds) {
  const std::string page = sample_page();
  EXPECT_NE(page.find("# TYPE sa_loop_count counter"), std::string::npos);
  EXPECT_NE(page.find("sa_loop_count 41"), std::string::npos);
  EXPECT_NE(page.find("# TYPE sa_svc_coverage gauge"), std::string::npos);
  EXPECT_NE(page.find("sa_svc_coverage 0.875"), std::string::npos);
  EXPECT_NE(page.find("# TYPE sa_loop_ms summary"), std::string::npos);
  EXPECT_NE(page.find("sa_loop_ms_sum 4"), std::string::npos);
  EXPECT_NE(page.find("sa_loop_ms_count 2"), std::string::npos);
  EXPECT_NE(page.find("# TYPE sa_decide_ms histogram"), std::string::npos);
  EXPECT_NE(page.find("sa_sim_time_seconds 12.5"), std::string::npos);
}

TEST(PrometheusFormat, HistogramBucketsAreCumulativeWithInfEqualCount) {
  const auto lines = lines_of(sample_page());
  std::vector<double> bucket_counts;
  double inf_count = -1.0, count = -1.0;
  for (const std::string& line : lines) {
    if (line.rfind("sa_decide_ms_bucket", 0) == 0) {
      const double v = std::stod(line.substr(line.rfind(' ') + 1));
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        inf_count = v;
      } else {
        bucket_counts.push_back(v);
      }
    } else if (line.rfind("sa_decide_ms_count ", 0) == 0) {
      count = std::stod(line.substr(line.rfind(' ') + 1));
    }
  }
  ASSERT_EQ(bucket_counts.size(), 5u);
  for (std::size_t i = 1; i < bucket_counts.size(); ++i) {
    EXPECT_GE(bucket_counts[i], bucket_counts[i - 1]) << "not cumulative";
  }
  // Three observations total. sim::Histogram clamps out-of-range samples
  // to the edge bins, so 42.0 lands in the last finite bucket — and the
  // format invariant +Inf == observation count must still hold.
  EXPECT_EQ(inf_count, 3.0);
  EXPECT_EQ(count, 3.0);
  EXPECT_EQ(bucket_counts.back(), 3.0);  // two in-range + one clamped
  EXPECT_EQ(bucket_counts.front(), 1.0);
}

TEST(PrometheusFormat, BusCategoriesBecomeLabelledCounters) {
  const std::string page = sample_page();
  EXPECT_NE(page.find("sa_bus_events_total{category=\"observation\"} 4"),
            std::string::npos);
  EXPECT_NE(page.find("sa_bus_events_total{category=\"decision\"} 3"),
            std::string::npos);
  EXPECT_NE(page.find("sa_bus_events_all_total 7"), std::string::npos);
}

TEST(PrometheusFormat, NullSectionsAreOmitted) {
  const std::string page = render_prometheus(nullptr, nullptr, nullptr);
  EXPECT_EQ(page.find("sa_sim_time_seconds"), std::string::npos);
  EXPECT_EQ(page.find("sa_bus_events"), std::string::npos);
  EXPECT_EQ(page.find("sa_serve_"), std::string::npos);

  ServeStats stats;
  const std::string only_serve = render_prometheus(nullptr, nullptr, &stats);
  EXPECT_NE(only_serve.find("sa_serve_requests_total"), std::string::npos);
}

TEST(PrometheusFormat, ShardSnapshotRendersPerShardCounters) {
  ShardSnapshot shard;
  shard.t = 12.0;
  shard.events = {100, 250, 7};  // two shards + the coordinator
  shard.lag_seconds = 0.25;
  const std::string page =
      render_prometheus(nullptr, nullptr, nullptr, nullptr, &shard);
  expect_exposition_grammar(page);
  EXPECT_NE(page.find("sa_shard_events_total{shard=\"0\"} 100"),
            std::string::npos);
  EXPECT_NE(page.find("sa_shard_events_total{shard=\"1\"} 250"),
            std::string::npos);
  EXPECT_NE(page.find("sa_shard_events_total{shard=\"coordinator\"} 7"),
            std::string::npos);
  EXPECT_NE(page.find("sa_shard_lag_seconds 0.25"), std::string::npos);
}

TEST(PrometheusFormat, EmptyShardSnapshotIsOmitted) {
  const ShardSnapshot shard;  // no events published
  const std::string page =
      render_prometheus(nullptr, nullptr, nullptr, nullptr, &shard);
  EXPECT_EQ(page.find("sa_shard"), std::string::npos);
}

TEST(PrometheusFormat, SanitizesMetricNames) {
  EXPECT_EQ(sanitize_metric_name("loop.count"), "loop_count");
  EXPECT_EQ(sanitize_metric_name("svc coverage%"), "svc_coverage_");
  EXPECT_EQ(sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(sanitize_metric_name("a:b_c9"), "a:b_c9");
}

TEST(PrometheusFormat, EscapesLabelValues) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
}

/// A page carrying only the server's self-stats section, from a stats
/// object exercised across workers, routes and reject kinds.
std::string server_stats_page() {
  ServerStats stats(3, /*slow_threshold_s=*/1.0);
  stats.record_request(0, RouteClass::Metrics, 1.2e-3, 200, 512);
  stats.record_request(1, RouteClass::Metrics, 3.4e-3, 200, 512);
  stats.record_request(2, RouteClass::Metrics, 45.0, 200, 512);  // overflow
  stats.record_request(0, RouteClass::Status, 8e-4, 200, 256);
  stats.record_request(1, RouteClass::Events, 2e-5, 200, 0);
  stats.record_request(2, RouteClass::Control, 6e-4, 202, 32);
  stats.record_request(0, RouteClass::Healthz, 9e-6, 200, 3);
  stats.record_request(1, RouteClass::Other, 1e-4, 404, 64);
  stats.record_queue_wait(0, 5e-6);
  stats.add_request_bytes(0, 4096);
  stats.on_keepalive_reuse(1);
  stats.on_write_timeout(2);
  stats.on_parse_reject(0, 400);
  stats.on_parse_reject(1, 418);  // catch-all slot
  stats.connection_opened();
  const ServerStats::Snapshot snap = stats.snapshot();
  return render_prometheus(nullptr, nullptr, nullptr, &snap);
}

TEST(PrometheusFormat, ServerStatsPageMatchesTheExpositionGrammar) {
  const std::string page = server_stats_page();
  expect_exposition_grammar(page);
  EXPECT_NE(page.find("# TYPE sa_serve_request_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE sa_serve_queue_wait_seconds histogram"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE sa_serve_connections_active gauge"),
            std::string::npos);
  EXPECT_NE(page.find("sa_serve_keepalive_reuses_total 1"),
            std::string::npos);
  EXPECT_NE(page.find("sa_serve_write_timeouts_total 1"), std::string::npos);
  EXPECT_NE(page.find("sa_serve_request_bytes_total 4096"),
            std::string::npos);
  EXPECT_NE(page.find("sa_serve_rejected_requests_total{status=\"400\"} 1"),
            std::string::npos);
  EXPECT_NE(page.find("sa_serve_rejected_requests_total{status=\"other\"} 1"),
            std::string::npos);
}

TEST(PrometheusFormat, RouteHistogramsAreCumulativeWithInfEqualCount) {
  const auto lines = lines_of(server_stats_page());
  // Per route: cumulative finite buckets, +Inf == _count, even when some
  // observations overflowed the last finite bound (the /metrics 45 s one).
  for (const std::string route :
       {"/metrics", "/status", "/events", "/control", "/healthz", "other"}) {
    const std::string prefix =
        "sa_serve_request_duration_seconds_bucket{route=\"" + route + "\",";
    double prev = 0.0, inf = -1.0, count = -1.0;
    std::size_t finite_buckets = 0;
    for (const std::string& line : lines) {
      if (line.rfind(prefix, 0) == 0) {
        const double v = std::stod(line.substr(line.rfind(' ') + 1));
        if (line.find("le=\"+Inf\"") != std::string::npos) {
          inf = v;
        } else {
          EXPECT_GE(v, prev) << route << ": not cumulative: " << line;
          prev = v;
          ++finite_buckets;
        }
      } else if (line.rfind("sa_serve_request_duration_seconds_count{route=\"" +
                                route + "\"} ",
                            0) == 0) {
        count = std::stod(line.substr(line.rfind(' ') + 1));
      }
    }
    EXPECT_EQ(finite_buckets,
              static_cast<std::size_t>(LatencyHistogram::kFiniteBuckets))
        << route;
    EXPECT_GE(count, 0.0) << route << ": missing _count";
    EXPECT_EQ(inf, count) << route;
  }
}

TEST(PrometheusFormat, EmptyServerStatsStillRenderEveryRouteSeries) {
  // A scrape before any traffic must already show all six route series
  // (count 0) so dashboards never see families appear mid-flight.
  const ServerStats::Snapshot empty = ServerStats(2).snapshot();
  const std::string page = render_prometheus(nullptr, nullptr, nullptr,
                                             &empty);
  expect_exposition_grammar(page);
  for (const std::string route :
       {"/metrics", "/status", "/events", "/control", "/healthz", "other"}) {
    EXPECT_NE(
        page.find("sa_serve_request_duration_seconds_bucket{route=\"" +
                  route + "\",le=\"+Inf\"} 0"),
        std::string::npos)
        << route;
    EXPECT_NE(page.find("sa_serve_request_duration_seconds_count{route=\"" +
                        route + "\"} 0"),
              std::string::npos)
        << route;
  }
  EXPECT_NE(page.find("sa_serve_queue_wait_seconds_count 0"),
            std::string::npos);
}

TEST(PrometheusFormat, SseDropCounterIsSplitByReason) {
  ServeStats stats;
  stats.sse_dropped_contended = 2;
  stats.sse_dropped_overflow = 5;
  const std::string page = render_prometheus(nullptr, nullptr, &stats);
  expect_exposition_grammar(page);
  EXPECT_NE(page.find("sa_serve_sse_dropped_total{reason=\"contended\"} 2"),
            std::string::npos);
  EXPECT_NE(page.find("sa_serve_sse_dropped_total{reason=\"overflow\"} 5"),
            std::string::npos);
}

TEST(PrometheusFormat, FormatsSpecialValues) {
  EXPECT_EQ(format_value(std::numeric_limits<double>::infinity()), "+Inf");
  EXPECT_EQ(format_value(-std::numeric_limits<double>::infinity()), "-Inf");
  EXPECT_EQ(format_value(std::nan("")), "NaN");
  EXPECT_EQ(format_value(42.0), "42");
  EXPECT_EQ(format_value(0.875), "0.875");
}

}  // namespace
