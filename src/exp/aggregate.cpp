#include "exp/aggregate.hpp"

#include <cmath>
#include <stdexcept>

namespace sa::exp {

void Aggregate::add(const std::string& metric, double value) {
  if (std::isnan(value)) {
    throw std::invalid_argument("Aggregate::add: NaN value for metric '" +
                                metric + "'");
  }
  const auto [it, inserted] = stats_.try_emplace(metric);
  if (inserted) order_.push_back(metric);
  it->second.add(value);
}

void Aggregate::add(const Metrics& metrics) {
  for (const auto& [name, value] : metrics) add(name, value);
}

bool Aggregate::has(const std::string& metric) const {
  return stats_.find(metric) != stats_.end();
}

const sim::RunningStats& Aggregate::stats(const std::string& metric) const {
  const auto it = stats_.find(metric);
  if (it == stats_.end()) {
    throw std::out_of_range("Aggregate::stats: unknown metric '" + metric +
                            "'");
  }
  return it->second;
}

MetricSummary Aggregate::summary(const std::string& metric) const {
  const auto& s = stats(metric);
  MetricSummary out;
  out.n = s.count();
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.min();
  out.max = s.max();
  if (out.n > 1) {
    out.ci95 = t_critical_95(out.n - 1) * out.stddev /
               std::sqrt(static_cast<double>(out.n));
  }
  return out;
}

double Aggregate::t_critical_95(std::size_t df) noexcept {
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= std::size(kTable)) return kTable[df - 1];
  return 1.960;
}

}  // namespace sa::exp
