#include "core/stimulus.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace sa::core {
namespace {

Observation obs(std::initializer_list<std::pair<const std::string, double>> m) {
  return Observation{m};
}

TEST(StimulusAwareness, MirrorsSignalsToKnowledgeBaseAsPublic) {
  StimulusAwareness sa;
  KnowledgeBase kb;
  sa.update(1.0, obs({{"load", 5.0}}), kb);
  const auto item = kb.latest("load");
  ASSERT_TRUE(item.has_value());
  EXPECT_DOUBLE_EQ(as_number(item->value), 5.0);
  EXPECT_EQ(item->scope, Scope::Public);
  EXPECT_EQ(item->source, "stimulus");
}

TEST(StimulusAwareness, LearnsBaseline) {
  StimulusAwareness sa;
  KnowledgeBase kb;
  for (int i = 0; i < 50; ++i) {
    sa.update(static_cast<double>(i), obs({{"x", 10.0}}), kb);
  }
  EXPECT_NEAR(sa.baseline("x"), 10.0, 1e-9);
  EXPECT_NEAR(kb.number("stimulus.x.baseline"), 10.0, 1e-9);
}

TEST(StimulusAwareness, NoEventsDuringWarmup) {
  StimulusAwareness::Params p;
  p.min_samples = 10;
  StimulusAwareness sa(p);
  KnowledgeBase kb;
  // Wild values during warm-up should not fire events.
  for (int i = 0; i < 9; ++i) {
    sa.update(static_cast<double>(i), obs({{"x", i % 2 ? 100.0 : -100.0}}),
              kb);
    EXPECT_TRUE(sa.events().empty()) << "event during warm-up at " << i;
  }
}

TEST(StimulusAwareness, DetectsNovelStimulus) {
  sim::Rng rng(1);
  StimulusAwareness sa;
  KnowledgeBase kb;
  for (int i = 0; i < 100; ++i) {
    sa.update(static_cast<double>(i), obs({{"x", rng.normal(5.0, 0.5)}}), kb);
  }
  EXPECT_TRUE(sa.events().empty());
  sa.update(100.0, obs({{"x", 50.0}}), kb);  // massive excursion
  ASSERT_EQ(sa.events().size(), 1u);
  EXPECT_EQ(sa.events()[0].signal, "x");
  EXPECT_GT(sa.events()[0].zscore, 3.0);
  EXPECT_TRUE(kb.contains("stimulus.x.novel"));
}

TEST(StimulusAwareness, NegativeExcursionsAlsoDetected) {
  sim::Rng rng(2);
  StimulusAwareness sa;
  KnowledgeBase kb;
  for (int i = 0; i < 100; ++i) {
    sa.update(static_cast<double>(i), obs({{"x", rng.normal(5.0, 0.5)}}), kb);
  }
  sa.update(100.0, obs({{"x", -40.0}}), kb);
  ASSERT_EQ(sa.events().size(), 1u);
  EXPECT_LT(sa.events()[0].zscore, -3.0);
}

TEST(StimulusAwareness, EventsClearEachUpdate) {
  sim::Rng rng(3);
  StimulusAwareness sa;
  KnowledgeBase kb;
  for (int i = 0; i < 100; ++i) {
    sa.update(static_cast<double>(i), obs({{"x", rng.normal(0.0, 1.0)}}), kb);
  }
  sa.update(100.0, obs({{"x", 100.0}}), kb);
  ASSERT_FALSE(sa.events().empty());
  sa.update(101.0, obs({{"x", 0.0}}), kb);
  // The outlier inflated the variance; a normal reading is not novel.
  EXPECT_TRUE(sa.events().empty());
}

TEST(StimulusAwareness, TracksMultipleSignalsIndependently) {
  StimulusAwareness sa;
  KnowledgeBase kb;
  for (int i = 0; i < 30; ++i) {
    sa.update(static_cast<double>(i), obs({{"a", 1.0}, {"b", 100.0}}), kb);
  }
  EXPECT_NEAR(sa.baseline("a"), 1.0, 1e-9);
  EXPECT_NEAR(sa.baseline("b"), 100.0, 1e-9);
}

TEST(StimulusAwareness, QualityGrowsWithWarmSignals) {
  StimulusAwareness::Params p;
  p.min_samples = 5;
  StimulusAwareness sa(p);
  KnowledgeBase kb;
  EXPECT_DOUBLE_EQ(sa.quality(), 1.0);  // nothing observed: neutral
  for (int i = 0; i < 10; ++i) {
    sa.update(static_cast<double>(i), obs({{"a", 1.0}}), kb);
  }
  EXPECT_DOUBLE_EQ(sa.quality(), 1.0);
  sa.update(11.0, obs({{"b", 1.0}}), kb);  // brand-new cold signal
  EXPECT_DOUBLE_EQ(sa.quality(), 0.5);
}

TEST(StimulusAwareness, ReconfigureForgetsBaselines) {
  StimulusAwareness sa;
  KnowledgeBase kb;
  for (int i = 0; i < 30; ++i) {
    sa.update(static_cast<double>(i), obs({{"x", 5.0}}), kb);
  }
  sa.reconfigure();
  EXPECT_DOUBLE_EQ(sa.baseline("x"), 0.0);
  EXPECT_DOUBLE_EQ(sa.quality(), 1.0);  // fresh model: neutral again
}

TEST(StimulusAwareness, LevelAndName) {
  StimulusAwareness sa;
  EXPECT_EQ(sa.level(), Level::Stimulus);
  EXPECT_EQ(sa.name(), "stimulus");
}

}  // namespace
}  // namespace sa::core
