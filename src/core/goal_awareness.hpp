// Goal awareness: knowing one's own goals and how well they are being met.
//
// Reads the current metric values out of the knowledge base, evaluates the
// GoalModel, and publishes utility, feasibility, per-objective breakdown and
// violation events. Because the goal model is mutable at run time, this
// process also notices *goal change* — a shift in weights — and flags it,
// so downstream learners can reset instead of chasing a stale objective.
#pragma once

#include <string>
#include <vector>

#include "core/goal.hpp"
#include "core/process.hpp"
#include "learn/estimators.hpp"

namespace sa::core {

class GoalAwareness final : public AwarenessProcess {
 public:
  /// `goals` must outlive this process. `metrics` lists the KB keys (or
  /// observation signals) that carry the objectives' raw metric values.
  GoalAwareness(GoalModel& goals, std::vector<std::string> metrics)
      : goals_(goals), metrics_(std::move(metrics)) {}

  [[nodiscard]] Level level() const override { return Level::Goal; }
  [[nodiscard]] std::string name() const override { return "goal"; }

  /// Publishes "goal.utility", "goal.feasible", "goal.violations" and
  /// "goal.<metric>.utility" per objective.
  void update(double t, const Observation& obs, KnowledgeBase& kb) override;

  /// Utility computed on the most recent update.
  [[nodiscard]] double current_utility() const noexcept { return utility_; }
  [[nodiscard]] bool currently_feasible() const noexcept { return feasible_; }
  /// Recency-weighted mean utility — the agent's sense of "how am I doing".
  [[nodiscard]] double utility_trend() const noexcept {
    return trend_.value();
  }
  /// The metric map assembled on the last update (for policies/explainers).
  [[nodiscard]] const MetricMap& last_metrics() const noexcept {
    return last_metrics_;
  }
  [[nodiscard]] GoalModel& goals() noexcept { return goals_; }

  [[nodiscard]] double quality() const override;
  void reconfigure() override { trend_.reset(); }

 private:
  GoalModel& goals_;
  std::vector<std::string> metrics_;
  MetricMap last_metrics_;
  double utility_ = 0.0;
  bool feasible_ = true;
  learn::Ewma trend_{0.05};
  std::size_t updates_ = 0;
};

}  // namespace sa::core
