// Metamorphic properties of generated scenarios (ctest -L gen).
//
// These tests never assert a "right" trajectory; they assert relations
// between runs of the same generated world:
//
//   * seed determinism — same (spec, seed) runs to byte-identical
//     summaries; different seeds diverge but stay valid;
//   * thread-count invariance — a grid of whole cities is byte-identical
//     between a 1-worker and a many-worker exp::Runner pool;
//   * telemetry-attach non-perturbation — observability must observe, not
//     steer;
//   * empty-fault no-perturbation — faults:pressure=0 and no faults
//     section are the same world;
//   * degradation monotonicity — scaling fault pressure can only add
//     injected faults and can only lower goal attainment.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/runner.hpp"
#include "gen/scenario.hpp"
#include "gen/spec.hpp"
#include "sim/telemetry.hpp"
#include "support/metamorphic.hpp"

namespace sa::gen {
namespace {

namespace support = sa::test::support;

/// A small all-substrate city: fast enough for a corpus of runs, big
/// enough that every coupling and fault surface is live.
const char* kTownSpec =
    "world:horizon=80;multicore:nodes=1;"
    "cameras:count=6,objects=8,clusters=1;cloud:nodes=8;"
    "cpn:rows=3,cols=3,shortcuts=2;faults";

/// Runs a scenario to its horizon and serialises the summary in hexfloat
/// (bit-exact), so equality below means bitwise-equal trajectories.
std::string run_summary(const ScenarioSpec& spec, std::uint64_t seed,
                        Scenario::Options opts = {}) {
  Scenario world(spec, seed, opts);
  world.run();
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& [key, value] : world.summary()) {
    os << key << '=' << value << ';';
  }
  return os.str();
}

double summary_value(const Scenario& world, const std::string& key) {
  for (const auto& [k, v] : world.summary()) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "summary has no row '" << key << "'";
  return 0.0;
}

TEST(ScenarioMetamorphic, SameSpecAndSeedReproducesByteIdentically) {
  const auto spec = ScenarioSpec::parse(kTownSpec);
  EXPECT_TRUE(support::reproduces(
      [&] { return run_summary(spec, 5); }, "same-seed city runs"));
}

TEST(ScenarioMetamorphic, DifferentSeedsDivergeButStayValid) {
  const auto spec = ScenarioSpec::parse(kTownSpec);
  EXPECT_NE(run_summary(spec, 5), run_summary(spec, 6));
  Scenario world(spec, 6);
  world.run();
  const double goal = summary_value(world, "goal");
  EXPECT_GE(goal, 0.0);
  EXPECT_LE(goal, 1.0);
  EXPECT_GT(world.engine().executed(), 0u);
}

TEST(ScenarioMetamorphic, SpecSeedPinsTheWorldAcrossRunSeeds) {
  auto spec = ScenarioSpec::parse(kTownSpec);
  spec.seed = 41;  // explicit spec seed overrides the run seed everywhere
  EXPECT_EQ(run_summary(spec, 1), run_summary(spec, 2));
}

TEST(ScenarioMetamorphic, GridOfCitiesIsThreadCountInvariant) {
  // The composite world inside the parallel runner: baseline and
  // self-aware variants across seeds must serialise byte-identically
  // whatever the pool size (the BENCH_e15.json contract, reduced).
  const auto spec = ScenarioSpec::parse(kTownSpec);
  exp::Grid g;
  g.name = "e15.reduced";
  g.variants = {"baseline", "self-aware"};
  g.seeds = {5, 6};
  g.task = [spec](const exp::TaskContext& ctx) -> exp::TaskOutput {
    Scenario::Options opts;
    opts.self_aware = ctx.variant == 1;
    opts.telemetry = ctx.telemetry;
    opts.tracer = ctx.tracer;
    opts.metrics = ctx.metrics;
    Scenario world(spec, ctx.seed, opts);
    world.run();
    return {world.summary()};
  };
  EXPECT_TRUE(support::thread_count_invariant(g));
}

TEST(ScenarioMetamorphic, AttachingTelemetryDoesNotPerturbTheTrajectory) {
  const auto spec = ScenarioSpec::parse(kTownSpec);
  const std::string bare = run_summary(spec, 7);

  sim::TelemetryBus bus;
  sim::RingBufferSink sink(1024);
  bus.add_sink(&sink);
  Scenario::Options opts;
  opts.telemetry = &bus;
  const std::string observed = run_summary(spec, 7, opts);

  EXPECT_TRUE(support::byte_identical(bare, observed,
                                      "bare vs telemetry-attached runs"));
  // The bus must actually have seen the world, or this proves nothing.
  EXPECT_GT(bus.count(sim::TelemetryBus::kObservation), 0u);
}

TEST(ScenarioMetamorphic, EmptyFaultPlanDoesNotPerturbTheTrajectory) {
  // faults:pressure=0 expands to the guaranteed-empty plan; the world it
  // runs must be byte-identical to one with no faults section at all
  // (binding fault surfaces and ladders without a plan is a no-op).
  auto quiet = ScenarioSpec::parse(kTownSpec);
  quiet.faults.enabled = false;
  auto zero = ScenarioSpec::parse(kTownSpec);
  zero.faults.pressure = 0.0;
  ASSERT_TRUE(zero.expand_faults(5).empty());
  EXPECT_TRUE(support::byte_identical(run_summary(quiet, 5),
                                      run_summary(zero, 5),
                                      "no-faults vs pressure-0 runs"));
}

TEST(ScenarioMetamorphic, FaultPressureMonotonicity) {
  // Run-under-transform: scaling only faults:pressure over a corpus of
  // seeds can only add injected faults, and the corpus-mean goal cannot
  // improve under strictly more failure.
  const std::vector<double> pressures = {0.0, 2.0, 8.0};
  const std::vector<std::uint64_t> seeds = {5, 6, 7};
  std::vector<double> injected(pressures.size(), 0.0);
  std::vector<double> goal(pressures.size(), 0.0);
  for (std::size_t k = 0; k < pressures.size(); ++k) {
    auto spec = ScenarioSpec::parse(kTownSpec);
    spec.faults.pressure = pressures[k];
    for (const std::uint64_t seed : seeds) {
      Scenario world(spec, seed);
      world.run();
      injected[k] += summary_value(world, "faults_injected");
      goal[k] += summary_value(world, "goal");
    }
    goal[k] /= static_cast<double>(seeds.size());
  }
  EXPECT_TRUE(support::monotone(injected,
                                support::Relation::kStrictlyIncreasing,
                                "corpus faults_injected vs pressure"));
  EXPECT_TRUE(support::monotone(goal, support::Relation::kNonIncreasing,
                                "corpus mean goal vs pressure"));
}

TEST(ScenarioMetamorphic, CitySanity) {
  // The flagship E15 world: all four substrates live on one engine, the
  // couplings move data, and the standing fault environment fires.
  Scenario city(ScenarioSpec::city(), 61);
  ASSERT_NE(city.fleet(), nullptr);
  ASSERT_NE(city.autoscaler(), nullptr);
  ASSERT_NE(city.packet_network(), nullptr);
  ASSERT_EQ(city.edge_nodes(), 4u);
  EXPECT_FALSE(city.fault_plan().empty());
  EXPECT_GE(city.agents().size(), 5u);  // 4 edge managers + autoscaler
  city.run();
  EXPECT_GT(summary_value(city, "faults_injected"), 0.0);
  EXPECT_GT(summary_value(city, "reports_injected"), 0.0);
  EXPECT_GT(summary_value(city, "exchange_items"), 0.0);
  EXPECT_GT(summary_value(city, "cpn_delivery"), 0.5);
  const double goal = summary_value(city, "goal");
  EXPECT_GT(goal, 0.0);
  EXPECT_LE(goal, 1.0);
}

TEST(ScenarioMetamorphic, RejectsSubstratelessSpecs) {
  EXPECT_THROW(Scenario(ScenarioSpec::parse("world:horizon=10"), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace sa::gen
