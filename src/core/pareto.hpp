// Pareto analysis over metric snapshots.
//
// The paper frames run-time evaluation as "inherently multi-objective",
// with trade-offs the scalarised utility can hide (Section I; ref [1]).
// These helpers let a system — or its operator — reason about the
// *structure* of the trade-off space: which observed configurations are
// Pareto-efficient under the current goal model, which dominate which,
// and how large the efficient frontier is. Experiment E11 uses this to
// show how a run-time goal change moves the preferred point along an
// unchanged frontier.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/goal.hpp"

namespace sa::core {

/// One candidate point in objective space: a label plus its raw metrics.
struct ParetoPoint {
  std::string label;
  MetricMap metrics;
};

/// Indices (into `points`) of the Pareto-efficient points under `goals`:
/// a point is efficient iff no other point dominates it. Order follows the
/// input; ties (mutually non-dominating duplicates) are all kept.
[[nodiscard]] std::vector<std::size_t> pareto_front(
    const GoalModel& goals, const std::vector<ParetoPoint>& points);

/// True iff points[i] is dominated by any other point under `goals`.
[[nodiscard]] bool is_dominated(const GoalModel& goals,
                                const std::vector<ParetoPoint>& points,
                                std::size_t i);

/// Index of the utility-maximising point under `goals` (the scalarised
/// pick); by construction it always lies on the Pareto front.
[[nodiscard]] std::size_t utility_argmax(
    const GoalModel& goals, const std::vector<ParetoPoint>& points);

}  // namespace sa::core
