// bench_shard — sharded-execution scaling of one generated smart city
// (sa::shard; ISSUE 10's headline artifact, written to BENCH_shard.json).
//
// One large generated ScenarioSpec — by default ~102k cameras across 800
// districts feeding ~1M packet flows across 2000 CPN grids into a cloud
// backend with multicore edge offload and a standing fault environment —
// is run at shard counts 1, 2, 4 and 8 (variant rows). Shard count 1 is
// the legacy single-engine gen::Scenario path; every other row partitions
// the same world across N engine shards with the conservative barrier
// protocol. The trajectory is byte-identical for every row, so the
// substrate metrics double as a built-in correctness check (the bench
// fails if any row disagrees); wall_ms / events_per_shard carry the
// scaling story. --scenario SPEC swaps in any other generated world.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/harness.hpp"
#include "gen/scenario.hpp"
#include "gen/spec.hpp"
#include "shard/world.hpp"
#include "sim/report.hpp"

namespace {

using namespace sa;

const std::vector<std::uint64_t> kSeeds{71};
const std::vector<std::size_t> kShardCounts{1, 2, 4, 8};

/// ~102k cameras (800 districts x 128), ~1M flows (2000 grids x 500).
/// The horizon is short: the point is events/second at scale, not a long
/// trajectory, and the event-order convention makes length irrelevant to
/// the byte-equality claim.
std::string big_city_spec() {
  return "world:horizon=40,exchange=20;"
         "cameras:count=128,objects=24,clusters=4,districts=800,"
         "epoch=10;"
         "cpn:rows=4,cols=6,shortcuts=4,flows=500,grids=2000;"
         "cloud:nodes=32;"
         "multicore:nodes=4;"
         "faults";
}

exp::TaskOutput run_cell(exp::Harness& h, const gen::ScenarioSpec& spec,
                         std::size_t shards, const exp::TaskContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  exp::Metrics m;
  double lag = 0.0;
  if (shards == 1) {
    gen::Scenario::Options opts;
    opts.self_aware = true;
    opts.telemetry = ctx.telemetry;
    gen::Scenario city(spec, ctx.seed, opts);
    city.run();
    m = city.summary();
  } else {
    shard::ShardedWorld::Options opts;
    opts.shards = shards;
    opts.self_aware = true;
    opts.telemetry = ctx.telemetry;
    shard::ShardedWorld world(spec, ctx.seed, opts);
    world.run();
    m = world.world().summary();
    h.note_shard_events(world.shard_events());
    lag = world.lag_seconds();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  m.emplace_back("lag_seconds", lag);
  m.emplace_back("wall_ms", wall_ms);
  return {std::move(m)};
}

/// True when every substrate metric (everything except the wall-clock and
/// lag rows) is bit-equal across all variants for every seed.
bool rows_identical(const exp::GridResult& r) {
  for (std::size_t s = 0; s < r.seeds.size(); ++s) {
    const exp::Metrics& ref = r.at(0, s).metrics;
    for (std::size_t v = 1; v < r.variants.size(); ++v) {
      const exp::Metrics& got = r.at(v, s).metrics;
      if (got.size() != ref.size()) return false;
      for (std::size_t i = 0; i < ref.size(); ++i) {
        if (ref[i].first == "wall_ms" || ref[i].first == "lag_seconds") {
          continue;
        }
        if (got[i].first != ref[i].first ||
            got[i].second != ref[i].second) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("shard", argc, argv);

  gen::ScenarioSpec spec;
  try {
    spec = gen::ScenarioSpec::parse(h.options().scenario.empty()
                                        ? big_city_spec()
                                        : h.options().scenario);
    shard::ShardedWorld::validate(
        spec, {.shards = kShardCounts.back(), .self_aware = true});
  } catch (const std::exception& e) {
    std::cerr << "bench_shard: " << e.what() << "\n";
    return 2;
  }

  std::cout << "shard: one generated city at shard counts 1/2/4/8 — "
               "byte-identical\ntrajectory per count; wall-clock carries "
               "the scaling story.\nScenario: "
            << spec.to_string() << "\n"
            << h.seeds_for(kSeeds).size() << " seeds.\n\n";

  exp::Grid g;
  g.name = "shard.scale";
  for (const std::size_t n : kShardCounts) {
    g.variants.push_back("shards=" + std::to_string(n));
  }
  g.seeds = kSeeds;
  g.task = [&h, &spec](const exp::TaskContext& ctx) {
    return run_cell(h, spec, kShardCounts[ctx.variant], ctx);
  };
  const auto r = h.run(std::move(g));

  sim::Table t("shard  scaling: one city, N engine shards",
               {"config", "goal", "coverage", "delivery", "wall_ms",
                "speedup", "lag_s"});
  const double base = r.mean(0, "wall_ms");
  for (std::size_t v = 0; v < r.variants.size(); ++v) {
    const double wall = r.mean(v, "wall_ms");
    t.add_row({r.variants[v], r.mean(v, "goal"), r.mean(v, "coverage"),
               r.mean(v, "cpn_delivery"), wall,
               wall > 0.0 ? base / wall : 0.0, r.mean(v, "lag_seconds")});
  }
  t.print(std::cout);

  const bool identical = r.errors() == 0 && rows_identical(r);
  std::cout << "\ntrajectory byte-identical across shard counts: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";
  const int code = h.finish();
  return identical ? code : (code != 0 ? code : 1);
}
