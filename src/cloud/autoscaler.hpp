// Autoscalers for the volunteer cloud.
//
// Three variants mirror the multicore managers (experiment E3):
//
//   Static    — enrol a fixed number of nodes, chosen from the design-time
//               list, forever;
//   Reactive  — threshold scaling on the last epoch's SLA/utilisation;
//   SelfAware — a SelfAwareAgent that forecasts demand (time awareness),
//               learns per-node reliability by interacting with them
//               (interaction awareness), and picks the scaling action whose
//               *predicted* outcome maximises the goal model
//               (self-prediction, Kounev et al. — realised here with
//               ModelBasedPolicy).
//
// All variants pay the same cost model and see the same demand stream.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cloud/cluster.hpp"
#include "core/agent.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"

namespace sa::cloud {

class Autoscaler {
 public:
  enum class Variant { Static, Reactive, SelfAware };

  struct Params {
    Variant variant = Variant::SelfAware;
    core::LevelSet levels = core::LevelSet::full();  ///< SelfAware only
    std::size_t initial_nodes = 12;
    double sla_target = 0.95;
    double cost_scale = 400.0;  ///< epoch cost mapped to utility 0
    /// Epochs per demand season (e.g. the diurnal cycle); feeds the
    /// Holt-Winters member of time awareness. 0 disables seasonality.
    std::size_t seasonal_epochs = 60;
    std::uint64_t seed = 23;
    /// Optional telemetry bus: wired into the agent (and the cluster via
    /// the constructor). Non-owning; must outlive the autoscaler.
    sim::TelemetryBus* telemetry = nullptr;
    /// Optional tracer: the agent emits ODA spans + flow chains; the
    /// autoscaler emits one epoch-length span per control epoch under
    /// subject "cloud.autoscaler". Non-owning; must outlive the autoscaler.
    sim::Tracer* tracer = nullptr;
  };

  Autoscaler(Cluster& cluster, DemandModel& demand, Params p);

  /// One full control epoch: decide enrolment, run the cluster, learn.
  /// Returns the epoch record.
  CloudEpoch run_epoch();

  /// Event-driven equivalent of calling run_epoch() in a loop: schedules
  /// one control epoch every `period` (order 1 = control; <= 0 defaults to
  /// the cluster's epoch length, keeping cluster time aligned with engine
  /// time). The trajectory is identical to the synchronous loop.
  void bind(sim::Engine& engine, double period = 0.0,
            std::function<void(const CloudEpoch&)> on_epoch = {});

  [[nodiscard]] core::SelfAwareAgent& agent() noexcept { return *agent_; }
  [[nodiscard]] std::size_t target() const noexcept { return target_; }
  [[nodiscard]] static const char* variant_name(Variant v) noexcept;

  // Whole-run aggregates.
  [[nodiscard]] const sim::RunningStats& sla() const noexcept { return sla_; }
  [[nodiscard]] const sim::RunningStats& cost() const noexcept {
    return cost_;
  }
  [[nodiscard]] const sim::RunningStats& utility() const noexcept {
    return utility_;
  }
  [[nodiscard]] double sla_violation_rate() const noexcept {
    return epochs_ ? static_cast<double>(violations_) /
                         static_cast<double>(epochs_)
                   : 0.0;
  }

 private:
  void build_agent();
  /// Node enrolment order: learned reliability ranking for SelfAware,
  /// design-time list order otherwise.
  [[nodiscard]] std::vector<std::size_t> enrolment_order() const;
  /// Predicted epoch metrics if the enrolment target were `k`.
  [[nodiscard]] core::MetricMap predict(std::size_t k) const;

  Cluster& cluster_;
  DemandModel& demand_;
  Params p_;
  std::unique_ptr<core::SelfAwareAgent> agent_;

  std::size_t target_;
  CloudEpoch last_;
  static constexpr int kDeltas[] = {-3, -1, 0, 1, 3};

  sim::RunningStats sla_, cost_, utility_;
  std::size_t epochs_ = 0, violations_ = 0;
  sim::SubjectId trace_subject_ = 0;  ///< "cloud.autoscaler" when tracing
  sim::NameId n_epoch_ = 0, k_sla_ = 0, k_cost_ = 0;
};

}  // namespace sa::cloud
