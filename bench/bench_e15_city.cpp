// E15 — the smart-city composite stress scenario
// (paper Sections III and VII: self-awareness is argued to matter most in
// large, heterogeneous, interacting systems — not in any single substrate
// benchmarked alone).
//
// One generated ScenarioSpec wires all four substrates into ONE engine:
// smart cameras track street objects; their epoch reports travel a
// cognitive packet network to a volunteer-cloud backend; the backend's
// saturation offloads analytics onto multicore edge nodes; a standing
// fault environment presses on everything at once. Two variants face the
// byte-identical generated world (same topologies, workloads and fault
// schedules per seed):
//
//   baseline   — design-time choices everywhere: static manager(s),
//                homogeneous broadcast cameras, static autoscaler,
//                shortest-path routing, no exchange, no degradation;
//   self-aware — the paper's stack: learning cameras, Q-routing,
//                model-based autoscaling, self-aware managers with
//                degradation ladders, plus cross-domain knowledge
//                exchange.
//
// Every random draw comes from the spec's own per-section streams
// (sa::gen), so each metric — and the whole BENCH_e15.json — is
// bitwise-identical across --jobs N. --scenario SPEC replaces the city
// with any other generated world.
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/journal.hpp"
#include "ckpt/state.hpp"
#include "exp/harness.hpp"
#include "gen/scenario.hpp"
#include "gen/spec.hpp"
#include "shard/world.hpp"
#include "sim/report.hpp"

namespace {

using namespace sa;

const std::vector<std::uint64_t> kSeeds{61, 62, 63};

/// Sharded path (--shards N > 1): the same world partitioned across N
/// engine shards, byte-identical summary (sa::shard). The serve/journal
/// seams stay on the coordinator engine, so --control-journal composes;
/// --checkpoint was already rejected by the arg parser.
exp::TaskOutput run_city_sharded(exp::Harness& h, const gen::ScenarioSpec& spec,
                                 bool self_aware,
                                 const exp::TaskContext& ctx) {
  shard::ShardedWorld::Options opts;
  opts.shards = ctx.shards;
  opts.self_aware = self_aware;
  opts.telemetry = ctx.telemetry;
  shard::ShardedWorld world(spec, ctx.seed, opts);
  gen::Scenario& city = world.world();

  if (!ctx.control_journal.empty()) {
    std::vector<ckpt::JournalEntry> entries;
    if (const ckpt::Status st =
            ckpt::parse_journal_spec(ctx.control_journal, entries);
        !st.ok()) {
      throw std::invalid_argument("control journal: " + st.to_string());
    }
    ckpt::schedule_replay(city.engine(), std::move(entries), /*order=*/1000,
                          &city.injector(), ctx.telemetry);
  }
  if (ctx.serve_bind) {
    exp::ServeHooks hooks;
    hooks.engine = &city.engine();
    hooks.injector = &city.injector();
    hooks.agents = city.agents();
    // Runs at coordinator publish events, i.e. while the shard engines
    // are barrier-paused — the counters are safe to read then.
    hooks.shard_stats = [&world] {
      return std::make_pair(world.shard_events(), world.lag_seconds());
    };
    ctx.serve_bind(hooks);
  }

  world.run();
  h.note_shard_events(world.shard_events());
  return {city.summary()};
}

exp::TaskOutput run_city(const gen::ScenarioSpec& spec, bool self_aware,
                         const exp::TaskContext& ctx) {
  gen::Scenario::Options opts;
  opts.self_aware = self_aware;
  opts.telemetry = ctx.telemetry;
  opts.tracer = ctx.tracer;
  opts.metrics = ctx.metrics;
  gen::Scenario city(spec, ctx.seed, opts);

  // Replay a recorded control stream (--control-journal, or a resumed
  // run's live journal) at its original sim times and at the bridge's
  // event order, so the replayed trajectory byte-matches the served one.
  if (!ctx.control_journal.empty()) {
    std::vector<ckpt::JournalEntry> entries;
    if (const ckpt::Status st =
            ckpt::parse_journal_spec(ctx.control_journal, entries);
        !st.ok()) {
      throw std::invalid_argument("control journal: " + st.to_string());
    }
    ckpt::schedule_replay(city.engine(), std::move(entries), /*order=*/1000,
                          &city.injector(), ctx.telemetry);
  }

  // Must outlive city.run(): the serve bridge's cmd=checkpoint hook calls
  // into it from engine-step boundaries for the duration of the run.
  ckpt::WorldCheckpoint wc;
  if (ctx.serve_bind) {
    exp::ServeHooks hooks;
    hooks.engine = &city.engine();
    hooks.injector = &city.injector();
    hooks.agents = city.agents();
    if (!ctx.checkpoint_path.empty()) {
      city.register_checkpoint(wc);
      hooks.checkpoint = [&wc, &spec, path = std::string(ctx.checkpoint_path),
                          seed = ctx.seed](double t) {
        ckpt::WorldCheckpoint::Meta meta;
        meta.t = t;
        meta.seed = seed;
        meta.recipe = spec.to_string();
        return wc.save_file(meta, path).ok();
      };
    }
    ctx.serve_bind(hooks);
  }

  city.run();
  return {city.summary()};
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e15_city", argc, argv);

  gen::ScenarioSpec spec;
  try {
    spec = gen::ScenarioSpec::parse(h.options().scenario.empty()
                                        ? gen::ScenarioSpec::city_spec()
                                        : h.options().scenario);
    if (!spec.any_substrate()) {
      throw std::invalid_argument(
          "scenario: spec enables no substrate section");
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_e15_city: " << e.what() << "\n";
    return 2;
  }

  std::cout << "E15: generated smart-city composite — cameras -> packet "
               "network -> cloud\nbackend -> multicore edge, one engine, "
               "one standing fault environment.\nScenario: "
            << spec.to_string() << "\n"
            << h.seeds_for(kSeeds).size() << " seeds.\n\n";

  exp::Grid g;
  g.name = "e15.city";
  g.variants = {"baseline", "self-aware"};
  g.seeds = kSeeds;
  g.task = [&h, &spec](const exp::TaskContext& ctx) {
    if (ctx.shards > 1) {
      return run_city_sharded(h, spec, ctx.variant == 1, ctx);
    }
    return run_city(spec, ctx.variant == 1, ctx);
  };
  const auto r = h.run(std::move(g));

  sim::Table t("E15  smart city: composite goal attainment under faults",
               {"stack", "goal", "coverage", "delivery", "sla",
                "edge_util", "faults"});
  for (std::size_t v = 0; v < r.variants.size(); ++v) {
    t.add_row({r.variants[v], r.mean(v, "goal"), r.mean(v, "coverage"),
               r.mean(v, "cpn_delivery"), r.mean(v, "cloud_sla"),
               r.mean(v, "edge_utility"), r.mean(v, "faults_injected")});
  }
  t.print(std::cout);
  return h.finish();
}
