// EINTR-safety regression (ctest -L serve).
//
// The harness's checkpoint supervisor installs SIGTERM/SIGINT handlers,
// so every socket loop in the serve plane and the load generator now runs
// in a process where slow syscalls can return EINTR at any moment. This
// suite pesters the process with a no-op signal (installed WITHOUT
// SA_RESTART, so the kernel does interrupt syscalls) while requests flow
// over loopback, and asserts nothing fails: accept/recv/send/connect all
// retry instead of dropping connections. Before the connect_to fix a
// signal landing inside connect(2) tore down a perfectly viable
// handshake — connect is the one call SA_RESTART never restarts.
#include <gtest/gtest.h>

#include <csignal>
#include <pthread.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "loadgen/loadgen.hpp"
#include "serve/server.hpp"

namespace {

using namespace sa;

extern "C" void eintr_test_noop_handler(int) {}

/// Installs SIGUSR1 with SA_RESTART cleared: every signal delivery makes
/// blocking syscalls in the target thread fail with EINTR.
struct InterruptingSignal {
  struct sigaction old {};
  InterruptingSignal() {
    struct sigaction sa {};
    sa.sa_handler = eintr_test_noop_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately no SA_RESTART
    sigaction(SIGUSR1, &sa, &old);
  }
  ~InterruptingSignal() { sigaction(SIGUSR1, &old, nullptr); }
};

TEST(EintrSafety, RequestsSurviveASignalStorm) {
  InterruptingSignal guard;

  serve::Server::Options sopts;
  sopts.workers = 2;
  sopts.read_timeout_ms = 500;
  serve::Server server(sopts);
  server.route("GET", "/status", [](const serve::HttpRequest&) {
    serve::HttpResponse resp;
    resp.body = "{\"ok\":true}\n";
    return resp;
  });
  ASSERT_TRUE(server.start()) << server.error();

  // Pester both sides: the client thread (pthread_kill) takes EINTR in
  // connect/send/recv; process-directed kills can land on the server's
  // acceptor and workers too.
  const pthread_t client = pthread_self();
  std::atomic<bool> pestering{true};
  std::thread pest([&pestering, client] {
    while (pestering.load(std::memory_order_relaxed)) {
      pthread_kill(client, SIGUSR1);
      kill(getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    int status = 0;
    const std::string body =
        loadgen::fetch("127.0.0.1", server.port(), "/status", 2000, &status);
    if (status != 200 || body.find("\"ok\":true") == std::string::npos) {
      ++failures;
    }
  }
  pestering.store(false);
  pest.join();
  server.stop();
  EXPECT_EQ(failures, 0);
}

TEST(EintrSafety, PoolUnderSignalStormReportsNoTransportErrors) {
  InterruptingSignal guard;

  serve::Server::Options sopts;
  sopts.workers = 4;
  sopts.read_timeout_ms = 500;
  serve::Server server(sopts);
  for (const std::string path : {"/metrics", "/status", "/healthz"}) {
    server.route("GET", path, [](const serve::HttpRequest&) {
      serve::HttpResponse resp;
      resp.body = "ok\n";
      return resp;
    });
  }
  ASSERT_TRUE(server.start()) << server.error();

  std::atomic<bool> pestering{true};
  std::thread pest([&pestering] {
    while (pestering.load(std::memory_order_relaxed)) {
      kill(getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  loadgen::Options lopts;
  lopts.port = server.port();
  lopts.scrapers = 4;
  lopts.keep_alive = false;  // every request re-connects: max EINTR surface
  lopts.seed = 7;
  lopts.timeout_ms = 2000;
  loadgen::Pool pool(lopts);
  pool.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  pool.stop();
  pestering.store(false);
  pest.join();
  server.stop();

  const loadgen::Report report = pool.report();
  EXPECT_GT(report.connects, 0u);
  EXPECT_EQ(report.connect_failures, 0u);
  std::uint64_t errors = 0;
  for (const loadgen::RouteReport& r : report.routes) errors += r.errors;
  EXPECT_EQ(errors, 0u);
}

}  // namespace
