#include "serve/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace sa::serve {

namespace {

using Kind = sim::MetricsRegistry::Kind;
using LiveMetric = sim::MetricsRegistry::LiveMetric;

void append_sample(std::string& out, std::string_view name,
                   std::string_view labels, double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += format_value(value);
  out += '\n';
}

void append_meta(std::string& out, std::string_view name,
                 std::string_view type, std::string_view help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void render_metric(std::string& out, const LiveMetric& m) {
  const std::string name = "sa_" + sanitize_metric_name(m.name);
  switch (m.kind) {
    case Kind::Counter:
      append_meta(out, name, "counter", "registry counter " + m.name);
      append_sample(out, name, {}, m.value);
      break;
    case Kind::Gauge:
      append_meta(out, name, "gauge", "registry gauge " + m.name);
      append_sample(out, name, {}, m.value);
      break;
    case Kind::Timer: {
      append_meta(out, name, "summary", "registry timer " + m.name);
      append_sample(out, name + "_sum", {}, m.sum);
      append_sample(out, name + "_count", {},
                    static_cast<double>(m.count));
      // Prometheus cannot recover extrema from a summary; expose them.
      append_meta(out, name + "_min", "gauge", "minimum observed");
      append_sample(out, name + "_min", {}, m.count ? m.min : 0.0);
      append_meta(out, name + "_max", "gauge", "maximum observed");
      append_sample(out, name + "_max", {}, m.count ? m.max : 0.0);
      break;
    }
    case Kind::Histogram: {
      append_meta(out, name, "histogram", "registry histogram " + m.name);
      const std::size_t nbins = m.bins.size();
      const double width =
          nbins ? (m.hi - m.lo) / static_cast<double>(nbins) : 0.0;
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < nbins; ++b) {
        cumulative += m.bins[b];
        const double le = m.lo + width * static_cast<double>(b + 1);
        append_sample(out, name + "_bucket",
                      "le=\"" + format_value(le) + "\"",
                      static_cast<double>(cumulative));
      }
      // The +Inf bucket must equal the observation count even when some
      // observations fell outside [lo, hi).
      append_sample(out, name + "_bucket", "le=\"+Inf\"",
                    static_cast<double>(m.count));
      append_sample(out, name + "_sum", {}, m.sum);
      append_sample(out, name + "_count", {},
                    static_cast<double>(m.count));
      break;
    }
  }
}

/// One labelled series of a fixed-boundary latency histogram: cumulative
/// `le` buckets over the exact-decimal boundaries, +Inf == count, then the
/// labelled _sum/_count pair. `label` is e.g. `route="/metrics"` or empty.
void append_latency_series(std::string& out, const std::string& name,
                           const std::string& label,
                           const LatencyHistogram::Snapshot& h) {
  std::uint64_t cumulative = 0;
  for (int b = 0; b < LatencyHistogram::kFiniteBuckets; ++b) {
    cumulative += h.buckets[static_cast<std::size_t>(b)];
    std::string labels = label;
    if (!labels.empty()) labels += ',';
    labels += "le=\"" + LatencyHistogram::le_label(b) + "\"";
    append_sample(out, name + "_bucket", labels,
                  static_cast<double>(cumulative));
  }
  std::string inf_labels = label;
  if (!inf_labels.empty()) inf_labels += ',';
  inf_labels += "le=\"+Inf\"";
  append_sample(out, name + "_bucket", inf_labels,
                static_cast<double>(h.count));
  append_sample(out, name + "_sum", label, h.sum_s());
  append_sample(out, name + "_count", label, static_cast<double>(h.count));
}

void render_server_stats(std::string& out,
                         const ServerStats::Snapshot& server) {
  append_meta(out, "sa_serve_request_duration_seconds", "histogram",
              "request latency by route class (log-linear buckets)");
  for (std::size_t r = 0; r < kRouteClasses; ++r) {
    const std::string label =
        std::string("route=\"") +
        escape_label_value(route_label(static_cast<RouteClass>(r))) + "\"";
    append_latency_series(out, "sa_serve_request_duration_seconds", label,
                          server.routes[r]);
  }
  append_meta(out, "sa_serve_queue_wait_seconds", "histogram",
              "accepted-connection wait until a worker picked it up");
  append_latency_series(out, "sa_serve_queue_wait_seconds", {},
                        server.queue_wait);
  append_meta(out, "sa_serve_connections_active", "gauge",
              "connections accepted and not yet closed");
  append_sample(out, "sa_serve_connections_active", {},
                static_cast<double>(server.active));
  append_meta(out, "sa_serve_keepalive_reuses_total", "counter",
              "requests served on an already-used connection");
  append_sample(out, "sa_serve_keepalive_reuses_total", {},
                static_cast<double>(server.keepalive_reuses));
  append_meta(out, "sa_serve_write_timeouts_total", "counter",
              "sends that hit SO_SNDTIMEO (client stopped reading)");
  append_sample(out, "sa_serve_write_timeouts_total", {},
                static_cast<double>(server.write_timeouts));
  append_meta(out, "sa_serve_request_bytes_total", "counter",
              "bytes received from clients");
  append_sample(out, "sa_serve_request_bytes_total", {},
                static_cast<double>(server.request_bytes));
  append_meta(out, "sa_serve_response_bytes_total", "counter",
              "bytes sent to clients");
  append_sample(out, "sa_serve_response_bytes_total", {},
                static_cast<double>(server.response_bytes));
  append_meta(out, "sa_serve_rejected_requests_total", "counter",
              "parser rejections by response status");
  for (std::size_t i = 0; i < kRejectKinds; ++i) {
    const std::string status = i < kRejectStatuses.size()
                                   ? std::to_string(kRejectStatuses[i])
                                   : std::string("other");
    append_sample(out, "sa_serve_rejected_requests_total",
                  "status=\"" + status + "\"",
                  static_cast<double>(server.rejects[i]));
  }
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // %.17g round-trips but is noisy for the common integral case.
  double integral = 0.0;
  if (std::modf(v, &integral) == 0.0 && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

std::string render_prometheus(
    const sim::MetricsRegistry::LiveSnapshot* live, const BusSnapshot* bus,
    const ServeStats* serve, const ServerStats::Snapshot* server,
    const ShardSnapshot* shard) {
  std::string out;
  out.reserve(4096);
  if (live != nullptr) {
    append_meta(out, "sa_sim_time_seconds", "gauge",
                "sim time of the last published snapshot");
    append_sample(out, "sa_sim_time_seconds", {}, live->t);
    append_meta(out, "sa_metrics_generation", "counter",
                "number of registry publishes so far");
    append_sample(out, "sa_metrics_generation", {},
                  static_cast<double>(live->generation));
    for (const LiveMetric& m : live->metrics) render_metric(out, m);
  }
  if (bus != nullptr) {
    append_meta(out, "sa_bus_events_total", "counter",
                "telemetry-bus events by category");
    for (const BusSnapshot::Category& c : bus->categories) {
      append_sample(out, "sa_bus_events_total",
                    "category=\"" + escape_label_value(c.name) + "\"",
                    static_cast<double>(c.count));
    }
    append_meta(out, "sa_bus_events_all_total", "counter",
                "telemetry-bus events across all categories");
    append_sample(out, "sa_bus_events_all_total", {},
                  static_cast<double>(bus->total));
  }
  if (serve != nullptr) {
    append_meta(out, "sa_serve_connections_total", "counter",
                "TCP connections accepted");
    append_sample(out, "sa_serve_connections_total", {},
                  static_cast<double>(serve->connections));
    append_meta(out, "sa_serve_requests_total", "counter",
                "HTTP requests dispatched");
    append_sample(out, "sa_serve_requests_total", {},
                  static_cast<double>(serve->requests));
    append_meta(out, "sa_serve_parse_errors_total", "counter",
                "HTTP requests rejected by the parser");
    append_sample(out, "sa_serve_parse_errors_total", {},
                  static_cast<double>(serve->parse_errors));
    append_meta(out, "sa_serve_sse_subscribers", "gauge",
                "live SSE subscriber queues");
    append_sample(out, "sa_serve_sse_subscribers", {},
                  static_cast<double>(serve->sse_subscribers));
    append_meta(out, "sa_serve_sse_dropped_total", "counter",
                "SSE events dropped (bounded queues, never block the sim)");
    append_sample(out, "sa_serve_sse_dropped_total",
                  "reason=\"contended\"",
                  static_cast<double>(serve->sse_dropped_contended));
    append_sample(out, "sa_serve_sse_dropped_total", "reason=\"overflow\"",
                  static_cast<double>(serve->sse_dropped_overflow));
  }
  if (shard != nullptr && !shard->events.empty()) {
    append_meta(out, "sa_shard_events_total", "counter",
                "events executed per engine shard (sa::shard; the final "
                "sample is the coordinator engine)");
    for (std::size_t i = 0; i < shard->events.size(); ++i) {
      const bool coordinator = i + 1 == shard->events.size();
      append_sample(out, "sa_shard_events_total",
                    coordinator ? std::string("shard=\"coordinator\"")
                                : "shard=\"" + std::to_string(i) + "\"",
                    static_cast<double>(shard->events[i]));
    }
    append_meta(out, "sa_shard_lag_seconds", "gauge",
                "cumulative coordinator barrier-wait wall-clock seconds");
    append_sample(out, "sa_shard_lag_seconds", {}, shard->lag_seconds);
  }
  if (server != nullptr) render_server_stats(out, *server);
  return out;
}

}  // namespace sa::serve
