// ServerStats / LatencyHistogram unit contracts: the fixed log-linear
// bucket layout (boundaries, labels, overflow), merge algebra (associative
// and order-independent, so per-worker slabs merged at scrape time equal a
// single-histogram recording), deterministic quantiles, the reject-status
// keying, and the bounded slow-request ring.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "serve/stats.hpp"

namespace {

using namespace sa::serve;
using Hist = LatencyHistogram;
using Snap = LatencyHistogram::Snapshot;

TEST(RouteClassify, WiredEndpointsAndCatchAll) {
  EXPECT_EQ(classify_route("/metrics"), RouteClass::Metrics);
  EXPECT_EQ(classify_route("/status"), RouteClass::Status);
  EXPECT_EQ(classify_route("/events"), RouteClass::Events);
  EXPECT_EQ(classify_route("/control"), RouteClass::Control);
  EXPECT_EQ(classify_route("/healthz"), RouteClass::Healthz);
  EXPECT_EQ(classify_route("/"), RouteClass::Other);
  EXPECT_EQ(classify_route("/metrics/extra"), RouteClass::Other);
  EXPECT_EQ(classify_route(""), RouteClass::Other);
}

TEST(RouteClassify, LabelsRoundTrip) {
  EXPECT_STREQ(route_label(RouteClass::Metrics), "/metrics");
  EXPECT_STREQ(route_label(RouteClass::Healthz), "/healthz");
  EXPECT_STREQ(route_label(RouteClass::Other), "other");
  // Every wired label classifies back to its own class.
  for (std::size_t r = 0; r + 1 < kRouteClasses; ++r) {
    const auto route = static_cast<RouteClass>(r);
    EXPECT_EQ(classify_route(route_label(route)), route);
  }
}

TEST(LatencyBuckets, BoundaryAssignments) {
  // Non-positive and sub-boundary durations land in the first bucket.
  EXPECT_EQ(Hist::bucket_of(0.0), 0);
  EXPECT_EQ(Hist::bucket_of(-1.0), 0);
  EXPECT_EQ(Hist::bucket_of(1.5e-6), 0);   // 1.5 us, le 2 us
  EXPECT_EQ(Hist::bucket_of(2.5e-6), 1);   // le 3 us
  EXPECT_EQ(Hist::bucket_of(9.5e-6), 8);   // le 10 us: last sub of decade 0
  EXPECT_EQ(Hist::bucket_of(10.5e-6), 9);  // le 20 us: first of decade 1
  EXPECT_EQ(Hist::bucket_of(0.5), 49);     // 500 ms -> le 0.6 s
  EXPECT_EQ(Hist::bucket_of(9.99), Hist::kFiniteBuckets - 1);  // le 10 s
  EXPECT_EQ(Hist::bucket_of(10.0), Hist::kFiniteBuckets);      // overflow
  EXPECT_EQ(Hist::bucket_of(3600.0), Hist::kFiniteBuckets);
}

TEST(LatencyBuckets, UpperBoundsAreStrictlyIncreasingShortDecimals) {
  double prev = 0.0;
  std::set<std::string> labels;
  for (int b = 0; b < Hist::kFiniteBuckets; ++b) {
    const double ub = Hist::upper_bound_s(b);
    EXPECT_GT(ub, prev) << "bucket " << b;
    prev = ub;
    const std::string label = Hist::le_label(b);
    labels.insert(label);
    // The label is the exact decimal of the bound: parsing it back gives
    // the same double (boundaries are integer microseconds).
    EXPECT_DOUBLE_EQ(std::stod(label), ub) << label;
  }
  EXPECT_EQ(labels.size(), static_cast<std::size_t>(Hist::kFiniteBuckets));
  EXPECT_DOUBLE_EQ(Hist::upper_bound_s(0), 2e-6);
  EXPECT_DOUBLE_EQ(Hist::upper_bound_s(Hist::kFiniteBuckets - 1), 10.0);
  EXPECT_EQ(Hist::le_label(0), "0.000002");
  EXPECT_EQ(Hist::le_label(8), "0.00001");
  EXPECT_EQ(Hist::le_label(Hist::kFiniteBuckets - 1), "10");
}

TEST(LatencyBuckets, EveryBucketContainsItsOwnRange) {
  // A sample strictly inside (lower, upper] must land in that bucket.
  for (int b = 0; b < Hist::kFiniteBuckets; ++b) {
    const double lower = b == 0 ? 0.0 : Hist::upper_bound_s(b - 1);
    const double upper = Hist::upper_bound_s(b);
    const double mid = lower + (upper - lower) * 0.5;
    EXPECT_EQ(Hist::bucket_of(mid), b) << "mid of bucket " << b;
  }
}

TEST(LatencyHistogramTest, RecordCountsAndOverflow) {
  Hist h;
  h.record(1e-3);
  h.record(1.5e-3);  // same bucket as 1e-3's successor range
  h.record(25.0);    // overflow
  const Snap s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.overflow, 1u);
  std::uint64_t finite = 0;
  for (const auto c : s.buckets) finite += c;
  EXPECT_EQ(finite, 2u);
  EXPECT_NEAR(s.sum_s(), 1e-3 + 1.5e-3 + 25.0, 1e-6);
}

Snap snap_of(const std::vector<double>& samples) {
  Hist h;
  for (const double s : samples) h.record(s);
  return h.snapshot();
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndOrderIndependent) {
  const Snap a = snap_of({1e-5, 2e-4, 0.3});
  const Snap b = snap_of({5e-6, 5e-6, 12.0});
  const Snap c = snap_of({1e-3, 0.07});

  Snap left_first = a;   // (a + b) + c
  left_first.merge(b);
  left_first.merge(c);
  Snap right_first = b;  // a + (b + c), built as (b + c) + a
  right_first.merge(c);
  right_first.merge(a);

  EXPECT_EQ(left_first.buckets, right_first.buckets);
  EXPECT_EQ(left_first.overflow, right_first.overflow);
  EXPECT_EQ(left_first.count, right_first.count);
  EXPECT_EQ(left_first.sum_ns, right_first.sum_ns);
}

TEST(LatencyHistogramTest, MergedSlabsEqualOneWriter) {
  // The per-worker design invariant: spreading samples over any number of
  // slabs and merging at scrape time is byte-identical to one histogram
  // that saw every sample.
  const std::vector<double> samples = {1e-6, 3e-6,  9e-5, 4e-4, 4e-4,
                                       2e-3, 0.011, 0.38, 2.5,  60.0};
  const Snap all = snap_of(samples);
  for (const std::size_t slabs : {2u, 3u, 7u}) {
    std::vector<Hist> workers(slabs);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      workers[i % slabs].record(samples[i]);
    }
    Snap merged;
    for (const Hist& w : workers) merged.merge(w.snapshot());
    EXPECT_EQ(merged.buckets, all.buckets) << slabs << " slabs";
    EXPECT_EQ(merged.count, all.count);
    EXPECT_EQ(merged.overflow, all.overflow);
    EXPECT_EQ(merged.sum_ns, all.sum_ns);
    // Identical integer state -> bit-identical quantiles, however the
    // samples were spread over workers.
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(merged.quantile(q), all.quantile(q)) << q;
    }
  }
}

TEST(LatencyHistogramTest, QuantilesInterpolateWithinTheBucket) {
  const Snap s = snap_of(std::vector<double>(100, 1.5e-3));
  // All mass sits in one bucket (1 ms, 2 ms]; every quantile answers a
  // point inside it.
  for (const double q : {0.01, 0.5, 0.99}) {
    const double v = s.quantile(q);
    EXPECT_GT(v, 1e-3) << q;
    EXPECT_LE(v, 2e-3) << q;
  }
  EXPECT_LT(s.quantile(0.1), s.quantile(0.9));
  EXPECT_EQ(Snap{}.quantile(0.5), 0.0);  // empty histogram
}

TEST(LatencyHistogramTest, OverflowQuantileAnswersTheLastFiniteBound) {
  const Snap s = snap_of({20.0, 30.0, 40.0});
  EXPECT_EQ(s.quantile(0.5), 10.0);
  EXPECT_EQ(s.quantile(1.0), 10.0);
}

TEST(ServerStatsTest, MergesAcrossWorkerSlabs) {
  ServerStats stats(3);
  stats.record_request(0, RouteClass::Metrics, 1e-3, 200, 100);
  stats.record_request(1, RouteClass::Metrics, 2e-3, 200, 150);
  stats.record_request(2, RouteClass::Status, 5e-4, 200, 50);
  stats.record_queue_wait(0, 1e-5);
  stats.record_queue_wait(2, 2e-5);
  stats.add_request_bytes(1, 300);
  stats.on_keepalive_reuse(0);
  stats.on_keepalive_reuse(1);
  stats.on_write_timeout(2);

  const ServerStats::Snapshot s = stats.snapshot();
  EXPECT_EQ(s.routes[static_cast<std::size_t>(RouteClass::Metrics)].count, 2u);
  EXPECT_EQ(s.routes[static_cast<std::size_t>(RouteClass::Status)].count, 1u);
  EXPECT_EQ(s.routes[static_cast<std::size_t>(RouteClass::Other)].count, 0u);
  EXPECT_EQ(s.queue_wait.count, 2u);
  EXPECT_EQ(s.request_bytes, 300u);
  EXPECT_EQ(s.response_bytes, 300u);  // 100 + 150 + 50
  EXPECT_EQ(s.keepalive_reuses, 2u);
  EXPECT_EQ(s.write_timeouts, 1u);
}

TEST(ServerStatsTest, OutOfRangeWorkerIndexFoldsIntoSlabZero) {
  ServerStats stats(2);
  stats.record_request(99, RouteClass::Healthz, 1e-4, 200, 1);
  const ServerStats::Snapshot s = stats.snapshot();
  EXPECT_EQ(s.routes[static_cast<std::size_t>(RouteClass::Healthz)].count,
            1u);
}

TEST(ServerStatsTest, ParseRejectsKeyByStatusWithCatchAll) {
  ServerStats stats(1);
  stats.on_parse_reject(0, 400);
  stats.on_parse_reject(0, 400);
  stats.on_parse_reject(0, 431);
  stats.on_parse_reject(0, 505);
  stats.on_parse_reject(0, 418);  // not a parser status -> "other"
  const ServerStats::Snapshot s = stats.snapshot();
  EXPECT_EQ(s.rejects[0], 2u);  // 400
  EXPECT_EQ(s.rejects[1], 0u);  // 413
  EXPECT_EQ(s.rejects[2], 1u);  // 431
  EXPECT_EQ(s.rejects[3], 0u);  // 501
  EXPECT_EQ(s.rejects[4], 1u);  // 505
  EXPECT_EQ(s.rejects[kRejectKinds - 1], 1u);
}

TEST(ServerStatsTest, ActiveConnectionGaugeTracksOpenMinusClosed) {
  ServerStats stats(1);
  stats.connection_opened();
  stats.connection_opened();
  stats.connection_closed();
  EXPECT_EQ(stats.active_connections(), 1u);
  EXPECT_EQ(stats.snapshot().active, 1u);
  stats.connection_closed();
  EXPECT_EQ(stats.active_connections(), 0u);
}

TEST(ServerStatsTest, SlowRingKeepsNewestEntriesOldestFirst) {
  // Threshold 0 records everything; capacity 4 keeps only the newest four
  // in arrival order.
  ServerStats stats(1, /*slow_threshold_s=*/0.0, /*slow_ring=*/4);
  stats.set_sim_time(7.5);
  for (int i = 1; i <= 6; ++i) {
    stats.record_request(0, RouteClass::Metrics, 0.001 * i, 200, 0);
  }
  const ServerStats::Snapshot s = stats.snapshot();
  ASSERT_EQ(s.slow.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(s.slow[i].duration_s, 0.001 * (3.0 + static_cast<double>(i)),
                1e-12);
    EXPECT_EQ(s.slow[i].route, RouteClass::Metrics);
    EXPECT_EQ(s.slow[i].status, 200);
    EXPECT_EQ(s.slow[i].sim_t, 7.5);
  }
}

TEST(ServerStatsTest, FastRequestsNeverEnterTheSlowRing) {
  ServerStats stats(1, /*slow_threshold_s=*/0.05);
  stats.record_request(0, RouteClass::Status, 0.001, 200, 0);
  stats.record_request(0, RouteClass::Status, 0.049, 200, 0);
  EXPECT_TRUE(stats.snapshot().slow.empty());
  stats.record_request(0, RouteClass::Status, 0.05, 200, 0);  // at threshold
  ASSERT_EQ(stats.snapshot().slow.size(), 1u);
  EXPECT_EQ(stats.snapshot().slow[0].status, 200);
}

}  // namespace
