// E8 — self-explanation from self-models (paper Sections III & VI;
// Schubert [25]; Cox [28]).
//
// Claims operationalised:
//   (a) because decisions are taken from explicit self-models, a complete
//       explanation (chosen action, alternatives with scores, evidence
//       with confidence, goal state) is available for *every* decision —
//       coverage 1.0 by construction;
//   (b) recording explanations costs little: we measure the control-loop
//       rate with the explainer on vs off;
//   (c) the explanations are substantive — a sample is printed.
#include <chrono>
#include <iostream>
#include <string>

#include "multicore/manager.hpp"
#include "multicore/workload.hpp"
#include "sim/report.hpp"

namespace {

using namespace sa;
using namespace sa::multicore;

constexpr int kEpochs = 2000;

struct Measurement {
  double epochs_per_s = 0.0;
  double coverage = 0.0;
  std::size_t stored = 0;
  std::string sample;
};

Measurement run(bool explain) {
  Platform platform(PlatformConfig::big_little(2, 4), 81);
  auto workload = PhasedWorkload::standard();
  Manager::Params p;
  p.variant = Manager::Variant::SelfAware;
  p.seed = 81;
  Manager mgr(platform, p);
  mgr.agent().explainer().set_enabled(explain);

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kEpochs; ++i) {
    workload.apply(platform);
    mgr.run_epoch();
  }
  const auto stop = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration<double>(stop - start).count();

  Measurement m;
  m.epochs_per_s = kEpochs / secs;
  m.coverage = mgr.agent().explainer().coverage();
  m.stored = mgr.agent().explainer().size();
  m.sample = mgr.agent().explainer().why_last();
  return m;
}

}  // namespace

int main() {
  std::cout << "E8: self-explanation coverage and overhead on the multicore "
               "control loop (" << kEpochs << " epochs).\n\n";

  // Best-of-3 to damp scheduler noise: the loop is simulation-dominated,
  // so the explainer's cost is small relative to run-to-run variance.
  Measurement off = run(false), on = run(true);
  for (int i = 0; i < 2; ++i) {
    const auto off2 = run(false);
    const auto on2 = run(true);
    if (off2.epochs_per_s > off.epochs_per_s) off = off2;
    if (on2.epochs_per_s > on.epochs_per_s) on = on2;
  }

  sim::Table t("E8.1  explainer on vs off",
               {"explainer", "epochs/s", "coverage", "stored"});
  t.precision(1, 0);
  t.add_row({std::string("off"), off.epochs_per_s, off.coverage,
             static_cast<std::int64_t>(off.stored)});
  t.add_row({std::string("on"), on.epochs_per_s, on.coverage,
             static_cast<std::int64_t>(on.stored)});
  t.print(std::cout);

  const double overhead =
      (off.epochs_per_s / on.epochs_per_s - 1.0) * 100.0;
  std::cout << "E8.2  overhead: " << overhead
            << "% (values within a few percent of zero are measurement "
               "noise).\n\n";
  std::cout << "E8.3  sample explanation of the final decision:\n  "
            << on.sample << "\n";
  return 0;
}
