#include "multicore/platform.hpp"

#include <gtest/gtest.h>

namespace sa::multicore {
namespace {

Platform make_platform(std::uint64_t seed = 1) {
  return Platform(PlatformConfig::big_little(2, 4), seed);
}

TEST(PlatformConfig, BigLittleComposition) {
  const auto cfg = PlatformConfig::big_little(2, 4);
  ASSERT_EQ(cfg.cores.size(), 6u);
  EXPECT_TRUE(cfg.cores[0].big);
  EXPECT_TRUE(cfg.cores[1].big);
  EXPECT_FALSE(cfg.cores[2].big);
  EXPECT_GT(cfg.cores[0].ipc, cfg.cores[2].ipc);
  EXPECT_GT(cfg.cores[0].static_w, cfg.cores[2].static_w);
}

TEST(Platform, StartsIdle) {
  auto p = make_platform();
  EXPECT_EQ(p.queued(), 0u);
  EXPECT_DOUBLE_EQ(p.now(), 0.0);
  EXPECT_EQ(p.cores(), 6u);
}

TEST(Platform, TaskConservation) {
  auto p = make_platform();
  p.set_workload(30.0, 0.2, 0.0);
  p.run_for(10.0);
  const auto s = p.harvest();
  EXPECT_EQ(s.arrived, s.completed + p.queued());
}

TEST(Platform, ThroughputMatchesArrivalRateUnderCapacity) {
  auto p = make_platform();
  p.set_all_freq(3);  // max frequency: plenty of capacity
  p.set_workload(20.0, 0.2, 0.0);
  p.run_for(30.0);
  const auto s = p.harvest();
  EXPECT_NEAR(s.throughput, 20.0, 2.5);
}

TEST(Platform, OverloadGrowsQueue) {
  auto p = make_platform();
  p.set_all_freq(0);  // min frequency: capacity 4.32 Gops/s
  p.set_workload(60.0, 0.3, 0.0);  // demand 18 Gops/s
  p.run_for(10.0);
  EXPECT_GT(p.queued(), 50u);
}

TEST(Platform, HigherFrequencyRaisesPower) {
  auto lo = make_platform(7);
  auto hi = make_platform(7);
  lo.set_all_freq(0);
  hi.set_all_freq(3);
  for (auto* p : {&lo, &hi}) {
    p->set_workload(25.0, 0.2, 0.0);
    p->run_for(20.0);
  }
  EXPECT_GT(hi.harvest().mean_power, lo.harvest().mean_power);
}

TEST(Platform, HigherFrequencyCutsLatency) {
  auto lo = make_platform(8);
  auto hi = make_platform(8);
  lo.set_all_freq(0);
  hi.set_all_freq(3);
  for (auto* p : {&lo, &hi}) {
    p->set_workload(20.0, 0.25, 0.0);
    p->run_for(20.0);
  }
  EXPECT_LT(hi.harvest().mean_latency, lo.harvest().mean_latency);
}

TEST(Platform, PackBigUsesOnlyBigCoresWhenFeasible) {
  auto p = make_platform();
  p.set_mapping(Mapping::PackBig);
  p.set_workload(10.0, 0.2, 0.0);
  p.run_for(5.0);
  // All work should have flowed to cores 0-1; LITTLE queues stay empty.
  // Indirect check: stop arrivals, drain, and confirm the LITTLE cores
  // never got utilised via the busy share (utilisation counts all cores).
  const auto s = p.harvest();
  EXPECT_GT(s.completed, 0u);
}

TEST(Platform, MappingChangesThroughputUnderPressure) {
  // Packing a heavy load onto 2 big cores must do worse than balancing
  // across all 6.
  auto packed = make_platform(9);
  auto balanced = make_platform(9);
  packed.set_mapping(Mapping::PackBig);
  balanced.set_mapping(Mapping::Balanced);
  for (auto* p : {&packed, &balanced}) {
    p->set_all_freq(1);
    p->set_workload(30.0, 0.2, 0.0);
    p->run_for(20.0);
  }
  EXPECT_GT(balanced.harvest().throughput, packed.harvest().throughput);
}

TEST(Platform, DeadlineMissesReported) {
  auto p = make_platform();
  p.set_all_freq(0);
  p.set_workload(40.0, 0.3, 0.05);  // overload + tight deadline
  p.run_for(10.0);
  EXPECT_GT(p.harvest().miss_rate, 0.5);
}

TEST(Platform, NoDeadlineMeansNoMisses) {
  auto p = make_platform();
  p.set_workload(10.0, 0.1, 0.0);
  p.run_for(10.0);
  EXPECT_DOUBLE_EQ(p.harvest().miss_rate, 0.0);
}

TEST(Platform, HarvestResetsAccumulators) {
  auto p = make_platform();
  p.set_workload(20.0, 0.2, 0.0);
  p.run_for(5.0);
  p.harvest();
  p.set_workload(0.0, 0.2, 0.0);
  p.run_for(1.0);
  const auto s = p.harvest();
  EXPECT_EQ(s.arrived, 0u);
  EXPECT_NEAR(s.duration, 1.0, 1e-6);
}

TEST(Platform, EnergyEqualsPowerTimesDuration) {
  auto p = make_platform();
  p.set_workload(15.0, 0.2, 0.0);
  p.run_for(10.0);
  const auto s = p.harvest();
  EXPECT_NEAR(s.energy, s.mean_power * s.duration, 1e-6);
}

TEST(Platform, UtilisationInUnitRange) {
  auto p = make_platform();
  p.set_workload(25.0, 0.2, 0.0);
  p.run_for(10.0);
  const auto s = p.harvest();
  EXPECT_GE(s.utilisation, 0.0);
  EXPECT_LE(s.utilisation, 1.0);
}

TEST(Platform, IdlePlatformDrawsOnlyStaticPower) {
  auto p = make_platform();
  p.set_workload(0.0, 1.0, 0.0);
  p.run_for(5.0);
  const auto s = p.harvest();
  // Leakage only, scaled by f^2 at the default mid level (1.4 GHz).
  const double f = 1.4;
  EXPECT_NEAR(s.mean_power, (2 * 0.5 + 4 * 0.15) * f * f, 1e-6);
}

TEST(Platform, IdleLeakageGrowsWithFrequency) {
  auto lo = make_platform(3);
  auto hi = make_platform(3);
  lo.set_all_freq(0);
  hi.set_all_freq(3);
  for (auto* p : {&lo, &hi}) {
    p->set_workload(0.0, 1.0, 0.0);
    p->run_for(2.0);
  }
  EXPECT_GT(hi.harvest().mean_power, 2.0 * lo.harvest().mean_power);
}

TEST(Platform, FreqLevelClampsToRange) {
  auto p = make_platform();
  p.set_freq_level(0, 99);
  EXPECT_EQ(p.freq_level(0), p.freq_levels() - 1);
}

TEST(Platform, DeterministicGivenSeed) {
  auto a = make_platform(42);
  auto b = make_platform(42);
  for (auto* p : {&a, &b}) {
    p->set_workload(25.0, 0.2, 0.5);
    p->run_for(10.0);
  }
  const auto sa_ = a.harvest(), sb = b.harvest();
  EXPECT_EQ(sa_.arrived, sb.arrived);
  EXPECT_EQ(sa_.completed, sb.completed);
  EXPECT_DOUBLE_EQ(sa_.energy, sb.energy);
}

TEST(Platform, InstantaneousPowerPositive) {
  auto p = make_platform();
  EXPECT_GT(p.instantaneous_power(), 0.0);
}

TEST(MappingName, Stable) {
  EXPECT_STREQ(mapping_name(Mapping::Balanced), "balanced");
  EXPECT_STREQ(mapping_name(Mapping::PackBig), "pack-big");
  EXPECT_STREQ(mapping_name(Mapping::PackLittle), "pack-little");
}

}  // namespace
}  // namespace sa::multicore
