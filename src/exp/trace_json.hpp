// Chrome/Perfetto trace-event export of a sim::Tracer record.
//
// Produces the Trace Event Format JSON object form
// ({"displayTimeUnit":"ms","traceEvents":[...]}) loadable in
// ui.perfetto.dev or chrome://tracing:
//
//   * one "M" (metadata) event names the process ("sa-sim", pid 1) and one
//     per interned subject names its thread (tid = SubjectId) — every
//     subject renders as its own track;
//   * span begins/ends become "B"/"E" duration events. Timestamps are
//     sim-time seconds scaled to microseconds (ts = t * 1e6); most spans
//     are zero-duration in sim time and still nest correctly because
//     "B"/"E" pair by order within a tid;
//   * flow points become "s"/"t"/"f" flow events keyed by TraceId, drawing
//     the stimulus → knowledge → decision → action → outcome arrows
//     between slices;
//   * each span's "args" carries its trace_id plus any recorded numeric
//     args, so an Explanation citing "decision #N" resolves to the slice
//     whose args.trace_id == N.
//
// Determinism: everything serialised here derives from sim time and
// interned ids — no wall clock, no pointers — and the Json writer is
// byte-deterministic, so the same cell traced under any --jobs N yields a
// bitwise-identical file.
#pragma once

#include <iosfwd>

#include "exp/json.hpp"
#include "sim/trace.hpp"

namespace sa::exp {

/// Builds the trace-event document from a tracer's record (subjects come
/// from the tracer's bus).
[[nodiscard]] Json chrome_trace(const sim::Tracer& tracer);

/// Serialises chrome_trace() compactly, newline-terminated.
void write_chrome_trace(std::ostream& os, const sim::Tracer& tracer);

}  // namespace sa::exp
