// Phased workload driver.
//
// "Ongoing change" (paper, Section II): the workload's arrival rate, task
// size and deadline shift between phases during the run — compute-bound
// bursts, light background periods, latency-critical interactive phases.
// The driver applies the phase schedule to a Platform as simulated time
// passes; managers are never told a phase changed, they must notice.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "multicore/platform.hpp"

namespace sa::multicore {

/// One workload regime.
struct Phase {
  std::string name;
  double duration_s = 10.0;
  double rate = 20.0;        ///< task arrivals per second
  double mean_work = 0.5;    ///< giga-ops per task
  double deadline_s = 0.5;   ///< relative deadline (0 = none)
};

/// Cycles through its phases, applying each to the platform when due.
class PhasedWorkload {
 public:
  explicit PhasedWorkload(std::vector<Phase> phases)
      : phases_(std::move(phases)) {}

  /// The canonical three-phase E1 schedule: steady / burst / latency-
  /// critical interactive.
  [[nodiscard]] static PhasedWorkload standard();

  /// Applies the phase active at platform time `now` (call once per epoch).
  void apply(Platform& platform);
  [[nodiscard]] const Phase& current(double now) const;
  [[nodiscard]] std::size_t phase_index(double now) const;
  [[nodiscard]] double cycle_length() const;
  [[nodiscard]] const std::vector<Phase>& phases() const noexcept {
    return phases_;
  }

 private:
  std::vector<Phase> phases_;
};

}  // namespace sa::multicore
