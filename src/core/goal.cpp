#include "core/goal.hpp"

#include <algorithm>
#include <cmath>

namespace sa::core {

namespace utility {

UtilityFn rising(double lo, double hi) {
  return [lo, hi](double x) {
    if (hi <= lo) return x >= hi ? 1.0 : 0.0;
    return std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
  };
}

UtilityFn falling(double lo, double hi) {
  return [lo, hi](double x) {
    if (hi <= lo) return x <= lo ? 1.0 : 0.0;
    return std::clamp((hi - x) / (hi - lo), 0.0, 1.0);
  };
}

UtilityFn target(double t, double tolerance) {
  return [t, tolerance](double x) {
    if (tolerance <= 0.0) return x == t ? 1.0 : 0.0;
    return std::clamp(1.0 - std::fabs(x - t) / tolerance, 0.0, 1.0);
  };
}

UtilityFn step_at_least(double threshold) {
  return [threshold](double x) { return x >= threshold ? 1.0 : 0.0; };
}

UtilityFn step_at_most(double threshold) {
  return [threshold](double x) { return x <= threshold ? 1.0 : 0.0; };
}

}  // namespace utility

std::size_t GoalModel::add_objective(Objective o) {
  objectives_.push_back(std::move(o));
  return objectives_.size() - 1;
}

void GoalModel::add_constraint(Constraint c) {
  constraints_.push_back(std::move(c));
}

bool GoalModel::set_weight(const std::string& metric, double weight) {
  bool found = false;
  for (auto& o : objectives_) {
    if (o.metric == metric) {
      o.weight = weight;
      found = true;
    }
  }
  return found;
}

std::optional<double> GoalModel::weight(const std::string& metric) const {
  for (const auto& o : objectives_) {
    if (o.metric == metric) return o.weight;
  }
  return std::nullopt;
}

double GoalModel::raw_utility(const MetricMap& m) const {
  if (objectives_.empty()) return 0.0;
  double acc = 0.0, total_w = 0.0;
  for (const auto& o : objectives_) {
    const auto it = m.find(o.metric);
    const double u = it == m.end() ? 0.0 : o.fn(it->second);
    acc += o.weight * u;
    total_w += o.weight;
  }
  return total_w > 0.0 ? acc / total_w : 0.0;
}

double GoalModel::utility(const MetricMap& m) const {
  double u = raw_utility(m);
  for (const auto& c : constraints_) {
    if (!c.satisfied(m)) {
      if (c.hard) return 0.0;
      u -= c.penalty;
    }
  }
  return std::clamp(u, 0.0, 1.0);
}

std::vector<std::string> GoalModel::violations(const MetricMap& m) const {
  std::vector<std::string> out;
  for (const auto& c : constraints_) {
    if (!c.satisfied(m)) out.push_back(c.name);
  }
  return out;
}

bool GoalModel::feasible(const MetricMap& m) const {
  return std::all_of(constraints_.begin(), constraints_.end(),
                     [&](const Constraint& c) {
                       return !c.hard || c.satisfied(m);
                     });
}

std::vector<std::pair<std::string, double>> GoalModel::breakdown(
    const MetricMap& m) const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(objectives_.size());
  for (const auto& o : objectives_) {
    const auto it = m.find(o.metric);
    out.emplace_back(o.metric, it == m.end() ? 0.0 : o.fn(it->second));
  }
  return out;
}

bool GoalModel::dominates(const MetricMap& a, const MetricMap& b) const {
  bool strictly_better = false;
  for (const auto& o : objectives_) {
    const auto ia = a.find(o.metric), ib = b.find(o.metric);
    const double ua = ia == a.end() ? 0.0 : o.fn(ia->second);
    const double ub = ib == b.end() ? 0.0 : o.fn(ib->second);
    if (ua < ub) return false;
    if (ua > ub) strictly_better = true;
  }
  return strictly_better;
}

}  // namespace sa::core
