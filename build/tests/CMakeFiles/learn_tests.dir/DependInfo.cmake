
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/learn/bandit_test.cpp" "tests/CMakeFiles/learn_tests.dir/learn/bandit_test.cpp.o" "gcc" "tests/CMakeFiles/learn_tests.dir/learn/bandit_test.cpp.o.d"
  "/root/repo/tests/learn/drift_test.cpp" "tests/CMakeFiles/learn_tests.dir/learn/drift_test.cpp.o" "gcc" "tests/CMakeFiles/learn_tests.dir/learn/drift_test.cpp.o.d"
  "/root/repo/tests/learn/estimators_test.cpp" "tests/CMakeFiles/learn_tests.dir/learn/estimators_test.cpp.o" "gcc" "tests/CMakeFiles/learn_tests.dir/learn/estimators_test.cpp.o.d"
  "/root/repo/tests/learn/forecast_test.cpp" "tests/CMakeFiles/learn_tests.dir/learn/forecast_test.cpp.o" "gcc" "tests/CMakeFiles/learn_tests.dir/learn/forecast_test.cpp.o.d"
  "/root/repo/tests/learn/horizon_test.cpp" "tests/CMakeFiles/learn_tests.dir/learn/horizon_test.cpp.o" "gcc" "tests/CMakeFiles/learn_tests.dir/learn/horizon_test.cpp.o.d"
  "/root/repo/tests/learn/kalman_test.cpp" "tests/CMakeFiles/learn_tests.dir/learn/kalman_test.cpp.o" "gcc" "tests/CMakeFiles/learn_tests.dir/learn/kalman_test.cpp.o.d"
  "/root/repo/tests/learn/markov_test.cpp" "tests/CMakeFiles/learn_tests.dir/learn/markov_test.cpp.o" "gcc" "tests/CMakeFiles/learn_tests.dir/learn/markov_test.cpp.o.d"
  "/root/repo/tests/learn/qlearn_test.cpp" "tests/CMakeFiles/learn_tests.dir/learn/qlearn_test.cpp.o" "gcc" "tests/CMakeFiles/learn_tests.dir/learn/qlearn_test.cpp.o.d"
  "/root/repo/tests/learn/rls_test.cpp" "tests/CMakeFiles/learn_tests.dir/learn/rls_test.cpp.o" "gcc" "tests/CMakeFiles/learn_tests.dir/learn/rls_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/sa_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/svc/CMakeFiles/sa_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sa_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/multicore/CMakeFiles/sa_multicore.dir/DependInfo.cmake"
  "/root/repo/build/src/cpn/CMakeFiles/sa_cpn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
