file(REMOVE_RECURSE
  "CMakeFiles/cloud_autoscaler.dir/cloud_autoscaler.cpp.o"
  "CMakeFiles/cloud_autoscaler.dir/cloud_autoscaler.cpp.o.d"
  "cloud_autoscaler"
  "cloud_autoscaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
