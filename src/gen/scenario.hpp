// Scenario: a ScenarioSpec expanded into a running world.
//
// One sim::Engine hosts every substrate the spec enables, wired the way
// the hand-written benches wire them (manager/fleet/autoscaler bind()
// adapters, fault::Injector surfaces, AgentRuntime knowledge exchange) —
// plus the cross-substrate couplings that make the composite a *city*
// rather than four co-resident silos:
//
//   cameras -> cpn    each camera epoch, tracked-object reports become
//                     packets injected at stream-chosen gateway nodes;
//   cpn -> cloud      each cloud epoch, the delivery rate upstream
//                     modulates the backend demand base (reports that
//                     never arrive are not analysed);
//   cloud -> edge     each cloud epoch, backend utilisation re-targets
//                     the edge platforms' workload rates (overflow
//                     analytics are offloaded to the edge nodes).
//
// Every coupling reads only harvested epoch aggregates at epoch
// boundaries and draws only from the scenario's own forked streams, so
// the whole composite stays byte-deterministic in (spec, seed) — the
// property the metamorphic suites in tests/gen assert.
//
// Scale axes: cameras.districts replicates the camera section into D
// independent fleets and cpn.grids replicates the packet network into G
// independent city-block grids (district d couples into grid d mod G).
// With Options::placement set (sa::shard), each district/grid/edge node
// is built on a caller-chosen engine instead of the scenario's own; the
// scenario's engine then acts as the *coordinator*, hosting everything
// that couples units — coupling windows, cloud, exchange, faults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cloud/autoscaler.hpp"
#include "cloud/cluster.hpp"
#include "core/degrade.hpp"
#include "core/runtime.hpp"
#include "cpn/network.hpp"
#include "cpn/traffic.hpp"
#include "fault/fault.hpp"
#include "gen/spec.hpp"
#include "multicore/manager.hpp"
#include "multicore/platform.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"
#include "svc/fleet.hpp"
#include "svc/network.hpp"

namespace sa::ckpt {
class WorldCheckpoint;
}  // namespace sa::ckpt

namespace sa::gen {

class Scenario {
 public:
  struct Options {
    /// false = design-time baselines everywhere (static manager,
    /// homogeneous fleet, static autoscaler/router, no exchange, no
    /// degradation ladder); true = the paper's self-aware stack.
    bool self_aware = true;
    /// Optional observability; all non-owning, null disables. Attaching
    /// any of these never perturbs the trajectory (asserted by
    /// tests/gen).
    sim::TelemetryBus* telemetry = nullptr;
    sim::Tracer* tracer = nullptr;
    sim::MetricsRegistry* metrics = nullptr;

    /// Sharded placement (sa::shard): which engine hosts each camera
    /// district, CPN grid and edge node. Null = everything on the
    /// scenario's own engine. When set, shard-owned components are built
    /// *without* telemetry/tracer hooks (they execute off the
    /// coordinator thread); coordinator-owned components — cloud,
    /// couplings, exchange, faults — keep them.
    struct Placement {
      std::vector<sim::Engine*> district_engines;  ///< size >= cameras.districts
      std::vector<sim::Engine*> grid_engines;      ///< size >= cpn.grids
      std::vector<sim::Engine*> edge_engines;      ///< size >= multicore.nodes
      /// Called on the owning shard's thread when district `district`'s
      /// camera epoch emits `amount` pending reports at sim time `t`.
      /// The coordinator re-applies the posts in the global event order
      /// via apply_pending() before its next event executes.
      std::function<void(std::size_t district, double t, double amount)>
          post_reports;
    };
    const Placement* placement = nullptr;
  };

  /// Expands `spec` under `run_seed` and wires the world. Throws
  /// std::invalid_argument if the spec enables no substrate.
  Scenario(const ScenarioSpec& spec, std::uint64_t run_seed, Options opts);
  Scenario(const ScenarioSpec& spec, std::uint64_t run_seed)
      : Scenario(spec, run_seed, Options{}) {}
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Runs to the spec's world horizon (resumable: run_until beyond).
  void run();
  void run_until(double t);

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] core::AgentRuntime& runtime() noexcept { return runtime_; }
  [[nodiscard]] fault::Injector& injector() noexcept { return injector_; }
  [[nodiscard]] const fault::FaultPlan& fault_plan() const noexcept {
    return plan_;
  }
  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  /// Every agent alive in the world (edge managers, camera agents when
  /// learning, the autoscaler) — e.g. for serve::SimBridge.
  [[nodiscard]] std::vector<core::SelfAwareAgent*> agents();

  // Substrate access (null when the section is disabled).
  [[nodiscard]] std::size_t edge_nodes() const noexcept {
    return managers_.size();
  }
  [[nodiscard]] multicore::Manager* edge_manager(std::size_t i) {
    return managers_[i].get();
  }
  /// Camera districts / CPN grids built (0 when the section is disabled).
  [[nodiscard]] std::size_t districts() const noexcept {
    return fleets_.size();
  }
  [[nodiscard]] std::size_t grids() const noexcept { return cpnnets_.size(); }
  /// First district's fleet / first grid's network (the legacy
  /// single-instance accessors; null when the section is disabled).
  [[nodiscard]] svc::CameraFleet* fleet() noexcept {
    return fleets_.empty() ? nullptr : fleets_.front().get();
  }
  [[nodiscard]] cloud::Autoscaler* autoscaler() noexcept {
    return autoscaler_.get();
  }
  [[nodiscard]] cpn::PacketNetwork* packet_network() noexcept {
    return cpnnets_.empty() ? nullptr : cpnnets_.front().get();
  }

  /// Credits `amount` camera reports to district `district`'s
  /// pending-injection accumulator — the coordinator-side half of
  /// Placement::post_reports (sa::shard drains its mailboxes into this
  /// in global event order at every barrier).
  void apply_pending(std::size_t district, double amount) {
    pending_[district] += amount;
  }

  /// Registers this world's checkpointable components on `wc`: per-agent
  /// knowledge bases, runtime counters, the fault injector, every
  /// degradation ladder, and — last, per the restore protocol — the
  /// engine timeline. A scenario is restored by *replay* (rebuild from
  /// the same (spec, seed), re-apply the control journal, run_until the
  /// checkpoint's t — agent/learner internals are reproduced by
  /// re-execution, not serialized), then attested byte-for-byte with
  /// WorldCheckpoint::verify(); the registered restore lambdas serve the
  /// direct-import layer tests.
  void register_checkpoint(ckpt::WorldCheckpoint& wc);

  /// Deterministic whole-run metrics in a fixed order (rows depend only
  /// on which sections are enabled, so same-spec runs byte-compare).
  /// Includes the headline "goal" — the mean of each enabled substrate's
  /// normalised health — plus per-substrate aggregates and fault/exchange
  /// counters.
  [[nodiscard]] std::vector<std::pair<std::string, double>> summary() const;

 private:
  void build_edge();
  void build_cameras();
  void build_cloud();
  void build_cpn();
  void wire_couplings();
  void wire_faults();

  // Placement-aware engine routing: which engine hosts a given unit.
  // Without a placement these all collapse to the scenario's own engine,
  // so the monolithic path is bit-for-bit the pre-placement wiring.
  [[nodiscard]] sim::Engine& district_engine(std::size_t d) {
    return opts_.placement != nullptr ? *opts_.placement->district_engines[d]
                                      : engine_;
  }
  [[nodiscard]] sim::Engine& grid_engine(std::size_t g) {
    return opts_.placement != nullptr ? *opts_.placement->grid_engines[g]
                                      : engine_;
  }
  [[nodiscard]] sim::Engine& edge_engine(std::size_t i) {
    return opts_.placement != nullptr ? *opts_.placement->edge_engines[i]
                                      : engine_;
  }
  // Shard-owned components run off the coordinator thread when a
  // placement is set, so they must not share the observability sinks.
  [[nodiscard]] sim::TelemetryBus* shard_telemetry() const noexcept {
    return opts_.placement != nullptr ? nullptr : opts_.telemetry;
  }
  [[nodiscard]] sim::Tracer* shard_tracer() const noexcept {
    return opts_.placement != nullptr ? nullptr : opts_.tracer;
  }

  ScenarioSpec spec_;
  std::uint64_t seed_;
  Options opts_;

  sim::Engine engine_;
  core::AgentRuntime runtime_;
  fault::Injector injector_;
  fault::FaultPlan plan_;

  // Edge: one platform + manager per node.
  std::vector<std::unique_ptr<multicore::Platform>> platforms_;
  std::vector<std::unique_ptr<multicore::Manager>> managers_;
  std::vector<std::unique_ptr<core::DegradationPolicy>> degradations_;
  std::vector<EdgeWorkload> workloads_;

  // Cameras: one network + fleet per district.
  std::vector<std::unique_ptr<svc::Network>> camnets_;
  std::vector<std::unique_ptr<svc::CameraFleet>> fleets_;

  // Cloud.
  std::unique_ptr<cloud::Cluster> cluster_;
  std::unique_ptr<cloud::DemandModel> demand_;
  std::unique_ptr<cloud::Autoscaler> autoscaler_;

  // CPN: one packet network + traffic generator per grid.
  std::vector<std::unique_ptr<cpn::PacketNetwork>> cpnnets_;
  std::vector<std::unique_ptr<cpn::TrafficGenerator>> traffics_;
  std::vector<std::vector<std::size_t>> gateways_;  ///< per grid: entry nodes
  std::vector<std::size_t> backend_nodes_;          ///< per grid: cloud gateway

  // Coupling state (scenario-owned streams; substrates never see them).
  sim::Rng couple_rng_;
  std::vector<double> pending_;  ///< per district: reports awaiting injection

  // Whole-run aggregates the summary reports (substrates keep their own;
  // these cover the couplings and the CPN harvest windows).
  sim::RunningStats cpn_delivery_, cpn_latency_;
  sim::RunningStats cloud_sla_, cloud_cost_;
  std::size_t reports_injected_ = 0;
  std::size_t cpn_delivered_ = 0, cpn_dropped_ = 0;
};

}  // namespace sa::gen
