#include "shard/world.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

namespace sa::shard {

/// One thread per shard, parked on a generation-counted barrier. The
/// coordinator publishes a Job and bumps the generation; every worker
/// drives its own engine to the job's bound and reports done. All engine
/// access is ordered by the pool mutex (release before work, acquire
/// after), so the shard suites run clean under TSan by construction.
struct ShardedWorld::Pool {
  std::mutex m;
  std::condition_variable work_cv, done_cv;
  Job job;
  std::uint64_t generation = 0;
  std::size_t done = 0;
  bool stop = false;
  std::vector<std::thread> threads;
};

void ShardedWorld::validate(const gen::ScenarioSpec& spec,
                            const Options& opts) {
  if (opts.shards < 1) {
    throw ShardError("shard: shard count must be >= 1");
  }
  if (spec.cpn.enabled) {
    // The coupling window (coordinator, order 0) must out-period every
    // shard-local order-0 stream (substrate steps), so the monolithic
    // "longer period armed earlier, runs first" tie-break is exactly what
    // the barrier protocol reproduces at coincident instants.
    const double window = spec.cloud.enabled ? spec.cloud.epoch_s
                                             : 10.0 * spec.world.step_s;
    if (!(window > spec.world.step_s)) {
      throw ShardError(
          "shard: coupling window (cloud epoch) must be strictly longer "
          "than the world step for deterministic sharding");
    }
  }
  if (spec.multicore.enabled && spec.cloud.enabled &&
      spec.multicore.epoch_s > spec.cloud.epoch_s) {
    // Same dominance argument at order 1: the autoscaler (coordinator)
    // must never be the shorter-period stream at a coincidence with the
    // shard-local manager/degradation epochs. Equality is fine — the
    // autoscaler registers before every manager, so it holds the older
    // sequence number in the monolithic engine too.
    throw ShardError(
        "shard: multicore epoch must not exceed the cloud epoch for "
        "deterministic sharding");
  }
}

ShardedWorld::ShardedWorld(const gen::ScenarioSpec& spec,
                           std::uint64_t run_seed, Options opts)
    : spec_(spec), part_(), pool_(std::make_unique<Pool>()) {
  validate(spec, opts);
  part_ = partition_world(spec_, opts.shards);

  shard_engines_.reserve(opts.shards);
  outboxes_.reserve(opts.shards);
  for (std::size_t s = 0; s < opts.shards; ++s) {
    shard_engines_.push_back(std::make_unique<sim::Engine>());
    outboxes_.push_back(std::make_unique<Outbox>());
  }

  placement_.district_engines.reserve(part_.district_shard.size());
  for (std::size_t shard : part_.district_shard) {
    placement_.district_engines.push_back(shard_engines_[shard].get());
  }
  placement_.grid_engines.reserve(part_.grid_shard.size());
  for (std::size_t shard : part_.grid_shard) {
    placement_.grid_engines.push_back(shard_engines_[shard].get());
  }
  placement_.edge_engines.reserve(part_.edge_shard.size());
  for (std::size_t shard : part_.edge_shard) {
    placement_.edge_engines.push_back(shard_engines_[shard].get());
  }
  placement_.post_reports = [this](std::size_t district, double t,
                                   double amount) {
    // Runs on the shard thread that owns `district`; its outbox is
    // single-producer by construction.
    outboxes_[part_.district_shard[district]]->post(
        t, /*order=*/0, /*origin=*/district, district, amount);
  };

  gen::Scenario::Options sopts;
  sopts.self_aware = opts.self_aware;
  sopts.telemetry = opts.telemetry;
  sopts.tracer = nullptr;   // shard-owned agents run off-thread: no tracer
  sopts.metrics = nullptr;  // ladder timings would be written off-thread
  sopts.placement = &placement_;
  world_ = std::make_unique<gen::Scenario>(spec_, run_seed, sopts);

  pool_->threads.reserve(opts.shards);
  for (std::size_t s = 0; s < opts.shards; ++s) {
    pool_->threads.emplace_back([this, s] { worker_loop(s); });
  }
}

ShardedWorld::~ShardedWorld() {
  {
    std::lock_guard<std::mutex> lock(pool_->m);
    pool_->stop = true;
  }
  pool_->work_cv.notify_all();
  for (std::thread& th : pool_->threads) th.join();
}

void ShardedWorld::worker_loop(std::size_t shard) {
  sim::Engine& engine = *shard_engines_[shard];
  std::uint64_t seen = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(pool_->m);
      pool_->work_cv.wait(lock, [&] {
        return pool_->stop || pool_->generation != seen;
      });
      if (pool_->stop) return;
      seen = pool_->generation;
      job = pool_->job;
    }
    if (job.before) {
      engine.run_until_before(job.t, job.order);
    } else {
      engine.run_until(job.t);
    }
    {
      std::lock_guard<std::mutex> lock(pool_->m);
      ++pool_->done;
    }
    pool_->done_cv.notify_one();
  }
}

void ShardedWorld::release_and_wait(const Job& job) {
  const auto wall0 = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(pool_->m);
    pool_->job = job;
    pool_->done = 0;
    ++pool_->generation;
  }
  pool_->work_cv.notify_all();
  {
    std::unique_lock<std::mutex> lock(pool_->m);
    pool_->done_cv.wait(lock,
                        [&] { return pool_->done == pool_->threads.size(); });
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall0;
  lag_seconds_ += wall.count();
}

void ShardedWorld::apply_mailboxes() {
  std::vector<std::vector<RemoteEvent>> drained;
  drained.reserve(outboxes_.size());
  bool any = false;
  for (auto& outbox : outboxes_) {
    if (!outbox->empty()) any = true;
    drained.push_back(outbox->drain());
  }
  if (!any) return;
  for (const RemoteEvent& ev : merge_remote(std::move(drained))) {
    world_->apply_pending(ev.district, ev.amount);
  }
}

void ShardedWorld::pump(double horizon) {
  sim::Engine& coordinator = world_->engine();
  double t = 0.0;
  int order = 0;
  while (coordinator.peek_next(t, order) && t <= horizon) {
    // Lookahead window: nothing cross-shard can happen strictly before
    // (t, order), so every shard may drain up to it in parallel.
    release_and_wait(Job{t, order, /*before=*/true});
    apply_mailboxes();
    coordinator.step();
  }
  // No coordinator event remains at or before the horizon: the shards'
  // leftover events all sort after every coordinator event. Let them run
  // out, then advance the coordinator clock.
  release_and_wait(Job{horizon, 0, /*before=*/false});
  apply_mailboxes();
  coordinator.run_until(horizon);
}

void ShardedWorld::run() { run_until(spec_.world.horizon); }

void ShardedWorld::run_until(double t) { pump(t); }

std::vector<std::uint64_t> ShardedWorld::shard_events() const {
  std::vector<std::uint64_t> out;
  out.reserve(shard_engines_.size() + 1);
  for (const auto& engine : shard_engines_) {
    out.push_back(engine->executed());
  }
  out.push_back(world_->engine().executed());
  return out;
}

}  // namespace sa::shard
