# Empty dependencies file for bench_e12_thermal.
# This may be replaced when dependencies are built.
