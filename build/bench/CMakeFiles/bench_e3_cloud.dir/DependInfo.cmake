
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e3_cloud.cpp" "bench/CMakeFiles/bench_e3_cloud.dir/bench_e3_cloud.cpp.o" "gcc" "bench/CMakeFiles/bench_e3_cloud.dir/bench_e3_cloud.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/sa_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/svc/CMakeFiles/sa_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sa_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/multicore/CMakeFiles/sa_multicore.dir/DependInfo.cmake"
  "/root/repo/build/src/cpn/CMakeFiles/sa_cpn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
