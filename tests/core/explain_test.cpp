#include "core/explain.hpp"

#include <gtest/gtest.h>

namespace sa::core {
namespace {

Explanation sample_explanation() {
  Explanation e;
  e.t = 12.5;
  e.agent = "mapper";
  e.decision.action = "freq_up";
  e.decision.rationale = "utility 0.8 is the maximum";
  e.decision.considered = {{"freq_up", 0.8}, {"freq_down", 0.2}};
  e.evidence = {{"forecast.load", 3.4, 0.9}};
  e.goal_utility = 0.73;
  e.has_goal = true;
  return e;
}

TEST(Explanation, RenderMentionsAllParts) {
  const std::string s = sample_explanation().render();
  EXPECT_NE(s.find("t=12.5"), std::string::npos);
  EXPECT_NE(s.find("mapper"), std::string::npos);
  EXPECT_NE(s.find("freq_up"), std::string::npos);
  EXPECT_NE(s.find("because utility 0.8 is the maximum"), std::string::npos);
  EXPECT_NE(s.find("freq_down(0.200)"), std::string::npos);
  EXPECT_NE(s.find("forecast.load=3.400"), std::string::npos);
  EXPECT_NE(s.find("conf 0.900"), std::string::npos);
  EXPECT_NE(s.find("0.730"), std::string::npos);
}

TEST(Explanation, RenderOmitsAbsentParts) {
  Explanation e;
  e.t = 1.0;
  e.agent = "x";
  e.decision.action = "noop";
  const std::string s = e.render();
  EXPECT_EQ(s.find("Alternatives"), std::string::npos);
  EXPECT_EQ(s.find("Evidence"), std::string::npos);
  EXPECT_EQ(s.find("Goal utility"), std::string::npos);
}

TEST(Explainer, RecordsAndCounts) {
  Explainer ex;
  ex.record(sample_explanation());
  ex.record(sample_explanation());
  EXPECT_EQ(ex.size(), 2u);
  EXPECT_EQ(ex.decisions(), 2u);
  EXPECT_DOUBLE_EQ(ex.coverage(), 1.0);
  ASSERT_TRUE(ex.last().has_value());
  EXPECT_EQ(ex.last()->agent, "mapper");
  EXPECT_FALSE(ex.why_last().empty());
}

TEST(Explainer, DisabledStillCountsDecisions) {
  Explainer ex(false);
  ex.record(sample_explanation());
  EXPECT_EQ(ex.size(), 0u);
  EXPECT_EQ(ex.decisions(), 1u);
  EXPECT_DOUBLE_EQ(ex.coverage(), 0.0);
  EXPECT_FALSE(ex.last().has_value());
  EXPECT_TRUE(ex.why_last().empty());
}

TEST(Explainer, UnexplainedDecisionsLowerCoverage) {
  Explainer ex;
  ex.record(sample_explanation());
  ex.note_unexplained();
  EXPECT_DOUBLE_EQ(ex.coverage(), 0.5);
}

TEST(Explainer, EmptyCoverageIsZero) {
  Explainer ex;
  EXPECT_DOUBLE_EQ(ex.coverage(), 0.0);
}

TEST(Explainer, CapacityBoundsMemory) {
  Explainer ex;
  ex.set_capacity(10);
  for (int i = 0; i < 100; ++i) ex.record(sample_explanation());
  EXPECT_LE(ex.size(), 10u);
  EXPECT_EQ(ex.decisions(), 100u);
}

TEST(Explainer, SummariseAggregatesPerAction) {
  Explainer ex;
  for (int i = 0; i < 3; ++i) {
    auto e = sample_explanation();
    e.goal_utility = 0.5 + 0.1 * i;  // 0.5, 0.6, 0.7
    ex.record(std::move(e));
  }
  auto other = sample_explanation();
  other.decision.action = "freq_down";
  other.decision.rationale = "power over budget";
  ex.record(std::move(other));

  const auto up = ex.summarise("freq_up");
  EXPECT_EQ(up.count, 3u);
  EXPECT_NEAR(up.mean_goal_utility, 0.6, 1e-9);
  EXPECT_EQ(up.last_rationale, "utility 0.8 is the maximum");

  const auto down = ex.summarise("freq_down");
  EXPECT_EQ(down.count, 1u);
  EXPECT_EQ(down.last_rationale, "power over budget");

  EXPECT_EQ(ex.summarise("never").count, 0u);
}

TEST(Explainer, SummariseIgnoresEntriesWithoutGoalState) {
  Explainer ex;
  auto e = sample_explanation();
  e.has_goal = false;
  e.goal_utility = 123.0;  // must not be counted
  ex.record(std::move(e));
  const auto s = ex.summarise("freq_up");
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean_goal_utility, 0.0);
}

TEST(Explainer, ClearResets) {
  Explainer ex;
  ex.record(sample_explanation());
  ex.clear();
  EXPECT_EQ(ex.size(), 0u);
  EXPECT_EQ(ex.decisions(), 0u);
}

Explanation stamped(double t) {
  auto e = sample_explanation();
  e.t = t;
  return e;
}

TEST(Explainer, RingKeepsNewestInChronologicalOrder) {
  Explainer ex;
  ex.set_capacity(4);
  for (int i = 0; i < 10; ++i) ex.record(stamped(i));
  ASSERT_EQ(ex.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(ex.at(i).t, 6.0 + static_cast<double>(i));
  }
  ASSERT_TRUE(ex.last().has_value());
  EXPECT_DOUBLE_EQ(ex.last()->t, 9.0);
  const auto all = ex.all();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_DOUBLE_EQ(all.front().t, 6.0);
  EXPECT_DOUBLE_EQ(all.back().t, 9.0);
}

TEST(Explainer, ShrinkingCapacityDropsOldest) {
  Explainer ex;
  ex.set_capacity(8);
  for (int i = 0; i < 8; ++i) ex.record(stamped(i));
  ex.set_capacity(3);
  ASSERT_EQ(ex.size(), 3u);
  EXPECT_DOUBLE_EQ(ex.at(0).t, 5.0);
  EXPECT_DOUBLE_EQ(ex.at(2).t, 7.0);
  // The shrunk ring keeps rotating correctly.
  ex.record(stamped(8.0));
  ASSERT_EQ(ex.size(), 3u);
  EXPECT_DOUBLE_EQ(ex.at(0).t, 6.0);
  EXPECT_DOUBLE_EQ(ex.last()->t, 8.0);
}

TEST(Explainer, GrowingCapacityKeepsEverything) {
  Explainer ex;
  ex.set_capacity(2);
  ex.record(stamped(0.0));
  ex.record(stamped(1.0));
  ex.record(stamped(2.0));  // evicts t=0
  ex.set_capacity(4);
  ex.record(stamped(3.0));
  ASSERT_EQ(ex.size(), 3u);
  EXPECT_DOUBLE_EQ(ex.at(0).t, 1.0);
  EXPECT_DOUBLE_EQ(ex.last()->t, 3.0);
}

TEST(Explainer, LongRunMemoryStaysBoundedAtCapacity) {
  // The long-run contract behind E8: millions of decisions, ring-bounded
  // retention, full decision accounting, correct newest/oldest window.
  Explainer ex;
  ex.set_capacity(64);
  constexpr int kDecisions = 100000;
  for (int i = 0; i < kDecisions; ++i) ex.record(stamped(i));
  EXPECT_EQ(ex.size(), 64u);
  EXPECT_EQ(ex.decisions(), static_cast<std::size_t>(kDecisions));
  EXPECT_DOUBLE_EQ(ex.coverage(),
                   64.0 / static_cast<double>(kDecisions));
  EXPECT_DOUBLE_EQ(ex.at(0).t, kDecisions - 64.0);
  EXPECT_DOUBLE_EQ(ex.last()->t, kDecisions - 1.0);
}

TEST(Explainer, ZeroCapacityRetainsNothingButCounts) {
  Explainer ex;
  ex.set_capacity(0);
  ex.record(sample_explanation());
  EXPECT_EQ(ex.size(), 0u);
  EXPECT_EQ(ex.decisions(), 1u);
  EXPECT_FALSE(ex.last().has_value());
}

TEST(Explainer, SnapshotReturnsNewestInChronologicalOrder) {
  Explainer ex;
  ex.set_capacity(8);
  for (int i = 0; i < 6; ++i) ex.record(stamped(i));
  const auto newest = ex.snapshot(3);
  ASSERT_EQ(newest.size(), 3u);
  EXPECT_DOUBLE_EQ(newest[0].t, 3.0);
  EXPECT_DOUBLE_EQ(newest[1].t, 4.0);
  EXPECT_DOUBLE_EQ(newest[2].t, 5.0);
}

TEST(Explainer, SnapshotClampsToRetainedSize) {
  Explainer ex;
  ex.set_capacity(4);
  ex.record(stamped(0.0));
  ex.record(stamped(1.0));
  EXPECT_EQ(ex.snapshot(100).size(), 2u);
  EXPECT_TRUE(ex.snapshot(0).empty());
  EXPECT_TRUE(Explainer().snapshot(5).empty());
}

TEST(Explainer, SnapshotIsCorrectAcrossRingWraparound) {
  Explainer ex;
  ex.set_capacity(4);
  for (int i = 0; i < 11; ++i) ex.record(stamped(i));  // head mid-ring
  const auto newest = ex.snapshot(2);
  ASSERT_EQ(newest.size(), 2u);
  EXPECT_DOUBLE_EQ(newest[0].t, 9.0);
  EXPECT_DOUBLE_EQ(newest[1].t, 10.0);
}

TEST(Explainer, SnapshotCopiesAreIndependentOfLaterRecords) {
  // The cross-thread discipline: a snapshot must stay valid while the ring
  // keeps rotating underneath it.
  Explainer ex;
  ex.set_capacity(2);
  ex.record(stamped(0.0));
  ex.record(stamped(1.0));
  const auto copy = ex.snapshot(2);
  for (int i = 2; i < 10; ++i) ex.record(stamped(i));  // overwrite every slot
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_DOUBLE_EQ(copy[0].t, 0.0);
  EXPECT_DOUBLE_EQ(copy[1].t, 1.0);
}

}  // namespace
}  // namespace sa::core
