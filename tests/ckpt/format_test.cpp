// Fuzz/negative tests for the checkpoint container (ctest -L ckpt).
//
// The loader's contract is "typed error, never crash": every truncation
// point, every single-bit flip, zero-length input, wrong magic/version —
// each must come back as a ckpt::Status, with no exception, no UB and no
// out-of-bounds read (the CI sanitizer lanes run this suite under
// ASan/UBSan, which is what turns "no crash observed" into "no UB").
#include "ckpt/format.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

namespace sa::ckpt {
namespace {

std::string image_with_sections() {
  Buffer alpha;
  alpha.u64(42);
  alpha.str("hello");
  alpha.f64(-0.0);
  Buffer beta;
  beta.boolean(true);
  beta.bytes(std::string(300, 'x'));
  Writer w;
  w.section("alpha", alpha);
  w.section("beta", beta);
  return w.finish();
}

TEST(CkptFormat, Crc32KnownVector) {
  // The classic IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(CkptFormat, BufferCursorRoundTripExactBits) {
  Buffer b;
  b.u8(0xab);
  b.u32(0xdeadbeef);
  b.u64(0x0123456789abcdefULL);
  b.i64(-17);
  b.boolean(false);
  b.f64(std::numeric_limits<double>::quiet_NaN());
  b.f64(-0.0);
  b.str("key");
  b.bytes("payload");

  Cursor c(b.data());
  std::uint8_t u8v = 0;
  std::uint32_t u32v = 0;
  std::uint64_t u64v = 0;
  std::int64_t i64v = 0;
  bool bv = true;
  double nan = 0.0, negzero = 1.0;
  std::string s, p;
  ASSERT_TRUE(c.u8(u8v));
  ASSERT_TRUE(c.u32(u32v));
  ASSERT_TRUE(c.u64(u64v));
  ASSERT_TRUE(c.i64(i64v));
  ASSERT_TRUE(c.boolean(bv));
  ASSERT_TRUE(c.f64(nan));
  ASSERT_TRUE(c.f64(negzero));
  ASSERT_TRUE(c.str(s));
  ASSERT_TRUE(c.bytes(p));
  EXPECT_EQ(u8v, 0xab);
  EXPECT_EQ(u32v, 0xdeadbeefu);
  EXPECT_EQ(u64v, 0x0123456789abcdefULL);
  EXPECT_EQ(i64v, -17);
  EXPECT_FALSE(bv);
  EXPECT_TRUE(std::isnan(nan));
  EXPECT_TRUE(std::signbit(negzero));
  EXPECT_EQ(negzero, 0.0);
  EXPECT_EQ(s, "key");
  EXPECT_EQ(p, "payload");
  EXPECT_TRUE(c.at_end());
  EXPECT_TRUE(c.finish("roundtrip").ok());
}

TEST(CkptFormat, CursorShortReadLatchesNotThrows) {
  Buffer b;
  b.u32(7);
  Cursor c(b.data());
  std::uint64_t v = 0;
  EXPECT_FALSE(c.u64(v));  // only 4 bytes available
  EXPECT_FALSE(c.ok());
  std::string s;
  EXPECT_FALSE(c.str(s));  // latched: everything after fails too
  EXPECT_EQ(c.finish("short").code, Errc::kMalformed);
}

TEST(CkptFormat, WriterReaderRoundTrip) {
  const std::string image = image_with_sections();
  Reader r;
  ASSERT_TRUE(Reader::parse(image, r).ok());
  EXPECT_TRUE(r.has("alpha"));
  EXPECT_TRUE(r.has("beta"));
  EXPECT_FALSE(r.has("gamma"));
  ASSERT_EQ(r.names().size(), 2u);

  Cursor c;
  ASSERT_TRUE(r.open("alpha", c).ok());
  std::uint64_t v = 0;
  std::string s;
  double d = 1.0;
  ASSERT_TRUE(c.u64(v));
  ASSERT_TRUE(c.str(s));
  ASSERT_TRUE(c.f64(d));
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(std::signbit(d));
  EXPECT_TRUE(c.finish("alpha").ok());

  EXPECT_EQ(r.open("gamma", c).code, Errc::kMissingSection);
}

TEST(CkptFormat, ZeroLengthAndGarbageInputs) {
  Reader r;
  EXPECT_EQ(Reader::parse("", r).code, Errc::kTruncated);
  EXPECT_EQ(Reader::parse("x", r).code, Errc::kBadMagic);
  EXPECT_EQ(Reader::parse("SACKPT\n", r).code, Errc::kBadMagic);
  // A true magic prefix cut inside the header is a torn write.
  EXPECT_EQ(Reader::parse(std::string("SACKPT\n\0\x01", 9), r).code,
            Errc::kTruncated);
  EXPECT_EQ(Reader::parse(std::string(64, '\0'), r).code, Errc::kBadMagic);
  EXPECT_EQ(Reader::parse("definitely not a checkpoint file at all", r).code,
            Errc::kBadMagic);
}

TEST(CkptFormat, WrongVersionIsTyped) {
  std::string image = image_with_sections();
  image[8] = static_cast<char>(kFormatVersion + 1);  // little-endian u32
  Reader r;
  EXPECT_EQ(Reader::parse(image, r).code, Errc::kBadVersion);
}

TEST(CkptFormat, DuplicateSectionNameRejected) {
  Buffer payload;
  payload.u8(1);
  Writer w;
  w.section("dup", payload);
  w.section("dup", payload);  // Writer asserts uniqueness by dropping/marking
  const std::string image = w.finish();
  Reader r;
  const Status st = Reader::parse(image, r);
  // Either the writer refused the duplicate (one section survives) or the
  // reader rejects the image — both keep duplicates out of a Reader.
  if (st.ok()) {
    EXPECT_EQ(r.names().size(), 1u);
  } else {
    EXPECT_EQ(st.code, Errc::kBadSection);
  }
}

// The heart of satellite 3: every prefix truncation of a valid image must
// yield a typed error (or, for the degenerate full-length case, success) —
// never a crash, throw, or out-of-bounds read.
TEST(CkptFormat, TruncationAtEveryByteIsTypedError) {
  const std::string image = image_with_sections();
  for (std::size_t len = 0; len < image.size(); ++len) {
    Reader r;
    const Status st = Reader::parse(image.substr(0, len), r);
    EXPECT_FALSE(st.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_NE(st.code, Errc::kOk);
  }
  Reader full;
  EXPECT_TRUE(Reader::parse(image, full).ok());
}

// Every single-bit flip must be *detected* — magic, version, framing or
// CRC — except flips confined to a section-name byte... which still get
// caught because the name length/chars feed the framing walk and lookups.
// We assert the weaker, load-bearing property: parse never crashes, and
// if it accepts the image, the payload bytes of surviving sections were
// CRC-validated (so a payload flip is *always* rejected).
TEST(CkptFormat, BitFlipAtEveryByteNeverCrashes) {
  const std::string image = image_with_sections();
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = image;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      Reader r;
      const Status st = Reader::parse(std::move(mutated), r);
      if (!st.ok()) ++rejected;
    }
  }
  // Almost every flip lands in magic/version/framing/payload/CRC and must
  // be rejected; only name-byte flips can legally survive (the renamed
  // section still frames and CRCs correctly).
  EXPECT_GT(rejected, image.size() * 8u * 9u / 10u);
}

TEST(CkptFormat, AtomicWriteRotatesAndFallsBack) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/ckpt_format_test.sackpt";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  std::remove((path + ".tmp").c_str());

  // First write: no .prev yet.
  Buffer one;
  one.u64(1);
  Writer w1;
  w1.section("gen", one);
  ASSERT_TRUE(write_file_atomic(path, w1.finish()).ok());

  // Second write rotates the first image to .prev.
  Buffer two;
  two.u64(2);
  Writer w2;
  w2.section("gen", two);
  ASSERT_TRUE(write_file_atomic(path, w2.finish()).ok());

  Reader r;
  std::string used;
  ASSERT_TRUE(read_with_fallback(path, r, &used).ok());
  EXPECT_EQ(used, path);
  Cursor c;
  ASSERT_TRUE(r.open("gen", c).ok());
  std::uint64_t generation = 0;
  ASSERT_TRUE(c.u64(generation));
  EXPECT_EQ(generation, 2u);

  // Corrupt the primary: the fallback must serve generation 1 and report
  // why the primary was rejected.
  {
    std::string data;
    ASSERT_TRUE(slurp_file(path, data).ok());
    data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x40);
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
  }
  Reader fb;
  std::string fallback_error;
  ASSERT_TRUE(read_with_fallback(path, fb, &used, &fallback_error).ok());
  EXPECT_EQ(used, path + ".prev");
  EXPECT_FALSE(fallback_error.empty());
  ASSERT_TRUE(fb.open("gen", c).ok());
  ASSERT_TRUE(c.u64(generation));
  EXPECT_EQ(generation, 1u);

  // Both gone: kIo.
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  Reader none;
  EXPECT_EQ(read_with_fallback(path, none).code, Errc::kIo);
}

TEST(CkptFormat, ErrcNamesAreStable) {
  EXPECT_STREQ(errc_name(Errc::kOk), "ok");
  EXPECT_NE(std::string(errc_name(Errc::kCrcMismatch)), "");
  EXPECT_NE(std::string(errc_name(Errc::kStateDivergence)), "");
}

}  // namespace
}  // namespace sa::ckpt
