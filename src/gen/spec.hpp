// Seeded scenario specifications.
//
// The paper's evaluation argument (Sections III and VII) is that
// self-awareness pays off across *diverse, shifting* environments — which
// a fixed set of hand-written benches cannot probe. A ScenarioSpec is the
// whole scenario as data, in the FaultPlan::parse spec idiom: a short
// string names which substrates exist, how big they are, and how hard the
// fault environment presses, and the expansion turns it into concrete
// randomized-but-reproducible topologies, workloads and fault schedules.
//
// Grammar ("section:key=value,...;section;..."):
//
//   seed=N                standalone; 0 (default) = derive from the run seed
//   world:horizon=T,exchange=P,step=S
//   multicore:nodes=K,big=B,little=L,epoch=E,rate=R,work=W,deadline=D,jitter=J
//   cameras:count=C,objects=O,clusters=G,districts=D,epoch=STEPS,speed=V
//   cloud:nodes=K,epoch=E,demand=R,amp=A
//   cpn:rows=R,cols=C,shortcuts=S,flows=F,grids=G,rate=R
//   faults:pressure=P,dur=D,start=T0,end=T1
//
// A substrate section's presence enables that substrate; a bare section
// name (no ':') enables it with all defaults. parse(to_string())
// round-trips; to_string() emits only non-default keys, so specs stay
// short, canonical config strings.
//
// Determinism contract (the FaultPlan rule, extended): every random choice
// the expansion makes draws from a per-section splitmix64 stream forked
// off (spec seed or run seed) — never from a substrate or experiment-cell
// Rng — so the same spec + seed expands to byte-identical worlds on any
// machine, thread count or build, and enabling one more section never
// reshuffles the draws another section sees.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "sim/rng.hpp"
#include "svc/network.hpp"

namespace sa::gen {

/// Run-wide knobs (always present; not a substrate).
struct WorldSection {
  double horizon = 600.0;    ///< sim seconds the scenario runs for
  double exchange_s = 30.0;  ///< knowledge-exchange period; 0 disables
  double step_s = 1.0;       ///< camera/CPN tick period on the engine

  bool operator==(const WorldSection&) const = default;
};

/// Multicore edge nodes: `nodes` independent big.LITTLE platforms, each
/// with its own run-time manager and a per-node workload jittered around
/// (rate, work, deadline) by up to ±jitter (relative).
struct MulticoreSection {
  bool enabled = false;
  std::size_t nodes = 2;
  std::size_t big = 2;
  std::size_t little = 2;
  double epoch_s = 0.5;    ///< manager control period
  double rate = 25.0;      ///< task arrivals/s per node (pre-jitter)
  double work = 0.4;       ///< mean giga-ops per task
  double deadline = 0.5;   ///< relative deadline, s
  double jitter = 0.25;    ///< relative per-node workload randomization

  bool operator==(const MulticoreSection&) const = default;
};

/// Smart-camera network: `clusters` dense 4-camera clusters at random
/// centres plus sparse solo cameras up to `count`, watching `objects`.
/// `districts` replicates the whole section: D independent camera
/// networks of `count` cameras each (district 0 expands exactly like a
/// districts=1 section), the scale axis behind the 100k-camera city and
/// the natural sharding unit (sa::shard).
struct CameraSection {
  bool enabled = false;
  std::size_t count = 12;
  std::size_t objects = 24;
  std::size_t clusters = 2;
  std::size_t districts = 1;
  std::size_t epoch_steps = 25;  ///< world steps per strategy epoch
  double speed = 0.015;          ///< object speed per step

  bool operator==(const CameraSection&) const = default;
};

/// Volunteer-cloud backend: node population drawn by the Cluster itself
/// from its seed; demand base modulated by upstream deliveries when the
/// CPN section is also enabled (see gen::Scenario).
struct CloudSection {
  bool enabled = false;
  std::size_t nodes = 24;
  double epoch_s = 10.0;  ///< autoscaler control period
  double demand = 40.0;   ///< base requests/s
  double amp = 0.3;       ///< diurnal amplitude

  bool operator==(const CloudSection&) const = default;
};

/// Cognitive packet network: rows×cols grid plus random shortcut chords,
/// steady legitimate traffic over random flows. `grids` replicates the
/// section into G independent city-block networks (grid 0 expands
/// exactly like a grids=1 section); camera district d couples into grid
/// d mod G.
struct CpnSection {
  bool enabled = false;
  std::size_t rows = 4;
  std::size_t cols = 6;
  std::size_t shortcuts = 4;
  std::size_t flows = 8;
  std::size_t grids = 1;
  double rate = 2.0;  ///< legit packets per tick, network-wide

  bool operator==(const CpnSection&) const = default;
};

/// Fault environment: the expansion derives one FaultProcess per fault
/// kind applicable to an *enabled* substrate, with rates/durations
/// randomized from the section stream and scaled linearly by `pressure`
/// (0 = an empty plan — the guaranteed no-op).
struct FaultSection {
  bool enabled = false;
  double pressure = 1.0;  ///< global fault-rate multiplier
  double dur = 15.0;      ///< mean fault duration scale, s (<0 = permanent)
  double start = 0.0;     ///< processes active from here...
  double end = std::numeric_limits<double>::infinity();  ///< ...to here

  bool operator==(const FaultSection&) const = default;
};

/// One concrete edge-node workload drawn by the expansion.
struct EdgeWorkload {
  double rate = 0.0;
  double work = 0.0;
  double deadline = 0.0;
};

struct ScenarioSpec {
  std::uint64_t seed = 0;  ///< 0 = derive everything from the run seed
  WorldSection world;
  MulticoreSection multicore;
  CameraSection cameras;
  CloudSection cloud;
  CpnSection cpn;
  FaultSection faults;

  bool operator==(const ScenarioSpec&) const = default;

  [[nodiscard]] bool any_substrate() const noexcept {
    return multicore.enabled || cameras.enabled || cloud.enabled ||
           cpn.enabled;
  }

  /// Parses a spec string (see the grammar above). Empty spec -> empty
  /// spec (no substrates). Throws std::invalid_argument on unknown
  /// sections/keys, malformed numbers, or out-of-range values.
  [[nodiscard]] static ScenarioSpec parse(std::string_view spec);
  /// Canonical spec string (parse(to_string()) round-trips).
  [[nodiscard]] std::string to_string() const;

  /// The flagship composite: cameras → packet network → cloud backend →
  /// multicore edge nodes plus a standing fault environment (E15).
  [[nodiscard]] static ScenarioSpec city();
  /// The city spec as its canonical string (what --scenario defaults to).
  [[nodiscard]] static const char* city_spec();

  // -- Seeded expansion -----------------------------------------------------
  // Every expansion draws only from its own section stream forked off
  // `scenario_seed` (= this->seed, or the run seed when this->seed is 0).

  /// The effective seed the expansions key off.
  [[nodiscard]] std::uint64_t scenario_seed(std::uint64_t run_seed) const {
    return seed != 0 ? seed : run_seed;
  }
  /// The per-section stream (public so tests can pin expansion draws).
  [[nodiscard]] static sim::Rng section_stream(std::uint64_t scenario_seed,
                                               std::string_view section);

  /// Camera layout for one district: `clusters` dense 4-camera clusters
  /// at stream-drawn centres, then solo cameras at stream-drawn
  /// positions, `count` total. District 0 draws exactly the districts=1
  /// sequence; district d > 0 uses a stream forked by d, so growing
  /// `districts` never reshuffles earlier districts' layouts.
  [[nodiscard]] std::vector<svc::CameraSpec> expand_cameras(
      std::uint64_t run_seed, std::size_t district = 0) const;
  /// Per-node edge workloads jittered around (rate, work, deadline).
  [[nodiscard]] std::vector<EdgeWorkload> expand_workloads(
      std::uint64_t run_seed) const;
  /// The fault plan: one randomized process per kind applicable to an
  /// enabled substrate, rates scaled by `pressure` (pressure 0 or a
  /// disabled section -> empty plan). The plan seed is stream-derived and
  /// non-zero, so the schedule is pinned by (spec, seed) alone.
  [[nodiscard]] fault::FaultPlan expand_faults(std::uint64_t run_seed) const;

 private:
  [[nodiscard]] std::size_t clusters_that_fit() const;
};

}  // namespace sa::gen
