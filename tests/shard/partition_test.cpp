// Contract tests for the deterministic world partitioner (sa::shard).
#include "shard/partition.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/spec.hpp"

namespace {

using namespace sa;

gen::ScenarioSpec parse(const std::string& text) {
  return gen::ScenarioSpec::parse(text);
}

const char* const kCitySpec =
    "world:horizon=80;multicore:nodes=3;"
    "cameras:count=6,objects=8,clusters=1,districts=5;"
    "cloud:nodes=8;cpn:rows=3,cols=3,shortcuts=2,flows=4,grids=4;faults";

TEST(Partition, EnumerationOrderIsDistrictsGridsEdges) {
  const auto units = shard::enumerate_units(parse(kCitySpec));
  ASSERT_EQ(units.size(), 5u + 4u + 3u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(units[i].kind, shard::UnitKind::CameraDistrict);
    EXPECT_EQ(units[i].index, i);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(units[5 + i].kind, shard::UnitKind::CpnGrid);
    EXPECT_EQ(units[5 + i].index, i);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(units[9 + i].kind, shard::UnitKind::EdgeNode);
    EXPECT_EQ(units[9 + i].index, i);
  }
}

TEST(Partition, WeightsReflectSectionSizes) {
  const auto units = shard::enumerate_units(parse(kCitySpec));
  // Camera district: count x objects; CPN grid: nodes + flows.
  EXPECT_DOUBLE_EQ(units[0].weight, 6.0 * 8.0);
  EXPECT_DOUBLE_EQ(units[5].weight, 3.0 * 3.0 + 4.0);
}

TEST(Partition, DisabledSectionsContributeNoUnits) {
  const auto spec = parse("world:horizon=40;cloud:nodes=8;cpn:rows=3,cols=3");
  const auto units = shard::enumerate_units(spec);
  ASSERT_EQ(units.size(), 1u);  // one default grid; cloud has no units
  EXPECT_EQ(units[0].kind, shard::UnitKind::CpnGrid);
}

TEST(Partition, ZeroShardsThrows) {
  EXPECT_THROW(shard::partition_world(parse(kCitySpec), 0),
               std::invalid_argument);
}

TEST(Partition, EveryUnitAssignedInRange) {
  const auto spec = parse(kCitySpec);
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    const auto part = shard::partition_world(spec, shards);
    EXPECT_EQ(part.shards, shards);
    ASSERT_EQ(part.district_shard.size(), 5u);
    ASSERT_EQ(part.grid_shard.size(), 4u);
    ASSERT_EQ(part.edge_shard.size(), 3u);
    for (const std::size_t s : part.district_shard) EXPECT_LT(s, shards);
    for (const std::size_t s : part.grid_shard) EXPECT_LT(s, shards);
    for (const std::size_t s : part.edge_shard) EXPECT_LT(s, shards);
    std::size_t listed = 0;
    for (const auto& su : part.shard_units) listed += su.size();
    EXPECT_EQ(listed, part.units());
  }
}

TEST(Partition, DeterministicInSpecAndCount) {
  const auto spec = parse(kCitySpec);
  const auto a = shard::partition_world(spec, 4);
  const auto b = shard::partition_world(spec, 4);
  EXPECT_EQ(a.district_shard, b.district_shard);
  EXPECT_EQ(a.grid_shard, b.grid_shard);
  EXPECT_EQ(a.edge_shard, b.edge_shard);
  EXPECT_EQ(a.shard_weight, b.shard_weight);
}

TEST(Partition, LptKeepsNoShardIdleWhenUnitsSuffice) {
  const auto part = shard::partition_world(parse(kCitySpec), 4);
  for (const auto& su : part.shard_units) EXPECT_FALSE(su.empty());
}

TEST(Partition, MoreShardsThanUnitsLeavesTrailingShardsEmpty) {
  // 12 units on 16 shards: every unit alone, four shards idle.
  const auto part = shard::partition_world(parse(kCitySpec), 16);
  std::size_t empty = 0;
  for (const auto& su : part.shard_units) {
    EXPECT_LE(su.size(), 1u);
    if (su.empty()) ++empty;
  }
  EXPECT_EQ(empty, 4u);
}

TEST(Partition, CloudOnlySpecHasNoUnits) {
  const auto part =
      shard::partition_world(parse("world:horizon=40;cloud:nodes=8"), 4);
  EXPECT_EQ(part.units(), 0u);
  for (const auto& su : part.shard_units) EXPECT_TRUE(su.empty());
}

TEST(Partition, BalanceWithinHeaviestUnitOfOptimal) {
  // The classic LPT bound: max load <= mean + heaviest unit. Loose but
  // catches a broken comparator or accumulation.
  const auto spec = parse(kCitySpec);
  const auto units = shard::enumerate_units(spec);
  double total = 0.0, heaviest = 0.0;
  for (const auto& u : units) {
    total += u.weight;
    heaviest = std::max(heaviest, u.weight);
  }
  const auto part = shard::partition_world(spec, 4);
  for (const double w : part.shard_weight) {
    EXPECT_LE(w, total / 4.0 + heaviest);
  }
}

}  // namespace
