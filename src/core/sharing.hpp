// Knowledge exchange: sharing the public self with peers.
//
// The framework's public/private distinction (Section IV, concept 1) is
// what makes sharing well-defined: only Public knowledge — the externally
// observable self — crosses agent boundaries. KnowledgeExchange imports a
// peer's public snapshot under "shared.<peer>.<key>", discounting
// confidence (second-hand knowledge is weaker evidence) and never
// overwriting fresher local copies. Imported items are stored Private, so
// knowledge does not gossip transitively by accident — an agent shares
// what it knows of itself, not rumours.
#pragma once

#include <cstddef>
#include <string>

#include "core/knowledge.hpp"

namespace sa::core {

class KnowledgeExchange {
 public:
  struct Params {
    double confidence_decay = 0.8;  ///< imported confidence multiplier
    std::string prefix = "shared";  ///< namespace for imported knowledge
  };

  KnowledgeExchange() : KnowledgeExchange(Params{}) {}
  explicit KnowledgeExchange(Params p) : p_(p) {}

  /// Imports `from`'s public snapshot into `into` as
  /// "<prefix>.<peer_id>.<key>". Items older than what `into` already
  /// holds under that key are skipped. Returns the number of items
  /// imported.
  std::size_t import(const KnowledgeBase& from, const std::string& peer_id,
                     KnowledgeBase& into) const;

  [[nodiscard]] const Params& params() const noexcept { return p_; }

  /// Key under which `key` from `peer_id` lands locally.
  [[nodiscard]] std::string shared_key(const std::string& peer_id,
                                       const std::string& key) const {
    return p_.prefix + "." + peer_id + "." + key;
  }

 private:
  Params p_;
};

}  // namespace sa::core
