#include "exp/harness.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "exp/metrics_jsonl.hpp"
#include "exp/trace_json.hpp"
#include "sim/engine.hpp"

#ifdef SA_SERVE_ENABLED
#include "serve/bridge.hpp"
#include "serve/server.hpp"
#endif

namespace sa::exp {
namespace {

/// Set by the SIGTERM/SIGINT handler; polled by the supervisor thread.
/// The handler itself does nothing else — saving a checkpoint from signal
/// context would call non-async-signal-safe functions.
volatile std::sig_atomic_t g_signal = 0;

extern "C" void harness_signal_handler(int sig) { g_signal = sig; }

void install_signal_handlers() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction sa {};
  sa.sa_handler = harness_signal_handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESTART keeps the serve/loadgen socket loops from spuriously
  // failing while the supervisor finishes the shutdown checkpoint (they
  // handle EINTR regardless — see tests/serve/eintr_test.cpp).
  sa.sa_flags = SA_RESTART;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
#else
  std::signal(SIGTERM, harness_signal_handler);
  std::signal(SIGINT, harness_signal_handler);
#endif
}

}  // namespace

/// Owns the HTTP endpoint for one served run. Defined even in SA_SERVE=OFF
/// builds (empty) so the Harness destructor stays a single definition; the
/// constructor path that would create one exits first on such builds.
struct Harness::ServeState {
#ifdef SA_SERVE_ENABLED
  serve::SimBridge bridge;
  serve::Server server;

  ServeState(std::uint16_t port, std::string bind,
             serve::SimBridge::Options bridge_opts)
      : bridge(bridge_opts), server([port, &bind] {
          serve::Server::Options o;
          o.port = port;
          o.bind_address = std::move(bind);
          return o;
        }()) {}
#endif
};

Json to_json(const GridResult& result, bool include_timing) {
  Json g = Json::object();
  g["name"] = result.name;
  Json& variants = g["variants"] = Json::array();
  for (const auto& v : result.variants) variants.push_back(v);
  Json& seeds = g["seeds"] = Json::array();
  for (const auto s : result.seeds) {
    seeds.push_back(static_cast<std::int64_t>(s));
  }
  Json& results = g["results"] = Json::array();
  for (const auto& t : result.tasks) {
    Json cell = Json::object();
    cell["variant"] = result.variants[t.variant];
    cell["seed"] = static_cast<std::int64_t>(t.seed);
    Json& metrics = cell["metrics"] = Json::object();
    for (const auto& [name, value] : t.metrics) metrics[name] = value;
    if (!t.note.empty()) cell["note"] = t.note;
    if (!t.error.empty()) cell["error"] = t.error;
    if (include_timing) cell["wall_s"] = t.wall_s;
    results.push_back(std::move(cell));
  }
  Json& summary = g["summary"] = Json::object();
  for (std::size_t v = 0; v < result.variants.size(); ++v) {
    Json& per_variant = summary[result.variants[v]] = Json::object();
    const Aggregate agg = result.aggregate(v);
    for (const auto& metric : agg.names()) {
      const MetricSummary s = agg.summary(metric);
      Json& m = per_variant[metric] = Json::object();
      m["n"] = s.n;
      m["mean"] = s.mean;
      m["stddev"] = s.stddev;
      m["ci95"] = s.ci95;
      m["min"] = s.min;
      m["max"] = s.max;
    }
  }
  if (include_timing) {
    g["wall_s"] = result.wall_s;
    g["jobs"] = static_cast<std::int64_t>(result.jobs);
  }
  return g;
}

double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(ru.ru_maxrss) / 1024.0;  // ru_maxrss is KiB
#endif
  }
#endif
  return 0.0;
}

std::string git_rev() {
  if (const char* env = std::getenv("SA_GIT_REV"); env && *env) return env;
  std::string rev;
  if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p)) rev = buf;
    pclose(p);
  }
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  return rev.empty() ? "unknown" : rev;
}

Harness::Harness(std::string experiment, int argc, const char* const* argv)
    : experiment_(std::move(experiment)),
      opts_([&] {
        Options o;
        const std::string err = parse_args(argc, argv, o);
        const char* prog = argc > 0 ? argv[0] : "bench";
        if (!err.empty()) {
          std::cerr << prog << ": " << err << "\n" << usage(prog);
          std::exit(2);
        }
        if (o.help) {
          std::cout << usage(prog);
          std::exit(0);
        }
        return o;
      }()),
      runner_(opts_.jobs) {
  events_at_start_ = sim::Engine::global_executed();
#ifndef SA_SERVE_ENABLED
  if (opts_.serve_port >= 0) {
    std::cerr << (argc > 0 ? argv[0] : "bench")
              << ": --serve requires a build with -DSA_SERVE=ON\n";
    std::exit(2);
  }
#endif

  if (!opts_.resume.empty()) {
    auto loaded = std::make_unique<CheckpointStore>();
    std::string used_path;
    std::string fallback_error;
    const ckpt::Status st =
        loaded->load(opts_.resume, &used_path, &fallback_error);
    if (st.code == ckpt::Errc::kIo) {
      // No checkpoint yet (neither the file nor its .prev rotation): a
      // fresh start — so crash-supervised scripts can always pass
      // --resume alongside --checkpoint.
      std::cout << "[" << experiment_ << "] no checkpoint at " << opts_.resume
                << ", starting fresh\n";
    } else if (!st.ok()) {
      std::cerr << "error: --resume " << opts_.resume << ": "
                << st.to_string() << "\n";
      std::exit(2);
    } else {
      if (loaded->experiment() != experiment_) {
        std::cerr << "error: --resume " << opts_.resume
                  << ": checkpoint belongs to experiment '"
                  << loaded->experiment() << "', not '" << experiment_
                  << "'\n";
        std::exit(2);
      }
      if (!fallback_error.empty()) {
        std::cout << "[" << experiment_ << "] primary checkpoint rejected ("
                  << fallback_error << "), using " << used_path << "\n";
      }
      std::cout << "[" << experiment_ << "] resuming from " << used_path
                << " (" << loaded->completed() << " completed cells)\n";
      resume_store_ = std::move(loaded);
    }
  }

  journal_spec_ = opts_.control_journal;
  if (!journal_spec_.empty()) {
    // Fail fast on a malformed spec instead of erroring every cell.
    std::vector<ckpt::JournalEntry> parsed;
    if (const ckpt::Status st = ckpt::parse_journal_spec(journal_spec_, parsed);
        !st.ok()) {
      std::cerr << "error: --control-journal: " << st.to_string() << "\n";
      std::exit(2);
    }
  }
  if (resume_store_ != nullptr) {
    // Re-arm the control stream recorded live before the interruption:
    // incomplete cells replay it at the original sim times, and the new
    // store keeps carrying it (pre-seeding journal_ makes every later
    // save, and any further resume, cumulative).
    std::vector<ckpt::JournalEntry> recorded = resume_store_->journal();
    if (!recorded.empty()) {
      const std::string spec = ckpt::journal_spec(recorded);
      journal_spec_ =
          journal_spec_.empty() ? spec : journal_spec_ + "; " + spec;
      journal_.set_entries(std::move(recorded));
    }
  }

  if (!opts_.checkpoint.empty() || !opts_.json.empty()) {
    store_ = std::make_unique<CheckpointStore>(experiment_);
    if (!opts_.checkpoint.empty()) {
      world_ckpt_path_ = opts_.checkpoint + ".world";
    }
    start_supervisor();
  }
}

Harness::~Harness() { stop_supervisor(); }

void Harness::start_supervisor() {
  if (supervisor_.joinable()) return;
  install_signal_handlers();
  supervisor_ = std::thread([this] {
    auto last_save = std::chrono::steady_clock::now();
    while (!supervisor_stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (g_signal != 0) interrupted_exit(static_cast<int>(g_signal));
      if (opts_.checkpoint.empty()) continue;
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_save).count() >=
          opts_.checkpoint_every) {
        save_store();
        last_save = now;
      }
    }
  });
}

void Harness::stop_supervisor() {
  supervisor_stop_.store(true, std::memory_order_relaxed);
  if (supervisor_.joinable()) supervisor_.join();
}

void Harness::save_store() {
  if (store_ == nullptr || opts_.checkpoint.empty()) return;
  store_->set_journal(journal_.snapshot());
  if (const ckpt::Status st = store_->save(opts_.checkpoint); !st.ok()) {
    std::cerr << "warning: checkpoint save to " << opts_.checkpoint
              << " failed: " << st.to_string() << "\n";
  }
}

void Harness::interrupted_exit(int sig) {
  // Supervisor-thread context, workers still mid-cell: only the
  // mutex-guarded store, the journal, and immutable options are touched.
  if (store_ != nullptr) {
    store_->set_interrupted(true);
    save_store();
  }
  std::cerr << "[" << experiment_ << "] interrupted by signal " << sig;
  if (!opts_.checkpoint.empty()) {
    std::cerr << "; checkpoint saved to " << opts_.checkpoint << " ("
              << (store_ != nullptr ? store_->completed() : 0)
              << " completed cells, resume with --resume " << opts_.checkpoint
              << ")";
  }
  std::cerr << "\n";
  if (!opts_.json.empty() && store_ != nullptr) {
    std::ofstream out(opts_.json);
    if (out) {
      interrupted_document().dump(out);
      out << "\n";
      out.flush();
    }
  }
  std::_Exit(128 + sig);
}

Json Harness::interrupted_document() const {
  Json doc = Json::object();
  doc["schema"] = 1;
  doc["experiment"] = experiment_;
  Json& meta = doc["meta"] = Json::object();
  meta["interrupted"] = true;
  meta["git_rev"] = git_rev();
  meta["jobs"] = static_cast<std::int64_t>(jobs());
  if (!opts_.fault_plan.empty()) meta["fault_plan"] = opts_.fault_plan;
  if (!opts_.scenario.empty()) meta["scenario"] = opts_.scenario;
  Json& grids = doc["grids"] = Json::array();
  // Timing-free cells (wall-clock is meaningless for a partial document);
  // never-completed cells carry "interrupted before completion" errors.
  for (const GridResult& g : store_->grid_results()) {
    grids.push_back(to_json(g, /*include_timing=*/false));
  }
  return doc;
}

void Harness::start_serving() {
#ifdef SA_SERVE_ENABLED
  if (serve_ != nullptr || opts_.serve_port < 0) return;
  serve::SimBridge::Options bridge_opts;
  bridge_opts.control_token = opts_.serve_token;
  serve_ = std::make_unique<ServeState>(
      static_cast<std::uint16_t>(opts_.serve_port), opts_.serve_bind,
      std::move(bridge_opts));
  serve_->bridge.set_metrics(metrics_.get());
  serve_->bridge.set_telemetry(trace_bus_.get());
  serve_->bridge.set_journal(&journal_);
  serve_->bridge.install(serve_->server);
  if (!serve_->server.start()) {
    std::cerr << "error: --serve: " << serve_->server.error() << "\n";
    std::exit(2);
  }
  std::cout << "[" << experiment_ << "] serving on 127.0.0.1:"
            << serve_->server.port() << " (cell " << traced_cell_ << ")\n";
#endif
}

void Harness::linger_and_stop(std::ostream& os) {
#ifdef SA_SERVE_ENABLED
  if (serve_ == nullptr) return;
  if (opts_.serve_linger > 0.0 && !serve_->bridge.shutdown_requested()) {
    os << "[" << experiment_ << "] lingering " << opts_.serve_linger
       << " s on 127.0.0.1:" << serve_->server.port()
       << " (POST /control cmd=shutdown to end early)\n";
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(opts_.serve_linger);
    while (std::chrono::steady_clock::now() < deadline &&
           !serve_->bridge.shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  serve_->server.stop();
#else
  (void)os;
#endif
}

std::vector<std::uint64_t> Harness::seeds_for(
    std::vector<std::uint64_t> defaults) const {
  if (opts_.seeds == 0 || opts_.seeds == defaults.size()) return defaults;
  if (opts_.seeds < defaults.size()) {
    defaults.resize(opts_.seeds);
    return defaults;
  }
  // Extend deterministically past the canonical list.
  const std::uint64_t key = fnv1a(experiment_);
  for (std::size_t i = defaults.size(); i < opts_.seeds; ++i) {
    defaults.push_back(sim::mix64(key ^ (0x5eed0000ULL + i)));
  }
  return defaults;
}

void Harness::note_shard_events(const std::vector<std::uint64_t>& events) {
  if (events.empty()) return;
  const std::lock_guard<std::mutex> lock(shard_mutex_);
  if (shard_events_.size() < events.size()) {
    shard_events_.resize(events.size(), 0);
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    shard_events_[i] += events[i];
  }
}

std::vector<std::uint64_t> Harness::shard_events() const {
  const std::lock_guard<std::mutex> lock(shard_mutex_);
  return shard_events_;
}

GridResult Harness::run(Grid grid) {
  grid.seeds = seeds_for(std::move(grid.seeds));
  if (opts_.shards > 1) {
    // Sharded run: every cell sees the shard count (trajectories are
    // byte-identical to --shards 1, so this never forks the document).
    auto inner = std::move(grid.task);
    grid.task = [this, inner = std::move(inner)](const TaskContext& ctx) {
      TaskContext cell = ctx;
      cell.shards = opts_.shards;
      return inner(cell);
    };
  }
  const bool serving = opts_.serve_port >= 0;
  const bool want_observability =
      !opts_.trace.empty() || !opts_.metrics.empty() || serving;
  if (want_observability && !trace_cell_assigned_ && !grid.variants.empty() &&
      !grid.seeds.empty()) {
    trace_cell_assigned_ = true;
    trace_bus_ = std::make_unique<sim::TelemetryBus>();
    tracer_ = std::make_unique<sim::Tracer>(*trace_bus_);
    metrics_ = std::make_unique<sim::MetricsRegistry>();
    const std::size_t traced_variant = grid.variants.size() - 1;
    const std::uint64_t traced_seed = grid.seeds.front();
    traced_cell_ = grid.name + "/" + grid.variants[traced_variant] +
                   "/seed " + std::to_string(traced_seed);
    if (serving) start_serving();
    auto inner = std::move(grid.task);
    grid.task = [this, inner = std::move(inner), traced_variant,
                 traced_seed](const TaskContext& ctx) {
      if (ctx.variant == traced_variant && ctx.seed == traced_seed) {
        TaskContext traced = ctx;
        traced.telemetry = trace_bus_.get();
        traced.tracer = tracer_.get();
        traced.metrics = metrics_.get();
#ifdef SA_SERVE_ENABLED
        if (serve_ != nullptr) {
          traced.serve_bind = [this](const ServeHooks& hooks) {
            if (hooks.engine == nullptr) return;
            for (core::SelfAwareAgent* a : hooks.agents) {
              serve_->bridge.add_agent(a);
            }
            for (core::DegradationPolicy* l : hooks.ladders) {
              serve_->bridge.add_degradation(l);
            }
            if (hooks.injector != nullptr) {
              serve_->bridge.set_injector(hooks.injector);
            }
            if (hooks.checkpoint) {
              serve_->bridge.set_checkpoint_hook(hooks.checkpoint);
            }
            if (hooks.shard_stats) {
              serve_->bridge.set_shard_source(
                  [src = hooks.shard_stats]() {
                    serve::ShardSnapshot snap;
                    auto [events, lag] = src();
                    snap.events = std::move(events);
                    snap.lag_seconds = lag;
                    return snap;
                  });
            }
            serve_->bridge.attach(*hooks.engine);
          };
        }
#endif
        return inner(traced);
      }
      return inner(ctx);
    };
  }

  // Checkpoint / resume / journal wrap — outermost, applied to every cell.
  const std::size_t grid_id = grid_index_++;
  if (store_ != nullptr) {
    store_->add_grid(grid.name, grid.variants, grid.seeds);
  }
  if (resume_store_ != nullptr) {
    if (const std::string err = resume_store_->match(grid_id, grid);
        !err.empty()) {
      std::cerr << "error: --resume " << opts_.resume << ": " << err << "\n";
      std::exit(2);
    }
  }
  if (store_ != nullptr || resume_store_ != nullptr ||
      !journal_spec_.empty() || !world_ckpt_path_.empty()) {
    // The world-snapshot path goes to the same designated cell the tracer
    // uses (last variant, first seed, first grid) so cmd=checkpoint and
    // --serve compose on one cell.
    const bool first_grid = grid_id == 0;
    const std::size_t last_variant =
        grid.variants.empty() ? 0 : grid.variants.size() - 1;
    const std::uint64_t first_seed = grid.seeds.empty() ? 0 : grid.seeds[0];
    auto inner = std::move(grid.task);
    grid.task = [this, inner = std::move(inner), grid_id, first_grid,
                 last_variant, first_seed](const TaskContext& ctx) {
      if (resume_store_ != nullptr) {
        if (const TaskResult* done =
                resume_store_->find(grid_id, ctx.variant, ctx.seed);
            done != nullptr && done->error.empty()) {
          // Completed before the interruption: return the stored output
          // bit-for-bit (and carry it into the new store) instead of
          // re-running the cell.
          if (store_ != nullptr) store_->record(grid_id, *done);
          return TaskOutput{done->metrics, done->note};
        }
      }
      TaskContext cell = ctx;
      cell.control_journal = journal_spec_;
      if (first_grid && ctx.variant == last_variant && ctx.seed == first_seed) {
        cell.checkpoint_path = world_ckpt_path_;
      }
      TaskOutput out = inner(cell);
      if (store_ != nullptr) {
        store_->record(grid_id, TaskResult{ctx.variant, ctx.seed, out.metrics,
                                           out.note, std::string{}, 0.0});
      }
      return out;
    };
  }
  results_.push_back(runner_.run(experiment_, grid));
  return results_.back();
}

Json Harness::document() const {
  Json doc = Json::object();
  doc["schema"] = 1;
  doc["experiment"] = experiment_;
  Json& meta = doc["meta"] = Json::object();
  meta["git_rev"] = git_rev();
  meta["jobs"] = static_cast<std::int64_t>(jobs());
  // Only emitted when set: pre-existing documents stay byte-identical.
  if (!opts_.fault_plan.empty()) meta["fault_plan"] = opts_.fault_plan;
  if (!opts_.scenario.empty()) meta["scenario"] = opts_.scenario;
  double wall = 0.0;
  for (const auto& g : results_) wall += g.wall_s;
  meta["wall_clock_s"] = wall;
  // Throughput block: how hard the event kernel worked for this document.
  // events_total is deterministic for a fixed workload; events_per_sec and
  // peak_rss_mb are wall-clock-dependent, so CI byte-diffs exclude them
  // alongside wall_clock_s.
  const std::uint64_t events = sim::Engine::global_executed() - events_at_start_;
  meta["events_total"] = static_cast<std::int64_t>(events);
  meta["events_per_sec"] = wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
  meta["peak_rss_mb"] = peak_rss_mb();
  // Sharded-run breakdown (only when --shards > 1, so pre-existing
  // documents stay byte-identical): per-shard executed-event totals
  // summed across cells, last entry = the coordinator engine. Encoded as
  // one comma-joined value per key so the CI byte-diff idiom — grep away
  // the run-dependent meta lines, compare the rest — keeps holding.
  if (opts_.shards > 1) {
    meta["shards"] = static_cast<std::int64_t>(opts_.shards);
    std::string totals, rates;
    for (const std::uint64_t n : shard_events()) {
      if (!totals.empty()) {
        totals += ',';
        rates += ',';
      }
      totals += std::to_string(n);
      rates += std::to_string(wall > 0.0 ? static_cast<double>(n) / wall
                                         : 0.0);
    }
    meta["shard_events_total"] = totals;
    meta["shard_events_per_sec"] = rates;
  }
  Json& grids = doc["grids"] = Json::array();
  for (const auto& g : results_) grids.push_back(to_json(g));
  // Failed cells surfaced top-level so CI does not have to walk every
  // grid's results to learn *what* made the exit code non-zero. Absent
  // when everything passed (byte-stability of green documents).
  std::size_t failed = 0;
  for (const auto& g : results_) failed += g.errors();
  if (failed != 0) {
    Json& cells = doc["failed_cells"] = Json::array();
    for (const auto& g : results_) {
      for (const auto& t : g.tasks) {
        if (t.error.empty()) continue;
        Json cell = Json::object();
        cell["grid"] = g.name;
        cell["variant"] = g.variants[t.variant];
        cell["seed"] = static_cast<std::int64_t>(t.seed);
        cell["error"] = t.error;
        cells.push_back(std::move(cell));
      }
    }
  }
  return doc;
}

int Harness::finish(std::ostream& os) {
  stop_supervisor();
  if (!opts_.checkpoint.empty() && store_ != nullptr) {
    save_store();
    os << "wrote " << opts_.checkpoint << " (" << store_->completed()
       << " completed cells)\n";
  }
  std::size_t failed = 0;
  for (const auto& g : results_) {
    for (const auto& t : g.tasks) {
      if (t.error.empty()) continue;
      ++failed;
      os << "error: " << experiment_ << "/" << g.name << " variant '"
         << g.variants[t.variant] << "' seed " << t.seed << ": " << t.error
         << "\n";
    }
  }
  double wall = 0.0;
  std::size_t cells = 0;
  for (const auto& g : results_) {
    wall += g.wall_s;
    cells += g.tasks.size();
  }
  os << "[" << experiment_ << "] " << cells << " runs in " << wall
     << " s wall-clock on " << jobs() << " job(s)\n";

  int rc = failed != 0 ? 1 : 0;
  if (!opts_.json.empty()) {
    std::ofstream out(opts_.json);
    if (!out) {
      std::cerr << "error: cannot write " << opts_.json << "\n";
      rc = 1;
    } else {
      document().dump(out);
      out << "\n";
      os << "wrote " << opts_.json << "\n";
    }
  }
  if (!opts_.trace.empty()) {
    std::ofstream out(opts_.trace);
    if (!out) {
      std::cerr << "error: cannot write " << opts_.trace << "\n";
      rc = 1;
    } else {
      // A run with no grids still produces a valid, empty document.
      sim::TelemetryBus empty_bus;
      sim::Tracer empty(empty_bus);
      const sim::Tracer& tr = tracer_ ? *tracer_ : empty;
      write_chrome_trace(out, tr);
      os << "wrote " << opts_.trace;
      if (tracer_) {
        os << " (cell " << traced_cell_ << ", " << tr.spans() << " spans, "
           << tr.flows() << " flow points)";
      }
      os << "\n";
    }
  }
  if (!opts_.metrics.empty()) {
    std::ofstream out(opts_.metrics);
    if (!out) {
      std::cerr << "error: cannot write " << opts_.metrics << "\n";
      rc = 1;
    } else {
      sim::MetricsRegistry empty;
      write_metrics_jsonl(out, metrics_ ? *metrics_ : empty);
      os << "wrote " << opts_.metrics;
      if (metrics_) {
        os << " (cell " << traced_cell_ << ", " << metrics_->size()
           << " metrics, " << metrics_->snapshots().size() << " snapshots)";
      }
      os << "\n";
    }
  }
  linger_and_stop(os);
  return rc;
}

int Harness::finish() { return finish(std::cout); }

}  // namespace sa::exp
