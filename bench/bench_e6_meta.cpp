// E6 — meta-self-awareness pays off under structural drift
// (paper Section IV; Morin [42]; Cox's metacognitive loop [27]).
//
// Claim operationalised: when the environment changes *permanently* (not a
// recurring phase mix), an agent whose meta level watches its own goal
// utility and resets stale learned models recovers faster than the same
// agent without a meta level; a discount-forgetting learner is the
// established non-meta alternative and lands in between.
//
// Environment: a 6-armed reward landscape whose best arm moves twice
// during the run (one-way drift). The agent's policy is an ordinary
// (non-discounted) bandit; only the meta level differs across rows.
//
// Table 1: mean reward per drift era and overall regret vs oracle.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "exp/harness.hpp"
#include "learn/bandit.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;

constexpr int kSteps = 3000;
constexpr int kEraLen = 1000;  // best arm moves at 1000 and 2000
constexpr std::size_t kArms = 6;
const std::vector<std::uint64_t> kSeeds{61, 62, 63, 64, 65};

/// Reward means per era: the optimum migrates and old values mislead.
double arm_mean(std::size_t arm, int era) {
  const std::size_t best = (static_cast<std::size_t>(era) * 2) % kArms;
  if (arm == best) return 0.9;
  // The previous era's best stays *decent* — a trap for stale values.
  const std::size_t prev =
      (static_cast<std::size_t>(era + 2) * 2) % kArms;
  if (arm == prev && era > 0) return 0.6;
  return 0.3;
}

struct Config {
  std::string name;
  bool meta;
  bool discounted;
};

exp::TaskOutput run(const Config& cfg, std::uint64_t seed) {
  core::AgentConfig ac;
  ac.seed = seed;
  ac.levels = cfg.meta
                  ? core::LevelSet{core::Level::Stimulus, core::Level::Goal,
                                   core::Level::Meta}
                  : core::LevelSet{core::Level::Stimulus, core::Level::Goal};
  // Fast drift response: this scenario is exactly the one the meta knobs
  // exist for (one-way structural change).
  ac.meta.ph_delta = 0.02;
  ac.meta.ph_lambda = 3.0;
  ac.meta.grace_updates = 32;
  core::SelfAwareAgent agent("driftee", ac);

  double last_reward = 0.0;
  agent.add_sensor("reward", [&] { return last_reward; });
  for (std::size_t a = 0; a < kArms; ++a) {
    agent.add_action("arm" + std::to_string(a), [] {});
  }
  agent.goals().add_objective(
      {"reward", core::utility::rising(0.0, 1.0), 1.0});
  agent.set_goal_metrics({"reward"});

  std::unique_ptr<learn::Bandit> bandit;
  if (cfg.discounted) {
    bandit = std::make_unique<learn::DiscountedUcb>(kArms, 0.99);
  } else {
    bandit = std::make_unique<learn::EpsilonGreedy>(kArms, 0.1);
  }
  agent.set_policy(std::make_unique<core::BanditPolicy>(std::move(bandit)));

  sim::Rng env(sim::mix64(seed) ^ 0xe6);
  sim::RunningStats era[3], overall;
  for (int t = 0; t < kSteps; ++t) {
    const int e = t / kEraLen;
    const auto d = agent.step(t);
    const double r =
        env.chance(arm_mean(d.action_index, e)) ? 1.0 : 0.0;
    last_reward = r;
    agent.reward(r);
    era[e].add(r);
    overall.add(r);
  }
  return {{{"era0", era[0].mean()},
           {"era1", era[1].mean()},
           {"era2", era[2].mean()},
           {"overall", overall.mean()}}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e6_meta", argc, argv);
  std::cout << "E6: recovering from structural drift — meta level vs fixed "
               "vs discount-forgetting. Best arm moves at steps 1000 and "
               "2000; oracle mean reward is 0.9.\n\n";

  const std::vector<Config> configs{
      {"no meta (fixed eps-greedy)", false, false},
      {"discounted UCB (forgetting)", false, true},
      {"meta-self-aware (drift reset)", true, false},
  };

  exp::Grid g;
  g.name = "e6";
  for (const auto& cfg : configs) g.variants.push_back(cfg.name);
  g.seeds = kSeeds;
  g.task = [&configs](const exp::TaskContext& ctx) {
    return run(configs[ctx.variant], ctx.seed);
  };
  const auto res = h.run(std::move(g));

  sim::Table t("E6.1  mean reward by drift era",
               {"agent", "era0", "era1", "era2", "overall", "regret"});
  for (std::size_t v = 0; v < res.variants.size(); ++v) {
    const double overall = res.mean(v, "overall");
    t.add_row({res.variants[v], res.mean(v, "era0"), res.mean(v, "era1"),
               res.mean(v, "era2"), overall, 0.9 - overall});
  }
  t.print(std::cout);
  return h.finish();
}
