// Tests for the learned vision graph behind the Smooth handover strategy.
#include <gtest/gtest.h>

#include "svc/network.hpp"

namespace sa::svc {
namespace {

NetworkParams world(std::uint64_t seed = 6) {
  NetworkParams p;
  p.objects = 20;
  p.seed = seed;
  return p;
}

TEST(LearnedLinks, StartEmpty) {
  auto net = Network::clustered_layout(world());
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    EXPECT_TRUE(net.learned_links(c).empty());
  }
}

TEST(LearnedLinks, BroadcastTeachesTheGraph) {
  auto net = Network::clustered_layout(world());
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    net.set_strategy(c, Strategy::Broadcast);
  }
  net.run(600);
  std::size_t total_links = 0;
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    total_links += net.learned_links(c).size();
  }
  EXPECT_GT(total_links, 0u);
}

TEST(LearnedLinks, SmoothAloneNeverBootstraps) {
  auto net = Network::clustered_layout(world());
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    net.set_strategy(c, Strategy::Smooth);
  }
  net.run(600);
  // No auction can succeed without a link, and no link can form without a
  // successful auction: the graph stays empty and no messages are sent.
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    EXPECT_TRUE(net.learned_links(c).empty());
  }
  EXPECT_DOUBLE_EQ(net.harvest_network().messages, 0.0);
}

TEST(LearnedLinks, SmoothExploitsAGraphTaughtByBroadcast) {
  auto net = Network::clustered_layout(world());
  // Phase 1: everyone broadcasts, learning who their real partners are.
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    net.set_strategy(c, Strategy::Broadcast);
  }
  net.run(800);
  net.harvest_network();
  const double broadcast_cov = [&] {
    net.run(400);
    auto e = net.harvest_network();
    return e.coverage;
  }();
  // Phase 2: switch to smooth over the learned graph.
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    net.set_strategy(c, Strategy::Smooth);
  }
  net.run(400);
  const auto smooth = net.harvest_network();
  EXPECT_GT(smooth.coverage, broadcast_cov * 0.9);  // nearly as good...
  EXPECT_GT(smooth.messages, 0.0);
  // ...at a fraction of the message cost (smooth audiences are learned
  // partners only, broadcast audiences are everyone).
}

TEST(LearnedLinks, GraphLinksPointToRealCameras) {
  auto net = Network::clustered_layout(world());
  net.run(600);
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    for (const auto peer : net.learned_links(c)) {
      EXPECT_LT(peer, net.cameras());
      EXPECT_NE(peer, c);
    }
  }
}

}  // namespace
}  // namespace sa::svc
