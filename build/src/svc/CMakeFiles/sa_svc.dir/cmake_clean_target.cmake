file(REMOVE_RECURSE
  "libsa_svc.a"
)
