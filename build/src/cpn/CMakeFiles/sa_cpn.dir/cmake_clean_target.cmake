file(REMOVE_RECURSE
  "libsa_cpn.a"
)
