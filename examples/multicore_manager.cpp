// Example: self-aware run-time management of a big.LITTLE chip.
//
// A phase-changing workload (steady / burst / latency-critical) runs on a
// 2-big + 4-LITTLE platform. The self-aware manager senses epoch
// statistics, forecasts demand, and picks the DVFS + mapping configuration
// whose *predicted* outcome maximises the multi-objective goal model. The
// timeline prints what it chose as each phase comes and goes.
//
// Run: ./build/examples/multicore_manager
#include <cstdio>

#include "multicore/manager.hpp"
#include "multicore/workload.hpp"

int main() {
  using namespace sa::multicore;

  Platform platform(PlatformConfig::big_little(2, 4), 2030);
  auto workload = PhasedWorkload::standard();

  Manager::Params params;
  params.variant = Manager::Variant::SelfAware;
  params.seed = 2030;
  Manager manager(platform, params);

  std::printf("epoch  phase        config            util  power  p95_lat\n");
  for (int e = 1; e <= 480; ++e) {
    workload.apply(platform);
    const double u = manager.run_epoch();
    if (e % 24 == 0) {
      const auto& phase = workload.current(platform.now() - 0.25);
      const auto last = manager.agent().explainer().last();
      std::printf("%5d  %-11s  %-16s  %.2f  %5.2f   %6.3f\n", e,
                  phase.name.c_str(),
                  last ? last->decision.action.c_str() : "?", u,
                  manager.last_stats().mean_power,
                  manager.last_stats().p95_latency);
    }
  }

  std::printf("\nRun summary: mean utility %.3f, mean power %.2f W, "
              "power-cap violations %.1f%%\n",
              manager.utility().mean(), manager.power().mean(),
              manager.cap_violation_rate() * 100.0);
  std::printf("\nThe manager explains its last reconfiguration:\n  %s\n",
              manager.agent().explainer().why_last().c_str());
  return 0;
}
