#include "exp/metrics_jsonl.hpp"

#include <ostream>

#include "exp/json.hpp"

namespace sa::exp {

namespace {

const char* kind_name(sim::MetricsRegistry::Kind k) {
  switch (k) {
    case sim::MetricsRegistry::Kind::Counter:
      return "counter";
    case sim::MetricsRegistry::Kind::Gauge:
      return "gauge";
    case sim::MetricsRegistry::Kind::Timer:
      return "timer";
    case sim::MetricsRegistry::Kind::Histogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

void write_metrics_jsonl(std::ostream& os,
                         const sim::MetricsRegistry& registry) {
  using MetricId = sim::MetricsRegistry::MetricId;
  Json header = Json::object();
  header["schema"] = 1;
  header["kind"] = "metrics";
  Json& names = header["names"] = Json::array();
  Json& kinds = header["kinds"] = Json::array();
  for (MetricId m = 0; m < registry.size(); ++m) {
    names.push_back(registry.name(m));
    kinds.push_back(kind_name(registry.kind(m)));
  }
  header.dump(os, /*indent=*/-1);
  os << "\n";

  for (const sim::MetricsRegistry::Snapshot& snap : registry.snapshots()) {
    Json row = Json::object();
    row["t"] = snap.t;
    Json& values = row["v"] = Json::array();
    for (const double v : snap.values) values.push_back(v);
    row.dump(os, /*indent=*/-1);
    os << "\n";
  }

  Json footer = Json::object();
  Json& summary = footer["summary"] = Json::object();
  for (MetricId m = 0; m < registry.size(); ++m) {
    Json& entry = summary[registry.name(m)] = Json::object();
    entry["kind"] = kind_name(registry.kind(m));
    switch (registry.kind(m)) {
      case sim::MetricsRegistry::Kind::Counter:
      case sim::MetricsRegistry::Kind::Gauge:
        entry["value"] = registry.value(m);
        break;
      case sim::MetricsRegistry::Kind::Timer:
      case sim::MetricsRegistry::Kind::Histogram: {
        const sim::RunningStats& s = registry.stats(m);
        entry["count"] = s.count();
        entry["mean"] = s.mean();
        entry["stddev"] = s.stddev();
        entry["min"] = s.count() ? s.min() : 0.0;
        entry["max"] = s.count() ? s.max() : 0.0;
        break;
      }
    }
  }
  footer.dump(os, /*indent=*/-1);
  os << "\n";
}

}  // namespace sa::exp
