#include "core/policy.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace sa::core {
namespace {

const std::vector<std::string> kActions{"a", "b", "c"};

TEST(FixedPolicy, AlwaysChoosesConfiguredAction) {
  FixedPolicy p(1);
  KnowledgeBase kb;
  sim::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const auto d = p.decide(0.0, kb, kActions, rng);
    EXPECT_EQ(d.action_index, 1u);
    EXPECT_EQ(d.action, "b");
  }
}

TEST(FixedPolicy, ClampsOutOfRangeIndex) {
  FixedPolicy p(99);
  KnowledgeBase kb;
  sim::Rng rng(1);
  EXPECT_EQ(p.decide(0.0, kb, kActions, rng).action_index, 2u);
}

TEST(RulePolicy, FirstMatchingRuleWins) {
  RulePolicy p(0);
  p.add_rule({"x high",
              [](const KnowledgeBase& kb) { return kb.number("x") > 5.0; },
              1,
              {"x"}});
  p.add_rule({"always", [](const KnowledgeBase&) { return true; }, 2, {}});
  KnowledgeBase kb;
  sim::Rng rng(1);
  kb.put_number("x", 10.0, 0.0);
  auto d = p.decide(0.0, kb, kActions, rng);
  EXPECT_EQ(d.action_index, 1u);
  EXPECT_NE(d.rationale.find("x high"), std::string::npos);
  EXPECT_EQ(d.evidence, std::vector<std::string>{"x"});

  kb.put_number("x", 0.0, 1.0);
  d = p.decide(1.0, kb, kActions, rng);
  EXPECT_EQ(d.action_index, 2u);  // second rule fires
}

TEST(RulePolicy, DefaultWhenNothingMatches) {
  RulePolicy p(2);
  p.add_rule({"never", [](const KnowledgeBase&) { return false; }, 0, {}});
  KnowledgeBase kb;
  sim::Rng rng(1);
  const auto d = p.decide(0.0, kb, kActions, rng);
  EXPECT_EQ(d.action_index, 2u);
  EXPECT_NE(d.rationale.find("default"), std::string::npos);
}

TEST(BanditPolicy, LearnsFromFeedback) {
  BanditPolicy p(std::make_unique<learn::EpsilonGreedy>(3, 0.1));
  KnowledgeBase kb;
  sim::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto d = p.decide(0.0, kb, kActions, rng);
    p.feedback(d.action_index == 1 ? 1.0 : 0.0);
  }
  std::size_t ones = 0;
  for (int i = 0; i < 100; ++i) {
    const auto d = p.decide(0.0, kb, kActions, rng);
    p.feedback(d.action_index == 1 ? 1.0 : 0.0);
    ones += d.action_index == 1 ? 1 : 0;
  }
  EXPECT_GT(ones, 80u);
}

TEST(BanditPolicy, DecisionCarriesConsideredValues) {
  BanditPolicy p(std::make_unique<learn::EpsilonGreedy>(3, 0.0));
  KnowledgeBase kb;
  sim::Rng rng(3);
  auto d = p.decide(0.0, kb, kActions, rng);
  p.feedback(1.0);
  d = p.decide(0.0, kb, kActions, rng);
  ASSERT_EQ(d.considered.size(), 3u);
  EXPECT_EQ(d.considered[0].action, "a");
  EXPECT_FALSE(d.rationale.empty());
}

TEST(BanditPolicy, FeedbackWithoutDecisionIsIgnored) {
  BanditPolicy p(std::make_unique<learn::EpsilonGreedy>(2, 0.0));
  p.feedback(100.0);  // no pending decision: must not corrupt values
  EXPECT_DOUBLE_EQ(p.bandit().value(0), 0.0);
  EXPECT_DOUBLE_EQ(p.bandit().value(1), 0.0);
}

TEST(BanditPolicy, DoubleFeedbackCountsOnce) {
  BanditPolicy p(std::make_unique<learn::EpsilonGreedy>(1, 0.0));
  KnowledgeBase kb;
  sim::Rng rng(4);
  p.decide(0.0, kb, {"only"}, rng);
  p.feedback(1.0);
  p.feedback(1.0);  // stale, ignored
  EXPECT_DOUBLE_EQ(p.bandit().value(0), 1.0);  // one sample mean, not two
}

TEST(BanditPolicy, ResetClearsLearnedValues) {
  BanditPolicy p(std::make_unique<learn::EpsilonGreedy>(2, 0.0));
  KnowledgeBase kb;
  sim::Rng rng(5);
  p.decide(0.0, kb, {"a", "b"}, rng);
  p.feedback(5.0);
  p.reset();
  EXPECT_DOUBLE_EQ(p.bandit().value(0), 0.0);
}

TEST(ModelBasedPolicy, PicksArgmaxPredictedUtility) {
  GoalModel goals;
  goals.add_objective({"y", utility::rising(0.0, 10.0), 1.0});
  // Action k is predicted to yield y = 3k.
  ModelBasedPolicy p(
      goals,
      [](std::size_t action, const KnowledgeBase&) {
        return MetricMap{{"y", 3.0 * static_cast<double>(action)}};
      },
      {"some.evidence"});
  KnowledgeBase kb;
  sim::Rng rng(6);
  const auto d = p.decide(0.0, kb, kActions, rng);
  EXPECT_EQ(d.action_index, 2u);
  ASSERT_EQ(d.considered.size(), 3u);
  EXPECT_DOUBLE_EQ(d.considered[0].score, 0.0);
  EXPECT_DOUBLE_EQ(d.considered[2].score, 0.6);
  EXPECT_EQ(d.evidence, std::vector<std::string>{"some.evidence"});
  EXPECT_NE(d.rationale.find("predicted utility"), std::string::npos);
}

TEST(ModelBasedPolicy, RespectsHardConstraintsInPrediction) {
  GoalModel goals;
  goals.add_objective({"y", utility::rising(0.0, 10.0), 1.0});
  goals.add_constraint(
      {"cap", [](const MetricMap& m) { return m.at("y") <= 5.0; }, true});
  ModelBasedPolicy p(goals, [](std::size_t action, const KnowledgeBase&) {
    return MetricMap{{"y", 3.0 * static_cast<double>(action)}};
  });
  KnowledgeBase kb;
  sim::Rng rng(7);
  // y=6 for action 2 violates the cap (utility 0); action 1 (y=3) wins.
  EXPECT_EQ(p.decide(0.0, kb, kActions, rng).action_index, 1u);
}

TEST(Policies, NamesAreInformative) {
  EXPECT_EQ(FixedPolicy(0).name(), "fixed");
  EXPECT_EQ(RulePolicy(0).name(), "rules");
  EXPECT_EQ(
      BanditPolicy(std::make_unique<learn::Ucb1>(2)).name(), "bandit:ucb1");
  GoalModel g;
  EXPECT_EQ(ModelBasedPolicy(g, [](std::size_t, const KnowledgeBase&) {
              return MetricMap{};
            }).name(),
            "model-based");
}

}  // namespace
}  // namespace sa::core
