// Dependency-free HTTP/1.1 message layer for the embedded control plane.
//
// The parser is an incremental byte consumer deliberately separated from
// any socket: feed() it whatever arrived (possibly a partial request,
// possibly several pipelined requests) and poll ready requests out. This
// keeps the whole grammar unit-testable without a listener — malformed
// request lines, oversized headers, partial reads and pipelining are all
// exercised in tests/serve/http_parser_test.cpp.
//
// Scope: exactly what /metrics, /status, /events and /control need.
// GET/POST/HEAD with Content-Length bodies; no chunked transfer encoding,
// no multipart, no TLS. Unsupported constructs are rejected with the
// matching 4xx/5xx status rather than guessed at.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sa::serve {

/// One parsed request. `target` is split into `path` and the raw (still
/// URL-encoded) `query` at the first '?'.
struct HttpRequest {
  std::string method;   ///< upper-case by grammar ("GET", "POST", ...)
  std::string target;   ///< request-target as received
  std::string path;     ///< target up to the first '?'
  std::string query;    ///< after the first '?' ("" if none)
  int version_minor = 1;  ///< HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with the given name, case-insensitively; nullptr if
  /// absent.
  [[nodiscard]] const std::string* header(std::string_view name) const;
};

/// Incremental HTTP/1.1 request parser with hard limits. One parser per
/// connection; pipelined requests come out one next_request() at a time.
class HttpParser {
 public:
  struct Limits {
    std::size_t max_request_line = 4096;
    std::size_t max_header_bytes = 16384;  ///< all header lines together
    std::size_t max_headers = 64;
    std::size_t max_body = 1 << 20;
  };

  HttpParser() = default;
  explicit HttpParser(Limits limits) : limits_(limits) {}

  /// Appends received bytes to the internal buffer and parses as far as
  /// possible. Returns false once the parser has entered the error state
  /// (the connection should send error_status() and close).
  bool feed(std::string_view bytes);

  /// Moves out the next complete request, if one is ready. Pipelined
  /// requests queue up; call repeatedly until it returns false.
  [[nodiscard]] bool next_request(HttpRequest& out);

  [[nodiscard]] bool failed() const noexcept { return error_status_ != 0; }
  /// HTTP status to answer with when failed(): 400 (malformed), 413 (body
  /// too large), 431 (header too large), 501 (unimplemented transfer
  /// encoding), 505 (unsupported version).
  [[nodiscard]] int error_status() const noexcept { return error_status_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Complete requests parsed but not yet handed out by next_request().
  [[nodiscard]] std::size_t pending() const noexcept { return ready_.size(); }

  /// Bytes buffered but not yet parsed into a request.
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  bool parse_some();  ///< one attempt; returns whether progress was made
  bool fail(int status, std::string message);

  Limits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already parsed
  std::vector<HttpRequest> ready_;
  int error_status_ = 0;
  std::string error_;
};

/// One response; serialise() emits the status line, standard headers, a
/// Content-Length and the body. For HEAD requests the body is measured
/// but not sent.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
  bool close = false;  ///< ask the connection to close after this response

  [[nodiscard]] std::string serialise(bool head_only = false) const;
};

/// Reason phrase for the handful of statuses the server emits.
[[nodiscard]] const char* status_reason(int status) noexcept;

/// Minimal JSON string escaping for the hand-built /status and SSE
/// payloads (sa::serve deliberately does not depend on sa::exp's Json).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace sa::serve
