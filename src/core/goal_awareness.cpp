#include "core/goal_awareness.hpp"

namespace sa::core {

void GoalAwareness::update(double t, const Observation& obs,
                           KnowledgeBase& kb) {
  last_metrics_.clear();
  for (const auto& key : metrics_) {
    // Fresh observation wins; otherwise fall back to the KB's latest view
    // (the metric may be produced by another process, or unsampled this
    // step under an attention budget).
    if (const auto it = obs.find(key); it != obs.end()) {
      last_metrics_[key] = it->second;
    } else if (kb.contains(key)) {
      last_metrics_[key] = kb.number(key);
    }
  }

  utility_ = goals_.utility(last_metrics_);
  feasible_ = goals_.feasible(last_metrics_);
  trend_.add(utility_);
  ++updates_;

  kb.put_number("goal.utility", utility_, t, 1.0, Scope::Private, name());
  kb.put_number("goal.utility.trend", trend_.value(), t, 1.0, Scope::Private,
                name());
  kb.put_number("goal.feasible", feasible_ ? 1.0 : 0.0, t, 1.0,
                Scope::Private, name());
  const auto violated = goals_.violations(last_metrics_);
  kb.put_number("goal.violations", static_cast<double>(violated.size()), t,
                1.0, Scope::Private, name());
  for (const auto& [metric, u] : goals_.breakdown(last_metrics_)) {
    kb.put_number("goal." + metric + ".utility", u, t, 1.0, Scope::Private,
                  name());
  }
}

double GoalAwareness::quality() const {
  if (updates_ == 0) return 0.0;
  // Goal awareness is "working" when it has all its metrics available.
  return metrics_.empty()
             ? 1.0
             : static_cast<double>(last_metrics_.size()) /
                   static_cast<double>(metrics_.size());
}

}  // namespace sa::core
