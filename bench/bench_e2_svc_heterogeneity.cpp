// E2 — "Learning to be different" in a smart camera network
// (paper Section II; Lewis et al. [13]).
//
// Claims operationalised:
//   (a) per-camera self-aware strategy learning matches or beats every
//       homogeneous (one-size-fits-all) strategy assignment on global
//       utility;
//   (b) the learned assignment is *heterogeneous* — cameras in different
//       local situations (dense cluster vs isolated ring) choose different
//       strategies, i.e. diversity emerges from self-awareness.
//
// Table 1: global outcomes per configuration.
// Table 2: learned strategy by camera group (cluster vs ring).
#include <iostream>
#include <string>
#include <vector>

#include "sim/report.hpp"
#include "sim/stats.hpp"
#include "svc/fleet.hpp"

namespace {

using namespace sa;
using namespace sa::svc;

constexpr int kEpochs = 400;
const std::vector<std::uint64_t> kSeeds{31, 32, 33};

struct Outcome {
  sim::RunningStats coverage, messages, utility, diversity;
  std::vector<std::size_t> cluster_hist{0, 0, 0};
  std::vector<std::size_t> ring_hist{0, 0, 0};
};

NetworkParams world(std::uint64_t seed) {
  NetworkParams p;
  p.objects = 24;
  p.seed = seed;
  return p;
}

Outcome run(CameraFleet::Mode mode, Strategy fixed, std::uint64_t seed) {
  auto net = Network::clustered_layout(world(seed));
  CameraFleet::Params p;
  p.mode = mode;
  p.fixed = fixed;
  p.seed = seed;
  CameraFleet fleet(net, p);
  Outcome o;
  sim::RunningStats tail_cov, tail_msg, tail_u;
  for (int e = 0; e < kEpochs; ++e) {
    const auto ne = fleet.run_epoch();
    if (e >= kEpochs / 2) {  // judge converged behaviour
      tail_cov.add(ne.coverage);
      tail_msg.add(ne.messages);
      tail_u.add(ne.global_utility);
    }
  }
  o.coverage.add(tail_cov.mean());
  o.messages.add(tail_msg.mean());
  o.utility.add(tail_u.mean());
  o.diversity.add(fleet.diversity());
  // Cameras 0-3 form the dense cluster; 4-11 the sparse ring.
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    auto& hist = c < 4 ? o.cluster_hist : o.ring_hist;
    ++hist[static_cast<std::size_t>(net.strategy(c))];
  }
  return o;
}

void merge(Outcome& into, const Outcome& from) {
  into.coverage.merge(from.coverage);
  into.messages.merge(from.messages);
  into.utility.merge(from.utility);
  into.diversity.merge(from.diversity);
  for (std::size_t s = 0; s < kStrategies; ++s) {
    into.cluster_hist[s] += from.cluster_hist[s];
    into.ring_hist[s] += from.ring_hist[s];
  }
}

}  // namespace

int main() {
  std::cout << "E2: homogeneous strategies vs per-camera learning, "
            << kEpochs << " epochs x 25 steps, " << kSeeds.size()
            << " seeds. Cameras 0-3 cluster at the hotspot; 4-11 are an "
               "isolated ring.\n\n";

  struct Config {
    std::string name;
    CameraFleet::Mode mode;
    Strategy fixed;
  };
  const std::vector<Config> configs{
      {"homogeneous broadcast", CameraFleet::Mode::Homogeneous,
       Strategy::Broadcast},
      {"homogeneous smooth", CameraFleet::Mode::Homogeneous,
       Strategy::Smooth},
      {"homogeneous passive", CameraFleet::Mode::Homogeneous,
       Strategy::Passive},
      {"self-aware (learned)", CameraFleet::Mode::Learning,
       Strategy::Broadcast},
  };

  sim::Table t1("E2.1  global outcomes (tail half of run, mean over seeds)",
                {"configuration", "coverage", "msgs/epoch", "global_utility",
                 "diversity"});
  std::vector<Outcome> outcomes;
  for (const auto& cfg : configs) {
    Outcome agg;
    for (const auto seed : kSeeds) {
      merge(agg, run(cfg.mode, cfg.fixed, seed));
    }
    outcomes.push_back(agg);
    t1.add_row({cfg.name, agg.coverage.mean(), agg.messages.mean(),
                agg.utility.mean(), agg.diversity.mean()});
  }
  t1.print(std::cout);

  const auto& learned = outcomes.back();
  sim::Table t2(
      "E2.2  learned strategy counts by camera situation (all seeds)",
      {"group", "broadcast", "smooth", "passive"});
  t2.add_row({std::string("cluster (dense)"),
              static_cast<std::int64_t>(learned.cluster_hist[0]),
              static_cast<std::int64_t>(learned.cluster_hist[1]),
              static_cast<std::int64_t>(learned.cluster_hist[2])});
  t2.add_row({std::string("ring (isolated)"),
              static_cast<std::int64_t>(learned.ring_hist[0]),
              static_cast<std::int64_t>(learned.ring_hist[1]),
              static_cast<std::int64_t>(learned.ring_hist[2])});
  t2.print(std::cout);
  return 0;
}
