#include "serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace sa::serve {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_token(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
           std::string_view("!#$%&'*+-.^_`|~").find(c) !=
               std::string_view::npos;
  });
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return &value;
  }
  return nullptr;
}

bool HttpParser::fail(int status, std::string message) {
  error_status_ = status;
  error_ = std::move(message);
  return false;
}

bool HttpParser::feed(std::string_view bytes) {
  if (failed()) return false;
  buffer_.append(bytes);
  while (parse_some()) {
  }
  return !failed();
}

bool HttpParser::next_request(HttpRequest& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return true;
}

// Attempts to parse one complete request from buffer_[consumed_..]; returns
// true iff a request was completed (so the caller loops for pipelining).
bool HttpParser::parse_some() {
  if (failed()) return false;
  const std::string_view data = std::string_view(buffer_).substr(consumed_);
  if (data.empty()) return false;

  // Locate the end of the header block. Accept CRLF and bare LF line
  // endings (curl and browsers send CRLF; tests and humans often do not).
  std::size_t header_end = data.find("\r\n\r\n");
  std::size_t header_sep = 4;
  {
    const std::size_t lf = data.find("\n\n");
    if (lf != std::string_view::npos &&
        (header_end == std::string_view::npos || lf < header_end)) {
      header_end = lf;
      header_sep = 2;
    }
  }
  if (header_end == std::string_view::npos) {
    // Incomplete — but enforce limits against unbounded buffering.
    const std::size_t line_end = data.find('\n');
    if (line_end == std::string_view::npos &&
        data.size() > limits_.max_request_line) {
      return fail(400, "request line too long");
    }
    if (data.size() > limits_.max_request_line + limits_.max_header_bytes) {
      return fail(431, "header block too large");
    }
    return false;
  }
  const std::string_view head = data.substr(0, header_end);

  // --- Request line ------------------------------------------------------
  std::size_t line_end = head.find('\n');
  if (line_end == std::string_view::npos) line_end = head.size();
  std::string_view line = head.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (line.size() > limits_.max_request_line) {
    return fail(400, "request line too long");
  }
  if (head.size() - line.size() > limits_.max_header_bytes) {
    return fail(431, "header block too large");
  }

  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return fail(400, "malformed request line");
  }
  HttpRequest req;
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (!is_token(req.method) || req.target.empty()) {
    return fail(400, "malformed request line");
  }
  if (version == "HTTP/1.1") {
    req.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    req.version_minor = 0;
  } else {
    return fail(505, "unsupported HTTP version");
  }
  const std::size_t qmark = req.target.find('?');
  req.path = req.target.substr(0, qmark);
  if (qmark != std::string::npos) req.query = req.target.substr(qmark + 1);

  // --- Header fields ------------------------------------------------------
  std::size_t pos = line_end == head.size() ? head.size() : line_end + 1;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view field = head.substr(pos, eol - pos);
    if (!field.empty() && field.back() == '\r') field.remove_suffix(1);
    pos = eol + 1;
    if (field.empty()) continue;
    const std::size_t colon = field.find(':');
    if (colon == std::string_view::npos ||
        !is_token(trim(field.substr(0, colon)))) {
      return fail(400, "malformed header field");
    }
    if (req.headers.size() >= limits_.max_headers) {
      return fail(431, "too many header fields");
    }
    req.headers.emplace_back(std::string(trim(field.substr(0, colon))),
                             std::string(trim(field.substr(colon + 1))));
  }

  // --- Body ----------------------------------------------------------------
  if (const std::string* te = req.header("Transfer-Encoding");
      te != nullptr && !iequals(*te, "identity")) {
    return fail(501, "transfer encodings not implemented");
  }
  std::size_t content_length = 0;
  if (const std::string* cl = req.header("Content-Length")) {
    const auto* end = cl->data() + cl->size();
    const auto [ptr, ec] =
        std::from_chars(cl->data(), end, content_length);
    if (ec != std::errc{} || ptr != end) {
      return fail(400, "malformed Content-Length");
    }
    if (content_length > limits_.max_body) {
      return fail(413, "request body too large");
    }
  }
  const std::size_t body_start = header_end + header_sep;
  if (data.size() < body_start + content_length) return false;  // partial
  req.body = std::string(data.substr(body_start, content_length));

  consumed_ += body_start + content_length;
  // Compact once the parsed prefix dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  ready_.push_back(std::move(req));
  return true;
}

const char* status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string HttpResponse::serialise(bool head_only) const {
  std::string out;
  out.reserve(128 + (head_only ? 0 : body.size()));
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  for (const auto& [key, value] : extra_headers) {
    out += "\r\n";
    out += key;
    out += ": ";
    out += value;
  }
  out += close ? "\r\nConnection: close" : "\r\nConnection: keep-alive";
  out += "\r\n\r\n";
  if (!head_only) out += body;
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace sa::serve
