#include "core/meta.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace sa::core {
namespace {

/// Controllable process for exercising the meta level.
class FakeProcess final : public AwarenessProcess {
 public:
  explicit FakeProcess(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] Level level() const override { return Level::Stimulus; }
  [[nodiscard]] std::string name() const override { return name_; }
  void update(double, const Observation&, KnowledgeBase&) override {}
  [[nodiscard]] double quality() const override { return quality_value; }
  void reconfigure() override { ++reconfigures; }

  double quality_value = 1.0;
  int reconfigures = 0;

 private:
  std::string name_;
};

TEST(MetaSelfAwareness, PublishesProcessQuality) {
  FakeProcess p("fake");
  MetaSelfAwareness meta;
  meta.watch(p);
  KnowledgeBase kb;
  for (int i = 0; i < 10; ++i) meta.update(i, {}, kb);
  EXPECT_NEAR(kb.number("meta.fake.quality"), 1.0, 1e-9);
  EXPECT_NEAR(meta.process_quality("fake"), 1.0, 1e-9);
}

TEST(MetaSelfAwareness, ReconfiguresFailingProcess) {
  FakeProcess p("weak");
  MetaSelfAwareness::Params prm;
  prm.grace_updates = 4;
  prm.quality_floor = 0.3;
  MetaSelfAwareness meta(prm);
  meta.watch(p);
  KnowledgeBase kb;
  p.quality_value = 0.05;
  for (int i = 0; i < 40; ++i) meta.update(i, {}, kb);
  EXPECT_GE(p.reconfigures, 1);
  EXPECT_GE(meta.adaptations_fired(), 1u);
  EXPECT_TRUE(kb.contains("meta.weak.reconfigured"));
}

TEST(MetaSelfAwareness, HealthyProcessLeftAlone) {
  FakeProcess p("healthy");
  MetaSelfAwareness meta;
  meta.watch(p);
  KnowledgeBase kb;
  for (int i = 0; i < 100; ++i) meta.update(i, {}, kb);
  EXPECT_EQ(p.reconfigures, 0);
  EXPECT_EQ(meta.adaptations_fired(), 0u);
}

TEST(MetaSelfAwareness, CollapseHookReplacesDefaultReconfigure) {
  FakeProcess p("custom");
  MetaSelfAwareness::Params prm;
  prm.grace_updates = 2;
  MetaSelfAwareness meta(prm);
  meta.watch(p);
  int hook_calls = 0;
  meta.on_quality_collapse("custom", [&] { ++hook_calls; });
  KnowledgeBase kb;
  p.quality_value = 0.0;
  for (int i = 0; i < 30; ++i) meta.update(i, {}, kb);
  EXPECT_GE(hook_calls, 1);
  EXPECT_EQ(p.reconfigures, 0);  // hook took over
}

TEST(MetaSelfAwareness, DetectsUtilityDriftAndFiresHooks) {
  MetaSelfAwareness::Params prm;
  prm.grace_updates = 8;
  prm.ph_lambda = 1.0;
  MetaSelfAwareness meta(prm);
  FakeProcess p("proc");
  meta.watch(p);
  int drift_hook = 0;
  meta.on_drift("reset-policy", [&] { ++drift_hook; });
  KnowledgeBase kb;
  sim::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    kb.put_number("goal.utility", 0.9 + rng.uniform(-0.02, 0.02), i);
    meta.update(i, {}, kb);
  }
  EXPECT_EQ(meta.drift_detections(), 0u);
  for (int i = 200; i < 400; ++i) {
    kb.put_number("goal.utility", 0.2 + rng.uniform(-0.02, 0.02), i);
    meta.update(i, {}, kb);
  }
  EXPECT_GE(meta.drift_detections(), 1u);
  EXPECT_GE(drift_hook, 1);
  EXPECT_GE(p.reconfigures, 1);  // drift refreshes the watched processes
  EXPECT_TRUE(kb.contains("meta.drift.detected"));
}

TEST(MetaSelfAwareness, NoDriftCheckWithoutUtilityKey) {
  MetaSelfAwareness meta;
  KnowledgeBase kb;
  for (int i = 0; i < 100; ++i) meta.update(i, {}, kb);
  EXPECT_EQ(meta.drift_detections(), 0u);
}

TEST(MetaSelfAwareness, PublishesCounters) {
  MetaSelfAwareness meta;
  KnowledgeBase kb;
  meta.update(0.0, {}, kb);
  EXPECT_TRUE(kb.contains("meta.drift.count"));
  EXPECT_TRUE(kb.contains("meta.adaptations"));
}

TEST(MetaSelfAwareness, QualityAggregatesWatchedProcesses) {
  FakeProcess a("a"), b("b");
  a.quality_value = 1.0;
  b.quality_value = 0.0;
  MetaSelfAwareness::Params prm;
  prm.grace_updates = 1000;  // suppress interventions for this test
  MetaSelfAwareness meta(prm);
  meta.watch(a);
  meta.watch(b);
  KnowledgeBase kb;
  for (int i = 0; i < 20; ++i) meta.update(i, {}, kb);
  EXPECT_NEAR(meta.quality(), 0.5, 0.05);
}

TEST(MetaSelfAwareness, LevelAndName) {
  MetaSelfAwareness meta;
  EXPECT_EQ(meta.level(), Level::Meta);
  EXPECT_EQ(meta.name(), "meta");
}

}  // namespace
}  // namespace sa::core
