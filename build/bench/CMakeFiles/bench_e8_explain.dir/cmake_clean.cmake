file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_explain.dir/bench_e8_explain.cpp.o"
  "CMakeFiles/bench_e8_explain.dir/bench_e8_explain.cpp.o.d"
  "bench_e8_explain"
  "bench_e8_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
