# Empty dependencies file for camera_network.
# This may be replaced when dependencies are built.
