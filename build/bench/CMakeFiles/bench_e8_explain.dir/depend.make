# Empty dependencies file for bench_e8_explain.
# This may be replaced when dependencies are built.
