// Tests for the manager's thermal self-model (the E12 mechanism).
#include <gtest/gtest.h>

#include "multicore/manager.hpp"

namespace sa::multicore {
namespace {

double run(Manager::Variant variant, std::size_t static_action,
           std::uint64_t seed) {
  auto cfg = PlatformConfig::big_little(2, 4);
  cfg.thermal = true;
  Platform platform(cfg, seed);
  platform.set_workload(40.0, 0.15, 0.5);
  Manager::Params p;
  p.variant = variant;
  p.static_action = static_action;
  p.seed = seed;
  Manager mgr(platform, p);
  for (int e = 0; e < 200; ++e) mgr.run_epoch();
  return mgr.utility().mean();
}

TEST(ThermalManager, SelfAwareBeatsNaiveSprintOnThermalChip) {
  const double self_aware = run(Manager::Variant::SelfAware, 0, 7);
  const double sprint = run(Manager::Variant::Static, /*f3/bal*/ 9, 7);
  EXPECT_GT(self_aware, sprint - 0.02);
}

TEST(ThermalManager, SelfAwareBeatsReactiveOnThermalChip) {
  const double self_aware = run(Manager::Variant::SelfAware, 0, 8);
  const double reactive = run(Manager::Variant::Reactive, 0, 8);
  EXPECT_GT(self_aware, reactive + 0.1);
}

TEST(ThermalManager, TempSensorPublishedToKnowledge) {
  auto cfg = PlatformConfig::big_little(2, 4);
  cfg.thermal = true;
  Platform platform(cfg, 9);
  platform.set_workload(30.0, 0.2, 0.0);
  Manager::Params p;
  p.seed = 9;
  Manager mgr(platform, p);
  for (int e = 0; e < 10; ++e) mgr.run_epoch();
  EXPECT_GT(mgr.agent().knowledge().number("temp"), 35.0);
}

TEST(ThermalManager, NonThermalChipBehaviourUnchangedByTempSensor) {
  // On a non-thermal platform the temp sensor reads the constant ambient
  // and the self-model's duty factor is 1 — the manager must work as
  // before (this guards against the thermal path leaking into the
  // default configuration).
  Platform platform(PlatformConfig::big_little(2, 4), 10);
  platform.set_workload(25.0, 0.15, 0.8);
  Manager::Params p;
  p.seed = 10;
  Manager mgr(platform, p);
  sim::RunningStats u;
  for (int e = 0; e < 100; ++e) u.add(mgr.run_epoch());
  EXPECT_GT(u.mean(), 0.5);
  EXPECT_DOUBLE_EQ(mgr.agent().knowledge().number("temp"), 40.0);
}

}  // namespace
}  // namespace sa::multicore
