// AgentRuntime: periodic agent execution on the simulation engine.
//
// Binds SelfAwareAgents to a sim::Engine so that control loops, reward
// delivery and knowledge exchange run as scheduled events in simulated
// time — the glue for multi-agent scenarios where entities run at
// different periods (e.g. a fast platform manager next to a slow
// fleet-level coordinator).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "core/sharing.hpp"
#include "sim/engine.hpp"

namespace sa::core {

class AgentRuntime {
 public:
  explicit AgentRuntime(sim::Engine& engine) : engine_(engine) {}

  /// Steps `agent` every `period` seconds (first step after one period).
  /// If `reward_after` is set, its value is fed to the agent after each
  /// step. The agent must outlive the runtime's engine events.
  void schedule(SelfAwareAgent& agent, double period,
                std::function<double()> reward_after = {});

  /// Every `period`, exchanges public knowledge among `agents` in a full
  /// mesh (each imports every other's snapshot). Pointers must stay valid.
  void schedule_exchange(std::vector<SelfAwareAgent*> agents, double period,
                         KnowledgeExchange exchange = KnowledgeExchange{});

  /// Number of schedule()/schedule_exchange() registrations.
  [[nodiscard]] std::size_t scheduled() const noexcept { return scheduled_; }
  /// Total agent steps executed through this runtime.
  [[nodiscard]] std::size_t steps_run() const noexcept { return steps_; }
  /// Total knowledge items imported through scheduled exchanges.
  [[nodiscard]] std::size_t items_exchanged() const noexcept {
    return exchanged_;
  }

 private:
  sim::Engine& engine_;
  std::size_t scheduled_ = 0;
  std::size_t steps_ = 0;
  std::size_t exchanged_ = 0;
};

}  // namespace sa::core
