// Tests for link failures: the self-aware router reroutes, static does not.
#include <gtest/gtest.h>

#include "cpn/network.hpp"

namespace sa::cpn {
namespace {

PacketNetwork::Params params_for(PacketNetwork::Router r) {
  PacketNetwork::Params p;
  p.router = r;
  p.seed = 9;
  return p;
}

TEST(LinkFailure, DeadLinkDropsEverythingSentOntoIt) {
  Topology topo(2, {{0, 1, 1.0, 8.0}});
  PacketNetwork net(topo, params_for(PacketNetwork::Router::Static));
  net.fail_link(0);
  EXPECT_TRUE(net.link_dead(0));
  for (int i = 0; i < 50; ++i) {
    net.inject(0, 1, true);
    net.step();
  }
  const auto s = net.harvest();
  EXPECT_EQ(s.delivered, 0u);
  EXPECT_EQ(s.dropped, 50u);
}

TEST(LinkFailure, RestoreBringsTheLinkBack) {
  Topology topo(2, {{0, 1, 1.0, 8.0}});
  PacketNetwork net(topo, params_for(PacketNetwork::Router::Static));
  net.fail_link(0);
  net.inject(0, 1, true);
  net.restore_link(0);
  for (int i = 0; i < 20; ++i) {
    net.inject(0, 1, true);
    net.step();
  }
  net.run(20);
  EXPECT_GT(net.harvest().delivered, 15u);
}

TEST(LinkFailure, StaticRoutingCannotRouteAround) {
  // Grid with the shortest path 0->1->2 broken at 1-2: static keeps using
  // the precomputed next hops and loses the flow.
  const auto topo = Topology::grid(2, 3, 0, 1);  // nodes 0..5
  PacketNetwork net(topo, params_for(PacketNetwork::Router::Static));
  net.fail_link(topo.link_between(1, 2));
  for (int t = 0; t < 600; ++t) {
    if (t % 3 == 0) net.inject(0, 2, true);
    net.step();
  }
  const auto s = net.harvest();
  EXPECT_LT(s.delivery_rate(), 0.5);
}

TEST(LinkFailure, QRoutingLearnsTheDetour) {
  const auto topo = Topology::grid(2, 3, 0, 1);
  PacketNetwork::Params p = params_for(PacketNetwork::Router::QRouting);
  p.epsilon = 0.05;
  PacketNetwork net(topo, p);
  net.fail_link(topo.link_between(1, 2));
  for (int t = 0; t < 2000; ++t) {
    if (t % 3 == 0) net.inject(0, 2, true);
    net.step();
  }
  net.harvest();  // discard the learning period
  for (int t = 0; t < 600; ++t) {
    if (t % 3 == 0) net.inject(0, 2, true);
    net.step();
  }
  net.run(100);
  const auto s = net.harvest();
  EXPECT_GT(s.delivery_rate(), 0.9);  // found 0->3->4->5->2 (or similar)
}

TEST(LinkFailure, QRoutingSurvivesFailureMidRun) {
  const auto topo = Topology::grid(3, 4, 2, 3);
  PacketNetwork::Params p = params_for(PacketNetwork::Router::QRouting);
  PacketNetwork net(topo, p);
  auto drive = [&](int ticks) {
    for (int t = 0; t < ticks; ++t) {
      if (t % 4 == 0) net.inject(0, 11, true);
      net.step();
    }
    return net.harvest();
  };
  drive(1500);  // converge on the healthy network
  net.fail_link(topo.link_between(0, 1));
  drive(1500);  // adapt
  const auto after = drive(800);
  EXPECT_GT(after.delivery_rate(), 0.85);
}

}  // namespace
}  // namespace sa::cpn
