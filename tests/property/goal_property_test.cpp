// Property tests on the goal model's algebraic guarantees, swept over
// random objective sets and metric points.
#include <gtest/gtest.h>

#include <vector>

#include "core/goal.hpp"
#include "sim/rng.hpp"

namespace sa::core {
namespace {

class GoalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

GoalModel random_goals(sim::Rng& rng, std::vector<std::string>& metrics) {
  GoalModel g;
  const std::size_t n = 1 + rng.below(4);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string metric = "m" + std::to_string(i);
    metrics.push_back(metric);
    const double a = rng.uniform(0.0, 50.0);
    const double b = a + rng.uniform(0.1, 50.0);
    UtilityFn fn;
    switch (rng.below(3)) {
      case 0: fn = utility::rising(a, b); break;
      case 1: fn = utility::falling(a, b); break;
      default: fn = utility::target((a + b) / 2.0, (b - a) / 2.0); break;
    }
    g.add_objective({metric, fn, rng.uniform(0.1, 5.0)});
  }
  return g;
}

MetricMap random_point(sim::Rng& rng,
                       const std::vector<std::string>& metrics) {
  MetricMap m;
  for (const auto& key : metrics) m[key] = rng.uniform(-20.0, 120.0);
  return m;
}

TEST_P(GoalPropertyTest, UtilityAlwaysInUnitInterval) {
  sim::Rng rng(GetParam());
  std::vector<std::string> metrics;
  const auto g = random_goals(rng, metrics);
  for (int i = 0; i < 500; ++i) {
    const double u = g.utility(random_point(rng, metrics));
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST_P(GoalPropertyTest, DominanceIsIrreflexiveAndAsymmetric) {
  sim::Rng rng(GetParam());
  std::vector<std::string> metrics;
  const auto g = random_goals(rng, metrics);
  for (int i = 0; i < 200; ++i) {
    const auto a = random_point(rng, metrics);
    const auto b = random_point(rng, metrics);
    EXPECT_FALSE(g.dominates(a, a));
    EXPECT_FALSE(g.dominates(a, b) && g.dominates(b, a));
  }
}

TEST_P(GoalPropertyTest, DominanceIsTransitiveOnSampledTriples) {
  sim::Rng rng(GetParam());
  std::vector<std::string> metrics;
  const auto g = random_goals(rng, metrics);
  int checked = 0;
  for (int i = 0; i < 2000 && checked < 50; ++i) {
    const auto a = random_point(rng, metrics);
    const auto b = random_point(rng, metrics);
    const auto c = random_point(rng, metrics);
    if (g.dominates(a, b) && g.dominates(b, c)) {
      EXPECT_TRUE(g.dominates(a, c));
      ++checked;
    }
  }
}

TEST_P(GoalPropertyTest, DominatingPointHasAtLeastEqualRawUtility) {
  // Scalarisation is consistent with the partial order: if a dominates b,
  // every weighted mean of per-objective utilities favours a.
  sim::Rng rng(GetParam());
  std::vector<std::string> metrics;
  const auto g = random_goals(rng, metrics);
  for (int i = 0; i < 500; ++i) {
    const auto a = random_point(rng, metrics);
    const auto b = random_point(rng, metrics);
    if (g.dominates(a, b)) {
      EXPECT_GE(g.raw_utility(a) + 1e-12, g.raw_utility(b));
    }
  }
}

TEST_P(GoalPropertyTest, MissingMetricNeverBeatsBestPossible) {
  sim::Rng rng(GetParam());
  std::vector<std::string> metrics;
  const auto g = random_goals(rng, metrics);
  // Dropping a metric can only remove that objective's contribution.
  for (int i = 0; i < 200; ++i) {
    auto full = random_point(rng, metrics);
    auto partial = full;
    partial.erase(partial.begin());
    const double u_partial = g.raw_utility(partial);
    EXPECT_GE(u_partial, 0.0);
    EXPECT_LE(u_partial, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoalPropertyTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace sa::core
