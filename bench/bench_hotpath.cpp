// Hot-path micro-benchmark (data-oriented kernel refactor).
//
// Pins the cost of the simulator's three hot paths after the
// data-oriented rewrite: event dispatch through the slot-arena engine,
// KnowledgeBase reads/writes through the interned-id store, and the
// per-step cost of each substrate at populations well beyond what the
// experiment benches use (64 cameras, 16x16 packet grid, 32 cores, 512
// volunteer nodes). Every kernel also reports allocations per operation
// via this binary's counting operator new — the engine step and
// knowledge read/write rows are expected to be exactly zero in steady
// state (the allocation-regression tests assert it; this bench records
// it in BENCH_hotpath.json so CI archives the trend).
//
// Grid "seeds" are repeat indices (best-of over repeats damps scheduler
// noise); ns/op and allocs/op are wall-clock/thread-local derived and
// not bitwise deterministic. `--json BENCH_hotpath.json` publishes the
// numbers; steps/sec for a substrate row is 1e9 / ns_per_op.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "cloud/cluster.hpp"
#include "core/knowledge.hpp"
#include "cpn/network.hpp"
#include "exp/harness.hpp"
#include "multicore/platform.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"
#include "svc/network.hpp"

// -- Thread-local allocation counter ----------------------------------------
// Each harness worker thread counts only its own allocations, so kernels
// stay independent even under --jobs > 1. Deletes are not counted: the
// metric is "new allocations per op", the regression-relevant quantity.
namespace {
thread_local std::uint64_t t_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++t_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace sa;

/// Keeps `v` observable so the optimiser cannot delete the benchmark body.
template <class T>
inline void keep(T&& v) {
  asm volatile("" : : "g"(v) : "memory");
}

struct Measurement {
  double ns_per_op = 0.0;
  double allocs_per_op = 0.0;
};

/// Times `op()` over `iters` iterations after a 1/16 warm-up; returns
/// ns/op and this thread's heap allocations per op over the timed loop.
template <class F>
Measurement time_ns(std::size_t iters, F&& op) {
  for (std::size_t i = 0; i < iters / 16 + 1; ++i) op();
  const std::uint64_t allocs_before = t_allocs;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) op();
  const auto stop = std::chrono::steady_clock::now();
  const std::uint64_t allocs = t_allocs - allocs_before;
  return {std::chrono::duration<double, std::nano>(stop - start).count() /
              static_cast<double>(iters),
          static_cast<double>(allocs) / static_cast<double>(iters)};
}

/// 64 cameras on an 8x8 lattice over the unit square, dense enough that
/// fields of view overlap and auctions actually fire.
svc::Network big_fleet() {
  std::vector<svc::CameraSpec> specs;
  specs.reserve(64);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      svc::CameraSpec s;
      s.pos = {0.0625 + static_cast<double>(c) * 0.125,
               0.0625 + static_cast<double>(r) * 0.125};
      s.radius = 0.16;
      s.capacity = 8;
      specs.push_back(s);
    }
  }
  svc::NetworkParams p;
  p.objects = 256;
  p.seed = 17;
  return svc::Network(std::move(specs), p);
}

struct Kernel {
  std::string name;
  std::size_t iters;
  Measurement (*run)(std::size_t iters);
};

const std::vector<Kernel> kKernels = {
    // -- Layer 1: event kernel ---------------------------------------------
    {"engine_oneshot_dispatch", 1 << 18,
     [](std::size_t n) {
       sim::Engine eng;
       double t = 0.0;
       return time_ns(n, [&] {
         t += 1.0;
         eng.at(t, [] {});
         keep(eng.step());
       });
     }},
    {"engine_periodic_fire", 1 << 18,
     [](std::size_t n) {
       sim::Engine eng;
       std::uint64_t fired = 0;
       eng.every(1.0, [&fired] {
         ++fired;
         return true;
       });
       const auto m = time_ns(n, [&] { keep(eng.step()); });
       keep(fired);
       return m;
     }},
    {"engine_heap@1k", 1 << 17,
     [](std::size_t n) {
       // Steady heap of 1024 pending one-shots: every op pops the earliest
       // and pushes a replacement at the back of the window, so the sift
       // depth stays at log2(1024).
       sim::Engine eng;
       double t = 0.0;
       for (std::size_t i = 0; i < 1024; ++i) {
         eng.at(static_cast<double>(i + 1), [] {});
       }
       return time_ns(n, [&] {
         t += 1.0;
         eng.at(t + 1024.0, [] {});
         keep(eng.step());
       });
     }},
    // -- Layer 2: knowledge store ------------------------------------------
    {"kb_put_number", 1 << 18,
     [](std::size_t n) {
       core::KnowledgeBase kb(16);
       double t = 0.0;
       return time_ns(n, [&] {
         t += 1.0;
         kb.put_number("sensor.load", t, t);
       });
     }},
    {"kb_number_read", 1 << 18,
     [](std::size_t n) {
       core::KnowledgeBase kb(16);
       for (int i = 0; i < 64; ++i) {
         kb.put_number("m" + std::to_string(i), i, 0.0);
       }
       int i = 0;
       return time_ns(n, [&] {
         keep(kb.number(i & 1 ? "m17" : "m42"));
         ++i;
       });
     }},
    {"kb_fresh_check", 1 << 18,
     [](std::size_t n) {
       core::KnowledgeBase kb(16);
       kb.put_number("heartbeat", 1.0, 0.0, 1.0);
       double t = 0.0;
       return time_ns(n, [&] {
         keep(kb.fresh("heartbeat", t));
         t += 1e-6;
       });
     }},
    // -- Layer 3: substrate batch steps at large populations ----------------
    {"fleet_step@64cam_256obj", 1 << 12,
     [](std::size_t n) {
       auto net = big_fleet();
       return time_ns(n, [&] {
         net.step();
         keep(net.owner(0));
       });
     }},
    {"cpn_step@16x16", 1 << 12,
     [](std::size_t n) {
       auto topo = cpn::Topology::grid(16, 16, /*shortcuts=*/12, /*seed=*/5);
       cpn::PacketNetwork::Params p;
       p.seed = 41;
       cpn::PacketNetwork net(std::move(topo), p);
       std::size_t i = 0;
       return time_ns(n, [&] {
         net.inject((i * 7) % 256, (i * 13 + 97) % 256, /*legit=*/true);
         net.inject((i * 11 + 31) % 256, (i * 5 + 201) % 256, /*legit=*/true);
         net.step();
         ++i;
       });
     }},
    {"platform_step@32core", 1 << 13,
     [](std::size_t n) {
       multicore::Platform plat(multicore::PlatformConfig::big_little(16, 16),
                                /*seed=*/7);
       // ~90% utilisation: queues actually form, so placement's backlog
       // scans and the ring buffers are exercised, not just the arrivals.
       plat.set_workload(/*rate=*/2000.0, /*mean_work=*/0.02,
                         /*deadline=*/1.0);
       return time_ns(n, [&] {
         plat.step();
         keep(plat.now());
       });
     }},
    {"cloud_epoch@512node", 1 << 10,
     [](std::size_t n) {
       cloud::Cluster::Params p;
       p.nodes = 512;
       p.seed = 23;
       cloud::Cluster cluster(p);
       std::vector<std::size_t> order(p.nodes);
       for (std::size_t i = 0; i < p.nodes; ++i) order[i] = i;
       cluster.enrol(order, p.nodes);
       return time_ns(n, [&] {
         const auto e = cluster.run_epoch(4000.0);
         keep(e.served);
       });
     }},
};

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("hotpath", argc, argv);
  std::cout << "Hot-path micro: ns/op and heap allocations/op of the event "
               "kernel, knowledge store and large-population substrate "
               "steps (best of 3 repeats).\n\n";

  exp::Grid g;
  g.name = "hotpath";
  for (const auto& k : kKernels) g.variants.push_back(k.name);
  g.seeds = {1, 2, 3};  // repeat indices, not simulation seeds
  g.task = [](const exp::TaskContext& ctx) -> exp::TaskOutput {
    const auto& k = kKernels[ctx.variant];
    const Measurement m = k.run(k.iters);
    return {{{"ns_per_op", m.ns_per_op},
             {"allocs_per_op", m.allocs_per_op},
             {"iters", static_cast<double>(k.iters)}}};
  };
  const auto res = h.run(std::move(g));

  sim::Table t("T1  hot-path kernel cost",
               {"kernel", "ns/op", "steps/sec", "allocs/op"});
  t.precision(1, 1);
  t.precision(2, 0);
  t.precision(3, 3);
  for (std::size_t v = 0; v < res.variants.size(); ++v) {
    const double ns = res.stats(v, "ns_per_op").min();
    // allocs/op is deterministic per run; take the max across repeats so a
    // single allocating repeat cannot hide behind a clean one.
    const double allocs = res.stats(v, "allocs_per_op").max();
    t.add_row({res.variants[v], ns, ns > 0.0 ? 1e9 / ns : 0.0, allocs});
  }
  t.print(std::cout);
  std::cout << "T2  engine_* and kb_* rows are steady-state zero-allocation "
               "by contract (asserted by the alloc regression tests); "
               "substrate rows bound steps/sec at large populations.\n";
  return h.finish();
}
