file(REMOVE_RECURSE
  "CMakeFiles/sa_core.dir/agent.cpp.o"
  "CMakeFiles/sa_core.dir/agent.cpp.o.d"
  "CMakeFiles/sa_core.dir/attention.cpp.o"
  "CMakeFiles/sa_core.dir/attention.cpp.o.d"
  "CMakeFiles/sa_core.dir/collective.cpp.o"
  "CMakeFiles/sa_core.dir/collective.cpp.o.d"
  "CMakeFiles/sa_core.dir/explain.cpp.o"
  "CMakeFiles/sa_core.dir/explain.cpp.o.d"
  "CMakeFiles/sa_core.dir/goal.cpp.o"
  "CMakeFiles/sa_core.dir/goal.cpp.o.d"
  "CMakeFiles/sa_core.dir/goal_awareness.cpp.o"
  "CMakeFiles/sa_core.dir/goal_awareness.cpp.o.d"
  "CMakeFiles/sa_core.dir/interaction.cpp.o"
  "CMakeFiles/sa_core.dir/interaction.cpp.o.d"
  "CMakeFiles/sa_core.dir/knowledge.cpp.o"
  "CMakeFiles/sa_core.dir/knowledge.cpp.o.d"
  "CMakeFiles/sa_core.dir/meta.cpp.o"
  "CMakeFiles/sa_core.dir/meta.cpp.o.d"
  "CMakeFiles/sa_core.dir/pareto.cpp.o"
  "CMakeFiles/sa_core.dir/pareto.cpp.o.d"
  "CMakeFiles/sa_core.dir/policy.cpp.o"
  "CMakeFiles/sa_core.dir/policy.cpp.o.d"
  "CMakeFiles/sa_core.dir/runtime.cpp.o"
  "CMakeFiles/sa_core.dir/runtime.cpp.o.d"
  "CMakeFiles/sa_core.dir/sharing.cpp.o"
  "CMakeFiles/sa_core.dir/sharing.cpp.o.d"
  "CMakeFiles/sa_core.dir/stimulus.cpp.o"
  "CMakeFiles/sa_core.dir/stimulus.cpp.o.d"
  "CMakeFiles/sa_core.dir/time_awareness.cpp.o"
  "CMakeFiles/sa_core.dir/time_awareness.cpp.o.d"
  "libsa_core.a"
  "libsa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
