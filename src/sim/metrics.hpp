// Self-profiling metrics registry: counters, gauges, timers and histograms
// behind O(1) pre-registered handles, with per-epoch snapshots.
//
// This is where *wall-clock* self-measurement lives (ODA-loop latency,
// handler cost per subject) — deliberately separated from the Tracer,
// whose record is pure sim-time and must stay bitwise reproducible.
// Register metrics once at wiring time (`counter`/`gauge`/`timer`/
// `histogram`, idempotent by name); the hot path (`add`/`set`/`observe`)
// is an index into a flat vector and performs no heap allocation.
// `snapshot(t)` appends one row of all current values, giving a
// time-series exportable as JSONL (exp::write_metrics_jsonl).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hpp"

namespace sa::sim {

class MetricsRegistry {
 public:
  using MetricId = std::uint32_t;

  enum class Kind : std::uint8_t { Counter, Gauge, Timer, Histogram };

  /// Registration — linear scan by name, idempotent: re-registering an
  /// existing name returns its id. Throws std::logic_error if the name is
  /// already registered with a different kind (programmer error).
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  /// Timers fold observed durations (milliseconds by convention) into
  /// RunningStats.
  MetricId timer(std::string_view name);
  MetricId histogram(std::string_view name, double lo, double hi,
                     std::size_t bins);

  /// Hot path — O(1), no allocation.
  void add(MetricId m, double delta = 1.0) { metrics_[m].value += delta; }
  void set(MetricId m, double value) { metrics_[m].value = value; }
  void observe(MetricId m, double value) {
    Metric& metric = metrics_[m];
    metric.value += 1.0;  // observation count
    metric.stats.add(value);
    if (metric.hist) metric.hist->add(value);
  }

  /// Counter: running total. Gauge: last set value. Timer/Histogram:
  /// number of observations.
  [[nodiscard]] double value(MetricId m) const { return metrics_[m].value; }
  [[nodiscard]] const RunningStats& stats(MetricId m) const {
    return metrics_[m].stats;
  }
  [[nodiscard]] const Histogram* hist(MetricId m) const {
    return metrics_[m].hist.get();
  }
  [[nodiscard]] const std::string& name(MetricId m) const {
    return metrics_[m].name;
  }
  [[nodiscard]] Kind kind(MetricId m) const { return metrics_[m].kind; }
  [[nodiscard]] std::size_t size() const noexcept { return metrics_.size(); }
  [[nodiscard]] std::optional<MetricId> find(std::string_view name) const;

  /// One row of the exported time-series: every metric's scalar at time t
  /// (counters/gauges: value; timers/histograms: mean of observations so
  /// far, cumulative).
  struct Snapshot {
    double t = 0.0;
    std::vector<double> values;
  };
  void snapshot(double t);
  [[nodiscard]] const std::vector<Snapshot>& snapshots() const noexcept {
    return snapshots_;
  }
  void clear_snapshots() { snapshots_.clear(); }

 private:
  struct Metric {
    std::string name;
    Kind kind = Kind::Counter;
    double value = 0.0;
    RunningStats stats;
    std::unique_ptr<Histogram> hist;
  };
  MetricId register_metric(std::string_view name, Kind kind);

  std::vector<Metric> metrics_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace sa::sim
