file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_meta.dir/bench_e6_meta.cpp.o"
  "CMakeFiles/bench_e6_meta.dir/bench_e6_meta.cpp.o.d"
  "bench_e6_meta"
  "bench_e6_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
