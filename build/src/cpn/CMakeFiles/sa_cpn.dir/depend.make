# Empty dependencies file for sa_cpn.
# This may be replaced when dependencies are built.
