#include "ckpt/state.hpp"

#include <limits>
#include <utility>

namespace sa::ckpt {
namespace {

/// Engine `order` values fit comfortably in i64; serialize wide so the
/// format never truncates an exotic order.
Status malformed(std::string_view what) {
  return Status::error(Errc::kMalformed, std::string(what));
}

}  // namespace

// -- sim::Engine --------------------------------------------------------------

void save_timeline(const sim::Engine::Timeline& tl, Buffer& out) {
  out.f64(tl.now);
  out.u64(tl.seq);
  out.u64(tl.executed);
  out.u64(tl.events.size());
  for (const sim::Engine::TimelineEvent& ev : tl.events) {
    out.f64(ev.t);
    out.i64(ev.order);
    out.u64(ev.seq);
    out.u64(ev.tag);
    out.boolean(ev.is_periodic);
    if (ev.is_periodic) {
      out.f64(ev.base);
      out.f64(ev.period);
      out.u64(ev.n);
    } else {
      out.str(ev.payload);
    }
  }
}

Status load_timeline(Cursor& in, sim::Engine::Timeline& out) {
  out = sim::Engine::Timeline{};
  std::uint64_t count = 0;
  if (!in.f64(out.now) || !in.u64(out.seq) || !in.u64(out.executed) ||
      !in.u64(count))
    return malformed("timeline header");
  out.events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    sim::Engine::TimelineEvent ev;
    std::int64_t order = 0;
    if (!in.f64(ev.t) || !in.i64(order) || !in.u64(ev.seq) ||
        !in.u64(ev.tag) || !in.boolean(ev.is_periodic))
      return malformed("timeline event");
    ev.order = static_cast<int>(order);
    if (ev.is_periodic) {
      if (!in.f64(ev.base) || !in.f64(ev.period) || !in.u64(ev.n))
        return malformed("timeline periodic re-arm state");
    } else {
      if (!in.str(ev.payload)) return malformed("timeline event payload");
    }
    if (ev.tag == 0)
      return Status::error(Errc::kUntaggedEvent,
                           "timeline carries a tag-0 event");
    out.events.push_back(std::move(ev));
  }
  return {};
}

Status save_engine(const sim::Engine& engine, Buffer& out) {
  sim::Engine::Timeline tl;
  std::string err;
  if (!engine.export_timeline(tl, &err))
    return Status::error(Errc::kUntaggedEvent, err);
  save_timeline(tl, out);
  return {};
}

Status restore_engine(Cursor& in, sim::Engine& engine) {
  sim::Engine::Timeline tl;
  if (Status st = load_timeline(in, tl); !st.ok()) return st;
  std::string err;
  if (!engine.import_timeline(tl, &err)) {
    const Errc code = err.find("no callable registered") != std::string::npos
                          ? Errc::kUnboundTag
                          : Errc::kShapeMismatch;
    return Status::error(code, err);
  }
  return {};
}

// -- sim::Rng -----------------------------------------------------------------

void save_rng(const sim::Rng::State& s, Buffer& out) {
  for (int i = 0; i < 4; ++i) out.u64(s.s[i]);
  out.f64(s.spare);
  out.boolean(s.has_spare);
}

Status load_rng(Cursor& in, sim::Rng::State& out) {
  out = sim::Rng::State{};
  for (int i = 0; i < 4; ++i)
    if (!in.u64(out.s[i])) return malformed("rng words");
  if (!in.f64(out.spare) || !in.boolean(out.has_spare))
    return malformed("rng spare");
  return {};
}

// -- core::Value / KnowledgeItem / KnowledgeBase ------------------------------

void save_value(const core::Value& v, Buffer& out) {
  out.u8(static_cast<std::uint8_t>(v.index()));
  if (const auto* b = std::get_if<bool>(&v)) {
    out.boolean(*b);
  } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
    out.i64(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    out.f64(*d);
  } else if (const auto* s = std::get_if<std::string>(&v)) {
    out.str(*s);
  } else {
    const auto& vec = std::get<std::vector<double>>(v);
    out.u32(static_cast<std::uint32_t>(vec.size()));
    for (double d : vec) out.f64(d);
  }
}

Status load_value(Cursor& in, core::Value& out) {
  std::uint8_t idx = 0;
  if (!in.u8(idx)) return malformed("value tag");
  switch (idx) {
    case 0: {
      bool b = false;
      if (!in.boolean(b)) return malformed("bool value");
      out = b;
      return {};
    }
    case 1: {
      std::int64_t i = 0;
      if (!in.i64(i)) return malformed("int value");
      out = i;
      return {};
    }
    case 2: {
      double d = 0.0;
      if (!in.f64(d)) return malformed("double value");
      out = d;
      return {};
    }
    case 3: {
      std::string s;
      if (!in.str(s)) return malformed("string value");
      out = std::move(s);
      return {};
    }
    case 4: {
      std::uint32_t n = 0;
      if (!in.u32(n)) return malformed("vector value length");
      std::vector<double> vec;
      vec.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        double d = 0.0;
        if (!in.f64(d)) return malformed("vector value element");
        vec.push_back(d);
      }
      out = std::move(vec);
      return {};
    }
    default:
      return malformed("unknown value variant " + std::to_string(idx));
  }
}

void save_item(const core::KnowledgeItem& item, Buffer& out) {
  save_value(item.value, out);
  out.f64(item.time);
  out.f64(item.confidence);
  out.u8(static_cast<std::uint8_t>(item.scope));
  out.str(item.source);
  out.f64(item.ttl);
}

Status load_item(Cursor& in, core::KnowledgeItem& out) {
  out = core::KnowledgeItem{};
  if (Status st = load_value(in, out.value); !st.ok()) return st;
  std::uint8_t scope = 0;
  if (!in.f64(out.time) || !in.f64(out.confidence) || !in.u8(scope) ||
      !in.str(out.source) || !in.f64(out.ttl))
    return malformed("knowledge item");
  if (scope > static_cast<std::uint8_t>(core::Scope::Public))
    return malformed("knowledge item scope " + std::to_string(scope));
  out.scope = static_cast<core::Scope>(scope);
  return {};
}

void save_knowledge(const core::KnowledgeBase& kb, Buffer& out) {
  out.u64(kb.history_limit());
  out.f64(kb.default_ttl());
  const std::vector<std::string> keys = kb.keys();  // ascending — canonical
  out.u64(keys.size());
  for (const std::string& key : keys) {
    out.str(key);
    const auto view = kb.history(key);
    out.u64(view.size());
    for (const core::KnowledgeItem& item : view) save_item(item, out);
  }
}

Status load_knowledge(Cursor& in, core::KnowledgeBase& kb) {
  std::uint64_t limit = 0;
  double default_ttl = 0.0;
  std::uint64_t nkeys = 0;
  if (!in.u64(limit) || !in.f64(default_ttl) || !in.u64(nkeys))
    return malformed("knowledge header");
  if (limit != kb.history_limit())
    return Status::error(
        Errc::kShapeMismatch,
        "knowledge history_limit " + std::to_string(kb.history_limit()) +
            " != checkpointed " + std::to_string(limit));
  kb.set_default_ttl(default_ttl);
  std::string key;
  for (std::uint64_t k = 0; k < nkeys; ++k) {
    std::uint64_t nitems = 0;
    if (!in.str(key) || !in.u64(nitems)) return malformed("knowledge key");
    std::vector<core::KnowledgeItem> items;
    items.reserve(static_cast<std::size_t>(nitems));
    for (std::uint64_t i = 0; i < nitems; ++i) {
      core::KnowledgeItem item;
      if (Status st = load_item(in, item); !st.ok()) return st;
      items.push_back(std::move(item));
    }
    kb.restore_key(key, std::move(items));
  }
  return {};
}

// -- fault::Injector ----------------------------------------------------------

namespace {

void save_record(const fault::Injector::Record& rec, Buffer& out) {
  out.f64(rec.t);
  out.u8(static_cast<std::uint8_t>(rec.kind));
  out.str(rec.surface);
  out.u64(rec.unit);
  out.f64(rec.magnitude);
  out.f64(rec.until);
  out.boolean(rec.begin);
}

Status load_record(Cursor& in, fault::Injector::Record& out) {
  out = fault::Injector::Record{};
  std::uint8_t kind = 0;
  std::uint64_t unit = 0;
  if (!in.f64(out.t) || !in.u8(kind) || !in.str(out.surface) ||
      !in.u64(unit) || !in.f64(out.magnitude) || !in.f64(out.until) ||
      !in.boolean(out.begin))
    return malformed("fault record");
  if (kind >= fault::kFaultKinds)
    return malformed("fault record kind " + std::to_string(kind));
  out.kind = static_cast<fault::FaultKind>(kind);
  out.unit = static_cast<std::size_t>(unit);
  return {};
}

}  // namespace

void save_injector(const fault::Injector& inj, Buffer& out) {
  const fault::Injector::State st = inj.export_state();
  out.u64(st.injected);
  out.u64(st.restored);
  out.u64(st.active);
  out.u64(st.unmatched);
  out.f64(st.last_onset);
  out.u64(st.log.size());
  for (const fault::Injector::Record& rec : st.log) save_record(rec, out);
  out.u64(st.streams.size());
  for (const fault::Injector::StreamState& s : st.streams) {
    out.u64(s.process);
    out.u64(s.surface);
    save_rng(s.rng, out);
    out.u64(s.burst_left);
  }
}

Status restore_injector(Cursor& in, fault::Injector& inj) {
  fault::Injector::State st;
  std::uint64_t nlog = 0, nstreams = 0;
  if (!in.u64(st.injected) || !in.u64(st.restored) || !in.u64(st.active) ||
      !in.u64(st.unmatched) || !in.f64(st.last_onset) || !in.u64(nlog))
    return malformed("injector header");
  st.log.reserve(static_cast<std::size_t>(nlog));
  for (std::uint64_t i = 0; i < nlog; ++i) {
    fault::Injector::Record rec;
    if (Status s = load_record(in, rec); !s.ok()) return s;
    st.log.push_back(std::move(rec));
  }
  if (!in.u64(nstreams)) return malformed("injector stream count");
  st.streams.reserve(static_cast<std::size_t>(nstreams));
  for (std::uint64_t i = 0; i < nstreams; ++i) {
    fault::Injector::StreamState s;
    std::uint64_t process = 0, surface = 0, burst = 0;
    if (!in.u64(process) || !in.u64(surface)) return malformed("injector stream");
    if (Status rs = load_rng(in, s.rng); !rs.ok()) return rs;
    if (!in.u64(burst)) return malformed("injector stream burst");
    s.process = static_cast<std::size_t>(process);
    s.surface = static_cast<std::size_t>(surface);
    s.burst_left = static_cast<std::size_t>(burst);
    st.streams.push_back(s);
  }
  std::string err;
  if (!inj.import_state(st, &err))
    return Status::error(Errc::kShapeMismatch, err);
  return {};
}

// -- core::DegradationPolicy --------------------------------------------------

void save_ladder(const core::DegradationPolicy& p, Buffer& out) {
  const core::DegradationPolicy::State st = p.export_state();
  out.u8(static_cast<std::uint8_t>(st.mode));
  out.u64(st.breach_streak);
  out.u64(st.clean_streak);
  out.u64(st.degradations);
  out.u64(st.recoveries);
  out.f64(st.dwell);
  out.f64(st.last_t);
  out.boolean(st.seen_update);
  out.str(st.last_trigger);
}

Status restore_ladder(Cursor& in, core::DegradationPolicy& p) {
  core::DegradationPolicy::State st;
  std::uint8_t mode = 0;
  if (!in.u8(mode) || !in.u64(st.breach_streak) || !in.u64(st.clean_streak) ||
      !in.u64(st.degradations) || !in.u64(st.recoveries) || !in.f64(st.dwell) ||
      !in.f64(st.last_t) || !in.boolean(st.seen_update) ||
      !in.str(st.last_trigger))
    return malformed("ladder state");
  if (mode > static_cast<std::uint8_t>(core::DegradationPolicy::Mode::Reactive))
    return malformed("ladder mode " + std::to_string(mode));
  st.mode = static_cast<core::DegradationPolicy::Mode>(mode);
  p.import_state(st);
  return {};
}

// -- core::AgentRuntime -------------------------------------------------------

void save_runtime(const core::AgentRuntime& rt, Buffer& out) {
  const core::AgentRuntime::State st = rt.export_state();
  out.u64(st.steps);
  out.u64(st.substrate_ticks);
  out.u64(st.exchanged);
  out.u64(st.exchange_drops);
  out.u64(st.exchange_retries);
  out.u64(st.exchange_timeouts);
  out.boolean(st.exchange_blocked);
}

Status restore_runtime(Cursor& in, core::AgentRuntime& rt) {
  core::AgentRuntime::State st;
  if (!in.u64(st.steps) || !in.u64(st.substrate_ticks) ||
      !in.u64(st.exchanged) || !in.u64(st.exchange_drops) ||
      !in.u64(st.exchange_retries) || !in.u64(st.exchange_timeouts) ||
      !in.boolean(st.exchange_blocked))
    return malformed("runtime counters");
  rt.import_state(st);
  return {};
}

// -- WorldCheckpoint ----------------------------------------------------------

std::string WorldCheckpoint::section_name(const std::string& component) {
  return "c." + component;
}

void WorldCheckpoint::add(std::string name,
                          std::function<Status(Buffer&)> save,
                          std::function<Status(Cursor&)> restore) {
  components_.push_back(
      Component{std::move(name), std::move(save), std::move(restore)});
}

void WorldCheckpoint::add(Checkpointable& c) {
  add(c.ckpt_name(), [&c](Buffer& out) { return c.ckpt_save(out); },
      [&c](Cursor& in) { return c.ckpt_restore(in); });
}

Status WorldCheckpoint::save(const Meta& meta, std::string& image) const {
  Writer w;
  Buffer m;
  m.f64(meta.t);
  m.u64(meta.seed);
  m.str(meta.recipe);
  m.str(meta.fault_plan);
  w.section("meta", m);
  for (const Component& c : components_) {
    Buffer b;
    if (Status st = c.save(b); !st.ok()) {
      st.detail = "component '" + c.name + "': " + st.detail;
      return st;
    }
    w.section(section_name(c.name), b);
  }
  image = w.finish();
  return {};
}

Status WorldCheckpoint::save_file(const Meta& meta,
                                  const std::string& path) const {
  std::string image;
  if (Status st = save(meta, image); !st.ok()) return st;
  return write_file_atomic(path, image);
}

Status WorldCheckpoint::read_meta(const Reader& r, Meta& out) {
  out = Meta{};
  Cursor c;
  if (Status st = r.open("meta", c); !st.ok()) return st;
  std::uint64_t seed = 0;
  if (!c.f64(out.t) || !c.u64(seed) || !c.str(out.recipe) ||
      !c.str(out.fault_plan))
    return malformed("meta section");
  out.seed = seed;
  return c.finish("meta section");
}

Status WorldCheckpoint::restore(const Reader& r, const Meta* expect) const {
  if (expect != nullptr) {
    Meta have;
    if (Status st = read_meta(r, have); !st.ok()) return st;
    if (have.recipe != expect->recipe)
      return Status::error(Errc::kShapeMismatch,
                           "checkpoint recipe '" + have.recipe +
                               "' != run recipe '" + expect->recipe + "'");
    if (have.seed != expect->seed)
      return Status::error(Errc::kShapeMismatch,
                           "checkpoint seed " + std::to_string(have.seed) +
                               " != run seed " +
                               std::to_string(expect->seed));
    if (have.fault_plan != expect->fault_plan)
      return Status::error(Errc::kShapeMismatch,
                           "checkpoint fault plan '" + have.fault_plan +
                               "' != run plan '" + expect->fault_plan + "'");
  }
  for (const Component& c : components_) {
    Cursor cur;
    if (Status st = r.open(section_name(c.name), cur); !st.ok()) return st;
    if (Status st = c.restore(cur); !st.ok()) {
      st.detail = "component '" + c.name + "': " + st.detail;
      return st;
    }
    if (Status st = cur.finish("section '" + c.name + "'"); !st.ok())
      return st;
  }
  return {};
}

Status WorldCheckpoint::verify(const Reader& r) const {
  for (const Component& c : components_) {
    const std::string section = section_name(c.name);
    if (!r.has(section))
      return Status::error(Errc::kMissingSection, section);
    Buffer b;
    if (Status st = c.save(b); !st.ok()) {
      st.detail = "component '" + c.name + "': " + st.detail;
      return st;
    }
    if (b.data() != r.payload(section))
      return Status::error(Errc::kStateDivergence,
                           "component '" + c.name +
                               "' does not byte-match the checkpoint");
  }
  return {};
}

}  // namespace sa::ckpt
