// Heterogeneous multicore platform simulator.
//
// Substrate for the paper's multi-/many-core motivation (Section II,
// Platzner [8]; Agne et al. [47]): a big.LITTLE-style chip whose run-time
// manager must trade throughput and latency against power under a workload
// whose characteristics change during operation. The platform is
// time-stepped (fixed tick): tasks arrive stochastically, a mapping policy
// places them on per-core queues, cores drain work at ipc × frequency, and
// power integrates static leakage plus a cubic dynamic term — the standard
// first-order DVFS model.
//
// The self-aware run-time manager (experiments E1/E5) treats
// (frequency level × mapping) as its action space, sensing the harvested
// epoch statistics.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"

namespace sa::multicore {

/// Placement policy applied to each arriving task.
enum class Mapping {
  Balanced,    ///< least expected finish time across all cores
  PackBig,     ///< prefer big cores (performance first)
  PackLittle,  ///< prefer LITTLE cores (efficiency first)
};

[[nodiscard]] constexpr const char* mapping_name(Mapping m) noexcept {
  switch (m) {
    case Mapping::Balanced: return "balanced";
    case Mapping::PackBig: return "pack-big";
    case Mapping::PackLittle: return "pack-little";
  }
  return "?";
}

/// Static description of one core.
struct CoreSpec {
  std::string name;
  bool big = false;      ///< core class (big vs LITTLE)
  double ipc = 1.0;      ///< giga-ops per second at 1 GHz
  double static_w = 0.3; ///< leakage at 1 GHz, W (scales with f^2)
  double dyn_coeff = 1.0;///< dynamic power = coeff · f³ · utilisation, W@GHz³
};

/// Platform-wide configuration.
struct PlatformConfig {
  std::vector<CoreSpec> cores;
  std::vector<double> freqs{0.6, 1.0, 1.4, 1.8};  ///< available GHz levels
  double tick = 0.005;                             ///< simulation step, s

  // First-order thermal model (per core): dT/dt = heat·power − cool·(T−amb).
  // When a core crosses `throttle_c` the hardware clamps it to the minimum
  // frequency until it cools below `recover_c` — invisible to a manager
  // that does not watch temperature.
  bool thermal = false;       ///< enable the thermal model
  double ambient_c = 40.0;
  double heat_per_w = 12.0;   ///< °C/s gained per watt of core power
  double cool_rate = 0.5;     ///< 1/s towards ambient
  double throttle_c = 85.0;
  double recover_c = 60.0;    ///< deep hysteresis: throttling is punishing

  /// Canonical big.LITTLE chip used throughout tests and benches.
  static PlatformConfig big_little(std::size_t n_big, std::size_t n_little);
};

/// One unit of work.
struct Task {
  double remaining = 0.0;  ///< giga-ops left
  double total = 0.0;      ///< giga-ops at submission
  double arrived = 0.0;    ///< arrival time, s
  double deadline = 0.0;   ///< relative deadline, s (0 = none)
};

/// Contiguous FIFO ring of tasks — the per-core run queue. Replaces
/// std::deque's chunked nodes with one flat buffer: push/pop are
/// branch-plus-store, and the backlog sweeps in place() walk cache-line
/// sequential Task structs in exact FIFO order (same front-to-back
/// summation order as the deque it replaced, so accumulated floats are
/// bit-identical).
class TaskRing {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Mutable access dirties the backlog cache: step() shrinks
  /// front().remaining through this reference.
  [[nodiscard]] Task& front() {
    dirty_ = true;
    return buf_[head_];
  }
  [[nodiscard]] const Task& front() const { return buf_[head_]; }
  /// i-th task in FIFO order (0 = front).
  [[nodiscard]] const Task& operator[](std::size_t i) const {
    return buf_[wrap(head_ + i)];
  }
  void push_back(const Task& t) {
    if (count_ == buf_.size()) grow();
    buf_[tail_] = t;
    tail_ = wrap(tail_ + 1);
    ++count_;
    dirty_ = true;
  }
  void pop_front() {
    head_ = wrap(head_ + 1);
    --count_;
    dirty_ = true;
  }
  /// Drains every task, FIFO order, into `out` (used by core fail-over).
  void drain_into(std::vector<Task>& out) {
    for (std::size_t i = 0; i < count_; ++i) out.push_back((*this)[i]);
    head_ = tail_ = count_ = 0;
    dirty_ = true;
  }
  /// Sum of remaining work, accumulated in FIFO order (the same float
  /// sequence a front-to-back walk produces) but over the ring's two
  /// contiguous spans, so the scan pays no per-element wrap. The result
  /// is memoised until the next mutation: re-summing unchanged contents
  /// runs the identical float-op sequence, so serving the cached double
  /// is bit-exact — place() scans every core per admission, but between
  /// admissions only one queue has changed.
  [[nodiscard]] double backlog() const noexcept {
    if (dirty_) {
      double sum = 0.0;
      const std::size_t first = std::min(count_, buf_.size() - head_);
      for (std::size_t i = 0; i < first; ++i) {
        sum += buf_[head_ + i].remaining;
      }
      for (std::size_t i = 0; i < count_ - first; ++i) {
        sum += buf_[i].remaining;
      }
      backlog_ = sum;
      dirty_ = false;
    }
    return backlog_;
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const noexcept {
    return i >= buf_.size() ? i - buf_.size() : i;
  }
  void grow() {
    std::vector<Task> bigger;
    bigger.reserve(buf_.empty() ? 8 : buf_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) bigger.push_back((*this)[i]);
    bigger.resize(bigger.capacity());
    buf_ = std::move(bigger);
    head_ = 0;
    tail_ = count_;
  }
  std::vector<Task> buf_;
  std::size_t head_ = 0, tail_ = 0, count_ = 0;
  mutable double backlog_ = 0.0;  ///< memoised backlog() (see above)
  mutable bool dirty_ = true;
};

/// Statistics harvested per control epoch.
struct EpochStats {
  double duration = 0.0;       ///< epoch length, s
  std::size_t completed = 0;   ///< tasks finished
  std::size_t arrived = 0;     ///< tasks submitted
  double throughput = 0.0;     ///< completed / duration, tasks/s
  double mean_latency = 0.0;   ///< mean sojourn time of completed tasks, s
  double p95_latency = 0.0;    ///< 95th percentile sojourn, s
  double mean_power = 0.0;     ///< energy / duration, W
  double energy = 0.0;         ///< J over the epoch
  double miss_rate = 0.0;      ///< completed tasks past their deadline
  double mean_queue = 0.0;     ///< time-weighted total queued tasks
  double utilisation = 0.0;    ///< mean busy fraction across cores
  double offered_gops = 0.0;   ///< submitted work per second, giga-ops/s
  double max_temp_c = 0.0;     ///< hottest core temperature seen, °C
  double throttle_frac = 0.0;  ///< fraction of core-time spent throttled
};

/// The simulated chip plus its workload source.
class Platform {
 public:
  Platform(PlatformConfig cfg, std::uint64_t seed);

  // -- Actuation (what a run-time manager can change) -----------------------
  /// Sets one core's DVFS level (index into cfg.freqs).
  void set_freq_level(std::size_t core, std::size_t level);
  /// Sets every core's DVFS level.
  void set_all_freq(std::size_t level);
  void set_mapping(Mapping m) noexcept { mapping_ = m; }

  // -- Fault surfaces (driven by sa::fault, inert otherwise) ----------------
  /// Marks `core` failed: it drains nothing, draws no power and receives no
  /// placements; its queued tasks are re-homed onto surviving cores. A
  /// manager that never watches per-core state only sees throughput drop.
  void fail_core(std::size_t core);
  void restore_core(std::size_t core) { failed_[core] = false; }
  [[nodiscard]] bool core_failed(std::size_t core) const {
    return failed_[core];
  }
  [[nodiscard]] std::size_t cores_failed() const;
  /// Clamps the *effective* DVFS level chip-wide (firmware/power-delivery
  /// cap): speed and power use min(requested, cap), and the manager's
  /// requested levels resume untouched when the cap lifts. SIZE_MAX = none.
  void set_freq_cap(std::size_t max_level) noexcept { freq_cap_ = max_level; }
  [[nodiscard]] std::size_t freq_cap() const noexcept { return freq_cap_; }

  // -- Workload (what the environment changes) ------------------------------
  /// Poisson arrivals at `rate` tasks/s, exponential work with mean
  /// `mean_work` giga-ops, relative deadline `deadline` s (0 disables).
  void set_workload(double rate, double mean_work, double deadline);

  // -- Simulation ------------------------------------------------------------
  void step();                 ///< advance one tick
  void run_for(double secs);   ///< advance ⌈secs/tick⌉ ticks
  [[nodiscard]] double now() const noexcept { return now_; }
  /// Drives step() through `engine` every `period` (<= 0 defaults to the
  /// configured tick) at order 0 = dynamics. Don't combine with a
  /// Manager::bind on the same platform — the manager adapter steps the
  /// platform itself.
  void bind(sim::Engine& engine, double period = 0.0);
  /// Emits one kFailure per thermal-throttle engagement (value = core
  /// temperature, detail = core name). Non-owning; null disables emission.
  void set_telemetry(sim::TelemetryBus* bus);

  // -- Sensing ----------------------------------------------------------------
  /// Stats accumulated since the previous harvest; resets accumulators.
  EpochStats harvest();
  /// Instantaneous total queue depth (tasks waiting or running).
  [[nodiscard]] std::size_t queued() const;
  /// Instantaneous power draw at current frequencies/occupancy, W.
  [[nodiscard]] double instantaneous_power() const;

  [[nodiscard]] std::size_t cores() const noexcept { return specs_.size(); }
  [[nodiscard]] const CoreSpec& spec(std::size_t core) const {
    return specs_[core];
  }
  [[nodiscard]] std::size_t freq_level(std::size_t core) const {
    return level_[core];
  }
  [[nodiscard]] std::size_t freq_levels() const noexcept {
    return cfg_.freqs.size();
  }
  /// Frequency in GHz of a DVFS level.
  [[nodiscard]] double freq_ghz(std::size_t level) const {
    return cfg_.freqs[std::min(level, cfg_.freqs.size() - 1)];
  }
  [[nodiscard]] Mapping mapping() const noexcept { return mapping_; }
  /// Full platform configuration (the "datasheet" a self-model may use).
  [[nodiscard]] const PlatformConfig& config() const noexcept {
    return cfg_;
  }
  /// Current temperature of `core` (ambient when thermal model disabled).
  [[nodiscard]] double temperature(std::size_t core) const {
    return temp_.empty() ? cfg_.ambient_c : temp_[core];
  }
  /// True if `core` is currently thermally throttled.
  [[nodiscard]] bool throttled(std::size_t core) const {
    return !throttled_.empty() && throttled_[core];
  }

 private:
  [[nodiscard]] double speed(std::size_t core) const;  // giga-ops/s
  [[nodiscard]] std::size_t place(const Task& task) const;
  void admit(Task task);

  PlatformConfig cfg_;
  std::vector<CoreSpec> specs_;
  std::vector<std::size_t> level_;
  std::vector<bool> failed_;       ///< fault-injected dead cores
  std::size_t freq_cap_ = static_cast<std::size_t>(-1);
  std::vector<TaskRing> queue_;
  std::vector<Task> orphans_;  ///< fail-over scratch (reused)
  Mapping mapping_ = Mapping::Balanced;
  sim::Rng rng_;
  double now_ = 0.0;

  double rate_ = 0.0, mean_work_ = 1.0, deadline_ = 0.0;

  std::vector<double> temp_;       ///< per-core temperature (thermal only)
  std::vector<bool> throttled_;    ///< hardware clamp active

  sim::TelemetryBus* telemetry_ = nullptr;
  sim::SubjectId subject_ = 0;

  // Epoch accumulators.
  double epoch_start_ = 0.0;
  std::size_t completed_ = 0, arrived_ = 0, missed_ = 0;
  double offered_work_ = 0.0;  ///< giga-ops submitted this epoch
  sim::RunningStats latency_;
  sim::Histogram latency_hist_{0.0, 5.0, 200};
  double energy_ = 0.0;
  sim::TimeWeighted queue_tw_;
  double busy_time_ = 0.0;  ///< core-seconds spent busy this epoch
  double max_temp_epoch_ = 0.0;
  double throttle_time_ = 0.0;  ///< core-seconds spent throttled this epoch
};

}  // namespace sa::multicore
