// Example: a whole smart city generated from one spec string.
//
// gen::ScenarioSpec::city() expands — deterministically, from per-section
// seeded streams — into sixteen street cameras, a 4x6 cognitive packet
// network, a 32-node volunteer-cloud backend and four multicore edge
// appliances, all on ONE discrete-event engine, with a standing fault
// environment pressing on every layer. The substrates are coupled the way
// a real deployment would be: camera epoch reports ride the packet
// network to the backend; lost reports shrink backend demand; backend
// saturation offloads analytics onto the edge nodes; and every 30
// simulated seconds the edge managers and the autoscaler swap public
// knowledge.
//
// Run: ./build/examples/smart_city
//      ./build/examples/smart_city --scenario "cameras;cpn:rows=3,cols=3"
//      ./build/examples/smart_city --scenario "seed=7;multicore;faults:pressure=4"
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "gen/scenario.hpp"
#include "gen/spec.hpp"
#include "sim/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace sa;

  std::string spec_text = gen::ScenarioSpec::city_spec();
  std::uint64_t run_seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      spec_text = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      run_seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--scenario SPEC] [--seed N]\n",
                   argv[0]);
      return 2;
    }
  }

  gen::ScenarioSpec spec;
  try {
    spec = gen::ScenarioSpec::parse(spec_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "smart_city: %s\n", e.what());
    return 2;
  }
  std::printf("scenario: %s\n", spec.to_string().c_str());
  std::printf("seed    : %llu\n\n",
              static_cast<unsigned long long>(run_seed));

  // One telemetry bus sees every observation, decision and failure from
  // all four substrates plus the fault injector.
  sim::TelemetryBus bus;
  sim::RingBufferSink recent(4096);
  bus.add_sink(&recent);

  gen::Scenario::Options opts;
  opts.telemetry = &bus;
  gen::Scenario city(spec, run_seed, opts);

  std::printf("fault plan: %s\n\n",
              city.fault_plan().processes.empty()
                  ? "(none)"
                  : city.fault_plan().to_string().c_str());

  city.run();

  std::printf("after %.0f s: %zu events executed\n", city.engine().now(),
              city.engine().executed());
  for (const auto& [key, value] : city.summary()) {
    std::printf("  %-18s %10.3f\n", key.c_str(), value);
  }
  std::printf("\nfaults  : %zu injected, %zu restored, %zu active\n",
              city.injector().injected(), city.injector().restored(),
              city.injector().active());
  std::printf("exchange: %zu items over %.0f s periods\n",
              city.runtime().items_exchanged(), spec.world.exchange_s);
  std::printf("telemetry: %zu observations, %zu decisions, %zu failures\n",
              bus.count(sim::TelemetryBus::kObservation),
              bus.count(sim::TelemetryBus::kDecision),
              bus.count(sim::TelemetryBus::kFailure));
  return 0;
}
