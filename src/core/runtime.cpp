#include "core/runtime.hpp"

#include <chrono>

#include "core/degrade.hpp"

namespace sa::core {

namespace {
/// Wall-clock duration of `fn` in milliseconds — only measured when a
/// metrics registry asked for it; never feeds back into simulation state.
template <typename Fn>
double timed_ms(Fn&& fn) {
  const auto wall0 = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double, std::milli> wall =
      std::chrono::steady_clock::now() - wall0;
  return wall.count();
}
}  // namespace

AgentRuntime::StreamInstruments AgentRuntime::instrument(
    const std::string& name, const char* span_name) {
  StreamInstruments si;
  if (metrics_ != nullptr) {
    si.count = metrics_->counter("profile." + name + ".count");
    si.ms = metrics_->timer("profile." + name + ".ms");
  }
  if (tracer_ != nullptr) {
    si.subject = tracer_->bus().intern_subject("runtime." + name);
    si.name = tracer_->intern_name(span_name);
  }
  return si;
}

void AgentRuntime::schedule(SelfAwareAgent& agent, double period,
                            std::function<double()> reward_after) {
  ++scheduled_;
  const StreamInstruments si = instrument(agent.id(), "oda");
  engine_.every(
      period,
      [this, &agent, reward_after = std::move(reward_after), si] {
        const double t = engine_.now();
        auto span = tracer_ != nullptr ? tracer_->span(t, si.subject, si.name)
                                       : sim::Tracer::Span{};
        auto body = [&] {
          agent.step(t);
          ++steps_;
          if (reward_after) agent.reward(reward_after());
        };
        if (metrics_ != nullptr) {
          const double ms = timed_ms(body);
          metrics_->add(si.count);
          metrics_->observe(si.ms, ms);
          // The agent reads its own loop latency next step, like any
          // other knowledge item.
          agent.knowledge().put_number("meta.profile.step_ms", ms, t, 1.0,
                                       Scope::Private, "profiler");
        } else {
          body();
        }
        return true;
      },
      kOrderControl);
}

void AgentRuntime::schedule_substrate(std::string name, double period,
                                      std::function<void()> tick) {
  ++scheduled_;
  const StreamInstruments si = instrument(name, "tick");
  substrates_.push_back(std::move(name));
  engine_.every(
      period,
      [this, tick = std::move(tick), si] {
        auto span = tracer_ != nullptr
                        ? tracer_->span(engine_.now(), si.subject, si.name)
                        : sim::Tracer::Span{};
        if (metrics_ != nullptr) {
          const double ms = timed_ms(tick);
          metrics_->add(si.count);
          metrics_->observe(si.ms, ms);
        } else {
          tick();
        }
        ++substrate_ticks_;
        return true;
      },
      kOrderDynamics);
}

void AgentRuntime::schedule_exchange(std::vector<SelfAwareAgent*> agents,
                                     double period,
                                     KnowledgeExchange exchange) {
  ++scheduled_;
  const StreamInstruments si = instrument("exchange", "exchange");
  // Retry parameters are captured per registration so later calls to
  // set_exchange_retry don't rewrite in-flight rounds.
  const std::size_t retries = exchange_retries_;
  const double backoff0 =
      exchange_backoff0_ > 0.0 ? exchange_backoff0_ : period / 8.0;
  engine_.every(
      period,
      [this, agents = std::move(agents), exchange, si, period, retries,
       backoff0] {
        run_exchange(agents, exchange, si, 0, period, retries, backoff0);
        return true;
      },
      kOrderExchange);
}

void AgentRuntime::run_exchange(const std::vector<SelfAwareAgent*>& agents,
                                const KnowledgeExchange& exchange,
                                const StreamInstruments& si,
                                std::size_t attempt, double period,
                                std::size_t retries, double backoff0) {
  if (exchange_blocked_) {
    // Dropped exchange: a fault surface, not an abort. Defer and retry
    // with exponential backoff; give up only after the budget is spent.
    ++exchange_drops_;
    if (attempt < retries) {
      ++exchange_retry_count_;
      const double delay = backoff0 * static_cast<double>(1ull << attempt);
      // `agents` lives inside the periodic round's closure, which the
      // engine copies out and destroys on every firing — a retry event
      // outliving the round it came from must own its copy of the vector.
      engine_.in(
          delay,
          [this, agents, exchange, si, attempt, period, retries, backoff0] {
            run_exchange(agents, exchange, si, attempt + 1, period, retries,
                         backoff0);
          },
          kOrderExchange);
      return;
    }
    ++exchange_timeouts_;
    // The failed round is knowledge too: every pair learns its peer was
    // unreachable, feeding interaction awareness's reliability models.
    for (SelfAwareAgent* from : agents) {
      for (SelfAwareAgent* into : agents) {
        if (from == into) continue;
        into->record_interaction(from->id(), false);
      }
    }
    return;
  }
  auto span = tracer_ != nullptr
                  ? tracer_->span(engine_.now(), si.subject, si.name)
                  : sim::Tracer::Span{};
  auto body = [&] {
    for (SelfAwareAgent* from : agents) {
      for (SelfAwareAgent* into : agents) {
        if (from == into) continue;
        exchanged_ += exchange.import(from->knowledge(), from->id(),
                                      into->knowledge());
      }
    }
  };
  if (metrics_ != nullptr) {
    const double ms = timed_ms(body);
    metrics_->add(si.count);
    metrics_->observe(si.ms, ms);
  } else {
    body();
  }
}

void AgentRuntime::schedule_degradation(DegradationPolicy& policy,
                                        double period) {
  ++scheduled_;
  const StreamInstruments si =
      instrument("degrade." + policy.agent().id(), "degrade");
  engine_.every(
      period,
      [this, &policy, si] {
        const double t = engine_.now();
        auto span = tracer_ != nullptr ? tracer_->span(t, si.subject, si.name)
                                       : sim::Tracer::Span{};
        auto body = [&] { policy.update(t, span.id()); };
        if (metrics_ != nullptr) {
          const double ms = timed_ms(body);
          metrics_->add(si.count);
          metrics_->observe(si.ms, ms);
        } else {
          body();
        }
        return true;
      },
      kOrderControl);
}

}  // namespace sa::core
