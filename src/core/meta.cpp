#include "core/meta.hpp"

namespace sa::core {

void MetaSelfAwareness::watch(AwarenessProcess& proc) {
  watched_.push_back(&proc);
}

void MetaSelfAwareness::on_drift(std::string name, Adaptation a) {
  drift_hooks_.emplace_back(std::move(name), std::move(a));
}

void MetaSelfAwareness::on_quality_collapse(std::string proc_name,
                                            Adaptation a) {
  collapse_hooks_.emplace(std::move(proc_name), std::move(a));
}

void MetaSelfAwareness::update(double t, const Observation& obs,
                               KnowledgeBase& kb) {
  (void)obs;
  ++updates_;

  // 1. Introspect the watched processes' self-assessed quality.
  for (AwarenessProcess* proc : watched_) {
    auto [it, inserted] =
        qualities_.try_emplace(proc->name(), p_.quality_alpha);
    it->second.add(proc->quality());
    kb.put_number("meta." + proc->name() + ".quality", it->second.value(), t,
                  1.0, Scope::Private, name());
    if (!inserted && updates_ > p_.grace_updates &&
        it->second.value() < p_.quality_floor) {
      const auto [lo, hi] = collapse_hooks_.equal_range(proc->name());
      if (lo != hi) {
        for (auto h = lo; h != hi; ++h) {
          h->second();
          ++fired_;
        }
      } else {
        proc->reconfigure();
        ++fired_;
      }
      it->second.reset();  // give the reconfigured process a fresh start
      kb.put_number("meta." + proc->name() + ".reconfigured", 1.0, t, 1.0,
                    Scope::Private, name());
    }
  }

  // 2. Watch the utility stream for drift — evidence that the world (or the
  //    goals) changed under the current models. The smoothed trend is
  //    preferred over raw utility: per-step utility can be near-binary
  //    (e.g. Bernoulli rewards), which swamps a cumulative-sum detector.
  //    After an adaptation the detector rests for a grace period so that
  //    the recovery ramp is not itself flagged as drift.
  if (cooldown_left_ > 0) --cooldown_left_;
  const std::string utility_key = kb.contains("goal.utility.trend")
                                      ? "goal.utility.trend"
                                      : "goal.utility";
  if (kb.contains(utility_key) && updates_ > p_.grace_updates &&
      cooldown_left_ == 0) {
    if (drift_.add(kb.number(utility_key))) {
      cooldown_left_ = p_.grace_updates;
      ++drifts_;
      for (auto& [hook_name, hook] : drift_hooks_) {
        (void)hook_name;
        hook();
        ++fired_;
      }
      // Stale awareness models are part of the problem: refresh them.
      for (AwarenessProcess* proc : watched_) proc->reconfigure();
      kb.put_number("meta.drift.detected", 1.0, t, 1.0, Scope::Private,
                    name());
    }
  }

  kb.put_number("meta.drift.count", static_cast<double>(drifts_), t, 1.0,
                Scope::Private, name());
  kb.put_number("meta.adaptations", static_cast<double>(fired_), t, 1.0,
                Scope::Private, name());
}

double MetaSelfAwareness::process_quality(const std::string& proc) const {
  const auto it = qualities_.find(proc);
  return it == qualities_.end() ? 0.0 : it->second.value();
}

double MetaSelfAwareness::quality() const {
  if (qualities_.empty()) return updates_ > 0 ? 1.0 : 0.0;
  double acc = 0.0;
  for (const auto& [proc, q] : qualities_) {
    (void)proc;
    acc += q.value();
  }
  return acc / static_cast<double>(qualities_.size());
}

}  // namespace sa::core
