// Run-time managers for the multicore platform.
//
// Three variants realise the comparison at the heart of experiments E1/E5:
//
//   Static    — the design-time baseline: one configuration chosen up front
//               and never revisited (the classic approach the paper argues
//               is no longer sufficient, Section I);
//   Reactive  — threshold rules over current readings only; adaptive but
//               model-free, i.e. stimulus-awareness without history, goals
//               as explicit objects, or meta-reasoning;
//   SelfAware — a full SelfAwareAgent whose action space is the cross
//               product of DVFS level and mapping policy, learning action
//               values against an explicit multi-objective GoalModel, with
//               drift-triggered resets from the meta level.
//
// All variants sense the same harvested epoch statistics and actuate the
// same knobs, so any performance difference is attributable to the
// awareness machinery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "multicore/platform.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"

namespace sa::multicore {

/// One selectable platform configuration.
struct ManagerAction {
  std::size_t freq_level = 0;
  Mapping mapping = Mapping::Balanced;
  std::string name;
};

/// Default action space: {min, mid, max frequency} × all mappings.
[[nodiscard]] std::vector<ManagerAction> default_actions(
    const Platform& platform);

class Manager {
 public:
  enum class Variant { Static, Reactive, SelfAware };

  struct Params {
    Variant variant = Variant::SelfAware;
    core::LevelSet levels = core::LevelSet::full();  ///< SelfAware only
    double epoch_s = 0.5;          ///< control period
    double power_cap_w = 18.0;     ///< hard constraint bound
    double target_latency_s = 0.4; ///< latency goal scale
    double throughput_scale = 45.0;///< tasks/s mapped to utility 1.0
    std::size_t static_action = 3; ///< Static's fixed choice: f-mid/balanced
    std::uint64_t seed = 7;
    /// Optional telemetry bus: wired into the agent (and the platform via
    /// the constructor). Non-owning; must outlive the manager.
    sim::TelemetryBus* telemetry = nullptr;
    /// Optional tracer: the agent emits ODA spans + flow chains; the
    /// manager emits one epoch-length span per control epoch under
    /// subject "multicore.manager". Non-owning; must outlive the manager.
    sim::Tracer* tracer = nullptr;
  };

  Manager(Platform& platform, Params params);

  /// Advances the platform one epoch, harvests stats, runs one control
  /// decision, applies it, and feeds reward back. Returns epoch utility.
  double run_epoch();

  /// Event-driven equivalent of calling run_epoch() in a loop: schedules
  /// one control epoch every `period` (order 1 = control; <= 0 defaults to
  /// epoch_s). Each firing steps the platform for the whole period itself,
  /// so do not also bind() the platform. `on_epoch`, if set, receives each
  /// epoch's utility. The trajectory is identical to the synchronous loop.
  void bind(sim::Engine& engine, double period = 0.0,
            std::function<void(double)> on_epoch = {});

  [[nodiscard]] const EpochStats& last_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] core::SelfAwareAgent& agent() noexcept { return *agent_; }
  [[nodiscard]] const std::vector<ManagerAction>& actions() const noexcept {
    return actions_;
  }
  [[nodiscard]] static const char* variant_name(Variant v) noexcept;

  // Whole-run aggregates (across every epoch so far).
  [[nodiscard]] const sim::RunningStats& utility() const noexcept {
    return utility_;
  }
  [[nodiscard]] const sim::RunningStats& power() const noexcept {
    return power_;
  }
  [[nodiscard]] const sim::RunningStats& latency() const noexcept {
    return latency_;
  }
  [[nodiscard]] const sim::RunningStats& throughput() const noexcept {
    return throughput_;
  }
  /// Fraction of epochs whose mean power exceeded the cap.
  [[nodiscard]] double cap_violation_rate() const noexcept {
    return epochs_ ? static_cast<double>(cap_violations_) /
                         static_cast<double>(epochs_)
                   : 0.0;
  }

 private:
  void build_agent();
  /// run_epoch() generalised to an arbitrary epoch length (bind() uses the
  /// scheduling period so engine time and platform time stay aligned).
  double run_epoch_for(double secs);
  void apply(const ManagerAction& a);
  /// Predicted epoch metrics if configuration `a` ran against the
  /// currently sensed workload (the agent's self-model).
  [[nodiscard]] core::MetricMap predict(const ManagerAction& a,
                                        const core::KnowledgeBase& kb) const;

  Platform& platform_;
  Params p_;
  std::vector<ManagerAction> actions_;
  std::unique_ptr<core::SelfAwareAgent> agent_;
  EpochStats stats_;

  sim::RunningStats utility_, power_, latency_, throughput_;
  std::size_t epochs_ = 0, cap_violations_ = 0;
  sim::SubjectId trace_subject_ = 0;  ///< "multicore.manager" when tracing
  sim::NameId n_epoch_ = 0, k_utility_ = 0, k_power_ = 0;
};

}  // namespace sa::multicore
