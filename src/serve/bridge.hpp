// SimBridge: the concurrency seam between one deterministic simulation
// thread and the embedded HTTP server's worker threads.
//
// Reads and writes cross the seam by different mechanisms, chosen so the
// sim thread never waits on a server thread:
//
//   reads   The sim thread *publishes* immutable snapshots at step
//           boundaries (SnapshotCell swaps of a shared_ptr): the metrics
//           registry's LiveSnapshot, a BusSnapshot of telemetry category
//           counters, a fully rendered /status JSON document, and the
//           bus's interned name tables for SSE rendering. Server threads
//           read whichever snapshot is current, lock-free.
//
//   events  A FanoutSink registered on the TelemetryBus copies events into
//           bounded per-subscriber queues with try_lock + drop-counter
//           semantics; the /events SSE handler drains its own queue.
//
//   writes  POST /control enqueues commands into a mailbox; a periodic
//           engine event drains it (try_lock — a contended drain just
//           retries next period) and applies commands *between* events, so
//           control lands at step boundaries and the trajectory downstream
//           of any command is again deterministic. Pause blocks the sim
//           thread on a condition variable inside that event; resume and
//           shutdown release it. Shutdown is a plain atomic flag (it must
//           be observable with no engine running, e.g. during the
//           harness's --serve-linger wait).
//
// Determinism: attaching the bridge schedules extra engine events, but
// they draw no randomness and mutate nothing the simulation reads, and
// the engine's (time, order, seq) tie-breaking keeps the relative order
// of pre-existing events unchanged — tests/integration/
// serve_determinism_test.cpp asserts byte-identical trajectories with a
// busy scraper attached.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/journal.hpp"
#include "core/agent.hpp"
#include "core/degrade.hpp"
#include "fault/fault.hpp"
#include "serve/prometheus.hpp"
#include "serve/server.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/snapshot.hpp"
#include "sim/telemetry.hpp"

namespace sa::serve {

class SimBridge {
 public:
  struct Options {
    /// Sim-time period of the publish + mailbox-drain event.
    double publish_period = 0.1;
    /// Engine order of that event: far above exchange (2) so it runs after
    /// everything else scheduled at the same instant.
    int event_order = 1000;
    /// Newest explanations included in /status.
    std::size_t status_explanations = 8;
    /// Newest injector records included in /status.
    std::size_t status_faults = 16;
    /// Per-SSE-subscriber queue capacity (drop-with-counter beyond).
    std::size_t sse_queue = 1024;
    /// Newest slow-request ring entries included in /status.
    std::size_t status_slow_requests = 16;
    /// When non-empty, POST /control requires this shared token (form
    /// field `token=` or `Authorization: Bearer …`), compared in constant
    /// time; a mismatch answers 401. Lets a load test run from a second
    /// host without leaving the control plane open alongside it.
    std::string control_token;
  };

  SimBridge() : SimBridge(Options{}) {}
  explicit SimBridge(Options opts);

  // -- Wiring (sim thread, before the run starts) ---------------------------
  void set_metrics(sim::MetricsRegistry* metrics) { metrics_ = metrics; }
  /// Registers the bridge's FanoutSink on `bus` and snapshots its category
  /// counters at every publish.
  void set_telemetry(sim::TelemetryBus* bus);
  /// Adds an agent to /status (name defaults to agent->id()).
  void add_agent(core::SelfAwareAgent* agent);
  /// Adds a degradation ladder to /status.
  void add_degradation(core::DegradationPolicy* policy);
  /// Enables POST /control fault injection and the /status fault section.
  void set_injector(fault::Injector* injector) { injector_ = injector; }
  /// Records every applied state-mutating control command (inject,
  /// histogram) into `journal` with its sim-time stamp at drain time — the
  /// control stream a restored checkpoint replays. Non-owning; null
  /// disables.
  void set_journal(ckpt::ControlJournal* journal) { journal_ = journal; }

  /// Wires a sharded run's per-shard stats (sa::shard): the source runs on
  /// the sim (coordinator) thread at every publish boundary — where the
  /// shard engines are barrier-paused, so reading their counters is
  /// race-free — and returns the per-shard executed-event counts (last
  /// entry = coordinator) plus the cumulative barrier lag. The bridge
  /// publishes the copy for /metrics (`sa_shard_events_total{shard=…}`,
  /// `sa_shard_lag_seconds`) and the /status `shards` block. Null disables.
  using ShardSource = std::function<ShardSnapshot()>;
  void set_shard_source(ShardSource source) {
    shard_source_ = std::move(source);
  }

  /// Enables the token-gated `cmd=checkpoint` control command: the hook
  /// runs on the sim thread at the next mailbox drain (a step boundary,
  /// so the snapshot is consistent) and returns whether the save
  /// succeeded. The bridge then stamps /status's checkpoint block.
  using CheckpointHook = std::function<bool(double t)>;
  void set_checkpoint_hook(CheckpointHook hook) {
    checkpoint_hook_ = std::move(hook);
  }
  /// Stamps /status's `checkpoint.last_t` / `checkpoint.count` — called by
  /// the drain-time hook path and by the harness's periodic supervisor
  /// (any thread; atomics).
  void note_checkpoint(double t) noexcept {
    ckpt_last_t_.store(t, std::memory_order_relaxed);
    ckpt_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Schedules the periodic publish + mailbox-drain event on `engine` and
  /// publishes once immediately. Call after all wiring, before the run.
  /// The engine (and everything wired) must outlive the bridge's server.
  void attach(sim::Engine& engine);

  /// Registers /metrics, /status, /events, /control and /healthz on
  /// `server`. Call before server.start(); the bridge must outlive it.
  void install(Server& server);

  // -- Harness-side observability -------------------------------------------
  /// True once a POST /control shutdown arrived (direct atomic — works
  /// with no engine attached, e.g. during --serve-linger).
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool paused() const noexcept {
    return paused_.load(std::memory_order_relaxed);
  }

  /// One publish from the sim thread right now (also what the periodic
  /// event calls). Exposed for wiring without an engine and for tests.
  void publish_now(double t);

  /// Drains and applies queued control commands (sim thread). Blocks here
  /// while paused. Exposed for tests; the attached event calls it.
  void drain_mailbox(sim::Engine* engine);

 private:
  // Only commands that mutate sim-thread state ride the mailbox. Pause,
  // resume and shutdown are atomics flipped directly by the handler: pause
  // takes effect at the next drain (a step boundary), and resume/shutdown
  // must be able to release a sim thread that is *blocked* in the drain —
  // a mailboxed resume would never be read. The releasing stores happen
  // under pause_mu_ so the notify cannot race the waiter's predicate check.
  struct Command {
    enum class Kind : std::uint8_t { Inject, Histogram, Checkpoint };
    Kind kind = Kind::Inject;
    // Inject:
    fault::FaultKind fault_kind = fault::FaultKind::LinkLoss;
    std::size_t unit = 0;
    double magnitude = 1.0;
    double duration = 0.0;
    // Histogram:
    std::string category;
    double lo = 0.0, hi = 1.0;
    std::size_t bins = 20;
  };

  /// Interned names published for server-side SSE/status rendering.
  struct NameTable {
    std::vector<std::string> categories;
    std::vector<std::string> subjects;
  };

  void post(Command cmd);
  [[nodiscard]] HttpResponse handle_metrics() const;
  [[nodiscard]] HttpResponse handle_status() const;
  [[nodiscard]] HttpResponse handle_control(const HttpRequest& req);
  void handle_events(StreamWriter& writer);
  [[nodiscard]] std::string build_status(double t,
                                         sim::Engine* engine) const;
  [[nodiscard]] ServeStats serve_stats() const;

  Options opts_;

  // Wired collaborators (sim-thread objects; only published copies cross).
  sim::MetricsRegistry* metrics_ = nullptr;
  sim::TelemetryBus* bus_ = nullptr;
  fault::Injector* injector_ = nullptr;
  ckpt::ControlJournal* journal_ = nullptr;
  CheckpointHook checkpoint_hook_;
  ShardSource shard_source_;
  std::vector<core::SelfAwareAgent*> agents_;
  std::vector<core::DegradationPolicy*> ladders_;
  Server* server_ = nullptr;       ///< set by install(); for self-stats
  sim::Engine* engine_ = nullptr;  ///< set by attach(); for /status

  std::unique_ptr<sim::FanoutSink> fanout_;

  // Published snapshots (written by the sim thread, read by workers).
  sim::SnapshotCell<BusSnapshot> bus_snap_;
  sim::SnapshotCell<ShardSnapshot> shard_snap_;
  sim::SnapshotCell<std::string> status_doc_;
  sim::SnapshotCell<NameTable> names_;

  // Control mailbox (server threads post; sim thread try-locks to drain).
  std::mutex mailbox_mu_;
  std::vector<Command> mailbox_;

  // Pause/resume: the sim thread blocks inside drain_mailbox().
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  std::atomic<bool> paused_{false};
  std::atomic<bool> shutdown_{false};

  std::atomic<std::uint64_t> commands_applied_{0};
  std::atomic<double> ckpt_last_t_{-1.0};  ///< -1 before the first save
  std::atomic<std::uint64_t> ckpt_count_{0};
  std::uint64_t publishes_ = 0;  ///< sim thread only
};

}  // namespace sa::serve
