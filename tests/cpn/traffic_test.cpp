#include "cpn/traffic.hpp"

#include <gtest/gtest.h>

namespace sa::cpn {
namespace {

TEST(TrafficGenerator, FlowsAreValidAndSeparated) {
  const auto topo = Topology::grid(4, 6, 0, 1);
  TrafficParams p;
  p.flows = 6;
  TrafficGenerator gen(topo, p);
  ASSERT_EQ(gen.flows().size(), 6u);
  for (const auto& [s, d] : gen.flows()) {
    EXPECT_LT(s, topo.nodes());
    EXPECT_LT(d, topo.nodes());
    EXPECT_NE(s, d);
    EXPECT_GE(topo.distance(s, d), 3.0);
  }
}

TEST(TrafficGenerator, VictimIsCentral) {
  const auto topo = Topology::grid(3, 3, 0, 1);
  TrafficGenerator gen(topo, {});
  EXPECT_EQ(gen.victim(), 4u);  // centre of a 3x3 grid
}

TEST(TrafficGenerator, AttackWindowRespected) {
  TrafficParams p;
  p.attack_start = 100.0;
  p.attack_end = 200.0;
  TrafficGenerator gen(Topology::grid(3, 3, 0, 1), p);
  EXPECT_FALSE(gen.attacking(50.0));
  EXPECT_TRUE(gen.attacking(100.0));
  EXPECT_TRUE(gen.attacking(199.9));
  EXPECT_FALSE(gen.attacking(200.0));
}

TEST(TrafficGenerator, NegativeStartDisablesAttack) {
  TrafficGenerator gen(Topology::grid(3, 3, 0, 1), {});
  EXPECT_FALSE(gen.attacking(0.0));
  EXPECT_FALSE(gen.attacking(1e9));
}

TEST(TrafficGenerator, InjectsLegitimateTraffic) {
  const auto topo = Topology::grid(4, 6, 0, 2);
  PacketNetwork::Params np;
  np.router = PacketNetwork::Router::Static;
  PacketNetwork net(topo, np);
  TrafficParams p;
  p.legit_rate = 3.0;
  TrafficGenerator gen(topo, p);
  for (int t = 0; t < 200; ++t) {
    gen.tick(net);
    net.step();
  }
  net.run(500);  // drain
  const auto s = net.harvest();
  EXPECT_NEAR(static_cast<double>(s.injected), 600.0, 120.0);
  EXPECT_GT(s.delivered, 0u);
}

TEST(TrafficGenerator, AttackAddsLoadWithoutCountingAsLegit) {
  const auto topo = Topology::grid(4, 6, 0, 2);
  PacketNetwork::Params np;
  np.router = PacketNetwork::Router::Static;
  PacketNetwork quiet_net(topo, np), attacked_net(topo, np);

  TrafficParams base;
  base.legit_rate = 1.0;
  base.seed = 5;
  TrafficParams attack = base;
  attack.attack_start = 0.0;
  attack.attack_end = 1e9;
  attack.attack_rate = 20.0;

  TrafficGenerator quiet_gen(topo, base), attack_gen(topo, attack);
  for (int t = 0; t < 300; ++t) {
    quiet_gen.tick(quiet_net);
    attack_gen.tick(attacked_net);
    quiet_net.step();
    attacked_net.step();
  }
  // Attack packets congest the network but are not counted as injected.
  const auto sq = quiet_net.harvest();
  const auto sa_ = attacked_net.harvest();
  EXPECT_NEAR(static_cast<double>(sa_.injected),
              static_cast<double>(sq.injected), 80.0);
  EXPECT_GT(attacked_net.in_flight_total() + sa_.delivered,
            quiet_net.in_flight_total() + sq.delivered);
}

}  // namespace
}  // namespace sa::cpn
