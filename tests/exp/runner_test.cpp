#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/grid.hpp"
#include "exp/harness.hpp"

namespace {

using namespace sa::exp;

Grid toy_grid(std::size_t variants, std::size_t seeds) {
  Grid g;
  g.name = "toy";
  for (std::size_t v = 0; v < variants; ++v) {
    g.variants.push_back("v" + std::to_string(v));
  }
  for (std::size_t s = 0; s < seeds; ++s) {
    g.seeds.push_back(100 + s);
  }
  // A deterministic task whose output depends on every TaskContext field
  // plus a few draws from the cell's private stream.
  g.task = [](const TaskContext& ctx) -> TaskOutput {
    auto rng = ctx.rng();
    double acc = 0.0;
    for (int i = 0; i < 16; ++i) acc += rng.uniform(0.0, 1.0);
    return {{{"acc", acc},
             {"cell", static_cast<double>(ctx.variant * 1000 + ctx.seed)}}};
  };
  return g;
}

TEST(RunnerTest, EveryCellExecutesExactlyOnce) {
  constexpr std::size_t kVariants = 3, kSeeds = 5;
  std::vector<std::atomic<int>> hits(kVariants * kSeeds);
  Grid g = toy_grid(kVariants, kSeeds);
  auto inner = g.task;
  g.task = [&hits, inner, kSeeds](const TaskContext& ctx) {
    hits[ctx.variant * kSeeds + (ctx.seed - 100)].fetch_add(1);
    return inner(ctx);
  };

  const Runner runner(4);
  const auto res = runner.run("runner_test", g);
  ASSERT_EQ(res.tasks.size(), kVariants * kSeeds);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(res.errors(), 0u);
}

TEST(RunnerTest, ResultsAreVariantMajorWhateverTheScheduling) {
  const Runner runner(4);
  const auto res = runner.run("runner_test", toy_grid(4, 3));
  for (std::size_t v = 0; v < 4; ++v) {
    for (std::size_t s = 0; s < 3; ++s) {
      const auto& cell = res.at(v, s);
      EXPECT_EQ(cell.variant, v);
      EXPECT_EQ(cell.seed, 100 + s);
    }
  }
}

TEST(RunnerTest, SerialAndParallelAreBitwiseIdentical) {
  const Grid g = toy_grid(4, 6);
  const auto serial = Runner(1).run("runner_test", g);
  for (const unsigned jobs : {2u, 4u, 8u}) {
    const auto parallel = Runner(jobs).run("runner_test", g);
    ASSERT_EQ(parallel.tasks.size(), serial.tasks.size());
    for (std::size_t i = 0; i < serial.tasks.size(); ++i) {
      EXPECT_EQ(parallel.tasks[i].variant, serial.tasks[i].variant);
      EXPECT_EQ(parallel.tasks[i].seed, serial.tasks[i].seed);
      ASSERT_EQ(parallel.tasks[i].metrics.size(),
                serial.tasks[i].metrics.size());
      for (std::size_t m = 0; m < serial.tasks[i].metrics.size(); ++m) {
        EXPECT_EQ(parallel.tasks[i].metrics[m].first,
                  serial.tasks[i].metrics[m].first);
        // Bitwise: EQ on doubles, not NEAR.
        EXPECT_EQ(parallel.tasks[i].metrics[m].second,
                  serial.tasks[i].metrics[m].second)
            << "cell " << i << " metric " << m << " jobs " << jobs;
      }
    }
    // The timing-free JSON form is the canonical determinism witness.
    EXPECT_EQ(to_json(parallel, false).dump(), to_json(serial, false).dump());
  }
}

TEST(RunnerTest, ExceptionInOneTaskDoesNotLoseTheOthers) {
  Grid g = toy_grid(2, 4);
  auto inner = g.task;
  g.task = [inner](const TaskContext& ctx) -> TaskOutput {
    if (ctx.variant == 1 && ctx.seed == 102) {
      throw std::runtime_error("boom in cell (1, 102)");
    }
    return inner(ctx);
  };

  const auto res = Runner(4).run("runner_test", g);
  EXPECT_EQ(res.errors(), 1u);
  EXPECT_EQ(res.at(1, 2).error, "boom in cell (1, 102)");
  EXPECT_TRUE(res.at(1, 2).metrics.empty());
  // Every other cell completed normally.
  for (std::size_t v = 0; v < 2; ++v) {
    for (std::size_t s = 0; s < 4; ++s) {
      if (v == 1 && s == 2) continue;
      EXPECT_TRUE(res.at(v, s).error.empty());
      EXPECT_FALSE(res.at(v, s).metrics.empty());
    }
  }
  // Aggregation skips the errored cell instead of poisoning the mean.
  EXPECT_EQ(res.stats(1, "acc").count(), 3u);
  EXPECT_EQ(res.stats(0, "acc").count(), 4u);
}

TEST(RunnerTest, NonStdExceptionIsCaughtToo) {
  Grid g = toy_grid(1, 2);
  g.task = [](const TaskContext& ctx) -> TaskOutput {
    if (ctx.seed == 100) throw 42;  // NOLINT(hicpp-exception-baseclass)
    return {{{"m", 1.0}}};
  };
  const auto res = Runner(2).run("runner_test", g);
  EXPECT_EQ(res.errors(), 1u);
  EXPECT_EQ(res.at(0, 0).error, "unknown exception");
  EXPECT_TRUE(res.at(0, 1).error.empty());
}

TEST(RunnerTest, StreamsAreUniquePerCell) {
  // The RNG stream key must differ across variants and seeds (same
  // experiment), and across experiments for the same cell.
  EXPECT_NE(stream_of("e1", "a", 1), stream_of("e1", "a", 2));
  EXPECT_NE(stream_of("e1", "a", 1), stream_of("e1", "b", 1));
  EXPECT_NE(stream_of("e1", "a", 1), stream_of("e2", "a", 1));
}

TEST(RunnerTest, MeanAndSumAndNoteHelpers) {
  Grid g;
  g.name = "helpers";
  g.variants = {"only"};
  g.seeds = {1, 2, 3};
  g.task = [](const TaskContext& ctx) -> TaskOutput {
    TaskOutput out;
    out.metrics = {{"x", static_cast<double>(ctx.seed)}};
    if (ctx.seed == 2) out.note = "from seed 2";
    return out;
  };
  const auto res = Runner(1).run("runner_test", g);
  EXPECT_DOUBLE_EQ(res.mean(0, "x"), 2.0);
  EXPECT_DOUBLE_EQ(res.sum(0, "x"), 6.0);
  EXPECT_EQ(res.note(0), "from seed 2");
}

TEST(HarnessTest, ThrowingCellFailsTheRunAndIsListedInFailedCells) {
  const char* argv[] = {"bench", "--jobs", "1"};
  Harness h("harness_test", 3, argv);
  Grid g;
  g.name = "faulty";
  g.variants = {"ok", "boom"};
  g.seeds = {1, 2};
  g.task = [](const TaskContext& ctx) -> TaskOutput {
    if (ctx.variant == 1 && ctx.seed == 2) {
      throw std::runtime_error("simulated cell failure");
    }
    return {{{"x", 1.0}}};
  };
  (void)h.run(std::move(g));

  std::ostringstream os;
  EXPECT_NE(h.finish(os), 0);  // CI must see the failure in the exit code
  EXPECT_NE(os.str().find("simulated cell failure"), std::string::npos);

  const Json doc = h.document();
  ASSERT_TRUE(doc.contains("failed_cells"));
  ASSERT_TRUE(doc.at("failed_cells").is_array());
  EXPECT_EQ(doc.at("failed_cells").size(), 1u);
  const std::string dumped = doc.at("failed_cells").dump();
  EXPECT_NE(dumped.find("\"faulty\""), std::string::npos);
  EXPECT_NE(dumped.find("\"boom\""), std::string::npos);
  EXPECT_NE(dumped.find("simulated cell failure"), std::string::npos);
}

TEST(HarnessTest, GreenRunsOmitFailedCellsEntirely) {
  // Byte-stability: a passing document must not grow a new key.
  const char* argv[] = {"bench", "--jobs", "1"};
  Harness h("harness_test", 3, argv);
  Grid g;
  g.name = "green";
  g.variants = {"only"};
  g.seeds = {1};
  g.task = [](const TaskContext&) -> TaskOutput { return {{{"x", 1.0}}}; };
  (void)h.run(std::move(g));
  std::ostringstream os;
  EXPECT_EQ(h.finish(os), 0);
  EXPECT_FALSE(h.document().contains("failed_cells"));
}

TEST(RunnerTest, ZeroJobsMeansHardwareConcurrency) {
  const Runner runner(0);
  EXPECT_GE(runner.jobs(), 1u);
}

TEST(RunnerTest, MoreJobsThanCellsIsFine) {
  const auto res = Runner(16).run("runner_test", toy_grid(1, 2));
  EXPECT_EQ(res.tasks.size(), 2u);
  EXPECT_EQ(res.errors(), 0u);
}

}  // namespace
