// Tests for the decision-provenance tracer: span recording and nesting,
// flow links, id monotonicity, args, and the disabled path's semantics
// (allocation contracts live in telemetry_test.cpp, which owns the global
// operator-new counter).
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/trace.hpp"

namespace sa::sim {
namespace {

struct Rig {
  TelemetryBus bus;
  Tracer tracer{bus};
  SubjectId subj = bus.intern_subject("rig");
  NameId op = tracer.intern_name("op");
};

TEST(Tracer, InternNameIsIdempotent) {
  Rig rig;
  const auto a = rig.tracer.intern_name("decide");
  const auto b = rig.tracer.intern_name("decide");
  EXPECT_EQ(a, b);
  EXPECT_EQ(rig.tracer.name(a), "decide");
  EXPECT_EQ(rig.tracer.names(), 2u);  // "op" + "decide"
}

#ifndef SA_TELEMETRY_OFF
TEST(Tracer, IdsAreMonotoneFromOne) {
  Rig rig;
  EXPECT_EQ(rig.tracer.last_id(), 0u);
  EXPECT_EQ(rig.tracer.next_id(), 1u);
  EXPECT_EQ(rig.tracer.next_id(), 2u);
  EXPECT_EQ(rig.tracer.last_id(), 2u);
}

TEST(Tracer, SpanRecordsBeginAndEndInOrder) {
  Rig rig;
  {
    auto span = rig.tracer.span(1.5, rig.subj, rig.op);
    EXPECT_TRUE(static_cast<bool>(span));
    EXPECT_EQ(span.id(), 1u);
    EXPECT_EQ(rig.tracer.depth(), 1u);
  }
  EXPECT_EQ(rig.tracer.depth(), 0u);
  const auto& ev = rig.tracer.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].kind, Tracer::Event::Kind::Begin);
  EXPECT_EQ(ev[1].kind, Tracer::Event::Kind::End);
  EXPECT_DOUBLE_EQ(ev[0].t, 1.5);
  EXPECT_DOUBLE_EQ(ev[1].t, 1.5);  // default end = begin time
  EXPECT_EQ(ev[0].subject, rig.subj);
  EXPECT_EQ(ev[1].subject, rig.subj);
  EXPECT_EQ(ev[0].id, ev[1].id);
  EXPECT_EQ(rig.tracer.spans(), 1u);
}

TEST(Tracer, NestedSpansCloseInnermostFirst) {
  Rig rig;
  const auto inner_name = rig.tracer.intern_name("inner");
  {
    auto outer = rig.tracer.span(0.0, rig.subj, rig.op);
    {
      auto inner = rig.tracer.span(0.0, rig.subj, inner_name);
      EXPECT_EQ(rig.tracer.depth(), 2u);
    }
    EXPECT_EQ(rig.tracer.depth(), 1u);
  }
  const auto& ev = rig.tracer.events();
  ASSERT_EQ(ev.size(), 4u);  // B(outer) B(inner) E(inner) E(outer)
  EXPECT_EQ(ev[1].name, inner_name);
  EXPECT_EQ(ev[2].name, inner_name);
  EXPECT_EQ(ev[3].name, rig.op);
}

TEST(Tracer, EndAtClosesAtLaterTime) {
  Rig rig;
  auto span = rig.tracer.span(2.0, rig.subj, rig.op);
  span.end_at(7.0);
  const auto& ev = rig.tracer.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_DOUBLE_EQ(ev[1].t, 7.0);
  // After end_at the span is inert: destruction must not double-close.
}

TEST(Tracer, ArgsAttachToTheBeginEvent) {
  Rig rig;
  const auto key = rig.tracer.intern_name("reward");
  {
    auto span = rig.tracer.span(0.0, rig.subj, rig.op);
    span.arg(key, 0.75);
  }
  const auto& ev = rig.tracer.events();
  ASSERT_EQ(ev[0].args.size(), 1u);
  EXPECT_EQ(ev[0].args[0].first, key);
  EXPECT_DOUBLE_EQ(ev[0].args[0].second, 0.75);
  EXPECT_TRUE(ev[1].args.empty());
}

TEST(Tracer, FlowPointsRecordPhaseAndId) {
  Rig rig;
  auto span = rig.tracer.span(0.0, rig.subj, rig.op);
  const auto id = rig.tracer.next_id();
  rig.tracer.flow(0.0, FlowPhase::Begin, id, rig.subj, rig.op);
  rig.tracer.flow(1.0, FlowPhase::Step, id, rig.subj, rig.op);
  rig.tracer.flow(2.0, FlowPhase::End, id, rig.subj, rig.op);
  EXPECT_EQ(rig.tracer.flows(), 3u);
  const auto& ev = rig.tracer.events();
  ASSERT_EQ(ev.size(), 4u);  // B + 3 flows (span still open)
  EXPECT_EQ(ev[1].kind, Tracer::Event::Kind::Flow);
  EXPECT_EQ(ev[1].phase, FlowPhase::Begin);
  EXPECT_EQ(ev[2].phase, FlowPhase::Step);
  EXPECT_EQ(ev[3].phase, FlowPhase::End);
  EXPECT_EQ(ev[1].id, id);
}

TEST(Tracer, FlowWithIdZeroIsDropped) {
  Rig rig;
  rig.tracer.flow(0.0, FlowPhase::Begin, 0, rig.subj, rig.op);
  EXPECT_EQ(rig.tracer.flows(), 0u);
  EXPECT_TRUE(rig.tracer.events().empty());
}

TEST(Tracer, MoveTransfersOwnershipOfTheOpenSpan) {
  Rig rig;
  {
    auto a = rig.tracer.span(0.0, rig.subj, rig.op);
    auto b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(rig.tracer.depth(), 1u);
  }
  EXPECT_EQ(rig.tracer.depth(), 0u);
  EXPECT_EQ(rig.tracer.events().size(), 2u);  // closed exactly once
}

TEST(Tracer, ClearResetsRecordButNotInternings) {
  Rig rig;
  { auto span = rig.tracer.span(0.0, rig.subj, rig.op); }
  rig.tracer.clear();
  EXPECT_TRUE(rig.tracer.events().empty());
  EXPECT_EQ(rig.tracer.spans(), 0u);
  EXPECT_EQ(rig.tracer.name(rig.op), "op");
}
#endif  // SA_TELEMETRY_OFF

#ifndef SA_TELEMETRY_OFF
TEST(Tracer, NamespaceFieldOccupiesTheHighBits) {
  TelemetryBus bus;
  Tracer tracer(bus, /*enabled=*/true, /*ns=*/5);
  EXPECT_EQ(tracer.trace_namespace(), 5u);
  const TraceId id = tracer.next_id();
  EXPECT_EQ(trace_namespace_of(id), 5u);
  EXPECT_EQ(trace_counter_of(id), 1u);
  EXPECT_EQ(id, (TraceId{5} << kTraceNamespaceShift) | 1u);
  // Span ids carry the namespace too, and last_id() round-trips it.
  const auto span_id = tracer.span(0.0, 0, tracer.intern_name("op")).id();
  EXPECT_EQ(trace_namespace_of(span_id), 5u);
  EXPECT_EQ(trace_counter_of(span_id), 2u);
  EXPECT_EQ(tracer.last_id(), span_id);
}

TEST(Tracer, DefaultNamespaceZeroKeepsLegacyIds) {
  Rig rig;
  // ns = 0: ids are the bare counter, byte-identical to the pre-namespace
  // encoding.
  EXPECT_EQ(rig.tracer.trace_namespace(), 0u);
  EXPECT_EQ(rig.tracer.next_id(), 1u);
  EXPECT_EQ(trace_namespace_of(1u), 0u);
  EXPECT_EQ(trace_counter_of(1u), 1u);
}

TEST(Tracer, DistinctNamespacesYieldGloballyUniqueIds) {
  // The cross-domain pattern: one tracer per domain, stitched into one
  // stream afterwards. Same counters, disjoint ids.
  TelemetryBus bus_a, bus_b;
  Tracer a(bus_a, true, 1);
  Tracer b(bus_b, true, 2);
  std::vector<TraceId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(a.next_id());
    ids.push_back(b.next_id());
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "namespaced ids must never collide across tracers";
  for (const TraceId id : ids) {
    EXPECT_TRUE(trace_namespace_of(id) == 1 || trace_namespace_of(id) == 2);
  }
}

TEST(Tracer, SetNamespaceAppliesToSubsequentIds) {
  Rig rig;
  EXPECT_EQ(rig.tracer.next_id(), 1u);
  rig.tracer.set_namespace(3);
  const TraceId id = rig.tracer.next_id();
  EXPECT_EQ(trace_namespace_of(id), 3u);
  EXPECT_EQ(trace_counter_of(id), 2u);  // the counter keeps running
}
#endif  // SA_TELEMETRY_OFF

TEST(Tracer, DisabledTracerIsInert) {
  TelemetryBus bus;
  Tracer tracer(bus, /*enabled=*/false);
  const auto subj = bus.intern_subject("x");
  const auto name = tracer.intern_name("op");
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.next_id(), 0u);
  {
    auto span = tracer.span(0.0, subj, name);
    EXPECT_FALSE(static_cast<bool>(span));
    EXPECT_EQ(span.id(), 0u);
    span.arg(name, 1.0);  // no-op, no crash
  }
  tracer.flow(0.0, FlowPhase::Begin, 1, subj, name);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, InertSpanIsSafeToEndTwice) {
  Tracer::Span span;
  span.end();
  span.end_at(5.0);
  EXPECT_FALSE(static_cast<bool>(span));
}

}  // namespace
}  // namespace sa::sim
