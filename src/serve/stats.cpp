#include "serve/stats.hpp"

#include <algorithm>

namespace sa::serve {
namespace {

/// 10^d for the decade scales, in integer microseconds.
constexpr std::array<std::uint64_t, LatencyHistogram::kDecades> kDecadeUs = {
    1, 10, 100, 1'000, 10'000, 100'000, 1'000'000};

/// Reject-status -> slot in kRejectStatuses order, catch-all last.
std::size_t reject_slot(int status) noexcept {
  for (std::size_t i = 0; i < kRejectStatuses.size(); ++i) {
    if (kRejectStatuses[i] == status) return i;
  }
  return kRejectKinds - 1;
}

}  // namespace

RouteClass classify_route(std::string_view path) noexcept {
  if (path == "/metrics") return RouteClass::Metrics;
  if (path == "/status") return RouteClass::Status;
  if (path == "/events") return RouteClass::Events;
  if (path == "/control") return RouteClass::Control;
  if (path == "/healthz") return RouteClass::Healthz;
  return RouteClass::Other;
}

const char* route_label(RouteClass route) noexcept {
  switch (route) {
    case RouteClass::Metrics: return "/metrics";
    case RouteClass::Status: return "/status";
    case RouteClass::Events: return "/events";
    case RouteClass::Control: return "/control";
    case RouteClass::Healthz: return "/healthz";
    case RouteClass::Other: break;
  }
  return "other";
}

int LatencyHistogram::bucket_of(double seconds) noexcept {
  if (!(seconds > 0.0)) return 0;
  const double us_d = seconds * 1e6;
  if (us_d >= 1e7) return kFiniteBuckets;  // >= 10 s: overflow
  const auto us = static_cast<std::uint64_t>(us_d);
  int decade = 0;
  std::uint64_t scale = 1;
  while (us >= scale * 10) {
    scale *= 10;
    ++decade;
  }
  // Mantissa m in [0, 9]; sub-buckets cover [m·10^d, (m+1)·10^d) with m=0
  // and m=1 folded together (everything below 2·10^d shares bucket 0).
  const auto m = us / scale;
  const int sub = m <= 1 ? 0 : static_cast<int>(m) - 1;
  return decade * kSubBuckets + sub;
}

double LatencyHistogram::upper_bound_s(int bucket) noexcept {
  bucket = std::clamp(bucket, 0, kFiniteBuckets - 1);
  const int decade = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  const std::uint64_t le_us =
      static_cast<std::uint64_t>(sub + 2) * kDecadeUs[decade];
  return static_cast<double>(le_us) * 1e-6;
}

std::string LatencyHistogram::le_label(int bucket) {
  bucket = std::clamp(bucket, 0, kFiniteBuckets - 1);
  const int decade = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  const std::uint64_t le_us =
      static_cast<std::uint64_t>(sub + 2) * kDecadeUs[decade];
  // Exact decimal seconds from integer microseconds: whole part, then the
  // six-digit fraction with trailing zeros trimmed.
  std::string out = std::to_string(le_us / 1'000'000);
  std::uint64_t frac = le_us % 1'000'000;
  if (frac != 0) {
    char digits[7];
    for (int i = 5; i >= 0; --i) {
      digits[i] = static_cast<char>('0' + frac % 10);
      frac /= 10;
    }
    digits[6] = '\0';
    std::string_view sv{digits, 6};
    while (sv.ends_with('0')) sv.remove_suffix(1);
    out += '.';
    out += sv;
  }
  return out;
}

void LatencyHistogram::record(double seconds) noexcept {
  const int bucket = bucket_of(seconds);
  if (bucket >= kFiniteBuckets) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buckets_[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  const double ns = seconds > 0.0 ? seconds * 1e9 : 0.0;
  sum_ns_.fetch_add(static_cast<std::uint64_t>(ns),
                    std::memory_order_relaxed);
}

void LatencyHistogram::Snapshot::merge(const Snapshot& other) noexcept {
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  overflow += other.overflow;
  count += other.count;
  sum_ns += other.sum_ns;
}

double LatencyHistogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; integer arithmetic after the one
  // multiply keeps the walk deterministic.
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(count));
  target = std::clamp<std::uint64_t>(target + (target < count ? 1 : 0), 1,
                                     count);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kFiniteBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    cumulative += in_bucket;
    if (cumulative >= target) {
      const double lower = b == 0 ? 0.0 : upper_bound_s(b - 1);
      const double upper = upper_bound_s(b);
      const auto into = static_cast<double>(target - (cumulative - in_bucket));
      return lower + (upper - lower) * into / static_cast<double>(in_bucket);
    }
  }
  // Target sits in the overflow bucket: answer its lower bound (10 s).
  return upper_bound_s(kFiniteBuckets - 1);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const noexcept {
  Snapshot snap;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.overflow = overflow_.load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  return snap;
}

ServerStats::ServerStats(unsigned workers, double slow_threshold_s,
                         std::size_t slow_ring)
    : workers_(std::max(workers, 1u)),
      slow_threshold_s_(slow_threshold_s),
      slow_ring_() {
  slow_ring_.reserve(std::max<std::size_t>(slow_ring, 1));
  slow_ring_.resize(std::max<std::size_t>(slow_ring, 1));
}

void ServerStats::record_request(unsigned worker, RouteClass route,
                                 double seconds, int status,
                                 std::uint64_t response_bytes) noexcept {
  Worker& w = slab(worker);
  w.latency[static_cast<std::size_t>(route)].record(seconds);
  w.response_bytes.fetch_add(response_bytes, std::memory_order_relaxed);
  if (seconds >= slow_threshold_s_) {
    SlowRequest entry{route, seconds, status, sim_time()};
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_ring_[slow_next_] = entry;
    slow_next_ = (slow_next_ + 1) % slow_ring_.size();
    ++slow_seen_;
  }
}

void ServerStats::record_queue_wait(unsigned worker, double seconds) noexcept {
  slab(worker).queue_wait.record(seconds);
}

void ServerStats::add_request_bytes(unsigned worker,
                                    std::uint64_t bytes) noexcept {
  slab(worker).request_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void ServerStats::add_response_bytes(unsigned worker,
                                     std::uint64_t bytes) noexcept {
  slab(worker).response_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void ServerStats::on_keepalive_reuse(unsigned worker) noexcept {
  slab(worker).keepalive_reuses.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::on_write_timeout(unsigned worker) noexcept {
  slab(worker).write_timeouts.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::on_parse_reject(unsigned worker, int status) noexcept {
  slab(worker).rejects[reject_slot(status)].fetch_add(
      1, std::memory_order_relaxed);
}

ServerStats::Snapshot ServerStats::snapshot() const {
  Snapshot snap;
  for (const Worker& w : workers_) {
    for (std::size_t r = 0; r < kRouteClasses; ++r) {
      snap.routes[r].merge(w.latency[r].snapshot());
    }
    snap.queue_wait.merge(w.queue_wait.snapshot());
    snap.keepalive_reuses +=
        w.keepalive_reuses.load(std::memory_order_relaxed);
    snap.write_timeouts += w.write_timeouts.load(std::memory_order_relaxed);
    snap.request_bytes += w.request_bytes.load(std::memory_order_relaxed);
    snap.response_bytes += w.response_bytes.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kRejectKinds; ++i) {
      snap.rejects[i] += w.rejects[i].load(std::memory_order_relaxed);
    }
  }
  snap.active = active_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    const std::size_t cap = slow_ring_.size();
    const std::size_t have =
        slow_seen_ < cap ? static_cast<std::size_t>(slow_seen_) : cap;
    snap.slow.reserve(have);
    // Oldest entry first: when the ring has wrapped, slow_next_ points at
    // the oldest slot; before wrapping, entries start at index 0.
    const std::size_t start = slow_seen_ < cap ? 0 : slow_next_;
    for (std::size_t i = 0; i < have; ++i) {
      snap.slow.push_back(slow_ring_[(start + i) % cap]);
    }
  }
  return snap;
}

}  // namespace sa::serve
