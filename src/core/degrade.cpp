#include "core/degrade.hpp"

#include <sstream>

namespace sa::core {

DegradationPolicy::DegradationPolicy(SelfAwareAgent& agent)
    : DegradationPolicy(agent, Params{}) {}

DegradationPolicy::DegradationPolicy(SelfAwareAgent& agent, Params p)
    : agent_(agent), params_(std::move(p)) {
  if (params_.knowledge_ttl > 0.0) {
    agent_.knowledge().set_default_ttl(params_.knowledge_ttl);
  }
  if (params_.breach_updates == 0) params_.breach_updates = 1;
  if (params_.recover_updates == 0) params_.recover_updates = 1;
}

const char* DegradationPolicy::mode_name(Mode m) noexcept {
  switch (m) {
    case Mode::Meta: return "meta";
    case Mode::Goal: return "goal";
    case Mode::Stimulus: return "stimulus";
    case Mode::Reactive: return "reactive";
  }
  return "?";
}

LevelSet DegradationPolicy::level_set_for(Mode m) const {
  // set_active_levels clamps to the constructed set, so each rung only
  // needs to describe the ceiling, not intersect explicitly.
  switch (m) {
    case Mode::Meta:
      return agent_.levels();
    case Mode::Goal: {
      LevelSet s = agent_.levels();
      s.unset(Level::Meta);
      return s;
    }
    case Mode::Stimulus:
      return LevelSet{Level::Stimulus};
    case Mode::Reactive:
      return LevelSet{};
  }
  return agent_.levels();
}

void DegradationPolicy::update(double t, sim::TraceId trace) {
  // Dwell accrues over the interval just elapsed, while degraded.
  if (seen_update_ && mode_ != Mode::Meta && t > last_t_) {
    dwell_ += t - last_t_;
  }
  last_t_ = t;
  seen_update_ = true;

  const KnowledgeBase& kb = agent_.knowledge();
  std::string why;

  const double step_ms = kb.number("meta.profile.step_ms", 0.0);
  if (step_ms > params_.step_ms_breach) {
    std::ostringstream os;
    os << "step_ms breach (" << step_ms << " > " << params_.step_ms_breach
       << " ms)";
    why = os.str();
  }
  if (why.empty()) {
    const double active = kb.number("fault.active", 0.0);
    if (active >= params_.fault_active_breach) {
      std::ostringstream os;
      os << "fault pressure (" << active << " active)";
      why = os.str();
    }
  }
  if (why.empty() && !params_.watch_keys.empty()) {
    std::size_t stale = 0;
    for (const std::string& key : params_.watch_keys) {
      if (!kb.fresh(key, t)) ++stale;
    }
    const double frac =
        static_cast<double>(stale) /
        static_cast<double>(params_.watch_keys.size());
    if (frac > params_.stale_fraction_breach) {
      std::ostringstream os;
      os << "stale knowledge (" << stale << "/" << params_.watch_keys.size()
         << " watched keys)";
      why = os.str();
    }
  }

  if (!why.empty()) {
    clean_streak_ = 0;
    if (++breach_streak_ >= params_.breach_updates &&
        mode_ != Mode::Reactive) {
      breach_streak_ = 0;
      transition(t, static_cast<Mode>(rung() + 1), why, trace);
    }
  } else {
    breach_streak_ = 0;
    if (++clean_streak_ >= params_.recover_updates && mode_ != Mode::Meta) {
      clean_streak_ = 0;
      transition(t, static_cast<Mode>(rung() - 1), "triggers clear", trace);
    }
  }
}

DegradationPolicy::State DegradationPolicy::export_state() const {
  State s;
  s.mode = mode_;
  s.breach_streak = breach_streak_;
  s.clean_streak = clean_streak_;
  s.degradations = degradations_;
  s.recoveries = recoveries_;
  s.dwell = dwell_;
  s.last_t = last_t_;
  s.seen_update = seen_update_;
  s.last_trigger = last_trigger_;
  return s;
}

void DegradationPolicy::import_state(const State& s) {
  mode_ = s.mode;
  breach_streak_ = static_cast<std::size_t>(s.breach_streak);
  clean_streak_ = static_cast<std::size_t>(s.clean_streak);
  degradations_ = static_cast<std::size_t>(s.degradations);
  recoveries_ = static_cast<std::size_t>(s.recoveries);
  dwell_ = s.dwell;
  last_t_ = s.last_t;
  seen_update_ = s.seen_update;
  last_trigger_ = s.last_trigger;
  agent_.set_active_levels(level_set_for(mode_));
}

void DegradationPolicy::transition(double t, Mode to, const std::string& why,
                                   sim::TraceId trace) {
  const Mode from = mode_;
  mode_ = to;
  last_trigger_ = why;
  const bool down = static_cast<std::size_t>(to) > static_cast<std::size_t>(from);
  if (down) {
    ++degradations_;
  } else {
    ++recoveries_;
  }
  agent_.set_active_levels(level_set_for(to));

  Explanation e;
  e.t = t;
  e.agent = agent_.id();
  e.decision.action = down ? "degrade" : "recover";
  e.decision.rationale = why;
  e.from_mode = mode_name(from);
  e.to_mode = mode_name(to);
  e.trace_id = trace;
  agent_.explainer().record(std::move(e));
}

}  // namespace sa::core
