// Decision policies: the "self-expression" side of the loop.
//
// A policy turns self-knowledge into a choice among the agent's available
// actions. Policies return a structured Decision carrying not just the
// chosen action but the alternatives considered, the evidence consulted and
// a rationale — the raw material for self-explanation (Schubert [25],
// Cox [28]). Learning policies accept reward feedback; all policies can be
// reset by the meta level.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/goal.hpp"
#include "core/knowledge.hpp"
#include "learn/bandit.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace sa::core {

/// An alternative the policy evaluated, with its score.
struct OptionScore {
  std::string action;
  double score = 0.0;
};

/// The outcome of one decision.
struct Decision {
  std::size_t action_index = 0;
  std::string action;                  ///< chosen action name
  std::string rationale;               ///< one-line human-readable reason
  std::vector<OptionScore> considered; ///< alternatives with scores
  std::vector<std::string> evidence;   ///< KB keys that informed the choice
  /// Id of the decide span when the agent ran traced (0 otherwise); set by
  /// SelfAwareAgent::step, not by policies.
  sim::TraceId trace_id = 0;
};

/// Interface for decision policies.
class Policy {
 public:
  virtual ~Policy() = default;
  /// Chooses among `actions` given the current knowledge base.
  virtual Decision decide(double t, const KnowledgeBase& kb,
                          const std::vector<std::string>& actions,
                          sim::Rng& rng) = 0;
  /// Reward for the most recent decision (learning policies).
  virtual void feedback(double reward) { (void)reward; }
  /// Forgets learned state (meta-triggered).
  virtual void reset() {}
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Always chooses the same action — the design-time-fixed baseline.
class FixedPolicy final : public Policy {
 public:
  explicit FixedPolicy(std::size_t action) : action_(action) {}
  Decision decide(double t, const KnowledgeBase& kb,
                  const std::vector<std::string>& actions,
                  sim::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "fixed"; }

 private:
  std::size_t action_;
};

/// First-matching-rule policy: a reactive (stimulus-only) adaptive system
/// with no learned models — the classic non-self-aware baseline.
class RulePolicy final : public Policy {
 public:
  struct Rule {
    std::string label;                              ///< for the rationale
    std::function<bool(const KnowledgeBase&)> when; ///< guard
    std::size_t action;                             ///< index to choose
    std::vector<std::string> evidence;              ///< keys the guard reads
  };

  explicit RulePolicy(std::size_t default_action)
      : default_action_(default_action) {}
  RulePolicy& add_rule(Rule r);

  Decision decide(double t, const KnowledgeBase& kb,
                  const std::vector<std::string>& actions,
                  sim::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "rules"; }

 private:
  std::size_t default_action_;
  std::vector<Rule> rules_;
};

/// Wraps a learn::Bandit over the action set: learns action values online
/// from reward feedback.
class BanditPolicy final : public Policy {
 public:
  explicit BanditPolicy(std::unique_ptr<learn::Bandit> bandit)
      : bandit_(std::move(bandit)) {}

  Decision decide(double t, const KnowledgeBase& kb,
                  const std::vector<std::string>& actions,
                  sim::Rng& rng) override;
  void feedback(double reward) override;
  void reset() override { bandit_->reset(); }
  [[nodiscard]] std::string name() const override {
    return "bandit:" + bandit_->name();
  }
  [[nodiscard]] const learn::Bandit& bandit() const { return *bandit_; }

 private:
  std::unique_ptr<learn::Bandit> bandit_;
  std::size_t last_arm_ = 0;
  bool pending_ = false;
};

/// Contextual bandit: partitions decisions by a discrete *context* derived
/// from the knowledge base (e.g. "which workload regime am I in?") and
/// learns independent action values per context. This is where
/// self-awareness pays over a plain bandit: a context-free learner can at
/// best converge to the single best-on-average action, while a self-aware
/// system that recognises its situation can be best in *each* situation.
class ContextualBanditPolicy final : public Policy {
 public:
  /// Maps current knowledge to a context id in [0, contexts).
  using ContextFn = std::function<std::size_t(const KnowledgeBase&)>;
  using BanditFactory = std::function<std::unique_ptr<learn::Bandit>()>;

  /// `contexts` — number of discrete contexts; `make` is invoked once per
  /// context to build its bandit (all must have the same arm count).
  ContextualBanditPolicy(std::size_t contexts, ContextFn context,
                         BanditFactory make, std::vector<std::string>
                             evidence = {});

  Decision decide(double t, const KnowledgeBase& kb,
                  const std::vector<std::string>& actions,
                  sim::Rng& rng) override;
  void feedback(double reward) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "ctx-bandit"; }
  [[nodiscard]] std::size_t contexts() const { return bandits_.size(); }
  [[nodiscard]] const learn::Bandit& bandit(std::size_t ctx) const {
    return *bandits_[ctx];
  }

 private:
  ContextFn context_;
  std::vector<std::unique_ptr<learn::Bandit>> bandits_;
  std::vector<std::string> evidence_;
  std::size_t last_ctx_ = 0;
  std::size_t last_arm_ = 0;
  bool pending_ = false;
};

/// Model-predictive policy: for each action, ask a user-supplied response
/// model to predict the resulting metrics, score them with the goal model,
/// and take the argmax. Realises Kounev et al.'s self-prediction
/// (Section III): "predict the effects ... of actions".
class ModelBasedPolicy final : public Policy {
 public:
  /// Predicts the metric map that would result from taking `action` now.
  using ResponseModel = std::function<MetricMap(
      std::size_t action, const KnowledgeBase& kb)>;

  /// `goals` must outlive the policy. `evidence` lists the KB keys the
  /// response model consults (surfaced in explanations).
  ModelBasedPolicy(const GoalModel& goals, ResponseModel model,
                   std::vector<std::string> evidence = {})
      : goals_(goals), model_(std::move(model)),
        evidence_(std::move(evidence)) {}

  Decision decide(double t, const KnowledgeBase& kb,
                  const std::vector<std::string>& actions,
                  sim::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "model-based"; }

 private:
  const GoalModel& goals_;
  ResponseModel model_;
  std::vector<std::string> evidence_;
};

}  // namespace sa::core
