#include "multicore/manager.hpp"

#include <gtest/gtest.h>

#include "multicore/workload.hpp"
#include "sim/engine.hpp"
#include "sim/telemetry.hpp"

namespace sa::multicore {
namespace {

Manager::Params params_for(Manager::Variant v) {
  Manager::Params p;
  p.variant = v;
  p.epoch_s = 0.5;
  return p;
}

TEST(DefaultActions, CrossProductOfFreqAndMapping) {
  Platform p(PlatformConfig::big_little(2, 4), 1);
  const auto actions = default_actions(p);
  ASSERT_EQ(actions.size(), 12u);  // 4 freq levels x 3 mappings
  EXPECT_EQ(actions[0].freq_level, 0u);
  EXPECT_EQ(actions[11].freq_level, p.freq_levels() - 1);
  EXPECT_EQ(actions[0].mapping, Mapping::Balanced);
  EXPECT_EQ(actions[2].mapping, Mapping::PackLittle);
  EXPECT_EQ(actions[3].name, "f1/balanced");
  EXPECT_EQ(actions[10].name, "f3/pack-big");
}

TEST(Manager, VariantNames) {
  EXPECT_STREQ(Manager::variant_name(Manager::Variant::Static), "static");
  EXPECT_STREQ(Manager::variant_name(Manager::Variant::Reactive), "reactive");
  EXPECT_STREQ(Manager::variant_name(Manager::Variant::SelfAware),
               "self-aware");
}

class ManagerVariantTest
    : public ::testing::TestWithParam<Manager::Variant> {};

TEST_P(ManagerVariantTest, RunsEpochsAndAccumulatesStats) {
  Platform platform(PlatformConfig::big_little(2, 4), 3);
  auto workload = PhasedWorkload::standard();
  Manager mgr(platform, params_for(GetParam()));
  for (int i = 0; i < 20; ++i) {
    workload.apply(platform);
    const double u = mgr.run_epoch();
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  EXPECT_EQ(mgr.utility().count(), 20u);
  EXPECT_GT(mgr.power().mean(), 0.0);
  EXPECT_GE(mgr.cap_violation_rate(), 0.0);
  EXPECT_LE(mgr.cap_violation_rate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ManagerVariantTest,
                         ::testing::Values(Manager::Variant::Static,
                                           Manager::Variant::Reactive,
                                           Manager::Variant::SelfAware),
                         [](const auto& info) {
                           std::string n = Manager::variant_name(info.param);
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(Manager, StaticNeverChangesConfiguration) {
  Platform platform(PlatformConfig::big_little(2, 4), 4);
  auto p = params_for(Manager::Variant::Static);
  p.static_action = 3;  // mid frequency, balanced
  Manager mgr(platform, p);
  platform.set_workload(20.0, 0.2, 0.5);
  for (int i = 0; i < 10; ++i) mgr.run_epoch();
  EXPECT_EQ(platform.freq_level(0), 1u);
  EXPECT_EQ(platform.mapping(), Mapping::Balanced);
}

TEST(Manager, ReactiveRespondsToLatencyPressure) {
  Platform platform(PlatformConfig::big_little(2, 4), 5);
  Manager mgr(platform, params_for(Manager::Variant::Reactive));
  // Heavy load: p95 latency will exceed the 0.4 s target, triggering the
  // max-freq rule.
  platform.set_workload(50.0, 0.25, 1.0);
  for (int i = 0; i < 10; ++i) mgr.run_epoch();
  EXPECT_EQ(platform.freq_level(0), platform.freq_levels() - 1);
}

TEST(Manager, SelfAwareAgentHasConfiguredLevels) {
  Platform platform(PlatformConfig::big_little(2, 4), 6);
  auto p = params_for(Manager::Variant::SelfAware);
  p.levels = core::LevelSet{core::Level::Stimulus, core::Level::Goal};
  Manager mgr(platform, p);
  EXPECT_TRUE(mgr.agent().levels().has(core::Level::Goal));
  EXPECT_FALSE(mgr.agent().levels().has(core::Level::Meta));
}

TEST(Manager, UtilityPenalisesCapViolations) {
  Platform platform(PlatformConfig::big_little(2, 4), 7);
  auto p = params_for(Manager::Variant::Static);
  p.power_cap_w = 0.5;  // absurdly low cap: always violated
  p.static_action = 8;  // max frequency
  Manager mgr(platform, p);
  platform.set_workload(30.0, 0.3, 0.5);
  for (int i = 0; i < 5; ++i) mgr.run_epoch();
  EXPECT_DOUBLE_EQ(mgr.utility().mean(), 0.0);  // hard constraint zeroes it
  EXPECT_DOUBLE_EQ(mgr.cap_violation_rate(), 1.0);
}

TEST(Manager, BindReproducesRunEpochLoop) {
  // Manager::bind schedules run_epoch_for(period) at the control order; the
  // default period equals epoch_s, so the trajectory must match the
  // synchronous loop exactly.
  auto run = [](bool engine_driven) {
    Platform platform(PlatformConfig::big_little(2, 4), 13);
    auto p = params_for(Manager::Variant::SelfAware);
    p.seed = 13;
    Manager mgr(platform, p);
    platform.set_workload(20.0, 0.4, 0.5);
    if (engine_driven) {
      sim::Engine engine;
      mgr.bind(engine);
      engine.run_until(40 * p.epoch_s);
    } else {
      for (int i = 0; i < 40; ++i) mgr.run_epoch();
    }
    return mgr.utility().mean();
  };
  EXPECT_DOUBLE_EQ(run(true), run(false));
}

#ifndef SA_TELEMETRY_OFF
TEST(Manager, TelemetryCapturesAgentActivity) {
  sim::TelemetryBus bus;
  Platform platform(PlatformConfig::big_little(2, 4), 7);
  auto p = params_for(Manager::Variant::SelfAware);
  p.telemetry = &bus;
  Manager mgr(platform, p);
  platform.set_workload(20.0, 0.4, 0.5);
  for (int i = 0; i < 10; ++i) mgr.run_epoch();
  EXPECT_GE(bus.count(sim::TelemetryBus::kObservation), 10u);
  EXPECT_GE(bus.count(sim::TelemetryBus::kDecision), 10u);
}
#endif  // SA_TELEMETRY_OFF

TEST(Manager, SelfAwareBeatsStaticOnPhasedWorkload) {
  // The headline E1 comparison in miniature (short horizon, fixed seed):
  // the learner should manage the changing phases at least as well as the
  // design-time configuration.
  auto run = [](Manager::Variant v) {
    Platform platform(PlatformConfig::big_little(2, 4), 11);
    auto workload = PhasedWorkload::standard();
    auto p = params_for(v);
    p.seed = 11;
    Manager mgr(platform, p);
    for (int i = 0; i < 240; ++i) {
      workload.apply(platform);
      mgr.run_epoch();
    }
    return mgr.utility().mean();
  };
  EXPECT_GT(run(Manager::Variant::SelfAware),
            run(Manager::Variant::Static) - 0.02);
}

}  // namespace
}  // namespace sa::multicore
