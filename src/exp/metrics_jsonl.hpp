// JSONL export of a sim::MetricsRegistry — same line-per-record idiom as
// exp::JsonlSink (and it lives in sa::exp for the same layering reason:
// the deterministic Json writer is here).
//
// Layout:
//   line 1    {"schema":1,"kind":"metrics","names":[...],"kinds":[...]}
//   line 2..  {"t":<snapshot time>,"v":[<one scalar per metric>]}
//   last line {"summary":{<name>:{"kind":...,"value":...,...}}} — counters
//             and gauges report their value; timers/histograms report
//             count/mean/min/max/stddev of their observations.
//
// Timers hold wall-clock measurements, so metric *values* are not
// reproducible run-to-run — only the file structure is. Reproducible
// observability lives in the trace export (exp/trace_json.hpp).
#pragma once

#include <iosfwd>

#include "sim/metrics.hpp"

namespace sa::exp {

void write_metrics_jsonl(std::ostream& os,
                         const sim::MetricsRegistry& registry);

}  // namespace sa::exp
