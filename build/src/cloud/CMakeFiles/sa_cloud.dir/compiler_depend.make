# Empty compiler generated dependencies file for sa_cloud.
# This may be replaced when dependencies are built.
