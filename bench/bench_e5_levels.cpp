// E5 — levels-of-self-awareness ablation (paper Section IV, concept 2).
//
// The framework deliberately supports partial stacks: "while full-stack
// computational self-awareness may often be beneficial ... there are also
// cases where a more minimal approach is appropriate". This experiment
// enables the levels incrementally on the multicore manager and measures
// what each one buys:
//
//   none            — static design-time configuration (no awareness)
//   stimulus        — reactive threshold rules (readings only, no models)
//   +goal           — model-predictive decisions against the explicit goal
//                     model, but with raw last-epoch demand only
//   +goal+time      — adds demand forecasting (time awareness feeds the
//                     self-model's predictions)
//   full (+meta)    — adds meta-self-awareness (drift-triggered resets;
//                     on this recurring workload it should neither help
//                     nor hurt — its value shows in E6's one-way drift)
//
// A second table runs the same ablation on the volunteer cloud, where the
// interaction level (learned per-node reliability) and the time level
// (demand forecasting) feed the autoscaler's self-prediction directly.
#include <iostream>
#include <string>
#include <vector>

#include "cloud/autoscaler.hpp"
#include "exp/harness.hpp"
#include "multicore/manager.hpp"
#include "multicore/workload.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;
using namespace sa::multicore;

constexpr int kEpochs = 960;
const std::vector<std::uint64_t> kSeeds{51, 52, 53};

struct Row {
  std::string name;
  Manager::Variant variant;
  core::LevelSet levels;
};

double run(const Row& row, std::uint64_t seed) {
  Platform platform(PlatformConfig::big_little(2, 4), seed);
  auto workload = PhasedWorkload::standard();
  Manager::Params p;
  p.variant = row.variant;
  p.levels = row.levels;
  p.seed = seed;
  Manager mgr(platform, p);
  sim::RunningStats u;
  for (int i = 0; i < kEpochs; ++i) {
    workload.apply(platform);
    u.add(mgr.run_epoch());
  }
  return u.mean();
}

struct CloudRow {
  std::string name;
  core::LevelSet levels;
};

exp::TaskOutput run_cloud(const CloudRow& row, std::uint64_t seed) {
  cloud::Cluster::Params cp;
  cp.nodes = 30;
  cp.seed = seed;
  cp.boot_s = 10.0;  // one epoch of provisioning lag
  cloud::Cluster cluster(cp);
  // A steep, fast diurnal cycle: demand moves by whole nodes' worth
  // between control epochs, so anticipating it (vs chasing it) shows.
  cloud::DemandModel::Params dp;
  dp.base = 80.0;
  dp.diurnal_amp = 0.6;
  dp.period_s = 300.0;
  dp.burst_prob = 0.03;
  dp.burst_mult = 2.0;
  cloud::DemandModel demand(dp);
  cloud::Autoscaler::Params ap;
  ap.variant = cloud::Autoscaler::Variant::SelfAware;
  ap.levels = row.levels;
  ap.seasonal_epochs = 30;  // period_s / epoch_s
  ap.seed = seed;
  cloud::Autoscaler as(cluster, demand, ap);
  sim::RunningStats tail_sla, tail_cost;
  for (int e = 0; e < 400; ++e) {
    const auto ep = as.run_epoch();
    if (e >= 100) {
      tail_sla.add(ep.sla);
      tail_cost.add(ep.cost);
    }
  }
  return {{{"sla", tail_sla.mean()},
           {"cost", tail_cost.mean()},
           {"utility", as.utility().mean()}}};
}

}  // namespace

int main(int argc, char** argv) {
  using core::Level;
  using core::LevelSet;
  exp::Harness h("e5_levels", argc, argv);
  std::cout << "E5: what does each self-awareness level buy? Multicore "
               "scenario, " << kEpochs << " epochs, "
            << h.seeds_for(kSeeds).size() << " seeds.\n\n";

  const std::vector<Row> rows{
      {"none (static)", Manager::Variant::Static, LevelSet{}},
      {"stimulus (reactive)", Manager::Variant::Reactive,
       LevelSet::minimal()},
      {"stimulus+goal", Manager::Variant::SelfAware,
       LevelSet{Level::Stimulus, Level::Goal}},
      {"stimulus+goal+time", Manager::Variant::SelfAware,
       LevelSet{Level::Stimulus, Level::Goal, Level::Time}},
      {"full stack (+meta)", Manager::Variant::SelfAware,
       LevelSet::full()},
  };

  exp::Grid g;
  g.name = "e5.multicore";
  for (const auto& row : rows) g.variants.push_back(row.name);
  g.seeds = kSeeds;
  g.task = [&rows](const exp::TaskContext& ctx) -> exp::TaskOutput {
    return {{{"utility", run(rows[ctx.variant], ctx.seed)}}};
  };
  const auto res = h.run(std::move(g));

  sim::Table t("E5.1  multicore: mean utility by enabled awareness levels",
               {"configuration", "levels", "utility"});
  for (std::size_t v = 0; v < rows.size(); ++v) {
    t.add_row({rows[v].name, rows[v].levels.to_string(),
               res.mean(v, "utility")});
  }
  t.print(std::cout);

  // ---- Cloud ablation: interaction + time awareness matter directly ----
  const std::vector<CloudRow> cloud_rows{
      {"goal only", LevelSet{Level::Stimulus, Level::Goal}},
      {"+time (forecast)",
       LevelSet{Level::Stimulus, Level::Goal, Level::Time}},
      {"+interaction (reliability)",
       LevelSet{Level::Stimulus, Level::Goal, Level::Interaction}},
      {"+time+interaction",
       LevelSet{Level::Stimulus, Level::Goal, Level::Time,
                Level::Interaction}},
      {"full stack (+meta)", LevelSet::full()},
  };

  exp::Grid gc;
  gc.name = "e5.cloud";
  for (const auto& row : cloud_rows) gc.variants.push_back(row.name);
  gc.seeds = kSeeds;
  gc.task = [&cloud_rows](const exp::TaskContext& ctx) {
    return run_cloud(cloud_rows[ctx.variant], ctx.seed);
  };
  const auto resc = h.run(std::move(gc));

  sim::Table tc("E5.2  volunteer cloud: SLA/cost by enabled levels",
                {"configuration", "sla", "cost", "utility"});
  for (std::size_t v = 0; v < cloud_rows.size(); ++v) {
    tc.add_row({cloud_rows[v].name, resc.mean(v, "sla"),
                resc.mean(v, "cost"), resc.mean(v, "utility")});
  }
  tc.print(std::cout);
  return h.finish();
}
