// Tests for the typed telemetry bus: interning, counters, histograms, ring
// sink queries, sink dispatch, and the cost contract of the disabled path
// (one branch, zero heap allocations). The tracer's and the metrics
// registry's allocation contracts are asserted here too, because this
// binary owns the one global operator-new counter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "sim/metrics.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

// Global allocation counter: every operator new bumps it, so a test can
// assert that a code region performs no heap allocation at all.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sa::sim {
namespace {

TEST(TelemetryBus, CanonicalCategoriesArePreInterned) {
  TelemetryBus bus;
  EXPECT_EQ(bus.categories(), 3u);
  EXPECT_EQ(bus.category_name(TelemetryBus::kDecision), "decision");
  EXPECT_EQ(bus.category_name(TelemetryBus::kObservation), "observation");
  EXPECT_EQ(bus.category_name(TelemetryBus::kFailure), "failure");
}

TEST(TelemetryBus, InterningIsIdempotent) {
  TelemetryBus bus;
  const auto a = bus.intern_category("checkpoint");
  const auto b = bus.intern_category("checkpoint");
  EXPECT_EQ(a, b);
  EXPECT_EQ(bus.intern_category("decision"), TelemetryBus::kDecision);
  const auto s1 = bus.intern_subject("mgr");
  const auto s2 = bus.intern_subject("mgr");
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(bus.subject_name(s1), "mgr");
}

// Everything from here to the disabled-path tests asserts that events are
// actually delivered, so it only applies when the hot path is compiled in.
#ifndef SA_TELEMETRY_OFF
TEST(TelemetryBus, CountsAndValueStatsPerCategory) {
  TelemetryBus bus;
  const auto subj = bus.intern_subject("x");
  bus.record(0.0, TelemetryBus::kObservation, subj, 2.0);
  bus.record(1.0, TelemetryBus::kObservation, subj, 4.0);
  bus.record(2.0, TelemetryBus::kFailure, subj, 7.0);
  EXPECT_EQ(bus.count(TelemetryBus::kObservation), 2u);
  EXPECT_EQ(bus.count(TelemetryBus::kFailure), 1u);
  EXPECT_EQ(bus.count(TelemetryBus::kDecision), 0u);
  EXPECT_EQ(bus.total(), 3u);
  EXPECT_DOUBLE_EQ(bus.values(TelemetryBus::kObservation).mean(), 3.0);
}

TEST(TelemetryBus, OptInHistogramCollectsValues) {
  TelemetryBus bus;
  const auto subj = bus.intern_subject("x");
  EXPECT_EQ(bus.histogram(TelemetryBus::kObservation), nullptr);
  bus.enable_histogram(TelemetryBus::kObservation, 0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    bus.record(i, TelemetryBus::kObservation, subj, i % 10);
  }
  const auto* h = bus.histogram(TelemetryBus::kObservation);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total(), 100u);
}

TEST(TelemetryBus, SinksSeeEventsInOrderWithDetail) {
  TelemetryBus bus;
  RingBufferSink sink;
  bus.add_sink(&sink);
  const auto subj = bus.intern_subject("net");
  bus.record(1.0, TelemetryBus::kFailure, subj, 3.0, "ttl");
  bus.record(2.0, TelemetryBus::kObservation, subj, 12.5, "delivered");
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_DOUBLE_EQ(sink.at(0).t, 1.0);
  EXPECT_EQ(sink.at(0).detail, "ttl");
  EXPECT_EQ(sink.at(1).category, TelemetryBus::kObservation);
  EXPECT_DOUBLE_EQ(sink.at(1).value, 12.5);
}

TEST(RingBufferSink, EvictsOldestBeyondCapacity) {
  TelemetryBus bus;
  RingBufferSink sink(4);
  bus.add_sink(&sink);
  const auto subj = bus.intern_subject("x");
  for (int i = 0; i < 10; ++i) {
    bus.record(i, TelemetryBus::kObservation, subj, i);
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.seen(), 10u);
  EXPECT_DOUBLE_EQ(sink.at(0).value, 6.0);  // oldest retained
  EXPECT_DOUBLE_EQ(sink.at(3).value, 9.0);  // newest
}

TEST(RingBufferSink, QueriesByCategoryAndSubject) {
  TelemetryBus bus;
  RingBufferSink sink;
  bus.add_sink(&sink);
  const auto a = bus.intern_subject("a");
  const auto b = bus.intern_subject("b");
  bus.record(0.0, TelemetryBus::kDecision, a, 1.0);
  bus.record(1.0, TelemetryBus::kFailure, b, 2.0);
  bus.record(2.0, TelemetryBus::kDecision, b, 3.0);
  const auto decisions = sink.by_category(TelemetryBus::kDecision);
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_DOUBLE_EQ(decisions[0]->value, 1.0);
  EXPECT_DOUBLE_EQ(decisions[1]->value, 3.0);
  const auto from_b = sink.by_subject(b);
  ASSERT_EQ(from_b.size(), 2u);
  EXPECT_EQ(from_b[0]->category, TelemetryBus::kFailure);
}
#endif  // SA_TELEMETRY_OFF

TEST(TelemetryBus, DisabledPathPerformsNoHeapAllocation) {
  TelemetryBus bus(/*enabled=*/false);
  RingBufferSink sink;
  bus.add_sink(&sink);
  const auto subj = bus.intern_subject("hot");
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    bus.record(i, TelemetryBus::kObservation, subj, 1.0, "detail");
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_EQ(bus.total(), 0u);
  EXPECT_EQ(sink.seen(), 0u);
}

#ifndef SA_TELEMETRY_OFF
TEST(TelemetryBus, EnabledPathCountsWithoutBusAllocation) {
  // With no histogram and a no-op sink, the bus's own hot path (counter
  // bump + stats fold + dispatch) must not allocate either.
  struct NullSink : TelemetrySink {
    void on_event(const TelemetryEvent&) override {}
  };
  TelemetryBus bus;
  NullSink sink;
  bus.add_sink(&sink);
  const auto subj = bus.intern_subject("hot");
  bus.record(0.0, TelemetryBus::kObservation, subj, 1.0);  // warm per-category
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    bus.record(i, TelemetryBus::kObservation, subj, 1.0, "detail");
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_EQ(bus.count(TelemetryBus::kObservation), 10001u);
}
#endif

#ifdef SA_TELEMETRY_OFF
TEST(TelemetryBus, CompileTimeOffReportsDisabled) {
  TelemetryBus bus(/*enabled=*/true);
  EXPECT_FALSE(bus.enabled());
  bus.record(0.0, TelemetryBus::kFailure, 0, 1.0);
  EXPECT_EQ(bus.total(), 0u);
}
#endif

#ifndef SA_TELEMETRY_OFF
TEST(RingBufferSink, DeepCopiesDetailBeyondCallerLifetime) {
  // record() takes the detail as a string_view; the sink must own its copy
  // so reading it after the caller's buffer dies is valid (ASan-visible if
  // it is not).
  TelemetryBus bus;
  RingBufferSink sink;
  bus.add_sink(&sink);
  const auto subj = bus.intern_subject("x");
  {
    auto detail = std::make_unique<std::string>("a detail long enough to be "
                                                "heap-allocated for sure");
    bus.record(0.0, TelemetryBus::kFailure, subj, 1.0, *detail);
    detail->assign("clobbered");  // invalidate + overwrite the old buffer
  }  // ...then free it entirely
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.at(0).detail,
            "a detail long enough to be heap-allocated for sure");
}
#endif

// --- Tracer / MetricsRegistry allocation contracts -----------------------

TEST(Tracer, DisabledPathPerformsNoHeapAllocation) {
  TelemetryBus bus;
  Tracer tracer(bus, /*enabled=*/false);
  const auto subj = bus.intern_subject("hot");
  const auto name = tracer.intern_name("op");
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    auto span = tracer.span(i, subj, name);
    span.arg(name, 1.0);
    tracer.flow(i, FlowPhase::Step, tracer.next_id(), subj, name);
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_EQ(tracer.spans(), 0u);
  EXPECT_EQ(tracer.flows(), 0u);
  EXPECT_EQ(tracer.last_id(), 0u);  // ids only assigned to recorded work
}

TEST(MetricsRegistry, HotPathPerformsNoHeapAllocation) {
  MetricsRegistry reg;
  const auto c = reg.counter("ops");
  const auto g = reg.gauge("level");
  const auto t = reg.timer("ms");
  const auto h = reg.histogram("lat", 0.0, 1.0, 16);
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    reg.add(c);
    reg.set(g, static_cast<double>(i));
    reg.observe(t, 0.25);
    reg.observe(h, 0.5);
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_DOUBLE_EQ(reg.value(c), 10000.0);
}

#ifdef SA_TELEMETRY_OFF
TEST(Tracer, CompileTimeOffRecordsNothing) {
  TelemetryBus bus;
  Tracer tracer(bus, /*enabled=*/true);
  EXPECT_FALSE(tracer.enabled());
  {
    auto span = tracer.span(0.0, 0, 0);
    EXPECT_FALSE(static_cast<bool>(span));
  }
  tracer.flow(0.0, FlowPhase::Begin, 1, 0, 0);
  EXPECT_EQ(tracer.events().size(), 0u);
  EXPECT_EQ(tracer.next_id(), 0u);
}
#endif

}  // namespace
}  // namespace sa::sim
