#include "core/explain.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace sa::core {

std::string Explanation::render() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  if (!from_mode.empty()) {
    // Degradation transition (core::DegradationPolicy), not a decision.
    os << (decision.action == "recover" ? "Recovered " : "Degraded ")
       << from_mode << "→" << to_mode << " at t=" << t << ": "
       << decision.rationale;
    if (trace_id != 0) os << ", trace #" << trace_id;
    return os.str();
  }
  os << "[t=" << t << "] " << agent << " chose '" << decision.action << "'";
  if (!decision.rationale.empty()) os << " because " << decision.rationale;
  os << ".";
  if (!decision.considered.empty()) {
    os << " Alternatives considered:";
    for (const auto& opt : decision.considered) {
      os << ' ' << opt.action << "(" << opt.score << ")";
    }
    os << ".";
  }
  if (!evidence.empty()) {
    os << " Evidence:";
    for (const auto& ev : evidence) {
      os << ' ' << ev.key << "=" << ev.value << " [conf " << ev.confidence
         << "]";
    }
    os << ".";
  }
  if (has_goal) os << " Goal utility at decision time: " << goal_utility << ".";
  if (trace_id != 0) {
    os << " Trace: decision #" << trace_id;
    if (!cited.empty()) {
      os << " from evidence";
      for (std::size_t i = 0; i < cited.size(); ++i) {
        os << (i == 0 ? " #" : ", #") << cited[i];
      }
    }
    os << ".";
  }
  return os.str();
}

Explainer::ActionSummary Explainer::summarise(
    const std::string& action) const {
  ActionSummary out;
  double utility_sum = 0.0;
  std::size_t with_goal = 0;
  for (std::size_t i = 0; i < log_.size(); ++i) {
    const Explanation& e = at(i);  // chronological: last match is newest
    if (e.decision.action != action) continue;
    ++out.count;
    out.last_rationale = e.decision.rationale;
    if (e.has_goal) {
      utility_sum += e.goal_utility;
      ++with_goal;
    }
  }
  if (with_goal > 0) {
    out.mean_goal_utility = utility_sum / static_cast<double>(with_goal);
  }
  return out;
}

std::vector<Explanation> Explainer::snapshot(std::size_t last_n) const {
  const std::size_t n = std::min(last_n, log_.size());
  std::vector<Explanation> out;
  out.reserve(n);
  for (std::size_t i = log_.size() - n; i < log_.size(); ++i) {
    out.push_back(at(i));
  }
  return out;
}

void Explainer::record(Explanation e) {
  ++decisions_;
  if (!enabled_ || capacity_ == 0) return;
  if (log_.size() < capacity_) {
    log_.push_back(std::move(e));
  } else {
    log_[head_] = std::move(e);
    head_ = (head_ + 1) % capacity_;
  }
}

void Explainer::set_capacity(std::size_t cap) {
  if (cap != capacity_ && !log_.empty()) {
    // Re-linearise, keeping the newest min(cap, size) entries in order.
    std::vector<Explanation> kept;
    const std::size_t n = std::min(cap, log_.size());
    kept.reserve(n);
    for (std::size_t i = log_.size() - n; i < log_.size(); ++i) {
      kept.push_back(at(i));
    }
    log_ = std::move(kept);
    head_ = 0;
  }
  capacity_ = cap;
}

}  // namespace sa::core
