#include "svc/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sa::svc {

namespace {
constexpr std::size_t kUnowned = std::numeric_limits<std::size_t>::max();
}  // namespace

double distance(Vec2 a, Vec2 b) noexcept {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Network::Network(std::vector<CameraSpec> cameras, NetworkParams params)
    : specs_(std::move(cameras)),
      p_(params),
      rng_(params.seed),
      strategy_(specs_.size(), Strategy::Broadcast),
      failed_(specs_.size(), false),
      blur_(specs_.size(), 1.0),
      neighbours_(specs_.size()),
      links_(specs_.size()),
      owned_count_(specs_.size(), 0),
      cam_epoch_(specs_.size()) {
  // Precompute the Smooth audiences: FoV-overlapping cameras.
  for (std::size_t a = 0; a < specs_.size(); ++a) {
    for (std::size_t b = 0; b < specs_.size(); ++b) {
      if (a == b) continue;
      if (distance(specs_[a].pos, specs_[b].pos) <=
          specs_[a].radius + specs_[b].radius) {
        neighbours_[a].push_back(b);
      }
    }
  }
  // Objects start unowned at random positions with random waypoints.
  object_pos_.resize(p_.objects);
  object_waypoint_.resize(p_.objects);
  owner_.assign(p_.objects, kUnowned);
  for (std::size_t o = 0; o < p_.objects; ++o) {
    object_pos_[o] = {rng_.uniform(), rng_.uniform()};
    object_waypoint_[o] = object_pos_[o];
  }
}

Network Network::clustered_layout(NetworkParams params) {
  std::vector<CameraSpec> cams;
  // Dense 2x2 cluster around the hotspot: heavily overlapping FoVs.
  const Vec2 h = params.hotspot;
  for (double dx : {-0.06, 0.06}) {
    for (double dy : {-0.06, 0.06}) {
      cams.push_back({{h.x + dx, h.y + dy}, 0.22, 6});
    }
  }
  // Sparse ring of isolated cameras near the edges: small enough FoVs that
  // they overlap neither each other nor the cluster.
  const Vec2 ring[] = {{0.12, 0.12}, {0.88, 0.12}, {0.12, 0.88},
                       {0.88, 0.88}, {0.5, 0.06},  {0.06, 0.5},
                       {0.94, 0.5},  {0.5, 0.94}};
  for (const Vec2& pos : ring) cams.push_back({pos, 0.15, 6});
  return Network(std::move(cams), params);
}

double Network::visibility(std::size_t cam, std::size_t obj) const {
  if (failed_[cam]) return 0.0;
  const double d = distance(specs_[cam].pos, object_pos_[obj]);
  const double r = specs_[cam].radius;
  if (d >= r) return 0.0;
  // Best at the centre, fading to the rim; a blurred sensor sees less.
  return (1.0 - d / r) * blur_[cam];
}

void Network::fail_camera(std::size_t cam) {
  if (failed_[cam]) return;
  failed_[cam] = true;
  // A crashed node forgets its tracks at once; re-detection by surviving
  // cameras has to re-home them (no auction — the seller is gone).
  for (std::size_t o = 0; o < owner_.size(); ++o) {
    if (owner_[o] == cam) {
      transfer_owner(o, kUnowned);
      cam_epoch_[cam].lost += 1.0;
    }
  }
}

void Network::set_sensor_blur(std::size_t cam, double factor) {
  blur_[cam] = std::clamp(factor, 0.0, 1.0);
}

void Network::transfer_owner(std::size_t obj, std::size_t to) {
  const std::size_t from = owner_[obj];
  if (from == to) return;
  if (from != kUnowned) --owned_count_[from];
  if (to != kUnowned) ++owned_count_[to];
  owner_[obj] = to;
}

Vec2 Network::current_hotspot() const {
  if (p_.hotspot_drift <= 0.0) return p_.hotspot;
  const double ang = p_.hotspot_drift * static_cast<double>(steps_);
  return {std::clamp(p_.hotspot.x + p_.hotspot_orbit * std::cos(ang), 0.1,
                     0.9),
          std::clamp(p_.hotspot.y + p_.hotspot_orbit * std::sin(ang), 0.1,
                     0.9)};
}

void Network::move_objects() {
  const Vec2 hotspot = current_hotspot();
  for (std::size_t o = 0; o < object_pos_.size(); ++o) {
    Vec2& pos = object_pos_[o];
    Vec2& wp = object_waypoint_[o];
    if (distance(pos, wp) < p_.speed) {
      // New waypoint, biased towards the (possibly moving) hotspot.
      if (rng_.chance(p_.hotspot_bias)) {
        const double ang = rng_.uniform(0.0, 6.283185307179586);
        const double rad = p_.hotspot_radius * std::sqrt(rng_.uniform());
        wp = {std::clamp(hotspot.x + rad * std::cos(ang), 0.0, 1.0),
              std::clamp(hotspot.y + rad * std::sin(ang), 0.0, 1.0)};
      } else {
        wp = {rng_.uniform(), rng_.uniform()};
      }
    }
    const double d = distance(pos, wp);
    if (d > 1e-12) {
      pos.x += (wp.x - pos.x) / d * p_.speed;
      pos.y += (wp.y - pos.y) / d * p_.speed;
    }
  }
}

void Network::auction(std::size_t obj, std::size_t seller) {
  const double t = static_cast<double>(steps_);
  const Strategy s = strategy_[seller];
  if (s == Strategy::Passive) {
    transfer_owner(obj, kUnowned);
    cam_epoch_[seller].lost += 1.0;
    if (telemetry_) {
      telemetry_->record(t, sim::TelemetryBus::kFailure, subject_,
                         static_cast<double>(seller), "lost");
    }
    return;
  }
  // audience_ is member scratch: auctions run inside the per-step batch
  // pass, so the buffer is reused instead of allocated per call.
  audience_.clear();
  if (s == Strategy::Broadcast) {
    for (std::size_t c = 0; c < specs_.size(); ++c) {
      if (c != seller) audience_.push_back(c);
    }
  } else {
    for (const Link& link : links_[seller]) {
      if (link.strength >= 1.0) audience_.push_back(link.peer);
    }
  }
  cam_epoch_[seller].messages += static_cast<double>(audience_.size());
  net_epoch_.messages += static_cast<double>(audience_.size());

  std::size_t best = kUnowned;
  double best_bid = 0.0;
  for (std::size_t c : audience_) {
    const double vis = visibility(c, obj);
    if (vis < p_.vis_threshold) continue;
    if (load(c) >= specs_[c].capacity) continue;
    // Bid: how well I see it, discounted by how busy I am.
    const double bid =
        vis * (1.0 - static_cast<double>(load(c)) /
                         static_cast<double>(specs_[c].capacity));
    if (bid > best_bid) {
      best_bid = bid;
      best = c;
    }
  }
  if (best != kUnowned) {
    transfer_owner(obj, best);
    cam_epoch_[seller].handovers += 1.0;
    // The successful sale teaches the vision graph, whatever strategy
    // found the buyer.
    auto& edges = links_[seller];
    const auto pos = std::lower_bound(
        edges.begin(), edges.end(), best,
        [](const Link& l, std::size_t peer) { return l.peer < peer; });
    if (pos != edges.end() && pos->peer == best) {
      pos->strength += 1.0;
    } else {
      edges.insert(pos, Link{best, 1.0});
    }
    if (telemetry_) {
      telemetry_->record(t, sim::TelemetryBus::kObservation, subject_,
                         best_bid, "handover");
    }
  } else {
    transfer_owner(obj, kUnowned);
    cam_epoch_[seller].lost += 1.0;
    if (telemetry_) {
      telemetry_->record(t, sim::TelemetryBus::kFailure, subject_,
                         static_cast<double>(seller), "lost");
    }
  }
}

std::vector<std::size_t> Network::learned_links(std::size_t cam) const {
  std::vector<std::size_t> out;
  out.reserve(links_[cam].size());
  for (const Link& link : links_[cam]) {
    if (link.strength >= 1.0) out.push_back(link.peer);
  }
  return out;
}

void Network::claim_unowned() {
  for (std::size_t o = 0; o < owner_.size(); ++o) {
    if (owner_[o] != kUnowned) continue;
    if (!rng_.chance(p_.redetect_prob)) continue;  // detection latency
    std::size_t best = kUnowned;
    double best_vis = p_.vis_threshold;
    for (std::size_t c = 0; c < specs_.size(); ++c) {
      if (load(c) >= specs_[c].capacity) continue;
      const double vis = visibility(c, o);
      if (vis > best_vis) {
        best_vis = vis;
        best = c;
      }
    }
    if (best != kUnowned) transfer_owner(o, best);
  }
}

void Network::step() {
  ++steps_;
  move_objects();

  double step_vis = 0.0;
  std::size_t tracked = 0;
  for (std::size_t o = 0; o < owner_.size(); ++o) {
    const std::size_t cam = owner_[o];
    if (cam == kUnowned) continue;
    const double vis = visibility(cam, o);
    if (vis >= p_.vis_threshold) {
      cam_epoch_[cam].tracking += vis;
      step_vis += vis;
      ++tracked;
    } else {
      auction(o, cam);
      // If the auction re-homed it, credit the new owner this step.
      const std::size_t now = owner_[o];
      if (now != kUnowned) {
        const double v2 = visibility(now, o);
        if (v2 >= p_.vis_threshold) {
          cam_epoch_[now].tracking += v2;
          step_vis += v2;
          ++tracked;
        }
      }
    }
  }
  claim_unowned();

  net_epoch_.steps += 1.0;
  net_epoch_.coverage += static_cast<double>(tracked) /
                         static_cast<double>(owner_.size());
  net_epoch_.mean_visibility +=
      tracked ? step_vis / static_cast<double>(tracked) : 0.0;
  net_epoch_.global_utility += step_vis;
  for (std::size_t c = 0; c < specs_.size(); ++c) {
    cam_epoch_[c].owned_now = load(c);
  }
}

void Network::run(std::size_t steps) {
  for (std::size_t i = 0; i < steps; ++i) step();
}

void Network::bind(sim::Engine& engine, double period) {
  engine.every_tagged(
      sim::event_tag("sa.svc.network"), period,
      [this] { step(); return true; }, /*order=*/0);
}

void Network::set_telemetry(sim::TelemetryBus* bus) {
  telemetry_ = bus;
  if (telemetry_) subject_ = telemetry_->intern_subject("svc.network");
}

CameraEpoch Network::harvest_camera(std::size_t cam) {
  CameraEpoch out = cam_epoch_[cam];
  cam_epoch_[cam] = CameraEpoch{};
  cam_epoch_[cam].owned_now = out.owned_now;
  return out;
}

NetworkEpoch Network::harvest_network() {
  NetworkEpoch out = net_epoch_;
  if (out.steps > 0.0) {
    out.coverage /= out.steps;
    out.mean_visibility /= out.steps;
  }
  out.global_utility -= p_.comm_weight * out.messages;
  net_epoch_ = NetworkEpoch{};
  return out;
}

}  // namespace sa::svc
