#include "ckpt/format.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace sa::ckpt {
namespace {

constexpr char kMagic[8] = {'S', 'A', 'C', 'K', 'P', 'T', '\n', '\0'};
constexpr char kSectionTag = 'S';
constexpr char kEndTag = 'E';
constexpr std::size_t kMaxNameLen = 255;

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(b, 8);
}

std::uint32_t get_u32(const char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

std::uint64_t get_u64(const char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

std::string errno_detail(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

const char* errc_name(Errc code) noexcept {
  switch (code) {
    case Errc::kOk: return "ok";
    case Errc::kIo: return "io-error";
    case Errc::kBadMagic: return "bad-magic";
    case Errc::kBadVersion: return "bad-version";
    case Errc::kTruncated: return "truncated";
    case Errc::kCrcMismatch: return "crc-mismatch";
    case Errc::kBadSection: return "bad-section";
    case Errc::kMissingSection: return "missing-section";
    case Errc::kMalformed: return "malformed";
    case Errc::kShapeMismatch: return "shape-mismatch";
    case Errc::kStateDivergence: return "state-divergence";
    case Errc::kUntaggedEvent: return "untagged-event";
    case Errc::kUnboundTag: return "unbound-tag";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string s = errc_name(code);
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

std::uint32_t crc32(std::string_view data) noexcept {
  // CRC-32/ISO-HDLC, table generated on first use (thread-safe statics).
  static const auto table = [] {
    struct Table { std::uint32_t v[256]; };
    Table t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t.v[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (char ch : data)
    crc = table.v[(crc ^ static_cast<std::uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

// ---------------------------------------------------------------------------
// Buffer

void Buffer::u32(std::uint32_t v) { put_u32(data_, v); }
void Buffer::u64(std::uint64_t v) { put_u64(data_, v); }

void Buffer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Buffer::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  data_.append(v.data(), v.size());
}

void Buffer::bytes(std::string_view v) {
  u64(v.size());
  data_.append(v.data(), v.size());
}

// ---------------------------------------------------------------------------
// Cursor

bool Cursor::take(std::size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool Cursor::u8(std::uint8_t& out) {
  const char* p = nullptr;
  if (!take(1, &p)) return false;
  out = static_cast<std::uint8_t>(*p);
  return true;
}

bool Cursor::u32(std::uint32_t& out) {
  const char* p = nullptr;
  if (!take(4, &p)) return false;
  out = get_u32(p);
  return true;
}

bool Cursor::u64(std::uint64_t& out) {
  const char* p = nullptr;
  if (!take(8, &p)) return false;
  out = get_u64(p);
  return true;
}

bool Cursor::i64(std::int64_t& out) {
  std::uint64_t v = 0;
  if (!u64(v)) return false;
  out = static_cast<std::int64_t>(v);
  return true;
}

bool Cursor::boolean(bool& out) {
  std::uint8_t v = 0;
  if (!u8(v)) return false;
  out = v != 0;
  return true;
}

bool Cursor::f64(double& out) {
  std::uint64_t bits = 0;
  if (!u64(bits)) return false;
  std::memcpy(&out, &bits, sizeof(out));
  return true;
}

bool Cursor::str(std::string& out) {
  std::uint32_t len = 0;
  if (!u32(len)) return false;
  const char* p = nullptr;
  if (!take(len, &p)) return false;
  out.assign(p, len);
  return true;
}

bool Cursor::bytes(std::string& out) {
  std::uint64_t len = 0;
  if (!u64(len)) return false;
  if (len > remaining()) {  // reject absurd lengths before any allocation
    ok_ = false;
    return false;
  }
  const char* p = nullptr;
  if (!take(static_cast<std::size_t>(len), &p)) return false;
  out.assign(p, static_cast<std::size_t>(len));
  return true;
}

Status Cursor::finish(std::string_view what) const {
  if (!ok_)
    return Status::error(Errc::kMalformed,
                         std::string(what) + ": payload shorter than schema");
  if (!at_end())
    return Status::error(Errc::kMalformed,
                         std::string(what) + ": trailing bytes in payload");
  return {};
}

// ---------------------------------------------------------------------------
// Writer

Writer::Writer() {
  out_.append(kMagic, sizeof(kMagic));
  put_u32(out_, kFormatVersion);
}

void Writer::section(std::string_view name, const Buffer& payload) {
  if (finished_ || name.empty() || name.size() > kMaxNameLen) return;
  out_.push_back(kSectionTag);
  put_u32(out_, static_cast<std::uint32_t>(name.size()));
  out_.append(name.data(), name.size());
  put_u64(out_, payload.size());
  out_.append(payload.data());
  put_u32(out_, crc32(payload.data()));
  ++sections_;
}

std::string Writer::finish() {
  if (!finished_) {
    out_.push_back(kEndTag);
    put_u32(out_, sections_);
    finished_ = true;
  }
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// Reader

Status Reader::parse(std::string data, Reader& out) {
  out = Reader{};
  const std::size_t n = data.size();
  if (n < sizeof(kMagic) + 4) {
    if (n == 0) return Status::error(Errc::kTruncated, "empty file");
    if (n >= sizeof(kMagic) &&
        std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0)
      return Status::error(Errc::kTruncated, "file ends inside the header");
    return Status::error(Errc::kBadMagic, "file too short for header");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0)
    return Status::error(Errc::kBadMagic, "not a sa::ckpt file");
  const std::uint32_t version = get_u32(data.data() + sizeof(kMagic));
  if (version != kFormatVersion)
    return Status::error(Errc::kBadVersion,
                         "format version " + std::to_string(version) +
                             " (this build reads " +
                             std::to_string(kFormatVersion) + ")");

  Reader r;
  std::size_t pos = sizeof(kMagic) + 4;
  bool saw_end = false;
  std::uint32_t declared = 0;
  while (pos < n) {
    const char tag = data[pos++];
    if (tag == kEndTag) {
      if (n - pos < 4)
        return Status::error(Errc::kTruncated, "file ends inside the trailer");
      declared = get_u32(data.data() + pos);
      pos += 4;
      saw_end = true;
      break;
    }
    if (tag != kSectionTag)
      return Status::error(Errc::kBadSection,
                           "unknown record tag at offset " +
                               std::to_string(pos - 1));
    if (n - pos < 4)
      return Status::error(Errc::kTruncated, "file ends inside a section name");
    const std::uint32_t name_len = get_u32(data.data() + pos);
    pos += 4;
    if (name_len == 0 || name_len > kMaxNameLen)
      return Status::error(Errc::kBadSection,
                           "section name length " + std::to_string(name_len));
    if (n - pos < name_len)
      return Status::error(Errc::kTruncated, "file ends inside a section name");
    std::string name(data.data() + pos, name_len);
    pos += name_len;
    if (n - pos < 8)
      return Status::error(Errc::kTruncated,
                           "file ends inside section '" + name + "' length");
    const std::uint64_t payload_len = get_u64(data.data() + pos);
    pos += 8;
    if (payload_len > n - pos)
      return Status::error(Errc::kTruncated,
                           "file ends inside section '" + name + "' payload");
    const std::size_t payload_off = pos;
    pos += static_cast<std::size_t>(payload_len);
    if (n - pos < 4)
      return Status::error(Errc::kTruncated,
                           "file ends inside section '" + name + "' crc");
    const std::uint32_t want_crc = get_u32(data.data() + pos);
    pos += 4;
    const std::uint32_t got_crc = crc32(
        std::string_view(data.data() + payload_off,
                         static_cast<std::size_t>(payload_len)));
    if (got_crc != want_crc)
      return Status::error(Errc::kCrcMismatch, "section '" + name + "'");
    for (const Section& s : r.sections_)
      if (s.name == name)
        return Status::error(Errc::kBadSection,
                             "duplicate section '" + name + "'");
    r.sections_.push_back(Section{std::move(name), payload_off,
                                  static_cast<std::size_t>(payload_len)});
  }
  if (!saw_end)
    return Status::error(Errc::kTruncated, "missing trailer (torn write)");
  if (pos != n)
    return Status::error(Errc::kMalformed, "trailing bytes after the trailer");
  if (declared != r.sections_.size())
    return Status::error(Errc::kMalformed,
                         "trailer declares " + std::to_string(declared) +
                             " sections, found " +
                             std::to_string(r.sections_.size()));
  r.data_ = std::move(data);
  r.names_.reserve(r.sections_.size());
  for (const Section& s : r.sections_) r.names_.push_back(s.name);
  out = std::move(r);
  return {};
}

Status Reader::read_file(const std::string& path, Reader& out) {
  std::string data;
  if (Status st = slurp_file(path, data); !st.ok()) return st;
  return parse(std::move(data), out);
}

bool Reader::has(std::string_view name) const noexcept {
  for (const Section& s : sections_)
    if (s.name == name) return true;
  return false;
}

std::string_view Reader::payload(std::string_view name) const noexcept {
  for (const Section& s : sections_)
    if (s.name == name)
      return std::string_view(data_.data() + s.offset, s.length);
  return {};
}

Status Reader::open(std::string_view name, Cursor& out) const {
  for (const Section& s : sections_) {
    if (s.name == name) {
      out = Cursor(std::string_view(data_.data() + s.offset, s.length));
      return {};
    }
  }
  return Status::error(Errc::kMissingSection, std::string(name));
}

// ---------------------------------------------------------------------------
// Files

Status slurp_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::error(Errc::kIo, errno_detail("open", path));
  out.clear();
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, got);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::error(Errc::kIo, errno_detail("read", path));
  return {};
}

Status write_file_atomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return Status::error(Errc::kIo, errno_detail("open", tmp));
  const std::size_t wrote = std::fwrite(data.data(), 1, data.size(), f);
  if (wrote != data.size() || std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::error(Errc::kIo, errno_detail("write", tmp));
  }
  // Make the bytes durable before the rename makes them visible, so a
  // crash never replaces a valid checkpoint with an empty file.
  ::fsync(::fileno(f));
  std::fclose(f);
  // Keep the previous checkpoint as .prev: resume falls back to it when
  // the primary is torn or corrupt.
  std::rename(path.c_str(), (path + ".prev").c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::error(Errc::kIo, errno_detail("rename", path));
  }
  return {};
}

Status read_with_fallback(const std::string& path, Reader& out,
                          std::string* used_path,
                          std::string* fallback_error) {
  Status primary = Reader::read_file(path, out);
  if (primary.ok()) {
    if (used_path) *used_path = path;
    return primary;
  }
  const std::string prev = path + ".prev";
  Status fallback = Reader::read_file(prev, out);
  if (fallback.ok()) {
    if (used_path) *used_path = prev;
    if (fallback_error) *fallback_error = primary.to_string();
    return fallback;
  }
  return primary;  // report the primary failure; .prev was no better
}

}  // namespace sa::ckpt
