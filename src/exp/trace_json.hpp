// Chrome/Perfetto trace-event export of a sim::Tracer record.
//
// Produces the Trace Event Format JSON object form
// ({"displayTimeUnit":"ms","traceEvents":[...]}) loadable in
// ui.perfetto.dev or chrome://tracing:
//
//   * one "M" (metadata) event names the process ("sa-sim", pid 1) and one
//     per interned subject names its thread (tid = SubjectId) — every
//     subject renders as its own track;
//   * span begins/ends become "B"/"E" duration events. Timestamps are
//     sim-time seconds scaled to microseconds (ts = t * 1e6); most spans
//     are zero-duration in sim time and still nest correctly because
//     "B"/"E" pair by order within a tid;
//   * flow points become "s"/"t"/"f" flow events keyed by TraceId, drawing
//     the stimulus → knowledge → decision → action → outcome arrows
//     between slices;
//   * each span's "args" carries its trace_id plus any recorded numeric
//     args, so an Explanation citing "decision #N" resolves to the slice
//     whose args.trace_id == N.
//
// Determinism: everything serialised here derives from sim time and
// interned ids — no wall clock, no pointers — and the Json writer is
// byte-deterministic, so the same cell traced under any --jobs N yields a
// bitwise-identical file.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/json.hpp"
#include "sim/trace.hpp"

namespace sa::exp {

/// Builds the trace-event document from a tracer's record (subjects come
/// from the tracer's bus).
[[nodiscard]] Json chrome_trace(const sim::Tracer& tracer);

/// Serialises chrome_trace() compactly, newline-terminated.
void write_chrome_trace(std::ostream& os, const sim::Tracer& tracer);

// -- Cross-agent trace merging ----------------------------------------------
//
// Multi-agent scenarios run one Tracer per agent/domain (each with its own
// TraceId namespace — see sim::kTraceNamespaceShift), so no single file
// shows a knowledge item's journey across agents. merge_perfetto() emits
// ONE trace-event document with each tracer as its own process (pid = its
// index + 1, so per-agent tracks stay separate) and *stitch flows*
// synthesized at knowledge-exchange events: spans named
// `MergeOptions::stitch_span` are collected from every tracer, sorted by
// sim time, and consecutive spans from *different* tracers are linked with
// a flow arrow — the rendered trace then draws exchange causality across
// agent boundaries. Stitch flow ids live in the reserved namespace 0xffff
// so they can never collide with any tracer's own ids.

struct MergeOptions {
  /// Span name marking exchange points (core::AgentRuntime emits
  /// "exchange" spans around every knowledge-exchange round).
  std::string stitch_span = "exchange";
};

struct MergeStats {
  std::size_t tracers = 0;        ///< inputs merged
  std::size_t events = 0;         ///< span/flow events carried over
  std::size_t stitch_points = 0;  ///< stitch-span instances found
  std::size_t stitches = 0;       ///< cross-tracer flow links synthesized
};

/// Merges the tracers' records into one trace-event document.
/// Deterministic: output depends only on the tracers' recorded events and
/// their order in `tracers` (ties in sim time break by tracer index, then
/// emission order).
[[nodiscard]] Json merge_perfetto(const std::vector<const sim::Tracer*>& tracers,
                                  const MergeOptions& opts = {},
                                  MergeStats* stats = nullptr);

/// Serialises merge_perfetto() compactly, newline-terminated.
void write_merged_trace(std::ostream& os,
                        const std::vector<const sim::Tracer*>& tracers,
                        const MergeOptions& opts = {});

}  // namespace sa::exp
